package fast_test

import (
	"errors"
	"math"
	"testing"

	fast "github.com/fastfhe/fast"
)

// The typed error taxonomy must be matchable with errors.Is at the public
// boundary, and no public entry point may panic on malformed input — the
// panic sites that remain in internal packages are documented INVARIANT
// checks unreachable from here.

func errCtx(t *testing.T) *fast.Context {
	t.Helper()
	ctx, err := fast.NewContext(fast.ContextConfig{
		LogN:      9,
		Levels:    2,
		LogScale:  36,
		Rotations: []int{1},
		Seed:      3,
	})
	if err != nil {
		t.Fatal(err)
	}
	return ctx
}

func TestTypedErrorsWithErrorsIs(t *testing.T) {
	ctx := errCtx(t)
	ct, err := ctx.Encrypt([]complex128{1, 2, 3})
	if err != nil {
		t.Fatal(err)
	}

	t.Run("invalid parameters", func(t *testing.T) {
		if _, err := fast.NewContext(fast.ContextConfig{LogN: 9, Levels: 0}); !errors.Is(err, fast.ErrInvalidParameters) {
			t.Errorf("Levels 0: got %v, want ErrInvalidParameters", err)
		}
		if _, err := fast.NewContext(fast.ContextConfig{LogN: 99, Levels: 2}); !errors.Is(err, fast.ErrInvalidParameters) {
			t.Errorf("LogN 99: got %v, want ErrInvalidParameters", err)
		}
		if _, err := fast.NewContext(fast.ContextConfig{LogN: 9, LogSlots: 12, Levels: 2}); !errors.Is(err, fast.ErrInvalidParameters) {
			t.Errorf("LogSlots > LogN-1: got %v, want ErrInvalidParameters", err)
		}
	})

	t.Run("method unavailable", func(t *testing.T) {
		if _, err := fast.NewContext(fast.ContextConfig{LogN: 9, Levels: 2}, fast.WithDefaultMethod(fast.KLSS)); !errors.Is(err, fast.ErrMethodUnavailable) {
			t.Errorf("KLSS without EnableKLSS: got %v, want ErrMethodUnavailable", err)
		}
		// Per-call KLSS on a hybrid-only context fails at key lookup time.
		if _, err := ctx.Mul(ct, ct, fast.WithMethod(fast.KLSS)); !errors.Is(err, fast.ErrMethodUnavailable) {
			t.Errorf("per-call KLSS: got %v, want ErrMethodUnavailable", err)
		}
	})

	t.Run("key missing", func(t *testing.T) {
		if _, err := ctx.Rotate(ct, 5); !errors.Is(err, fast.ErrKeyMissing) {
			t.Errorf("ungenerated rotation: got %v, want ErrKeyMissing", err)
		}
		if _, err := ctx.Conjugate(ct); !errors.Is(err, fast.ErrKeyMissing) {
			t.Errorf("no conjugation key: got %v, want ErrKeyMissing", err)
		}
	})

	t.Run("level exhausted", func(t *testing.T) {
		bottom := ct
		var err error
		for bottom.Level() > 0 {
			if bottom, err = ctx.Mul(bottom, bottom); err != nil {
				t.Fatal(err)
			}
		}
		if _, err := ctx.Rescale(bottom); !errors.Is(err, fast.ErrLevelExhausted) {
			t.Errorf("rescale at level 0: got %v, want ErrLevelExhausted", err)
		}
		// Mul rescales internally, so it too runs out of levels.
		if _, err := ctx.Mul(bottom, bottom); !errors.Is(err, fast.ErrLevelExhausted) {
			t.Errorf("mul at level 0: got %v, want ErrLevelExhausted", err)
		}
	})

	t.Run("scale mismatch", func(t *testing.T) {
		scaled, err := ctx.MulConst(ct, 2.0, fast.NoRescale()) // scale Δ²
		if err != nil {
			t.Fatal(err)
		}
		if _, err := ctx.Add(ct, scaled); !errors.Is(err, fast.ErrScaleMismatch) {
			t.Errorf("Add across scales: got %v, want ErrScaleMismatch", err)
		}
		if _, err := ctx.Sub(ct, scaled); !errors.Is(err, fast.ErrScaleMismatch) {
			t.Errorf("Sub across scales: got %v, want ErrScaleMismatch", err)
		}
	})

	t.Run("slot count mismatch", func(t *testing.T) {
		too := make([]complex128, ctx.Slots()+1)
		if _, err := ctx.Encrypt(too); !errors.Is(err, fast.ErrSlotCountMismatch) {
			t.Errorf("oversized encrypt: got %v, want ErrSlotCountMismatch", err)
		}
		if _, err := ctx.MulPlain(ct, too); !errors.Is(err, fast.ErrSlotCountMismatch) {
			t.Errorf("oversized MulPlain: got %v, want ErrSlotCountMismatch", err)
		}
	})

	t.Run("invalid value", func(t *testing.T) {
		if _, err := ctx.MulConst(ct, math.NaN()); !errors.Is(err, fast.ErrInvalidValue) {
			t.Errorf("NaN constant: got %v, want ErrInvalidValue", err)
		}
		if _, err := ctx.AddConst(ct, math.Inf(1)); !errors.Is(err, fast.ErrInvalidValue) {
			t.Errorf("Inf constant: got %v, want ErrInvalidValue", err)
		}
	})

	t.Run("invalid ciphertext", func(t *testing.T) {
		if _, err := ctx.Add(nil, ct); !errors.Is(err, fast.ErrInvalidCiphertext) {
			t.Errorf("nil operand: got %v, want ErrInvalidCiphertext", err)
		}
		// A ciphertext from a different ring degree violates the invariants.
		other := errCtxLogN(t, 10)
		foreign, err := other.Encrypt([]complex128{1})
		if err != nil {
			t.Fatal(err)
		}
		if _, err := ctx.Mul(ct, foreign); !errors.Is(err, fast.ErrInvalidCiphertext) {
			t.Errorf("foreign ciphertext: got %v, want ErrInvalidCiphertext", err)
		}
	})
}

func errCtxLogN(t *testing.T, logN int) *fast.Context {
	t.Helper()
	ctx, err := fast.NewContext(fast.ContextConfig{LogN: logN, Levels: 2, LogScale: 36, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	return ctx
}

// TestPublicAPINeverPanics drives every Context entry point with malformed
// inputs and asserts they refuse with an error (or a nil result) instead of
// panicking.
func TestPublicAPINeverPanics(t *testing.T) {
	ctx := errCtx(t)
	ct, err := ctx.Encrypt([]complex128{1})
	if err != nil {
		t.Fatal(err)
	}
	var nilCt *fast.Ciphertext

	calls := map[string]func() error{
		"Add(nil,nil)":        func() error { _, err := ctx.Add(nilCt, nilCt); return err },
		"Sub(nil,ct)":         func() error { _, err := ctx.Sub(nilCt, ct); return err },
		"Mul(ct,nil)":         func() error { _, err := ctx.Mul(ct, nilCt); return err },
		"MulPlain(nil)":       func() error { _, err := ctx.MulPlain(nilCt, []complex128{1}); return err },
		"AddPlain(nil)":       func() error { _, err := ctx.AddPlain(nilCt, []complex128{1}); return err },
		"MulConst(nil)":       func() error { _, err := ctx.MulConst(nilCt, 2); return err },
		"AddConst(nil)":       func() error { _, err := ctx.AddConst(nilCt, 2); return err },
		"Rescale(nil)":        func() error { _, err := ctx.Rescale(nilCt); return err },
		"Rotate(nil)":         func() error { _, err := ctx.Rotate(nilCt, 1); return err },
		"RotateHoisted(nil)":  func() error { _, err := ctx.RotateHoisted(nilCt, []int{1}); return err },
		"Conjugate(nil)":      func() error { _, err := ctx.Conjugate(nilCt); return err },
		"Encrypt(oversized)":  func() error { _, err := ctx.Encrypt(make([]complex128, 1<<20)); return err },
		"MulConst(ct,NaN)":    func() error { _, err := ctx.MulConst(ct, math.NaN()); return err },
		"Rotate(ct,unkeyed)":  func() error { _, err := ctx.Rotate(ct, 12345); return err },
		"InnerSum-batch":      func() error { _, err := ctx.Mul(ct, ct, fast.WithMethod(fast.KLSS)); return err },
		"NewContext(LogN=-1)": func() error { _, err := fast.NewContext(fast.ContextConfig{LogN: -1, Levels: 1}); return err },
	}
	for name, call := range calls {
		t.Run(name, func(t *testing.T) {
			defer func() {
				if r := recover(); r != nil {
					t.Fatalf("%s panicked: %v", name, r)
				}
			}()
			if err := call(); err == nil {
				t.Errorf("%s accepted malformed input", name)
			}
		})
	}

	// Non-error-returning entry points degrade gracefully.
	t.Run("Decrypt(nil)", func(t *testing.T) {
		defer func() {
			if r := recover(); r != nil {
				t.Fatalf("Decrypt(nil) panicked: %v", r)
			}
		}()
		if got := ctx.Decrypt(nilCt); got != nil {
			t.Errorf("Decrypt(nil) = %v, want nil", got)
		}
		if nilCt.Level() != -1 || nilCt.Scale() != 0 {
			t.Error("nil ciphertext accessors must return sentinels")
		}
	})
}
