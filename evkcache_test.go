package fast

import (
	"testing"
)

func evkTestConfig() ContextConfig {
	return ContextConfig{
		LogN:        9,
		Levels:      3,
		LogScale:    36,
		Rotations:   []int{1, -1},
		Conjugation: true,
		Seed:        7,
	}
}

// TestEvkCacheSharedAcrossContexts: two contexts restored from the same
// session (same session ID, different shard tags) share one set of entries —
// the second shard's traffic is all hits, counted cross-shard, and the
// resident bytes stay under budget.
func TestEvkCacheSharedAcrossContexts(t *testing.T) {
	ob := NewObserver()
	cache := NewEvkCache(1<<30, ob)
	cfg := evkTestConfig()

	c0, err := NewContext(cfg, WithObserver(ob), WithEvkCache(cache, "s1", 0))
	if err != nil {
		t.Fatal(err)
	}
	ct, err := c0.Encrypt([]complex128{1, 2, 3, 4})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c0.Rotate(ct, 1); err != nil {
		t.Fatal(err)
	}
	if _, err := c0.Conjugate(ct); err != nil {
		t.Fatal(err)
	}
	st := cache.Stats()
	if st.Misses == 0 {
		t.Fatal("no misses recorded: evk traffic is not reaching the shared tier")
	}
	if st.CrossShardHits != 0 {
		t.Fatalf("cross-shard hits = %d before any second shard", st.CrossShardHits)
	}

	// Same keyspace served from shard 1 (the failover path).
	c1, err := NewContext(cfg, WithObserver(ob), WithEvkCache(cache, "s1", 1))
	if err != nil {
		t.Fatal(err)
	}
	before := st
	if _, err := c1.Rotate(ct, 1); err != nil {
		t.Fatal(err)
	}
	st = cache.Stats()
	if st.Misses != before.Misses {
		t.Fatalf("shard 1 re-missed a key shard 0 filled (misses %d -> %d)", before.Misses, st.Misses)
	}
	if st.CrossShardHits == 0 {
		t.Fatal("no cross-shard hit for a key filled by the other shard")
	}
	if st.ResidentBytes > st.Capacity {
		t.Fatalf("resident %d exceeds budget %d", st.ResidentBytes, st.Capacity)
	}
}

// TestEvkCacheSessionIsolation: the same rotation on two different session
// IDs must be two distinct entries — evaluation keys are per-keyspace, and a
// shared tier that conflated them would report fictitious hits.
func TestEvkCacheSessionIsolation(t *testing.T) {
	ob := NewObserver()
	cache := NewEvkCache(1<<30, ob)
	cfg := evkTestConfig()
	for i, sid := range []string{"sA", "sB"} {
		c, err := NewContext(cfg, WithEvkCache(cache, sid, i))
		if err != nil {
			t.Fatal(err)
		}
		ct, err := c.Encrypt([]complex128{1, 2})
		if err != nil {
			t.Fatal(err)
		}
		if _, err := c.Rotate(ct, 1); err != nil {
			t.Fatal(err)
		}
	}
	st := cache.Stats()
	if st.Hits != 0 {
		t.Fatalf("hits = %d: distinct sessions shared an entry", st.Hits)
	}
	if st.Misses != 2 {
		t.Fatalf("misses = %d, want 2", st.Misses)
	}
}

// TestEvkCacheFaultPlanUnperturbed: attaching the shared tier must not
// change the fault stream — FaultStats with and without WithEvkCache are
// identical for the same op sequence, and results stay bit-exact. This is
// the "purely additive" contract the chaos suite depends on.
func TestEvkCacheFaultPlanUnperturbed(t *testing.T) {
	cfg := evkTestConfig()
	plan, err := FaultScenario("all")
	if err != nil {
		t.Fatal(err)
	}
	run := func(opts ...Option) (FaultStats, []complex128) {
		c, err := NewContext(cfg, append([]Option{WithFaultPlan(plan)}, opts...)...)
		if err != nil {
			t.Fatal(err)
		}
		ct, err := c.Encrypt([]complex128{1, 2, 3, 4})
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < 8; i++ {
			if ct2, err := c.Rotate(ct, 1); err == nil {
				ct = ct2
			} else {
				t.Fatal(err)
			}
		}
		return c.FaultStats(), c.Decrypt(ct)
	}
	plainStats, plainVals := run()
	cache := NewEvkCache(1<<30, NewObserver())
	cachedStats, cachedVals := run(WithEvkCache(cache, "s1", 0))
	if plainStats != cachedStats {
		t.Fatalf("fault stream perturbed by evk cache:\nwithout: %+v\nwith:    %+v", plainStats, cachedStats)
	}
	for i := range plainVals {
		if plainVals[i] != cachedVals[i] {
			t.Fatalf("slot %d differs: %v vs %v", i, plainVals[i], cachedVals[i])
		}
	}
	if cache.Stats().Misses == 0 {
		t.Fatal("cache saw no traffic")
	}
}

// TestEvkCacheBudgetEnforcedFault: a budget smaller than the working set
// keeps resident_bytes under the cap by evicting, never over-filling.
func TestEvkCacheBudgetEnforcedFault(t *testing.T) {
	ob := NewObserver()
	cfg := evkTestConfig()
	// Budget fits roughly one key: every distinct key evicts the previous.
	probe, err := NewContext(cfg, WithEvkCache(NewEvkCache(1<<40, NewObserver()), "probe", 0))
	if err != nil {
		t.Fatal(err)
	}
	ct, err := probe.Encrypt([]complex128{1})
	if err != nil {
		t.Fatal(err)
	}
	cache := NewEvkCache(probeKeyBytes(probe), ob)
	c, err := NewContext(cfg, WithEvkCache(cache, "s1", 0))
	if err != nil {
		t.Fatal(err)
	}
	ct, err = c.Encrypt([]complex128{1, 2})
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range []int{1, -1, 1, -1} {
		if _, err := c.Rotate(ct, r); err != nil {
			t.Fatal(err)
		}
	}
	st := cache.Stats()
	if st.ResidentBytes > st.Capacity {
		t.Fatalf("resident %d exceeds budget %d", st.ResidentBytes, st.Capacity)
	}
	if st.Evictions == 0 {
		t.Fatal("undersized budget produced no evictions")
	}
}

// probeKeyBytes returns the modeled size of one hybrid evk at max level for
// the context's parameters — a budget of exactly one key.
func probeKeyBytes(c *Context) int64 {
	return evkBytes(c.params, c.params.MaxLevel(), Hybrid)
}
