# Convenience targets for the FAST reproduction.

GO ?= go

.PHONY: all check build test test-short test-purego race chaos fuzz obs-smoke soak-smoke shard-chaos bench bench-json benchdiff bench-serve-json benchdiff-serve tables cover fmt vet clean

all: build test

# The default pre-merge gate: static analysis, the full suite, the race
# detector over the concurrency tests, and the fault-injection chaos suite.
check: vet test race chaos

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# Skips the slow functional-bootstrapping tests (~40 s).
test-short:
	$(GO) test -short ./...

# Pure-Go leg: compile out the GOARCH-gated assembly kernels (internal/ring's
# AVX2 NTT/BConv routines) and run the suite against the reference loops —
# the build every non-amd64/arm64 platform gets. The differential asm tests
# skip themselves; everything else must pass identically.
test-purego:
	$(GO) build -tags purego ./...
	$(GO) test -tags purego -short ./...

# Race-detector pass over the whole module (the concurrency-model contract:
# one Context serving many goroutines). Uses -short so the gate stays fast.
race:
	$(GO) test -race -short ./...

# Chaos gate: the fault-injection suites under the race detector. Long random
# op sequences run under every fault scenario; decryptions must stay bit-exact
# with the fault-free run, and the simulator must be deterministic per fault
# seed. The fastd suite runs the serve loop in-process under every scenario:
# accepted responses must be bit-identical to a fault-free reference, shed and
# canceled requests must carry typed errors, and the circuit breaker must
# re-close once faults stop. (-short keeps the op count CI-sized; drop it for
# a deeper soak.)
chaos:
	$(GO) test -race -short -run 'Chaos|Fault|Resilience' . ./internal/sim ./internal/hemera ./cmd/fastsim ./cmd/fastd ./internal/serve ./internal/shard
	$(GO) test -race ./internal/fault

# Fuzz smoke pass: each target fuzzes for 10s (Go allows one -fuzz pattern
# per package invocation). Corpus findings land in testdata/fuzz/.
fuzz:
	$(GO) test -run '^$$' -fuzz FuzzEncodeDecode -fuzztime 10s ./internal/ckks
	$(GO) test -run '^$$' -fuzz FuzzReadCiphertext -fuzztime 10s ./internal/ckks
	$(GO) test -run '^$$' -fuzz FuzzCiphertextMarshal -fuzztime 10s ./internal/ckks
	$(GO) test -run '^$$' -fuzz FuzzContextConfig -fuzztime 10s .
	$(GO) test -run '^$$' -fuzz FuzzSessionSnapshot -fuzztime 10s .

# Observability smoke gate: boot the real fastd through run(), drive one
# evaluation with a pinned request ID, and assert every surface's contract —
# access-log JSON schema, /debug/requests shape, /metrics Prometheus-text
# validity (incl. the serve.latency.p* quantile gauges), /readyz quantiles,
# and request-ID attribution on both HTTP and evaluator trace spans.
obs-smoke:
	$(GO) test -race -run TestObsSmoke -v ./cmd/fastd

# Durability smoke gate: a CI-sized fastload soak — a few concurrent sessions
# under Zipf reuse with one SIGKILL+restart cycle mid-run against a spawned,
# race-instrumented fastd. Asserts the crash-safety contract end to end:
# restored decrypts bit-identical to the fault-free reference, ladder-typed
# errors only, exactly-once idempotent retries, p99 within SLO. The full-size
# soak is `go run ./cmd/fastload` (see its package doc).
soak-smoke:
	$(GO) test -race -run TestSoakSmoke -v ./cmd/fastload

# Shard-failover gate: fastload spawns a race-instrumented 3-shard fastd and
# fences one shard mid-soak through the chaos endpoint (an in-process SIGKILL:
# permanent fence, hash-range remap, snapshot failover). Asserts the daemon
# stays ready, the dead shard's sessions serve bit-identically from survivors,
# errors stay on the typed ladder, idempotent retries are exactly-once, and
# the shared evk tier shows cross-shard reuse within its byte budget.
shard-chaos:
	$(GO) test -race -run TestShardChaosSmoke -v ./cmd/fastload
	$(GO) test -race -run 'TestShard|TestIdemJournal|TestForward' -v ./cmd/fastd

bench:
	$(GO) test -bench=. -benchmem ./...

# Benchmark trajectory recording: run the hot-path kernel benchmarks (NTT,
# BConv/Convert, Mul, Rotate) plus the paper's Fig./Table benchmarks and write
# the results as JSON so kernel performance is tracked in-repo. Compare two
# recordings with `go run ./scripts/benchdiff OLD.json NEW.json`.
BENCH_PATTERN ?= NTT|Convert|Mul|Rotate|ModDown|Rescale|Fig|Table|Serve
BENCH_TIME ?= 0.5s
BENCH_JSON ?= BENCH_kernels.json

bench-json:
	$(GO) test -run '^$$' -bench '$(BENCH_PATTERN)' -benchtime $(BENCH_TIME) -benchmem ./... > .bench.out || (cat .bench.out; rm -f .bench.out; exit 1)
	$(GO) run ./scripts/benchjson < .bench.out > $(BENCH_JSON)
	@rm -f .bench.out
	@echo "wrote $(BENCH_JSON)"

# Re-run the kernel benchmarks and diff against the checked-in baseline.
# Fails when any kernel falls below BENCHDIFF_FAIL_BELOW x the recorded
# baseline (1.0 = no regression). Kernel benchmarks on shared runners are
# noisy; treat this as a soft signal there (CI runs it non-blocking) and as a
# hard gate only on quiet dedicated hardware. The fresh recording is left at
# BENCHDIFF_NEW so CI can upload it as an artifact alongside the baseline.
BENCHDIFF_FAIL_BELOW ?= 1.0
BENCHDIFF_NEW ?= BENCH_kernels_new.json

benchdiff:
	$(MAKE) bench-json BENCH_JSON=$(BENCHDIFF_NEW)
	$(GO) run ./scripts/benchdiff -fail-below $(BENCHDIFF_FAIL_BELOW) BENCH_kernels.json $(BENCHDIFF_NEW)

# Serve-throughput recording: end-to-end daemon eval under concurrent load.
# FASTD_SEQUENTIAL=1 records the straight-line (no micro-batching) mode; the
# checked-in BENCH_serve_pre.json baseline was recorded that way:
#
#	FASTD_SEQUENTIAL=1 make bench-serve-json BENCH_SERVE_JSON=BENCH_serve_pre.json
BENCH_SERVE_TIME ?= 3s
BENCH_SERVE_JSON ?= BENCH_serve.json

bench-serve-json:
	$(GO) test -run '^$$' -bench ServeThroughput -benchtime $(BENCH_SERVE_TIME) ./cmd/fastd > .bench_serve.out || (cat .bench_serve.out; rm -f .bench_serve.out; exit 1)
	$(GO) run ./scripts/benchjson < .bench_serve.out > $(BENCH_SERVE_JSON)
	@rm -f .bench_serve.out
	@echo "wrote $(BENCH_SERVE_JSON)"

# Serve-throughput gate: record the straight-line baseline and the batched
# mode back to back on the same machine and require cross-request
# micro-batching to be at least 5% faster (locally it measures ~1.3x; the
# margin absorbs runner noise). Machine-independent by construction — both
# recordings are fresh, the checked-in BENCH_serve_pre.json is the reference
# trajectory, not the gate input.
# Both recordings are left on disk (BENCH_serve_seq.json / BENCH_serve_new.json)
# so CI uploads the measured trajectory as artifacts.
benchdiff-serve:
	FASTD_SEQUENTIAL=1 $(MAKE) bench-serve-json BENCH_SERVE_JSON=BENCH_serve_seq.json
	$(MAKE) bench-serve-json BENCH_SERVE_JSON=BENCH_serve_new.json
	$(GO) run ./scripts/benchdiff -fail-below 1.05 BENCH_serve_seq.json BENCH_serve_new.json

# Regenerate every table and figure of the paper's evaluation.
tables:
	$(GO) run ./cmd/benchtables

# Coverage with a per-function summary (writes cover.out next to the total).
cover:
	$(GO) test -short -coverprofile=cover.out ./...
	$(GO) tool cover -func=cover.out | tail -n 25
	@echo "full per-function report: $(GO) tool cover -func=cover.out"
	@echo "HTML report:              $(GO) tool cover -html=cover.out"

fmt:
	gofmt -w .

# Static analysis: go vet plus a gofmt cleanliness check (fails listing any
# file that gofmt would rewrite).
vet:
	$(GO) vet ./...
	@fmtout="$$(gofmt -l .)"; if [ -n "$$fmtout" ]; then \
		echo "gofmt needed on:"; echo "$$fmtout"; exit 1; fi

clean:
	$(GO) clean ./...
	rm -f cover.out BENCH_kernels_new.json BENCH_serve_seq.json BENCH_serve_new.json
