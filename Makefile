# Convenience targets for the FAST reproduction.

GO ?= go

.PHONY: all build test test-short bench tables cover fmt vet clean

all: build test

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# Skips the slow functional-bootstrapping tests (~40 s).
test-short:
	$(GO) test -short ./...

bench:
	$(GO) test -bench=. -benchmem ./...

# Regenerate every table and figure of the paper's evaluation.
tables:
	$(GO) run ./cmd/benchtables

cover:
	$(GO) test -short -cover ./...

fmt:
	gofmt -w .

vet:
	$(GO) vet ./...

clean:
	$(GO) clean ./...
