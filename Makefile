# Convenience targets for the FAST reproduction.

GO ?= go

.PHONY: all check build test test-short race bench tables cover fmt vet clean

all: build test

# The default pre-merge gate: static analysis, the full suite, and the race
# detector over the concurrency tests.
check: vet test race

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# Skips the slow functional-bootstrapping tests (~40 s).
test-short:
	$(GO) test -short ./...

# Race-detector pass over the whole module (the concurrency-model contract:
# one Context serving many goroutines). Uses -short so the gate stays fast.
race:
	$(GO) test -race -short ./...

bench:
	$(GO) test -bench=. -benchmem ./...

# Regenerate every table and figure of the paper's evaluation.
tables:
	$(GO) run ./cmd/benchtables

cover:
	$(GO) test -short -cover ./...

fmt:
	gofmt -w .

vet:
	$(GO) vet ./...

clean:
	$(GO) clean ./...
