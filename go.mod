module github.com/fastfhe/fast

go 1.22
