package fast

import (
	"fmt"

	"github.com/fastfhe/fast/internal/aether"
	"github.com/fastfhe/fast/internal/arch"
	"github.com/fastfhe/fast/internal/baselines"
	"github.com/fastfhe/fast/internal/costmodel"
	"github.com/fastfhe/fast/internal/sim"
	"github.com/fastfhe/fast/internal/trace"
	"github.com/fastfhe/fast/internal/workloads"
)

// Accelerator is a simulatable hardware configuration.
type Accelerator struct {
	cfg arch.Config
}

// Name returns the configuration name.
func (a Accelerator) Name() string { return a.cfg.Name }

// AreaMM2 returns the modelled chip area.
func (a Accelerator) AreaMM2() float64 { return a.cfg.TotalAreaPower().AreaMM2 }

// PeakPowerW returns the modelled peak power.
func (a Accelerator) PeakPowerW() float64 { return a.cfg.TotalAreaPower().PowerW }

// Config exposes the underlying architecture description.
func (a Accelerator) Config() arch.Config { return a.cfg }

// WithClusters returns a copy with a different cluster count (Fig. 13(b)).
func (a Accelerator) WithClusters(n int) Accelerator {
	return Accelerator{a.cfg.WithClusters(n)}
}

// WithOnChipMB returns a copy with a different SRAM capacity (Fig. 13(a)).
func (a Accelerator) WithOnChipMB(mb float64) Accelerator {
	return Accelerator{a.cfg.WithOnChipMB(mb)}
}

// FASTAccelerator returns the paper's FAST configuration: 4 clusters x 256
// lanes of tunable-bit multipliers, 281 MB SRAM, 1 TB/s HBM.
func FASTAccelerator() Accelerator { return Accelerator{arch.FAST()} }

// SHARPAccelerator returns the SHARP-class 36-bit baseline.
func SHARPAccelerator() Accelerator { return Accelerator{baselines.SHARP()} }

// SHARPLMAccelerator returns SHARP with 281 MB SRAM and hoisting.
func SHARPLMAccelerator() Accelerator { return Accelerator{baselines.SHARPLM()} }

// SHARP8CAccelerator returns the 8-cluster SHARP variant.
func SHARP8CAccelerator() Accelerator { return Accelerator{baselines.SHARP8C()} }

// SHARPLM8CAccelerator returns the large-memory 8-cluster SHARP variant.
func SHARPLM8CAccelerator() Accelerator { return Accelerator{baselines.SHARPLM8C()} }

// FASTNoTBMAccelerator returns the Fig. 12 ablation point without the TBM.
func FASTNoTBMAccelerator() Accelerator { return Accelerator{baselines.FASTNoTBM()} }

// FAST36Accelerator returns the Fig. 12 36-bit-ALU baseline.
func FAST36Accelerator() Accelerator { return Accelerator{baselines.FAST36()} }

// Workload is a benchmark operation trace.
type Workload struct {
	tr *trace.Trace
}

// Name returns the workload name.
func (w Workload) Name() string { return w.tr.Name }

// KeySwitches returns the number of key-switching dataflows in the trace.
func (w Workload) KeySwitches() int { return w.tr.KeySwitchCount() }

// BootstrapWorkload returns the fully-packed CKKS bootstrapping benchmark.
func BootstrapWorkload() Workload {
	return Workload{workloads.Bootstrap(workloads.DefaultProfile())}
}

// HELRWorkload returns one logistic-regression training iteration with the
// given batch size (256 or 1024 in the paper).
func HELRWorkload(batch int) Workload {
	return Workload{workloads.HELR(workloads.DefaultProfile(), batch)}
}

// HELRTrainingWorkload returns the full multi-iteration HELR training run
// (the paper trains for 32 iterations; Table 5 reports per-iteration
// latency, Table 7's energies are consistent with whole-run totals).
func HELRTrainingWorkload(batch, iterations int) Workload {
	return Workload{workloads.HELRTraining(workloads.DefaultProfile(), batch, iterations)}
}

// ResNet20Workload returns the encrypted ResNet-20 inference benchmark.
func ResNet20Workload() Workload {
	return Workload{workloads.ResNet20(workloads.DefaultProfile())}
}

// PlanMode selects how key-switching is scheduled (Fig. 10).
type PlanMode int

const (
	// PlanAuto follows the accelerator's feature flags.
	PlanAuto PlanMode = iota
	// PlanOneKSW forces non-hoisted hybrid everywhere.
	PlanOneKSW
	// PlanHoisting enables hoisting but keeps the hybrid method.
	PlanHoisting
	// PlanAether enables the full dual-method selection.
	PlanAether
)

// Report is the outcome of one simulation.
type Report struct {
	Accelerator string
	Workload    string

	TimeMS    float64
	Cycles    float64
	EnergyJ   float64
	AvgPowerW float64
	EDP       float64

	EvkTrafficMB  float64
	HBMUtil       float64
	NTTUUtil      float64
	BConvUUtil    float64
	KMUUtil       float64
	HybridCycles  float64
	KLSSCycles    float64
	PhaseCycles   map[string]float64
	TotalModOps   float64
	KernelNTT     float64
	KernelBConv   float64
	KernelKeyMult float64
	KernelOther   float64
}

// Simulate plans and executes a workload on an accelerator.
func Simulate(w Workload, acc Accelerator, mode PlanMode) (*Report, error) {
	return SimulateObserved(w, acc, mode, nil)
}

// SimulateObserved is Simulate with an observability substrate attached: the
// run publishes its Result into the observer's registry (cycles, stalls,
// per-component busy time, per-OpKind dispatch counts, Aether decision
// tallies, Hemera pool traffic) and — when the observer carries a tracer —
// lays every operation on a synthetic simulated-time Chrome-trace timeline
// with one track per hardware component. A nil observer makes it identical
// to Simulate.
func SimulateObserved(w Workload, acc Accelerator, mode PlanMode, ob *Observer) (*Report, error) {
	params := costmodel.SetII()
	cfg := acc.cfg
	klss, hoist := cfg.EnableKLSS, cfg.EnableHoisting
	switch mode {
	case PlanOneKSW:
		klss, hoist = false, false
	case PlanHoisting:
		klss, hoist = false, true
	case PlanAether:
		klss, hoist = true, true
	case PlanAuto:
	default:
		return nil, fmt.Errorf("fast: unknown plan mode %d", mode)
	}
	plan, err := sim.Plan(params, cfg, w.tr, klss, hoist)
	if err != nil {
		return nil, err
	}
	s, err := sim.New(params, cfg, plan)
	if err != nil {
		return nil, err
	}
	if ob != nil {
		s.SetObserver(ob.internal())
	}
	res, err := s.Run(w.tr)
	if err != nil {
		return nil, err
	}
	return &Report{
		Accelerator:   cfg.Name,
		Workload:      w.tr.Name,
		TimeMS:        res.TimeMS,
		Cycles:        res.Cycles,
		EnergyJ:       res.EnergyJ,
		AvgPowerW:     res.AvgPowerW,
		EDP:           res.EDP,
		EvkTrafficMB:  float64(res.EvkBytes) / (1 << 20),
		HBMUtil:       res.Utilization(arch.HBM),
		NTTUUtil:      res.Utilization(arch.NTTU),
		BConvUUtil:    res.Utilization(arch.BConvU),
		KMUUtil:       res.Utilization(arch.KMU),
		HybridCycles:  res.MethodCycles[costmodel.Hybrid],
		KLSSCycles:    res.MethodCycles[costmodel.KLSS],
		PhaseCycles:   res.PhaseCycles,
		TotalModOps:   res.Ops.Total(),
		KernelNTT:     res.Ops.NTT,
		KernelBConv:   res.Ops.BConv,
		KernelKeyMult: res.Ops.KeyMult,
		KernelOther:   res.Ops.Other,
	}, nil
}

// PlanWorkload runs the Aether analysis alone and returns the configuration
// file (serialisable via its Save method).
func PlanWorkload(w Workload, acc Accelerator) (*aether.ConfigFile, error) {
	an, err := aether.NewAnalyzer(costmodel.SetII(), acc.cfg)
	if err != nil {
		return nil, err
	}
	plan, _, err := an.Analyze(w.tr)
	return plan, err
}

// PublishedBaselines exposes the prior-accelerator reference rows the paper
// compares against (Tables 4-6).
type PublishedBaseline = baselines.Published

// Published returns the published baseline rows.
func Published() []PublishedBaseline { return baselines.All() }
