// Package fast is a reproduction of "FAST: An FHE Accelerator for
// Scalable-parallelism with Tunable-bit" (ISCA 2025) as a Go library.
//
// It exposes two layers:
//
// The functional layer (Context) is a from-scratch full-RNS CKKS
// implementation — encoding, encryption, homomorphic add/multiply/rotate,
// rescaling — with the paper's two interchangeable key-switching backends:
// the 36-bit hybrid method and a KLSS-style method organised around a 60-bit
// auxiliary chain, plus hoisted rotations. Everything is validated by
// decrypt-and-compare tests.
//
// The performance layer (Accelerator, Workload, Simulate) reproduces the
// paper's evaluation: the Aether offline planner that picks a key-switching
// method and hoisting configuration per operation, the Hemera runtime
// evaluation-key manager, the tunable-bit multiplier (TBM) area/power model,
// and a calibrated cycle-level simulator of the 4-cluster accelerator that
// regenerates every table and figure of the paper (see bench_test.go and
// cmd/benchtables).
package fast
