package fast_test

import (
	"bytes"
	"errors"
	"fmt"
	"testing"

	fast "github.com/fastfhe/fast"
)

func snapshotTestConfig() fast.ContextConfig {
	return fast.ContextConfig{
		LogN:        9,
		Levels:      3,
		LogScale:    36,
		Rotations:   []int{1, -1, 4},
		Conjugation: true,
		EnableKLSS:  true,
		Seed:        7,
	}
}

// snapshotBytes builds a context, captures a reference ciphertext + decrypt,
// and returns the serialized snapshot — the shared fixture of these tests.
func snapshotBytes(t testing.TB, cfg fast.ContextConfig, meta fast.SessionMeta) (*fast.Context, []byte) {
	t.Helper()
	ctx, err := fast.NewContext(cfg)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := ctx.WriteSessionSnapshot(&buf, meta); err != nil {
		t.Fatal(err)
	}
	return ctx, buf.Bytes()
}

// TestSessionSnapshotRoundTrip exercises the full persistence contract for
// BOTH key-switching backends: a restored context must decrypt pre-snapshot
// ciphertexts bit-identically, evaluate with every persisted key class
// (relin, rotation, conjugation — hybrid and KLSS), and carry the metadata
// through unchanged.
func TestSessionSnapshotRoundTrip(t *testing.T) {
	for _, method := range []fast.Method{fast.Hybrid, fast.KLSS} {
		t.Run(method.String(), func(t *testing.T) {
			cfg := snapshotTestConfig()
			meta := fast.SessionMeta{ID: "s1", CreatedUnixNano: 12345, Restores: 2, FaultScenario: "none"}
			ctx, snap := snapshotBytes(t, cfg, meta)

			vals := make([]complex128, ctx.Slots())
			for i := range vals {
				vals[i] = complex(0.25*float64(i%5), -0.125*float64(i%3))
			}
			ct, err := ctx.Encrypt(vals)
			if err != nil {
				t.Fatal(err)
			}
			var ctWire bytes.Buffer
			if err := ct.Serialize(&ctWire); err != nil {
				t.Fatal(err)
			}
			ref := ctx.Decrypt(ct)

			restored, gotMeta, err := fast.ReadSessionSnapshot(bytes.NewReader(snap))
			if err != nil {
				t.Fatalf("restore: %v", err)
			}
			if gotMeta != meta {
				t.Fatalf("meta round-trip: got %+v, want %+v", gotMeta, meta)
			}
			rct, err := restored.ReadCiphertext(bytes.NewReader(ctWire.Bytes()))
			if err != nil {
				t.Fatal(err)
			}
			got := restored.Decrypt(rct)
			for i := range ref {
				if got[i] != ref[i] { // bit-identical, not approximately equal
					t.Fatalf("slot %d: restored decrypt %v != reference %v", i, got[i], ref[i])
				}
			}

			// Every persisted key class must function on the restored context
			// under the method being tested.
			prod, err := restored.Mul(rct, rct, fast.WithMethod(method))
			if err != nil {
				t.Fatalf("%s Mul on restored context: %v", method, err)
			}
			if _, err := restored.Rotate(prod, 1, fast.WithMethod(method)); err != nil {
				t.Fatalf("%s Rotate on restored context: %v", method, err)
			}
			if _, err := restored.Conjugate(prod, fast.WithMethod(method)); err != nil {
				t.Fatalf("%s Conjugate on restored context: %v", method, err)
			}
		})
	}
}

// TestSessionSnapshotRestoreReseedsEncryptor: two restores at different
// Restores epochs must draw different encryption randomness (identical
// plaintext, different ciphertext bytes) — a restored daemon replaying its
// pre-crash randomness stream under the same public key would leak plaintext
// differences.
func TestSessionSnapshotRestoreReseedsEncryptor(t *testing.T) {
	_, snap := snapshotBytes(t, snapshotTestConfig(), fast.SessionMeta{ID: "s1"})
	encOnce := func(restores uint64) []byte {
		s, err := fast.DecodeSessionSnapshot(snap)
		if err != nil {
			t.Fatal(err)
		}
		s.Meta.Restores = restores
		ctx, err := s.Restore()
		if err != nil {
			t.Fatal(err)
		}
		ct, err := ctx.Encrypt(make([]complex128, ctx.Slots()))
		if err != nil {
			t.Fatal(err)
		}
		var buf bytes.Buffer
		if err := ct.Serialize(&buf); err != nil {
			t.Fatal(err)
		}
		return buf.Bytes()
	}
	if bytes.Equal(encOnce(1), encOnce(2)) {
		t.Fatal("different restore epochs produced identical encryption randomness")
	}
	if !bytes.Equal(encOnce(3), encOnce(3)) {
		t.Fatal("same restore epoch is expected to be deterministic")
	}
}

// TestSessionSnapshotRejectsConfigMutation: options that would change the
// parameter description the keys were generated for must be refused.
func TestSessionSnapshotRejectsConfigMutation(t *testing.T) {
	_, snap := snapshotBytes(t, snapshotTestConfig(), fast.SessionMeta{})
	s, err := fast.DecodeSessionSnapshot(snap)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Restore(fast.WithSeed(99)); !errors.Is(err, fast.ErrInvalidParameters) {
		t.Fatalf("WithSeed on restore: err %v, want ErrInvalidParameters", err)
	}
	if _, err := s.Restore(fast.WithRotations(2, 3)); !errors.Is(err, fast.ErrInvalidParameters) {
		t.Fatalf("WithRotations on restore: err %v, want ErrInvalidParameters", err)
	}
	// Non-mutating options stay legal.
	if _, err := s.Restore(fast.WithDefaultMethod(fast.KLSS)); err != nil {
		t.Fatalf("WithDefaultMethod(KLSS) on KLSS-enabled snapshot: %v", err)
	}
}

// TestSessionSnapshotCorruption is the integrity table test: truncation at
// every structural boundary and bit flips in every region must surface as
// ErrCorruptSnapshot — never a panic, never a context.
func TestSessionSnapshotCorruption(t *testing.T) {
	_, snap := snapshotBytes(t, snapshotTestConfig(), fast.SessionMeta{ID: "s1"})
	n := len(snap)
	cases := []struct {
		name   string
		mutate func([]byte) []byte
	}{
		{"empty", func(b []byte) []byte { return nil }},
		{"truncated-magic", func(b []byte) []byte { return b[:4] }},
		{"truncated-header", func(b []byte) []byte { return b[:14] }},
		{"truncated-keys", func(b []byte) []byte { return b[:n/2] }},
		{"truncated-checksum", func(b []byte) []byte { return b[:n-16] }},
		{"flip-magic", flipByte(0)},
		{"flip-header-len", flipByte(9)},
		{"flip-header", flipByte(20)},
		{"flip-keys", flipByte(n / 2)},
		{"flip-last-key-byte", flipByte(n - 33)},
		{"flip-checksum", flipByte(n - 1)},
		{"appended-garbage", func(b []byte) []byte { return append(b, 0xAA, 0xBB) }},
		{"doubled", func(b []byte) []byte { return append(b, b...) }},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			mutated := tc.mutate(append([]byte(nil), snap...))
			s, err := fast.DecodeSessionSnapshot(mutated)
			if err == nil {
				// The decode layer can only be passed by a valid checksum;
				// nothing here should reach Restore.
				if _, rerr := s.Restore(); rerr == nil {
					t.Fatal("corrupt snapshot restored successfully")
				} else if !errors.Is(rerr, fast.ErrCorruptSnapshot) {
					t.Fatalf("restore error %v does not wrap ErrCorruptSnapshot", rerr)
				}
				return
			}
			if !errors.Is(err, fast.ErrCorruptSnapshot) {
				t.Fatalf("decode error %v does not wrap ErrCorruptSnapshot", err)
			}
		})
	}
}

func flipByte(i int) func([]byte) []byte {
	return func(b []byte) []byte {
		b[i] ^= 0x40
		return b
	}
}

// FuzzSessionSnapshot hardens DecodeSessionSnapshot+Restore against arbitrary
// input: any mutation of a valid snapshot (or raw garbage) must either be
// rejected with a typed error or decode losslessly — never panic, and never
// restore from bytes that differ from a checksum-valid snapshot.
func FuzzSessionSnapshot(f *testing.F) {
	cfg := fast.ContextConfig{LogN: 4, Levels: 1, LogScale: 20, Seed: 3}
	ctx, err := fast.NewContext(cfg)
	if err != nil {
		f.Fatal(err)
	}
	var buf bytes.Buffer
	if err := ctx.WriteSessionSnapshot(&buf, fast.SessionMeta{ID: "f"}); err != nil {
		f.Fatal(err)
	}
	valid := buf.Bytes()
	f.Add(valid)
	f.Add([]byte{})
	f.Add([]byte("FASTSNP\x01garbage"))
	f.Add(valid[:len(valid)/2])
	mut := append([]byte(nil), valid...)
	mut[len(mut)/3] ^= 1
	f.Add(mut)

	f.Fuzz(func(t *testing.T, data []byte) {
		s, err := fast.DecodeSessionSnapshot(data)
		if err != nil {
			if !errors.Is(err, fast.ErrCorruptSnapshot) {
				t.Fatalf("decode error %v does not wrap ErrCorruptSnapshot", err)
			}
			return
		}
		// Checksum passed: the input must BE a well-formed snapshot; restoring
		// may still fail (typed), but must not panic.
		if _, err := s.Restore(); err != nil {
			var ok bool
			for _, sentinel := range []error{fast.ErrCorruptSnapshot, fast.ErrInvalidParameters, fast.ErrMethodUnavailable} {
				if errors.Is(err, sentinel) {
					ok = true
					break
				}
			}
			if !ok {
				t.Fatalf("restore failed without a typed error: %v", err)
			}
		}
	})
}

// ExampleContext_WriteSessionSnapshot documents the durability API: snapshot
// a session, restore it elsewhere, decrypt bit-identically.
func ExampleContext_WriteSessionSnapshot() {
	ctx, _ := fast.NewContext(fast.ContextConfig{LogN: 9, Levels: 2, LogScale: 36, Seed: 1})
	ct, _ := ctx.Encrypt([]complex128{1 + 2i})
	var wire, snap bytes.Buffer
	_ = ct.Serialize(&wire)
	_ = ctx.WriteSessionSnapshot(&snap, fast.SessionMeta{ID: "s1"})

	restored, meta, _ := fast.ReadSessionSnapshot(&snap)
	rct, _ := restored.ReadCiphertext(&wire)
	vals := restored.Decrypt(rct)
	fmt.Printf("%s: %.0f%+.0fi\n", meta.ID, real(vals[0]), imag(vals[0]))
	// Output: s1: 1+2i
}
