// Benchmark harness: one benchmark per table and figure of the paper's
// evaluation. Each benchmark regenerates the corresponding rows/series and
// prints them (once) alongside the published values, then times the
// computation that produces them. Run with:
//
//	go test -bench=. -benchmem
//
// The EXPERIMENTS.md file records the printed numbers next to the paper's.
package fast

import (
	"fmt"
	"math/rand"
	"os"
	"sync"
	"sync/atomic"
	"testing"

	"github.com/fastfhe/fast/internal/arch"
	"github.com/fastfhe/fast/internal/baselines"
	"github.com/fastfhe/fast/internal/costmodel"
	"github.com/fastfhe/fast/internal/tbm"
)

var printOnce sync.Map

// printTable emits a table once per benchmark name.
func printTable(b *testing.B, body func()) {
	if _, done := printOnce.LoadOrStore(b.Name(), true); !done {
		fmt.Fprintf(os.Stdout, "\n=== %s ===\n", b.Name())
		body()
	}
}

func mustSimulate(b *testing.B, w Workload, a Accelerator, m PlanMode) *Report {
	b.Helper()
	r, err := Simulate(w, a, m)
	if err != nil {
		b.Fatal(err)
	}
	return r
}

// --- Fig. 2: hybrid vs KLSS modular operations across levels ---

func BenchmarkFig2_QuantitativeLine(b *testing.B) {
	p := costmodel.SetII()
	printTable(b, func() {
		fmt.Println("level  hybrid_Mops  klss_Mops  quantitative_line (paper: >1 at 25-35, <1 at 5-12)")
		for l := 4; l <= 35; l++ {
			hy := p.HybridKeySwitch(l, 1).Total() / 1e6
			kl := p.KLSSKeySwitch(l, 1).Total() / 1e6
			fmt.Printf("%5d  %11.1f  %9.1f  %5.3f\n", l, hy, kl, hy/kl)
		}
	})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for l := 4; l <= 35; l++ {
			_ = p.QuantitativeLine(l, 1)
		}
	}
}

func BenchmarkFig2_KernelBreakdown(b *testing.B) {
	p := costmodel.SetII()
	printTable(b, func() {
		fmt.Println("level  method   NTT_Mops  BConv_Mops  KeyMult_Mops  Other_Mops")
		for _, l := range []int{5, 12, 21, 24, 25, 35} {
			for _, m := range []costmodel.Method{costmodel.Hybrid, costmodel.KLSS} {
				bd := p.KeySwitch(m, l, 1)
				fmt.Printf("%5d  %-7v  %8.1f  %10.1f  %12.1f  %10.1f\n",
					l, m, bd.NTT/1e6, bd.BConv/1e6, bd.KeyMult/1e6, bd.Other/1e6)
			}
		}
	})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, l := range []int{5, 12, 21, 24, 25, 35} {
			_ = p.HybridKeySwitch(l, 1)
			_ = p.KLSSKeySwitch(l, 1)
		}
	}
}

// --- Fig. 3: hoisting impact and working-set sizes ---

func BenchmarkFig3a_HoistingBreakdown(b *testing.B) {
	p := costmodel.SetII()
	printTable(b, func() {
		fmt.Println("level 35, KLSS totals normalised to hybrid (paper: rises towards 1 with h)")
		fmt.Println("hoist  hybrid_Mops  klss_Mops  klss/hybrid")
		for _, h := range []int{1, 2, 4, 6} {
			hy := p.HybridKeySwitch(35, h).Total() / 1e6
			kl := p.KLSSKeySwitch(35, h).Total() / 1e6
			fmt.Printf("%5d  %11.1f  %9.1f  %11.3f\n", h, hy, kl, kl/hy)
		}
	})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, h := range []int{1, 2, 4, 6} {
			_ = p.HybridKeySwitch(35, h)
			_ = p.KLSSKeySwitch(35, h)
		}
	}
}

func BenchmarkFig3b_WorkingSet(b *testing.B) {
	p := costmodel.SetII()
	printTable(b, func() {
		const mb = 1 << 20
		fmt.Println("level  ct_MB  evk_hybrid_MB  evk_klss_MB  4ct_MB  8ct_MB   (paper at 35: 19.7 / 79.3 / 295.3)")
		for l := 5; l <= 35; l += 5 {
			fmt.Printf("%5d  %5.1f  %13.1f  %11.1f  %6.1f  %6.1f\n", l,
				float64(p.CiphertextBytes(l))/mb,
				float64(p.EvkBytes(costmodel.Hybrid, l))/mb,
				float64(p.EvkBytes(costmodel.KLSS, l))/mb,
				float64(4*p.CiphertextBytes(l))/mb,
				float64(8*p.CiphertextBytes(l))/mb)
		}
	})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for l := 1; l <= 35; l++ {
			_ = p.EvkBytes(costmodel.Hybrid, l)
			_ = p.EvkBytes(costmodel.KLSS, l)
		}
	}
}

// --- Fig. 4: ALU area/power scaling with word length ---

func BenchmarkFig4_ALUScaling(b *testing.B) {
	printTable(b, func() {
		fmt.Println("bits  mult_area  mult_power  modmult_area  modmult_power  (normalised to 36b; paper 60b: 2.8/2.7/2.9/2.8)")
		for _, w := range []int{28, 32, 36, 44, 52, 60, 64} {
			fmt.Printf("%4d  %9.2f  %10.2f  %12.2f  %13.2f\n", w,
				tbm.RelativeArea(tbm.MultOnly, w), tbm.RelativePower(tbm.MultOnly, w),
				tbm.RelativeArea(tbm.ModMult, w), tbm.RelativePower(tbm.ModMult, w))
		}
	})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, w := range []int{28, 36, 60, 64} {
			_ = tbm.RelativeArea(tbm.ModMult, w)
			_ = tbm.RelativePower(tbm.ModMult, w)
		}
	}
}

// --- Table 3: FAST component area/power budget ---

func BenchmarkTable3_AreaPower(b *testing.B) {
	cfg := arch.FAST()
	printTable(b, func() {
		fmt.Println("component       area_mm2  peak_power_W")
		for _, c := range arch.Components() {
			ap := cfg.ComponentBudget(c)
			fmt.Printf("%-14s  %8.2f  %12.2f\n", c, ap.AreaMM2, ap.PowerW)
		}
		t := cfg.TotalAreaPower()
		fmt.Printf("%-14s  %8.2f  %12.2f   (paper total: 283.75 mm2)\n", "Total", t.AreaMM2, t.PowerW)
	})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = cfg.TotalAreaPower()
	}
}

// --- Table 4: hardware comparison against prior accelerators ---

func BenchmarkTable4_HardwareComparison(b *testing.B) {
	printTable(b, func() {
		fmt.Println("name          bits  lanes  onchip_MB  area_mm2")
		for _, r := range Published() {
			fmt.Printf("%-12s  %4d  %5d  %9.0f  %8.1f\n", r.Name, r.BitWidth, r.Lanes, r.OnChipMB, r.AreaMM2)
		}
		f := FASTAccelerator()
		fmt.Printf("%-12s  %4d  %5d  %9.0f  %8.1f   (our model)\n",
			"FAST(model)", 60, f.Config().Lanes(), f.Config().OnChipMB, f.AreaMM2())
	})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = FASTAccelerator().AreaMM2()
	}
}

// --- Table 5: execution time of every workload on every configuration ---

func BenchmarkTable5_ExecutionTime(b *testing.B) {
	ws := []Workload{BootstrapWorkload(), HELRWorkload(256), HELRWorkload(1024), ResNet20Workload()}
	accs := []Accelerator{SHARPAccelerator(), SHARPLMAccelerator(), SHARP8CAccelerator(), SHARPLM8CAccelerator(), FASTAccelerator()}
	printTable(b, func() {
		fmt.Println("config        bootstrap_ms  helr256_ms  helr1024_ms  resnet20_ms")
		for _, acc := range accs {
			fmt.Printf("%-12s", acc.Name())
			for _, w := range ws {
				r := mustSimulate(b, w, acc, PlanAuto)
				fmt.Printf("  %10.2f", r.TimeMS)
			}
			fmt.Println()
		}
		fmt.Println("published:")
		for _, p := range Published() {
			if p.Bootstrap > 0 {
				fmt.Printf("%-12s  %10.2f  %10.2f  %11.2f  %11.2f\n", p.Name, p.Bootstrap, p.HELR256, p.HELR1024, p.ResNet20)
			}
		}
	})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = mustSimulate(b, ws[0], accs[len(accs)-1], PlanAuto)
	}
}

// --- Table 6: amortised multiplication time per slot ---

// tMultAS computes T_mult,a/s = (T_bootstrap + L_eff * T_mult) / (slots * L_eff).
func tMultAS(b *testing.B, acc Accelerator) float64 {
	r := mustSimulate(b, BootstrapWorkload(), acc, PlanAuto)
	const slots = 1 << 15
	const lEff = 8
	// A multiplication at the refreshed levels is far cheaper than the
	// bootstrap itself; approximate it with the EvalMod per-mult cost share.
	multMS := r.PhaseCycles["EvalMod"] / 7 / 1e6
	return (r.TimeMS + lEff*multMS) * 1e6 / (slots * lEff) // ns per slot-mult
}

func BenchmarkTable6_AmortizedMult(b *testing.B) {
	printTable(b, func() {
		fmt.Println("accelerator   T_mult,a/s_ns   (published)")
		for _, p := range append(Published(), baselines.Table6Extra()...) {
			if p.TmultNS > 0 {
				fmt.Printf("%-12s  %12.1f   (published)\n", p.Name, p.TmultNS)
			}
		}
		fmt.Printf("%-12s  %12.1f   (our model; paper 5.4)\n", "FAST(model)", tMultAS(b, FASTAccelerator()))
		fmt.Printf("%-12s  %12.1f   (our model; paper 12.8)\n", "SHARP(model)", tMultAS(b, SHARPAccelerator()))
	})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = tMultAS(b, FASTAccelerator())
	}
}

// --- Table 7: power, energy, EDP per workload ---

func BenchmarkTable7_PowerEnergyEDP(b *testing.B) {
	ws := []Workload{BootstrapWorkload(), HELRWorkload(256), HELRWorkload(1024), ResNet20Workload()}
	printTable(b, func() {
		fmt.Println("workload    avg_power_W  energy_J  EDP_mJs   (paper bootstrap: 120 W, 0.16 J)")
		for _, w := range ws {
			r := mustSimulate(b, w, FASTAccelerator(), PlanAuto)
			fmt.Printf("%-10s  %11.1f  %8.3f  %7.3f\n", w.Name(), r.AvgPowerW, r.EnergyJ, r.EDP*1e3)
		}
	})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = mustSimulate(b, ws[0], FASTAccelerator(), PlanAuto)
	}
}

// --- Fig. 10: execution-time breakdown OneKSW / Hoisting / Aether ---

func BenchmarkFig10_Breakdown(b *testing.B) {
	w := BootstrapWorkload()
	printTable(b, func() {
		fmt.Println("plan      time_ms  hybrid_Mcy  klss_Mcy   (paper: hoisting -10%, Aether 1.24x, 57% of hybrid time replaced)")
		for _, tc := range []struct {
			name string
			mode PlanMode
		}{{"oneksw", PlanOneKSW}, {"hoisting", PlanHoisting}, {"aether", PlanAether}} {
			r := mustSimulate(b, w, FASTAccelerator(), tc.mode)
			fmt.Printf("%-8s  %7.3f  %10.2f  %8.2f\n", tc.name, r.TimeMS, r.HybridCycles/1e6, r.KLSSCycles/1e6)
		}
	})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = mustSimulate(b, w, FASTAccelerator(), PlanAether)
	}
}

// --- Fig. 11(a): component utilisation ---

func BenchmarkFig11a_Utilization(b *testing.B) {
	printTable(b, func() {
		r := mustSimulate(b, BootstrapWorkload(), FASTAccelerator(), PlanAuto)
		fmt.Println("component  utilisation   (paper: NTTU 66.5%, BConvU 24.3%, KMU 25.7%, HBM 44.3%)")
		fmt.Printf("NTTU    %6.1f%%\nBConvU  %6.1f%%\nKMU     %6.1f%%\nHBM     %6.1f%%\n",
			100*r.NTTUUtil, 100*r.BConvUUtil, 100*r.KMUUtil, 100*r.HBMUtil)
	})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = mustSimulate(b, BootstrapWorkload(), FASTAccelerator(), PlanAuto)
	}
}

// --- Fig. 11(b): bootstrap modular-operation comparison ---

func BenchmarkFig11b_ModOps(b *testing.B) {
	w := BootstrapWorkload()
	printTable(b, func() {
		fmt.Println("plan      total_Gops  NTT_Gops  BConv_Gops  KeyMult_Gops  Other_Gops")
		fmt.Println("(paper: FAST total -17.3%, NTT -16%, BConv +21.2%, element ops -26.7% vs hybrid-only)")
		for _, tc := range []struct {
			name string
			mode PlanMode
		}{{"hybrid", PlanOneKSW}, {"fast", PlanAether}} {
			r := mustSimulate(b, w, FASTAccelerator(), tc.mode)
			fmt.Printf("%-8s  %10.2f  %8.2f  %10.2f  %12.2f  %10.2f\n", tc.name,
				r.TotalModOps/1e9, r.KernelNTT/1e9, r.KernelBConv/1e9, r.KernelKeyMult/1e9, r.KernelOther/1e9)
		}
	})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = mustSimulate(b, w, FASTAccelerator(), PlanAether)
	}
}

// --- Fig. 12: ablation ladder ---

func BenchmarkFig12_Ablation(b *testing.B) {
	ws := []Workload{BootstrapWorkload(), HELRWorkload(256), HELRWorkload(1024), ResNet20Workload()}
	printTable(b, func() {
		fmt.Println("config           bootstrap  helr256  helr1024  resnet20   (ms; ladder must be monotone)")
		for _, acc := range []Accelerator{FASTAccelerator(), FASTNoTBMAccelerator(), FAST36Accelerator()} {
			fmt.Printf("%-15s", acc.Name())
			for _, w := range ws {
				r := mustSimulate(b, w, acc, PlanAuto)
				fmt.Printf("  %8.2f", r.TimeMS)
			}
			fmt.Println()
		}
	})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = mustSimulate(b, ws[0], FASTNoTBMAccelerator(), PlanAuto)
	}
}

// --- Fig. 13: sensitivity to SRAM capacity and cluster count ---

func BenchmarkFig13a_MemorySensitivity(b *testing.B) {
	printTable(b, func() {
		fmt.Println("onchip_MB  time_ms  area_mm2  perf_per_area   (paper: small SRAM hurts, oversize plateaus)")
		for _, mb := range []float64{70, 140, 281, 422, 562} {
			acc := FASTAccelerator().WithOnChipMB(mb)
			r := mustSimulate(b, BootstrapWorkload(), acc, PlanAuto)
			perfArea := 1 / (r.TimeMS * acc.AreaMM2())
			fmt.Printf("%9.0f  %7.3f  %8.1f  %13.5f\n", mb, r.TimeMS, acc.AreaMM2(), perfArea*1e3)
		}
	})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = mustSimulate(b, BootstrapWorkload(), FASTAccelerator().WithOnChipMB(140), PlanAuto)
	}
}

func BenchmarkFig13b_ClusterSensitivity(b *testing.B) {
	printTable(b, func() {
		fmt.Println("clusters  time_ms  area_mm2  perf_per_area   (paper: 8C = 1.7x perf, 1.37x area)")
		base := 0.0
		for _, n := range []int{2, 4, 8} {
			acc := FASTAccelerator()
			if n != 4 {
				acc = acc.WithClusters(n)
			}
			r := mustSimulate(b, BootstrapWorkload(), acc, PlanAuto)
			if n == 4 {
				base = r.TimeMS
			}
			fmt.Printf("%8d  %7.3f  %8.1f  %13.5f\n", n, r.TimeMS, acc.AreaMM2(), 1e3/(r.TimeMS*acc.AreaMM2()))
		}
		if base == 0 {
			fmt.Println("(4-cluster base missing)")
		}
	})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = mustSimulate(b, BootstrapWorkload(), FASTAccelerator().WithClusters(8), PlanAuto)
	}
}

// --- Functional-layer microbenchmarks ---

func benchCtx(b *testing.B) *Context {
	b.Helper()
	ctx, err := NewContext(DefaultConfig())
	if err != nil {
		b.Fatal(err)
	}
	return ctx
}

func randomVec(n int) []complex128 {
	rng := rand.New(rand.NewSource(1))
	v := make([]complex128, n)
	for i := range v {
		v[i] = complex(rng.Float64()-0.5, rng.Float64()-0.5)
	}
	return v
}

func BenchmarkFunctionalEncrypt(b *testing.B) {
	ctx := benchCtx(b)
	v := randomVec(ctx.Slots())
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := ctx.Encrypt(v); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFunctionalMulHybrid(b *testing.B) {
	ctx := benchCtx(b)
	ct, _ := ctx.Encrypt(randomVec(ctx.Slots()))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := ctx.Mul(ct, ct, WithMethod(Hybrid)); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFunctionalMulKLSS(b *testing.B) {
	ctx := benchCtx(b)
	ct, _ := ctx.Encrypt(randomVec(ctx.Slots()))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := ctx.Mul(ct, ct, WithMethod(KLSS)); err != nil {
			b.Fatal(err)
		}
	}
}

// --- Throughput: one Context shared by concurrent request streams ---
//
// The concurrency model targets the server scenario of §6: many independent
// homomorphic requests against one key set. Scratch pooling plus the
// stateless per-call options mean ops/sec should scale with the number of
// caller goroutines (the acceptance bar is >= 1.5x at 4 goroutines).
// Compare:
//
//	go test -bench 'BenchmarkThroughputMul/goroutines=(1|4|8)' -benchmem

func benchThroughput(b *testing.B, goroutines int, op func(i int) error) {
	b.Helper()
	b.ResetTimer()
	var wg sync.WaitGroup
	next := int64(0)
	fail := func(err error) {
		b.Error(err)
	}
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(atomic.AddInt64(&next, 1)) - 1
				if i >= b.N {
					return
				}
				if err := op(i); err != nil {
					fail(err)
					return
				}
			}
		}()
	}
	wg.Wait()
}

func BenchmarkThroughputMul(b *testing.B) {
	ctx := benchCtx(b)
	ct, _ := ctx.Encrypt(randomVec(ctx.Slots()))
	for _, g := range []int{1, 4, 8} {
		b.Run(fmt.Sprintf("goroutines=%d", g), func(b *testing.B) {
			benchThroughput(b, g, func(int) error {
				_, err := ctx.Mul(ct, ct, WithMethod(Hybrid))
				return err
			})
		})
	}
}

func BenchmarkThroughputRotate(b *testing.B) {
	ctx := benchCtx(b)
	ct, _ := ctx.Encrypt(randomVec(ctx.Slots()))
	for _, g := range []int{1, 4, 8} {
		b.Run(fmt.Sprintf("goroutines=%d", g), func(b *testing.B) {
			benchThroughput(b, g, func(i int) error {
				// Alternate backends to stress per-call method resolution.
				m := Hybrid
				if i%2 == 1 {
					m = KLSS
				}
				_, err := ctx.Rotate(ct, 1, WithMethod(m))
				return err
			})
		})
	}
}

// BenchmarkLatencyMulParallel measures the other use of the same knob: a
// single stream with per-operation limb parallelism (WithParallelism) instead
// of request parallelism.
func BenchmarkLatencyMulParallel(b *testing.B) {
	ctx, err := NewContext(DefaultConfig(), WithParallelism(-1))
	if err != nil {
		b.Fatal(err)
	}
	ct, _ := ctx.Encrypt(randomVec(ctx.Slots()))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := ctx.Mul(ct, ct); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFunctionalRotateHoisted4(b *testing.B) {
	ctx := benchCtx(b)
	ct, _ := ctx.Encrypt(randomVec(ctx.Slots()))
	rots := []int{1, 2, 4, 8}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := ctx.RotateHoisted(ct, rots); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkTBMMul60(b *testing.B) {
	x := uint64(0x0ABCDEF012345678) & ((1 << 60) - 1)
	y := uint64(0x0123456789ABCDEF) & ((1 << 60) - 1)
	var hi, lo uint64
	for i := 0; i < b.N; i++ {
		hi, lo = tbm.Mul60(x, y)
	}
	_ = hi
	_ = lo
}
