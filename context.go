package fast

import (
	"fmt"

	"github.com/fastfhe/fast/internal/ckks"
)

// Method selects a key-switching backend.
type Method int

const (
	// Hybrid is the 36-bit ModUp/KeyMult/ModDown method (paper Fig. 1(a)).
	Hybrid Method = iota
	// KLSS is the 60-bit double-decomposition method (paper Fig. 1(b)).
	KLSS
)

func (m Method) String() string {
	if m == KLSS {
		return "klss"
	}
	return "hybrid"
}

func (m Method) internal() ckks.KeySwitchMethod {
	if m == KLSS {
		return ckks.KLSS
	}
	return ckks.Hybrid
}

// ContextConfig describes a functional CKKS instantiation.
type ContextConfig struct {
	// LogN is the ring-degree exponent (N = 2^LogN). Values of 11-13 run
	// comfortably on a laptop; the paper's hardware parameters use 16.
	LogN int
	// LogSlots is the packing exponent; defaults to LogN-1 (full packing).
	LogSlots int
	// Levels is the multiplicative depth (ciphertext limbs = Levels+1).
	Levels int
	// LogScale is log2 of the encoding scale Δ (default 36, the paper's
	// ciphertext word size).
	LogScale int
	// Rotations lists the rotation amounts to generate Galois keys for.
	Rotations []int
	// Conjugation requests the conjugation key.
	Conjugation bool
	// EnableKLSS additionally generates the 60-bit-chain keys so the KLSS
	// backend can run (costs ~3.7x the key storage, §3.1).
	EnableKLSS bool
	// Seed makes all randomness deterministic (0 uses a fixed default).
	Seed int64
}

// DefaultConfig returns a laptop-friendly configuration exercising both
// backends.
func DefaultConfig() ContextConfig {
	return ContextConfig{
		LogN:        11,
		Levels:      5,
		LogScale:    36,
		Rotations:   []int{1, -1, 2, 4, 8},
		Conjugation: true,
		EnableKLSS:  true,
		Seed:        1,
	}
}

// Context owns a key set and evaluator over one CKKS parameter set. It is
// the entry point of the functional layer.
type Context struct {
	params  *ckks.Parameters
	encoder *ckks.Encoder
	sk      *ckks.SecretKey
	enc     *ckks.Encryptor
	dec     *ckks.Decryptor
	keys    *ckks.EvaluationKeySet
	eval    *ckks.Evaluator
}

// Ciphertext is an encrypted vector of complex values.
type Ciphertext struct {
	ct *ckks.Ciphertext
}

// Level returns the remaining multiplicative level ℓ.
func (c *Ciphertext) Level() int { return c.ct.Level }

// Scale returns the current encoding scale.
func (c *Ciphertext) Scale() float64 { return c.ct.Scale }

// NewContext compiles the configuration, generates all keys and returns a
// ready-to-use context.
func NewContext(cfg ContextConfig) (*Context, error) {
	if cfg.LogN == 0 {
		cfg = DefaultConfig()
	}
	if cfg.LogSlots == 0 {
		cfg.LogSlots = cfg.LogN - 1
	}
	if cfg.LogScale == 0 {
		cfg.LogScale = 36
	}
	if cfg.Seed == 0 {
		cfg.Seed = 1
	}
	if cfg.Levels < 1 {
		return nil, fmt.Errorf("fast: need at least one multiplicative level")
	}

	logQ := make([]int, cfg.Levels+1)
	logQ[0] = cfg.LogScale + 14 // q0 absorbs the message plus noise margin
	if logQ[0] > 55 {
		logQ[0] = 55
	}
	for i := 1; i < len(logQ); i++ {
		logQ[i] = cfg.LogScale
	}
	lit := ckks.ParametersLiteral{
		LogN:     cfg.LogN,
		LogSlots: cfg.LogSlots,
		LogQ:     logQ,
		LogP:     []int{logQ[0], logQ[0]},
		LogScale: cfg.LogScale,
		Alpha:    2,
		Seed:     cfg.Seed,
	}
	if cfg.EnableKLSS {
		lit.LogT = []int{60, 60}
		lit.AlphaT = 2
	}
	params, err := ckks.NewParameters(lit)
	if err != nil {
		return nil, err
	}

	ctx := &Context{params: params}
	ctx.encoder = ckks.NewEncoder(params)
	kgen := ckks.NewKeyGenerator(params)
	ctx.sk = kgen.GenSecretKey()
	pk := kgen.GenPublicKey(ctx.sk)
	ctx.enc = ckks.NewEncryptor(params, pk)
	ctx.dec = ckks.NewDecryptor(params, ctx.sk)

	methods := []ckks.KeySwitchMethod{ckks.Hybrid}
	if cfg.EnableKLSS {
		methods = append(methods, ckks.KLSS)
	}
	ctx.keys, err = kgen.GenEvaluationKeySet(ctx.sk, methods, cfg.Rotations, cfg.Conjugation)
	if err != nil {
		return nil, err
	}
	ctx.eval, err = ckks.NewEvaluator(params, ctx.keys)
	if err != nil {
		return nil, err
	}
	return ctx, nil
}

// Slots returns the number of packed values per ciphertext.
func (c *Context) Slots() int { return c.params.Slots() }

// MaxLevel returns the multiplicative depth of the parameter set.
func (c *Context) MaxLevel() int { return c.params.MaxLevel() }

// SupportsKLSS reports whether the KLSS backend is available.
func (c *Context) SupportsKLSS() bool { return c.params.SupportsKLSS() }

// SecurityEstimate returns a coarse classical-security estimate in bits for
// the context's parameters (HE-Standard table heuristic — a sanity gauge,
// not a cryptographic analysis). The default laptop-sized parameter sets
// are deliberately NOT secure.
func (c *Context) SecurityEstimate() float64 { return c.params.SecurityEstimate() }

// IsSecure reports whether the estimate clears 128 bits.
func (c *Context) IsSecure() bool { return c.params.IsSecure() }

// SetMethod routes subsequent HMult/HRot operations through the given
// key-switching backend — the hook the Aether planner drives.
func (c *Context) SetMethod(m Method) error { return c.eval.SetMethod(m.internal()) }

// Encrypt encodes and encrypts a vector (padded to the slot count).
func (c *Context) Encrypt(values []complex128) (*Ciphertext, error) {
	pt, err := c.encoder.Encode(values)
	if err != nil {
		return nil, err
	}
	ct, err := c.enc.Encrypt(pt)
	if err != nil {
		return nil, err
	}
	return &Ciphertext{ct}, nil
}

// Decrypt decrypts and decodes a ciphertext.
func (c *Context) Decrypt(ct *Ciphertext) []complex128 {
	return c.encoder.Decode(c.dec.Decrypt(ct.ct))
}

// Add returns a+b.
func (c *Context) Add(a, b *Ciphertext) (*Ciphertext, error) {
	out, err := c.eval.Add(a.ct, b.ct)
	return wrap(out, err)
}

// Sub returns a-b.
func (c *Context) Sub(a, b *Ciphertext) (*Ciphertext, error) {
	out, err := c.eval.Sub(a.ct, b.ct)
	return wrap(out, err)
}

// Mul returns a*b, relinearised and rescaled.
func (c *Context) Mul(a, b *Ciphertext) (*Ciphertext, error) {
	prod, err := c.eval.MulRelin(a.ct, b.ct)
	if err != nil {
		return nil, err
	}
	out, err := c.eval.Rescale(prod)
	return wrap(out, err)
}

// MulPlain multiplies by a plaintext vector and rescales.
func (c *Context) MulPlain(a *Ciphertext, values []complex128) (*Ciphertext, error) {
	pt, err := c.encoder.EncodeAtLevel(values, a.ct.Level, c.params.Scale())
	if err != nil {
		return nil, err
	}
	prod, err := c.eval.MulPlain(a.ct, pt)
	if err != nil {
		return nil, err
	}
	out, err := c.eval.Rescale(prod)
	return wrap(out, err)
}

// AddPlain adds a plaintext vector.
func (c *Context) AddPlain(a *Ciphertext, values []complex128) (*Ciphertext, error) {
	pt, err := c.encoder.EncodeAtLevel(values, a.ct.Level, a.ct.Scale)
	if err != nil {
		return nil, err
	}
	out, err := c.eval.AddPlain(a.ct, pt)
	return wrap(out, err)
}

// MulConst multiplies by a real constant and rescales.
func (c *Context) MulConst(a *Ciphertext, v float64) (*Ciphertext, error) {
	prod, err := c.eval.MulConst(a.ct, v)
	if err != nil {
		return nil, err
	}
	out, err := c.eval.Rescale(prod)
	return wrap(out, err)
}

// AddConst adds a real constant.
func (c *Context) AddConst(a *Ciphertext, v float64) (*Ciphertext, error) {
	out, err := c.eval.AddConst(a.ct, v)
	return wrap(out, err)
}

// Rotate cyclically rotates the slots by r (positive = towards lower
// indices).
func (c *Context) Rotate(a *Ciphertext, r int) (*Ciphertext, error) {
	out, err := c.eval.Rotate(a.ct, r)
	return wrap(out, err)
}

// RotateHoisted produces all requested rotations of one ciphertext sharing a
// single decomposition (the hoisting optimisation, §2.2.3).
func (c *Context) RotateHoisted(a *Ciphertext, rotations []int) (map[int]*Ciphertext, error) {
	outs, err := c.eval.RotateHoisted(a.ct, rotations)
	if err != nil {
		return nil, err
	}
	m := make(map[int]*Ciphertext, len(outs))
	for r, ct := range outs {
		m[r] = &Ciphertext{ct}
	}
	return m, nil
}

// Conjugate returns the slot-wise complex conjugate.
func (c *Context) Conjugate(a *Ciphertext) (*Ciphertext, error) {
	out, err := c.eval.Conjugate(a.ct)
	return wrap(out, err)
}

func wrap(ct *ckks.Ciphertext, err error) (*Ciphertext, error) {
	if err != nil {
		return nil, err
	}
	return &Ciphertext{ct}, nil
}
