package fast

import (
	"context"
	"fmt"
	"strconv"

	"github.com/fastfhe/fast/internal/ckks"
	"github.com/fastfhe/fast/internal/obs"
)

// Method selects a key-switching backend.
type Method int

const (
	// Hybrid is the 36-bit ModUp/KeyMult/ModDown method (paper Fig. 1(a)).
	Hybrid Method = iota
	// KLSS is the 60-bit double-decomposition method (paper Fig. 1(b)).
	KLSS
)

func (m Method) String() string {
	if m == KLSS {
		return "klss"
	}
	return "hybrid"
}

func (m Method) internal() ckks.KeySwitchMethod {
	if m == KLSS {
		return ckks.KLSS
	}
	return ckks.Hybrid
}

// ContextConfig describes a functional CKKS instantiation.
type ContextConfig struct {
	// LogN is the ring-degree exponent (N = 2^LogN). Values of 11-13 run
	// comfortably on a laptop; the paper's hardware parameters use 16.
	LogN int
	// LogSlots is the packing exponent; defaults to LogN-1 (full packing).
	LogSlots int
	// Levels is the multiplicative depth (ciphertext limbs = Levels+1).
	Levels int
	// LogScale is log2 of the encoding scale Δ (default 36, the paper's
	// ciphertext word size).
	LogScale int
	// Rotations lists the rotation amounts to generate Galois keys for.
	Rotations []int
	// Conjugation requests the conjugation key.
	Conjugation bool
	// EnableKLSS additionally generates the 60-bit-chain keys so the KLSS
	// backend can run (costs ~3.7x the key storage, §3.1).
	EnableKLSS bool
	// Seed makes all randomness deterministic (0 uses a fixed default).
	Seed int64
	// Parallelism caps the per-operation goroutine fan-out of the
	// limb-level kernels (see WithParallelism): 0 or 1 = serial per op
	// (default; concurrency comes from callers), n >= 2 = up to n workers
	// per op, negative = GOMAXPROCS.
	Parallelism int
}

// DefaultConfig returns a laptop-friendly configuration exercising both
// backends.
func DefaultConfig() ContextConfig {
	return ContextConfig{
		LogN:        11,
		Levels:      5,
		LogScale:    36,
		Rotations:   []int{1, -1, 2, 4, 8},
		Conjugation: true,
		EnableKLSS:  true,
		Seed:        1,
	}
}

// Context owns a key set and evaluator over one CKKS parameter set. It is
// the entry point of the functional layer.
//
// A Context is safe for concurrent use by multiple goroutines: every
// operation draws scratch from pooled buffers, per-call options carry the
// key-switching method instead of shared state, and the default method is
// fixed at construction (WithDefaultMethod). See README.md ("Concurrency
// model") for what is shared and what is pooled.
type Context struct {
	cfg           ContextConfig // resolved configuration (defaults applied)
	params        *ckks.Parameters
	encoder       *ckks.Encoder
	sk            *ckks.SecretKey
	pk            *ckks.PublicKey
	enc           *ckks.Encryptor
	dec           *ckks.Decryptor
	keys          *ckks.EvaluationKeySet
	eval          *ckks.Evaluator
	defaultMethod Method      // for calls without WithMethod; immutable
	observer      *Observer   // nil unless WithObserver was passed
	faults        *faultState // nil unless WithFaultPlan was passed
	evk           *evkBinding // nil unless WithEvkCache was passed
}

// Ciphertext is an encrypted vector of complex values.
type Ciphertext struct {
	ct *ckks.Ciphertext
}

// Level returns the remaining multiplicative level ℓ (-1 for a nil handle).
func (c *Ciphertext) Level() int {
	if c == nil || c.ct == nil {
		return -1
	}
	return c.ct.Level
}

// Scale returns the current encoding scale (0 for a nil handle).
func (c *Ciphertext) Scale() float64 {
	if c == nil || c.ct == nil {
		return 0
	}
	return c.ct.Scale
}

// NewContext compiles the configuration, generates all keys and returns a
// ready-to-use context. Options are applied on top of cfg (last writer
// wins): NewContext(fast.DefaultConfig(), fast.WithParallelism(4),
// fast.WithDefaultMethod(fast.KLSS)).
func NewContext(cfg ContextConfig, opts ...Option) (*Context, error) {
	cfg, settings, err := resolveConfig(cfg, opts)
	if err != nil {
		return nil, err
	}
	params, err := compileParameters(cfg)
	if err != nil {
		return nil, err
	}
	kgen := ckks.NewKeyGenerator(params)
	sk := kgen.GenSecretKey()
	pk := kgen.GenPublicKey(sk)
	methods := []ckks.KeySwitchMethod{ckks.Hybrid}
	if cfg.EnableKLSS {
		methods = append(methods, ckks.KLSS)
	}
	keys, err := kgen.GenEvaluationKeySet(sk, methods, cfg.Rotations, cfg.Conjugation)
	if err != nil {
		return nil, err
	}
	return assembleContext(cfg, settings, params, sk, pk, keys, params.Seed()+0x5eed)
}

// resolveConfig applies options on top of cfg, fills defaults and validates
// the cross-field invariants shared by fresh construction and snapshot
// restoration. The returned cfg is fully resolved: compiling it again yields
// the identical parameter set, which is why it can be embedded verbatim in a
// session snapshot.
func resolveConfig(cfg ContextConfig, opts []Option) (ContextConfig, contextSettings, error) {
	settings := contextSettings{cfg: &cfg, defaultMethod: Hybrid}
	for _, o := range opts {
		o(&settings)
	}
	if cfg.LogN == 0 {
		cfg = DefaultConfig()
		settings.cfg = &cfg
		for _, o := range opts {
			o(&settings)
		}
	}
	if cfg.LogSlots == 0 {
		cfg.LogSlots = cfg.LogN - 1
	}
	if cfg.LogScale == 0 {
		cfg.LogScale = 36
	}
	if cfg.Seed == 0 {
		cfg.Seed = 1
	}
	if cfg.Levels < 1 {
		return cfg, settings, fmt.Errorf("fast: need at least one multiplicative level: %w", ErrInvalidParameters)
	}
	if settings.defaultMethod == KLSS && !cfg.EnableKLSS {
		return cfg, settings, fmt.Errorf("fast: WithDefaultMethod(KLSS) requires EnableKLSS: %w", ErrMethodUnavailable)
	}
	return cfg, settings, nil
}

// compileParameters maps a resolved ContextConfig onto a CKKS parameter set.
// The mapping is deterministic: prime-chain generation depends only on the
// literal, so the same config always compiles to bit-identical ring tables —
// the property snapshot restoration relies on to pair persisted key material
// with freshly compiled parameters.
func compileParameters(cfg ContextConfig) (*ckks.Parameters, error) {
	logQ := make([]int, cfg.Levels+1)
	logQ[0] = cfg.LogScale + 14 // q0 absorbs the message plus noise margin
	if logQ[0] > 55 {
		logQ[0] = 55
	}
	for i := 1; i < len(logQ); i++ {
		logQ[i] = cfg.LogScale
	}
	lit := ckks.ParametersLiteral{
		LogN:     cfg.LogN,
		LogSlots: cfg.LogSlots,
		LogQ:     logQ,
		LogP:     []int{logQ[0], logQ[0]},
		LogScale: cfg.LogScale,
		Alpha:    2,
		Seed:     cfg.Seed,
	}
	if cfg.EnableKLSS {
		lit.LogT = []int{60, 60}
		lit.AlphaT = 2
	}
	return ckks.NewParameters(lit)
}

// assembleContext wires a Context from compiled parameters plus key material
// — freshly generated (NewContext) or deserialised from a session snapshot
// (SessionSnapshot.Restore). encSeed seeds the encryptor's deterministic
// sampler stream; restoration passes a per-epoch seed so a restored session
// never replays pre-crash encryption randomness.
func assembleContext(cfg ContextConfig, settings contextSettings, params *ckks.Parameters,
	sk *ckks.SecretKey, pk *ckks.PublicKey, keys *ckks.EvaluationKeySet, encSeed int64) (*Context, error) {
	ctx := &Context{cfg: cfg, params: params, sk: sk, pk: pk, keys: keys}
	ctx.encoder = ckks.NewEncoder(params)
	ctx.enc = ckks.NewEncryptorWithSeed(params, pk, encSeed)
	ctx.dec = ckks.NewDecryptor(params, sk)
	if settings.observer != nil {
		ctx.observer = settings.observer
		ctx.enc.SetObserver(settings.observer.internal())
	}
	var err error
	ctx.eval, err = ckks.NewEvaluatorOptions(params, keys, ckks.EvaluatorOptions{
		Parallelism: cfg.Parallelism,
		Observer:    settings.observer.internal(),
	})
	if err != nil {
		return nil, err
	}
	ctx.defaultMethod = settings.defaultMethod
	if err := ctx.eval.SetMethod(settings.defaultMethod.internal()); err != nil {
		return nil, err
	}
	if settings.faultPlan != nil && settings.faultPlan.Enabled() {
		ctx.faults = newFaultState(params, *settings.faultPlan)
		ctx.faults.setObserver(ctx.observer)
	}
	ctx.evk = settings.evk
	return ctx, nil
}

// validate enforces the ciphertext structural invariants at the public API
// boundary: non-nil handles and internally consistent level/limb/degree/scale
// state. Violations wrap ErrInvalidCiphertext. The check is O(levels), not
// O(N) — it never scans coefficients.
func (c *Context) validate(cts ...*Ciphertext) error {
	for _, ct := range cts {
		if ct == nil || ct.ct == nil {
			return fmt.Errorf("fast: nil ciphertext: %w", ErrInvalidCiphertext)
		}
		if err := ct.ct.Validate(c.params); err != nil {
			return err
		}
	}
	return nil
}

// settings resolves per-call options against the context default. A
// WithRequestID tag is folded into the call context here, so option order
// never matters.
func (c *Context) settings(opts []OpOption) opSettings {
	s := opSettings{method: c.defaultMethod}
	for _, o := range opts {
		o(&s)
	}
	if s.requestID != "" {
		base := s.ctx
		if base == nil {
			base = context.Background()
		}
		s.ctx = obs.WithRequestID(base, s.requestID)
	}
	return s
}

// Observer returns the observer attached with WithObserver (nil when the
// context is unobserved).
func (c *Context) Observer() *Observer { return c.observer }

// Metrics returns a point-in-time snapshot of the context's instruments: op
// counts and latency histograms per operation and key-switching backend,
// key-switch phase timings, encryptor and sampler activity, and scratch-pool
// traffic. On an unobserved context the snapshot is empty.
func (c *Context) Metrics() *MetricsSnapshot { return c.observer.Metrics() }

// Config returns the resolved configuration the context was built from
// (defaults applied). Compiling it again yields an identical parameter set,
// so it is the parameter description embedded in session snapshots.
func (c *Context) Config() ContextConfig { return c.cfg }

// Slots returns the number of packed values per ciphertext.
func (c *Context) Slots() int { return c.params.Slots() }

// MaxLevel returns the multiplicative depth of the parameter set.
func (c *Context) MaxLevel() int { return c.params.MaxLevel() }

// SupportsKLSS reports whether the KLSS backend is available.
func (c *Context) SupportsKLSS() bool { return c.params.SupportsKLSS() }

// SecurityEstimate returns a coarse classical-security estimate in bits for
// the context's parameters (HE-Standard table heuristic — a sanity gauge,
// not a cryptographic analysis). The default laptop-sized parameter sets
// are deliberately NOT secure.
func (c *Context) SecurityEstimate() float64 { return c.params.SecurityEstimate() }

// IsSecure reports whether the estimate clears 128 bits.
func (c *Context) IsSecure() bool { return c.params.IsSecure() }

// Method returns the default key-switching backend, fixed at construction
// with WithDefaultMethod. Per-call overrides use WithMethod; there is no
// runtime mutator (the former SetMethod shim is gone — a mutable process-wide
// mode cannot coexist with concurrent planned execution).
func (c *Context) Method() Method { return c.defaultMethod }

// Encrypt encodes and encrypts a vector (padded to the slot count). Safe for
// concurrent use (the sampler behind the encryptor is serialised).
func (c *Context) Encrypt(values []complex128) (*Ciphertext, error) {
	pt, err := c.encoder.Encode(values)
	if err != nil {
		return nil, err
	}
	ct, err := c.enc.Encrypt(pt)
	if err != nil {
		return nil, err
	}
	return &Ciphertext{ct}, nil
}

// Decrypt decrypts and decodes a ciphertext. A nil or structurally invalid
// ciphertext decrypts to nil (the signature predates the error taxonomy;
// every other entry point returns a typed error instead).
func (c *Context) Decrypt(ct *Ciphertext) []complex128 {
	if c.validate(ct) != nil {
		return nil
	}
	return c.encoder.Decode(c.dec.Decrypt(ct.ct))
}

// Add returns a+b.
func (c *Context) Add(a, b *Ciphertext) (*Ciphertext, error) {
	if err := c.validate(a, b); err != nil {
		return nil, err
	}
	out, err := c.eval.Add(a.ct, b.ct)
	return wrap(out, err)
}

// Sub returns a-b.
func (c *Context) Sub(a, b *Ciphertext) (*Ciphertext, error) {
	if err := c.validate(a, b); err != nil {
		return nil, err
	}
	out, err := c.eval.Sub(a.ct, b.ct)
	return wrap(out, err)
}

// Mul returns a*b, relinearised and (unless NoRescale is passed) rescaled.
// The key-switching backend is chosen per call: ctx.Mul(a, b,
// fast.WithMethod(fast.KLSS)).
func (c *Context) Mul(a, b *Ciphertext, opts ...OpOption) (*Ciphertext, error) {
	if err := c.validate(a, b); err != nil {
		return nil, err
	}
	s := c.settings(opts)
	c.faults.request(c.params, "relin", min(a.ct.Level, b.ct.Level), s.method)
	c.evk.request(c.params, "relin", min(a.ct.Level, b.ct.Level), s.method)
	prod, err := c.eval.MulRelinCtx(s.ctx, a.ct, b.ct, s.method.internal())
	if err != nil {
		return nil, err
	}
	if s.noRescale {
		return &Ciphertext{prod}, nil
	}
	out, err := c.eval.RescaleCtx(s.ctx, prod)
	return wrap(out, err)
}

// MulCtx is Mul with cancellation: ctx is polled at cheap checkpoints inside
// the tensoring, relinearisation and rescale kernels, and the operation
// abandons with an error matching fast.ErrCanceled or fast.ErrDeadline (and
// the corresponding context sentinel) as soon as ctx is done. Shorthand for
// Mul(a, b, append(opts, WithContext(ctx))...).
func (c *Context) MulCtx(ctx context.Context, a, b *Ciphertext, opts ...OpOption) (*Ciphertext, error) {
	return c.Mul(a, b, append(opts[:len(opts):len(opts)], WithContext(ctx))...)
}

// MulPlain multiplies by a plaintext vector and (unless NoRescale is passed)
// rescales.
func (c *Context) MulPlain(a *Ciphertext, values []complex128, opts ...OpOption) (*Ciphertext, error) {
	if err := c.validate(a); err != nil {
		return nil, err
	}
	s := c.settings(opts)
	pt, err := c.encoder.EncodeAtLevel(values, a.ct.Level, c.params.Scale())
	if err != nil {
		return nil, err
	}
	prod, err := c.eval.MulPlain(a.ct, pt)
	if err != nil {
		return nil, err
	}
	if s.noRescale {
		return &Ciphertext{prod}, nil
	}
	out, err := c.eval.RescaleCtx(s.ctx, prod)
	return wrap(out, err)
}

// AddPlain adds a plaintext vector.
func (c *Context) AddPlain(a *Ciphertext, values []complex128) (*Ciphertext, error) {
	if err := c.validate(a); err != nil {
		return nil, err
	}
	pt, err := c.encoder.EncodeAtLevel(values, a.ct.Level, a.ct.Scale)
	if err != nil {
		return nil, err
	}
	out, err := c.eval.AddPlain(a.ct, pt)
	return wrap(out, err)
}

// MulConst multiplies by a real constant and (unless NoRescale is passed)
// rescales.
func (c *Context) MulConst(a *Ciphertext, v float64, opts ...OpOption) (*Ciphertext, error) {
	if err := c.validate(a); err != nil {
		return nil, err
	}
	s := c.settings(opts)
	prod, err := c.eval.MulConst(a.ct, v)
	if err != nil {
		return nil, err
	}
	if s.noRescale {
		return &Ciphertext{prod}, nil
	}
	out, err := c.eval.RescaleCtx(s.ctx, prod)
	return wrap(out, err)
}

// AddConst adds a real constant.
func (c *Context) AddConst(a *Ciphertext, v float64) (*Ciphertext, error) {
	if err := c.validate(a); err != nil {
		return nil, err
	}
	out, err := c.eval.AddConst(a.ct, v)
	return wrap(out, err)
}

// Rescale divides a by its top chain prime, dropping one level and the
// corresponding scale factor. Pairs with NoRescale: accumulate several
// unrescaled products at the same scale, then rescale the sum once.
func (c *Context) Rescale(a *Ciphertext, opts ...OpOption) (*Ciphertext, error) {
	if err := c.validate(a); err != nil {
		return nil, err
	}
	s := c.settings(opts)
	out, err := c.eval.RescaleCtx(s.ctx, a.ct)
	return wrap(out, err)
}

// Rotate cyclically rotates the slots by r (positive = towards lower
// indices). The key-switching backend is chosen per call via WithMethod.
func (c *Context) Rotate(a *Ciphertext, r int, opts ...OpOption) (*Ciphertext, error) {
	if err := c.validate(a); err != nil {
		return nil, err
	}
	s := c.settings(opts)
	c.faults.request(c.params, "rot:"+strconv.Itoa(r), a.ct.Level, s.method)
	c.evk.request(c.params, "rot:"+strconv.Itoa(r), a.ct.Level, s.method)
	out, err := c.eval.RotateCtx(s.ctx, a.ct, r, s.method.internal())
	return wrap(out, err)
}

// RotateCtx is Rotate with cancellation (see MulCtx for semantics).
func (c *Context) RotateCtx(ctx context.Context, a *Ciphertext, r int, opts ...OpOption) (*Ciphertext, error) {
	return c.Rotate(a, r, append(opts[:len(opts):len(opts)], WithContext(ctx))...)
}

// RotateHoisted produces all requested rotations of one ciphertext sharing a
// single decomposition (the hoisting optimisation, §2.2.3).
func (c *Context) RotateHoisted(a *Ciphertext, rotations []int, opts ...OpOption) (map[int]*Ciphertext, error) {
	if err := c.validate(a); err != nil {
		return nil, err
	}
	s := c.settings(opts)
	for _, r := range rotations {
		if r != 0 {
			c.faults.request(c.params, "rot:"+strconv.Itoa(r), a.ct.Level, s.method)
			c.evk.request(c.params, "rot:"+strconv.Itoa(r), a.ct.Level, s.method)
		}
	}
	outs, err := c.eval.RotateHoistedCtx(s.ctx, a.ct, rotations, s.method.internal())
	if err != nil {
		return nil, err
	}
	m := make(map[int]*Ciphertext, len(outs))
	for r, ct := range outs {
		m[r] = &Ciphertext{ct}
	}
	return m, nil
}

// RotateHoistedCtx is RotateHoisted with cancellation (see MulCtx for
// semantics); ctx is additionally polled between the per-rotation key
// multiplications that share the hoisted decomposition.
func (c *Context) RotateHoistedCtx(ctx context.Context, a *Ciphertext, rotations []int, opts ...OpOption) (map[int]*Ciphertext, error) {
	return c.RotateHoisted(a, rotations, append(opts[:len(opts):len(opts)], WithContext(ctx))...)
}

// Conjugate returns the slot-wise complex conjugate.
func (c *Context) Conjugate(a *Ciphertext, opts ...OpOption) (*Ciphertext, error) {
	if err := c.validate(a); err != nil {
		return nil, err
	}
	s := c.settings(opts)
	c.faults.request(c.params, "conj", a.ct.Level, s.method)
	c.evk.request(c.params, "conj", a.ct.Level, s.method)
	out, err := c.eval.ConjugateCtx(s.ctx, a.ct, s.method.internal())
	return wrap(out, err)
}

// ConjugateCtx is Conjugate with cancellation (see MulCtx for semantics).
func (c *Context) ConjugateCtx(ctx context.Context, a *Ciphertext, opts ...OpOption) (*Ciphertext, error) {
	return c.Conjugate(a, append(opts[:len(opts):len(opts)], WithContext(ctx))...)
}

func wrap(ct *ckks.Ciphertext, err error) (*Ciphertext, error) {
	if err != nil {
		return nil, err
	}
	return &Ciphertext{ct}, nil
}
