// Package trace defines the FHE operation stream the performance stack
// consumes: the Aether planner analyses a Trace offline (paper Fig. 5),
// Hemera schedules its evaluation-key traffic online, and the cycle
// simulator executes it against an accelerator configuration.
//
// A Trace is deliberately a *cryptographic operation* trace, not a kernel
// trace: each op records the ciphertext level it executes at, the hoisting
// opportunity it exposes, and the evaluation key it needs. The translation
// into kernels (NTT/BConv/KeyMult counts) happens in the cost model, exactly
// as the paper's simulator "translates each application into a
// cryptographically structured operation trace ... partitioned into
// hardware-aligned kernels" (§6.1).
package trace

import "fmt"

// OpKind enumerates the FHE operations of the CKKS scheme (paper §2.1.2).
type OpKind int

const (
	// HMult is a ciphertext-ciphertext multiplication (needs the relin key).
	HMult OpKind = iota
	// HRot is a group of ciphertext rotations on one ciphertext. A group
	// with Hoist=h shares a single decomposition across its h rotations.
	HRot
	// PMult is a plaintext-ciphertext multiplication.
	PMult
	// PAdd is a plaintext-ciphertext addition.
	PAdd
	// HAdd is a ciphertext-ciphertext addition.
	HAdd
	// CMult is a scalar (constant) multiplication.
	CMult
	// Rescale divides by the top prime and drops a level.
	Rescale
	// ModRaise lifts an exhausted ciphertext back to the top of the chain
	// (the first bootstrapping step).
	ModRaise

	// numOpKinds is the sentinel bounding the enum; keep it last so the
	// exhaustiveness tests (and any table sized by op kind) stay in sync
	// when kinds are added.
	numOpKinds
)

func (k OpKind) String() string {
	switch k {
	case HMult:
		return "HMult"
	case HRot:
		return "HRot"
	case PMult:
		return "PMult"
	case PAdd:
		return "PAdd"
	case HAdd:
		return "HAdd"
	case CMult:
		return "CMult"
	case Rescale:
		return "Rescale"
	case ModRaise:
		return "ModRaise"
	default:
		return fmt.Sprintf("OpKind(%d)", int(k))
	}
}

// NeedsKeySwitch reports whether the op runs a key-switching dataflow.
func (k OpKind) NeedsKeySwitch() bool { return k == HMult || k == HRot }

// Op is one operation of the stream.
type Op struct {
	Kind  OpKind
	Level int // ciphertext level ℓ at execution time

	// Hoist is the number of rotations sharing one decomposition (HRot
	// only; 1 everywhere else). An HRot op with Hoist=h stands for the
	// whole hoisted group.
	Hoist int

	// Rotations lists the rotation amounts of an HRot group (len == Hoist).
	Rotations []int

	// Phase labels the algorithmic stage (e.g. "CoeffToSlot") for
	// execution-time breakdowns (Fig. 10).
	Phase string

	// CtID identifies the ciphertext the op consumes, for hoisting and
	// reuse analysis.
	CtID int
}

// KeyID returns the evaluation-key identity the op needs under the given
// key-switching method ("" when no key is required). Rotation keys are
// per-rotation-amount; relinearisation keys are shared. Hemera uses these
// identities for pool residency and prefetch decisions.
func (o Op) KeyID(method string, rotation int) string {
	switch o.Kind {
	case HMult:
		return fmt.Sprintf("%s/relin", method)
	case HRot:
		return fmt.Sprintf("%s/rot%d", method, rotation)
	default:
		return ""
	}
}

// HoistCount returns the effective hoist factor (>=1).
func (o Op) HoistCount() int {
	if o.Kind == HRot && o.Hoist > 1 {
		return o.Hoist
	}
	return 1
}

// Trace is a named operation stream.
type Trace struct {
	Name string
	Ops  []Op

	// Slots records the packing width the workload assumes (for T_mult,a/s
	// style metrics).
	Slots int
}

// Append adds an op, defaulting Hoist to 1.
func (t *Trace) Append(op Op) {
	if op.Hoist < 1 {
		op.Hoist = 1
	}
	t.Ops = append(t.Ops, op)
}

// KeySwitchCount returns the total number of key-switch dataflows in the
// trace (each rotation of a hoisted group counts once).
func (t *Trace) KeySwitchCount() int {
	n := 0
	for _, op := range t.Ops {
		if op.Kind.NeedsKeySwitch() {
			n += op.HoistCount()
		}
	}
	return n
}

// Phases returns the distinct phase labels in first-appearance order.
func (t *Trace) Phases() []string {
	var out []string
	seen := map[string]bool{}
	for _, op := range t.Ops {
		if op.Phase != "" && !seen[op.Phase] {
			seen[op.Phase] = true
			out = append(out, op.Phase)
		}
	}
	return out
}

// Validate checks structural invariants: levels non-negative, hoisted groups
// carry their rotation lists.
func (t *Trace) Validate() error {
	for i, op := range t.Ops {
		if op.Level < 0 {
			return fmt.Errorf("trace %q op %d (%v): negative level %d", t.Name, i, op.Kind, op.Level)
		}
		if op.Kind == HRot {
			if len(op.Rotations) != op.HoistCount() {
				return fmt.Errorf("trace %q op %d: %d rotations for hoist %d",
					t.Name, i, len(op.Rotations), op.HoistCount())
			}
		} else if op.Hoist > 1 {
			return fmt.Errorf("trace %q op %d (%v): hoisting only applies to HRot", t.Name, i, op.Kind)
		}
	}
	return nil
}
