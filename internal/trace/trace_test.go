package trace

import "testing"

func TestOpKindStrings(t *testing.T) {
	kinds := []OpKind{HMult, HRot, PMult, PAdd, HAdd, CMult, Rescale, ModRaise}
	seen := map[string]bool{}
	for _, k := range kinds {
		s := k.String()
		if s == "" || seen[s] {
			t.Fatalf("bad or duplicate name %q", s)
		}
		seen[s] = true
	}
	if OpKind(99).String() == "" {
		t.Error("unknown kind should print")
	}
}

func TestNeedsKeySwitch(t *testing.T) {
	if !HMult.NeedsKeySwitch() || !HRot.NeedsKeySwitch() {
		t.Error("HMult/HRot must need key-switching")
	}
	for _, k := range []OpKind{PMult, PAdd, HAdd, CMult, Rescale, ModRaise} {
		if k.NeedsKeySwitch() {
			t.Errorf("%v should not need key-switching", k)
		}
	}
}

func TestKeyID(t *testing.T) {
	mult := Op{Kind: HMult, Level: 3}
	if got := mult.KeyID("hybrid", 0); got != "hybrid/relin" {
		t.Errorf("HMult key id %q", got)
	}
	rot := Op{Kind: HRot, Level: 3, Rotations: []int{5}}
	if got := rot.KeyID("klss", 5); got != "klss/rot5" {
		t.Errorf("HRot key id %q", got)
	}
	if got := (Op{Kind: PMult}).KeyID("hybrid", 0); got != "" {
		t.Errorf("PMult should have no key, got %q", got)
	}
}

func TestHoistCount(t *testing.T) {
	if (Op{Kind: HRot, Hoist: 4, Rotations: []int{1, 2, 3, 4}}).HoistCount() != 4 {
		t.Error("hoisted group count wrong")
	}
	if (Op{Kind: HRot, Rotations: []int{1}}).HoistCount() != 1 {
		t.Error("default hoist should be 1")
	}
	if (Op{Kind: HMult, Hoist: 4}).HoistCount() != 1 {
		t.Error("non-HRot hoist must clamp to 1")
	}
}

func TestAppendDefaultsHoist(t *testing.T) {
	var tr Trace
	tr.Append(Op{Kind: PMult, Level: 2})
	if tr.Ops[0].Hoist != 1 {
		t.Error("Append should default Hoist to 1")
	}
}

func TestKeySwitchCount(t *testing.T) {
	tr := Trace{Name: "t"}
	tr.Append(Op{Kind: HMult, Level: 5})
	tr.Append(Op{Kind: HRot, Level: 5, Hoist: 4, Rotations: []int{1, 2, 3, 4}})
	tr.Append(Op{Kind: PMult, Level: 5})
	if got := tr.KeySwitchCount(); got != 5 {
		t.Errorf("KeySwitchCount = %d, want 5", got)
	}
}

func TestPhases(t *testing.T) {
	tr := Trace{}
	tr.Append(Op{Kind: PMult, Phase: "A"})
	tr.Append(Op{Kind: PMult, Phase: "B"})
	tr.Append(Op{Kind: PMult, Phase: "A"})
	tr.Append(Op{Kind: PMult})
	ph := tr.Phases()
	if len(ph) != 2 || ph[0] != "A" || ph[1] != "B" {
		t.Errorf("Phases = %v", ph)
	}
}

func TestValidate(t *testing.T) {
	good := Trace{Name: "g"}
	good.Append(Op{Kind: HRot, Level: 3, Hoist: 2, Rotations: []int{1, 2}})
	if err := good.Validate(); err != nil {
		t.Errorf("valid trace rejected: %v", err)
	}

	bad := Trace{Name: "b1"}
	bad.Append(Op{Kind: PMult, Level: -1})
	if bad.Validate() == nil {
		t.Error("negative level accepted")
	}

	bad2 := Trace{Name: "b2"}
	bad2.Append(Op{Kind: HRot, Level: 1, Hoist: 3, Rotations: []int{1}})
	if bad2.Validate() == nil {
		t.Error("rotation/hoist mismatch accepted")
	}

	bad3 := Trace{Name: "b3", Ops: []Op{{Kind: HMult, Level: 1, Hoist: 2}}}
	if bad3.Validate() == nil {
		t.Error("hoisted HMult accepted")
	}
}
