package trace

import (
	"strings"
	"testing"
)

// Every OpKind must carry a real name: the numeric fallback leaking into
// metric names or trace labels would silently fork the instrument vocabulary
// shared between the functional evaluator and the simulator.
func TestOpKindStringExhaustive(t *testing.T) {
	seen := map[string]OpKind{}
	for k := OpKind(0); k < numOpKinds; k++ {
		s := k.String()
		if strings.HasPrefix(s, "OpKind(") {
			t.Errorf("OpKind %d has no name (got fallback %q)", int(k), s)
		}
		if prev, dup := seen[s]; dup {
			t.Errorf("OpKind %d and %d share the name %q", int(prev), int(k), s)
		}
		seen[s] = k
	}
	// The fallback must still fire for out-of-range values.
	if s := numOpKinds.String(); !strings.HasPrefix(s, "OpKind(") {
		t.Errorf("sentinel stringified as %q, want fallback", s)
	}
}
