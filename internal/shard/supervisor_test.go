package shard

import (
	"context"
	"errors"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"github.com/fastfhe/fast/internal/obs"
)

// fakeProbe is a controllable per-shard health signal.
type fakeProbe struct {
	mu   sync.Mutex
	fail map[int]bool
}

func (p *fakeProbe) set(shard int, failing bool) {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.fail == nil {
		p.fail = map[int]bool{}
	}
	p.fail[shard] = failing
}

func (p *fakeProbe) probe(_ context.Context, shard int) error {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.fail[shard] {
		return errors.New("wedged")
	}
	return nil
}

func waitFor(t *testing.T, d time.Duration, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(d)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(2 * time.Millisecond)
	}
	t.Fatalf("timed out waiting for %s", what)
}

// TestSupervisorFenceUnfenceFault: a shard that fails Threshold consecutive
// probes is fenced (OnFence fires, ring stops routing to it); once the probe
// recovers it is unfenced and rejoins the ring.
func TestSupervisorFenceUnfenceFault(t *testing.T) {
	ring := NewRing(3, 8)
	probe := &fakeProbe{}
	var fenced, unfenced atomic.Int64
	reg := obs.NewRegistry()
	sup := NewSupervisor(ring, SupervisorConfig{
		Shards:    3,
		Probe:     probe.probe,
		Interval:  5 * time.Millisecond,
		Threshold: 2,
		OnFence:   func(int, string) { fenced.Add(1) },
		OnUnfence: func(int) { unfenced.Add(1) },
		Reg:       reg,
	})
	defer sup.Stop()

	probe.set(1, true)
	waitFor(t, 2*time.Second, "shard 1 fenced", func() bool { return ring.Fenced(1) })
	if fenced.Load() == 0 {
		t.Fatal("OnFence did not fire")
	}
	if ring.Live() != 2 {
		t.Fatalf("live = %d, want 2", ring.Live())
	}

	probe.set(1, false)
	waitFor(t, 2*time.Second, "shard 1 unfenced", func() bool { return !ring.Fenced(1) })
	if unfenced.Load() == 0 {
		t.Fatal("OnUnfence did not fire")
	}
	if got := reg.Counter("shard.supervisor.fences").Value(); got == 0 {
		t.Fatal("fence counter not incremented")
	}
}

// TestSupervisorSingleFailureBelowThresholdFault: one transient probe
// failure below the threshold must NOT fence — fencing is for sustained
// wedges, not blips.
func TestSupervisorSingleFailureBelowThresholdFault(t *testing.T) {
	ring := NewRing(2, 8)
	probe := &fakeProbe{}
	sup := NewSupervisor(ring, SupervisorConfig{
		Shards:    2,
		Probe:     probe.probe,
		Interval:  5 * time.Millisecond,
		Threshold: 5,
	})
	defer sup.Stop()
	probe.set(0, true)
	time.Sleep(15 * time.Millisecond) // < Threshold*Interval
	probe.set(0, false)
	time.Sleep(20 * time.Millisecond)
	if ring.Fenced(0) {
		t.Fatal("single sub-threshold failure fenced the shard")
	}
}

// TestSupervisorKillIsPermanentChaos: Kill fences immediately and the
// supervisor never unfences the victim, even though its probe is healthy —
// the SIGKILL analogue the chaos harness relies on.
func TestSupervisorKillIsPermanentChaos(t *testing.T) {
	ring := NewRing(3, 8)
	probe := &fakeProbe{} // always healthy
	var fences atomic.Int64
	sup := NewSupervisor(ring, SupervisorConfig{
		Shards:   3,
		Probe:    probe.probe,
		Interval: 2 * time.Millisecond,
		OnFence:  func(int, string) { fences.Add(1) },
	})
	defer sup.Stop()

	sup.Kill(2, "chaos")
	sup.Kill(2, "chaos-again") // idempotent
	if !ring.Fenced(2) || !sup.Killed(2) {
		t.Fatal("kill did not fence")
	}
	if fences.Load() != 1 {
		t.Fatalf("OnFence fired %d times, want 1", fences.Load())
	}
	// Healthy probes keep running; the killed shard must stay fenced.
	time.Sleep(30 * time.Millisecond)
	if !ring.Fenced(2) {
		t.Fatal("supervisor resurrected a killed shard")
	}
	if ring.Live() != 2 {
		t.Fatalf("live = %d, want 2", ring.Live())
	}
}

// TestSupervisorProbeTimeoutFault: a probe that blocks past ProbeTimeout
// counts as a failure (the wedged-pool case: the task never gets a worker).
func TestSupervisorProbeTimeoutFault(t *testing.T) {
	ring := NewRing(2, 8)
	sup := NewSupervisor(ring, SupervisorConfig{
		Shards: 2,
		Probe: func(ctx context.Context, shard int) error {
			if shard == 0 {
				<-ctx.Done() // wedged: never completes
				return ctx.Err()
			}
			return nil
		},
		Interval:     5 * time.Millisecond,
		ProbeTimeout: 5 * time.Millisecond,
		Threshold:    2,
	})
	defer sup.Stop()
	waitFor(t, 2*time.Second, "wedged shard fenced", func() bool { return ring.Fenced(0) })
	if ring.Fenced(1) {
		t.Fatal("healthy shard fenced")
	}
}
