package shard

import (
	"context"
	"sync"
	"time"

	"github.com/fastfhe/fast/internal/obs"
)

// Supervisor health-checks shards and fences the ones that stop responding.
//
// Every Interval it sends each live shard a probe through the shard's own
// admission path (the Probe callback — fastd wires a no-op task through the
// shard's worker pool, so a wedged pool, a full queue that never drains or a
// deadlocked worker all surface as probe failures). Threshold consecutive
// failures fence the shard: the ring stops routing to it and the OnFence
// callback migrates its sessions. A fenced shard keeps being probed; one
// clean probe unfences it (the wedge cleared — e.g. the queue drained), with
// OnUnfence giving the owner a chance to reclaim routing state. Shards
// fenced via Kill are dead to the supervisor and are never probed again —
// that is the in-process analogue of SIGKILL, used by the chaos harness.
//
// A probe failure means "the shard cannot currently execute work", not "the
// backend is unhealthy": breaker-open refusals are deliberately wedge-class
// here, because a shard whose breaker is open still cannot serve and its
// sessions are better off remapped; the breaker will be probed again after
// unfence anyway.
type Supervisor struct {
	cfg  SupervisorConfig
	ring *Ring

	mu     sync.Mutex
	fails  []int  // consecutive probe failures per shard
	killed []bool // fenced permanently via Kill; never probed again
	fences uint64

	stop chan struct{}
	done chan struct{}
	once sync.Once

	mProbes   *obs.Counter
	mFailures *obs.Counter
	mFences   *obs.Counter
	mUnfences *obs.Counter
	mLive     *obs.Gauge
}

// SupervisorConfig wires a Supervisor.
type SupervisorConfig struct {
	// Shards is the member count; must match the ring.
	Shards int
	// Probe executes one health probe against shard i, bounded by ctx. A nil
	// Probe disables the loop (Kill/fencing still work — the chaos path).
	Probe func(ctx context.Context, shard int) error
	// Interval between probe rounds (default 500ms).
	Interval time.Duration
	// ProbeTimeout bounds one probe (default Interval).
	ProbeTimeout time.Duration
	// Threshold is the consecutive-failure count that fences (default 3).
	Threshold int
	// OnFence runs after shard i is fenced (ring already updated): migrate
	// its sessions, count, log. Called outside the supervisor lock.
	OnFence func(shard int, reason string)
	// OnUnfence runs after a recovered shard rejoins the ring.
	OnUnfence func(shard int)
	// Reg registers the shard.supervisor.* instruments (nil disables).
	Reg *obs.Registry
}

func (c SupervisorConfig) withDefaults() SupervisorConfig {
	if c.Interval <= 0 {
		c.Interval = 500 * time.Millisecond
	}
	if c.ProbeTimeout <= 0 {
		c.ProbeTimeout = c.Interval
	}
	if c.Threshold < 1 {
		c.Threshold = 3
	}
	return c
}

// NewSupervisor builds the supervisor over ring and starts the probe loop
// (when cfg.Probe is set). Stop it with Stop.
func NewSupervisor(ring *Ring, cfg SupervisorConfig) *Supervisor {
	cfg = cfg.withDefaults()
	if cfg.Shards <= 0 {
		cfg.Shards = ring.Members()
	}
	s := &Supervisor{
		cfg:    cfg,
		ring:   ring,
		fails:  make([]int, cfg.Shards),
		killed: make([]bool, cfg.Shards),
		stop:   make(chan struct{}),
		done:   make(chan struct{}),
	}
	if reg := cfg.Reg; reg != nil {
		s.mProbes = reg.Counter("shard.supervisor.probes")
		s.mFailures = reg.Counter("shard.supervisor.probe_failures")
		s.mFences = reg.Counter("shard.supervisor.fences")
		s.mUnfences = reg.Counter("shard.supervisor.unfences")
		s.mLive = reg.Gauge("shard.live")
	}
	s.mLive.Set(int64(ring.Live()))
	if cfg.Probe != nil {
		go s.loop()
	} else {
		close(s.done)
	}
	return s
}

func (s *Supervisor) loop() {
	defer close(s.done)
	tick := time.NewTicker(s.cfg.Interval)
	defer tick.Stop()
	for {
		select {
		case <-s.stop:
			return
		case <-tick.C:
		}
		for i := 0; i < s.cfg.Shards; i++ {
			s.mu.Lock()
			dead := s.killed[i]
			s.mu.Unlock()
			if dead {
				continue
			}
			s.probeOne(i)
		}
	}
}

func (s *Supervisor) probeOne(i int) {
	s.mProbes.Inc()
	ctx, cancel := context.WithTimeout(context.Background(), s.cfg.ProbeTimeout)
	err := s.cfg.Probe(ctx, i)
	cancel()
	if err == nil {
		s.mu.Lock()
		s.fails[i] = 0
		s.mu.Unlock()
		if s.ring.Fenced(i) {
			s.unfence(i)
		}
		return
	}
	s.mFailures.Inc()
	s.mu.Lock()
	s.fails[i]++
	trip := s.fails[i] >= s.cfg.Threshold && !s.ring.Fenced(i)
	s.mu.Unlock()
	if trip {
		s.fence(i, "probe: "+err.Error())
	}
}

func (s *Supervisor) fence(i int, reason string) {
	live := s.ring.Fence(i)
	s.mu.Lock()
	s.fences++
	s.mu.Unlock()
	s.mFences.Inc()
	s.mLive.Set(int64(live))
	if s.cfg.OnFence != nil {
		s.cfg.OnFence(i, reason)
	}
}

func (s *Supervisor) unfence(i int) {
	live := s.ring.Unfence(i)
	s.mUnfences.Inc()
	s.mLive.Set(int64(live))
	if s.cfg.OnUnfence != nil {
		s.cfg.OnUnfence(i)
	}
}

// Kill fences shard i permanently: the supervisor will never probe (and so
// never unfence) it again. This is the SIGKILL-equivalent the chaos harness
// drives — the shard's key range moves to the survivors for the rest of the
// process lifetime. Idempotent.
func (s *Supervisor) Kill(i int, reason string) {
	if i < 0 || i >= s.cfg.Shards {
		return
	}
	s.mu.Lock()
	already := s.killed[i]
	s.killed[i] = true
	s.mu.Unlock()
	if !already && !s.ring.Fenced(i) {
		s.fence(i, reason)
	}
}

// Killed reports whether shard i was fenced permanently via Kill.
func (s *Supervisor) Killed(i int) bool {
	if i < 0 || i >= s.cfg.Shards {
		return false
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.killed[i]
}

// Fences returns how many fence transitions have occurred.
func (s *Supervisor) Fences() uint64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.fences
}

// Stop terminates the probe loop (idempotent, waits for exit).
func (s *Supervisor) Stop() {
	s.once.Do(func() { close(s.stop) })
	<-s.done
}
