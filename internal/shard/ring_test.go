package shard

import (
	"errors"
	"fmt"
	"sync"
	"testing"
)

// TestRingStableAssignment: a key maps to the same member call after call,
// and the distribution over many keys touches every member.
func TestRingStableAssignment(t *testing.T) {
	r := NewRing(4, 0)
	counts := make([]int, 4)
	for i := 0; i < 4096; i++ {
		key := fmt.Sprintf("s%d", i)
		m1, err := r.Owner(key)
		if err != nil {
			t.Fatal(err)
		}
		m2, _ := r.Owner(key)
		if m1 != m2 {
			t.Fatalf("key %q: unstable assignment %d vs %d", key, m1, m2)
		}
		counts[m1]++
	}
	for m, c := range counts {
		if c == 0 {
			t.Fatalf("member %d owns no keys out of 4096", m)
		}
	}
	// 64 vnodes keep the imbalance moderate: no member should own more than
	// ~2x its fair share at this key count.
	for m, c := range counts {
		if c > 2*4096/4 {
			t.Fatalf("member %d owns %d/4096 keys (>2x fair share)", m, c)
		}
	}
}

// TestRingFenceRemapsOnlyFencedRange: fencing one member moves exactly its
// keys; every key owned by a survivor keeps its owner. Unfencing restores
// the original mapping bit-for-bit.
func TestRingFenceRemapsOnlyFencedRange(t *testing.T) {
	r := NewRing(3, 0)
	const keys = 2048
	before := make([]int, keys)
	for i := range before {
		before[i], _ = r.Owner(fmt.Sprintf("s%d", i))
	}
	if live := r.Fence(1); live != 2 {
		t.Fatalf("live after fence = %d, want 2", live)
	}
	moved := 0
	for i := 0; i < keys; i++ {
		after, err := r.Owner(fmt.Sprintf("s%d", i))
		if err != nil {
			t.Fatal(err)
		}
		if after == 1 {
			t.Fatalf("key s%d still routed to fenced member", i)
		}
		if before[i] != 1 && after != before[i] {
			t.Fatalf("key s%d owned by survivor %d moved to %d", i, before[i], after)
		}
		if before[i] == 1 {
			moved++
		}
	}
	if moved == 0 {
		t.Fatal("fenced member owned no keys; test is vacuous")
	}
	r.Unfence(1)
	for i := 0; i < keys; i++ {
		after, _ := r.Owner(fmt.Sprintf("s%d", i))
		if after != before[i] {
			t.Fatalf("key s%d: mapping not restored after unfence (%d vs %d)", i, after, before[i])
		}
	}
}

// TestRingAllFencedShardDown: a ring with no live members refuses with the
// typed ErrShardDown, never panics or misroutes.
func TestRingAllFencedShardDown(t *testing.T) {
	r := NewRing(2, 8)
	r.Fence(0)
	r.Fence(1)
	if _, err := r.Owner("s1"); !errors.Is(err, ErrShardDown) {
		t.Fatalf("owner on dead ring: %v, want ErrShardDown", err)
	}
	if r.Live() != 0 {
		t.Fatalf("live = %d, want 0", r.Live())
	}
}

// TestRingConcurrentFenceChaos: hammer Owner while members fence/unfence
// concurrently — the race detector is the assertion, plus: a returned owner
// is always in range and never an error while >= 1 member is guaranteed live.
func TestRingConcurrentFenceChaos(t *testing.T) {
	r := NewRing(4, 16)
	var wg sync.WaitGroup
	stop := make(chan struct{})
	// Member 3 is never fenced, so Owner must always succeed.
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				m, err := r.Owner(fmt.Sprintf("w%d-%d", w, i))
				if err != nil {
					t.Errorf("owner: %v", err)
					return
				}
				if m < 0 || m > 3 {
					t.Errorf("owner out of range: %d", m)
					return
				}
			}
		}(w)
	}
	for i := 0; i < 200; i++ {
		m := i % 3
		r.Fence(m)
		r.Unfence(m)
	}
	close(stop)
	wg.Wait()
}
