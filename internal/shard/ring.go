// Package shard provides the consistent-hash routing and health-supervision
// layer fastd uses to split one process into N failure-isolated serving
// shards (and, via the same ring abstraction, one node among N peers).
//
// The ring maps a session ID onto a member with classic consistent hashing:
// each member owns `replicas` virtual points on a 64-bit hash circle, a key
// hashes to a point and walks clockwise to the first virtual point of a live
// member. Fencing a member removes it from consideration WITHOUT moving the
// virtual points of the survivors, so only the fenced member's key range is
// remapped — exactly the property failover needs: killing one shard
// redistributes its sessions across the survivors while every healthy
// session keeps its owner.
package shard

import (
	"errors"
	"fmt"
	"hash/fnv"
	"sort"
	"sync"
)

// ErrShardDown is the typed refusal for a key whose shard is fenced and not
// yet remapped, or for a ring with no live members. fastd maps it to
// 503 Service Unavailable with a Retry-After header: the condition is
// transient (failover is in progress) and a short client backoff rides it
// out.
var ErrShardDown = errors.New("shard down")

// DefaultReplicas is the virtual-node count per member. 64 points per member
// keeps the maximum/mean load ratio under ~1.3 for small N, which is plenty
// for in-process shards whose cost of imbalance is queue depth, not storage.
const DefaultReplicas = 64

// Ring is a fenceable consistent-hash ring over members 0..n-1.
// All methods are safe for concurrent use.
type Ring struct {
	mu      sync.RWMutex
	n       int
	points  []ringPoint // sorted by hash
	fenced  []bool
	live    int
	remaps  uint64 // keys that resolved past a fenced primary (telemetry)
	version uint64 // bumped on every fence/unfence
}

type ringPoint struct {
	hash   uint64
	member int
}

// NewRing builds a ring over n members with `replicas` virtual points each
// (<=0 selects DefaultReplicas). n must be >= 1.
func NewRing(n, replicas int) *Ring {
	if n < 1 {
		panic("shard: ring needs at least one member")
	}
	if replicas <= 0 {
		replicas = DefaultReplicas
	}
	r := &Ring{
		n:      n,
		points: make([]ringPoint, 0, n*replicas),
		fenced: make([]bool, n),
		live:   n,
	}
	for m := 0; m < n; m++ {
		for v := 0; v < replicas; v++ {
			r.points = append(r.points, ringPoint{hash: pointHash(m, v), member: m})
		}
	}
	sort.Slice(r.points, func(i, j int) bool { return r.points[i].hash < r.points[j].hash })
	return r
}

func pointHash(member, vnode int) uint64 {
	h := fnv.New64a()
	fmt.Fprintf(h, "shard-%d-vnode-%d", member, vnode)
	return mix64(h.Sum64())
}

func keyHash(key string) uint64 {
	h := fnv.New64a()
	_, _ = h.Write([]byte(key))
	return mix64(h.Sum64())
}

// mix64 is the splitmix64 finalizer. FNV-64a of short structured strings
// ("s17", "shard-0-vnode-3") clusters badly in the high bits that decide
// ring position; the finalizer's avalanche spreads the points evenly enough
// that 64 vnodes/member keep the load ratio reasonable.
func mix64(x uint64) uint64 {
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}

// Members returns the member count (fenced or not).
func (r *Ring) Members() int { return r.n }

// Owner resolves key to its owning live member: the first virtual point at
// or after the key's hash whose member is not fenced. With every member
// fenced it returns ErrShardDown.
func (r *Ring) Owner(key string) (int, error) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	if r.live == 0 {
		return 0, fmt.Errorf("%w: no live members", ErrShardDown)
	}
	h := keyHash(key)
	idx := sort.Search(len(r.points), func(i int) bool { return r.points[i].hash >= h })
	for probed := 0; probed < len(r.points); probed++ {
		p := r.points[(idx+probed)%len(r.points)]
		if !r.fenced[p.member] {
			if probed > 0 {
				r.remaps++
			}
			return p.member, nil
		}
	}
	return 0, fmt.Errorf("%w: no live members", ErrShardDown)
}

// Fence removes member m from routing. Keys it owned resolve to the next
// live member clockwise; everyone else's mapping is untouched. Fencing an
// already-fenced member is a no-op. Returns the number of live members left.
func (r *Ring) Fence(m int) int {
	r.mu.Lock()
	defer r.mu.Unlock()
	if m >= 0 && m < r.n && !r.fenced[m] {
		r.fenced[m] = true
		r.live--
		r.version++
	}
	return r.live
}

// Unfence restores member m to routing (its key range snaps back). No-op for
// a live member. Returns the number of live members.
func (r *Ring) Unfence(m int) int {
	r.mu.Lock()
	defer r.mu.Unlock()
	if m >= 0 && m < r.n && r.fenced[m] {
		r.fenced[m] = false
		r.live++
		r.version++
	}
	return r.live
}

// Fenced reports whether member m is fenced.
func (r *Ring) Fenced(m int) bool {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return m >= 0 && m < r.n && r.fenced[m]
}

// Live returns the number of unfenced members.
func (r *Ring) Live() int {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return r.live
}

// Remaps returns how many Owner calls resolved past at least one fenced
// virtual point — a cheap telemetry proxy for failover traffic.
func (r *Ring) Remaps() uint64 {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return r.remaps
}

// Version increments on every fence/unfence; callers can use it to detect
// topology changes cheaply.
func (r *Ring) Version() uint64 {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return r.version
}
