package workloads

import (
	"testing"

	"github.com/fastfhe/fast/internal/trace"
)

func TestBootstrapStructure(t *testing.T) {
	p := DefaultProfile()
	tr := Bootstrap(p)
	if err := tr.Validate(); err != nil {
		t.Fatalf("bootstrap trace invalid: %v", err)
	}
	phases := tr.Phases()
	want := []string{"ModRaise", "CoeffToSlot", "EvalMod", "SlotToCoeff"}
	if len(phases) != len(want) {
		t.Fatalf("phases = %v, want %v", phases, want)
	}
	for i := range want {
		if phases[i] != want[i] {
			t.Fatalf("phase %d = %q, want %q", i, phases[i], want[i])
		}
	}
	// (baby group + giants) per DFT factor, twice (CtS + StC), plus the
	// EvalMod multiplications.
	wantKS := 2*p.CtSMatrices*(p.BabySteps+p.GiantSteps) + p.EvalModMults
	if got := tr.KeySwitchCount(); got != wantKS {
		t.Errorf("key-switch count %d, want %d", got, wantKS)
	}
}

func TestBootstrapLevelsNeverBelowLEff(t *testing.T) {
	p := DefaultProfile()
	tr := Bootstrap(p)
	for i, op := range tr.Ops {
		if op.Kind == trace.HMult && op.Level-1 < 0 {
			t.Fatalf("op %d: EvalMod mult would underflow the chain", i)
		}
	}
}

func TestBootstrapExhaustedProfilePanics(t *testing.T) {
	p := DefaultProfile()
	p.EvalModMults = 20 // consumes 40 levels > L
	defer func() {
		if recover() == nil {
			t.Error("expected panic for level-exhausting profile")
		}
	}()
	Bootstrap(p)
}

func TestOFLimbCapsCoeffToSlotLevels(t *testing.T) {
	p := DefaultProfile()
	tr := Bootstrap(p)
	maxCtS := 0
	for _, op := range tr.Ops {
		if op.Phase == "CoeffToSlot" && op.Level > maxCtS {
			maxCtS = op.Level
		}
	}
	if maxCtS > p.LEff+2*p.CtSMatrices {
		t.Errorf("OF-Limb CtS level %d exceeds cap %d", maxCtS, p.LEff+2*p.CtSMatrices)
	}

	p.OFLimb = false
	tr = Bootstrap(p)
	maxCtS = 0
	for _, op := range tr.Ops {
		if op.Phase == "CoeffToSlot" && op.Level > maxCtS {
			maxCtS = op.Level
		}
	}
	if maxCtS != p.L {
		t.Errorf("without OF-Limb CtS should start at L=%d, got %d", p.L, maxCtS)
	}
}

func TestHELRVariants(t *testing.T) {
	p := DefaultProfile()
	h256 := HELR(p, 256)
	h1024 := HELR(p, 1024)
	if h256.Name != "HELR256" || h1024.Name != "HELR1024" {
		t.Fatalf("names: %q, %q", h256.Name, h1024.Name)
	}
	if len(h1024.Ops) <= len(h256.Ops) {
		t.Error("HELR1024 must carry more compute ops than HELR256")
	}
	for _, tr := range []*traceAlias{{h256}, {h1024}} {
		if err := tr.t.Validate(); err != nil {
			t.Fatalf("%s invalid: %v", tr.t.Name, err)
		}
	}
	// The batch only changes the gradient part: both share one bootstrap.
	if b256, b1024 := countPhase(h256, "CoeffToSlot"), countPhase(h1024, "CoeffToSlot"); b256 != b1024 {
		t.Errorf("bootstrap structure should be batch-independent: %d vs %d", b256, b1024)
	}
}

type traceAlias struct{ t *trace.Trace }

func countPhase(tr *trace.Trace, phase string) int {
	n := 0
	for _, op := range tr.Ops {
		if op.Phase == phase {
			n++
		}
	}
	return n
}

func TestResNet20Structure(t *testing.T) {
	p := DefaultProfile()
	tr := ResNet20(p)
	if err := tr.Validate(); err != nil {
		t.Fatalf("resnet trace invalid: %v", err)
	}
	// Bootstrap-dominated: count ModRaise ops (one per bootstrap).
	boots := 0
	for _, op := range tr.Ops {
		if op.Kind == trace.ModRaise {
			boots++
		}
	}
	if boots < 30 || boots > 50 {
		t.Errorf("ResNet-20 should bootstrap ~38-44 times, got %d", boots)
	}
	// Three stages plus stem/pool/FC phases must appear.
	for _, ph := range []string{"Stem", "Stage1", "Stage2", "Stage3", "Pool", "FC"} {
		if countPhase(tr, ph) == 0 {
			t.Errorf("missing phase %q", ph)
		}
	}
}

func TestTracesAreDeterministic(t *testing.T) {
	p := DefaultProfile()
	a, b := Bootstrap(p), Bootstrap(p)
	if len(a.Ops) != len(b.Ops) {
		t.Fatal("bootstrap generator not deterministic")
	}
	for i := range a.Ops {
		if a.Ops[i].Kind != b.Ops[i].Kind || a.Ops[i].Level != b.Ops[i].Level {
			t.Fatalf("op %d differs between runs", i)
		}
	}
}

func TestHELRTraining(t *testing.T) {
	p := DefaultProfile()
	one := HELR(p, 256)
	full := HELRTraining(p, 256, 32)
	if err := full.Validate(); err != nil {
		t.Fatalf("training trace invalid: %v", err)
	}
	if len(full.Ops) != 32*len(one.Ops) {
		t.Errorf("32 iterations should have 32x the ops: %d vs %d", len(full.Ops), 32*len(one.Ops))
	}
	if full.Name != "HELR256-x32" {
		t.Errorf("name %q", full.Name)
	}
	// Ciphertext IDs must not collide across iterations (hoisting analysis).
	if full.Ops[0].CtID == full.Ops[len(one.Ops)].CtID {
		t.Error("iterations should touch distinct ciphertexts")
	}
}
