// Package workloads generates the operation traces of the paper's benchmark
// suite (§6.2): fully-packed CKKS bootstrapping, HELR logistic-regression
// training iterations (batch 256 and 1024), and ResNet-20 inference on an
// encrypted 32x32x3 image. The traces encode the published operation
// structure — BSGS homomorphic DFTs with hoisted baby-step rotations,
// double-rescale level accounting (each HMult/PMult consumes two levels),
// and bootstrap-dominated execution — and are consumed by the Aether
// planner and the cycle simulator.
package workloads

import (
	"fmt"

	"github.com/fastfhe/fast/internal/trace"
)

// Profile fixes the CKKS parameter shape the traces assume (paper Table 2).
type Profile struct {
	L     int // maximum level (35)
	LEff  int // usable level after bootstrapping (8)
	Slots int // message slots (2^15 fully packed)

	// Bootstrap structure.
	CtSMatrices  int // homomorphic DFT factors in CoeffToSlot (3)
	BabySteps    int // hoisted rotations per DFT factor (8)
	GiantSteps   int // sequential giant-step rotations per factor (4)
	EvalModMults int // HMult depth of the approximate mod-reduction (7)

	// OFLimb enables ARK's on-the-fly limb extension (adopted by the
	// paper's methodology, §6.1): right after ModRaise the ciphertext is
	// fully determined by its base limbs, so the CoeffToSlot stage executes
	// at a small effective limb count and materialises further limbs on the
	// fly instead of key-switching 36-limb polynomials.
	OFLimb bool
}

// DefaultProfile matches the paper's Set-I/Set-II shape.
func DefaultProfile() Profile {
	return Profile{
		L:            35,
		LEff:         8,
		Slots:        1 << 15,
		CtSMatrices:  3,
		BabySteps:    8,
		GiantSteps:   4,
		EvalModMults: 7,
		OFLimb:       true,
	}
}

// dftFactor appends one BSGS homomorphic-DFT factor at the given level:
// a hoisted baby-step rotation group, sequential giant-step rotations of the
// accumulated ciphertexts (not hoistable: different ciphertexts), the
// diagonal plaintext multiplications, and the double rescale. Returns the
// level after the factor.
func (p Profile) dftFactor(t *trace.Trace, phase string, level, ctBase int) int {
	baby := make([]int, p.BabySteps)
	for i := range baby {
		baby[i] = i + 1
	}
	t.Append(trace.Op{Kind: trace.HRot, Level: level, Hoist: p.BabySteps, Rotations: baby, Phase: phase, CtID: ctBase})
	for g := 0; g < p.GiantSteps; g++ {
		t.Append(trace.Op{Kind: trace.HRot, Level: level, Rotations: []int{(g + 1) * p.BabySteps}, Phase: phase, CtID: ctBase + 1 + g})
	}
	for d := 0; d < p.BabySteps*p.GiantSteps; d++ {
		t.Append(trace.Op{Kind: trace.PMult, Level: level, Phase: phase, CtID: ctBase})
	}
	for a := 0; a < p.BabySteps*p.GiantSteps-1; a++ {
		t.Append(trace.Op{Kind: trace.HAdd, Level: level, Phase: phase, CtID: ctBase})
	}
	// Double rescale (36-bit limbs need two rescales per multiplicative
	// stage to hold precision, §5.7.1).
	t.Append(trace.Op{Kind: trace.Rescale, Level: level, Phase: phase, CtID: ctBase})
	t.Append(trace.Op{Kind: trace.Rescale, Level: level - 1, Phase: phase, CtID: ctBase})
	return level - 2
}

// appendBootstrap appends a full bootstrapping pipeline starting from an
// exhausted ciphertext, returning the level the refreshed ciphertext ends at
// (LEff).
func (p Profile) appendBootstrap(t *trace.Trace, ctBase int) int {
	level := p.L
	t.Append(trace.Op{Kind: trace.ModRaise, Level: level, Phase: "ModRaise", CtID: ctBase})

	for m := 0; m < p.CtSMatrices; m++ {
		exec := level
		if p.OFLimb {
			// Effective limb count under on-the-fly extension: the stage
			// works near the bottom of the chain and regenerates limbs.
			if eff := p.LEff + 2*(p.CtSMatrices-m); eff < exec {
				exec = eff
			}
		}
		p.dftFactor(t, "CoeffToSlot", exec, ctBase)
		level -= 2
	}
	// EvalMod: BSGS Chebyshev evaluation; each HMult is followed by the
	// double rescale.
	for i := 0; i < p.EvalModMults; i++ {
		t.Append(trace.Op{Kind: trace.HMult, Level: level, Phase: "EvalMod", CtID: ctBase})
		t.Append(trace.Op{Kind: trace.CMult, Level: level, Phase: "EvalMod", CtID: ctBase})
		t.Append(trace.Op{Kind: trace.Rescale, Level: level, Phase: "EvalMod", CtID: ctBase})
		t.Append(trace.Op{Kind: trace.Rescale, Level: level - 1, Phase: "EvalMod", CtID: ctBase})
		level -= 2
	}
	for m := 0; m < p.CtSMatrices; m++ {
		level = p.dftFactor(t, "SlotToCoeff", level, ctBase)
	}
	// INVARIANT: profiles are package-internal constants (DefaultProfile); no user input reaches this check.
	// A panic here is a repo-internal bug, never a reaction to caller input —
	// malformed inputs are rejected with typed errors at the public boundary.
	if level < p.LEff {
		panic(fmt.Sprintf("workloads: bootstrap profile exhausts the chain (ends at %d, want >= %d)", level, p.LEff))
	}
	return p.LEff
}

// Bootstrap returns the standalone fully-packed bootstrapping trace.
func Bootstrap(p Profile) *trace.Trace {
	t := &trace.Trace{Name: "Bootstrap", Slots: p.Slots}
	p.appendBootstrap(t, 0)
	if err := t.Validate(); err != nil {
		// INVARIANT: traces are generated from fixed in-repo profiles; a
		// validation failure is a bug in the generator, not caller input.
		panic(err)
	}
	return t
}

// HELR returns one logistic-regression training iteration (batch images
// packed into ciphertexts) including its bootstrap, matching the HELR256 /
// HELR1024 benchmark rows. Larger batches add ciphertexts to the gradient
// computation but share the bootstrap.
func HELR(p Profile, batch int) *trace.Trace {
	t := &trace.Trace{Name: fmt.Sprintf("HELR%d", batch), Slots: p.Slots}
	// HELR packs the batch sparsely, so its bootstrap evaluates a narrower
	// homomorphic DFT than the fully-packed pipeline.
	p.BabySteps = 6
	p.GiantSteps = 3
	p.EvalModMults = 6
	cts := batch / 256 // ciphertexts holding the batch
	if cts < 1 {
		cts = 1
	}
	level := p.LEff
	// Gradient step: inner products via rotation trees + sigmoid poly
	// (degree 7 -> 3 mults).
	for c := 0; c < cts; c++ {
		t.Append(trace.Op{Kind: trace.PMult, Level: level, Phase: "Gradient", CtID: c})
		rots := []int{1, 2, 4, 8, 16}
		t.Append(trace.Op{Kind: trace.HRot, Level: level, Hoist: len(rots), Rotations: rots, Phase: "Gradient", CtID: c})
		t.Append(trace.Op{Kind: trace.Rescale, Level: level, Phase: "Gradient", CtID: c})
	}
	level--
	for i := 0; i < 3; i++ { // sigmoid polynomial
		t.Append(trace.Op{Kind: trace.HMult, Level: level, Phase: "Sigmoid", CtID: 0})
		t.Append(trace.Op{Kind: trace.Rescale, Level: level, Phase: "Sigmoid", CtID: 0})
		t.Append(trace.Op{Kind: trace.Rescale, Level: level - 1, Phase: "Sigmoid", CtID: 0})
		level -= 2
	}
	for c := 0; c < cts; c++ { // weight update
		t.Append(trace.Op{Kind: trace.PMult, Level: level, Phase: "Update", CtID: c})
		t.Append(trace.Op{Kind: trace.HAdd, Level: level, Phase: "Update", CtID: c})
	}
	p.appendBootstrap(t, 100)
	if err := t.Validate(); err != nil {
		// INVARIANT: traces are generated from fixed in-repo profiles; a
		// validation failure is a bug in the generator, not caller input.
		panic(err)
	}
	return t
}

// HELRTraining returns the full multi-iteration logistic-regression
// training run the paper's HELR description gives (32 iterations over the
// batch, §6.2): each iteration is the single-iteration HELR trace, and the
// per-iteration bootstrap carries the weights between iterations.
func HELRTraining(p Profile, batch, iterations int) *trace.Trace {
	t := &trace.Trace{Name: fmt.Sprintf("HELR%d-x%d", batch, iterations), Slots: p.Slots}
	for it := 0; it < iterations; it++ {
		one := HELR(p, batch)
		for _, op := range one.Ops {
			op.CtID += it * 10000 // iterations touch fresh ciphertexts
			t.Append(op)
		}
	}
	if err := t.Validate(); err != nil {
		// INVARIANT: traces are generated from fixed in-repo profiles; a
		// validation failure is a bug in the generator, not caller input.
		panic(err)
	}
	return t
}

// ResNet20 returns the encrypted CNN inference trace: a stem convolution,
// three stages of residual blocks (convolutions as hoisted-rotation +
// diagonal-multiply linear maps, ReLU as a polynomial), average pooling and
// the final dense layer, with bootstraps interleaved whenever the level
// budget runs out — the structure of the multiplexed-parallel-convolution
// CKKS ResNet the paper benchmarks.
func ResNet20(p Profile) *trace.Trace {
	t := &trace.Trace{Name: "ResNet-20", Slots: p.Slots}
	ct := 0
	level := p.LEff

	conv := func(phase string, rotations int) {
		rots := make([]int, rotations)
		for i := range rots {
			rots[i] = i + 1
		}
		t.Append(trace.Op{Kind: trace.HRot, Level: level, Hoist: rotations, Rotations: rots, Phase: phase, CtID: ct})
		for d := 0; d < 2*rotations; d++ {
			t.Append(trace.Op{Kind: trace.PMult, Level: level, Phase: phase, CtID: ct})
		}
		t.Append(trace.Op{Kind: trace.Rescale, Level: level, Phase: phase, CtID: ct})
		t.Append(trace.Op{Kind: trace.Rescale, Level: level - 1, Phase: phase, CtID: ct})
		level -= 2
	}
	relu := func(phase string) {
		// Degree-27 minimax composite: 3 HMult stages fit the level
		// budget between bootstraps.
		for i := 0; i < 3; i++ {
			t.Append(trace.Op{Kind: trace.HMult, Level: level, Phase: phase, CtID: ct})
			t.Append(trace.Op{Kind: trace.Rescale, Level: level, Phase: phase, CtID: ct})
			t.Append(trace.Op{Kind: trace.Rescale, Level: level - 1, Phase: phase, CtID: ct})
			level -= 2
		}
	}
	bootstrap := func() {
		level = p.appendBootstrap(t, 1000+ct)
	}

	conv("Stem", 9)
	bootstrap()
	for stage := 0; stage < 3; stage++ {
		for block := 0; block < 3; block++ {
			phase := fmt.Sprintf("Stage%d", stage+1)
			conv(phase, 9)
			bootstrap()
			relu(phase)
			bootstrap()
			conv(phase, 9)
			bootstrap()
			relu(phase)
			bootstrap()
			t.Append(trace.Op{Kind: trace.HAdd, Level: level, Phase: phase, CtID: ct}) // residual add
			ct++
		}
	}
	// Average pooling (rotation tree) + fully connected layer.
	rots := []int{1, 2, 4, 8, 16, 32}
	t.Append(trace.Op{Kind: trace.HRot, Level: level, Hoist: len(rots), Rotations: rots, Phase: "Pool", CtID: ct})
	conv("FC", 10)
	bootstrap()

	if err := t.Validate(); err != nil {
		// INVARIANT: traces are generated from fixed in-repo profiles; a
		// validation failure is a bug in the generator, not caller input.
		panic(err)
	}
	return t
}
