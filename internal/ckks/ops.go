package ckks

import "fmt"

// InnerSum folds the sum of n consecutive slots (stride 1 groups of size
// `batch`) into every slot of each group using a hoisted rotation tree:
// out[i] = sum_{j<batch} in[group(i)+j]. batch must be a power of two.
// The rotation tree needs Galois keys for batch/2, batch/4, ..., 1.
func (ev *Evaluator) InnerSum(ct *Ciphertext, batch int) (*Ciphertext, error) {
	if batch < 1 || batch&(batch-1) != 0 {
		return nil, fmt.Errorf("ckks: InnerSum batch %d must be a power of two: %w", batch, ErrInvalidValue)
	}
	if batch > ev.params.Slots() {
		return nil, fmt.Errorf("ckks: InnerSum batch %d exceeds %d slots: %w", batch, ev.params.Slots(), ErrSlotCountMismatch)
	}
	out := ct
	var err error
	for r := 1; r < batch; r <<= 1 {
		var rot *Ciphertext
		rot, err = ev.Rotate(out, r)
		if err != nil {
			return nil, err
		}
		if out, err = ev.Add(out, rot); err != nil {
			return nil, err
		}
	}
	return out, nil
}

// Replicate spreads slot values across their group: starting from a
// ciphertext whose group leaders hold values (other slots zero), after
// Replicate every slot of a group holds the leader's value. It is the
// adjoint of InnerSum and uses the inverse rotation tree.
func (ev *Evaluator) Replicate(ct *Ciphertext, batch int) (*Ciphertext, error) {
	if batch < 1 || batch&(batch-1) != 0 {
		return nil, fmt.Errorf("ckks: Replicate batch %d must be a power of two: %w", batch, ErrInvalidValue)
	}
	if batch > ev.params.Slots() {
		return nil, fmt.Errorf("ckks: Replicate batch %d exceeds %d slots: %w", batch, ev.params.Slots(), ErrSlotCountMismatch)
	}
	out := ct
	var err error
	for r := 1; r < batch; r <<= 1 {
		var rot *Ciphertext
		rot, err = ev.Rotate(out, -r)
		if err != nil {
			return nil, err
		}
		if out, err = ev.Add(out, rot); err != nil {
			return nil, err
		}
	}
	return out, nil
}

// MaskSlots zeroes every slot where mask[i] is false (a plaintext
// multiplication by the 0/1 indicator, followed by a rescale).
func (ev *Evaluator) MaskSlots(ct *Ciphertext, mask []bool, enc *Encoder) (*Ciphertext, error) {
	if len(mask) != ev.params.Slots() {
		return nil, fmt.Errorf("ckks: mask length %d != %d slots: %w", len(mask), ev.params.Slots(), ErrSlotCountMismatch)
	}
	v := make([]complex128, len(mask))
	for i, keep := range mask {
		if keep {
			v[i] = 1
		}
	}
	pt, err := enc.EncodeAtLevel(v, ct.Level, ev.params.Scale())
	if err != nil {
		return nil, err
	}
	prod, err := ev.MulPlain(ct, pt)
	if err != nil {
		return nil, err
	}
	return ev.Rescale(prod)
}

// Average returns a ciphertext whose every slot holds the mean of each
// group of `batch` slots: InnerSum followed by the exact 1/batch constant.
func (ev *Evaluator) Average(ct *Ciphertext, batch int) (*Ciphertext, error) {
	sum, err := ev.InnerSum(ct, batch)
	if err != nil {
		return nil, err
	}
	out, err := ev.MulConst(sum, 1/float64(batch))
	if err != nil {
		return nil, err
	}
	return ev.Rescale(out)
}
