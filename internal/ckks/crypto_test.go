package ckks

import (
	"reflect"
	"testing"
)

// TestEncryptSeededStreamDeterministic pins down the contract the Encryptor's
// narrow critical section relies on: the sampler draw-only methods consume
// exactly the stream the old whole-poly sampling consumed, so a
// single-goroutine sequence of encrypts from a seeded parameter set is
// bit-identical run to run.
func TestEncryptSeededStreamDeterministic(t *testing.T) {
	build := func() (*Encryptor, *Encoder, *Parameters) {
		params, err := TestParameters()
		if err != nil {
			t.Fatalf("TestParameters: %v", err)
		}
		kgen := NewKeyGenerator(params)
		sk := kgen.GenSecretKey()
		pk := kgen.GenPublicKey(sk)
		return NewEncryptor(params, pk), NewEncoder(params), params
	}

	encA, encoderA, paramsA := build()
	encB, encoderB, _ := build()

	const streamLen = 4
	for i := 0; i < streamLen; i++ {
		vals := make([]complex128, paramsA.Slots())
		for j := range vals {
			vals[j] = complex(float64((i+1)*(j%5))/16, float64(j%3)/8)
		}
		ptA, err := encoderA.Encode(vals)
		if err != nil {
			t.Fatal(err)
		}
		ptB, err := encoderB.Encode(vals)
		if err != nil {
			t.Fatal(err)
		}
		ctA, err := encA.Encrypt(ptA)
		if err != nil {
			t.Fatal(err)
		}
		ctB, err := encB.Encrypt(ptB)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(ctA.C0.Coeffs, ctB.C0.Coeffs) || !reflect.DeepEqual(ctA.C1.Coeffs, ctB.C1.Coeffs) {
			t.Fatalf("encrypt %d of the seeded stream diverged between runs", i)
		}
		if ctA.Level != ctB.Level || ctA.Scale != ctB.Scale {
			t.Fatalf("encrypt %d metadata diverged: level %d/%d scale %g/%g",
				i, ctA.Level, ctB.Level, ctA.Scale, ctB.Scale)
		}
	}
}

// The draw-only sampler methods must consume the identical stream as the
// whole-poly convenience methods: interleaving them across two samplers with
// the same seed has to produce the same signed draws.
func TestSamplerSignedDrawsMatchPolyDraws(t *testing.T) {
	params, err := TestParameters()
	if err != nil {
		t.Fatal(err)
	}
	n := params.N()
	// Stream A: draw-only methods. Stream B: poly methods (which delegate).
	// Equal seeds must give equal underlying coefficient streams.
	encA := NewEncryptor(params, &PublicKey{A: params.ringQ.NewPoly(), B: params.ringQ.NewPoly()})
	encB := NewEncryptor(params, &PublicKey{A: params.ringQ.NewPoly(), B: params.ringQ.NewPoly()})
	for round := 0; round < 3; round++ {
		tA := encA.sampler.TernarySigned(n)
		gA := encA.sampler.GaussianSigned(n, params.sigma)
		tB := encB.sampler.TernarySigned(n)
		gB := encB.sampler.GaussianSigned(n, params.sigma)
		if !reflect.DeepEqual(tA, tB) || !reflect.DeepEqual(gA, gB) {
			t.Fatalf("round %d: seeded sampler streams diverged", round)
		}
	}
}
