package ckks

import "errors"

// Typed error taxonomy. Every error the package returns across a public
// boundary wraps one of these sentinels, so callers can branch with
// errors.Is(err, ckks.ErrScaleMismatch) instead of string matching. The
// sentinels deliberately carry no context of their own — call sites wrap them
// with fmt.Errorf("...: %w", Err...) and the operands that violated the
// invariant.
var (
	// ErrInvalidParameters marks a ParametersLiteral that fails validation
	// (ring degree, slot count, prime chain or scale out of range).
	ErrInvalidParameters = errors.New("invalid parameters")

	// ErrLevelMismatch marks an operand whose level is outside the range an
	// operation supports (e.g. a plaintext encoded above the chain, or a
	// ciphertext below the level a linear transform was compiled at).
	ErrLevelMismatch = errors.New("level mismatch")

	// ErrLevelExhausted marks an operation that needs to consume a level on a
	// level-0 ciphertext (Rescale at the bottom of the chain).
	ErrLevelExhausted = errors.New("level exhausted")

	// ErrScaleMismatch marks an addition/subtraction whose operand scales
	// diverge by more than the rescaling drift tolerance.
	ErrScaleMismatch = errors.New("scale mismatch")

	// ErrSlotCountMismatch marks a vector whose length is incompatible with
	// the parameter set's slot count (too many encode values, a mask of the
	// wrong length, or a batch exceeding the slots).
	ErrSlotCountMismatch = errors.New("slot count mismatch")

	// ErrNotRelinearized marks a degree-2 intermediate reaching an operation
	// that requires a relinearised (degree-1) ciphertext.
	ErrNotRelinearized = errors.New("ciphertext not relinearized")

	// ErrMethodUnavailable marks a request for a key-switching backend the
	// evaluator or parameter set was not built with (e.g. KLSS without an
	// auxiliary chain).
	ErrMethodUnavailable = errors.New("key-switching method unavailable")

	// ErrKeyMissing marks an evaluation-key lookup that found no key for the
	// requested method/Galois element (rotation amount not in the key set).
	ErrKeyMissing = errors.New("evaluation key missing")

	// ErrInvalidCiphertext marks a ciphertext whose invariants are broken:
	// level out of chain range, limb count inconsistent with the level, ring
	// degree mismatch, or a non-finite scale. Returned by validation at
	// deserialisation and at the public API boundary.
	ErrInvalidCiphertext = errors.New("invalid ciphertext")

	// ErrInvalidValue marks a scalar or vector entry that cannot be encoded
	// (NaN, Inf, or overflow at the target scale).
	ErrInvalidValue = errors.New("invalid value")

	// ErrCanceled marks an operation abandoned because its context was
	// canceled. The wrapped chain also matches context.Canceled, and every
	// pooled scratch buffer acquired by the operation has been released.
	ErrCanceled = errors.New("operation canceled")

	// ErrDeadline marks an operation abandoned because its context deadline
	// expired (errors.Is also matches context.DeadlineExceeded), or a serving
	// request shed on arrival because its deadline could not be met.
	ErrDeadline = errors.New("deadline exceeded")

	// ErrCorruptSnapshot marks a session snapshot that fails structural or
	// checksum validation during decode: truncated input, wrong magic or
	// version, an integrity-hash mismatch, or key material inconsistent with
	// the embedded parameters. A corrupt snapshot is never partially loaded —
	// the decoder verifies the checksum before parsing a single key byte, so
	// restoration can only produce a session identical to the one persisted
	// (a wrong decrypt from disk corruption is structurally impossible).
	ErrCorruptSnapshot = errors.New("corrupt session snapshot")
)
