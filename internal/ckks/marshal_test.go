package ckks

import (
	"bytes"
	"strings"
	"testing"

	"github.com/fastfhe/fast/internal/ring"
)

func TestCiphertextRoundTrip(t *testing.T) {
	tc := newTestContext(t)
	v := randomValues(tc.params.Slots(), 50)
	pt, _ := tc.enc.Encode(v)
	ct, _ := tc.encr.Encrypt(pt)

	var buf bytes.Buffer
	if err := ct.Serialize(&buf); err != nil {
		t.Fatalf("WriteTo: %v", err)
	}
	back, err := ReadCiphertext(&buf, tc.params)
	if err != nil {
		t.Fatalf("ReadCiphertext: %v", err)
	}
	if back.Level != ct.Level || back.Scale != ct.Scale {
		t.Fatal("metadata lost")
	}
	if !back.C0.Equal(ct.C0) || !back.C1.Equal(ct.C1) {
		t.Fatal("coefficients lost")
	}
	// And it still decrypts.
	if e := maxErr(tc.enc.Decode(tc.decr.Decrypt(back)), v); e > tolerance {
		t.Fatalf("deserialised ciphertext error %g", e)
	}
}

// TestSerializeArenaAndForeignPolysMatch pins the single-pass arena encoding
// against the row-wise fallback: a ciphertext whose polynomials carry a
// contiguous Backing must serialize byte-identically to the same ciphertext
// with hand-built rows (Backing == nil, the foreign-poly shape writePoly must
// still accept).
func TestSerializeArenaAndForeignPolysMatch(t *testing.T) {
	tc := newTestContext(t)
	v := randomValues(tc.params.Slots(), 51)
	pt, _ := tc.enc.Encode(v)
	ct, _ := tc.encr.Encrypt(pt)

	strip := func(p ring.Poly) ring.Poly {
		rows := make([][]uint64, p.Limbs())
		for i := range rows {
			rows[i] = append([]uint64(nil), p.Coeffs[i]...)
		}
		return ring.Poly{Coeffs: rows} // no Backing: forces the row-wise path
	}
	foreign := &Ciphertext{C0: strip(ct.C0), C1: strip(ct.C1), Level: ct.Level, Scale: ct.Scale}

	var arenaBuf, rowBuf bytes.Buffer
	if err := ct.Serialize(&arenaBuf); err != nil {
		t.Fatalf("arena serialize: %v", err)
	}
	if err := foreign.Serialize(&rowBuf); err != nil {
		t.Fatalf("foreign serialize: %v", err)
	}
	if !bytes.Equal(arenaBuf.Bytes(), rowBuf.Bytes()) {
		t.Fatal("arena fast path and row-wise fallback produce different wire bytes")
	}
	back, err := ReadCiphertext(&arenaBuf, tc.params)
	if err != nil {
		t.Fatalf("ReadCiphertext: %v", err)
	}
	if len(back.C0.Backing) != back.C0.Limbs()*back.C0.N() {
		t.Fatal("deserialized poly is not arena-backed")
	}
}

func TestCiphertextRejectsCorruption(t *testing.T) {
	tc := newTestContext(t)
	v := randomValues(tc.params.Slots(), 51)
	pt, _ := tc.enc.Encode(v)
	ct, _ := tc.encr.Encrypt(pt)

	var buf bytes.Buffer
	ct.Serialize(&buf)
	raw := buf.Bytes()

	// Wrong tag.
	bad := append([]byte{}, raw...)
	bad[0] = 0x7f
	if _, err := ReadCiphertext(bytes.NewReader(bad), tc.params); err == nil {
		t.Error("wrong tag accepted")
	}
	// Wrong version.
	bad = append([]byte{}, raw...)
	bad[1] = 99
	if _, err := ReadCiphertext(bytes.NewReader(bad), tc.params); err == nil {
		t.Error("wrong version accepted")
	}
	// Truncated.
	if _, err := ReadCiphertext(bytes.NewReader(raw[:len(raw)/2]), tc.params); err == nil {
		t.Error("truncated stream accepted")
	}
	// Out-of-range coefficient: flip a coefficient byte region to all 0xff.
	bad = append([]byte{}, raw...)
	for i := len(bad) - 16; i < len(bad)-8; i++ {
		bad[i] = 0xff
	}
	if _, err := ReadCiphertext(bytes.NewReader(bad), tc.params); err == nil {
		t.Error("out-of-range coefficient accepted")
	}
}

func TestPlaintextRoundTrip(t *testing.T) {
	tc := newTestContext(t)
	v := randomValues(tc.params.Slots(), 52)
	pt, _ := tc.enc.EncodeAtLevel(v, 2, tc.params.Scale())
	var buf bytes.Buffer
	if err := pt.Serialize(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := ReadPlaintext(&buf, tc.params)
	if err != nil {
		t.Fatal(err)
	}
	if back.Level != 2 || !back.Value.Equal(pt.Value) {
		t.Fatal("plaintext round trip lost data")
	}
	if e := maxErr(tc.enc.Decode(back), v); e > 1e-6 {
		t.Fatalf("decode after round trip error %g", e)
	}
}

func TestPublicKeyRoundTrip(t *testing.T) {
	tc := newTestContext(t)
	var buf bytes.Buffer
	if err := tc.pk.Serialize(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := ReadPublicKey(&buf, tc.params)
	if err != nil {
		t.Fatal(err)
	}
	if !back.B.Equal(tc.pk.B) || !back.A.Equal(tc.pk.A) {
		t.Fatal("public key round trip lost data")
	}
	// Encrypting under the deserialised key must still decrypt correctly.
	enc2 := NewEncryptor(tc.params, back)
	v := randomValues(tc.params.Slots(), 53)
	pt, _ := tc.enc.Encode(v)
	ct, err := enc2.Encrypt(pt)
	if err != nil {
		t.Fatal(err)
	}
	if e := maxErr(tc.enc.Decode(tc.decr.Decrypt(ct)), v); e > tolerance {
		t.Fatalf("encryption under restored key error %g", e)
	}
}

func TestSwitchingKeyRoundTrip(t *testing.T) {
	tc := newTestContext(t)
	for _, method := range []KeySwitchMethod{Hybrid, KLSS} {
		rlk, err := tc.keys.RelinKey(method)
		if err != nil {
			t.Fatal(err)
		}
		var buf bytes.Buffer
		if err := rlk.Serialize(&buf); err != nil {
			t.Fatal(err)
		}
		back, err := ReadSwitchingKey(&buf, tc.params)
		if err != nil {
			t.Fatalf("%v: %v", method, err)
		}
		if back.Method != method || len(back.B) != len(rlk.B) {
			t.Fatal("switching key metadata lost")
		}
		for j := range rlk.B {
			if !back.B[j].Equal(rlk.B[j]) || !back.A[j].Equal(rlk.A[j]) {
				t.Fatalf("group %d lost", j)
			}
		}
		// The restored key must still relinearise correctly.
		keys2 := NewEvaluationKeySet()
		keys2.Relin[method] = back
		ev, err := NewEvaluator(tc.params, keys2)
		if err != nil {
			t.Fatal(err)
		}
		ev.SetMethod(method)
		v := randomValues(tc.params.Slots(), 54)
		pt, _ := tc.enc.Encode(v)
		ct, _ := tc.encr.Encrypt(pt)
		prod, err := ev.MulRelin(ct, ct)
		if err != nil {
			t.Fatal(err)
		}
		prod, _ = ev.Rescale(prod)
		want := make([]complex128, len(v))
		for i := range v {
			want[i] = v[i] * v[i]
		}
		if e := maxErr(tc.enc.Decode(tc.decr.Decrypt(prod)), want); e > tolerance {
			t.Fatalf("%v: restored relin key gives error %g", method, e)
		}
	}
}

func TestReadGarbage(t *testing.T) {
	tc := newTestContext(t)
	if _, err := ReadCiphertext(strings.NewReader("zz"), tc.params); err == nil {
		t.Error("garbage accepted")
	}
	if _, err := ReadSwitchingKey(strings.NewReader(""), tc.params); err == nil {
		t.Error("empty stream accepted")
	}
}
