package ckks

import (
	"time"

	"github.com/fastfhe/fast/internal/obs"
)

// TracePIDEvaluator is the Chrome-trace process id of the functional
// evaluator's wall-clock spans (the simulator uses its own pid; see
// internal/sim).
const TracePIDEvaluator = 1

// opInstr is the (count, latency) instrument pair of one operation label.
type opInstr struct {
	count *obs.Counter
	latNS *obs.Histogram
}

func (i opInstr) observe(t0 time.Time) {
	i.count.Inc()
	i.latNS.ObserveSince(t0)
}

// evalObs holds the evaluator's pre-resolved instruments so the hot path
// never performs a registry lookup. Instruments are named after the
// trace.OpKind vocabulary of the performance stack
// (ckks.op.<OpKind>[.<method>].{count,latency_ns}) so functional-layer
// metrics line up with simulator traces. A nil *evalObs disables everything
// behind a single pointer check.
type evalObs struct {
	tracer *obs.Tracer

	// Key-switching ops carry a per-method dimension (indexed by
	// KeySwitchMethod: Hybrid=0, KLSS=1).
	hmult   [2]opInstr
	hrot    [2]opInstr
	hoisted [2]opInstr
	conj    [2]opInstr

	// Method-free ops.
	hadd    opInstr
	padd    opInstr
	pmult   opInstr
	cmult   opInstr
	rescale opInstr
}

// newEvalObs resolves every instrument once. Returns nil on a nil observer.
func newEvalObs(o *obs.Observer) *evalObs {
	if o == nil {
		return nil
	}
	reg := o.Reg()
	mk := func(name string) opInstr {
		return opInstr{
			count: reg.Counter("ckks.op." + name + ".count"),
			latNS: reg.Histogram("ckks.op." + name + ".latency_ns"),
		}
	}
	eo := &evalObs{tracer: o.Tr()}
	for i, m := range []KeySwitchMethod{Hybrid, KLSS} {
		ms := m.String()
		eo.hmult[i] = mk("HMult." + ms)
		eo.hrot[i] = mk("HRot." + ms)
		eo.hoisted[i] = mk("HRotHoisted." + ms)
		eo.conj[i] = mk("Conjugate." + ms)
	}
	eo.hadd = mk("HAdd")
	eo.padd = mk("PAdd")
	eo.pmult = mk("PMult")
	eo.cmult = mk("CMult")
	eo.rescale = mk("Rescale")
	eo.tracer.SetProcessName(TracePIDEvaluator, "ckks evaluator")
	return eo
}

// methodIdx maps a backend to its instrument slot.
func methodIdx(m KeySwitchMethod) int {
	if m == KLSS {
		return 1
	}
	return 0
}

// finish records one completed op: instrument update plus (when tracing) a
// wall-clock span labelled with the op, method, level and — when the
// operation ran under a request-scoped context — the request ID, so every
// span in the Chrome trace is attributable to the serving request that
// caused it. Only called on a non-nil receiver, from paths already guarded
// by `ev.om != nil`. cc may be nil (uncancellable, request-free call).
func (eo *evalObs) finish(i opInstr, name string, m KeySwitchMethod, level int, t0 time.Time, cc *cancelCheck) {
	i.observe(t0)
	if eo.tracer != nil {
		args := map[string]any{"method": m.String(), "level": level}
		if rid := cc.rid(); rid != "" {
			args["request_id"] = rid
		}
		eo.tracer.CompleteSince(name, "eval", TracePIDEvaluator, 0, t0, args)
	}
}

// finishNoMethod is finish for ops without a key-switching backend.
func (eo *evalObs) finishNoMethod(i opInstr, name string, level int, t0 time.Time, cc *cancelCheck) {
	i.observe(t0)
	if eo.tracer != nil {
		args := map[string]any{"level": level}
		if rid := cc.rid(); rid != "" {
			args["request_id"] = rid
		}
		eo.tracer.CompleteSince(name, "eval", TracePIDEvaluator, 0, t0, args)
	}
}
