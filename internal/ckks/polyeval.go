package ckks

import (
	"context"
	"fmt"
	"math"
)

// Polynomial is a real-coefficient polynomial in the power basis:
// p(x) = Coeffs[0] + Coeffs[1] x + ... .
type Polynomial struct {
	Coeffs []float64
}

// Degree returns the polynomial degree.
func (p Polynomial) Degree() int { return len(p.Coeffs) - 1 }

// Depth returns the multiplicative depth of the BSGS evaluation.
func (p Polynomial) Depth() int {
	d := p.Degree()
	if d < 1 {
		return 0
	}
	return int(math.Ceil(math.Log2(float64(d + 1))))
}

// EvaluatePoly evaluates p on ct with the baby-step/giant-step
// (Paterson–Stockmeyer) strategy: baby powers x^1..x^bs by doubling, giant
// powers x^(bs*2^j) by squaring, inner sums as constant multiplications.
// Multiplicative depth is ~log2(deg) instead of deg.
func (ev *Evaluator) EvaluatePoly(ct *Ciphertext, p Polynomial) (*Ciphertext, error) {
	return ev.evaluatePoly(nil, ct, p)
}

// EvaluatePolyCtx is EvaluatePoly with cancellation: ctx is polled at every
// power/chunk of the BSGS schedule and inside each underlying key-switch.
func (ev *Evaluator) EvaluatePolyCtx(ctx context.Context, ct *Ciphertext, p Polynomial) (*Ciphertext, error) {
	return ev.evaluatePoly(newCancelCheck(ctx), ct, p)
}

func (ev *Evaluator) evaluatePoly(cc *cancelCheck, ct *Ciphertext, p Polynomial) (*Ciphertext, error) {
	deg := p.Degree()
	switch {
	case deg < 0:
		return nil, fmt.Errorf("ckks: empty polynomial")
	case deg == 0:
		out := ct.CopyNew()
		out.C0.Zero()
		out.C1.Zero()
		return ev.AddConst(out, p.Coeffs[0])
	}

	// Baby-step width: power of two near sqrt(deg+1).
	bs := 1
	for bs*bs < deg+1 {
		bs <<= 1
	}

	// pow[i] = ct^i at a uniform scale, built with minimal depth:
	// pow[2i] = pow[i]^2, pow[2i+1] = pow[2i]*pow[1].
	pow := make(map[int]*Ciphertext, bs)
	pow[1] = ct
	var err error
	for i := 2; i <= bs; i++ {
		if i%2 == 0 {
			pow[i], err = ev.mulRescaleCC(cc, pow[i/2], pow[i/2])
		} else {
			pow[i], err = ev.mulRescaleCC(cc, pow[i-1], pow[1])
		}
		if err != nil {
			return nil, err
		}
	}

	// giant[j] = ct^(bs * 2^j).
	numGiants := 0
	for (1<<numGiants)*bs <= deg {
		numGiants++
	}
	giant := make([]*Ciphertext, numGiants)
	if numGiants > 0 {
		if giant[0], err = ev.mulRescaleCC(cc, pow[bs/2], pow[bs-bs/2]); err != nil {
			return nil, err
		}
		for j := 1; j < numGiants; j++ {
			if giant[j], err = ev.mulRescaleCC(cc, giant[j-1], giant[j-1]); err != nil {
				return nil, err
			}
		}
	}

	// Inner chunk sums: chunk g covers coefficients [g*bs, (g+1)*bs).
	chunks := (deg + bs) / bs
	inner := make([]*Ciphertext, chunks)
	for g := 0; g < chunks; g++ {
		if err := cc.err("EvaluatePoly"); err != nil {
			return nil, err
		}
		var acc *Ciphertext
		for b := 1; b < bs && g*bs+b <= deg; b++ {
			c := p.Coeffs[g*bs+b]
			if c == 0 {
				continue
			}
			term, err := ev.MulConst(pow[b], c)
			if err != nil {
				return nil, err
			}
			if term, err = ev.Rescale(term); err != nil {
				return nil, err
			}
			if acc == nil {
				acc = term
				continue
			}
			if acc, err = ev.Add(acc, term); err != nil {
				return nil, err
			}
		}
		if acc == nil {
			// All-zero chunk body; keep a zero ciphertext at a harmless
			// level so the constant below still lands somewhere.
			acc = ct.CopyNew()
			acc.C0.Zero()
			acc.C1.Zero()
		}
		if c0 := p.Coeffs[g*bs]; c0 != 0 {
			if acc, err = ev.AddConst(acc, c0); err != nil {
				return nil, err
			}
		}
		inner[g] = acc
	}

	// Combine: p(x) = sum_g inner_g * x^(g*bs), factoring x^(g*bs) into the
	// available giant powers (binary decomposition of g).
	var out *Ciphertext
	for g := 0; g < chunks; g++ {
		part := inner[g]
		for j := 0; j < numGiants; j++ {
			if g&(1<<j) != 0 {
				if part, err = ev.mulRescaleCC(cc, part, giant[j]); err != nil {
					return nil, err
				}
			}
		}
		if out == nil {
			out = part
			continue
		}
		if out, err = ev.Add(out, part); err != nil {
			return nil, err
		}
	}
	return out, nil
}

// mulRescale multiplies and immediately rescales (the evaluation keeps every
// intermediate at the working scale).
func (ev *Evaluator) mulRescale(a, b *Ciphertext) (*Ciphertext, error) {
	return ev.mulRescaleCC(nil, a, b)
}

// mulRescaleCC is mulRescale threading the cancellation checkpoint handle.
func (ev *Evaluator) mulRescaleCC(cc *cancelCheck, a, b *Ciphertext) (*Ciphertext, error) {
	p, err := ev.mulRelin(cc, a, b, ev.Method())
	if err != nil {
		return nil, err
	}
	return ev.rescaleCC(cc, p)
}
