package ckks

import "testing"

func TestLogQP(t *testing.T) {
	tc := newTestContext(t)
	// Test parameters: Q = 50+5*36 = 230 bits, P = 2*50, T = 2*60 (bigger).
	// Generated primes may sit one bit above their nominal size, so allow a
	// one-bit-per-limb slack.
	if got := tc.params.LogQP(); got < 350 || got > 350+8 {
		t.Errorf("LogQP = %d, want ~350", got)
	}
}

func TestSecurityEstimates(t *testing.T) {
	// The laptop test set (N=2^11, 350-bit QP) is deliberately insecure.
	tc := newTestContext(t)
	if tc.params.IsSecure() {
		t.Error("test parameters must not be flagged secure")
	}
	if sec := tc.params.SecurityEstimate(); sec <= 0 || sec >= 128 {
		t.Errorf("test-set estimate %f out of expected (0,128)", sec)
	}

	// A paper-shaped set: N=2^15 with a modest chain clears 128 bits.
	big, err := NewParameters(ParametersLiteral{
		LogN:     15,
		LogSlots: 14,
		LogQ:     []int{50, 36, 36, 36, 36, 36, 36, 36, 36, 36},
		LogP:     []int{50, 50},
		LogScale: 36,
		Alpha:    2,
		Seed:     9,
	})
	if err != nil {
		t.Fatalf("NewParameters: %v", err)
	}
	if !big.IsSecure() {
		t.Errorf("N=2^15 with %d-bit QP should clear 128 bits (estimate %.0f)",
			big.LogQP(), big.SecurityEstimate())
	}

	// Sparse secrets take a haircut.
	logQ := []int{50}
	for i := 0; i < 16; i++ {
		logQ = append(logQ, 36)
	}
	sparse, err := NewParameters(ParametersLiteral{
		LogN:                15,
		LogSlots:            4,
		LogQ:                logQ,
		LogP:                []int{50, 50},
		LogScale:            36,
		Alpha:               2,
		Seed:                10,
		SecretHammingWeight: 16,
	})
	if err != nil {
		t.Fatalf("NewParameters: %v", err)
	}
	dense := *sparse
	dense.secretHW = 0
	if sparse.SecurityEstimate() >= dense.SecurityEstimate() {
		t.Error("sparse secret should lower the estimate")
	}
	if sparse.SecurityEstimate() > 256 || dense.SecurityEstimate() > 256 {
		t.Error("estimates must cap at 256")
	}
}
