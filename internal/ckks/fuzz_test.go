package ckks

import (
	"bytes"
	"math"
	"testing"
)

// FuzzReadCiphertext hardens the deserialiser against malformed inputs: it
// must never panic, only return errors (or round-trip valid data).
func FuzzReadCiphertext(f *testing.F) {
	params, err := TestParameters()
	if err != nil {
		f.Fatal(err)
	}
	enc := NewEncoder(params)
	kgen := NewKeyGenerator(params)
	sk := kgen.GenSecretKey()
	encryptor := NewEncryptor(params, kgen.GenPublicKey(sk))
	pt, _ := enc.Encode(make([]complex128, params.Slots()))
	ct, _ := encryptor.Encrypt(pt)
	var buf bytes.Buffer
	ct.Serialize(&buf)
	f.Add(buf.Bytes())
	f.Add([]byte{})
	f.Add([]byte{0x02, 0x01, 0xff, 0xff})

	f.Fuzz(func(t *testing.T, data []byte) {
		got, err := ReadCiphertext(bytes.NewReader(data), params)
		if err == nil {
			if verr := got.validate(params); verr != nil {
				t.Fatalf("accepted invalid ciphertext: %v", verr)
			}
		}
	})
}

// FuzzEncodeDecode hardens the encoder boundary: EncodeAtLevel must reject
// malformed shapes/levels/scales with typed errors — never panic — and
// whatever it accepts must decode back to finite values.
func FuzzEncodeDecode(f *testing.F) {
	params, err := TestParameters()
	if err != nil {
		f.Fatal(err)
	}
	enc := NewEncoder(params)
	f.Add(0.5, -0.25, 1, params.Scale(), 4)
	f.Add(1e300, 1e300, 0, 1.0, 1)
	f.Add(math.NaN(), math.Inf(1), -1, -3.5, 8)
	f.Add(0.0, 0.0, 99, 0.0, 0)

	f.Fuzz(func(t *testing.T, re, im float64, level int, scale float64, n int) {
		if n < 0 {
			n = -n
		}
		n %= 2*params.Slots() + 3 // straddle the slot-count boundary
		values := make([]complex128, n)
		for i := range values {
			values[i] = complex(re, im)
		}
		pt, err := enc.EncodeAtLevel(values, level, scale)
		if err != nil {
			return // rejected: fine, as long as it did not panic
		}
		dec := enc.Decode(pt)
		if len(dec) != params.Slots() {
			t.Fatalf("decoded %d values, want %d slots", len(dec), params.Slots())
		}
		for i, v := range dec {
			if math.IsNaN(real(v)) || math.IsNaN(imag(v)) {
				t.Fatalf("accepted encode decoded to NaN at slot %d (in: %g%+gi, level %d, scale %g)",
					i, re, im, level, scale)
			}
		}
	})
}
