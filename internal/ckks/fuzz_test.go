package ckks

import (
	"bytes"
	"testing"
)

// FuzzReadCiphertext hardens the deserialiser against malformed inputs: it
// must never panic, only return errors (or round-trip valid data).
func FuzzReadCiphertext(f *testing.F) {
	params, err := TestParameters()
	if err != nil {
		f.Fatal(err)
	}
	enc := NewEncoder(params)
	kgen := NewKeyGenerator(params)
	sk := kgen.GenSecretKey()
	encryptor := NewEncryptor(params, kgen.GenPublicKey(sk))
	pt, _ := enc.Encode(make([]complex128, params.Slots()))
	ct, _ := encryptor.Encrypt(pt)
	var buf bytes.Buffer
	ct.Serialize(&buf)
	f.Add(buf.Bytes())
	f.Add([]byte{})
	f.Add([]byte{0x02, 0x01, 0xff, 0xff})

	f.Fuzz(func(t *testing.T, data []byte) {
		got, err := ReadCiphertext(bytes.NewReader(data), params)
		if err == nil {
			if verr := got.validate(params); verr != nil {
				t.Fatalf("accepted invalid ciphertext: %v", verr)
			}
		}
	})
}
