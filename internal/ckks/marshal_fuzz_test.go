package ckks

import (
	"bytes"
	"math"
	"math/rand"
	"testing"

	"github.com/fastfhe/fast/internal/ring"
)

// FuzzCiphertextMarshal hardens the ciphertext wire format from the inside:
// structurally valid ciphertexts with fuzzed levels, scales and coefficient
// fills must round-trip Serialize → ReadCiphertext losslessly and
// byte-stably (re-serialising the read-back object reproduces the exact
// bytes — the serving layer's bit-exactness checks depend on this), while
// fuzz-mutated wire bytes (byte flips, truncations) must either be rejected
// with an error or decode to something that still passes full validation.
// It complements FuzzReadCiphertext, which fuzzes raw hostile input; this
// target fuzzes the valid-object space and its near-miss neighborhood.
func FuzzCiphertextMarshal(f *testing.F) {
	params, err := TestParameters()
	if err != nil {
		f.Fatal(err)
	}
	f.Add(2, 1.0, int64(42), uint16(3), byte(0xff), uint16(0))
	f.Add(0, 1e12, int64(7), uint16(0), byte(0), uint16(10))
	f.Add(1, 1e-30, int64(-1), uint16(999), byte(1), uint16(65535))

	f.Fuzz(func(t *testing.T, level int, scale float64, seed int64, flipOff uint16, flipXor byte, trunc uint16) {
		if level < 0 {
			level = -level
		}
		level %= params.MaxLevel() + 1
		if !(scale > 0) || math.IsInf(scale, 0) || math.IsNaN(scale) {
			scale = params.Scale()
		}

		// Build a structurally valid ciphertext with pseudo-random residues
		// below each limb modulus.
		rng := rand.New(rand.NewSource(seed))
		n := params.N()
		ct := &Ciphertext{
			C0:    ring.NewPoly(n, level+1),
			C1:    ring.NewPoly(n, level+1),
			Level: level,
			Scale: scale,
		}
		for i := 0; i <= level; i++ {
			q := params.qChain[i]
			for j := 0; j < n; j++ {
				ct.C0.Coeffs[i][j] = rng.Uint64() % q
				ct.C1.Coeffs[i][j] = rng.Uint64() % q
			}
		}

		var buf bytes.Buffer
		if err := ct.Serialize(&buf); err != nil {
			t.Fatalf("serialize valid ciphertext: %v", err)
		}
		back, err := ReadCiphertext(bytes.NewReader(buf.Bytes()), params)
		if err != nil {
			t.Fatalf("round-trip rejected a valid ciphertext (level %d, scale %g): %v", level, scale, err)
		}
		if back.Level != ct.Level || math.Float64bits(back.Scale) != math.Float64bits(ct.Scale) {
			t.Fatalf("metadata drift: level %d/%d scale %x/%x",
				back.Level, ct.Level, math.Float64bits(back.Scale), math.Float64bits(ct.Scale))
		}
		var buf2 bytes.Buffer
		if err := back.Serialize(&buf2); err != nil {
			t.Fatalf("re-serialize: %v", err)
		}
		if !bytes.Equal(buf.Bytes(), buf2.Bytes()) {
			t.Fatal("wire format is not byte-stable across a round-trip")
		}

		// Adversarial neighborhood: flip one byte and/or truncate. The reader
		// must reject or fully validate — never panic, never accept garbage.
		mut := append([]byte(nil), buf.Bytes()...)
		if len(mut) > 0 && flipXor != 0 {
			mut[int(flipOff)%len(mut)] ^= flipXor
		}
		if trunc > 0 {
			mut = mut[:int(trunc)%(len(mut)+1)]
		}
		if got, err := ReadCiphertext(bytes.NewReader(mut), params); err == nil {
			if verr := got.validate(params); verr != nil {
				t.Fatalf("reader accepted a mutated ciphertext that fails validation: %v", verr)
			}
		}
	})
}
