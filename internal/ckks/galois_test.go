package ckks

import (
	"sync"
	"testing"

	"github.com/fastfhe/fast/internal/ring"
)

// TestGaloisIndexCacheZeroRecompute pins the memoization contract: the
// automorphism index table for a Galois element is computed exactly once per
// parameter set, no matter how many rotations (direct or hoisted) or key
// generations touch it afterwards.
func TestGaloisIndexCacheZeroRecompute(t *testing.T) {
	params, err := TestParameters()
	if err != nil {
		t.Fatalf("TestParameters: %v", err)
	}
	kgen := NewKeyGenerator(params)
	sk := kgen.GenSecretKey()
	keys, err := kgen.GenEvaluationKeySet(sk, []KeySwitchMethod{Hybrid}, []int{1, 2}, false)
	if err != nil {
		t.Fatalf("GenEvaluationKeySet: %v", err)
	}
	// Key generation for rotations {1, 2} computes exactly two tables.
	afterKeygen := params.GaloisIndexComputes()
	if afterKeygen != 2 {
		t.Fatalf("computes after keygen = %d, want 2", afterKeygen)
	}

	eval, err := NewEvaluator(params, keys)
	if err != nil {
		t.Fatalf("NewEvaluator: %v", err)
	}
	enc := NewEncoder(params)
	encr := NewEncryptor(params, kgen.GenPublicKey(sk))
	values := randomValues(params.Slots(), 42)
	pt, _ := enc.Encode(values)
	ct, err := encr.Encrypt(pt)
	if err != nil {
		t.Fatalf("Encrypt: %v", err)
	}

	// Repeated rotations by the same amounts must not recompute anything:
	// the keygen pass already warmed the shared cache.
	for i := 0; i < 5; i++ {
		if _, err := eval.Rotate(ct, 1); err != nil {
			t.Fatalf("Rotate: %v", err)
		}
		if _, err := eval.RotateHoisted(ct, []int{1, 2}); err != nil {
			t.Fatalf("RotateHoisted: %v", err)
		}
	}
	if got := params.GaloisIndexComputes(); got != afterKeygen {
		t.Fatalf("computes after 5x rotations = %d, want %d (zero recomputation)", got, afterKeygen)
	}

	// The evaluator and keygen observe the very same table object.
	galEl := ring.GaloisElementForRotation(params.LogN(), 1)
	idx1 := params.GaloisIndex(galEl)
	idx2 := params.GaloisIndex(galEl)
	if &idx1[0] != &idx2[0] {
		t.Fatal("GaloisIndex returned distinct tables for the same element")
	}
	if len(idx1) != params.N() {
		t.Fatalf("index table length %d, want N=%d", len(idx1), params.N())
	}
}

// TestGaloisIndexCacheConcurrent checks the cache under concurrent first
// access: many goroutines racing on a cold element must converge on a single
// stored table, and lookups must stay safe alongside insertions.
func TestGaloisIndexCacheConcurrent(t *testing.T) {
	params, err := TestParameters()
	if err != nil {
		t.Fatalf("TestParameters: %v", err)
	}
	galEl := ring.GaloisElementForRotation(params.LogN(), 7)
	const workers = 8
	tables := make([][]int, workers)
	var wg sync.WaitGroup
	var start sync.WaitGroup
	start.Add(1)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			start.Wait()
			tables[w] = params.GaloisIndex(galEl)
		}(w)
	}
	start.Done()
	wg.Wait()
	for w := 1; w < workers; w++ {
		if &tables[w][0] != &tables[0][0] {
			t.Fatal("concurrent first access yielded distinct tables")
		}
	}
	// The reference computation matches the cached table.
	want := ring.AutomorphismNTTIndex(params.N(), params.LogN(), galEl)
	for i := range want {
		if tables[0][i] != want[i] {
			t.Fatalf("cached table diverges from reference at %d", i)
		}
	}
}
