package ckks

import (
	"sync"
	"sync/atomic"

	"github.com/fastfhe/fast/internal/ring"
)

// galoisCache memoizes the NTT permutation index tables of Galois
// automorphisms, keyed by Galois element. Computing a table walks all N
// coefficients (ring.AutomorphismNTTIndex), which previously ran on every
// Rotate / RotateHoisted / GenGaloisKey call; a workload that rotates by the
// same amounts repeatedly (e.g. the baby-step/giant-step linear transforms)
// paid it thousands of times. The cache is shared by the evaluator and the
// key generator through Parameters, so a rotation key generated for galEl
// warms the table its evaluation will use.
//
// The cache is concurrency-safe (sync.Map) and append-only: tables are
// immutable once stored, so callers may hold the returned slice without
// copying but must never mutate it.
type galoisCache struct {
	n    int
	logN int
	m    sync.Map // galEl uint64 -> []int

	// computes counts actual AutomorphismNTTIndex invocations (cache
	// misses). Tests assert it stays flat across repeated rotations.
	computes atomic.Int64
}

func newGaloisCache(n, logN int) *galoisCache {
	return &galoisCache{n: n, logN: logN}
}

// Index returns the (shared, read-only) NTT automorphism index table for
// galEl, computing and caching it on first use.
func (c *galoisCache) Index(galEl uint64) []int {
	if v, ok := c.m.Load(galEl); ok {
		return v.([]int)
	}
	c.computes.Add(1)
	idx := ring.AutomorphismNTTIndex(c.n, c.logN, galEl)
	// LoadOrStore so concurrent first computations converge on one table.
	v, _ := c.m.LoadOrStore(galEl, idx)
	return v.([]int)
}

// Computes reports how many tables have actually been computed (misses);
// repeated lookups of a cached element do not increase it.
func (c *galoisCache) Computes() int64 { return c.computes.Load() }

// GaloisIndex exposes the memoized automorphism index table for galEl.
// The returned slice is shared and must not be modified.
func (p *Parameters) GaloisIndex(galEl uint64) []int {
	return p.galois.Index(galEl)
}

// GaloisIndexComputes reports the number of distinct Galois index tables
// computed so far (i.e. cache misses). Intended for tests and diagnostics.
func (p *Parameters) GaloisIndexComputes() int64 {
	return p.galois.Computes()
}
