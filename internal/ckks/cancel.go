package ckks

import (
	"context"
	"errors"
	"fmt"
	"sync/atomic"

	"github.com/fastfhe/fast/internal/obs"
)

// Cancellation support for the heavyweight kernels.
//
// The kernels poll a *cancelCheck at their natural chunk boundaries: per limb
// chunk in the key-switch ModUp/KeyMult/ModDown stages, per rotation in a
// hoisted batch, per level in the bootstrap and linear-transform pipelines.
// A nil *cancelCheck (the default, used by every context-free entry point)
// reduces each checkpoint to a single nil-pointer comparison, so the
// uncancellable hot path is unchanged — the same property as the nil
// observer.
//
// Cancellation is cooperative and prompt but not preemptive: a checkpoint is
// reached at least once per limb chunk of a key-switch stage, so the latency
// between ctx.Done() and the operation returning is a small fraction of one
// key-switch. Every early-exit path releases its pooled scratch (the pool
// invariant gets == puts holds after a canceled operation).

// cancelCheck latches a context's cancellation so kernel loops can poll it
// with one atomic load instead of a context-tree walk per checkpoint. It also
// carries the context's request ID (resolved once at construction), so the
// instrumented kernels can attribute their spans to the serving request
// without a context-value walk per span.
type cancelCheck struct {
	ctx       context.Context
	requestID string
	done      atomic.Bool
}

// newCancelCheck returns the checkpoint handle for ctx, or nil when ctx can
// never be canceled (nil, Background, TODO) and carries no request identity
// — the zero-overhead path.
func newCancelCheck(ctx context.Context) *cancelCheck {
	if ctx == nil {
		return nil
	}
	rid := obs.RequestIDFrom(ctx)
	if ctx.Done() == nil && rid == "" {
		return nil
	}
	return &cancelCheck{ctx: ctx, requestID: rid}
}

// rid returns the request ID resolved at construction ("" on nil).
func (cc *cancelCheck) rid() string {
	if cc == nil {
		return ""
	}
	return cc.requestID
}

// stopped reports whether the operation should abandon its work. Safe to call
// on a nil receiver (returns false) and from concurrent worker goroutines.
func (cc *cancelCheck) stopped() bool {
	if cc == nil {
		return false
	}
	if cc.done.Load() {
		return true
	}
	if cc.ctx.Err() != nil {
		cc.done.Store(true)
		return true
	}
	return false
}

// err returns nil while the operation may proceed, or the typed cancellation
// error (wrapping ErrCanceled or ErrDeadline and the context cause) once the
// context is done. Safe on a nil receiver.
func (cc *cancelCheck) err(op string) error {
	if !cc.stopped() {
		return nil
	}
	return wrapCtxErr(op, cc.ctx.Err())
}

// wrapCtxErr maps a non-nil context error onto the typed taxonomy. The result
// matches both the taxonomy sentinel (errors.Is(err, ErrCanceled) /
// ErrDeadline) and the standard context sentinel (errors.Is(err,
// context.Canceled) / context.DeadlineExceeded), so callers can branch on
// either vocabulary.
func wrapCtxErr(op string, cause error) error {
	sentinel := ErrCanceled
	if errors.Is(cause, context.DeadlineExceeded) {
		sentinel = ErrDeadline
	}
	return fmt.Errorf("ckks: %s interrupted: %w: %w", op, sentinel, cause)
}
