package ckks

import (
	"math"
	"math/cmplx"
	"math/rand"
	"testing"
)

// testContext bundles everything a scheme test needs.
type testContext struct {
	params *Parameters
	enc    *Encoder
	kgen   *KeyGenerator
	sk     *SecretKey
	pk     *PublicKey
	encr   *Encryptor
	decr   *Decryptor
	keys   *EvaluationKeySet
	eval   *Evaluator
}

var sharedCtx *testContext

// newTestContext builds (once) a context with both backends and a handful of
// rotation keys.
func newTestContext(t *testing.T) *testContext {
	t.Helper()
	if sharedCtx != nil {
		return sharedCtx
	}
	params, err := TestParameters()
	if err != nil {
		t.Fatalf("TestParameters: %v", err)
	}
	tc := &testContext{params: params}
	tc.enc = NewEncoder(params)
	tc.kgen = NewKeyGenerator(params)
	tc.sk = tc.kgen.GenSecretKey()
	tc.pk = tc.kgen.GenPublicKey(tc.sk)
	tc.encr = NewEncryptor(params, tc.pk)
	tc.decr = NewDecryptor(params, tc.sk)
	tc.keys, err = tc.kgen.GenEvaluationKeySet(tc.sk,
		[]KeySwitchMethod{Hybrid, KLSS},
		[]int{1, -1, 2, -2, 3, 4, -4, 8, 16}, true)
	if err != nil {
		t.Fatalf("GenEvaluationKeySet: %v", err)
	}
	tc.eval, err = NewEvaluator(params, tc.keys)
	if err != nil {
		t.Fatalf("NewEvaluator: %v", err)
	}
	sharedCtx = tc
	return tc
}

func randomValues(n int, seed int64) []complex128 {
	rng := rand.New(rand.NewSource(seed))
	v := make([]complex128, n)
	for i := range v {
		v[i] = complex(rng.Float64()*2-1, rng.Float64()*2-1)
	}
	return v
}

// maxErr returns the worst slot-wise absolute error.
func maxErr(got, want []complex128) float64 {
	worst := 0.0
	for i := range want {
		if e := cmplx.Abs(got[i] - want[i]); e > worst {
			worst = e
		}
	}
	return worst
}

func (tc *testContext) decryptDecode(t *testing.T, ct *Ciphertext) []complex128 {
	t.Helper()
	return tc.enc.Decode(tc.decr.Decrypt(ct))
}

const tolerance = 1e-4 // Δ=2^36 gives ~10 decimal digits; stay conservative

func TestEncodeDecodeRoundTrip(t *testing.T) {
	tc := newTestContext(t)
	values := randomValues(tc.params.Slots(), 1)
	pt, err := tc.enc.Encode(values)
	if err != nil {
		t.Fatalf("Encode: %v", err)
	}
	got := tc.enc.Decode(pt)
	if e := maxErr(got, values); e > 1e-7 {
		t.Fatalf("encode/decode error %g too large", e)
	}
}

func TestEncodeIsRingHomomorphism(t *testing.T) {
	// Slot-wise product of messages == negacyclic product of encodings.
	tc := newTestContext(t)
	rq := tc.params.RingQ()
	a := randomValues(tc.params.Slots(), 2)
	b := randomValues(tc.params.Slots(), 3)
	pa, _ := tc.enc.Encode(a)
	pb, _ := tc.enc.Encode(b)
	prod := &Plaintext{Value: rq.NewPoly(), Level: tc.params.MaxLevel(), Scale: pa.Scale * pb.Scale}
	rq.MulCoeffs(pa.Value, pb.Value, prod.Value)
	got := tc.enc.Decode(prod)
	want := make([]complex128, len(a))
	for i := range a {
		want[i] = a[i] * b[i]
	}
	if e := maxErr(got, want); e > 1e-6 {
		t.Fatalf("embedding is not multiplicative: error %g", e)
	}
}

func TestEncryptDecrypt(t *testing.T) {
	tc := newTestContext(t)
	values := randomValues(tc.params.Slots(), 4)
	pt, _ := tc.enc.Encode(values)
	ct, err := tc.encr.Encrypt(pt)
	if err != nil {
		t.Fatalf("Encrypt: %v", err)
	}
	got := tc.decryptDecode(t, ct)
	if e := maxErr(got, values); e > tolerance {
		t.Fatalf("encrypt/decrypt error %g too large", e)
	}
}

func TestEncryptAtLowerLevel(t *testing.T) {
	tc := newTestContext(t)
	values := randomValues(tc.params.Slots(), 5)
	pt, err := tc.enc.EncodeAtLevel(values, 2, tc.params.Scale())
	if err != nil {
		t.Fatalf("EncodeAtLevel: %v", err)
	}
	ct, err := tc.encr.Encrypt(pt)
	if err != nil {
		t.Fatalf("Encrypt: %v", err)
	}
	if ct.Level != 2 {
		t.Fatalf("ciphertext level %d, want 2", ct.Level)
	}
	if e := maxErr(tc.decryptDecode(t, ct), values); e > tolerance {
		t.Fatalf("low-level encrypt error %g", e)
	}
}

func TestHAddHSub(t *testing.T) {
	tc := newTestContext(t)
	a := randomValues(tc.params.Slots(), 6)
	b := randomValues(tc.params.Slots(), 7)
	pa, _ := tc.enc.Encode(a)
	pb, _ := tc.enc.Encode(b)
	ca, _ := tc.encr.Encrypt(pa)
	cb, _ := tc.encr.Encrypt(pb)

	sum, err := tc.eval.Add(ca, cb)
	if err != nil {
		t.Fatalf("Add: %v", err)
	}
	want := make([]complex128, len(a))
	for i := range a {
		want[i] = a[i] + b[i]
	}
	if e := maxErr(tc.decryptDecode(t, sum), want); e > tolerance {
		t.Fatalf("HAdd error %g", e)
	}

	diff, err := tc.eval.Sub(ca, cb)
	if err != nil {
		t.Fatalf("Sub: %v", err)
	}
	for i := range a {
		want[i] = a[i] - b[i]
	}
	if e := maxErr(tc.decryptDecode(t, diff), want); e > tolerance {
		t.Fatalf("HSub error %g", e)
	}
}

func TestPAddPMult(t *testing.T) {
	tc := newTestContext(t)
	a := randomValues(tc.params.Slots(), 8)
	b := randomValues(tc.params.Slots(), 9)
	pa, _ := tc.enc.Encode(a)
	pb, _ := tc.enc.Encode(b)
	ca, _ := tc.encr.Encrypt(pa)

	sum, err := tc.eval.AddPlain(ca, pb)
	if err != nil {
		t.Fatalf("AddPlain: %v", err)
	}
	want := make([]complex128, len(a))
	for i := range a {
		want[i] = a[i] + b[i]
	}
	if e := maxErr(tc.decryptDecode(t, sum), want); e > tolerance {
		t.Fatalf("PAdd error %g", e)
	}

	prod, err := tc.eval.MulPlain(ca, pb)
	if err != nil {
		t.Fatalf("MulPlain: %v", err)
	}
	rs, err := tc.eval.Rescale(prod)
	if err != nil {
		t.Fatalf("Rescale: %v", err)
	}
	if rs.Level != ca.Level-1 {
		t.Fatalf("rescale level %d, want %d", rs.Level, ca.Level-1)
	}
	for i := range a {
		want[i] = a[i] * b[i]
	}
	if e := maxErr(tc.decryptDecode(t, rs), want); e > tolerance {
		t.Fatalf("PMult error %g", e)
	}
}

func TestCMultAndAddConst(t *testing.T) {
	tc := newTestContext(t)
	a := randomValues(tc.params.Slots(), 10)
	pa, _ := tc.enc.Encode(a)
	ca, _ := tc.encr.Encrypt(pa)

	scaled, err := tc.eval.MulConst(ca, 1.5)
	if err != nil {
		t.Fatalf("MulConst: %v", err)
	}
	scaled, err = tc.eval.Rescale(scaled)
	if err != nil {
		t.Fatalf("Rescale: %v", err)
	}
	want := make([]complex128, len(a))
	for i := range a {
		want[i] = a[i] * 1.5
	}
	if e := maxErr(tc.decryptDecode(t, scaled), want); e > tolerance {
		t.Fatalf("CMult error %g", e)
	}

	shifted, err := tc.eval.AddConst(ca, -0.25)
	if err != nil {
		t.Fatalf("AddConst: %v", err)
	}
	for i := range a {
		want[i] = a[i] - 0.25
	}
	if e := maxErr(tc.decryptDecode(t, shifted), want); e > tolerance {
		t.Fatalf("AddConst error %g", e)
	}
}

func testHMult(t *testing.T, method KeySwitchMethod) {
	tc := newTestContext(t)
	if err := tc.eval.SetMethod(method); err != nil {
		t.Fatalf("SetMethod: %v", err)
	}
	defer tc.eval.SetMethod(Hybrid)

	a := randomValues(tc.params.Slots(), 11)
	b := randomValues(tc.params.Slots(), 12)
	pa, _ := tc.enc.Encode(a)
	pb, _ := tc.enc.Encode(b)
	ca, _ := tc.encr.Encrypt(pa)
	cb, _ := tc.encr.Encrypt(pb)

	prod, err := tc.eval.MulRelin(ca, cb)
	if err != nil {
		t.Fatalf("MulRelin: %v", err)
	}
	prod, err = tc.eval.Rescale(prod)
	if err != nil {
		t.Fatalf("Rescale: %v", err)
	}
	want := make([]complex128, len(a))
	for i := range a {
		want[i] = a[i] * b[i]
	}
	if e := maxErr(tc.decryptDecode(t, prod), want); e > tolerance {
		t.Fatalf("%v HMult error %g", method, e)
	}
}

func TestHMultHybrid(t *testing.T) { testHMult(t, Hybrid) }
func TestHMultKLSS(t *testing.T)   { testHMult(t, KLSS) }

func testHRot(t *testing.T, method KeySwitchMethod) {
	tc := newTestContext(t)
	if err := tc.eval.SetMethod(method); err != nil {
		t.Fatalf("SetMethod: %v", err)
	}
	defer tc.eval.SetMethod(Hybrid)

	n := tc.params.Slots()
	a := randomValues(n, 13)
	pa, _ := tc.enc.Encode(a)
	ca, _ := tc.encr.Encrypt(pa)

	for _, r := range []int{1, -1, 4} {
		rot, err := tc.eval.Rotate(ca, r)
		if err != nil {
			t.Fatalf("Rotate(%d): %v", r, err)
		}
		want := make([]complex128, n)
		for i := range want {
			want[i] = a[((i+r)%n+n)%n]
		}
		if e := maxErr(tc.decryptDecode(t, rot), want); e > tolerance {
			t.Fatalf("%v HRot(%d) error %g", method, r, e)
		}
	}
}

func TestHRotHybrid(t *testing.T) { testHRot(t, Hybrid) }
func TestHRotKLSS(t *testing.T)   { testHRot(t, KLSS) }

func TestConjugate(t *testing.T) {
	tc := newTestContext(t)
	a := randomValues(tc.params.Slots(), 14)
	pa, _ := tc.enc.Encode(a)
	ca, _ := tc.encr.Encrypt(pa)
	conj, err := tc.eval.Conjugate(ca)
	if err != nil {
		t.Fatalf("Conjugate: %v", err)
	}
	want := make([]complex128, len(a))
	for i := range a {
		want[i] = cmplx.Conj(a[i])
	}
	if e := maxErr(tc.decryptDecode(t, conj), want); e > tolerance {
		t.Fatalf("Conjugate error %g", e)
	}
}

func testHoistedRotations(t *testing.T, method KeySwitchMethod) {
	tc := newTestContext(t)
	if err := tc.eval.SetMethod(method); err != nil {
		t.Fatalf("SetMethod: %v", err)
	}
	defer tc.eval.SetMethod(Hybrid)

	n := tc.params.Slots()
	a := randomValues(n, 15)
	pa, _ := tc.enc.Encode(a)
	ca, _ := tc.encr.Encrypt(pa)

	rots := []int{0, 1, 2, 3, 8}
	out, err := tc.eval.RotateHoisted(ca, rots)
	if err != nil {
		t.Fatalf("RotateHoisted: %v", err)
	}
	for _, r := range rots {
		want := make([]complex128, n)
		for i := range want {
			want[i] = a[(i+r)%n]
		}
		if e := maxErr(tc.decryptDecode(t, out[r]), want); e > tolerance {
			t.Fatalf("%v hoisted rot %d error %g", method, r, e)
		}
	}
}

func TestHoistedRotationsHybrid(t *testing.T) { testHoistedRotations(t, Hybrid) }
func TestHoistedRotationsKLSS(t *testing.T)   { testHoistedRotations(t, KLSS) }

// Hoisted rotations must agree (to noise) with one-shot rotations.
func TestHoistedMatchesDirect(t *testing.T) {
	tc := newTestContext(t)
	a := randomValues(tc.params.Slots(), 16)
	pa, _ := tc.enc.Encode(a)
	ca, _ := tc.encr.Encrypt(pa)
	hoisted, err := tc.eval.RotateHoisted(ca, []int{3})
	if err != nil {
		t.Fatalf("RotateHoisted: %v", err)
	}
	direct, err := tc.eval.Rotate(ca, 3)
	if err != nil {
		t.Fatalf("Rotate: %v", err)
	}
	gh := tc.decryptDecode(t, hoisted[3])
	gd := tc.decryptDecode(t, direct)
	if e := maxErr(gh, gd); e > tolerance {
		t.Fatalf("hoisted vs direct differ by %g", e)
	}
}

func TestMultiplicativeDepth(t *testing.T) {
	// Chain multiplications down the modulus chain on both backends.
	for _, method := range []KeySwitchMethod{Hybrid, KLSS} {
		tc := newTestContext(t)
		if err := tc.eval.SetMethod(method); err != nil {
			t.Fatalf("SetMethod: %v", err)
		}
		a := make([]complex128, tc.params.Slots())
		for i := range a {
			a[i] = complex(0.9, 0)
		}
		pa, _ := tc.enc.Encode(a)
		ct, _ := tc.encr.Encrypt(pa)
		want := 0.9
		for depth := 0; depth < 3; depth++ {
			var err error
			ct, err = tc.eval.MulRelin(ct, ct)
			if err != nil {
				t.Fatalf("depth %d MulRelin: %v", depth, err)
			}
			ct, err = tc.eval.Rescale(ct)
			if err != nil {
				t.Fatalf("depth %d Rescale: %v", depth, err)
			}
			want *= want
			got := tc.decryptDecode(t, ct)
			if e := math.Abs(real(got[0]) - want); e > 1e-3 {
				t.Fatalf("%v depth %d error %g (got %g want %g)", method, depth, e, real(got[0]), want)
			}
		}
		tc.eval.SetMethod(Hybrid)
	}
}

func TestLevelMismatchAligns(t *testing.T) {
	tc := newTestContext(t)
	a := randomValues(tc.params.Slots(), 17)
	pa, _ := tc.enc.Encode(a)
	ca, _ := tc.encr.Encrypt(pa)
	lower := tc.eval.DropLevel(ca, 2)
	if lower.Level != ca.Level-2 {
		t.Fatalf("DropLevel gave level %d", lower.Level)
	}
	sum, err := tc.eval.Add(ca, lower)
	if err != nil {
		t.Fatalf("Add across levels: %v", err)
	}
	if sum.Level != lower.Level {
		t.Fatalf("sum level %d, want %d", sum.Level, lower.Level)
	}
	want := make([]complex128, len(a))
	for i := range a {
		want[i] = 2 * a[i]
	}
	if e := maxErr(tc.decryptDecode(t, sum), want); e > tolerance {
		t.Fatalf("cross-level add error %g", e)
	}
}

func TestScaleMismatchErrors(t *testing.T) {
	tc := newTestContext(t)
	a := randomValues(tc.params.Slots(), 18)
	pa, _ := tc.enc.Encode(a)
	ca, _ := tc.encr.Encrypt(pa)
	scaled, _ := tc.eval.MulConst(ca, 2)
	if _, err := tc.eval.Add(ca, scaled); err == nil {
		t.Fatal("expected scale-mismatch error from Add")
	}
}

func TestRescaleAtLevelZeroErrors(t *testing.T) {
	tc := newTestContext(t)
	a := randomValues(tc.params.Slots(), 19)
	pa, _ := tc.enc.Encode(a)
	ca, _ := tc.encr.Encrypt(pa)
	bottom := tc.eval.DropLevel(ca, ca.Level)
	if _, err := tc.eval.Rescale(bottom); err == nil {
		t.Fatal("expected error rescaling at level 0")
	}
}

func TestMissingKeyErrors(t *testing.T) {
	tc := newTestContext(t)
	a := randomValues(tc.params.Slots(), 20)
	pa, _ := tc.enc.Encode(a)
	ca, _ := tc.encr.Encrypt(pa)
	if _, err := tc.eval.Rotate(ca, 999); err == nil {
		t.Fatal("expected missing-galois-key error")
	}
	empty := NewEvaluationKeySet()
	ev, err := NewEvaluator(tc.params, empty)
	if err != nil {
		t.Fatalf("NewEvaluator: %v", err)
	}
	if _, err := ev.MulRelin(ca, ca); err == nil {
		t.Fatal("expected missing-relin-key error")
	}
}

func TestKeySwitchMethodString(t *testing.T) {
	if Hybrid.String() != "hybrid" || KLSS.String() != "klss" {
		t.Fatal("method names wrong")
	}
	if KeySwitchMethod(9).String() == "" {
		t.Fatal("unknown method should still print")
	}
}
