package ckks

import (
	"fmt"
	"math/big"

	"github.com/fastfhe/fast/internal/ring"
)

// SecretKey holds the ternary secret s, embedded (NTT form) over each key
// ring the parameter set enables.
type SecretKey struct {
	signed []int64
	QP     ring.Poly // over Q ++ P
	QT     ring.Poly // over Q ++ T; zero-value when KLSS is disabled
}

// PublicKey is an encryption key (b, a) = (-a*s + e, a) over the full Q
// chain, NTT form.
type PublicKey struct {
	B, A ring.Poly
}

// SwitchingKey re-encrypts c*sIn into a ciphertext under s. It holds β
// gadget pairs (B[j], A[j]) over the backend's key ring (Q++P for Hybrid,
// Q++T for KLSS), all NTT form.
type SwitchingKey struct {
	Method KeySwitchMethod
	B, A   []ring.Poly
}

// EvaluationKeySet carries every key the evaluator may need: relinearization
// and Galois keys, per key-switching backend. Keys for a backend are only
// present if they were generated, which is how the Aether planner's storage
// trade-off (KLSS keys are ~3.7x bigger) surfaces in the functional model.
type EvaluationKeySet struct {
	Relin  map[KeySwitchMethod]*SwitchingKey
	Galois map[KeySwitchMethod]map[uint64]*SwitchingKey
}

// NewEvaluationKeySet returns an empty key set.
func NewEvaluationKeySet() *EvaluationKeySet {
	return &EvaluationKeySet{
		Relin:  map[KeySwitchMethod]*SwitchingKey{},
		Galois: map[KeySwitchMethod]map[uint64]*SwitchingKey{},
	}
}

// RelinKey returns the relinearization key for the method, or an error if it
// was never generated.
func (s *EvaluationKeySet) RelinKey(m KeySwitchMethod) (*SwitchingKey, error) {
	k, ok := s.Relin[m]
	if !ok {
		return nil, fmt.Errorf("ckks: no %v relinearization key in the set: %w", m, ErrKeyMissing)
	}
	return k, nil
}

// GaloisKey returns the Galois key for the method and element.
func (s *EvaluationKeySet) GaloisKey(m KeySwitchMethod, galEl uint64) (*SwitchingKey, error) {
	k, ok := s.Galois[m][galEl]
	if !ok {
		return nil, fmt.Errorf("ckks: no %v galois key for element %d: %w", m, galEl, ErrKeyMissing)
	}
	return k, nil
}

func (s *EvaluationKeySet) addGalois(m KeySwitchMethod, galEl uint64, k *SwitchingKey) {
	if s.Galois[m] == nil {
		s.Galois[m] = map[uint64]*SwitchingKey{}
	}
	s.Galois[m][galEl] = k
}

// KeyGenerator samples all key material for a parameter set.
type KeyGenerator struct {
	params  *Parameters
	sampler *ring.Sampler
}

// NewKeyGenerator returns a generator seeded from the parameter seed.
func NewKeyGenerator(params *Parameters) *KeyGenerator {
	return &KeyGenerator{params: params, sampler: ring.NewSampler(params.seed)}
}

// GenSecretKey samples a fresh ternary secret.
func (kg *KeyGenerator) GenSecretKey() *SecretKey {
	p := kg.params
	sk := &SecretKey{QP: p.ringQP.NewPoly()}
	if p.secretHW > 0 {
		sk.signed = kg.sampler.TernaryHWTPoly(p.ringQP, p.secretHW, sk.QP)
	} else {
		sk.signed = kg.sampler.TernaryPoly(p.ringQP, sk.QP)
	}
	p.ringQP.NTT(sk.QP)
	if p.ringQT != nil {
		sk.QT = p.ringQT.NewPoly()
		setSignedInto(p.ringQT, sk.signed, sk.QT)
		p.ringQT.NTT(sk.QT)
	}
	return sk
}

// setSignedInto embeds small signed coefficients into every limb of p.
func setSignedInto(r *ring.Ring, signed []int64, p ring.Poly) {
	for i, m := range r.Moduli {
		ci := p.Coeffs[i]
		for j, v := range signed {
			if v >= 0 {
				ci[j] = uint64(v) % m.Q
			} else {
				ci[j] = (m.Q - uint64(-v)%m.Q) % m.Q
			}
		}
	}
}

// skQ returns the secret embedded over the full Q chain (NTT form), as a
// truncation of the QP embedding (the Q limbs come first in ringQP).
func (sk *SecretKey) skQ(p *Parameters) ring.Poly {
	return sk.QP.Truncated(len(p.qChain))
}

// GenPublicKey returns (b, a) with b = -a*s + e over the full Q chain.
func (kg *KeyGenerator) GenPublicKey(sk *SecretKey) *PublicKey {
	p := kg.params
	rq := p.ringQ
	pk := &PublicKey{B: rq.NewPoly(), A: rq.NewPoly()}
	kg.sampler.UniformPoly(rq, pk.A)
	e := rq.NewPoly()
	kg.sampler.GaussianPoly(rq, p.sigma, e)
	rq.NTT(e)
	rq.MulCoeffs(pk.A, sk.skQ(p), pk.B)
	rq.Neg(pk.B, pk.B)
	rq.Add(pk.B, e, pk.B)
	return pk
}

// keyRing returns the key ring and special-chain length for a backend.
func (p *Parameters) keyRing(m KeySwitchMethod) (*ring.Ring, int, error) {
	switch m {
	case Hybrid:
		return p.ringQP, len(p.pChain), nil
	case KLSS:
		if p.ringQT == nil {
			return nil, 0, fmt.Errorf("ckks: parameter set has no KLSS auxiliary chain: %w", ErrMethodUnavailable)
		}
		return p.ringQT, len(p.tChain), nil
	default:
		return nil, 0, fmt.Errorf("ckks: unknown key-switching method %v: %w", m, ErrMethodUnavailable)
	}
}

// groupAlpha returns the decomposition group size for a backend.
func (p *Parameters) groupAlpha(m KeySwitchMethod) int {
	if m == KLSS {
		return p.alphaT
	}
	return p.alpha
}

// skFor returns the secret embedding over the backend's key ring.
func (sk *SecretKey) skFor(m KeySwitchMethod) ring.Poly {
	if m == KLSS {
		return sk.QT
	}
	return sk.QP
}

// genSwitchingKey builds the gadget key pairs for re-encrypting c*skIn,
// where skIn is given in NTT form over the backend's key ring.
func (kg *KeyGenerator) genSwitchingKey(sk *SecretKey, skIn ring.Poly, method KeySwitchMethod) (*SwitchingKey, error) {
	p := kg.params
	kr, _, err := p.keyRing(method)
	if err != nil {
		return nil, err
	}
	alpha := p.groupAlpha(method)
	qLen := len(p.qChain)
	beta := (qLen + alpha - 1) / alpha

	// S = product of the special chain; w_j = (Q/Q_j)*[(Q/Q_j)^-1 mod Q_j]
	// is the CRT selector of group j (w_j ≡ δ_ij mod q_i).
	S := big.NewInt(1)
	for _, m := range kr.Moduli[qLen:] {
		S.Mul(S, new(big.Int).SetUint64(m.Q))
	}
	Q := big.NewInt(1)
	for _, q := range p.qChain {
		Q.Mul(Q, new(big.Int).SetUint64(q))
	}

	swk := &SwitchingKey{Method: method}
	skNTT := sk.skFor(method)
	for j := 0; j < beta; j++ {
		lo, hi := j*alpha, min(qLen, (j+1)*alpha)
		Qj := big.NewInt(1)
		for _, q := range p.qChain[lo:hi] {
			Qj.Mul(Qj, new(big.Int).SetUint64(q))
		}
		Qhat := new(big.Int).Div(Q, Qj)
		inv := new(big.Int).ModInverse(new(big.Int).Mod(Qhat, Qj), Qj)
		wj := new(big.Int).Mul(Qhat, inv)
		wj.Mod(wj, Q)
		factor := new(big.Int).Mul(S, wj)

		a := kr.NewPoly()
		kg.sampler.UniformPoly(kr, a)
		e := kr.NewPoly()
		kg.sampler.GaussianPoly(kr, p.sigma, e)
		kr.NTT(e)

		b := kr.NewPoly()
		kr.MulCoeffs(a, skNTT, b)
		kr.Neg(b, b)
		kr.Add(b, e, b)
		gadget := kr.NewPoly()
		kr.MulScalarBigint(skIn, factor, gadget)
		kr.Add(b, gadget, b)

		swk.B = append(swk.B, b)
		swk.A = append(swk.A, a)
	}
	return swk, nil
}

// GenRelinearizationKey returns the key that re-encrypts c*s^2 under s for
// the given backend.
func (kg *KeyGenerator) GenRelinearizationKey(sk *SecretKey, method KeySwitchMethod) (*SwitchingKey, error) {
	kr, _, err := kg.params.keyRing(method)
	if err != nil {
		return nil, err
	}
	s2 := kr.NewPoly()
	kr.MulCoeffs(sk.skFor(method), sk.skFor(method), s2)
	return kg.genSwitchingKey(sk, s2, method)
}

// GenGaloisKey returns the key that re-encrypts c*φ_galEl(s) under s.
func (kg *KeyGenerator) GenGaloisKey(sk *SecretKey, galEl uint64, method KeySwitchMethod) (*SwitchingKey, error) {
	kr, _, err := kg.params.keyRing(method)
	if err != nil {
		return nil, err
	}
	idx := kg.params.GaloisIndex(galEl)
	sRot := kr.NewPoly()
	kr.AutomorphismNTT(sk.skFor(method), sRot, idx)
	return kg.genSwitchingKey(sk, sRot, method)
}

// GenEvaluationKeySet generates relinearization keys for every requested
// method and Galois keys for every requested rotation (plus conjugation if
// conj is true).
func (kg *KeyGenerator) GenEvaluationKeySet(sk *SecretKey, methods []KeySwitchMethod, rotations []int, conj bool) (*EvaluationKeySet, error) {
	set := NewEvaluationKeySet()
	logN := kg.params.LogN()
	for _, m := range methods {
		rlk, err := kg.GenRelinearizationKey(sk, m)
		if err != nil {
			return nil, err
		}
		set.Relin[m] = rlk
		for _, r := range rotations {
			galEl := ring.GaloisElementForRotation(logN, r)
			gk, err := kg.GenGaloisKey(sk, galEl, m)
			if err != nil {
				return nil, err
			}
			set.addGalois(m, galEl, gk)
		}
		if conj {
			galEl := ring.GaloisElementForConjugation(logN)
			gk, err := kg.GenGaloisKey(sk, galEl, m)
			if err != nil {
				return nil, err
			}
			set.addGalois(m, galEl, gk)
		}
	}
	return set, nil
}
