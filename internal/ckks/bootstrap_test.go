package ckks

import (
	"math"
	"testing"
)

// bootstrapTestContext builds the (deliberately insecure, demo-sized)
// parameter set the functional bootstrap runs on: N=2^12, 16 slots, a
// 21-level 36-bit chain under a 50-bit base prime, sparse secret of weight
// 16.
var cachedBootCtx *testContext
var cachedBootstrapper *Bootstrapper

func bootstrapTestContext(t *testing.T) (*testContext, *Bootstrapper) {
	t.Helper()
	if cachedBootCtx != nil {
		return cachedBootCtx, cachedBootstrapper
	}
	params, err := NewParameters(ParametersLiteral{
		LogN:                12,
		LogSlots:            4,
		LogQ:                append([]int{50}, repeat(40, 24)...),
		LogP:                []int{50, 50, 50},
		LogScale:            40,
		Alpha:               3,
		Seed:                3,
		SecretHammingWeight: 16,
	})
	if err != nil {
		t.Fatalf("NewParameters: %v", err)
	}
	tc := &testContext{params: params}
	tc.enc = NewEncoder(params)
	tc.kgen = NewKeyGenerator(params)
	tc.sk = tc.kgen.GenSecretKey()
	tc.pk = tc.kgen.GenPublicKey(tc.sk)
	tc.encr = NewEncryptor(params, tc.pk)
	tc.decr = NewDecryptor(params, tc.sk)
	tc.keys, err = tc.kgen.GenEvaluationKeySet(tc.sk,
		[]KeySwitchMethod{Hybrid}, BootstrapRotations(params), true)
	if err != nil {
		t.Fatalf("GenEvaluationKeySet: %v", err)
	}
	tc.eval, err = NewEvaluator(params, tc.keys)
	if err != nil {
		t.Fatalf("NewEvaluator: %v", err)
	}
	bt, err := NewBootstrapper(params, tc.enc, tc.eval, DefaultBootstrapParameters())
	if err != nil {
		t.Fatalf("NewBootstrapper: %v", err)
	}
	cachedBootCtx, cachedBootstrapper = tc, bt
	return tc, bt
}

func repeat(v, n int) []int {
	out := make([]int, n)
	for i := range out {
		out[i] = v
	}
	return out
}

func TestBootstrapRefreshesCiphertext(t *testing.T) {
	if testing.Short() {
		t.Skip("bootstrap test is slow")
	}
	tc, bt := bootstrapTestContext(t)
	n := tc.params.Slots()

	values := make([]complex128, n)
	for i := range values {
		values[i] = complex(0.4*math.Cos(float64(i)), 0.3*math.Sin(2*float64(i)))
	}
	pt, err := tc.enc.Encode(values)
	if err != nil {
		t.Fatal(err)
	}
	ct, err := tc.encr.Encrypt(pt)
	if err != nil {
		t.Fatal(err)
	}
	// Exhaust the chain: drop to level 0 as a long computation would.
	ct = tc.eval.DropLevel(ct, ct.Level)
	if ct.Level != 0 {
		t.Fatalf("setup: expected level 0, got %d", ct.Level)
	}

	refreshed, err := bt.Bootstrap(ct)
	if err != nil {
		t.Fatalf("Bootstrap: %v", err)
	}
	if refreshed.Level < 1 {
		t.Fatalf("bootstrap must restore usable levels, got %d", refreshed.Level)
	}
	got := tc.enc.Decode(tc.decr.Decrypt(refreshed))
	if e := maxErr(got, values); e > 2e-2 {
		t.Fatalf("bootstrap error %g (level restored to %d)", e, refreshed.Level)
	}
	t.Logf("bootstrap: restored to level %d with max error %.3g", refreshed.Level, maxErr(got, values))

	// The refreshed ciphertext must support further computation.
	prod, err := tc.eval.MulRelin(refreshed, refreshed)
	if err != nil {
		t.Fatal(err)
	}
	prod, err = tc.eval.Rescale(prod)
	if err != nil {
		t.Fatal(err)
	}
	got2 := tc.enc.Decode(tc.decr.Decrypt(prod))
	want := make([]complex128, n)
	for i := range want {
		want[i] = values[i] * values[i]
	}
	if e := maxErr(got2, want); e > 4e-2 {
		t.Fatalf("post-bootstrap multiplication error %g", e)
	}
}

func TestBootstrapperValidation(t *testing.T) {
	tc := newTestContext(t)
	// Dense secret: must refuse.
	if _, err := NewBootstrapper(tc.params, tc.enc, tc.eval, DefaultBootstrapParameters()); err == nil {
		t.Error("bootstrapper accepted a dense-secret parameter set")
	}
}

func TestBootstrapDepthBookkeeping(t *testing.T) {
	bp := DefaultBootstrapParameters()
	if d := bp.Depth(); d < 12 || d > 24 {
		t.Errorf("implausible bootstrap depth %d", d)
	}
}

func TestModRaisePreservesMessage(t *testing.T) {
	if testing.Short() {
		t.Skip("bootstrap context is slow to build")
	}
	tc, bt := bootstrapTestContext(t)
	values := make([]complex128, tc.params.Slots())
	for i := range values {
		values[i] = complex(0.25, -0.125)
	}
	pt, _ := tc.enc.Encode(values)
	ct, _ := tc.encr.Encrypt(pt)
	ct = tc.eval.DropLevel(ct, ct.Level)

	raised, err := bt.modRaise(ct)
	if err != nil {
		t.Fatal(err)
	}
	if raised.Level != tc.params.MaxLevel() {
		t.Fatalf("modRaise level %d, want %d", raised.Level, tc.params.MaxLevel())
	}
	// Decrypting the raised ciphertext and reducing each coefficient mod q0
	// must recover the message (the q0*I part vanishes mod q0).
	dec := tc.decr.Decrypt(raised)
	rq := tc.params.RingQ().AtLevel(raised.Level)
	poly := dec.Value.Clone()
	rq.INTT(poly)
	// Reduce the first limb (mod q0) and rebuild a level-0 plaintext.
	lvl0 := tc.params.RingQ().AtLevel(0)
	p0 := lvl0.NewPoly()
	copy(p0.Coeffs[0], poly.Coeffs[0])
	lvl0.NTT(p0)
	pt0 := &Plaintext{Value: p0, Level: 0, Scale: ct.Scale}
	got := tc.enc.Decode(pt0)
	if e := maxErr(got, values); e > 1e-3 {
		t.Fatalf("mod-q0 reduction of raised ciphertext lost the message: %g", e)
	}
	if err := raised.validate(tc.params); err != nil {
		t.Fatalf("raised ciphertext invalid: %v", err)
	}
}

func TestBootstrapRejectsWrongLevel(t *testing.T) {
	if testing.Short() {
		t.Skip("bootstrap context is slow to build")
	}
	tc, bt := bootstrapTestContext(t)
	values := make([]complex128, tc.params.Slots())
	pt, _ := tc.enc.Encode(values)
	ct, _ := tc.encr.Encrypt(pt)
	if _, err := bt.Bootstrap(ct); err == nil {
		t.Error("bootstrap accepted a full-level ciphertext")
	}
}
