package ckks

import (
	"testing"
)

// Sparse packing: rotation and conjugation semantics with n << N/2.
func TestSparsePackingOps(t *testing.T) {
	params, err := NewParameters(ParametersLiteral{
		LogN: 9, LogSlots: 3,
		LogQ: []int{50, 36, 36, 36}, LogP: []int{50, 50},
		LogScale: 36, Alpha: 2, Seed: 5,
	})
	if err != nil {
		t.Fatal(err)
	}
	enc := NewEncoder(params)
	kgen := NewKeyGenerator(params)
	sk := kgen.GenSecretKey()
	encr := NewEncryptor(params, kgen.GenPublicKey(sk))
	decr := NewDecryptor(params, sk)
	keys, err := kgen.GenEvaluationKeySet(sk, []KeySwitchMethod{Hybrid}, []int{1, 2, 8, 16, 32, 64, 128}, true)
	if err != nil {
		t.Fatal(err)
	}
	ev, err := NewEvaluator(params, keys)
	if err != nil {
		t.Fatal(err)
	}
	n := params.Slots()
	v := randomValues(n, 77)
	pt, err := enc.Encode(v)
	if err != nil {
		t.Fatal(err)
	}
	if e := maxErr(enc.Decode(pt), v); e > 1e-6 {
		t.Fatalf("sparse roundtrip error %g", e)
	}
	ct, _ := encr.Encrypt(pt)
	rot, err := ev.Rotate(ct, 1)
	if err != nil {
		t.Fatal(err)
	}
	got := enc.Decode(decr.Decrypt(rot))
	want := make([]complex128, n)
	for i := range want {
		want[i] = v[(i+1)%n]
	}
	if e := maxErr(got, want); e > 1e-4 {
		t.Fatalf("sparse rotation error %g: got %v want %v", e, got[:3], want[:3])
	}
	// Rotation by n = identity on slots.
	rotN, err := ev.Rotate(ct, n)
	if err != nil {
		t.Fatal(err)
	}
	if e := maxErr(enc.Decode(decr.Decrypt(rotN)), v); e > 1e-4 {
		t.Fatalf("rotation by slot count should be identity on sparse packing, error %g", e)
	}
}
