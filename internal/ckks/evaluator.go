package ckks

import (
	"context"
	"fmt"
	"math"
	"math/big"
	"sync/atomic"
	"time"

	"github.com/fastfhe/fast/internal/obs"
	"github.com/fastfhe/fast/internal/ring"
	"github.com/fastfhe/fast/internal/rns"
)

// Evaluator executes homomorphic operations. It owns one KeySwitcher per
// enabled backend and routes every HMult/HRot through a per-call backend
// choice (the ...With variants) or the stored default — the hook the Aether
// planner drives when it assigns a key-switching method per operation (paper
// §4.1).
//
// Concurrency: an Evaluator is safe for concurrent use from many goroutines.
// The default method is stored atomically, the switcher map is immutable
// after construction, and every hot path draws its scratch polynomials from
// sync.Pool-backed buffer pools sized off the parameter set instead of
// sharing per-evaluator temporaries.
type Evaluator struct {
	params      *Parameters
	keys        *EvaluationKeySet
	method      atomic.Int32
	switcher    map[KeySwitchMethod]*KeySwitcher
	rescaler    *rns.Rescaler
	parallelism int
	pool        *ring.PolyPool // ciphertext-shaped scratch (N x full Q chain)

	// om holds the pre-resolved observability instruments; nil when the
	// evaluator is unobserved, in which case every hot path pays exactly one
	// pointer check and zero clock reads or allocations.
	om *evalObs
}

// EvaluatorOptions tunes evaluator construction.
type EvaluatorOptions struct {
	// Parallelism caps the number of worker goroutines the limb-level
	// kernels (NTT, BConv/ModUp, KeyMult, ModDown, Rescale) fan out to,
	// following ring.Workers semantics: 0 or 1 keeps every operation on the
	// calling goroutine (best aggregate throughput when many goroutines
	// evaluate concurrently), n >= 2 uses up to n workers per operation
	// (best single-operation latency), and negative values use GOMAXPROCS.
	Parallelism int

	// Observer attaches the observability substrate: per-OpKind×method
	// counters and latency histograms, key-switch phase timings, scratch
	// pool traffic, and (when the observer carries a tracer) wall-clock
	// spans for every operation. Nil disables instrumentation at zero
	// hot-path cost.
	Observer *obs.Observer
}

func (o EvaluatorOptions) workers() int {
	if o.Parallelism == 0 {
		return 1
	}
	return o.Parallelism
}

// NewEvaluator builds an evaluator over the given key set with serial
// limb-level kernels. The hybrid backend is always available; the KLSS
// backend is constructed when the parameter set carries an auxiliary chain.
func NewEvaluator(params *Parameters, keys *EvaluationKeySet) (*Evaluator, error) {
	return NewEvaluatorOptions(params, keys, EvaluatorOptions{})
}

// NewEvaluatorOptions builds an evaluator with explicit tuning options.
func NewEvaluatorOptions(params *Parameters, keys *EvaluationKeySet, opts EvaluatorOptions) (*Evaluator, error) {
	workers := opts.workers()
	ev := &Evaluator{
		params:      params,
		keys:        keys,
		switcher:    map[KeySwitchMethod]*KeySwitcher{},
		rescaler:    rns.NewRescaler(params.ringQ.Moduli),
		parallelism: workers,
		pool:        ring.NewPolyPool(params.N(), params.MaxLevel()+1),
	}
	ev.rescaler.Workers = workers
	ev.method.Store(int32(Hybrid))
	hy, err := NewKeySwitcherWorkers(params, Hybrid, workers)
	if err != nil {
		return nil, err
	}
	ev.switcher[Hybrid] = hy
	if params.SupportsKLSS() {
		kl, err := NewKeySwitcherWorkers(params, KLSS, workers)
		if err != nil {
			return nil, err
		}
		ev.switcher[KLSS] = kl
	}
	if opts.Observer != nil {
		ev.om = newEvalObs(opts.Observer)
		reg := opts.Observer.Reg()
		ev.pool.Instrument(
			reg.Counter("ring.pool.evaluator.gets"),
			reg.Counter("ring.pool.evaluator.puts"),
			reg.Counter("ring.pool.evaluator.misses"),
			reg.Gauge("ring.pool.evaluator.alloc_bytes"),
		)
		for _, sw := range ev.switcher {
			sw.SetObserver(opts.Observer)
		}
	}
	return ev, nil
}

// SetMethod selects the default key-switching backend for subsequent
// operations that do not pass one explicitly. The store is atomic, so
// SetMethod is safe to call concurrently — but operations already in flight
// keep the method they resolved at entry. Prefer the per-call ...With
// variants (or the fast package's WithMethod option) in concurrent code.
//
// Deprecated: use the ...With method variants for per-call selection.
func (ev *Evaluator) SetMethod(m KeySwitchMethod) error {
	if _, ok := ev.switcher[m]; !ok {
		return fmt.Errorf("ckks: evaluator has no %v backend: %w", m, ErrMethodUnavailable)
	}
	ev.method.Store(int32(m))
	return nil
}

// Method returns the current default key-switching backend.
func (ev *Evaluator) Method() KeySwitchMethod { return KeySwitchMethod(ev.method.Load()) }

// switcherFor resolves the switcher for a backend.
func (ev *Evaluator) switcherFor(m KeySwitchMethod) (*KeySwitcher, error) {
	sw, ok := ev.switcher[m]
	if !ok {
		return nil, fmt.Errorf("ckks: evaluator has no %v backend: %w", m, ErrMethodUnavailable)
	}
	return sw, nil
}

// alignLevels drops both ciphertexts to the lower of their levels.
func (ev *Evaluator) alignLevels(a, b *Ciphertext) (*Ciphertext, *Ciphertext) {
	if a.Level == b.Level {
		return a, b
	}
	if a.Level > b.Level {
		a = ev.DropLevel(a, a.Level-b.Level)
	} else {
		b = ev.DropLevel(b, b.Level-a.Level)
	}
	return a, b
}

// DropLevel returns ct truncated by n limbs (no scaling).
func (ev *Evaluator) DropLevel(ct *Ciphertext, n int) *Ciphertext {
	return &Ciphertext{
		C0:    ct.C0.Truncated(ct.Level + 1 - n).Clone(),
		C1:    ct.C1.Truncated(ct.Level + 1 - n).Clone(),
		Level: ct.Level - n,
		Scale: ct.Scale,
	}
}

// scalesMatch tolerates the relative drift rescaling introduces: each chain
// prime sits within ~2^-17 of the nominal scale, so two operands that took
// different paths through a deep circuit (e.g. the ~17-rescale EvalMod
// pipeline) can diverge by up to ~1e-4 in scale. The 1e-3 tolerance accepts
// that drift — introducing a value error bounded by 1e-3 of the magnitude,
// below the approximation error of the circuits that reach such depths —
// while still rejecting genuinely mismatched operands (which differ by the
// full Δ factor).
func scalesMatch(a, b float64) bool {
	return math.Abs(a-b) <= 1e-3*math.Max(a, b)
}

// Add returns a+b (HAdd). Levels are aligned; scales must match.
func (ev *Evaluator) Add(a, b *Ciphertext) (*Ciphertext, error) {
	var t0 time.Time
	if ev.om != nil {
		t0 = time.Now()
	}
	a, b = ev.alignLevels(a, b)
	if !scalesMatch(a.Scale, b.Scale) {
		return nil, fmt.Errorf("ckks: HAdd %w: %g vs %g", ErrScaleMismatch, a.Scale, b.Scale)
	}
	rq := ev.params.ringQ.AtLevel(a.Level)
	out := &Ciphertext{C0: rq.NewPoly(), C1: rq.NewPoly(), Level: a.Level, Scale: a.Scale}
	rq.Add(a.C0, b.C0, out.C0)
	rq.Add(a.C1, b.C1, out.C1)
	if ev.om != nil {
		ev.om.finishNoMethod(ev.om.hadd, "HAdd", a.Level, t0, nil)
	}
	return out, nil
}

// Sub returns a-b.
func (ev *Evaluator) Sub(a, b *Ciphertext) (*Ciphertext, error) {
	var t0 time.Time
	if ev.om != nil {
		t0 = time.Now()
	}
	a, b = ev.alignLevels(a, b)
	if !scalesMatch(a.Scale, b.Scale) {
		return nil, fmt.Errorf("ckks: HSub %w: %g vs %g", ErrScaleMismatch, a.Scale, b.Scale)
	}
	rq := ev.params.ringQ.AtLevel(a.Level)
	out := &Ciphertext{C0: rq.NewPoly(), C1: rq.NewPoly(), Level: a.Level, Scale: a.Scale}
	rq.Sub(a.C0, b.C0, out.C0)
	rq.Sub(a.C1, b.C1, out.C1)
	if ev.om != nil {
		ev.om.finishNoMethod(ev.om.hadd, "HAdd", a.Level, t0, nil)
	}
	return out, nil
}

// AddPlain returns ct+pt (PAdd).
func (ev *Evaluator) AddPlain(ct *Ciphertext, pt *Plaintext) (*Ciphertext, error) {
	var t0 time.Time
	if ev.om != nil {
		t0 = time.Now()
	}
	level := min(ct.Level, pt.Level)
	if !scalesMatch(ct.Scale, pt.Scale) {
		return nil, fmt.Errorf("ckks: PAdd %w: %g vs %g", ErrScaleMismatch, ct.Scale, pt.Scale)
	}
	rq := ev.params.ringQ.AtLevel(level)
	out := &Ciphertext{C0: rq.NewPoly(), C1: ct.C1.Truncated(level + 1).Clone(), Level: level, Scale: ct.Scale}
	rq.Add(ct.C0.Truncated(level+1), pt.Value.Truncated(level+1), out.C0)
	if ev.om != nil {
		ev.om.finishNoMethod(ev.om.padd, "PAdd", level, t0, nil)
	}
	return out, nil
}

// MulPlain returns ct*pt (PMult) without rescaling; the output scale is the
// product of the scales.
func (ev *Evaluator) MulPlain(ct *Ciphertext, pt *Plaintext) (*Ciphertext, error) {
	var t0 time.Time
	if ev.om != nil {
		t0 = time.Now()
	}
	level := min(ct.Level, pt.Level)
	rq := ev.params.ringQ.AtLevel(level)
	out := &Ciphertext{C0: rq.NewPoly(), C1: rq.NewPoly(), Level: level, Scale: ct.Scale * pt.Scale}
	rq.MulCoeffs(ct.C0.Truncated(level+1), pt.Value.Truncated(level+1), out.C0)
	rq.MulCoeffs(ct.C1.Truncated(level+1), pt.Value.Truncated(level+1), out.C1)
	if ev.om != nil {
		ev.om.finishNoMethod(ev.om.pmult, "PMult", level, t0, nil)
	}
	return out, nil
}

// MulConst returns ct * c for a real constant (CMult): the constant is
// quantised at the default scale, so the output scale is Scale*Δ and the
// caller typically rescales next.
func (ev *Evaluator) MulConst(ct *Ciphertext, c float64) (*Ciphertext, error) {
	var t0 time.Time
	if ev.om != nil {
		t0 = time.Now()
	}
	delta := ev.params.Scale()
	k, err := scaleToInt(c, delta)
	if err != nil {
		return nil, err
	}
	rq := ev.params.ringQ.AtLevel(ct.Level)
	out := &Ciphertext{C0: rq.NewPoly(), C1: rq.NewPoly(), Level: ct.Level, Scale: ct.Scale * delta}
	rq.MulScalarBigint(ct.C0, k, out.C0)
	rq.MulScalarBigint(ct.C1, k, out.C1)
	if ev.om != nil {
		ev.om.finishNoMethod(ev.om.cmult, "CMult", ct.Level, t0, nil)
	}
	return out, nil
}

// AddConst returns ct + c for a real constant, at ct's scale.
func (ev *Evaluator) AddConst(ct *Ciphertext, c float64) (*Ciphertext, error) {
	k, err := scaleToInt(c, ct.Scale)
	if err != nil {
		return nil, err
	}
	rq := ev.params.ringQ.AtLevel(ct.Level)
	out := ct.CopyNew()
	// The constant lands on coefficient 0 in coefficient form, which is the
	// all-k vector in NTT form (the NTT of a constant is that constant).
	kModQ := ev.pool.Get(ct.Level + 1)
	defer ev.pool.Put(kModQ)
	tmp := new(big.Int)
	for i, m := range rq.Moduli {
		v := tmp.Mod(k, new(big.Int).SetUint64(m.Q)).Uint64()
		row := kModQ.Coeffs[i]
		for j := range row {
			row[j] = v
		}
	}
	rq.Add(out.C0, kModQ, out.C0)
	return out, nil
}

// MulRelin returns a*b with relinearisation through the default backend
// (HMult). No rescale is performed; the output scale is the product.
func (ev *Evaluator) MulRelin(a, b *Ciphertext) (*Ciphertext, error) {
	return ev.MulRelinWith(a, b, ev.Method())
}

// MulRelinWith is MulRelin with an explicit key-switching backend, enabling
// stateless per-call method selection under concurrency.
func (ev *Evaluator) MulRelinWith(a, b *Ciphertext, m KeySwitchMethod) (*Ciphertext, error) {
	return ev.mulRelin(nil, a, b, m)
}

// MulRelinCtx is MulRelinWith with cancellation: the relinearisation
// key-switch polls ctx at its limb-chunk boundaries and returns a typed
// ErrCanceled/ErrDeadline error (pooled scratch released) once ctx is done.
func (ev *Evaluator) MulRelinCtx(ctx context.Context, a, b *Ciphertext, m KeySwitchMethod) (*Ciphertext, error) {
	return ev.mulRelin(newCancelCheck(ctx), a, b, m)
}

func (ev *Evaluator) mulRelin(cc *cancelCheck, a, b *Ciphertext, m KeySwitchMethod) (*Ciphertext, error) {
	var t0 time.Time
	if ev.om != nil {
		t0 = time.Now()
	}
	if err := cc.err("HMult"); err != nil {
		return nil, err
	}
	sw, err := ev.switcherFor(m)
	if err != nil {
		return nil, err
	}
	rlk, err := ev.keys.RelinKey(m)
	if err != nil {
		return nil, err
	}
	a, b = ev.alignLevels(a, b)
	level := a.Level
	rq := ev.params.ringQ.AtLevel(level)

	// Tensor: (d0, d1, d2) = (a0*b0, a0*b1 + a1*b0, a1*b1). d0 and d1
	// escape into the output; the quadratic term d2 is scratch.
	d0, d1 := rq.NewPoly(), rq.NewPoly()
	d2 := ev.pool.Get(level + 1)
	defer ev.pool.Put(d2)
	rq.MulCoeffs(a.C0, b.C0, d0)
	rq.MulCoeffs(a.C0, b.C1, d1)
	rq.MulCoeffsThenAdd(a.C1, b.C0, d1)
	rq.MulCoeffs(a.C1, b.C1, d2)

	// Relinearise d2 with the s^2 key.
	e0, e1, err := sw.switchPoly(cc, d2, rlk, level)
	if err != nil {
		return nil, err
	}
	out := &Ciphertext{C0: d0, C1: d1, Level: level, Scale: a.Scale * b.Scale}
	rq.Add(out.C0, e0, out.C0)
	rq.Add(out.C1, e1, out.C1)
	if ev.om != nil {
		ev.om.finish(ev.om.hmult[methodIdx(m)], "HMult", m, level, t0, cc)
	}
	return out, nil
}

// Rescale divides the ciphertext by its top prime, dropping one level and
// dividing the scale accordingly.
func (ev *Evaluator) Rescale(ct *Ciphertext) (*Ciphertext, error) {
	return ev.rescaleCC(nil, ct)
}

// RescaleCtx is Rescale with a cancellation checkpoint at entry and between
// the two component passes.
func (ev *Evaluator) RescaleCtx(ctx context.Context, ct *Ciphertext) (*Ciphertext, error) {
	return ev.rescaleCC(newCancelCheck(ctx), ct)
}

func (ev *Evaluator) rescaleCC(cc *cancelCheck, ct *Ciphertext) (*Ciphertext, error) {
	var t0 time.Time
	if ev.om != nil {
		t0 = time.Now()
	}
	if ct.Level == 0 {
		return nil, fmt.Errorf("ckks: cannot rescale at level 0: %w", ErrLevelExhausted)
	}
	level := ct.Level
	rqIn := ev.params.ringQ.AtLevel(level)
	rqOut := ev.params.ringQ.AtLevel(level - 1)
	out := &Ciphertext{
		C0:    ring.NewPoly(ev.params.N(), level),
		C1:    ring.NewPoly(ev.params.N(), level),
		Level: level - 1,
		Scale: ct.Scale / float64(ev.params.qChain[level]),
	}
	tmp := ev.pool.Get(level + 1)
	defer ev.pool.Put(tmp)
	for _, pair := range []struct{ in, out ring.Poly }{{ct.C0, out.C0}, {ct.C1, out.C1}} {
		if err := cc.err("Rescale"); err != nil {
			return nil, err
		}
		tmp.CopyValues(pair.in)
		rqIn.INTTWorkers(tmp, ev.parallelism)
		ev.rescaler.Rescale(tmp.Coeffs, pair.out.Coeffs)
		rqOut.NTTWorkers(pair.out, ev.parallelism)
	}
	if ev.om != nil {
		ev.om.finishNoMethod(ev.om.rescale, "Rescale", level, t0, cc)
	}
	return out, nil
}

// Rotate returns ct with its slots cyclically rotated by r (HRot), via the
// default backend's Galois key.
func (ev *Evaluator) Rotate(ct *Ciphertext, r int) (*Ciphertext, error) {
	return ev.RotateWith(ct, r, ev.Method())
}

// RotateWith is Rotate with an explicit key-switching backend.
func (ev *Evaluator) RotateWith(ct *Ciphertext, r int, m KeySwitchMethod) (*Ciphertext, error) {
	return ev.rotate(nil, ct, r, m)
}

// RotateCtx is RotateWith with cancellation: the key-switch polls ctx at its
// limb-chunk boundaries.
func (ev *Evaluator) RotateCtx(ctx context.Context, ct *Ciphertext, r int, m KeySwitchMethod) (*Ciphertext, error) {
	return ev.rotate(newCancelCheck(ctx), ct, r, m)
}

func (ev *Evaluator) rotate(cc *cancelCheck, ct *Ciphertext, r int, m KeySwitchMethod) (*Ciphertext, error) {
	var t0 time.Time
	if ev.om != nil {
		t0 = time.Now()
	}
	galEl := ring.GaloisElementForRotation(ev.params.LogN(), r)
	out, err := ev.automorphism(cc, ct, galEl, m)
	if err == nil && ev.om != nil {
		ev.om.finish(ev.om.hrot[methodIdx(m)], "HRot", m, ct.Level, t0, cc)
	}
	return out, err
}

// Conjugate returns the slot-wise complex conjugate of ct.
func (ev *Evaluator) Conjugate(ct *Ciphertext) (*Ciphertext, error) {
	return ev.ConjugateWith(ct, ev.Method())
}

// ConjugateWith is Conjugate with an explicit key-switching backend.
func (ev *Evaluator) ConjugateWith(ct *Ciphertext, m KeySwitchMethod) (*Ciphertext, error) {
	return ev.conjugate(nil, ct, m)
}

// ConjugateCtx is ConjugateWith with cancellation.
func (ev *Evaluator) ConjugateCtx(ctx context.Context, ct *Ciphertext, m KeySwitchMethod) (*Ciphertext, error) {
	return ev.conjugate(newCancelCheck(ctx), ct, m)
}

func (ev *Evaluator) conjugate(cc *cancelCheck, ct *Ciphertext, m KeySwitchMethod) (*Ciphertext, error) {
	var t0 time.Time
	if ev.om != nil {
		t0 = time.Now()
	}
	galEl := ring.GaloisElementForConjugation(ev.params.LogN())
	out, err := ev.automorphism(cc, ct, galEl, m)
	if err == nil && ev.om != nil {
		ev.om.finish(ev.om.conj[methodIdx(m)], "Conjugate", m, ct.Level, t0, cc)
	}
	return out, err
}

func (ev *Evaluator) automorphism(cc *cancelCheck, ct *Ciphertext, galEl uint64, m KeySwitchMethod) (*Ciphertext, error) {
	if err := cc.err("HRot"); err != nil {
		return nil, err
	}
	sw, err := ev.switcherFor(m)
	if err != nil {
		return nil, err
	}
	key, err := ev.keys.GaloisKey(m, galEl)
	if err != nil {
		return nil, err
	}
	level := ct.Level
	rq := ev.params.ringQ.AtLevel(level)
	idx := ev.params.GaloisIndex(galEl)

	// Switch φ(c1) under the rotated key, then add φ(c0).
	c1Rot := ev.pool.Get(level + 1)
	defer ev.pool.Put(c1Rot)
	rq.AutomorphismNTT(ct.C1, c1Rot, idx)
	d0, d1, err := sw.switchPoly(cc, c1Rot, key, level)
	if err != nil {
		return nil, err
	}
	c0Rot := ev.pool.Get(level + 1)
	defer ev.pool.Put(c0Rot)
	rq.AutomorphismNTT(ct.C0, c0Rot, idx)
	rq.Add(d0, c0Rot, d0)
	return &Ciphertext{C0: d0, C1: d1, Level: level, Scale: ct.Scale}, nil
}

// RotateHoisted rotates ct by every requested amount, paying the expensive
// decomposition (ModUp) only once — the hoisting optimisation the FAST
// accelerator schedules (paper §2.2.3). Results are keyed by rotation amount.
func (ev *Evaluator) RotateHoisted(ct *Ciphertext, rotations []int) (map[int]*Ciphertext, error) {
	return ev.RotateHoistedWith(ct, rotations, ev.Method())
}

// RotateHoistedWith is RotateHoisted with an explicit key-switching backend.
func (ev *Evaluator) RotateHoistedWith(ct *Ciphertext, rotations []int, m KeySwitchMethod) (map[int]*Ciphertext, error) {
	return ev.rotateHoisted(nil, ct, rotations, m)
}

// RotateHoistedCtx is RotateHoistedWith with cancellation: ctx is polled
// inside the shared decomposition and before every per-rotation key-mult, so
// a canceled batch returns within a fraction of one key-switch with all
// pooled scratch released.
func (ev *Evaluator) RotateHoistedCtx(ctx context.Context, ct *Ciphertext, rotations []int, m KeySwitchMethod) (map[int]*Ciphertext, error) {
	return ev.rotateHoisted(newCancelCheck(ctx), ct, rotations, m)
}

func (ev *Evaluator) rotateHoisted(cc *cancelCheck, ct *Ciphertext, rotations []int, m KeySwitchMethod) (map[int]*Ciphertext, error) {
	var t0 time.Time
	if ev.om != nil {
		t0 = time.Now()
	}
	sw, err := ev.switcherFor(m)
	if err != nil {
		return nil, err
	}
	level := ct.Level
	rq := ev.params.ringQ.AtLevel(level)
	dec, err := sw.decompose(cc, ct.C1, level)
	if err != nil {
		return nil, err
	}
	defer sw.Release(dec)
	out := make(map[int]*Ciphertext, len(rotations))
	for _, r := range rotations {
		if err := cc.err("HRotHoisted"); err != nil {
			return nil, err
		}
		if r == 0 {
			out[0] = ct.CopyNew()
			continue
		}
		galEl := ring.GaloisElementForRotation(ev.params.LogN(), r)
		key, err := ev.keys.GaloisKey(m, galEl)
		if err != nil {
			return nil, err
		}
		idx := ev.params.GaloisIndex(galEl)
		rotDec := sw.Automorph(dec, idx)
		d0, d1, err := sw.keyMult(cc, rotDec, key, level)
		sw.Release(rotDec)
		if err != nil {
			return nil, err
		}
		c0Rot := ev.pool.Get(level + 1)
		rq.AutomorphismNTT(ct.C0, c0Rot, idx)
		rq.Add(d0, c0Rot, d0)
		ev.pool.Put(c0Rot)
		out[r] = &Ciphertext{C0: d0, C1: d1, Level: level, Scale: ct.Scale}
	}
	if ev.om != nil {
		// One span covers the whole hoisted group (single ModUp amortised
		// across len(rotations) key-mults).
		ev.om.finish(ev.om.hoisted[methodIdx(m)], "HRotHoisted", m, level, t0, cc)
	}
	return out, nil
}
