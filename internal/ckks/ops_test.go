package ckks

import (
	"math"
	"testing"
	"testing/quick"
)

func TestInnerSum(t *testing.T) {
	tc := newTestContext(t)
	n := tc.params.Slots()
	const batch = 4
	v := randomValues(n, 60)
	pt, _ := tc.enc.Encode(v)
	ct, _ := tc.encr.Encrypt(pt)

	out, err := tc.eval.InnerSum(ct, batch)
	if err != nil {
		t.Fatalf("InnerSum: %v", err)
	}
	got := tc.enc.Decode(tc.decr.Decrypt(out))
	for i := 0; i < n; i++ {
		// The rotation tree computes a sliding (cyclic) window sum.
		want := complex(0, 0)
		for j := 0; j < batch; j++ {
			want += v[(i+j)%n]
		}
		if e := absc(got[i] - want); e > 1e-3 {
			t.Fatalf("slot %d: got %v want %v", i, got[i], want)
		}
	}
}

func TestAverage(t *testing.T) {
	tc := newTestContext(t)
	n := tc.params.Slots()
	const batch = 8
	v := make([]complex128, n)
	for i := range v {
		v[i] = complex(float64(i%batch), 0)
	}
	pt, _ := tc.enc.Encode(v)
	ct, _ := tc.encr.Encrypt(pt)
	out, err := tc.eval.Average(ct, batch)
	if err != nil {
		t.Fatalf("Average: %v", err)
	}
	got := tc.enc.Decode(tc.decr.Decrypt(out))
	want := (0.0 + 1 + 2 + 3 + 4 + 5 + 6 + 7) / 8
	for i := 0; i < n; i += batch {
		if e := math.Abs(real(got[i]) - want); e > 1e-3 {
			t.Fatalf("slot %d: got %v want %v", i, got[i], want)
		}
	}
}

func TestReplicate(t *testing.T) {
	tc := newTestContext(t)
	n := tc.params.Slots()
	const batch = 4
	// Group leaders hold i, other slots zero.
	v := make([]complex128, n)
	for i := 0; i < n; i += batch {
		v[i] = complex(float64(i/batch%7), 0)
	}
	pt, _ := tc.enc.Encode(v)
	ct, _ := tc.encr.Encrypt(pt)
	out, err := tc.eval.Replicate(ct, batch)
	if err != nil {
		t.Fatalf("Replicate: %v", err)
	}
	got := tc.enc.Decode(tc.decr.Decrypt(out))
	for i := 0; i < n; i++ {
		leader := i - i%batch
		if e := absc(got[i] - v[leader]); e > 1e-3 {
			t.Fatalf("slot %d: got %v want %v", i, got[i], v[leader])
		}
	}
}

func TestMaskSlots(t *testing.T) {
	tc := newTestContext(t)
	n := tc.params.Slots()
	v := randomValues(n, 61)
	mask := make([]bool, n)
	for i := range mask {
		mask[i] = i%3 == 0
	}
	pt, _ := tc.enc.Encode(v)
	ct, _ := tc.encr.Encrypt(pt)
	out, err := tc.eval.MaskSlots(ct, mask, tc.enc)
	if err != nil {
		t.Fatalf("MaskSlots: %v", err)
	}
	got := tc.enc.Decode(tc.decr.Decrypt(out))
	for i := 0; i < n; i++ {
		want := complex(0, 0)
		if mask[i] {
			want = v[i]
		}
		if e := absc(got[i] - want); e > 1e-3 {
			t.Fatalf("slot %d: got %v want %v", i, got[i], want)
		}
	}
}

func TestOpsValidation(t *testing.T) {
	tc := newTestContext(t)
	v := randomValues(tc.params.Slots(), 62)
	pt, _ := tc.enc.Encode(v)
	ct, _ := tc.encr.Encrypt(pt)
	if _, err := tc.eval.InnerSum(ct, 3); err == nil {
		t.Error("non-power-of-two batch accepted")
	}
	if _, err := tc.eval.InnerSum(ct, 4*tc.params.Slots()); err == nil {
		t.Error("oversized batch accepted")
	}
	if _, err := tc.eval.Replicate(ct, 5); err == nil {
		t.Error("non-power-of-two replicate accepted")
	}
	if _, err := tc.eval.MaskSlots(ct, []bool{true}, tc.enc); err == nil {
		t.Error("short mask accepted")
	}
}

// Property: homomorphic addition commutes and is compatible with plaintext
// addition across random vectors (quick-check over the functional layer).
func TestAdditionPropertyQuick(t *testing.T) {
	tc := newTestContext(t)
	n := tc.params.Slots()
	f := func(seedA, seedB int64) bool {
		a := randomValues(n, seedA)
		b := randomValues(n, seedB)
		pa, _ := tc.enc.Encode(a)
		pb, _ := tc.enc.Encode(b)
		ca, _ := tc.encr.Encrypt(pa)
		cb, _ := tc.encr.Encrypt(pb)
		ab, err := tc.eval.Add(ca, cb)
		if err != nil {
			return false
		}
		ba, err := tc.eval.Add(cb, ca)
		if err != nil {
			return false
		}
		gab := tc.enc.Decode(tc.decr.Decrypt(ab))
		gba := tc.enc.Decode(tc.decr.Decrypt(ba))
		for i := range a {
			if absc(gab[i]-gba[i]) > 1e-6 || absc(gab[i]-(a[i]+b[i])) > 1e-3 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 5}); err != nil {
		t.Error(err)
	}
}

// Property: scalar multiplication distributes over addition.
func TestDistributivityQuick(t *testing.T) {
	tc := newTestContext(t)
	n := tc.params.Slots()
	f := func(seed int64, kRaw uint8) bool {
		k := float64(kRaw%9)/4 - 1 // constants in [-1, 1]
		a := randomValues(n, seed)
		b := randomValues(n, seed+1)
		pa, _ := tc.enc.Encode(a)
		pb, _ := tc.enc.Encode(b)
		ca, _ := tc.encr.Encrypt(pa)
		cb, _ := tc.encr.Encrypt(pb)

		sum, err := tc.eval.Add(ca, cb)
		if err != nil {
			return false
		}
		lhs, err := tc.eval.MulConst(sum, k)
		if err != nil {
			return false
		}
		ka, err := tc.eval.MulConst(ca, k)
		if err != nil {
			return false
		}
		kb, err := tc.eval.MulConst(cb, k)
		if err != nil {
			return false
		}
		rhs, err := tc.eval.Add(ka, kb)
		if err != nil {
			return false
		}
		gl := tc.enc.Decode(tc.decr.Decrypt(lhs))
		gr := tc.enc.Decode(tc.decr.Decrypt(rhs))
		for i := range a {
			if absc(gl[i]-gr[i]) > 1e-4 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 4}); err != nil {
		t.Error(err)
	}
}
