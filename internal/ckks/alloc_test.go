package ckks

import "testing"

// TestKeySwitchAllocs pins the steady-state allocation count of the hot
// key-switch path (MulRelin = tensor + relinearisation key-switch). All
// scratch comes from the evaluator's and switcher's polynomial pools, so
// the only allocations left are the polynomials that escape into the result
// ciphertext and a handful of fixed-size headers. A large jump here means a
// pooling regression: some scratch buffer went back to make/NewPoly.
func TestKeySwitchAllocs(t *testing.T) {
	if raceEnabled {
		t.Skip("race runtime instruments sync.Pool and inflates AllocsPerRun")
	}
	tc := newTestContext(t)
	values := randomValues(tc.params.Slots(), 77)
	pt, _ := tc.enc.Encode(values)
	ct, err := tc.encr.Encrypt(pt)
	if err != nil {
		t.Fatal(err)
	}

	for _, method := range []KeySwitchMethod{Hybrid, KLSS} {
		// Warm the pools: the first calls populate the sync.Pools.
		for i := 0; i < 3; i++ {
			if _, err := tc.eval.MulRelinWith(ct, ct, method); err != nil {
				t.Fatal(err)
			}
		}
		allocs := testing.AllocsPerRun(10, func() {
			if _, err := tc.eval.MulRelinWith(ct, ct, method); err != nil {
				t.Fatal(err)
			}
		})
		// The escaping result accounts for ~2 polynomials (row slices +
		// contiguous backings) plus headers; steady state measures 44, so 59
		// leaves headroom for pool misses under GC pressure while failing
		// loudly if scratch stops being pooled (which shows up as hundreds of
		// per-limb allocations) or a limb buffer loses its arena.
		const maxAllocs = 59
		t.Logf("MulRelin %v: %.0f allocs/op", method, allocs)
		if allocs > maxAllocs {
			t.Errorf("MulRelin %v allocates %.0f times per op, want <= %d (pooling regression?)",
				method, allocs, maxAllocs)
		}
	}
}

// TestRotateAllocs pins the steady-state allocation count of the rotation
// path (automorphism + key-switch). On top of the pooled scratch this also
// guards the memoized Galois index tables: before the cache, every Rotate
// re-allocated an N-entry permutation table, which would blow well past the
// budget here.
func TestRotateAllocs(t *testing.T) {
	if raceEnabled {
		t.Skip("race runtime instruments sync.Pool and inflates AllocsPerRun")
	}
	tc := newTestContext(t)
	values := randomValues(tc.params.Slots(), 78)
	pt, _ := tc.enc.Encode(values)
	ct, err := tc.encr.Encrypt(pt)
	if err != nil {
		t.Fatal(err)
	}

	for _, method := range []KeySwitchMethod{Hybrid, KLSS} {
		for i := 0; i < 3; i++ {
			if _, err := tc.eval.RotateWith(ct, 1, method); err != nil {
				t.Fatal(err)
			}
		}
		allocs := testing.AllocsPerRun(10, func() {
			if _, err := tc.eval.RotateWith(ct, 1, method); err != nil {
				t.Fatal(err)
			}
		})
		const maxAllocs = 64
		t.Logf("Rotate %v: %.0f allocs/op", method, allocs)
		if allocs > maxAllocs {
			t.Errorf("Rotate %v allocates %.0f times per op, want <= %d (pooling or galois-cache regression?)",
				method, allocs, maxAllocs)
		}
	}
}

// TestRotateHoistedAllocs pins the allocation count of a hoisted rotation
// batch: one shared decomposition plus per-rotation key-mults. The budget is
// per batch of three rotations (three escaping ciphertexts and the result
// map), so it sits above the single-rotation budget but still fails loudly if
// the decomposition scratch or the index tables stop being pooled/cached.
func TestRotateHoistedAllocs(t *testing.T) {
	if raceEnabled {
		t.Skip("race runtime instruments sync.Pool and inflates AllocsPerRun")
	}
	tc := newTestContext(t)
	values := randomValues(tc.params.Slots(), 79)
	pt, _ := tc.enc.Encode(values)
	ct, err := tc.encr.Encrypt(pt)
	if err != nil {
		t.Fatal(err)
	}

	rots := []int{1, 2, 4}
	for _, method := range []KeySwitchMethod{Hybrid, KLSS} {
		for i := 0; i < 3; i++ {
			if _, err := tc.eval.RotateHoistedWith(ct, rots, method); err != nil {
				t.Fatal(err)
			}
		}
		allocs := testing.AllocsPerRun(10, func() {
			if _, err := tc.eval.RotateHoistedWith(ct, rots, method); err != nil {
				t.Fatal(err)
			}
		})
		const maxAllocs = 160
		t.Logf("RotateHoisted %v (%d rots): %.0f allocs/op", method, len(rots), allocs)
		if allocs > maxAllocs {
			t.Errorf("RotateHoisted %v allocates %.0f times per op, want <= %d (pooling or galois-cache regression?)",
				method, allocs, maxAllocs)
		}
	}
}
