package ckks

import "testing"

// TestKeySwitchAllocs pins the steady-state allocation count of the hot
// key-switch path (MulRelin = tensor + relinearisation key-switch). All
// scratch comes from the evaluator's and switcher's polynomial pools, so
// the only allocations left are the polynomials that escape into the result
// ciphertext and a handful of fixed-size headers. A large jump here means a
// pooling regression: some scratch buffer went back to make/NewPoly.
func TestKeySwitchAllocs(t *testing.T) {
	if raceEnabled {
		t.Skip("race runtime instruments sync.Pool and inflates AllocsPerRun")
	}
	tc := newTestContext(t)
	values := randomValues(tc.params.Slots(), 77)
	pt, _ := tc.enc.Encode(values)
	ct, err := tc.encr.Encrypt(pt)
	if err != nil {
		t.Fatal(err)
	}

	for _, method := range []KeySwitchMethod{Hybrid, KLSS} {
		// Warm the pools: the first calls populate the sync.Pools.
		for i := 0; i < 3; i++ {
			if _, err := tc.eval.MulRelinWith(ct, ct, method); err != nil {
				t.Fatal(err)
			}
		}
		allocs := testing.AllocsPerRun(10, func() {
			if _, err := tc.eval.MulRelinWith(ct, ct, method); err != nil {
				t.Fatal(err)
			}
		})
		// The escaping result accounts for ~2 polynomials (row slices +
		// contiguous backings) plus headers; leave headroom for pool misses
		// under GC pressure but fail loudly if scratch stops being pooled
		// (which shows up as hundreds of per-limb allocations).
		const maxAllocs = 64
		t.Logf("MulRelin %v: %.0f allocs/op", method, allocs)
		if allocs > maxAllocs {
			t.Errorf("MulRelin %v allocates %.0f times per op, want <= %d (pooling regression?)",
				method, allocs, maxAllocs)
		}
	}
}
