package ckks

import (
	"fmt"
	"sync"
	"time"

	"github.com/fastfhe/fast/internal/obs"
	"github.com/fastfhe/fast/internal/ring"
)

// Ciphertext is a degree-1 RLWE ciphertext (c0, c1) with c0 + c1*s ≈ m. Both
// polynomials are kept in NTT form with level+1 limbs.
type Ciphertext struct {
	C0, C1 ring.Poly
	Level  int
	Scale  float64
}

// CopyNew returns a deep copy.
func (ct *Ciphertext) CopyNew() *Ciphertext {
	return &Ciphertext{C0: ct.C0.Clone(), C1: ct.C1.Clone(), Level: ct.Level, Scale: ct.Scale}
}

// Encryptor encrypts plaintexts under a public key. It is safe for
// concurrent use: the deterministic sampler stream is the only mutable
// state and is serialised by a mutex. The critical section covers exactly
// the three signed draws from the sampler stream — not the O(limbs·N)
// reduction of those draws into RNS limbs, nor the NTTs, nor the public-key
// multiplications — so concurrent encrypts serialise only on the cheap
// stream consumption. The sampled values still form one deterministic
// sequence, though their assignment to concurrent Encrypt calls depends on
// scheduling order; a single-goroutine stream of encrypts is bit-identical
// run to run (see TestEncryptSeededStreamDeterministic).
type Encryptor struct {
	params *Parameters
	pk     *PublicKey

	mu      sync.Mutex
	sampler *ring.Sampler

	// Optional instruments (nil when unobserved): encrypt count/latency and
	// sampler draw count.
	encCount *obs.Counter
	encLatNS *obs.Histogram
}

// NewEncryptor returns a public-key encryptor.
func NewEncryptor(params *Parameters, pk *PublicKey) *Encryptor {
	return NewEncryptorWithSeed(params, pk, params.seed+0x5eed)
}

// NewEncryptorWithSeed returns a public-key encryptor whose deterministic
// sampler stream starts from an explicit seed instead of the parameter-set
// default. Session restoration uses this to start a fresh stream per restore
// epoch: replaying the original seed after a crash would re-issue the exact
// (u, e0, e1) draws of the earliest pre-crash encrypts, and reusing
// encryption randomness under one public key leaks plaintext differences.
func NewEncryptorWithSeed(params *Parameters, pk *PublicKey, seed int64) *Encryptor {
	return &Encryptor{params: params, pk: pk, sampler: ring.NewSampler(seed)}
}

// SetObserver attaches observability instruments: an encrypt counter and
// latency histogram, plus a draw counter on the underlying sampler. Call
// before the encryptor is shared across goroutines. A nil observer detaches.
func (e *Encryptor) SetObserver(o *obs.Observer) {
	if o == nil {
		e.encCount, e.encLatNS = nil, nil
		e.sampler.Instrument(nil)
		return
	}
	reg := o.Reg()
	e.encCount = reg.Counter("ckks.encrypt.count")
	e.encLatNS = reg.Histogram("ckks.encrypt.latency_ns")
	e.sampler.Instrument(reg.Counter("ckks.sampler.draws"))
}

// Encrypt returns a fresh encryption of pt at pt's level.
func (e *Encryptor) Encrypt(pt *Plaintext) (*Ciphertext, error) {
	if pt.Level < 0 || pt.Level > e.params.MaxLevel() {
		return nil, fmt.Errorf("ckks: plaintext level %d out of range: %w", pt.Level, ErrLevelMismatch)
	}
	var t0 time.Time
	if e.encLatNS != nil {
		t0 = time.Now()
	}
	rq := e.params.ringQ.AtLevel(pt.Level)
	n := e.params.N()
	// u ternary, e0/e1 gaussian; (c0, c1) = (b*u + e0 + m, a*u + e1).
	// Only the three stream draws hold the sampler mutex; the limb
	// reductions and transforms below run concurrently across encrypts.
	e.mu.Lock()
	uS := e.sampler.TernarySigned(n)
	e0S := e.sampler.GaussianSigned(n, e.params.sigma)
	e1S := e.sampler.GaussianSigned(n, e.params.sigma)
	e.mu.Unlock()
	u := rq.NewPoly()
	e0, e1 := rq.NewPoly(), rq.NewPoly()
	ring.SetSigned(rq, uS, u)
	ring.SetSigned(rq, e0S, e0)
	ring.SetSigned(rq, e1S, e1)
	rq.NTT(u)
	rq.NTT(e0)
	rq.NTT(e1)

	ct := &Ciphertext{C0: rq.NewPoly(), C1: rq.NewPoly(), Level: pt.Level, Scale: pt.Scale}
	rq.MulCoeffs(e.pk.B.Truncated(pt.Level+1), u, ct.C0)
	rq.Add(ct.C0, e0, ct.C0)
	rq.Add(ct.C0, pt.Value, ct.C0)
	rq.MulCoeffs(e.pk.A.Truncated(pt.Level+1), u, ct.C1)
	rq.Add(ct.C1, e1, ct.C1)
	if e.encLatNS != nil {
		e.encCount.Inc()
		e.encLatNS.ObserveSince(t0)
	}
	return ct, nil
}

// Decryptor decrypts ciphertexts with the secret key.
type Decryptor struct {
	params *Parameters
	sk     *SecretKey
}

// NewDecryptor returns a decryptor.
func NewDecryptor(params *Parameters, sk *SecretKey) *Decryptor {
	return &Decryptor{params: params, sk: sk}
}

// Decrypt returns the plaintext m = c0 + c1*s at the ciphertext's level.
func (d *Decryptor) Decrypt(ct *Ciphertext) *Plaintext {
	rq := d.params.ringQ.AtLevel(ct.Level)
	pt := &Plaintext{Value: rq.NewPoly(), Level: ct.Level, Scale: ct.Scale}
	rq.MulCoeffs(ct.C1, d.sk.skQ(d.params).Truncated(ct.Level+1), pt.Value)
	rq.Add(pt.Value, ct.C0, pt.Value)
	return pt
}
