package ckks

import (
	"fmt"
	"sync"

	"github.com/fastfhe/fast/internal/ring"
)

// Ciphertext is a degree-1 RLWE ciphertext (c0, c1) with c0 + c1*s ≈ m. Both
// polynomials are kept in NTT form with level+1 limbs.
type Ciphertext struct {
	C0, C1 ring.Poly
	Level  int
	Scale  float64
}

// CopyNew returns a deep copy.
func (ct *Ciphertext) CopyNew() *Ciphertext {
	return &Ciphertext{C0: ct.C0.Clone(), C1: ct.C1.Clone(), Level: ct.Level, Scale: ct.Scale}
}

// Encryptor encrypts plaintexts under a public key. It is safe for
// concurrent use: the deterministic sampler stream is the only mutable
// state and is serialised by a mutex (the sampled values still form one
// deterministic sequence, though their assignment to concurrent Encrypt
// calls depends on scheduling order).
type Encryptor struct {
	params *Parameters
	pk     *PublicKey

	mu      sync.Mutex
	sampler *ring.Sampler
}

// NewEncryptor returns a public-key encryptor.
func NewEncryptor(params *Parameters, pk *PublicKey) *Encryptor {
	return &Encryptor{params: params, pk: pk, sampler: ring.NewSampler(params.seed + 0x5eed)}
}

// Encrypt returns a fresh encryption of pt at pt's level.
func (e *Encryptor) Encrypt(pt *Plaintext) (*Ciphertext, error) {
	if pt.Level < 0 || pt.Level > e.params.MaxLevel() {
		return nil, fmt.Errorf("ckks: plaintext level %d out of range", pt.Level)
	}
	rq := e.params.ringQ.AtLevel(pt.Level)
	// u ternary, e0/e1 gaussian; (c0, c1) = (b*u + e0 + m, a*u + e1).
	u := rq.NewPoly()
	e0, e1 := rq.NewPoly(), rq.NewPoly()
	e.mu.Lock()
	e.sampler.TernaryPoly(rq, u)
	e.sampler.GaussianPoly(rq, e.params.sigma, e0)
	e.sampler.GaussianPoly(rq, e.params.sigma, e1)
	e.mu.Unlock()
	rq.NTT(u)
	rq.NTT(e0)
	rq.NTT(e1)

	ct := &Ciphertext{C0: rq.NewPoly(), C1: rq.NewPoly(), Level: pt.Level, Scale: pt.Scale}
	rq.MulCoeffs(e.pk.B.Truncated(pt.Level+1), u, ct.C0)
	rq.Add(ct.C0, e0, ct.C0)
	rq.Add(ct.C0, pt.Value, ct.C0)
	rq.MulCoeffs(e.pk.A.Truncated(pt.Level+1), u, ct.C1)
	rq.Add(ct.C1, e1, ct.C1)
	return ct, nil
}

// Decryptor decrypts ciphertexts with the secret key.
type Decryptor struct {
	params *Parameters
	sk     *SecretKey
}

// NewDecryptor returns a decryptor.
func NewDecryptor(params *Parameters, sk *SecretKey) *Decryptor {
	return &Decryptor{params: params, sk: sk}
}

// Decrypt returns the plaintext m = c0 + c1*s at the ciphertext's level.
func (d *Decryptor) Decrypt(ct *Ciphertext) *Plaintext {
	rq := d.params.ringQ.AtLevel(ct.Level)
	pt := &Plaintext{Value: rq.NewPoly(), Level: ct.Level, Scale: ct.Scale}
	rq.MulCoeffs(ct.C1, d.sk.skQ(d.params).Truncated(ct.Level+1), pt.Value)
	rq.Add(pt.Value, ct.C0, pt.Value)
	return pt
}
