// Package ckks implements the full-RNS CKKS approximate homomorphic
// encryption scheme: canonical-embedding encoding, key generation,
// encryption, and the homomorphic evaluator (HAdd, HMult, PMult, PAdd,
// CMult, HRot, rescaling) with two interchangeable key-switching backends —
// the hybrid method (β groups of α limbs, 36-bit datapath) and a KLSS-style
// method organised around a 60-bit auxiliary chain (the tunable-bit datapath
// of the FAST accelerator) — plus hoisted rotations, homomorphic linear
// transforms and polynomial evaluation.
//
// This is the functional layer of the reproduction: it computes on real
// ciphertexts and is validated by decrypt-and-compare tests. The performance
// layer (op counts, cycle simulation) lives in internal/costmodel and
// internal/sim.
package ckks

import (
	"fmt"
	"math"

	"github.com/fastfhe/fast/internal/ring"
)

// KeySwitchMethod selects the key-switching backend for an operation.
type KeySwitchMethod int

const (
	// Hybrid is the ModUp→KeyMult→ModDown method over the 36-bit special
	// chain P (paper Fig. 1(a)).
	Hybrid KeySwitchMethod = iota
	// KLSS is the double-decomposition method over the 60-bit auxiliary
	// chain T (paper Fig. 1(b)).
	KLSS
)

func (m KeySwitchMethod) String() string {
	switch m {
	case Hybrid:
		return "hybrid"
	case KLSS:
		return "klss"
	default:
		return fmt.Sprintf("KeySwitchMethod(%d)", int(m))
	}
}

// ParametersLiteral is the user-facing description of a parameter set.
type ParametersLiteral struct {
	LogN     int   // ring degree N = 2^LogN
	LogSlots int   // message slots n = 2^LogSlots (n <= N/2)
	LogQ     []int // bit sizes of the ciphertext prime chain q_0..q_L
	LogP     []int // bit sizes of the hybrid special chain (typically α primes)
	LogT     []int // bit sizes of the KLSS auxiliary chain (typically α̃ 60-bit primes); empty disables the KLSS backend
	LogScale int   // log2 of the encoding scale Δ
	Sigma    float64
	Alpha    int // limbs per decomposition group, hybrid method
	AlphaT   int // limbs per decomposition group, KLSS method (defaults to Alpha)
	Seed     int64

	// SecretHammingWeight selects a sparse ternary secret with exactly this
	// many non-zero coefficients (0 = dense ternary). Bootstrapping requires
	// a sparse secret to bound the EvalMod range.
	SecretHammingWeight int
}

// Parameters is the compiled, immutable parameter set shared by all scheme
// objects.
type Parameters struct {
	logN     int
	logSlots int
	scale    float64
	sigma    float64
	alpha    int
	alphaT   int
	seed     int64
	secretHW int

	qChain []uint64
	pChain []uint64
	tChain []uint64

	ringQ  *ring.Ring // over the full Q chain
	ringP  *ring.Ring // over the hybrid special chain
	ringT  *ring.Ring // over the KLSS auxiliary chain (nil if disabled)
	ringQP *ring.Ring // over Q ++ P (keys of the hybrid backend)
	ringQT *ring.Ring // over Q ++ T (keys of the KLSS backend)

	// galois memoizes automorphism NTT index tables per Galois element,
	// shared by every evaluator and key generator built on this parameter
	// set (see galois.go).
	galois *galoisCache
}

// NewParameters validates and compiles a parameter literal: it generates the
// NTT-friendly prime chains and precomputes all ring tables.
func NewParameters(lit ParametersLiteral) (*Parameters, error) {
	if lit.LogN < 4 || lit.LogN > 17 {
		return nil, fmt.Errorf("ckks: LogN %d out of supported range [4,17]: %w", lit.LogN, ErrInvalidParameters)
	}
	if lit.LogSlots < 1 || lit.LogSlots > lit.LogN-1 {
		return nil, fmt.Errorf("ckks: LogSlots %d out of range [1,%d]: %w", lit.LogSlots, lit.LogN-1, ErrInvalidParameters)
	}
	if len(lit.LogQ) < 1 {
		return nil, fmt.Errorf("ckks: need at least one ciphertext prime: %w", ErrInvalidParameters)
	}
	if len(lit.LogP) < 1 {
		return nil, fmt.Errorf("ckks: need at least one special prime: %w", ErrInvalidParameters)
	}
	if lit.Alpha < 1 {
		return nil, fmt.Errorf("ckks: Alpha must be >= 1, got %d: %w", lit.Alpha, ErrInvalidParameters)
	}
	if lit.LogScale < 8 || lit.LogScale > 55 {
		return nil, fmt.Errorf("ckks: LogScale %d out of range [8,55]: %w", lit.LogScale, ErrInvalidParameters)
	}
	if lit.Sigma == 0 {
		lit.Sigma = 3.2
	}
	if lit.AlphaT == 0 {
		lit.AlphaT = lit.Alpha
	}

	p := &Parameters{
		logN:     lit.LogN,
		logSlots: lit.LogSlots,
		scale:    math.Exp2(float64(lit.LogScale)),
		sigma:    lit.Sigma,
		alpha:    lit.Alpha,
		alphaT:   lit.AlphaT,
		seed:     lit.Seed,
		secretHW: lit.SecretHammingWeight,
	}
	p.galois = newGaloisCache(1<<uint(lit.LogN), lit.LogN)

	// Generate all chains at once per bit size so no prime repeats.
	gen := newPrimeAllocator(lit.LogN)
	var err error
	if p.qChain, err = gen.take(lit.LogQ); err != nil {
		return nil, err
	}
	if p.pChain, err = gen.take(lit.LogP); err != nil {
		return nil, err
	}
	if len(lit.LogT) > 0 {
		if p.tChain, err = gen.take(lit.LogT); err != nil {
			return nil, err
		}
	}

	if p.ringQ, err = ring.NewRing(lit.LogN, p.qChain); err != nil {
		return nil, err
	}
	if p.ringP, err = ring.NewRing(lit.LogN, p.pChain); err != nil {
		return nil, err
	}
	if p.ringQP, err = ring.NewRing(lit.LogN, concat(p.qChain, p.pChain)); err != nil {
		return nil, err
	}
	if len(p.tChain) > 0 {
		if p.ringT, err = ring.NewRing(lit.LogN, p.tChain); err != nil {
			return nil, err
		}
		if p.ringQT, err = ring.NewRing(lit.LogN, concat(p.qChain, p.tChain)); err != nil {
			return nil, err
		}
	}
	return p, nil
}

// primeAllocator hands out NTT primes of requested bit sizes without ever
// repeating one across chains.
type primeAllocator struct {
	logN int
	used map[int]int // bit size -> number already consumed
}

func newPrimeAllocator(logN int) *primeAllocator {
	return &primeAllocator{logN: logN, used: map[int]int{}}
}

func (g *primeAllocator) take(bitSizes []int) ([]uint64, error) {
	out := make([]uint64, 0, len(bitSizes))
	// Group requests by bit size, preserving order.
	need := map[int]int{}
	for _, b := range bitSizes {
		need[b]++
	}
	pool := map[int][]uint64{}
	for b, n := range need {
		ps, err := ring.GenerateNTTPrimes(b, g.logN, g.used[b]+n)
		if err != nil {
			return nil, err
		}
		pool[b] = ps[g.used[b]:]
		g.used[b] += n
	}
	for _, b := range bitSizes {
		out = append(out, pool[b][0])
		pool[b] = pool[b][1:]
	}
	return out, nil
}

func concat(a, b []uint64) []uint64 {
	out := make([]uint64, 0, len(a)+len(b))
	out = append(out, a...)
	return append(out, b...)
}

// N returns the ring degree.
func (p *Parameters) N() int { return 1 << uint(p.logN) }

// LogN returns log2 of the ring degree.
func (p *Parameters) LogN() int { return p.logN }

// Slots returns the number of message slots.
func (p *Parameters) Slots() int { return 1 << uint(p.logSlots) }

// LogSlots returns log2 of the slot count.
func (p *Parameters) LogSlots() int { return p.logSlots }

// MaxLevel returns the index of the top ciphertext limb (L in the paper).
func (p *Parameters) MaxLevel() int { return len(p.qChain) - 1 }

// Scale returns the default encoding scale Δ.
func (p *Parameters) Scale() float64 { return p.scale }

// Sigma returns the noise standard deviation.
func (p *Parameters) Sigma() float64 { return p.sigma }

// Seed returns the randomness seed the parameter set was compiled with.
func (p *Parameters) Seed() int64 { return p.seed }

// Alpha returns the hybrid decomposition group size.
func (p *Parameters) Alpha() int { return p.alpha }

// AlphaT returns the KLSS decomposition group size.
func (p *Parameters) AlphaT() int { return p.alphaT }

// Beta returns the number of decomposition groups at the given level for the
// hybrid method: ceil((level+1)/alpha).
func (p *Parameters) Beta(level int) int { return (level + p.alpha) / p.alpha }

// BetaT returns the number of decomposition groups at the given level for
// the KLSS method.
func (p *Parameters) BetaT(level int) int { return (level + p.alphaT) / p.alphaT }

// QChain returns the ciphertext prime chain.
func (p *Parameters) QChain() []uint64 { return p.qChain }

// PChain returns the hybrid special chain.
func (p *Parameters) PChain() []uint64 { return p.pChain }

// TChain returns the KLSS auxiliary chain (nil when disabled).
func (p *Parameters) TChain() []uint64 { return p.tChain }

// SupportsKLSS reports whether the parameter set has a KLSS auxiliary chain.
func (p *Parameters) SupportsKLSS() bool { return p.ringT != nil }

// RingQ returns the ring over the full ciphertext chain.
func (p *Parameters) RingQ() *ring.Ring { return p.ringQ }

// RingP returns the ring over the hybrid special chain.
func (p *Parameters) RingP() *ring.Ring { return p.ringP }

// RingT returns the ring over the KLSS auxiliary chain (nil when disabled).
func (p *Parameters) RingT() *ring.Ring { return p.ringT }

// RingQP returns the ring over Q ++ P.
func (p *Parameters) RingQP() *ring.Ring { return p.ringQP }

// RingQT returns the ring over Q ++ T (nil when disabled).
func (p *Parameters) RingQT() *ring.Ring { return p.ringQT }

// TestParameters returns a small parameter set used across the test suite
// and examples: N=2^11, 5+1 ciphertext limbs, hybrid α=2 over two special
// primes and a KLSS chain of two 60-bit primes.
func TestParameters() (*Parameters, error) {
	return NewParameters(ParametersLiteral{
		LogN:     11,
		LogSlots: 10,
		LogQ:     []int{50, 36, 36, 36, 36, 36},
		LogP:     []int{50, 50},
		LogT:     []int{60, 60},
		LogScale: 36,
		Alpha:    2,
		AlphaT:   2,
		Seed:     1,
	})
}
