package ckks

import (
	"encoding/binary"
	"fmt"
	"io"
	"math"

	"github.com/fastfhe/fast/internal/ring"
)

// Wire format: little-endian, each object prefixed with a one-byte tag and a
// version byte. Polynomials serialise as (limbs, degree, raw coefficients).
// Ciphertexts and plaintexts additionally carry level and scale; switching
// keys carry their method and group count. The format is stable within a
// major version of this library.

const (
	wireVersion byte = 1

	tagPoly       byte = 0x01
	tagCiphertext byte = 0x02
	tagPlaintext  byte = 0x03
	tagSwitchKey  byte = 0x04
	tagPublicKey  byte = 0x05
)

func writeHeader(w io.Writer, tag byte) error {
	_, err := w.Write([]byte{tag, wireVersion})
	return err
}

func readHeader(r io.Reader, wantTag byte) error {
	var hdr [2]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return fmt.Errorf("ckks: reading header: %w", err)
	}
	if hdr[0] != wantTag {
		return fmt.Errorf("ckks: wrong object tag 0x%02x, want 0x%02x", hdr[0], wantTag)
	}
	if hdr[1] != wireVersion {
		return fmt.Errorf("ckks: unsupported wire version %d", hdr[1])
	}
	return nil
}

func writePoly(w io.Writer, p ring.Poly) error {
	if err := writeHeader(w, tagPoly); err != nil {
		return err
	}
	hdr := [2]uint32{uint32(p.Limbs()), uint32(p.N())}
	if err := binary.Write(w, binary.LittleEndian, hdr); err != nil {
		return err
	}
	// Arena fast path: the contiguous backing is the limb rows concatenated in
	// order, so one binary.Write emits bytes identical to the per-row loop.
	if len(p.Backing) == p.Limbs()*p.N() {
		return binary.Write(w, binary.LittleEndian, p.Backing)
	}
	for _, limb := range p.Coeffs {
		if err := binary.Write(w, binary.LittleEndian, limb); err != nil {
			return err
		}
	}
	return nil
}

func readPoly(r io.Reader) (ring.Poly, error) {
	if err := readHeader(r, tagPoly); err != nil {
		return ring.Poly{}, err
	}
	var hdr [2]uint32
	if err := binary.Read(r, binary.LittleEndian, &hdr); err != nil {
		return ring.Poly{}, err
	}
	limbs, n := int(hdr[0]), int(hdr[1])
	if limbs < 1 || limbs > 128 || n < 1 || n > 1<<20 {
		return ring.Poly{}, fmt.Errorf("ckks: implausible poly shape %dx%d", limbs, n)
	}
	p := ring.NewPoly(n, limbs)
	// One pass over the arena backing (row-concatenation order on the wire).
	if err := binary.Read(r, binary.LittleEndian, p.Backing); err != nil {
		return ring.Poly{}, err
	}
	return p, nil
}

// Serialize writes the ciphertext.
func (ct *Ciphertext) Serialize(w io.Writer) error {
	if err := writeHeader(w, tagCiphertext); err != nil {
		return err
	}
	meta := struct {
		Level int32
		Scale float64
	}{int32(ct.Level), ct.Scale}
	if err := binary.Write(w, binary.LittleEndian, meta); err != nil {
		return err
	}
	if err := writePoly(w, ct.C0); err != nil {
		return err
	}
	return writePoly(w, ct.C1)
}

// ReadCiphertext deserialises a ciphertext and validates it against the
// parameter set.
func ReadCiphertext(r io.Reader, params *Parameters) (*Ciphertext, error) {
	if err := readHeader(r, tagCiphertext); err != nil {
		return nil, err
	}
	var meta struct {
		Level int32
		Scale float64
	}
	if err := binary.Read(r, binary.LittleEndian, &meta); err != nil {
		return nil, err
	}
	c0, err := readPoly(r)
	if err != nil {
		return nil, err
	}
	c1, err := readPoly(r)
	if err != nil {
		return nil, err
	}
	ct := &Ciphertext{C0: c0, C1: c1, Level: int(meta.Level), Scale: meta.Scale}
	if err := ct.validate(params); err != nil {
		return nil, err
	}
	return ct, nil
}

// Validate checks the ciphertext's structural invariants against the
// parameter set: level within the chain, limb counts consistent with the
// level, ring degree, and a finite positive scale. Violations wrap
// ErrInvalidCiphertext. It is cheap (no coefficient scan) — the fast package
// runs it at every public API boundary.
func (ct *Ciphertext) Validate(params *Parameters) error {
	if ct == nil || ct.C0.Coeffs == nil || ct.C1.Coeffs == nil {
		return fmt.Errorf("ckks: nil ciphertext: %w", ErrInvalidCiphertext)
	}
	if ct.Level < 0 || ct.Level > params.MaxLevel() {
		return fmt.Errorf("ckks: ciphertext level %d out of range [0,%d]: %w", ct.Level, params.MaxLevel(), ErrInvalidCiphertext)
	}
	if ct.C0.Limbs() != ct.Level+1 || ct.C1.Limbs() != ct.Level+1 {
		return fmt.Errorf("ckks: ciphertext limbs (%d,%d) inconsistent with level %d: %w",
			ct.C0.Limbs(), ct.C1.Limbs(), ct.Level, ErrInvalidCiphertext)
	}
	if ct.C0.N() != params.N() || ct.C1.N() != params.N() {
		return fmt.Errorf("ckks: ciphertext degree %d does not match N=%d: %w", ct.C0.N(), params.N(), ErrInvalidCiphertext)
	}
	if ct.Scale <= 0 || math.IsNaN(ct.Scale) || math.IsInf(ct.Scale, 0) {
		return fmt.Errorf("ckks: invalid scale %g: %w", ct.Scale, ErrInvalidCiphertext)
	}
	return nil
}

// validate is the deserialisation-strength check: the structural invariants
// of Validate plus a full coefficient-range scan (every residue must sit
// below its limb modulus), guarding against hostile or corrupted wire data.
func (ct *Ciphertext) validate(params *Parameters) error {
	if err := ct.Validate(params); err != nil {
		return err
	}
	for i := 0; i <= ct.Level; i++ {
		q := params.qChain[i]
		for _, row := range [][]uint64{ct.C0.Coeffs[i], ct.C1.Coeffs[i]} {
			for _, v := range row {
				if v >= q {
					return fmt.Errorf("ckks: coefficient %d out of range for limb %d (q=%d): %w", v, i, q, ErrInvalidCiphertext)
				}
			}
		}
	}
	return nil
}

// Serialize writes the plaintext.
func (pt *Plaintext) Serialize(w io.Writer) error {
	if err := writeHeader(w, tagPlaintext); err != nil {
		return err
	}
	meta := struct {
		Level int32
		Scale float64
	}{int32(pt.Level), pt.Scale}
	if err := binary.Write(w, binary.LittleEndian, meta); err != nil {
		return err
	}
	return writePoly(w, pt.Value)
}

// ReadPlaintext deserialises a plaintext.
func ReadPlaintext(r io.Reader, params *Parameters) (*Plaintext, error) {
	if err := readHeader(r, tagPlaintext); err != nil {
		return nil, err
	}
	var meta struct {
		Level int32
		Scale float64
	}
	if err := binary.Read(r, binary.LittleEndian, &meta); err != nil {
		return nil, err
	}
	v, err := readPoly(r)
	if err != nil {
		return nil, err
	}
	pt := &Plaintext{Value: v, Level: int(meta.Level), Scale: meta.Scale}
	if pt.Level < 0 || pt.Level > params.MaxLevel() || v.Limbs() != pt.Level+1 {
		return nil, fmt.Errorf("ckks: plaintext shape inconsistent")
	}
	return pt, nil
}

// Serialize writes the public key.
func (pk *PublicKey) Serialize(w io.Writer) error {
	if err := writeHeader(w, tagPublicKey); err != nil {
		return err
	}
	if err := writePoly(w, pk.B); err != nil {
		return err
	}
	return writePoly(w, pk.A)
}

// ReadPublicKey deserialises a public key.
func ReadPublicKey(r io.Reader, params *Parameters) (*PublicKey, error) {
	if err := readHeader(r, tagPublicKey); err != nil {
		return nil, err
	}
	b, err := readPoly(r)
	if err != nil {
		return nil, err
	}
	a, err := readPoly(r)
	if err != nil {
		return nil, err
	}
	if b.Limbs() != len(params.qChain) || a.Limbs() != len(params.qChain) || b.N() != params.N() {
		return nil, fmt.Errorf("ckks: public key shape inconsistent with parameters")
	}
	return &PublicKey{B: b, A: a}, nil
}

// Serialize writes a switching key (all gadget pairs).
func (swk *SwitchingKey) Serialize(w io.Writer) error {
	if err := writeHeader(w, tagSwitchKey); err != nil {
		return err
	}
	meta := [2]uint32{uint32(swk.Method), uint32(len(swk.B))}
	if err := binary.Write(w, binary.LittleEndian, meta); err != nil {
		return err
	}
	for j := range swk.B {
		if err := writePoly(w, swk.B[j]); err != nil {
			return err
		}
		if err := writePoly(w, swk.A[j]); err != nil {
			return err
		}
	}
	return nil
}

// ReadSwitchingKey deserialises a switching key.
func ReadSwitchingKey(r io.Reader, params *Parameters) (*SwitchingKey, error) {
	if err := readHeader(r, tagSwitchKey); err != nil {
		return nil, err
	}
	var meta [2]uint32
	if err := binary.Read(r, binary.LittleEndian, &meta); err != nil {
		return nil, err
	}
	method := KeySwitchMethod(meta[0])
	kr, _, err := params.keyRing(method)
	if err != nil {
		return nil, err
	}
	groups := int(meta[1])
	if groups < 1 || groups > 64 {
		return nil, fmt.Errorf("ckks: implausible group count %d", groups)
	}
	swk := &SwitchingKey{Method: method}
	for j := 0; j < groups; j++ {
		b, err := readPoly(r)
		if err != nil {
			return nil, err
		}
		a, err := readPoly(r)
		if err != nil {
			return nil, err
		}
		if b.Limbs() != len(kr.Moduli) || a.Limbs() != len(kr.Moduli) || b.N() != params.N() {
			return nil, fmt.Errorf("ckks: switching key group %d shape inconsistent", j)
		}
		swk.B = append(swk.B, b)
		swk.A = append(swk.A, a)
	}
	return swk, nil
}
