package ckks

import (
	"encoding/binary"
	"fmt"
	"io"
	"math"
	"sort"

	"github.com/fastfhe/fast/internal/ring"
)

// Wire format: little-endian, each object prefixed with a one-byte tag and a
// version byte. Polynomials serialise as (limbs, degree, raw coefficients).
// Ciphertexts and plaintexts additionally carry level and scale; switching
// keys carry their method and group count. The format is stable within a
// major version of this library.

const (
	wireVersion byte = 1

	tagPoly       byte = 0x01
	tagCiphertext byte = 0x02
	tagPlaintext  byte = 0x03
	tagSwitchKey  byte = 0x04
	tagPublicKey  byte = 0x05
	tagSecretKey  byte = 0x06
	tagEvalKeys   byte = 0x07
)

func writeHeader(w io.Writer, tag byte) error {
	_, err := w.Write([]byte{tag, wireVersion})
	return err
}

func readHeader(r io.Reader, wantTag byte) error {
	var hdr [2]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return fmt.Errorf("ckks: reading header: %w", err)
	}
	if hdr[0] != wantTag {
		return fmt.Errorf("ckks: wrong object tag 0x%02x, want 0x%02x", hdr[0], wantTag)
	}
	if hdr[1] != wireVersion {
		return fmt.Errorf("ckks: unsupported wire version %d", hdr[1])
	}
	return nil
}

func writePoly(w io.Writer, p ring.Poly) error {
	if err := writeHeader(w, tagPoly); err != nil {
		return err
	}
	hdr := [2]uint32{uint32(p.Limbs()), uint32(p.N())}
	if err := binary.Write(w, binary.LittleEndian, hdr); err != nil {
		return err
	}
	// Arena fast path: the contiguous backing is the limb rows concatenated in
	// order, so one binary.Write emits bytes identical to the per-row loop.
	if len(p.Backing) == p.Limbs()*p.N() {
		return binary.Write(w, binary.LittleEndian, p.Backing)
	}
	for _, limb := range p.Coeffs {
		if err := binary.Write(w, binary.LittleEndian, limb); err != nil {
			return err
		}
	}
	return nil
}

func readPoly(r io.Reader) (ring.Poly, error) {
	if err := readHeader(r, tagPoly); err != nil {
		return ring.Poly{}, err
	}
	var hdr [2]uint32
	if err := binary.Read(r, binary.LittleEndian, &hdr); err != nil {
		return ring.Poly{}, err
	}
	limbs, n := int(hdr[0]), int(hdr[1])
	if limbs < 1 || limbs > 128 || n < 1 || n > 1<<20 {
		return ring.Poly{}, fmt.Errorf("ckks: implausible poly shape %dx%d", limbs, n)
	}
	p := ring.NewPoly(n, limbs)
	// One pass over the arena backing (row-concatenation order on the wire).
	if err := binary.Read(r, binary.LittleEndian, p.Backing); err != nil {
		return ring.Poly{}, err
	}
	return p, nil
}

// Serialize writes the ciphertext.
func (ct *Ciphertext) Serialize(w io.Writer) error {
	if err := writeHeader(w, tagCiphertext); err != nil {
		return err
	}
	meta := struct {
		Level int32
		Scale float64
	}{int32(ct.Level), ct.Scale}
	if err := binary.Write(w, binary.LittleEndian, meta); err != nil {
		return err
	}
	if err := writePoly(w, ct.C0); err != nil {
		return err
	}
	return writePoly(w, ct.C1)
}

// ReadCiphertext deserialises a ciphertext and validates it against the
// parameter set.
func ReadCiphertext(r io.Reader, params *Parameters) (*Ciphertext, error) {
	if err := readHeader(r, tagCiphertext); err != nil {
		return nil, err
	}
	var meta struct {
		Level int32
		Scale float64
	}
	if err := binary.Read(r, binary.LittleEndian, &meta); err != nil {
		return nil, err
	}
	c0, err := readPoly(r)
	if err != nil {
		return nil, err
	}
	c1, err := readPoly(r)
	if err != nil {
		return nil, err
	}
	ct := &Ciphertext{C0: c0, C1: c1, Level: int(meta.Level), Scale: meta.Scale}
	if err := ct.validate(params); err != nil {
		return nil, err
	}
	return ct, nil
}

// Validate checks the ciphertext's structural invariants against the
// parameter set: level within the chain, limb counts consistent with the
// level, ring degree, and a finite positive scale. Violations wrap
// ErrInvalidCiphertext. It is cheap (no coefficient scan) — the fast package
// runs it at every public API boundary.
func (ct *Ciphertext) Validate(params *Parameters) error {
	if ct == nil || ct.C0.Coeffs == nil || ct.C1.Coeffs == nil {
		return fmt.Errorf("ckks: nil ciphertext: %w", ErrInvalidCiphertext)
	}
	if ct.Level < 0 || ct.Level > params.MaxLevel() {
		return fmt.Errorf("ckks: ciphertext level %d out of range [0,%d]: %w", ct.Level, params.MaxLevel(), ErrInvalidCiphertext)
	}
	if ct.C0.Limbs() != ct.Level+1 || ct.C1.Limbs() != ct.Level+1 {
		return fmt.Errorf("ckks: ciphertext limbs (%d,%d) inconsistent with level %d: %w",
			ct.C0.Limbs(), ct.C1.Limbs(), ct.Level, ErrInvalidCiphertext)
	}
	if ct.C0.N() != params.N() || ct.C1.N() != params.N() {
		return fmt.Errorf("ckks: ciphertext degree %d does not match N=%d: %w", ct.C0.N(), params.N(), ErrInvalidCiphertext)
	}
	if ct.Scale <= 0 || math.IsNaN(ct.Scale) || math.IsInf(ct.Scale, 0) {
		return fmt.Errorf("ckks: invalid scale %g: %w", ct.Scale, ErrInvalidCiphertext)
	}
	return nil
}

// validate is the deserialisation-strength check: the structural invariants
// of Validate plus a full coefficient-range scan (every residue must sit
// below its limb modulus), guarding against hostile or corrupted wire data.
func (ct *Ciphertext) validate(params *Parameters) error {
	if err := ct.Validate(params); err != nil {
		return err
	}
	for i := 0; i <= ct.Level; i++ {
		q := params.qChain[i]
		for _, row := range [][]uint64{ct.C0.Coeffs[i], ct.C1.Coeffs[i]} {
			for _, v := range row {
				if v >= q {
					return fmt.Errorf("ckks: coefficient %d out of range for limb %d (q=%d): %w", v, i, q, ErrInvalidCiphertext)
				}
			}
		}
	}
	return nil
}

// Serialize writes the plaintext.
func (pt *Plaintext) Serialize(w io.Writer) error {
	if err := writeHeader(w, tagPlaintext); err != nil {
		return err
	}
	meta := struct {
		Level int32
		Scale float64
	}{int32(pt.Level), pt.Scale}
	if err := binary.Write(w, binary.LittleEndian, meta); err != nil {
		return err
	}
	return writePoly(w, pt.Value)
}

// ReadPlaintext deserialises a plaintext.
func ReadPlaintext(r io.Reader, params *Parameters) (*Plaintext, error) {
	if err := readHeader(r, tagPlaintext); err != nil {
		return nil, err
	}
	var meta struct {
		Level int32
		Scale float64
	}
	if err := binary.Read(r, binary.LittleEndian, &meta); err != nil {
		return nil, err
	}
	v, err := readPoly(r)
	if err != nil {
		return nil, err
	}
	pt := &Plaintext{Value: v, Level: int(meta.Level), Scale: meta.Scale}
	if pt.Level < 0 || pt.Level > params.MaxLevel() || v.Limbs() != pt.Level+1 {
		return nil, fmt.Errorf("ckks: plaintext shape inconsistent")
	}
	return pt, nil
}

// Serialize writes the public key.
func (pk *PublicKey) Serialize(w io.Writer) error {
	if err := writeHeader(w, tagPublicKey); err != nil {
		return err
	}
	if err := writePoly(w, pk.B); err != nil {
		return err
	}
	return writePoly(w, pk.A)
}

// ReadPublicKey deserialises a public key.
func ReadPublicKey(r io.Reader, params *Parameters) (*PublicKey, error) {
	if err := readHeader(r, tagPublicKey); err != nil {
		return nil, err
	}
	b, err := readPoly(r)
	if err != nil {
		return nil, err
	}
	a, err := readPoly(r)
	if err != nil {
		return nil, err
	}
	if b.Limbs() != len(params.qChain) || a.Limbs() != len(params.qChain) || b.N() != params.N() {
		return nil, fmt.Errorf("ckks: public key shape inconsistent with parameters")
	}
	return &PublicKey{B: b, A: a}, nil
}

// Serialize writes the secret key. Only the signed ternary coefficients go on
// the wire (one byte each): the NTT-form embeddings over the key rings are
// deterministic functions of the signed vector and the parameter set, so
// ReadSecretKey reconstructs them bit-identically. This keeps the snapshot
// compact and means the secret's serialised form is independent of which
// key-switching backends the parameter set enables.
func (sk *SecretKey) Serialize(w io.Writer) error {
	if err := writeHeader(w, tagSecretKey); err != nil {
		return err
	}
	if err := binary.Write(w, binary.LittleEndian, uint32(len(sk.signed))); err != nil {
		return err
	}
	buf := make([]int8, len(sk.signed))
	for i, v := range sk.signed {
		if v < -1 || v > 1 {
			return fmt.Errorf("ckks: secret coefficient %d out of ternary range", v)
		}
		buf[i] = int8(v)
	}
	return binary.Write(w, binary.LittleEndian, buf)
}

// ReadSecretKey deserialises a secret key and rebuilds its NTT-form
// embeddings over every key ring the parameter set enables (Q++P always,
// Q++T when KLSS is available). Malformed input wraps ErrCorruptSnapshot.
func ReadSecretKey(r io.Reader, params *Parameters) (*SecretKey, error) {
	if err := readHeader(r, tagSecretKey); err != nil {
		return nil, err
	}
	var n uint32
	if err := binary.Read(r, binary.LittleEndian, &n); err != nil {
		return nil, err
	}
	if int(n) != params.N() {
		return nil, fmt.Errorf("ckks: secret key length %d does not match N=%d: %w", n, params.N(), ErrCorruptSnapshot)
	}
	buf := make([]int8, n)
	if err := binary.Read(r, binary.LittleEndian, buf); err != nil {
		return nil, err
	}
	sk := &SecretKey{signed: make([]int64, n)}
	for i, v := range buf {
		if v < -1 || v > 1 {
			return nil, fmt.Errorf("ckks: secret coefficient %d out of ternary range: %w", v, ErrCorruptSnapshot)
		}
		sk.signed[i] = int64(v)
	}
	sk.QP = params.ringQP.NewPoly()
	setSignedInto(params.ringQP, sk.signed, sk.QP)
	params.ringQP.NTT(sk.QP)
	if params.ringQT != nil {
		sk.QT = params.ringQT.NewPoly()
		setSignedInto(params.ringQT, sk.signed, sk.QT)
		params.ringQT.NTT(sk.QT)
	}
	return sk, nil
}

// Serialize writes the full evaluation-key set in a canonical order (methods
// ascending, Galois elements ascending) so identical key sets always produce
// identical bytes — the property the snapshot checksum relies on.
func (s *EvaluationKeySet) Serialize(w io.Writer) error {
	if err := writeHeader(w, tagEvalKeys); err != nil {
		return err
	}
	methods := make([]KeySwitchMethod, 0, len(s.Relin))
	for m := range s.Relin {
		methods = append(methods, m)
	}
	sort.Slice(methods, func(i, j int) bool { return methods[i] < methods[j] })
	if err := binary.Write(w, binary.LittleEndian, uint32(len(methods))); err != nil {
		return err
	}
	for _, m := range methods {
		galEls := make([]uint64, 0, len(s.Galois[m]))
		for el := range s.Galois[m] {
			galEls = append(galEls, el)
		}
		sort.Slice(galEls, func(i, j int) bool { return galEls[i] < galEls[j] })
		meta := [2]uint32{uint32(m), uint32(len(galEls))}
		if err := binary.Write(w, binary.LittleEndian, meta); err != nil {
			return err
		}
		if err := s.Relin[m].Serialize(w); err != nil {
			return err
		}
		for _, el := range galEls {
			if err := binary.Write(w, binary.LittleEndian, el); err != nil {
				return err
			}
			if err := s.Galois[m][el].Serialize(w); err != nil {
				return err
			}
		}
	}
	return nil
}

// ReadEvaluationKeySet deserialises an evaluation-key set, validating every
// switching key's shape against the parameter set.
func ReadEvaluationKeySet(r io.Reader, params *Parameters) (*EvaluationKeySet, error) {
	if err := readHeader(r, tagEvalKeys); err != nil {
		return nil, err
	}
	var nMethods uint32
	if err := binary.Read(r, binary.LittleEndian, &nMethods); err != nil {
		return nil, err
	}
	if nMethods > 2 {
		return nil, fmt.Errorf("ckks: implausible method count %d: %w", nMethods, ErrCorruptSnapshot)
	}
	set := NewEvaluationKeySet()
	for i := uint32(0); i < nMethods; i++ {
		var meta [2]uint32
		if err := binary.Read(r, binary.LittleEndian, &meta); err != nil {
			return nil, err
		}
		method := KeySwitchMethod(meta[0])
		if method != Hybrid && method != KLSS {
			return nil, fmt.Errorf("ckks: unknown key-switch method %d in key set: %w", meta[0], ErrCorruptSnapshot)
		}
		rlk, err := ReadSwitchingKey(r, params)
		if err != nil {
			return nil, err
		}
		if rlk.Method != method {
			return nil, fmt.Errorf("ckks: relin key method %v under %v section: %w", rlk.Method, method, ErrCorruptSnapshot)
		}
		set.Relin[method] = rlk
		nGal := int(meta[1])
		if nGal < 0 || nGal > 1<<16 {
			return nil, fmt.Errorf("ckks: implausible galois key count %d: %w", nGal, ErrCorruptSnapshot)
		}
		for j := 0; j < nGal; j++ {
			var el uint64
			if err := binary.Read(r, binary.LittleEndian, &el); err != nil {
				return nil, err
			}
			gk, err := ReadSwitchingKey(r, params)
			if err != nil {
				return nil, err
			}
			if gk.Method != method {
				return nil, fmt.Errorf("ckks: galois key method %v under %v section: %w", gk.Method, method, ErrCorruptSnapshot)
			}
			set.addGalois(method, el, gk)
		}
	}
	return set, nil
}

// Serialize writes a switching key (all gadget pairs).
func (swk *SwitchingKey) Serialize(w io.Writer) error {
	if err := writeHeader(w, tagSwitchKey); err != nil {
		return err
	}
	meta := [2]uint32{uint32(swk.Method), uint32(len(swk.B))}
	if err := binary.Write(w, binary.LittleEndian, meta); err != nil {
		return err
	}
	for j := range swk.B {
		if err := writePoly(w, swk.B[j]); err != nil {
			return err
		}
		if err := writePoly(w, swk.A[j]); err != nil {
			return err
		}
	}
	return nil
}

// ReadSwitchingKey deserialises a switching key.
func ReadSwitchingKey(r io.Reader, params *Parameters) (*SwitchingKey, error) {
	if err := readHeader(r, tagSwitchKey); err != nil {
		return nil, err
	}
	var meta [2]uint32
	if err := binary.Read(r, binary.LittleEndian, &meta); err != nil {
		return nil, err
	}
	method := KeySwitchMethod(meta[0])
	kr, _, err := params.keyRing(method)
	if err != nil {
		return nil, err
	}
	groups := int(meta[1])
	if groups < 1 || groups > 64 {
		return nil, fmt.Errorf("ckks: implausible group count %d", groups)
	}
	swk := &SwitchingKey{Method: method}
	for j := 0; j < groups; j++ {
		b, err := readPoly(r)
		if err != nil {
			return nil, err
		}
		a, err := readPoly(r)
		if err != nil {
			return nil, err
		}
		if b.Limbs() != len(kr.Moduli) || a.Limbs() != len(kr.Moduli) || b.N() != params.N() {
			return nil, fmt.Errorf("ckks: switching key group %d shape inconsistent", j)
		}
		swk.B = append(swk.B, b)
		swk.A = append(swk.A, a)
	}
	return swk, nil
}
