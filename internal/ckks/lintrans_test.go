package ckks

import (
	"math"
	"math/rand"
	"testing"
)

// buildLT encodes a dense n x n matrix (n = slots) as its diagonals.
func denseDiags(m [][]complex128) map[int][]complex128 {
	n := len(m)
	out := map[int][]complex128{}
	for d := 0; d < n; d++ {
		diag := make([]complex128, n)
		nonzero := false
		for i := 0; i < n; i++ {
			diag[i] = m[i][(i+d)%n]
			if diag[i] != 0 {
				nonzero = true
			}
		}
		if nonzero {
			out[d] = diag
		}
	}
	return out
}

// ltKeys generates the evaluation keys a transform needs.
func ltKeys(t *testing.T, tc *testContext, lt *LinearTransform) *Evaluator {
	t.Helper()
	keys, err := tc.kgen.GenEvaluationKeySet(tc.sk, []KeySwitchMethod{Hybrid}, lt.Rotations(), false)
	if err != nil {
		t.Fatalf("keys: %v", err)
	}
	// Relin key needed by nothing here, but evaluator requires the set.
	ev, err := NewEvaluator(tc.params, keys)
	if err != nil {
		t.Fatalf("NewEvaluator: %v", err)
	}
	return ev
}

func applyMatrix(m [][]complex128, v []complex128) []complex128 {
	n := len(m)
	out := make([]complex128, n)
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			out[i] += m[i][j] * v[j]
		}
	}
	return out
}

func TestLinearTransformDense(t *testing.T) {
	tc := newTestContext(t)
	n := tc.params.Slots()
	rng := rand.New(rand.NewSource(31))

	// A banded matrix (8 diagonals) over the full slot width keeps the
	// reference computation cheap while exercising BSGS with giants.
	band := 8
	m := make([][]complex128, n)
	for i := range m {
		m[i] = make([]complex128, n)
		for d := 0; d < band; d++ {
			m[i][(i+d)%n] = complex(rng.Float64()-0.5, rng.Float64()-0.5)
		}
	}
	lt, err := NewLinearTransform(tc.enc, denseDiags(m), tc.params.MaxLevel(), tc.params.Scale(), 4)
	if err != nil {
		t.Fatalf("NewLinearTransform: %v", err)
	}
	ev := ltKeys(t, tc, lt)

	v := randomValues(n, 32)
	pt, _ := tc.enc.Encode(v)
	ct, _ := tc.encr.Encrypt(pt)

	out, err := ev.LinearTransform(ct, lt)
	if err != nil {
		t.Fatalf("LinearTransform: %v", err)
	}
	out, err = ev.Rescale(out)
	if err != nil {
		t.Fatalf("Rescale: %v", err)
	}
	got := tc.enc.Decode(tc.decr.Decrypt(out))
	want := applyMatrix(m, v)
	if e := maxErr(got, want); e > 5e-3 {
		t.Fatalf("banded linear transform error %g", e)
	}
}

func TestLinearTransformIdentity(t *testing.T) {
	tc := newTestContext(t)
	n := tc.params.Slots()
	id := make([]complex128, n)
	for i := range id {
		id[i] = 1
	}
	lt, err := NewLinearTransform(tc.enc, map[int][]complex128{0: id}, tc.params.MaxLevel(), tc.params.Scale(), 0)
	if err != nil {
		t.Fatalf("NewLinearTransform: %v", err)
	}
	ev := ltKeys(t, tc, lt)
	v := randomValues(n, 33)
	pt, _ := tc.enc.Encode(v)
	ct, _ := tc.encr.Encrypt(pt)
	out, err := ev.LinearTransform(ct, lt)
	if err != nil {
		t.Fatalf("LinearTransform: %v", err)
	}
	out, _ = ev.Rescale(out)
	if e := maxErr(tc.enc.Decode(tc.decr.Decrypt(out)), v); e > 1e-3 {
		t.Fatalf("identity transform error %g", e)
	}
}

func TestLinearTransformValidation(t *testing.T) {
	tc := newTestContext(t)
	if _, err := NewLinearTransform(tc.enc, nil, 1, 1, 0); err == nil {
		t.Error("empty diagonal set accepted")
	}
	n := tc.params.Slots()
	if _, err := NewLinearTransform(tc.enc, map[int][]complex128{n: make([]complex128, n)}, 1, tc.params.Scale(), 0); err == nil {
		t.Error("out-of-range diagonal accepted")
	}
	if _, err := NewLinearTransform(tc.enc, map[int][]complex128{0: make([]complex128, 3)}, 1, tc.params.Scale(), 0); err == nil {
		t.Error("short diagonal accepted")
	}
}

func TestLinearTransformRotations(t *testing.T) {
	tc := newTestContext(t)
	n := tc.params.Slots()
	diags := map[int][]complex128{}
	for _, d := range []int{0, 1, 3, 9} {
		diags[d] = make([]complex128, n)
	}
	lt, err := NewLinearTransform(tc.enc, diags, 2, tc.params.Scale(), 4)
	if err != nil {
		t.Fatal(err)
	}
	rots := lt.Rotations()
	want := map[int]bool{1: true, 3: true, 8: true} // babies {1,3}, giant {8}
	if len(rots) != len(want) {
		t.Fatalf("Rotations() = %v", rots)
	}
	for _, r := range rots {
		if !want[r] {
			t.Fatalf("unexpected rotation %d in %v", r, rots)
		}
	}
}

func TestEvaluatePolySmall(t *testing.T) {
	tc := newTestContext(t)
	n := tc.params.Slots()
	// p(x) = 0.5 + x - 0.25 x^2 + 0.125 x^3 on values in [-1, 1].
	p := Polynomial{Coeffs: []float64{0.5, 1, -0.25, 0.125}}
	v := randomValues(n, 34)
	pt, _ := tc.enc.Encode(v)
	ct, _ := tc.encr.Encrypt(pt)
	out, err := tc.eval.EvaluatePoly(ct, p)
	if err != nil {
		t.Fatalf("EvaluatePoly: %v", err)
	}
	got := tc.enc.Decode(tc.decr.Decrypt(out))
	want := make([]complex128, n)
	for i, x := range v {
		want[i] = 0.5 + x - 0.25*x*x + 0.125*x*x*x
	}
	if e := maxErr(got, want); e > 5e-3 {
		t.Fatalf("degree-3 polynomial error %g", e)
	}
}

func TestEvaluatePolyDegree7DepthBudget(t *testing.T) {
	tc := newTestContext(t)
	n := tc.params.Slots()
	coeffs := []float64{0.1, 0.2, -0.3, 0.05, 0.04, -0.02, 0.01, 0.005}
	p := Polynomial{Coeffs: coeffs}
	if p.Degree() != 7 || p.Depth() != 3 {
		t.Fatalf("degree/depth bookkeeping wrong: %d/%d", p.Degree(), p.Depth())
	}
	v := randomValues(n, 35)
	pt, _ := tc.enc.Encode(v)
	ct, _ := tc.encr.Encrypt(pt)
	out, err := tc.eval.EvaluatePoly(ct, p)
	if err != nil {
		t.Fatalf("EvaluatePoly deg 7: %v", err)
	}
	if used := ct.Level - out.Level; used > 4 {
		t.Errorf("BSGS should use ~log2(8)+1 levels, used %d", used)
	}
	got := tc.enc.Decode(tc.decr.Decrypt(out))
	want := make([]complex128, n)
	for i, x := range v {
		acc := complex(0, 0)
		for j := len(coeffs) - 1; j >= 0; j-- {
			acc = acc*x + complex(coeffs[j], 0)
		}
		want[i] = acc
	}
	if e := maxErr(got, want); e > 1e-2 {
		t.Fatalf("degree-7 polynomial error %g", e)
	}
}

func TestEvaluatePolyConstantAndErrors(t *testing.T) {
	tc := newTestContext(t)
	v := randomValues(tc.params.Slots(), 36)
	pt, _ := tc.enc.Encode(v)
	ct, _ := tc.encr.Encrypt(pt)

	out, err := tc.eval.EvaluatePoly(ct, Polynomial{Coeffs: []float64{0.75}})
	if err != nil {
		t.Fatalf("constant polynomial: %v", err)
	}
	got := tc.enc.Decode(tc.decr.Decrypt(out))
	for i := range got {
		if math.Abs(real(got[i])-0.75) > 1e-3 {
			t.Fatalf("constant poly slot %d = %v", i, got[i])
		}
	}
	if _, err := tc.eval.EvaluatePoly(ct, Polynomial{}); err == nil {
		t.Error("empty polynomial accepted")
	}
}
