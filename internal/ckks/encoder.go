package ckks

import (
	"fmt"
	"math"
	"math/big"
	"math/cmplx"

	"github.com/fastfhe/fast/internal/ring"
)

// Plaintext is an encoded message: a single polynomial with an attached
// scale. The polynomial is kept in NTT (evaluation) form, the convention for
// everything that participates in homomorphic products.
type Plaintext struct {
	Value ring.Poly
	Level int
	Scale float64
}

// Encoder maps complex vectors to ring elements through the canonical
// embedding (the "special FFT" over the 2N-th roots of unity restricted to
// the orbit of 5).
type Encoder struct {
	params   *Parameters
	roots    []complex128 // roots[k] = exp(2πik/2N)
	rotGroup []int        // 5^j mod 2N for j < slots
}

// NewEncoder precomputes the embedding tables for the parameter set.
func NewEncoder(params *Parameters) *Encoder {
	n := params.N()
	m := 2 * n
	slots := params.Slots()
	e := &Encoder{
		params:   params,
		roots:    make([]complex128, m+1),
		rotGroup: make([]int, slots),
	}
	for k := 0; k <= m; k++ {
		angle := 2 * math.Pi * float64(k) / float64(m)
		e.roots[k] = cmplx.Rect(1, angle)
	}
	g := 1
	for j := 0; j < slots; j++ {
		e.rotGroup[j] = g
		g = (g * 5) % m
	}
	return e
}

func bitReverseComplex(vals []complex128) {
	n := len(vals)
	for i, j := 1, 0; i < n; i++ {
		bit := n >> 1
		for ; j&bit != 0; bit >>= 1 {
			j ^= bit
		}
		j ^= bit
		if i < j {
			vals[i], vals[j] = vals[j], vals[i]
		}
	}
}

// embed evaluates the inverse special FFT in place: slot values -> embedding
// coefficients.
func (e *Encoder) embed(vals []complex128) {
	n := len(vals)
	m := 2 * e.params.N()
	for length := n; length >= 1; length >>= 1 {
		lenh := length >> 1
		lenq := length << 2
		for i := 0; i < n; i += length {
			for j := 0; j < lenh; j++ {
				idx := (lenq - (e.rotGroup[j] % lenq)) * m / lenq
				u := vals[i+j] + vals[i+j+lenh]
				v := (vals[i+j] - vals[i+j+lenh]) * e.roots[idx]
				vals[i+j] = u
				vals[i+j+lenh] = v
			}
		}
	}
	bitReverseComplex(vals)
	inv := complex(1/float64(n), 0)
	for i := range vals {
		vals[i] *= inv
	}
}

// project evaluates the forward special FFT in place: embedding coefficients
// -> slot values.
func (e *Encoder) project(vals []complex128) {
	n := len(vals)
	m := 2 * e.params.N()
	bitReverseComplex(vals)
	for length := 2; length <= n; length <<= 1 {
		lenh := length >> 1
		lenq := length << 2
		for i := 0; i < n; i += length {
			for j := 0; j < lenh; j++ {
				idx := (e.rotGroup[j] % lenq) * m / lenq
				u := vals[i+j]
				v := vals[i+j+lenh] * e.roots[idx]
				vals[i+j] = u + v
				vals[i+j+lenh] = u - v
			}
		}
	}
}

// EncodeAtLevel encodes values (padded or truncated to the slot count) into
// a fresh plaintext at the given level and scale. The plaintext polynomial
// is returned in NTT form.
func (e *Encoder) EncodeAtLevel(values []complex128, level int, scale float64) (*Plaintext, error) {
	slots := e.params.Slots()
	if len(values) > slots {
		return nil, fmt.Errorf("ckks: %d values exceed %d slots: %w", len(values), slots, ErrSlotCountMismatch)
	}
	if level < 0 || level > e.params.MaxLevel() {
		return nil, fmt.Errorf("ckks: level %d out of range [0,%d]: %w", level, e.params.MaxLevel(), ErrLevelMismatch)
	}
	// A non-positive or non-finite scale would encode fine but decode to
	// NaN/Inf (found by FuzzEncodeDecode) — reject it at the boundary.
	if scale <= 0 || math.IsNaN(scale) || math.IsInf(scale, 0) {
		return nil, fmt.Errorf("ckks: invalid encoding scale %g: %w", scale, ErrInvalidValue)
	}
	w := make([]complex128, slots)
	copy(w, values)
	e.embed(w)

	n := e.params.N()
	gap := (n / 2) / slots
	coeffs := make([]*big.Int, n)
	for i := range coeffs {
		coeffs[i] = big.NewInt(0)
	}
	var err error
	for j := 0; j < slots; j++ {
		if coeffs[j*gap], err = scaleToInt(real(w[j]), scale); err != nil {
			return nil, err
		}
		if coeffs[j*gap+n/2], err = scaleToInt(imag(w[j]), scale); err != nil {
			return nil, err
		}
	}
	rq := e.params.RingQ().AtLevel(level)
	pt := &Plaintext{Value: rq.NewPoly(), Level: level, Scale: scale}
	rq.SetCoeffBigint(coeffs, pt.Value)
	rq.NTT(pt.Value)
	return pt, nil
}

// Encode encodes at the top level with the default scale.
func (e *Encoder) Encode(values []complex128) (*Plaintext, error) {
	return e.EncodeAtLevel(values, e.params.MaxLevel(), e.params.Scale())
}

// scaleToInt converts v*scale to an arbitrary-precision integer, using
// big.Float so scales beyond 2^53/|v| stay exact to the ulp.
func scaleToInt(v, scale float64) (*big.Int, error) {
	f := v * scale
	if math.IsNaN(f) || math.IsInf(f, 0) {
		return nil, fmt.Errorf("ckks: value %g overflows at scale %g: %w", v, scale, ErrInvalidValue)
	}
	bf := new(big.Float).SetPrec(96).SetFloat64(v)
	bf.Mul(bf, new(big.Float).SetPrec(96).SetFloat64(scale))
	i, _ := bf.Int(nil)
	// Round-half-away rather than truncate: add ±0.5 before Int().
	frac := new(big.Float).Sub(bf, new(big.Float).SetInt(i))
	half, _ := frac.Float64()
	if half >= 0.5 {
		i.Add(i, big.NewInt(1))
	} else if half <= -0.5 {
		i.Sub(i, big.NewInt(1))
	}
	return i, nil
}

// Decode recovers the complex slot values of a plaintext.
func (e *Encoder) Decode(pt *Plaintext) []complex128 {
	rq := e.params.RingQ().AtLevel(pt.Level)
	poly := pt.Value.Clone()
	rq.INTT(poly)
	coeffs := make([]*big.Int, e.params.N())
	rq.PolyToBigintCentered(poly, coeffs)

	n := e.params.N()
	slots := e.params.Slots()
	gap := (n / 2) / slots
	w := make([]complex128, slots)
	for j := 0; j < slots; j++ {
		re := bigToFloat(coeffs[j*gap]) / pt.Scale
		im := bigToFloat(coeffs[j*gap+n/2]) / pt.Scale
		w[j] = complex(re, im)
	}
	e.project(w)
	return w
}

func bigToFloat(v *big.Int) float64 {
	f, _ := new(big.Float).SetInt(v).Float64()
	return f
}
