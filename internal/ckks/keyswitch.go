package ckks

import (
	"context"
	"fmt"
	"math/bits"
	"sync"
	"time"

	"github.com/fastfhe/fast/internal/obs"
	"github.com/fastfhe/fast/internal/ring"
	"github.com/fastfhe/fast/internal/rns"
)

// KeySwitcher executes the key-switching dataflow for one backend. Both
// backends share the gadget structure (the paper's Fig. 1): the hybrid
// method runs ModUp → KeyMult → ModDown over the 36-bit special chain P,
// while the KLSS backend runs the same stages over the 60-bit auxiliary
// chain T (DoubleDecompose → KeyMult → RecoverLimbs → ModDown), exercising
// the accelerator's 60-bit datapath. The β·α grouping, gadget selectors and
// ModDown rounding are identical mathematics; only the chain (and hence the
// per-kernel operation counts, see internal/costmodel) differs.
//
// A KeySwitcher is safe for concurrent use: all mutable state is either
// guarded (the lazily built extender/downer tables) or drawn from a
// sync.Pool-backed scratch-buffer pool sized off the parameter set, so no
// per-operation state is shared between goroutines.
type KeySwitcher struct {
	params *Parameters
	method KeySwitchMethod

	keyRing *ring.Ring
	sLen    int // number of special limbs
	alpha   int

	// parallelism caps the goroutine fan-out of the limb-level kernels
	// (ModUp NTTs, BConv, KeyMult rows, ModDown) following ring.Workers
	// semantics. Fixed at construction.
	parallelism int

	// pool recycles scratch polynomials of the extended (Q++special) shape.
	pool *ring.PolyPool

	// Phase-timing instruments (nil when unobserved; see SetObserver). The
	// guard is a single pointer check, so the uninstrumented path pays no
	// clock reads. The tracer (nil unless the observer traces) additionally
	// emits one Chrome-trace span per ModUp/KeyMult/ModDown phase, tagged
	// with the request ID when the operation ran under a request context.
	modUpNS   *obs.Histogram
	keyMultNS *obs.Histogram
	modDownNS *obs.Histogram
	tracer    *obs.Tracer

	mu        sync.Mutex
	extenders map[extKey]*rns.Extender
	downers   map[int]*rns.ModDowner
}

type extKey struct{ level, group int }

// NewKeySwitcher builds the switcher for the chosen backend with serial
// limb-level kernels.
func NewKeySwitcher(params *Parameters, method KeySwitchMethod) (*KeySwitcher, error) {
	return NewKeySwitcherWorkers(params, method, 1)
}

// NewKeySwitcherWorkers builds the switcher with the given limb-parallelism
// fan-out (ring.Workers convention: <=0 means GOMAXPROCS, 1 serial).
func NewKeySwitcherWorkers(params *Parameters, method KeySwitchMethod, workers int) (*KeySwitcher, error) {
	kr, sLen, err := params.keyRing(method)
	if err != nil {
		return nil, err
	}
	return &KeySwitcher{
		params:      params,
		method:      method,
		keyRing:     kr,
		sLen:        sLen,
		alpha:       params.groupAlpha(method),
		parallelism: workers,
		pool:        ring.NewPolyPool(params.N(), len(kr.Moduli)),
		extenders:   map[extKey]*rns.Extender{},
		downers:     map[int]*rns.ModDowner{},
	}, nil
}

// Method returns the backend this switcher runs.
func (ks *KeySwitcher) Method() KeySwitchMethod { return ks.method }

// SetObserver attaches the key-switch phase instruments (paper Fig. 1
// dataflow stages): per-method ModUp, KeyMult and ModDown latency histograms
// plus scratch-pool traffic counters. Call before the switcher is shared
// across goroutines. A nil observer detaches.
func (ks *KeySwitcher) SetObserver(o *obs.Observer) {
	if o == nil {
		ks.modUpNS, ks.keyMultNS, ks.modDownNS, ks.tracer = nil, nil, nil, nil
		ks.pool.Instrument(nil, nil, nil, nil)
		return
	}
	reg := o.Reg()
	prefix := "ckks.keyswitch." + ks.method.String()
	ks.modUpNS = reg.Histogram(prefix + ".modup_ns")
	ks.keyMultNS = reg.Histogram(prefix + ".keymult_ns")
	ks.modDownNS = reg.Histogram(prefix + ".moddown_ns")
	ks.tracer = o.Tr()
	if ks.tracer != nil {
		ks.tracer.SetThreadName(TracePIDEvaluator, ksTraceTID, "keyswitch phases")
	}
	poolPrefix := "ring.pool.keyswitch." + ks.method.String()
	ks.pool.Instrument(
		reg.Counter(poolPrefix+".gets"),
		reg.Counter(poolPrefix+".puts"),
		reg.Counter(poolPrefix+".misses"),
		reg.Gauge(poolPrefix+".alloc_bytes"),
	)
}

// ksTraceTID is the Chrome-trace thread id of the key-switch phase track
// (evaluator op spans sit on tid 0 of the same process).
const ksTraceTID = 1

// traceSpan emits one key-switch phase span (ModUp/KeyMult/ModDown) tagged
// with the backend, level and — when the operation ran under a
// request-scoped context — the serving request ID. No-op without a tracer.
func (ks *KeySwitcher) traceSpan(name string, level int, t0 time.Time, cc *cancelCheck) {
	if ks.tracer == nil {
		return
	}
	args := map[string]any{"method": ks.method.String(), "level": level}
	if rid := cc.rid(); rid != "" {
		args["request_id"] = rid
	}
	ks.tracer.CompleteSince(name, "keyswitch", TracePIDEvaluator, ksTraceTID, t0, args)
}

// beta returns the group count at a level.
func (ks *KeySwitcher) beta(level int) int { return (level + 1 + ks.alpha - 1) / ks.alpha }

// qMods returns the ciphertext moduli active at level.
func (ks *KeySwitcher) qMods(level int) []ring.Modulus {
	return ks.keyRing.Moduli[:level+1]
}

// sMods returns the special-chain moduli.
func (ks *KeySwitcher) sMods() []ring.Modulus {
	qLen := len(ks.params.qChain)
	return ks.keyRing.Moduli[qLen : qLen+ks.sLen]
}

// extender returns (building if needed) the base converter from group j's
// primes to the complement basis (other active q limbs ++ special limbs).
func (ks *KeySwitcher) extender(level, j int) (*rns.Extender, error) {
	ks.mu.Lock()
	defer ks.mu.Unlock()
	k := extKey{level, j}
	if e, ok := ks.extenders[k]; ok {
		return e, nil
	}
	lo, hi := j*ks.alpha, min((j+1)*ks.alpha, level+1)
	var from, to []ring.Modulus
	from = append(from, ks.qMods(level)[lo:hi]...)
	to = append(to, ks.qMods(level)[:lo]...)
	to = append(to, ks.qMods(level)[hi:]...)
	to = append(to, ks.sMods()...)
	e, err := rns.NewExtender(from, to)
	if err != nil {
		return nil, err
	}
	e.Workers = ks.parallelism
	ks.extenders[k] = e
	return e, nil
}

// downer returns (building if needed) the ModDown context at a level.
func (ks *KeySwitcher) downer(level int) (*rns.ModDowner, error) {
	ks.mu.Lock()
	defer ks.mu.Unlock()
	if d, ok := ks.downers[level]; ok {
		return d, nil
	}
	d, err := rns.NewModDowner(ks.qMods(level), ks.sMods())
	if err != nil {
		return nil, err
	}
	d.SetWorkers(ks.parallelism)
	ks.downers[level] = d
	return d, nil
}

// Decomposition is the hoistable intermediate state of key-switching: the β
// ModUp-extended copies of the input polynomial over the active-Q++special
// basis, in NTT form. Computing it costs the bulk of the key-switch NTTs;
// hoisted rotations reuse one Decomposition across many rotations, which is
// exactly the saving the paper's hoisting analysis (§2.2.3, Fig. 3) counts.
//
// Decompositions hold pooled buffers: callers that obtained one from
// Decompose or Automorph must hand it back with Release once dead.
type Decomposition struct {
	Level  int
	Groups []ring.Poly // each has level+1+sLen limbs: rows [0,level] mod q_i, rest mod special
}

// Release returns the decomposition's buffers to the switcher's pool. The
// decomposition must not be used afterwards. Safe to call on nil.
func (ks *KeySwitcher) Release(d *Decomposition) {
	if d == nil {
		return
	}
	for _, g := range d.Groups {
		ks.pool.Put(g)
	}
	d.Groups = nil
}

// tableFor returns the NTT table of logical row i of an extended polynomial
// at the given level (q rows first, then special rows).
func (ks *KeySwitcher) tableFor(level, i int) *ring.NTTTable {
	if i <= level {
		return ks.keyRing.Tables[i]
	}
	qLen := len(ks.params.qChain)
	return ks.keyRing.Tables[qLen+(i-level-1)]
}

// modFor is the Modulus counterpart of tableFor.
func (ks *KeySwitcher) modFor(level, i int) ring.Modulus {
	if i <= level {
		return ks.keyRing.Moduli[i]
	}
	qLen := len(ks.params.qChain)
	return ks.keyRing.Moduli[qLen+(i-level-1)]
}

// Decompose performs the ModUp stage on c (level+1 limbs, NTT form): it
// splits the limbs into β groups of α and extends each group to the full
// active basis. The group's own limbs are reused in NTT form; converted
// limbs are transformed with one NTT each — the count the cost model and the
// accelerator's NTTU schedule charge for ModUp. The per-limb INTT/BConv/NTT
// work is fanned out across the switcher's worker budget (the FAST
// lane-parallel ModUp dataflow).
//
// The returned decomposition holds pooled buffers; Release it when done.
func (ks *KeySwitcher) Decompose(c ring.Poly, level int) (*Decomposition, error) {
	return ks.decompose(nil, c, level)
}

// DecomposeCtx is Decompose with cancellation checkpoints at every limb chunk
// and decomposition group. On cancellation it returns a typed
// ErrCanceled/ErrDeadline error and releases every pooled buffer it acquired.
func (ks *KeySwitcher) DecomposeCtx(ctx context.Context, c ring.Poly, level int) (*Decomposition, error) {
	return ks.decompose(newCancelCheck(ctx), c, level)
}

func (ks *KeySwitcher) decompose(cc *cancelCheck, c ring.Poly, level int) (*Decomposition, error) {
	if c.Limbs() != level+1 {
		return nil, fmt.Errorf("ckks: decompose input has %d limbs, want %d: %w", c.Limbs(), level+1, ErrLevelMismatch)
	}
	if err := cc.err("ModUp"); err != nil {
		return nil, err
	}
	var t0 time.Time
	if ks.modUpNS != nil || ks.tracer != nil {
		t0 = time.Now()
	}
	// One INTT per input limb to reach coefficient form for BConv. The lazy
	// variant leaves rows in [0, 2q), which Convert's first stage tolerates
	// (its Shoup multiply is exact for any 64-bit operand), saving the final
	// normalization pass per limb.
	cCoeff := ks.pool.Get(level + 1)
	defer ks.pool.Put(cCoeff)
	ring.ForEachLimbRange(level+1, ks.parallelism, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			if cc.stopped() {
				return
			}
			copy(cCoeff.Coeffs[i], c.Coeffs[i])
			ks.keyRing.Tables[i].InverseLazy(cCoeff.Coeffs[i])
		}
	})
	if err := cc.err("ModUp"); err != nil {
		return nil, err
	}

	beta := ks.beta(level)
	ext := len(ks.sMods())
	d := &Decomposition{Level: level, Groups: make([]ring.Poly, beta)}
	for j := 0; j < beta; j++ {
		if err := cc.err("ModUp"); err != nil {
			ks.Release(d)
			return nil, err
		}
		lo, hi := j*ks.alpha, min((j+1)*ks.alpha, level+1)
		e, err := ks.extender(level, j)
		if err != nil {
			ks.Release(d)
			return nil, err
		}
		out := ks.pool.Get(level + 1 + ext)
		// Record the buffer before converting so a cancellation below is
		// released by ks.Release(d) along with the earlier groups.
		d.Groups[j] = out
		// Source rows (coefficient form) for the conversion.
		src := cCoeff.Coeffs[lo:hi]
		// Destination rows: everything except the group's own rows.
		dst := make([][]uint64, 0, level+1+ext-(hi-lo))
		for i := 0; i <= level; i++ {
			if i < lo || i >= hi {
				dst = append(dst, out.Coeffs[i])
			}
		}
		for i := level + 1; i < level+1+ext; i++ {
			dst = append(dst, out.Coeffs[i])
		}
		e.Convert(src, dst)
		// Converted rows go back to NTT form; own rows copy from the NTT
		// input directly.
		ring.ForEachLimbRange(level+1+ext, ks.parallelism, func(rlo, rhi int) {
			for i := rlo; i < rhi; i++ {
				if cc.stopped() {
					return
				}
				if i >= lo && i < hi {
					copy(out.Coeffs[i], c.Coeffs[i])
					continue
				}
				ks.tableFor(level, i).Forward(out.Coeffs[i])
			}
		})
	}
	if err := cc.err("ModUp"); err != nil {
		ks.Release(d)
		return nil, err
	}
	if ks.modUpNS != nil {
		ks.modUpNS.ObserveSince(t0)
	}
	ks.traceSpan("ModUp", level, t0, cc)
	return d, nil
}

// Automorph applies the Galois permutation (NTT-domain index table) to every
// limb of the decomposition, returning a new decomposition drawn from the
// pool (Release it when done). This is the cheap per-rotation step of
// hoisting.
func (ks *KeySwitcher) Automorph(d *Decomposition, index []int) *Decomposition {
	out := &Decomposition{Level: d.Level, Groups: make([]ring.Poly, len(d.Groups))}
	for j, g := range d.Groups {
		og := ks.pool.Get(g.Limbs())
		ring.ForEachLimbRange(g.Limbs(), ks.parallelism, func(lo, hi int) {
			for i := lo; i < hi; i++ {
				src, dsl := g.Coeffs[i], og.Coeffs[i]
				for k := range dsl {
					dsl[k] = src[index[k]]
				}
			}
		})
		out.Groups[j] = og
	}
	return out
}

// KeyMult runs the gadget inner product of a decomposition with a switching
// key and the final ModDown, producing (d0, d1) over the active Q limbs in
// NTT form such that d0 + d1*s ≈ c*sIn. The accumulator rows are independent
// lanes and are processed in parallel under the worker budget; the
// accumulators themselves come from the scratch pool.
//
// The β-digit inner product is a fused lazy multiply-accumulate: per row each
// coefficient gathers Σ_j g_j*k_j as a 128-bit (hi, lo) pair — one widening
// multiply and one carry chain per digit — and is reduced with a single
// Barrett step after the last digit, instead of β AddMod(MulMod(...))
// round-trips with a hardware division each. The row's lazy INTT
// (RecoverLimbs) follows directly, leaving the rows in [0, 2q) for the
// lazy-tolerant ModDown — one fused parallel pass per lane.
func (ks *KeySwitcher) KeyMult(d *Decomposition, key *SwitchingKey, level int) (d0, d1 ring.Poly, err error) {
	return ks.keyMult(nil, d, key, level)
}

// KeyMultCtx is KeyMult with cancellation checkpoints at every accumulator
// row and ModDown stage boundary. On cancellation it returns a typed
// ErrCanceled/ErrDeadline error; all scratch is pooled and released.
func (ks *KeySwitcher) KeyMultCtx(ctx context.Context, d *Decomposition, key *SwitchingKey, level int) (d0, d1 ring.Poly, err error) {
	return ks.keyMult(newCancelCheck(ctx), d, key, level)
}

func (ks *KeySwitcher) keyMult(cc *cancelCheck, d *Decomposition, key *SwitchingKey, level int) (d0, d1 ring.Poly, err error) {
	if key.Method != ks.method {
		return d0, d1, fmt.Errorf("ckks: %v switcher given a %v key: %w", ks.method, key.Method, ErrMethodUnavailable)
	}
	beta := ks.beta(level)
	if beta > len(key.B) {
		return d0, d1, fmt.Errorf("ckks: key has %d groups, need %d", len(key.B), beta)
	}
	if err := cc.err("KeyMult"); err != nil {
		return d0, d1, err
	}
	var t0 time.Time
	if ks.keyMultNS != nil || ks.tracer != nil {
		t0 = time.Now()
	}
	n := ks.params.N()
	ext := len(ks.sMods())
	qLen := len(ks.params.qChain)
	rows := level + 1 + ext

	acc0 := ks.pool.Get(rows)
	acc1 := ks.pool.Get(rows)
	defer ks.pool.Put(acc0)
	defer ks.pool.Put(acc1)
	ring.ForEachLimbRange(rows, ks.parallelism, func(rlo, rhi int) {
		// Two pooled rows per worker hold the high words of the (hi, lo)
		// accumulator pairs; acc0/acc1 rows hold the low words in place.
		scratch := ks.pool.Get(2)
		defer ks.pool.Put(scratch)
		// Fixed-length [:n:n] windows on every row let the compiler prove the
		// inner loops in-bounds once per row instead of per element.
		hi0, hi1 := scratch.Coeffs[0][:n:n], scratch.Coeffs[1][:n:n]
		for i := rlo; i < rhi; i++ {
			if cc.stopped() {
				return
			}
			m := ks.modFor(level, i)
			keyRow := i
			if i > level {
				keyRow = qLen + (i - level - 1)
			}
			a0, a1 := acc0.Coeffs[i][:n:n], acc1.Coeffs[i][:n:n]
			capTerms := m.AccumCapacity() // >= 8 even at the 61-bit cap
			terms := 0
			for j := 0; j < beta; j++ {
				b, a := key.B[j].Coeffs[keyRow][:n:n], key.A[j].Coeffs[keyRow][:n:n]
				gi := d.Groups[j].Coeffs[i][:n:n]
				if j == 0 {
					// First digit initializes the accumulators.
					for k := 0; k < n; k++ {
						h, lo := bits.Mul64(gi[k], b[k])
						a0[k], hi0[k] = lo, h
						h, lo = bits.Mul64(gi[k], a[k])
						a1[k], hi1[k] = lo, h
					}
					terms = 1
					continue
				}
				if terms == capTerms {
					// Fold: only reachable for β > 8 digits over 61-bit
					// special limbs; ciphertext limbs never fold.
					for k := 0; k < n; k++ {
						a0[k], hi0[k] = m.Reduce(hi0[k], a0[k]), 0
						a1[k], hi1[k] = m.Reduce(hi1[k], a1[k]), 0
					}
					terms = 1
				}
				for k := 0; k < n; k++ {
					h, lo := bits.Mul64(gi[k], b[k])
					var c uint64
					a0[k], c = bits.Add64(a0[k], lo, 0)
					hi0[k] += h + c
					h, lo = bits.Mul64(gi[k], a[k])
					a1[k], c = bits.Add64(a1[k], lo, 0)
					hi1[k] += h + c
				}
				terms++
			}
			for k := 0; k < n; k++ {
				a0[k] = m.Reduce(hi0[k], a0[k])
				a1[k] = m.Reduce(hi1[k], a1[k])
			}
			t := ks.tableFor(level, i)
			t.InverseLazy(a0)
			t.InverseLazy(a1)
		}
	})

	if err := cc.err("KeyMult"); err != nil {
		return ring.Poly{}, ring.Poly{}, err
	}

	if ks.keyMultNS != nil || ks.tracer != nil {
		if ks.keyMultNS != nil {
			ks.keyMultNS.ObserveSince(t0)
		}
		ks.traceSpan("KeyMult", level, t0, cc)
		t0 = time.Now()
	}
	// ModDown: divide by the special chain, return to NTT form on the Q
	// limbs. Cancellation is checked between the two halves and at every
	// limb chunk of the closing NTT pass.
	dw, err := ks.downer(level)
	if err != nil {
		return d0, d1, err
	}
	d0 = ring.NewPoly(n, level+1)
	d1 = ring.NewPoly(n, level+1)
	dw.ModDown(acc0.Coeffs[:level+1], acc0.Coeffs[level+1:rows], d0.Coeffs)
	if err := cc.err("ModDown"); err != nil {
		return ring.Poly{}, ring.Poly{}, err
	}
	dw.ModDown(acc1.Coeffs[:level+1], acc1.Coeffs[level+1:rows], d1.Coeffs)
	ring.ForEachLimbRange(level+1, ks.parallelism, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			if cc.stopped() {
				return
			}
			ks.keyRing.Tables[i].Forward(d0.Coeffs[i])
			ks.keyRing.Tables[i].Forward(d1.Coeffs[i])
		}
	})
	if err := cc.err("ModDown"); err != nil {
		return ring.Poly{}, ring.Poly{}, err
	}
	if ks.modDownNS != nil {
		ks.modDownNS.ObserveSince(t0)
	}
	ks.traceSpan("ModDown", level, t0, cc)
	return d0, d1, nil
}

// Switch is the one-shot path: Decompose followed by KeyMult. All
// intermediate buffers are pooled; only the returned (d0, d1) pair is
// freshly allocated (it escapes into the output ciphertext).
func (ks *KeySwitcher) Switch(c ring.Poly, key *SwitchingKey, level int) (d0, d1 ring.Poly, err error) {
	return ks.switchPoly(nil, c, key, level)
}

// SwitchCtx is Switch with cancellation checkpoints through both stages.
func (ks *KeySwitcher) SwitchCtx(ctx context.Context, c ring.Poly, key *SwitchingKey, level int) (d0, d1 ring.Poly, err error) {
	return ks.switchPoly(newCancelCheck(ctx), c, key, level)
}

func (ks *KeySwitcher) switchPoly(cc *cancelCheck, c ring.Poly, key *SwitchingKey, level int) (d0, d1 ring.Poly, err error) {
	d, err := ks.decompose(cc, c, level)
	if err != nil {
		return d0, d1, err
	}
	defer ks.Release(d)
	return ks.keyMult(cc, d, key, level)
}
