package ckks

import (
	"fmt"
	"sync"

	"github.com/fastfhe/fast/internal/ring"
	"github.com/fastfhe/fast/internal/rns"
)

// KeySwitcher executes the key-switching dataflow for one backend. Both
// backends share the gadget structure (the paper's Fig. 1): the hybrid
// method runs ModUp → KeyMult → ModDown over the 36-bit special chain P,
// while the KLSS backend runs the same stages over the 60-bit auxiliary
// chain T (DoubleDecompose → KeyMult → RecoverLimbs → ModDown), exercising
// the accelerator's 60-bit datapath. The β·α grouping, gadget selectors and
// ModDown rounding are identical mathematics; only the chain (and hence the
// per-kernel operation counts, see internal/costmodel) differs.
type KeySwitcher struct {
	params *Parameters
	method KeySwitchMethod

	keyRing *ring.Ring
	sLen    int // number of special limbs
	alpha   int

	mu        sync.Mutex
	extenders map[extKey]*rns.Extender
	downers   map[int]*rns.ModDowner
}

type extKey struct{ level, group int }

// NewKeySwitcher builds the switcher for the chosen backend.
func NewKeySwitcher(params *Parameters, method KeySwitchMethod) (*KeySwitcher, error) {
	kr, sLen, err := params.keyRing(method)
	if err != nil {
		return nil, err
	}
	return &KeySwitcher{
		params:    params,
		method:    method,
		keyRing:   kr,
		sLen:      sLen,
		alpha:     params.groupAlpha(method),
		extenders: map[extKey]*rns.Extender{},
		downers:   map[int]*rns.ModDowner{},
	}, nil
}

// Method returns the backend this switcher runs.
func (ks *KeySwitcher) Method() KeySwitchMethod { return ks.method }

// beta returns the group count at a level.
func (ks *KeySwitcher) beta(level int) int { return (level + 1 + ks.alpha - 1) / ks.alpha }

// qMods returns the ciphertext moduli active at level.
func (ks *KeySwitcher) qMods(level int) []ring.Modulus {
	return ks.keyRing.Moduli[:level+1]
}

// sMods returns the special-chain moduli.
func (ks *KeySwitcher) sMods() []ring.Modulus {
	qLen := len(ks.params.qChain)
	return ks.keyRing.Moduli[qLen : qLen+ks.sLen]
}

// extender returns (building if needed) the base converter from group j's
// primes to the complement basis (other active q limbs ++ special limbs).
func (ks *KeySwitcher) extender(level, j int) (*rns.Extender, error) {
	ks.mu.Lock()
	defer ks.mu.Unlock()
	k := extKey{level, j}
	if e, ok := ks.extenders[k]; ok {
		return e, nil
	}
	lo, hi := j*ks.alpha, min((j+1)*ks.alpha, level+1)
	var from, to []ring.Modulus
	from = append(from, ks.qMods(level)[lo:hi]...)
	to = append(to, ks.qMods(level)[:lo]...)
	to = append(to, ks.qMods(level)[hi:]...)
	to = append(to, ks.sMods()...)
	e, err := rns.NewExtender(from, to)
	if err != nil {
		return nil, err
	}
	ks.extenders[k] = e
	return e, nil
}

// downer returns (building if needed) the ModDown context at a level.
func (ks *KeySwitcher) downer(level int) (*rns.ModDowner, error) {
	ks.mu.Lock()
	defer ks.mu.Unlock()
	if d, ok := ks.downers[level]; ok {
		return d, nil
	}
	d, err := rns.NewModDowner(ks.qMods(level), ks.sMods())
	if err != nil {
		return nil, err
	}
	ks.downers[level] = d
	return d, nil
}

// Decomposition is the hoistable intermediate state of key-switching: the β
// ModUp-extended copies of the input polynomial over the active-Q++special
// basis, in NTT form. Computing it costs the bulk of the key-switch NTTs;
// hoisted rotations reuse one Decomposition across many rotations, which is
// exactly the saving the paper's hoisting analysis (§2.2.3, Fig. 3) counts.
type Decomposition struct {
	Level  int
	Groups []ring.Poly // each has level+1+sLen limbs: rows [0,level] mod q_i, rest mod special
}

// tableFor returns the NTT table of logical row i of an extended polynomial
// at the given level (q rows first, then special rows).
func (ks *KeySwitcher) tableFor(level, i int) *ring.NTTTable {
	if i <= level {
		return ks.keyRing.Tables[i]
	}
	qLen := len(ks.params.qChain)
	return ks.keyRing.Tables[qLen+(i-level-1)]
}

// modFor is the Modulus counterpart of tableFor.
func (ks *KeySwitcher) modFor(level, i int) ring.Modulus {
	if i <= level {
		return ks.keyRing.Moduli[i]
	}
	qLen := len(ks.params.qChain)
	return ks.keyRing.Moduli[qLen+(i-level-1)]
}

// Decompose performs the ModUp stage on c (level+1 limbs, NTT form): it
// splits the limbs into β groups of α and extends each group to the full
// active basis. The group's own limbs are reused in NTT form; converted
// limbs are transformed with one NTT each — the count the cost model and the
// accelerator's NTTU schedule charge for ModUp.
func (ks *KeySwitcher) Decompose(c ring.Poly, level int) (*Decomposition, error) {
	if c.Limbs() != level+1 {
		return nil, fmt.Errorf("ckks: decompose input has %d limbs, want %d", c.Limbs(), level+1)
	}
	n := ks.params.N()
	// One INTT per input limb to reach coefficient form for BConv.
	cCoeff := c.Clone()
	for i := 0; i <= level; i++ {
		ks.keyRing.Tables[i].Inverse(cCoeff.Coeffs[i])
	}

	beta := ks.beta(level)
	ext := len(ks.sMods())
	d := &Decomposition{Level: level, Groups: make([]ring.Poly, beta)}
	for j := 0; j < beta; j++ {
		lo, hi := j*ks.alpha, min((j+1)*ks.alpha, level+1)
		e, err := ks.extender(level, j)
		if err != nil {
			return nil, err
		}
		out := ring.NewPoly(n, level+1+ext)
		// Source rows (coefficient form) for the conversion.
		src := cCoeff.Coeffs[lo:hi]
		// Destination rows: everything except the group's own rows.
		dst := make([][]uint64, 0, level+1+ext-(hi-lo))
		for i := 0; i <= level; i++ {
			if i < lo || i >= hi {
				dst = append(dst, out.Coeffs[i])
			}
		}
		for i := level + 1; i < level+1+ext; i++ {
			dst = append(dst, out.Coeffs[i])
		}
		e.Convert(src, dst)
		// Converted rows go back to NTT form; own rows copy from the NTT
		// input directly.
		for i := 0; i <= level+ext; i++ {
			if i >= lo && i < hi {
				copy(out.Coeffs[i], c.Coeffs[i])
				continue
			}
			ks.tableFor(level, i).Forward(out.Coeffs[i])
		}
		d.Groups[j] = out
	}
	return d, nil
}

// Automorph applies the Galois permutation (NTT-domain index table) to every
// limb of the decomposition, returning a new decomposition. This is the
// cheap per-rotation step of hoisting.
func (ks *KeySwitcher) Automorph(d *Decomposition, index []int) *Decomposition {
	out := &Decomposition{Level: d.Level, Groups: make([]ring.Poly, len(d.Groups))}
	for j, g := range d.Groups {
		og := ring.NewPoly(g.N(), g.Limbs())
		for i := range g.Coeffs {
			src, dsl := g.Coeffs[i], og.Coeffs[i]
			for k := range dsl {
				dsl[k] = src[index[k]]
			}
		}
		out.Groups[j] = og
	}
	return out
}

// KeyMult runs the gadget inner product of a decomposition with a switching
// key and the final ModDown, producing (d0, d1) over the active Q limbs in
// NTT form such that d0 + d1*s ≈ c*sIn.
func (ks *KeySwitcher) KeyMult(d *Decomposition, key *SwitchingKey, level int) (d0, d1 ring.Poly, err error) {
	if key.Method != ks.method {
		return d0, d1, fmt.Errorf("ckks: %v switcher given a %v key", ks.method, key.Method)
	}
	beta := ks.beta(level)
	if beta > len(key.B) {
		return d0, d1, fmt.Errorf("ckks: key has %d groups, need %d", len(key.B), beta)
	}
	n := ks.params.N()
	ext := len(ks.sMods())
	qLen := len(ks.params.qChain)
	rows := level + 1 + ext

	acc0 := ring.NewPoly(n, rows)
	acc1 := ring.NewPoly(n, rows)
	for j := 0; j < beta; j++ {
		g := d.Groups[j]
		for i := 0; i < rows; i++ {
			m := ks.modFor(level, i)
			keyRow := i
			if i > level {
				keyRow = qLen + (i - level - 1)
			}
			b, a := key.B[j].Coeffs[keyRow], key.A[j].Coeffs[keyRow]
			gi := g.Coeffs[i]
			a0, a1 := acc0.Coeffs[i], acc1.Coeffs[i]
			for k := 0; k < n; k++ {
				a0[k] = m.AddMod(a0[k], m.MulMod(gi[k], b[k]))
				a1[k] = m.AddMod(a1[k], m.MulMod(gi[k], a[k]))
			}
		}
	}

	// RecoverLimbs/ModDown: back to coefficient form, divide by the special
	// chain, return to NTT form on the Q limbs.
	for i := 0; i < rows; i++ {
		t := ks.tableFor(level, i)
		t.Inverse(acc0.Coeffs[i])
		t.Inverse(acc1.Coeffs[i])
	}
	dw, err := ks.downer(level)
	if err != nil {
		return d0, d1, err
	}
	d0 = ring.NewPoly(n, level+1)
	d1 = ring.NewPoly(n, level+1)
	dw.ModDown(acc0.Coeffs[:level+1], acc0.Coeffs[level+1:rows], d0.Coeffs)
	dw.ModDown(acc1.Coeffs[:level+1], acc1.Coeffs[level+1:rows], d1.Coeffs)
	for i := 0; i <= level; i++ {
		ks.keyRing.Tables[i].Forward(d0.Coeffs[i])
		ks.keyRing.Tables[i].Forward(d1.Coeffs[i])
	}
	return d0, d1, nil
}

// Switch is the one-shot path: Decompose followed by KeyMult.
func (ks *KeySwitcher) Switch(c ring.Poly, key *SwitchingKey, level int) (d0, d1 ring.Poly, err error) {
	d, err := ks.Decompose(c, level)
	if err != nil {
		return d0, d1, err
	}
	return ks.KeyMult(d, key, level)
}
