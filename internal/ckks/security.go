package ckks

import (
	"math"
	"math/bits"
)

// heStdMaxLogQP maps log2(N) to the maximum total modulus size (log2 of
// Q*P, including every auxiliary chain) for 128-bit classical security with
// a ternary secret, per the Homomorphic Encryption Standard tables. A chain
// larger than the entry for its degree falls below 128-bit security.
var heStdMaxLogQP = map[int]int{
	10: 27,
	11: 54,
	12: 109,
	13: 218,
	14: 438,
	15: 881,
	16: 1772,
	17: 3544,
}

// LogQP returns the total bit size of the ciphertext chain plus the largest
// auxiliary chain (the key-switching keys live over Q*P or Q*T, whichever is
// bigger, and the keys are what the attacker sees most of).
func (p *Parameters) LogQP() int {
	logQ := 0
	for _, q := range p.qChain {
		logQ += bits.Len64(q)
	}
	logP := 0
	for _, q := range p.pChain {
		logP += bits.Len64(q)
	}
	logT := 0
	for _, q := range p.tChain {
		logT += bits.Len64(q)
	}
	if logT > logP {
		logP = logT
	}
	return logQ + logP
}

// SecurityEstimate returns a coarse classical-security estimate in bits for
// the parameter set: 128 bits scaled by the ratio of the HE-Standard maximum
// modulus for this degree to the actual modulus (security of RLWE grows
// roughly linearly in N/log(QP)). Sparse secrets reduce the estimate
// further (a flat 20% haircut models the hybrid/dual attacks sparse keys
// enable). This is a sanity gauge, not a cryptographic analysis; use a
// lattice estimator before deploying any parameter set.
func (p *Parameters) SecurityEstimate() float64 {
	maxQP, ok := heStdMaxLogQP[p.logN]
	if !ok {
		return 0
	}
	sec := 128 * float64(maxQP) / float64(p.LogQP())
	if p.secretHW > 0 && p.secretHW < p.N()/2 {
		sec *= 0.8
	}
	return math.Min(sec, 256)
}

// IsSecure reports whether the estimate clears the standard 128-bit bar.
func (p *Parameters) IsSecure() bool {
	return p.SecurityEstimate() >= 128
}
