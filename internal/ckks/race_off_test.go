//go:build !race

package ckks

// raceEnabled reports whether the race detector is active. The allocation
// assertion is skipped under -race: the race runtime instruments sync.Pool
// and inflates AllocsPerRun, which would make the bound meaningless.
const raceEnabled = false
