package ckks

import (
	"context"
	"fmt"
	"math"
	"math/big"

	"github.com/fastfhe/fast/internal/ring"
)

// BootstrapParameters tunes the bootstrapping pipeline (paper §6.2: the
// fully-packed pipeline consists of ModRaise, CoeffToSlot, EvalMod and
// SlotToCoeff; this functional implementation follows the same four stages
// with the sparse-packing SubSum step in between).
type BootstrapParameters struct {
	// K bounds the integer multiples of q0 the raised ciphertext carries
	// (|I| <= K with overwhelming probability for a sparse secret).
	K int
	// SinDegree is the Taylor degree of the sine/cosine seed approximation.
	SinDegree int
	// DoubleAngles is the number of double-angle iterations r; the seed
	// angle is divided by 2^r so the Taylor series converges.
	DoubleAngles int
}

// DefaultBootstrapParameters works with a hamming-weight-16 secret. The
// gap-indexed coefficients the pipeline tracks are fixed points of the
// SubSum trace, so the q0-multiples arrive as exact multiples of
// q0*N/(2n) and the effective integer range stays at the raw |I| bound
// (~6*sigma(I) ≈ 8 for weight 16); 2^8 double-angle halvings keep the
// Taylor seed angle below 0.5.
func DefaultBootstrapParameters() BootstrapParameters {
	return BootstrapParameters{K: 10, SinDegree: 9, DoubleAngles: 8}
}

// Depth returns the number of levels one bootstrap consumes (CoeffToSlot,
// real/imag split, EvalMod, recombination, SlotToCoeff).
func (bp BootstrapParameters) Depth() int {
	taylor := Polynomial{Coeffs: make([]float64, bp.SinDegree+1)}.Depth() + 1
	// CtS + split + angle (2 levels: mantissa and exponent factors) +
	// taylor + doublings + final const + recombine + StC
	return 1 + 1 + 2 + taylor + bp.DoubleAngles + 1 + 1 + 1
}

// Bootstrapper refreshes exhausted ciphertexts: it re-raises a level-0
// ciphertext to the top of the modulus chain and homomorphically removes the
// q0-multiples this introduces.
type Bootstrapper struct {
	params *Parameters
	enc    *Encoder
	eval   *Evaluator
	bp     BootstrapParameters

	ctsLT *LinearTransform
	// stcLT is built lazily per output level (the level depends on the
	// exact depth spent in EvalMod).
	stcLT map[int]*LinearTransform

	iPlain map[int]*Plaintext // all-i constant per level (recombination)
}

// BootstrapRotations returns every rotation amount the bootstrapper needs
// Galois keys for (SubSum ladder + both DFT transforms); conjugation and
// relinearisation keys are also required.
func BootstrapRotations(params *Parameters) []int {
	n := params.Slots()
	seen := map[int]bool{}
	// SubSum ladder.
	for i := n; i < params.N()/2; i <<= 1 {
		seen[i] = true
	}
	// BSGS babies and giants for an n-diagonal transform.
	bs := 1
	for bs*bs < n {
		bs <<= 1
	}
	for b := 1; b < bs; b++ {
		seen[b] = true
	}
	for g := bs; g < n; g += bs {
		seen[g] = true
	}
	var out []int
	for r := range seen {
		out = append(out, r)
	}
	return out
}

// NewBootstrapper precomputes the DFT transforms. The evaluator must hold
// Galois keys for BootstrapRotations plus the conjugation and relin keys.
func NewBootstrapper(params *Parameters, enc *Encoder, eval *Evaluator, bp BootstrapParameters) (*Bootstrapper, error) {
	if params.secretHW == 0 {
		return nil, fmt.Errorf("ckks: bootstrapping requires a sparse secret (SecretHammingWeight > 0): %w", ErrInvalidParameters)
	}
	if params.MaxLevel() < bp.Depth() {
		return nil, fmt.Errorf("ckks: chain depth %d below bootstrap depth %d: %w", params.MaxLevel(), bp.Depth(), ErrInvalidParameters)
	}
	bt := &Bootstrapper{
		params: params, enc: enc, eval: eval, bp: bp,
		stcLT:  map[int]*LinearTransform{},
		iPlain: map[int]*Plaintext{},
	}

	// CoeffToSlot matrix: the inverse special FFT (embed). The SubSum fold
	// factor N/(2n) is deliberately NOT divided out here: doing so would
	// turn the integer q0-multiples carried by the slots into fractions the
	// sine cannot remove. It is removed after EvalMod instead, where 1/fold
	// merges exactly into the output constant.
	diags, err := bt.dftDiagonals(func(col []complex128) { enc.embed(col) }, 1)
	if err != nil {
		return nil, err
	}
	bt.ctsLT, err = NewLinearTransform(enc, diags, params.MaxLevel(), params.Scale(), 0)
	if err != nil {
		return nil, err
	}
	return bt, nil
}

// dftDiagonals builds the generalised diagonals of the n x n matrix whose
// k-th column is transform(e_k), scaled by factor.
func (bt *Bootstrapper) dftDiagonals(transform func([]complex128), factor complex128) (map[int][]complex128, error) {
	n := bt.params.Slots()
	mat := make([][]complex128, n) // mat[i][k]
	for i := range mat {
		mat[i] = make([]complex128, n)
	}
	col := make([]complex128, n)
	for k := 0; k < n; k++ {
		for i := range col {
			col[i] = 0
		}
		col[k] = 1
		transform(col)
		for i := 0; i < n; i++ {
			mat[i][k] = col[i] * factor
		}
	}
	diags := map[int][]complex128{}
	for d := 0; d < n; d++ {
		diag := make([]complex128, n)
		nz := false
		for i := 0; i < n; i++ {
			diag[i] = mat[i][(i+d)%n]
			if diag[i] != 0 {
				nz = true
			}
		}
		if nz {
			diags[d] = diag
		}
	}
	if len(diags) == 0 {
		return nil, fmt.Errorf("ckks: empty DFT matrix")
	}
	return diags, nil
}

// modRaise lifts a level-0 ciphertext to the top of the chain: the centered
// residues mod q0 are re-reduced into every limb, so the new ciphertext
// encrypts m + q0*I for a small integer polynomial I (the quantity EvalMod
// later removes).
func (bt *Bootstrapper) modRaise(ct *Ciphertext) (*Ciphertext, error) {
	if ct.Level != 0 {
		return nil, fmt.Errorf("ckks: modRaise expects a level-0 ciphertext, got level %d: %w", ct.Level, ErrLevelMismatch)
	}
	p := bt.params
	rq0 := p.ringQ.AtLevel(0)
	rqFull := p.ringQ
	q0 := new(big.Int).SetUint64(p.qChain[0])
	half := new(big.Int).Rsh(q0, 1)

	out := &Ciphertext{Level: p.MaxLevel(), Scale: ct.Scale}
	coeffs := make([]*big.Int, p.N())
	raise := func(in ring.Poly) ring.Poly {
		tmp := in.Clone()
		rq0.INTT(tmp)
		for j := 0; j < p.N(); j++ {
			v := new(big.Int).SetUint64(tmp.Coeffs[0][j])
			if v.Cmp(half) > 0 {
				v.Sub(v, q0)
			}
			coeffs[j] = v
		}
		outP := rqFull.NewPoly()
		rqFull.SetCoeffBigint(coeffs, outP)
		rqFull.NTT(outP)
		return outP
	}
	out.C0 = raise(ct.C0)
	out.C1 = raise(ct.C1)
	return out, nil
}

// subSum folds the sparse packing: for n < N/2 slots the ladder
// ct += rot(ct, n*2^t) projects the raised polynomial onto the subring the
// sparse embedding reads, scaled by N/(2n) (compensated inside the
// CoeffToSlot matrix).
func (bt *Bootstrapper) subSum(cc *cancelCheck, ct *Ciphertext) (*Ciphertext, error) {
	for i := bt.params.Slots(); i < bt.params.N()/2; i <<= 1 {
		rot, err := bt.eval.rotate(cc, ct, i, bt.eval.Method())
		if err != nil {
			return nil, err
		}
		if ct, err = bt.eval.Add(ct, rot); err != nil {
			return nil, err
		}
	}
	return ct, nil
}

// evalMod approximately reduces each (real-valued) slot modulo q0/anchor
// and multiplies the result by postFactor: it evaluates
// postFactor*(q0/2π·anchor)*sin(2π·anchor·t/q0) with a Taylor seed at angle
// θ/2^r followed by r double-angle iterations.
//
// anchor is the scale at which the q0-multiples are exact integers: the
// *original* encoding scale of the bootstrapped ciphertext. It generally
// differs from ct.Scale by the accumulated rescale drift (each chain prime
// is within ~2^-18 of the nominal scale); using ct.Scale here would tilt
// the angle by 2π·I·2^-18, which the sine amplifies by q0/(2πΔ) into an
// absolute output error of ~0.02 — the dominant error source before this
// distinction was made.
// foldQ multiplies the effective modulus: the bootstrap pipeline's
// q0-multiples are exact multiples of q0*fold (the SubSum trace fixes the
// gap monomials, summing fold equal contributions), so reducing modulo
// q0*fold both is correct and shrinks the integer range by fold.
func (bt *Bootstrapper) evalMod(cc *cancelCheck, ct *Ciphertext, postFactor, anchor, foldQ float64) (*Ciphertext, error) {
	ev := bt.eval
	q0 := float64(bt.params.qChain[0]) * foldQ
	pow2r := math.Exp2(float64(bt.bp.DoubleAngles))
	scale := anchor

	// θ = t * 2π*scale/(q0*2^r), so integer multiples of q0 become exact
	// multiples of 2π after the double-angle ladder. The constant is tiny
	// (~2^-19), so a single Δ-quantised multiplication would carry a
	// relative error of ~2^-14 that the ladder amplifies by q0/Δ·I; instead
	// we split it into a factor in [0.5,1) (quantisation error 2^-37) and an
	// exactly-representable power of two.
	c := 2 * math.Pi * scale / (q0 * pow2r)
	k := 0
	for c < 0.5 {
		c *= 2
		k++
	}
	theta, err := ev.MulConst(ct, c)
	if err != nil {
		return nil, err
	}
	if theta, err = ev.rescaleCC(cc, theta); err != nil {
		return nil, err
	}
	if k > 0 {
		if theta, err = ev.MulConst(theta, math.Exp2(-float64(k))); err != nil {
			return nil, err
		}
		if theta, err = ev.rescaleCC(cc, theta); err != nil {
			return nil, err
		}
	}

	// Taylor seeds around 0.
	sinCoeffs := make([]float64, bt.bp.SinDegree+1)
	cosCoeffs := make([]float64, bt.bp.SinDegree)
	fact := 1.0
	for i := 1; i <= bt.bp.SinDegree; i++ {
		fact *= float64(i)
		switch i % 4 {
		case 1:
			sinCoeffs[i] = 1 / fact
		case 3:
			sinCoeffs[i] = -1 / fact
		}
	}
	fact = 1.0
	cosCoeffs[0] = 1
	for i := 2; i < bt.bp.SinDegree; i++ {
		fact = 1.0
		for k := 2; k <= i; k++ {
			fact *= float64(k)
		}
		switch i % 4 {
		case 0:
			cosCoeffs[i] = 1 / fact
		case 2:
			cosCoeffs[i] = -1 / fact
		}
	}
	sin, err := ev.evaluatePoly(cc, theta, Polynomial{Coeffs: sinCoeffs})
	if err != nil {
		return nil, err
	}
	cos, err := ev.evaluatePoly(cc, theta, Polynomial{Coeffs: cosCoeffs})
	if err != nil {
		return nil, err
	}

	// Double-angle ladder: sin(2x) = 2 sin cos, cos(2x) = 1 - 2 sin^2.
	for it := 0; it < bt.bp.DoubleAngles; it++ {
		if err := cc.err("EvalMod"); err != nil {
			return nil, err
		}
		sc, err := ev.mulRescaleCC(cc, sin, cos)
		if err != nil {
			return nil, err
		}
		s2, err := ev.mulRescaleCC(cc, sin, sin)
		if err != nil {
			return nil, err
		}
		if sin, err = ev.Add(sc, sc); err != nil {
			return nil, err
		}
		neg2s2, err := ev.Add(s2, s2)
		if err != nil {
			return nil, err
		}
		ev.negateInPlace(neg2s2)
		if cos, err = ev.AddConst(neg2s2, 1); err != nil {
			return nil, err
		}
	}

	// m ≈ sin * q0/(2π*scale), with the caller's exact post-factor folded in.
	out, err := ev.MulConst(sin, postFactor*q0/(2*math.Pi*scale))
	if err != nil {
		return nil, err
	}
	return ev.rescaleCC(cc, out)
}

// negateInPlace flips the sign of every component (no level or scale cost).
func (ev *Evaluator) negateInPlace(ct *Ciphertext) {
	rq := ev.params.ringQ.AtLevel(ct.Level)
	rq.Neg(ct.C0, ct.C0)
	rq.Neg(ct.C1, ct.C1)
}

// iConstant returns the all-i plaintext at the given level (cached).
func (bt *Bootstrapper) iConstant(level int) (*Plaintext, error) {
	if pt, ok := bt.iPlain[level]; ok {
		return pt, nil
	}
	n := bt.params.Slots()
	v := make([]complex128, n)
	for j := range v {
		v[j] = complex(0, 1)
	}
	pt, err := bt.enc.EncodeAtLevel(v, level, bt.params.Scale())
	if err != nil {
		return nil, err
	}
	bt.iPlain[level] = pt
	return pt, nil
}

// slotToCoeff applies the forward special FFT matrix at the ciphertext's
// current level (built lazily and cached per level).
func (bt *Bootstrapper) slotToCoeff(cc *cancelCheck, ct *Ciphertext) (*Ciphertext, error) {
	lt, ok := bt.stcLT[ct.Level]
	if !ok {
		diags, err := bt.dftDiagonals(func(col []complex128) { bt.enc.project(col) }, 1)
		if err != nil {
			return nil, err
		}
		if lt, err = NewLinearTransform(bt.enc, diags, ct.Level, bt.params.Scale(), 0); err != nil {
			return nil, err
		}
		bt.stcLT[ct.Level] = lt
	}
	out, err := bt.eval.linearTransform(cc, ct, lt)
	if err != nil {
		return nil, err
	}
	return bt.eval.rescaleCC(cc, out)
}

// Bootstrap refreshes a level-0 ciphertext, returning an encryption of the
// same message with the levels consumed by the pipeline still available.
func (bt *Bootstrapper) Bootstrap(ct *Ciphertext) (*Ciphertext, error) {
	return bt.bootstrap(nil, ct)
}

// BootstrapCtx is Bootstrap with cancellation: ctx is polled between every
// pipeline stage (ModRaise, SubSum, CoeffToSlot, EvalMod, SlotToCoeff) and
// inside each stage at every level of the underlying DFTs, polynomial
// evaluations and double-angle iterations, so a multi-second bootstrap
// abandons within roughly one key-switch of ctx being done.
func (bt *Bootstrapper) BootstrapCtx(ctx context.Context, ct *Ciphertext) (*Ciphertext, error) {
	return bt.bootstrap(newCancelCheck(ctx), ct)
}

func (bt *Bootstrapper) bootstrap(cc *cancelCheck, ct *Ciphertext) (*Ciphertext, error) {
	ev := bt.eval

	if err := cc.err("Bootstrap"); err != nil {
		return nil, err
	}
	raised, err := bt.modRaise(ct)
	if err != nil {
		return nil, err
	}
	folded, err := bt.subSum(cc, raised)
	if err != nil {
		return nil, err
	}

	// CoeffToSlot: slots now hold w_j = c[j*gap]/Δ + i*c[j*gap+N/2]/Δ.
	slots, err := ev.linearTransform(cc, folded, bt.ctsLT)
	if err != nil {
		return nil, err
	}
	if slots, err = ev.rescaleCC(cc, slots); err != nil {
		return nil, err
	}

	// Split into real and imaginary parts (both real-valued slot vectors).
	conj, err := ev.conjugate(cc, slots, ev.Method())
	if err != nil {
		return nil, err
	}
	sum, err := ev.Add(slots, conj) // 2*Re(w)
	if err != nil {
		return nil, err
	}
	diff, err := ev.Sub(slots, conj) // 2i*Im(w)
	if err != nil {
		return nil, err
	}
	u, err := ev.MulConst(sum, 0.5)
	if err != nil {
		return nil, err
	}
	if u, err = ev.rescaleCC(cc, u); err != nil {
		return nil, err
	}
	iPt, err := bt.iConstant(diff.Level)
	if err != nil {
		return nil, err
	}
	v, err := ev.MulPlain(diff, iPt) // 2i*Im(w) * i = -2 Im(w)
	if err != nil {
		return nil, err
	}
	if v, err = ev.rescaleCC(cc, v); err != nil {
		return nil, err
	}
	if v, err = ev.MulConst(v, -0.5); err != nil {
		return nil, err
	}
	if v, err = ev.rescaleCC(cc, v); err != nil {
		return nil, err
	}

	// EvalMod on both halves; the exact SubSum fold factor is divided out
	// through the sine output constant.
	fold := float64(bt.params.N()) / float64(2*bt.params.Slots())
	anchor := ct.Scale
	if u, err = bt.evalMod(cc, u, 1/fold, anchor, fold); err != nil {
		return nil, err
	}
	if v, err = bt.evalMod(cc, v, 1/fold, anchor, fold); err != nil {
		return nil, err
	}

	// Recombine m = u + i*v.
	iPt2, err := bt.iConstant(v.Level)
	if err != nil {
		return nil, err
	}
	iv, err := ev.MulPlain(v, iPt2)
	if err != nil {
		return nil, err
	}
	if iv, err = ev.rescaleCC(cc, iv); err != nil {
		return nil, err
	}
	// u must land on iv's scale/level before the addition.
	if u.Level > iv.Level {
		u = ev.DropLevel(u, u.Level-iv.Level)
	} else if iv.Level > u.Level {
		iv = ev.DropLevel(iv, iv.Level-u.Level)
	}
	u.Scale = iv.Scale // within the rescale drift tolerance
	recombined, err := ev.Add(u, iv)
	if err != nil {
		return nil, err
	}

	// SlotToCoeff back to the coefficient layout.
	out, err := bt.slotToCoeff(cc, recombined)
	if err != nil {
		return nil, err
	}
	out.Scale = bt.params.Scale()
	return out, nil
}
