package ckks

import (
	"math"
	"math/big"
	"testing"
)

// Probe: after SubSum + CoeffToSlot the slots must hold the gap-coefficient
// pairs of the raised polynomial divided by the scale.
func TestCoeffToSlotProbe(t *testing.T) {
	if testing.Short() {
		t.Skip("slow")
	}
	tc, bt := bootstrapTestContext(t)
	p := tc.params
	n := p.Slots()
	gap := (p.N() / 2) / n

	values := make([]complex128, n)
	for i := range values {
		values[i] = complex(0.3, -0.2)
	}
	pt, _ := tc.enc.Encode(values)
	ct, _ := tc.encr.Encrypt(pt)
	ct = tc.eval.DropLevel(ct, ct.Level)

	raised, err := bt.modRaise(ct)
	if err != nil {
		t.Fatal(err)
	}

	folded0, err := bt.subSum(nil, raised)
	if err != nil {
		t.Fatal(err)
	}
	// Reference: coefficients of the folded plaintext.
	dec := tc.decr.Decrypt(folded0)
	poly := dec.Value.Clone()
	rq := p.RingQ().AtLevel(raised.Level)
	rq.INTT(poly)
	coeffs := make([]*big.Int, p.N())
	rq.PolyToBigintCentered(poly, coeffs)
	want := make([]complex128, n)
	for j := 0; j < n; j++ {
		re, _ := new(big.Float).SetInt(coeffs[j*gap]).Float64()
		im, _ := new(big.Float).SetInt(coeffs[j*gap+p.N()/2]).Float64()
		want[j] = complex(re/dec.Scale, im/dec.Scale)
	}

	slots, err := tc.eval.LinearTransform(folded0, bt.ctsLT)
	if err != nil {
		t.Fatal(err)
	}
	slots, err = tc.eval.Rescale(slots)
	if err != nil {
		t.Fatal(err)
	}
	got := tc.enc.Decode(tc.decr.Decrypt(slots))
	t.Logf("got[0..3]  = %v", got[:3])
	t.Logf("want[0..3] = %v", want[:3])
	if e := maxErr(got, want); e > 1e-2*maxAbs(want)+1e-2 {
		t.Fatalf("CtS probe error %g", e)
	}
}

func maxAbs(v []complex128) float64 {
	m := 0.0
	for _, x := range v {
		if a := real(x)*real(x) + imag(x)*imag(x); a > m*m {
			m = absc(x)
		}
	}
	return m
}

func absc(x complex128) float64 {
	re, im := real(x), imag(x)
	if re < 0 {
		re = -re
	}
	if im < 0 {
		im = -im
	}
	if re > im {
		return re
	}
	return im
}

// Probe: EvalMod alone on synthetic inputs m + (q0/Δ)*I.
func TestEvalModProbe(t *testing.T) {
	if testing.Short() {
		t.Skip("slow")
	}
	tc, bt := bootstrapTestContext(t)
	p := tc.params
	n := p.Slots()
	q0OverDelta := float64(p.QChain()[0]) / p.Scale()

	msg := make([]complex128, n)
	want := make([]complex128, n)
	for i := range msg {
		m := 0.3 - 0.05*float64(i%5)
		I := float64(i%7 - 3) // integers in [-3,3]
		msg[i] = complex(m+q0OverDelta*I, 0)
		want[i] = complex(m, 0)
	}
	pt, err := tc.enc.EncodeAtLevel(msg, p.MaxLevel()-3, p.Scale())
	if err != nil {
		t.Fatal(err)
	}
	ct, _ := tc.encr.Encrypt(pt)
	out, err := bt.evalMod(nil, ct, 1, p.Scale(), 1)
	if err != nil {
		t.Fatal(err)
	}
	got := tc.enc.Decode(tc.decr.Decrypt(out))
	t.Logf("got[0..6]  = %v", got[:7])
	t.Logf("want[0..6] = %v", want[:7])
	if e := maxErr(got, want); e > 1e-2 {
		t.Fatalf("EvalMod probe error %g", e)
	}
}

// Probe: the real/imag split, EvalMod on both halves, recombination and
// SlotToCoeff, stage by stage against plaintext references.
func TestBootstrapStageProbe(t *testing.T) {
	if testing.Short() {
		t.Skip("slow")
	}
	tc, bt := bootstrapTestContext(t)
	p := tc.params
	n := p.Slots()
	ev := tc.eval

	values := make([]complex128, n)
	for i := range values {
		values[i] = complex(0.4*float64(i%3-1), 0.3*float64(i%2))
	}
	pt, _ := tc.enc.Encode(values)
	ct, _ := tc.encr.Encrypt(pt)
	ct = ev.DropLevel(ct, ct.Level)

	raised, _ := bt.modRaise(ct)
	folded, _ := bt.subSum(nil, raised)
	slots, _ := ev.LinearTransform(folded, bt.ctsLT)
	slots, _ = ev.Rescale(slots)
	w := tc.enc.Decode(tc.decr.Decrypt(slots))

	conj, err := ev.Conjugate(slots)
	if err != nil {
		t.Fatal(err)
	}
	wc := tc.enc.Decode(tc.decr.Decrypt(conj))
	for i := range w {
		if absc(wc[i]-complex(real(w[i]), -imag(w[i]))) > 1e-2 {
			t.Fatalf("sparse Conjugate wrong at %d: %v vs conj(%v)", i, wc[i], w[i])
		}
	}

	sum, _ := ev.Add(slots, conj)
	diff, _ := ev.Sub(slots, conj)
	u, _ := ev.MulConst(sum, 0.5)
	u, _ = ev.Rescale(u)
	iPt, _ := bt.iConstant(diff.Level)
	v, _ := ev.MulPlain(diff, iPt)
	v, _ = ev.Rescale(v)
	v, _ = ev.MulConst(v, -0.5)
	v, _ = ev.Rescale(v)

	gu := tc.enc.Decode(tc.decr.Decrypt(u))
	gv := tc.enc.Decode(tc.decr.Decrypt(v))
	for i := range w {
		if absc(gu[i]-complex(real(w[i]), 0)) > 1e-2 {
			t.Fatalf("u wrong at %d: %v vs Re %v", i, gu[i], real(w[i]))
		}
		if absc(gv[i]-complex(imag(w[i]), 0)) > 1e-2 {
			t.Fatalf("v wrong at %d: %v vs Im %v", i, gv[i], imag(w[i]))
		}
	}
	t.Log("split OK")

	fold := float64(p.N()) / float64(2*n)
	anchor := ct.Scale
	uu, err := bt.evalMod(nil, u, 1/fold, anchor, fold)
	if err != nil {
		t.Fatal(err)
	}
	vv, err := bt.evalMod(nil, v, 1/fold, anchor, fold)
	if err != nil {
		t.Fatal(err)
	}
	guu := tc.enc.Decode(tc.decr.Decrypt(uu))
	gvv := tc.enc.Decode(tc.decr.Decrypt(vv))
	modredAt := func(x, scale float64) float64 {
		q0S := float64(p.QChain()[0]) / scale
		return x - q0S*float64(int64(x/q0S+0.5*sign(x)))
	}
	for i := 0; i < n; i++ {
		wantU := modredAt(real(w[i]), anchor/fold) / fold
		wantV := modredAt(imag(w[i]), anchor/fold) / fold
		if absc(guu[i]-complex(wantU, 0)) > 2e-2 || absc(gvv[i]-complex(wantV, 0)) > 2e-2 {
			t.Fatalf("evalMod stage wrong at %d: u %v want %g; v %v want %g",
				i, guu[i], wantU, gvv[i], wantV)
		}
	}
	t.Log("evalMod stage OK")

	iPt2, _ := bt.iConstant(vv.Level)
	iv, _ := ev.MulPlain(vv, iPt2)
	iv, _ = ev.Rescale(iv)
	if uu.Level > iv.Level {
		uu = ev.DropLevel(uu, uu.Level-iv.Level)
	} else if iv.Level > uu.Level {
		iv = ev.DropLevel(iv, iv.Level-uu.Level)
	}
	uu.Scale = iv.Scale
	rec, err := ev.Add(uu, iv)
	if err != nil {
		t.Fatal(err)
	}
	grec := tc.enc.Decode(tc.decr.Decrypt(rec))
	for i := 0; i < n; i++ {
		want := complex(modredAt(real(w[i]), anchor/fold)/fold, modredAt(imag(w[i]), anchor/fold)/fold)
		if absc(grec[i]-want) > 3e-2 {
			t.Fatalf("recombine wrong at %d: %v want %v", i, grec[i], want)
		}
	}
	t.Log("recombine OK")

	out, err := bt.slotToCoeff(nil, rec)
	if err != nil {
		t.Fatal(err)
	}
	out.Scale = p.Scale()
	gout := tc.enc.Decode(tc.decr.Decrypt(out))
	t.Logf("final[0..3] = %v", gout[:3])
	t.Logf("want [0..3] = %v", values[:3])
	if e := maxErr(gout, values); e > 3e-2 {
		t.Fatalf("StC stage error %g", e)
	}
}

func sign(x float64) float64 {
	if x < 0 {
		return -1
	}
	return 1
}

// The SubSum trace fixes the gap monomials, so the q0-multiples reaching
// EvalMod must be exact multiples of fold = N/(2n) — the structural
// invariant the effective-modulus optimisation in evalMod relies on.
func TestTraceMultiplesOfFold(t *testing.T) {
	if testing.Short() {
		t.Skip("slow")
	}
	tc, bt := bootstrapTestContext(t)
	p := tc.params
	n := p.Slots()
	ev := tc.eval

	values := make([]complex128, n)
	for i := range values {
		values[i] = complex(0.4*float64(i%3-1), 0.3*float64(i%2))
	}
	pt, _ := tc.enc.Encode(values)
	ct, _ := tc.encr.Encrypt(pt)
	ct = ev.DropLevel(ct, ct.Level)
	anchor := ct.Scale

	raised, _ := bt.modRaise(ct)
	folded, _ := bt.subSum(nil, raised)
	slots, _ := ev.LinearTransform(folded, bt.ctsLT)
	slots, _ = ev.Rescale(slots)

	conj, _ := ev.Conjugate(slots)
	diff, _ := ev.Sub(slots, conj)
	iPt, _ := bt.iConstant(diff.Level)
	v, _ := ev.MulPlain(diff, iPt)
	v, _ = ev.Rescale(v)
	v, _ = ev.MulConst(v, -0.5)
	v, _ = ev.Rescale(v)

	sum, _ := ev.Add(slots, conj)
	u, _ := ev.MulConst(sum, 0.5)
	u, _ = ev.Rescale(u)

	q0A := float64(p.QChain()[0]) / anchor
	fold := float64(p.N()) / float64(2*n)
	for name, cti := range map[string]*Ciphertext{"u": u, "v": v} {
		g := tc.enc.Decode(tc.decr.Decrypt(cti))
		for i := 0; i < n; i++ {
			T := math.Round(real(g[i]) / q0A)
			if r := math.Mod(math.Abs(T), fold); r != 0 {
				t.Fatalf("%s slot %d: q0-multiple T=%g is not a multiple of fold=%g", name, i, T, fold)
			}
		}
	}
}
