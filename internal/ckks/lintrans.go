package ckks

import (
	"context"
	"fmt"
	"sort"
)

// LinearTransform is a plaintext matrix M applied homomorphically to the
// slot vector via the diagonal method: M*v = sum_d diag_d(M) ∘ rot_d(v).
// With the baby-step/giant-step split (d = g*bs + b) the rotation count
// drops from |diags| to ~2*sqrt(|diags|), and all baby rotations share one
// hoisted decomposition — the exact structure of the CoeffToSlot/SlotToCoeff
// homomorphic DFTs the bootstrap workload is made of.
type LinearTransform struct {
	level int
	scale float64
	bs    int // baby-step width (0 = naive, no BSGS)

	// diags[d] is the encoded d-th generalised diagonal; for BSGS the
	// giant-share diagonals are pre-rotated by -g*bs at encoding time.
	diags map[int]*Plaintext
	n     int // slots
}

// NewLinearTransform encodes the non-zero generalised diagonals of a matrix
// for application at the given level. diags[d][i] must equal M[i][(i+d)%n].
// bs is the baby-step width; 0 picks sqrt of the diagonal span.
func NewLinearTransform(enc *Encoder, diags map[int][]complex128, level int, scale float64, bs int) (*LinearTransform, error) {
	if len(diags) == 0 {
		return nil, fmt.Errorf("ckks: linear transform needs at least one diagonal")
	}
	n := enc.params.Slots()
	lt := &LinearTransform{level: level, scale: scale, diags: map[int]*Plaintext{}, n: n}

	maxD := 0
	for d, v := range diags {
		if d < 0 || d >= n {
			return nil, fmt.Errorf("ckks: diagonal index %d out of [0,%d): %w", d, n, ErrSlotCountMismatch)
		}
		if len(v) != n {
			return nil, fmt.Errorf("ckks: diagonal %d has %d entries, want %d: %w", d, len(v), n, ErrSlotCountMismatch)
		}
		if d > maxD {
			maxD = d
		}
	}
	if bs <= 0 {
		bs = 1
		for bs*bs < maxD+1 {
			bs <<= 1
		}
	}
	lt.bs = bs

	for d, v := range diags {
		g := d / bs
		rotBy := g * bs // the giant step this diagonal is applied under
		// Pre-rotate the diagonal by -rotBy so that
		// rot_{g*bs}(prerot(diag) ∘ rot_b(v))[i] = prerot[(i+g*bs)%n] *
		// v[(i+d)%n] = diag[i] * v[(i+d)%n].
		pre := make([]complex128, n)
		for i := range pre {
			pre[i] = v[((i-rotBy)%n+n)%n]
		}
		pt, err := enc.EncodeAtLevel(pre, level, scale)
		if err != nil {
			return nil, err
		}
		lt.diags[d] = pt
	}
	return lt, nil
}

// Rotations returns the rotation amounts the evaluator will need Galois keys
// for (baby steps and giant steps).
func (lt *LinearTransform) Rotations() []int {
	babies := map[int]bool{}
	giants := map[int]bool{}
	for d := range lt.diags {
		babies[d%lt.bs] = true
		if g := (d / lt.bs) * lt.bs; g != 0 {
			giants[g] = true
		}
	}
	var out []int
	for b := range babies {
		if b != 0 {
			out = append(out, b)
		}
	}
	for g := range giants {
		out = append(out, g)
	}
	sort.Ints(out)
	return out
}

// LinearTransform applies lt to ct: baby rotations are hoisted (one shared
// decomposition), inner sums are plaintext multiplications, giant rotations
// move each partial sum into place. The result carries scale ct.Scale*lt
// scale; the caller rescales.
func (ev *Evaluator) LinearTransform(ct *Ciphertext, lt *LinearTransform) (*Ciphertext, error) {
	return ev.linearTransform(nil, ct, lt)
}

// LinearTransformCtx is LinearTransform with cancellation: ctx is polled
// inside the hoisted baby rotations, per diagonal multiplication bucket and
// per giant step, so a deep homomorphic DFT abandons within a fraction of one
// key-switch of ctx being done.
func (ev *Evaluator) LinearTransformCtx(ctx context.Context, ct *Ciphertext, lt *LinearTransform) (*Ciphertext, error) {
	return ev.linearTransform(newCancelCheck(ctx), ct, lt)
}

func (ev *Evaluator) linearTransform(cc *cancelCheck, ct *Ciphertext, lt *LinearTransform) (*Ciphertext, error) {
	if ct.Level < lt.level {
		return nil, fmt.Errorf("ckks: ciphertext at level %d below transform level %d: %w", ct.Level, lt.level, ErrLevelMismatch)
	}
	if ct.Level > lt.level {
		ct = ev.DropLevel(ct, ct.Level-lt.level)
	}

	// Hoist the distinct baby rotations.
	babySet := map[int]bool{}
	for d := range lt.diags {
		babySet[d%lt.bs] = true
	}
	var babies []int
	for b := range babySet {
		babies = append(babies, b)
	}
	sort.Ints(babies)
	rotated, err := ev.rotateHoisted(cc, ct, babies, ev.Method())
	if err != nil {
		return nil, err
	}

	// Giant buckets: inner[g] = sum_b prerot(diag_{g*bs+b}) ∘ rot_b(ct).
	inner := map[int]*Ciphertext{}
	var giants []int
	for d, pt := range lt.diags {
		if err := cc.err("LinearTransform"); err != nil {
			return nil, err
		}
		b, g := d%lt.bs, (d/lt.bs)*lt.bs
		term, err := ev.MulPlain(rotated[b], pt)
		if err != nil {
			return nil, err
		}
		if acc, ok := inner[g]; ok {
			if inner[g], err = ev.Add(acc, term); err != nil {
				return nil, err
			}
		} else {
			inner[g] = term
			giants = append(giants, g)
		}
	}
	sort.Ints(giants)

	// Apply the giant rotations and accumulate.
	var out *Ciphertext
	for _, g := range giants {
		part := inner[g]
		if g != 0 {
			if part, err = ev.rotate(cc, part, g, ev.Method()); err != nil {
				return nil, err
			}
		}
		if out == nil {
			out = part
			continue
		}
		if out, err = ev.Add(out, part); err != nil {
			return nil, err
		}
	}
	return out, nil
}
