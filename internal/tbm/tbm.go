// Package tbm models the Tunable-Bit Multiplier at the heart of the FAST
// datapath (paper §4.2): a unit built from three 36-bit base multipliers and
// combiner logic that retires either two independent 36-bit products or one
// 60-bit product per cycle (a latency-critical Karatsuba/Booth variant that
// needs 3 instead of 4 base multiplications).
//
// The package provides both the functional model (bit-exact multiplication,
// used to validate the decomposition) and the analytic area/power model that
// reproduces the paper's Fig. 4 ALU scaling study and the TBM overhead
// claims.
package tbm

import (
	"math"
	"math/bits"
)

// base36Mask extracts the low 36 bits routed to multiplier B.
const base36Mask = (uint64(1) << 36) - 1

// Mul60 multiplies two operands of up to 60 bits using the TBM
// decomposition: x = x1*2^36 + x0, y = y1*2^36 + y0 and three base products
// x0*y0 (multiplier B), x1*y1 (multiplier A) and (x0+x1)*(y0+y1)
// (multiplier C), fused by the combiners. It returns the 120-bit product as
// (hi, lo). Operands wider than 60 bits panic, mirroring the hardware's
// input-buffer contract.
func Mul60(x, y uint64) (hi, lo uint64) {
	// INVARIANT: operands are residues of NewParameters-validated <=60-bit moduli.
	// A panic here is a repo-internal bug, never a reaction to caller input —
	// malformed inputs are rejected with typed errors at the public boundary.
	if bits.Len64(x) > 60 || bits.Len64(y) > 60 {
		panic("tbm: Mul60 operand exceeds 60 bits")
	}
	x0, x1 := x&base36Mask, x>>36 // x1 is 24 bits, zero-extended
	y0, y1 := y&base36Mask, y>>36

	// Three base multiplications (the 33% saving over the 4-product
	// schoolbook decomposition).
	pBhi, pBlo := bits.Mul64(x0, y0) // multiplier B: low segments, < 2^72
	pA := x1 * y1                    // multiplier A: high segments, < 2^48
	sx, sy := x0+x1, y0+y1           // 37-bit partial sums
	pChi, pClo := bits.Mul64(sx, sy) // multiplier C, < 2^74

	// Combiner: middle = pC - pA - pB = x0*y1 + x1*y0 (non-negative).
	mhi, mlo := sub128(pChi, pClo, 0, pA)
	mhi, mlo = sub128(mhi, mlo, pBhi, pBlo)

	// result = pA<<72 + middle<<36 + pB.
	hi, lo = pA<<8, uint64(0) // pA << 72
	var carry uint64
	lo, carry = bits.Add64(lo, mlo<<36, 0)
	hi, _ = bits.Add64(hi, mhi<<36|mlo>>28, carry)
	lo, carry = bits.Add64(lo, pBlo, 0)
	hi, _ = bits.Add64(hi, pBhi, carry)
	return hi, lo
}

func sub128(ah, al, bh, bl uint64) (h, l uint64) {
	l, borrow := bits.Sub64(al, bl, 0)
	h, _ = bits.Sub64(ah, bh, borrow)
	return h, l
}

// Mul36Pair retires two independent 36-bit multiplications in one TBM cycle
// (multiplier A takes the high segments, multiplier B the low segments).
// Operands wider than 36 bits panic.
func Mul36Pair(a0, b0, a1, b1 uint64) (p0hi, p0lo, p1hi, p1lo uint64) {
	for _, v := range [...]uint64{a0, b0, a1, b1} {
		// INVARIANT: operands are residues of NewParameters-validated <=36-bit moduli.
		// A panic here is a repo-internal bug, never a reaction to caller input —
		// malformed inputs are rejected with typed errors at the public boundary.
		if bits.Len64(v) > 36 {
			panic("tbm: Mul36Pair operand exceeds 36 bits")
		}
	}
	p0hi, p0lo = bits.Mul64(a0, b0)
	p1hi, p1lo = bits.Mul64(a1, b1)
	return
}

// --- Analytic area/power model (Fig. 4 and §4.2 claims) ---

// The paper's synthesis study shows multiplier area growing slightly faster
// than quadratically with word length (wiring and timing closure): the
// 60-bit modular multiplier costs 2.9x the area and 2.8x the power of the
// 36-bit one; the multiplier-only design 2.8x and 2.7x. Fitting
// (60/36)^e to those points gives the exponents below.
const (
	expAreaModMult  = 2.084 // (5/3)^2.084 = 2.90
	expPowerModMult = 2.016 // (5/3)^2.016 = 2.80
	expAreaMult     = 2.016 // 2.80
	expPowerMult    = 1.945 // 2.70
)

// ALUKind distinguishes the two ALU designs of the scaling study.
type ALUKind int

const (
	// MultOnly is the raw multiplier.
	MultOnly ALUKind = iota
	// ModMult is the full modular multiplier (multiplier + reduction).
	ModMult
)

func pow(base, exp float64) float64 { return math.Pow(base, exp) }

// RelativeArea returns the area of a `bitsW`-bit ALU relative to the 36-bit
// design of the same kind.
func RelativeArea(kind ALUKind, bitsW int) float64 {
	e := expAreaModMult
	if kind == MultOnly {
		e = expAreaMult
	}
	return pow(float64(bitsW)/36.0, e)
}

// RelativePower returns the power of a `bitsW`-bit ALU relative to the
// 36-bit design of the same kind.
func RelativePower(kind ALUKind, bitsW int) float64 {
	e := expPowerModMult
	if kind == MultOnly {
		e = expPowerMult
	}
	return pow(float64(bitsW)/36.0, e)
}

// TBM overhead constants from the paper (§4.2): relative to one conventional
// 60-bit multiplier, the TBM adds 28% area (for 2x parallelism at 36-bit)
// and needs 19% more control logic; building the same dual-mode capability
// from four 36-bit multipliers would cost 1.5x the area of the multiplier
// group; running 60-bit multiplies on 36-bit ALUs via the Booth method adds
// 27.5% area / 30% power versus a native 60-bit multiplier and halves
// parallelism.
const (
	AreaOverheadVs60     = 1.28
	ControlLogicOverhead = 1.19
	FourWayAreaFactor    = 1.5
	BoothAreaOverhead    = 1.275
	BoothPowerOverhead   = 1.30
	BoothParallelismLoss = 0.5
)

// TBMRelativeArea returns the area of one TBM relative to a single 36-bit
// modular multiplier: a conventional 60-bit multiplier's area times the TBM
// overhead.
func TBMRelativeArea() float64 {
	return RelativeArea(ModMult, 60) * AreaOverheadVs60
}

// Throughput36 returns the number of 36-bit products one unit retires per
// cycle: 2 for a TBM, 1 for a plain 36-bit or 60-bit multiplier.
func Throughput36(tbm bool) int {
	if tbm {
		return 2
	}
	return 1
}
