package tbm

import (
	"math/bits"
	"testing"
)

// FuzzMul60 cross-checks the TBM decomposition against the hardware-free
// 128-bit reference on fuzzer-chosen operands.
func FuzzMul60(f *testing.F) {
	f.Add(uint64(0), uint64(0))
	f.Add(uint64(1)<<60-1, uint64(1)<<60-1)
	f.Add(uint64(123456789), uint64(987654321))
	f.Fuzz(func(t *testing.T, x, y uint64) {
		x &= 1<<60 - 1
		y &= 1<<60 - 1
		gh, gl := Mul60(x, y)
		wh, wl := bits.Mul64(x, y)
		if gh != wh || gl != wl {
			t.Fatalf("Mul60(%d,%d) = (%d,%d), want (%d,%d)", x, y, gh, gl, wh, wl)
		}
	})
}
