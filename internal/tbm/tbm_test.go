package tbm

import (
	"math"
	"math/bits"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestMul60MatchesMul64(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 10000; i++ {
		x := rng.Uint64() & ((1 << 60) - 1)
		y := rng.Uint64() & ((1 << 60) - 1)
		whi, wlo := bits.Mul64(x, y)
		ghi, glo := Mul60(x, y)
		if ghi != whi || glo != wlo {
			t.Fatalf("Mul60(%d,%d) = (%d,%d), want (%d,%d)", x, y, ghi, glo, whi, wlo)
		}
	}
}

func TestMul60EdgeCases(t *testing.T) {
	max60 := uint64(1)<<60 - 1
	cases := [][2]uint64{
		{0, 0}, {1, 1}, {max60, max60}, {max60, 1}, {1 << 36, 1 << 36},
		{(1 << 36) - 1, (1 << 36) - 1}, {1 << 59, 2},
	}
	for _, c := range cases {
		whi, wlo := bits.Mul64(c[0], c[1])
		ghi, glo := Mul60(c[0], c[1])
		if ghi != whi || glo != wlo {
			t.Fatalf("Mul60(%d,%d) wrong", c[0], c[1])
		}
	}
}

func TestMul60Property(t *testing.T) {
	f := func(x, y uint64) bool {
		x &= (1 << 60) - 1
		y &= (1 << 60) - 1
		whi, wlo := bits.Mul64(x, y)
		ghi, glo := Mul60(x, y)
		return ghi == whi && glo == wlo
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 5000}); err != nil {
		t.Error(err)
	}
}

func TestMul60RejectsWideOperands(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic for 61-bit operand")
		}
	}()
	Mul60(1<<60, 1)
}

func TestMul36Pair(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for i := 0; i < 1000; i++ {
		a0 := rng.Uint64() & ((1 << 36) - 1)
		b0 := rng.Uint64() & ((1 << 36) - 1)
		a1 := rng.Uint64() & ((1 << 36) - 1)
		b1 := rng.Uint64() & ((1 << 36) - 1)
		h0, l0, h1, l1 := Mul36Pair(a0, b0, a1, b1)
		wh0, wl0 := bits.Mul64(a0, b0)
		wh1, wl1 := bits.Mul64(a1, b1)
		if h0 != wh0 || l0 != wl0 || h1 != wh1 || l1 != wl1 {
			t.Fatal("Mul36Pair mismatch")
		}
	}
	defer func() {
		if recover() == nil {
			t.Error("expected panic for 37-bit operand")
		}
	}()
	Mul36Pair(1<<36, 1, 1, 1)
}

// The scaling model must reproduce the paper's published points: 60-bit
// modular multiplier = 2.9x area / 2.8x power of 36-bit; multiplier-only =
// 2.8x / 2.7x.
func TestALUScalingAnchors(t *testing.T) {
	check := func(got, want, tol float64, what string) {
		t.Helper()
		if math.Abs(got-want) > tol {
			t.Errorf("%s = %.3f, want %.2f", what, got, want)
		}
	}
	check(RelativeArea(ModMult, 60), 2.9, 0.05, "modmult area 60b")
	check(RelativePower(ModMult, 60), 2.8, 0.05, "modmult power 60b")
	check(RelativeArea(MultOnly, 60), 2.8, 0.05, "mult area 60b")
	check(RelativePower(MultOnly, 60), 2.7, 0.05, "mult power 60b")
	check(RelativeArea(ModMult, 36), 1.0, 1e-9, "modmult area 36b")
	check(RelativePower(MultOnly, 36), 1.0, 1e-9, "mult power 36b")
}

func TestALUScalingMonotone(t *testing.T) {
	prevA, prevP := 0.0, 0.0
	for _, w := range []int{28, 32, 36, 48, 60, 64} {
		a, p := RelativeArea(ModMult, w), RelativePower(ModMult, w)
		if a <= prevA || p <= prevP {
			t.Fatalf("scaling not monotone at %d bits", w)
		}
		prevA, prevP = a, p
	}
}

func TestTBMOverheads(t *testing.T) {
	// One TBM = 2x 36-bit throughput at 1.28x the area of a 60-bit
	// multiplier; it must still be cheaper than two independent 60-bit
	// multipliers and than the 4x36 construction.
	tbmArea := TBMRelativeArea()
	if tbmArea >= 2*RelativeArea(ModMult, 60) {
		t.Error("TBM should cost less than two 60-bit multipliers")
	}
	fourWay := RelativeArea(ModMult, 60) * FourWayAreaFactor
	if tbmArea >= fourWay {
		t.Errorf("TBM area %.2f should be below the 4x36 construction %.2f", tbmArea, fourWay)
	}
	if Throughput36(true) != 2 || Throughput36(false) != 1 {
		t.Error("throughput model wrong")
	}
}
