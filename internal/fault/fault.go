// Package fault is the deterministic fault-injection framework of the FAST
// reproduction. It models the failure modes of the accelerator's
// evaluation-key movement path — transfer failures on the HBM channel,
// latency spikes, partial transfers detected by checksum mismatch, and
// on-chip pool pressure — as seedable, reproducible random events.
//
// Design rules (mirroring the internal/obs nil-safe pattern):
//
//   - A nil *Injector is the disabled state. Every query method is safe on a
//     nil receiver and returns the no-fault outcome after a single pointer
//     check, so wiring an injector through a hot path costs nothing when
//     fault injection is off.
//   - All randomness derives from one splitmix64 stream seeded by Plan.Seed.
//     For a fixed seed and a deterministic call sequence the injected fault
//     pattern — and therefore every simulator result built on it — is
//     bit-reproducible run to run.
//   - Faults model the *performance* surface only: a consumer retries,
//     refetches or degrades its schedule, but computed values never change.
//     The chaos suite (chaos_test.go at the repo root) asserts exactly that.
package fault

import (
	"fmt"
	"math"
	"sort"
	"strconv"
	"strings"
	"sync"

	"github.com/fastfhe/fast/internal/obs"
)

// Kind enumerates the modeled fault classes.
type Kind uint8

const (
	// TransferFailure aborts an evk transfer attempt mid-flight (the link
	// drops the batch stream); recovery is retry with exponential backoff.
	TransferFailure Kind = iota
	// LatencySpike multiplies one transfer's latency (HBM contention,
	// refresh storms); recovery is a per-transfer timeout that abandons the
	// slow attempt and retries.
	LatencySpike
	// Corruption is a partial/garbled transfer caught by the per-batch
	// checksum at the pool boundary; recovery is a full refetch.
	Corruption
	// PoolPressure is a transient capacity squeeze on the on-chip evk pool
	// (another tenant, scratch spill): resident keys are flushed and the
	// following requests thrash; sustained pressure triggers the Aether
	// degradation fallback.
	PoolPressure
	// DiskWrite fails a durability write (session snapshot, idempotency
	// journal append) with a synthetic I/O error — a full disk, a torn
	// write, a flaky volume. Recovery is retry-once then degrade: the
	// session stays resident-only (served, but not crash-safe) and the
	// failure is counted, never silently swallowed.
	DiskWrite
	// Restart models an abrupt process death (SIGKILL, OOM-kill, node
	// loss). The injector only schedules it — the soak harness
	// (cmd/fastload) queries RestartFires between requests and performs the
	// actual kill/restart cycle against the daemon under test.
	Restart

	numKinds
)

func (k Kind) String() string {
	switch k {
	case TransferFailure:
		return "transfer_failure"
	case LatencySpike:
		return "latency_spike"
	case Corruption:
		return "corruption"
	case PoolPressure:
		return "pool_pressure"
	case DiskWrite:
		return "disk_write"
	case Restart:
		return "restart"
	default:
		return fmt.Sprintf("Kind(%d)", uint8(k))
	}
}

// Plan is a declarative fault scenario: per-kind firing probabilities plus
// the magnitude knobs of each fault class. The zero Plan injects nothing.
type Plan struct {
	// Seed selects the deterministic random stream (0 is a valid seed).
	Seed uint64

	// TransferFailure is the per-attempt probability that an evk transfer
	// fails mid-flight and must be retried.
	TransferFailure float64
	// LatencySpike is the per-transfer probability of a latency spike.
	LatencySpike float64
	// SpikeFactor is the latency multiplier of a spike (default 8x).
	SpikeFactor float64
	// Corruption is the per-transfer probability of a checksum mismatch
	// forcing a refetch.
	Corruption float64
	// PoolPressure is the per-request probability of a pool-pressure event.
	PoolPressure float64
	// PressureFraction is the fraction of pool capacity that survives a
	// pressure event (default 0.5: half the resident keys are flushed).
	PressureFraction float64
	// DiskWrite is the per-attempt probability that a durability write
	// (snapshot, journal append) fails with a synthetic I/O error.
	DiskWrite float64
	// Restart is the per-query probability that the soak harness should
	// kill and restart the daemon under test at this point.
	Restart float64
}

// Enabled reports whether the plan can inject anything.
func (p Plan) Enabled() bool {
	return p.TransferFailure > 0 || p.LatencySpike > 0 || p.Corruption > 0 || p.PoolPressure > 0 ||
		p.DiskWrite > 0 || p.Restart > 0
}

// withDefaults resolves the magnitude knobs.
func (p Plan) withDefaults() Plan {
	if p.SpikeFactor <= 1 {
		p.SpikeFactor = 8
	}
	if p.PressureFraction <= 0 || p.PressureFraction >= 1 {
		p.PressureFraction = 0.5
	}
	return p
}

// Scenarios names the canonical chaos-suite plans, in the order the chaos
// harness runs them.
var scenarios = map[string]Plan{
	"none":     {},
	"transfer": {TransferFailure: 0.25},
	"spike":    {LatencySpike: 0.25, SpikeFactor: 8},
	"corrupt":  {Corruption: 0.2},
	"pressure": {PoolPressure: 0.15},
	"all": {
		TransferFailure: 0.12,
		LatencySpike:    0.12,
		SpikeFactor:     8,
		Corruption:      0.08,
		PoolPressure:    0.08,
	},
}

// ScenarioNames returns the canonical scenario names in sorted order.
func ScenarioNames() []string {
	out := make([]string, 0, len(scenarios))
	for n := range scenarios {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// Scenario returns a named canonical plan (seed 0; set Plan.Seed yourself).
func Scenario(name string) (Plan, error) {
	p, ok := scenarios[name]
	if !ok {
		return Plan{}, fmt.Errorf("fault: unknown scenario %q (have %s)", name, strings.Join(ScenarioNames(), ", "))
	}
	return p, nil
}

// ParsePlan parses a plan specification: either a canonical scenario name
// ("transfer", "spike", "corrupt", "pressure", "all", "none") or a
// comma-separated list of kind=probability terms with optional magnitudes:
//
//	"transfer=0.2,spike=0.1x12,corrupt=0.05,pressure=0.1/0.25"
//
// where "x12" sets the spike latency factor and "/0.25" the surviving pool
// fraction of a pressure event.
func ParsePlan(spec string) (Plan, error) {
	spec = strings.TrimSpace(spec)
	if spec == "" {
		return Plan{}, nil
	}
	if p, ok := scenarios[spec]; ok {
		return p, nil
	}
	var p Plan
	for _, term := range strings.Split(spec, ",") {
		term = strings.TrimSpace(term)
		if term == "" {
			continue
		}
		kv := strings.SplitN(term, "=", 2)
		if len(kv) != 2 {
			return Plan{}, fmt.Errorf("fault: malformed term %q (want kind=prob)", term)
		}
		key, val := strings.TrimSpace(kv[0]), strings.TrimSpace(kv[1])
		var magnitude float64
		hasMag := false
		if i := strings.IndexAny(val, "x/"); i >= 0 {
			m, err := strconv.ParseFloat(val[i+1:], 64)
			if err != nil {
				return Plan{}, fmt.Errorf("fault: malformed magnitude in %q: %v", term, err)
			}
			magnitude, hasMag = m, true
			val = val[:i]
		}
		prob, err := strconv.ParseFloat(val, 64)
		if err != nil {
			return Plan{}, fmt.Errorf("fault: malformed probability in %q: %v", term, err)
		}
		if prob < 0 || prob > 1 || math.IsNaN(prob) {
			return Plan{}, fmt.Errorf("fault: probability %g in %q out of [0,1]", prob, term)
		}
		switch key {
		case "transfer":
			p.TransferFailure = prob
		case "spike":
			p.LatencySpike = prob
			if hasMag {
				p.SpikeFactor = magnitude
			}
		case "corrupt":
			p.Corruption = prob
		case "pressure":
			p.PoolPressure = prob
			if hasMag {
				p.PressureFraction = magnitude
			}
		case "disk":
			p.DiskWrite = prob
		case "restart":
			p.Restart = prob
		default:
			return Plan{}, fmt.Errorf("fault: unknown fault kind %q in %q", key, term)
		}
	}
	return p, nil
}

// String renders the plan in ParsePlan syntax.
func (p Plan) String() string {
	if !p.Enabled() {
		return "none"
	}
	var terms []string
	if p.TransferFailure > 0 {
		terms = append(terms, fmt.Sprintf("transfer=%g", p.TransferFailure))
	}
	if p.LatencySpike > 0 {
		t := fmt.Sprintf("spike=%g", p.LatencySpike)
		if p.SpikeFactor > 1 {
			t += fmt.Sprintf("x%g", p.SpikeFactor)
		}
		terms = append(terms, t)
	}
	if p.Corruption > 0 {
		terms = append(terms, fmt.Sprintf("corrupt=%g", p.Corruption))
	}
	if p.PoolPressure > 0 {
		t := fmt.Sprintf("pressure=%g", p.PoolPressure)
		if p.PressureFraction > 0 {
			t += fmt.Sprintf("/%g", p.PressureFraction)
		}
		terms = append(terms, t)
	}
	if p.DiskWrite > 0 {
		terms = append(terms, fmt.Sprintf("disk=%g", p.DiskWrite))
	}
	if p.Restart > 0 {
		terms = append(terms, fmt.Sprintf("restart=%g", p.Restart))
	}
	return strings.Join(terms, ",")
}

// Injector draws fault decisions from the plan's deterministic stream. All
// query methods are nil-safe (a nil injector never fires) and goroutine-safe
// (one mutex around the stream; contention only exists when faults are on).
type Injector struct {
	plan Plan

	mu    sync.Mutex
	state uint64

	// Optional instruments (nil when unobserved): total injections and a
	// per-kind split.
	injected *obs.Counter
	byKind   [numKinds]*obs.Counter
}

// NewInjector compiles a plan into an injector. A plan that injects nothing
// returns nil — the disabled (single-pointer-check) state — so callers can
// unconditionally thread the result through.
func NewInjector(plan Plan) *Injector {
	if !plan.Enabled() {
		return nil
	}
	plan = plan.withDefaults()
	return &Injector{plan: plan, state: plan.Seed ^ 0x9e3779b97f4a7c15}
}

// SetObserver attaches observability instruments under the fault.* namespace:
// fault.injected counts every fired fault, fault.injected.<kind> splits by
// class. A nil observer detaches. Safe on a nil injector.
func (i *Injector) SetObserver(o *obs.Observer) {
	if i == nil {
		return
	}
	i.mu.Lock()
	defer i.mu.Unlock()
	if o == nil {
		i.injected = nil
		for k := range i.byKind {
			i.byKind[k] = nil
		}
		return
	}
	reg := o.Reg()
	i.injected = reg.Counter("fault.injected")
	for k := Kind(0); k < numKinds; k++ {
		i.byKind[k] = reg.Counter("fault.injected." + k.String())
	}
}

// Plan returns the compiled plan (zero on a nil injector).
func (i *Injector) Plan() Plan {
	if i == nil {
		return Plan{}
	}
	return i.plan
}

// Enabled reports whether the injector can fire.
func (i *Injector) Enabled() bool { return i != nil }

// next advances the splitmix64 stream. Caller holds i.mu.
func (i *Injector) next() uint64 {
	i.state += 0x9e3779b97f4a7c15
	z := i.state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// fire draws one uniform and compares against prob, recording the injection.
// Caller holds i.mu. The stream is always advanced, so the fault pattern of
// one kind does not depend on the probabilities of the others.
func (i *Injector) fire(prob float64, k Kind) bool {
	u := float64(i.next()>>11) / (1 << 53)
	if u >= prob {
		return false
	}
	if i.injected != nil {
		i.injected.Inc()
		i.byKind[k].Inc()
	}
	return true
}

// TransferFails reports whether this transfer attempt fails mid-flight.
func (i *Injector) TransferFails() bool {
	if i == nil {
		return false
	}
	i.mu.Lock()
	defer i.mu.Unlock()
	return i.fire(i.plan.TransferFailure, TransferFailure)
}

// Spike reports whether this transfer suffers a latency spike, and by what
// latency factor (>1 when ok).
func (i *Injector) Spike() (factor float64, ok bool) {
	if i == nil {
		return 1, false
	}
	i.mu.Lock()
	defer i.mu.Unlock()
	if !i.fire(i.plan.LatencySpike, LatencySpike) {
		return 1, false
	}
	return i.plan.SpikeFactor, true
}

// Corrupts reports whether this transfer arrives with a checksum mismatch.
func (i *Injector) Corrupts() bool {
	if i == nil {
		return false
	}
	i.mu.Lock()
	defer i.mu.Unlock()
	return i.fire(i.plan.Corruption, Corruption)
}

// DiskWriteFails reports whether this durability write attempt (snapshot,
// journal append) fails with a synthetic I/O error.
func (i *Injector) DiskWriteFails() bool {
	if i == nil {
		return false
	}
	i.mu.Lock()
	defer i.mu.Unlock()
	return i.fire(i.plan.DiskWrite, DiskWrite)
}

// RestartFires reports whether the harness should kill and restart the
// daemon under test at this point in the drive sequence.
func (i *Injector) RestartFires() bool {
	if i == nil {
		return false
	}
	i.mu.Lock()
	defer i.mu.Unlock()
	return i.fire(i.plan.Restart, Restart)
}

// PoolPressure reports whether a pool-pressure event hits this request, and
// the fraction of pool capacity that survives it (in (0,1) when ok).
func (i *Injector) PoolPressure() (surviving float64, ok bool) {
	if i == nil {
		return 1, false
	}
	i.mu.Lock()
	defer i.mu.Unlock()
	if !i.fire(i.plan.PoolPressure, PoolPressure) {
		return 1, false
	}
	return i.plan.PressureFraction, true
}
