package fault

import (
	"testing"

	"github.com/fastfhe/fast/internal/obs"
)

func TestNilInjectorNeverFires(t *testing.T) {
	var i *Injector
	if i.Enabled() {
		t.Fatal("nil injector must be disabled")
	}
	if i.TransferFails() || i.Corrupts() {
		t.Error("nil injector fired")
	}
	if f, ok := i.Spike(); ok || f != 1 {
		t.Errorf("nil Spike = %g,%v", f, ok)
	}
	if s, ok := i.PoolPressure(); ok || s != 1 {
		t.Errorf("nil PoolPressure = %g,%v", s, ok)
	}
	i.SetObserver(obs.New()) // must not panic
	if i.Plan().Enabled() {
		t.Error("nil injector plan must be zero")
	}
}

func TestEmptyPlanCompilesToNil(t *testing.T) {
	if NewInjector(Plan{Seed: 42}) != nil {
		t.Fatal("a plan that injects nothing must compile to the nil injector")
	}
}

func TestDeterministicStream(t *testing.T) {
	plan := Plan{Seed: 7, TransferFailure: 0.3, LatencySpike: 0.2, Corruption: 0.1, PoolPressure: 0.1}
	draw := func() []bool {
		i := NewInjector(plan)
		var out []bool
		for k := 0; k < 2000; k++ {
			out = append(out, i.TransferFails(), i.Corrupts())
			_, s := i.Spike()
			_, p := i.PoolPressure()
			out = append(out, s, p)
		}
		return out
	}
	a, b := draw(), draw()
	for k := range a {
		if a[k] != b[k] {
			t.Fatalf("draw %d differs between identically-seeded injectors", k)
		}
	}
	// A different seed must (overwhelmingly) give a different pattern.
	plan.Seed = 8
	c := NewInjector(plan)
	same := true
	for k := 0; k < 2000 && same; k++ {
		if c.TransferFails() != a[4*k] {
			same = false
		}
		c.Corrupts()
		c.Spike()
		c.PoolPressure()
	}
	if same {
		t.Error("different seeds produced an identical 2000-draw pattern")
	}
}

func TestFiringRates(t *testing.T) {
	i := NewInjector(Plan{Seed: 3, TransferFailure: 0.25})
	fired := 0
	const n = 20000
	for k := 0; k < n; k++ {
		if i.TransferFails() {
			fired++
		}
	}
	rate := float64(fired) / n
	if rate < 0.22 || rate > 0.28 {
		t.Errorf("transfer-failure rate %.3f, want ~0.25", rate)
	}
}

func TestObserverCountsInjections(t *testing.T) {
	o := obs.New()
	i := NewInjector(Plan{Seed: 1, Corruption: 1})
	i.SetObserver(o)
	for k := 0; k < 5; k++ {
		if !i.Corrupts() {
			t.Fatal("probability-1 corruption must fire")
		}
	}
	if got := o.Reg().Counter("fault.injected").Value(); got != 5 {
		t.Errorf("fault.injected = %d, want 5", got)
	}
	if got := o.Reg().Counter("fault.injected.corruption").Value(); got != 5 {
		t.Errorf("fault.injected.corruption = %d, want 5", got)
	}
	i.SetObserver(nil) // detach must not panic and must stop counting
	i.Corrupts()
	if got := o.Reg().Counter("fault.injected").Value(); got != 5 {
		t.Errorf("detached injector still counted: %d", got)
	}
}

func TestDefaultsResolved(t *testing.T) {
	i := NewInjector(Plan{LatencySpike: 1, PoolPressure: 1})
	if f, ok := i.Spike(); !ok || f != 8 {
		t.Errorf("default spike factor = %g,%v, want 8,true", f, ok)
	}
	if s, ok := i.PoolPressure(); !ok || s != 0.5 {
		t.Errorf("default surviving fraction = %g,%v, want 0.5,true", s, ok)
	}
}

func TestScenariosAndParse(t *testing.T) {
	for _, name := range ScenarioNames() {
		p, err := Scenario(name)
		if err != nil {
			t.Fatalf("Scenario(%q): %v", name, err)
		}
		if name == "none" && p.Enabled() {
			t.Error("scenario none must be empty")
		}
		if name != "none" && !p.Enabled() {
			t.Errorf("scenario %q is empty", name)
		}
		// Round-trip through the ParsePlan syntax.
		rt, err := ParsePlan(p.String())
		if err != nil {
			t.Fatalf("ParsePlan(%q): %v", p.String(), err)
		}
		if rt != p {
			t.Errorf("round-trip %q: got %+v, want %+v", name, rt, p)
		}
	}
	if _, err := Scenario("bogus"); err == nil {
		t.Error("unknown scenario must error")
	}

	p, err := ParsePlan("transfer=0.2,spike=0.1x12,corrupt=0.05,pressure=0.1/0.25")
	if err != nil {
		t.Fatal(err)
	}
	want := Plan{TransferFailure: 0.2, LatencySpike: 0.1, SpikeFactor: 12, Corruption: 0.05, PoolPressure: 0.1, PressureFraction: 0.25}
	if p != want {
		t.Errorf("parsed %+v, want %+v", p, want)
	}
	for _, bad := range []string{"bogus", "transfer=x", "transfer=2", "spike=0.1xq", "warp=0.1", "transfer=-1"} {
		if _, err := ParsePlan(bad); err == nil {
			t.Errorf("ParsePlan(%q) should fail", bad)
		}
	}
	if p, err := ParsePlan(""); err != nil || p.Enabled() {
		t.Errorf("empty spec = %+v, %v", p, err)
	}
}

func TestKindStrings(t *testing.T) {
	for k := Kind(0); k < numKinds; k++ {
		if s := k.String(); s == "" || s == "Kind(0)" {
			t.Errorf("Kind(%d).String() = %q", k, s)
		}
	}
	if Kind(200).String() != "Kind(200)" {
		t.Error("out-of-range kind string")
	}
}

func TestConcurrentDrawsRaceFree(t *testing.T) {
	i := NewInjector(Plan{Seed: 9, TransferFailure: 0.5, Corruption: 0.5})
	done := make(chan struct{})
	for g := 0; g < 4; g++ {
		go func() {
			defer close0(done)
			for k := 0; k < 1000; k++ {
				i.TransferFails()
				i.Corrupts()
				i.Spike()
				i.PoolPressure()
			}
		}()
	}
	for g := 0; g < 4; g++ {
		<-done
	}
}

// close0 signals one completion on a shared channel.
func close0(ch chan struct{}) { ch <- struct{}{} }
