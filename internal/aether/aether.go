// Package aether implements the offline half of the paper's dual-method
// management framework (§4.1.1): it receives the FHE operation flow of an
// application, builds the Methods Candidate Table (MCT) — per-ciphertext
// records of cost, delay, key size and key-transfer time for both
// key-switching methods under every feasible hoisting configuration — runs
// the three-step selection (capacity filter, transfer-hiding filter, minimal
// delay with minimal key size as tie-break), and emits the compact Aether
// configuration file the online Hemera manager consumes.
package aether

import (
	"encoding/json"
	"fmt"
	"io"

	"github.com/fastfhe/fast/internal/arch"
	"github.com/fastfhe/fast/internal/costmodel"
	"github.com/fastfhe/fast/internal/trace"
)

// Decision is the planner's verdict for one key-switching operation.
type Decision struct {
	OpIndex int              `json:"op"`
	Level   int              `json:"level"`
	Method  costmodel.Method `json:"method"`
	Hoist   int              `json:"hoist"`
}

// Fallback returns the lower-evk-footprint decision the runtime degrades to
// under sustained prefetch misses or pool thrash: the non-hoisted hybrid
// configuration, whose resident key set is the smallest of any candidate
// (hybrid keys are ~3.7x smaller than KLSS keys, §3.1, and hoisting h
// rotations needs h keys resident at once).
func Fallback(opIndex, level int) Decision {
	return Decision{OpIndex: opIndex, Level: level, Method: costmodel.Hybrid, Hoist: 1}
}

// ConfigFile is the Aether configuration file: the per-operation method and
// hoisting selections, indexed by ciphertext/op order. The paper measures it
// at about 1 KB; it serialises to compact JSON.
type ConfigFile struct {
	Workload  string     `json:"workload"`
	Decisions []Decision `json:"decisions"`

	byOp map[int]Decision
}

// DecisionFor returns the decision for an op index, defaulting to
// non-hoisted hybrid (the safe fallback the hardware always supports).
func (c *ConfigFile) DecisionFor(op int) Decision {
	if c == nil {
		return Decision{OpIndex: op, Method: costmodel.Hybrid, Hoist: 1}
	}
	if c.byOp == nil {
		c.byOp = make(map[int]Decision, len(c.Decisions))
		for _, d := range c.Decisions {
			c.byOp[d.OpIndex] = d
		}
	}
	if d, ok := c.byOp[op]; ok {
		return d
	}
	return Decision{OpIndex: op, Method: costmodel.Hybrid, Hoist: 1}
}

// Save writes the configuration file as JSON.
func (c *ConfigFile) Save(w io.Writer) error {
	enc := json.NewEncoder(w)
	return enc.Encode(c)
}

// Load reads a configuration file.
func Load(r io.Reader) (*ConfigFile, error) {
	var c ConfigFile
	if err := json.NewDecoder(r).Decode(&c); err != nil {
		return nil, fmt.Errorf("aether: decoding config: %w", err)
	}
	return &c, nil
}

// MCTEntry is one row of the Methods Candidate Table (paper Fig. 5(a)):
// index [0] is the hybrid method, [1] KLSS.
type MCTEntry struct {
	OpIndex int
	CtID    int
	Level   int
	Hoist   int // hoisting configuration this row evaluates
	Times   int // times the ciphertext executes under this configuration

	Cost         [2]float64 // modular operations
	Delay        [2]float64 // compute cycles on the target accelerator
	KeySize      [2]int64   // evaluation-key bytes
	TransferTime [2]float64 // key transfer cycles at the config's bandwidth
}

// Analyzer is the offline preprocessing tool.
type Analyzer struct {
	params costmodel.Params
	cfg    arch.Config
}

// NewAnalyzer builds an analyzer for a parameter set and target accelerator.
func NewAnalyzer(params costmodel.Params, cfg arch.Config) (*Analyzer, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	return &Analyzer{params: params, cfg: cfg}, nil
}

// kernelBits returns the native width of a method's kernels.
func kernelBits(m costmodel.Method) int {
	if m == costmodel.KLSS {
		return 60
	}
	return 36
}

// delayCycles estimates the compute cycles of a breakdown on the target.
func (a *Analyzer) delayCycles(m costmodel.Method, bd costmodel.Breakdown) float64 {
	return bd.Total() / a.cfg.EquivMuls36PerCycle(kernelBits(m))
}

// hoistCandidates enumerates the hoisting configurations for a group of
// maxH rotations: every power-of-two split up to the full group when
// hoisting is enabled, otherwise only the non-hoisted configuration.
func (a *Analyzer) hoistCandidates(maxH int) []int {
	if !a.cfg.EnableHoisting || maxH <= 1 {
		return []int{1}
	}
	var out []int
	for h := 1; h < maxH; h *= 2 {
		out = append(out, h)
	}
	return append(out, maxH)
}

// analyzeOp builds the MCT rows for one key-switching op.
func (a *Analyzer) analyzeOp(idx int, op trace.Op) []MCTEntry {
	var rows []MCTEntry
	for _, h := range a.hoistCandidates(op.HoistCount()) {
		groups := (op.HoistCount() + h - 1) / h // groups of h rotations
		e := MCTEntry{OpIndex: idx, CtID: op.CtID, Level: op.Level, Hoist: h, Times: groups}
		for mi, m := range []costmodel.Method{costmodel.Hybrid, costmodel.KLSS} {
			bd := a.params.KeySwitch(m, op.Level, h).Scale(float64(groups))
			e.Cost[mi] = bd.Total()
			e.Delay[mi] = a.delayCycles(m, bd)
			// A hoisted group needs h distinct rotation keys resident.
			e.KeySize[mi] = int64(h) * a.params.EvkBytes(m, op.Level)
			e.TransferTime[mi] = float64(e.KeySize[mi]) / a.cfg.BytesPerCycle()
		}
		rows = append(rows, e)
	}
	return rows
}

// Analyze runs the full workflow on a trace: locate HMult/HRot ops, build
// the MCT, apply the three selection steps and produce the configuration
// file. It also returns the MCT for inspection.
func (a *Analyzer) Analyze(tr *trace.Trace) (*ConfigFile, []MCTEntry, error) {
	if err := tr.Validate(); err != nil {
		return nil, nil, err
	}
	cfgFile := &ConfigFile{Workload: tr.Name}
	var mct []MCTEntry

	reservedBytes := int64(a.cfg.ReservedEvkMB * (1 << 20))
	prevExec := 0.0 // execution cycles of the preceding key-switch
	// Keys already scheduled for transfer earlier in the trace: thanks to
	// the minimum-key-switching storage scheme (§6.1), a key moves from HBM
	// once and later uses hit the Hemera pool, so only first uses count
	// against the transfer-hiding filter.
	seen := map[string]bool{}
	keyUses := map[string]int{}
	opKeys := func(op trace.Op, m costmodel.Method) []string {
		if op.Kind == trace.HMult {
			return []string{op.KeyID(m.String(), 0)}
		}
		ids := make([]string, 0, len(op.Rotations))
		for _, r := range op.Rotations {
			ids = append(ids, op.KeyID(m.String(), r))
		}
		return ids
	}

	for _, op := range tr.Ops {
		if !op.Kind.NeedsKeySwitch() {
			continue
		}
		for _, m := range []costmodel.Method{costmodel.Hybrid, costmodel.KLSS} {
			for _, id := range opKeys(op, m) {
				keyUses[id]++
			}
		}
	}

	for idx, op := range tr.Ops {
		if !op.Kind.NeedsKeySwitch() {
			continue
		}
		rows := a.analyzeOp(idx, op)
		mct = append(mct, rows...)

		type cand struct {
			method costmodel.Method
			hoist  int
			delay  float64
			size   int64
			trans  float64
		}
		var cands []cand
		for _, row := range rows {
			methods := []costmodel.Method{costmodel.Hybrid}
			if a.cfg.EnableKLSS {
				methods = append(methods, costmodel.KLSS)
			}
			for _, m := range methods {
				trans := 0.0
				for _, id := range opKeys(op, m) {
					if seen[id] {
						continue
					}
					// EKG halves the moved bytes (only part b travels);
					// the first transfer amortises over every future use
					// of the key, which the offline analysis can count.
					uses := float64(keyUses[id])
					if uses < 1 {
						uses = 1
					}
					trans += float64(a.params.EvkBytes(m, op.Level)) / 2 / a.cfg.BytesPerCycle() / uses
				}
				cands = append(cands, cand{m, row.Hoist, row.Delay[m], row.KeySize[m], trans})
			}
		}

		// STEP-1: drop configurations whose key set exceeds the reserved
		// on-chip key storage.
		filtered := cands[:0]
		for _, c := range cands {
			if c.size <= reservedBytes {
				filtered = append(filtered, c)
			}
		}
		if len(filtered) == 0 {
			// Nothing fits: fall back to the smallest-key configuration.
			best := cands[0]
			for _, c := range cands[1:] {
				if c.size < best.size {
					best = c
				}
			}
			filtered = append(filtered, best)
		}

		// STEP-2: prefer configurations whose key transfer hides behind the
		// preceding key-switch execution (the paper's transfer-latency
		// filter); keep everything if none qualifies.
		hidden := make([]cand, 0, len(filtered))
		for _, c := range filtered {
			if c.trans <= prevExec || prevExec == 0 {
				hidden = append(hidden, c)
			}
		}
		if len(hidden) > 0 {
			filtered = hidden
		}

		// STEP-3: minimal effective execution time — compute overlapped with
		// whatever key traffic double-buffering can hide — breaking ties
		// (within 5%) towards the smaller key set.
		eff := func(c cand) float64 {
			if c.trans > c.delay {
				return c.trans
			}
			return c.delay
		}
		best := filtered[0]
		for _, c := range filtered[1:] {
			switch {
			case eff(c) < eff(best)*0.95:
				best = c
			case eff(c) < eff(best)*1.05 && c.size < best.size:
				best = c
			}
		}
		cfgFile.Decisions = append(cfgFile.Decisions, Decision{
			OpIndex: idx, Level: op.Level, Method: best.method, Hoist: best.hoist,
		})
		for _, id := range opKeys(op, best.method) {
			seen[id] = true
		}
		prevExec = best.delay
	}
	return cfgFile, mct, nil
}
