package aether

import (
	"bytes"
	"strings"
	"testing"

	"github.com/fastfhe/fast/internal/arch"
	"github.com/fastfhe/fast/internal/costmodel"
	"github.com/fastfhe/fast/internal/trace"
	"github.com/fastfhe/fast/internal/workloads"
)

func analyzer(t *testing.T, cfg arch.Config) *Analyzer {
	t.Helper()
	a, err := NewAnalyzer(costmodel.SetII(), cfg)
	if err != nil {
		t.Fatalf("NewAnalyzer: %v", err)
	}
	return a
}

func TestNewAnalyzerValidatesConfig(t *testing.T) {
	bad := arch.FAST()
	bad.Clusters = 0
	if _, err := NewAnalyzer(costmodel.SetII(), bad); err == nil {
		t.Error("expected error for invalid config")
	}
}

func TestAnalyzeBootstrapSelectsBothMethods(t *testing.T) {
	a := analyzer(t, arch.FAST())
	tr := workloads.Bootstrap(workloads.DefaultProfile())
	plan, mct, err := a.Analyze(tr)
	if err != nil {
		t.Fatalf("Analyze: %v", err)
	}
	wantOps := 0
	for _, op := range tr.Ops {
		if op.Kind.NeedsKeySwitch() {
			wantOps++
		}
	}
	if len(plan.Decisions) != wantOps {
		t.Fatalf("decisions = %d, want one per key-switch op (%d)", len(plan.Decisions), wantOps)
	}
	if len(mct) == 0 {
		t.Fatal("empty MCT")
	}
	var hybrid, klss, hoisted int
	for _, d := range plan.Decisions {
		switch d.Method {
		case costmodel.Hybrid:
			hybrid++
		case costmodel.KLSS:
			klss++
		}
		if d.Hoist > 1 {
			hoisted++
		}
	}
	if hybrid == 0 || klss == 0 {
		t.Errorf("Aether should mix methods on FAST: hybrid=%d klss=%d", hybrid, klss)
	}
	if hoisted == 0 {
		t.Error("Aether should hoist the baby-step rotation groups")
	}
}

func TestAnalyzeRespectsFeatureFlags(t *testing.T) {
	cfg := arch.FAST()
	cfg.EnableKLSS = false
	cfg.EnableHoisting = false
	a := analyzer(t, cfg)
	tr := workloads.Bootstrap(workloads.DefaultProfile())
	plan, _, err := a.Analyze(tr)
	if err != nil {
		t.Fatalf("Analyze: %v", err)
	}
	for _, d := range plan.Decisions {
		if d.Method != costmodel.Hybrid {
			t.Fatal("KLSS selected despite being disabled")
		}
		if d.Hoist != 1 {
			t.Fatal("hoisting selected despite being disabled")
		}
	}
}

// STEP-1: a configuration whose keys exceed the reserved capacity must not
// be selected even if its compute cost is lower.
func TestCapacityFilter(t *testing.T) {
	cfg := arch.FAST()
	cfg.OnChipMB = 40
	cfg.ReservedEvkMB = 30 // KLSS keys never fit at high levels
	a := analyzer(t, cfg)
	tr := &trace.Trace{Name: "hi-level-mults"}
	for i := 0; i < 4; i++ {
		tr.Append(trace.Op{Kind: trace.HMult, Level: 30})
	}
	plan, _, err := a.Analyze(tr)
	if err != nil {
		t.Fatalf("Analyze: %v", err)
	}
	for _, d := range plan.Decisions {
		if d.Method == costmodel.KLSS {
			t.Fatal("KLSS key cannot fit in 30 MB at level 30; STEP-1 should filter it")
		}
	}
}

func TestMCTContents(t *testing.T) {
	a := analyzer(t, arch.FAST())
	tr := &trace.Trace{Name: "one-rot"}
	tr.Append(trace.Op{Kind: trace.HRot, Level: 20, Hoist: 4, Rotations: []int{1, 2, 3, 4}})
	_, mct, err := a.Analyze(tr)
	if err != nil {
		t.Fatalf("Analyze: %v", err)
	}
	// Hoist candidates for a group of 4: 1, 2, 4.
	if len(mct) != 3 {
		t.Fatalf("MCT rows = %d, want 3", len(mct))
	}
	for _, row := range mct {
		if row.Level != 20 {
			t.Errorf("row level %d", row.Level)
		}
		for mi := range row.Cost {
			if row.Cost[mi] <= 0 || row.Delay[mi] <= 0 || row.KeySize[mi] <= 0 || row.TransferTime[mi] <= 0 {
				t.Errorf("row %+v has non-positive metrics", row)
			}
		}
	}
	// Hoisted rows need more key space but less compute.
	if mct[0].Hoist != 1 || mct[2].Hoist != 4 {
		t.Fatalf("unexpected hoist ordering: %d, %d", mct[0].Hoist, mct[2].Hoist)
	}
	if mct[2].KeySize[0] <= mct[0].KeySize[0] {
		t.Error("hoisting must increase the resident key requirement")
	}
	if mct[2].Cost[0] >= mct[0].Cost[0]*4 {
		t.Error("hoisting must reduce the total cost of the group")
	}
}

func TestConfigFileRoundTrip(t *testing.T) {
	a := analyzer(t, arch.FAST())
	tr := workloads.Bootstrap(workloads.DefaultProfile())
	plan, _, err := a.Analyze(tr)
	if err != nil {
		t.Fatalf("Analyze: %v", err)
	}
	var buf bytes.Buffer
	if err := plan.Save(&buf); err != nil {
		t.Fatalf("Save: %v", err)
	}
	// The paper quotes ~1 KB for the configuration file; ours stays small.
	if buf.Len() > 16<<10 {
		t.Errorf("config file unexpectedly large: %d bytes", buf.Len())
	}
	back, err := Load(&buf)
	if err != nil {
		t.Fatalf("Load: %v", err)
	}
	if back.Workload != plan.Workload || len(back.Decisions) != len(plan.Decisions) {
		t.Fatal("round trip lost data")
	}
	for i := range plan.Decisions {
		if back.Decisions[i] != plan.Decisions[i] {
			t.Fatalf("decision %d differs", i)
		}
	}
}

func TestLoadRejectsGarbage(t *testing.T) {
	if _, err := Load(strings.NewReader("not json")); err == nil {
		t.Error("expected decode error")
	}
}

func TestDecisionForDefaults(t *testing.T) {
	var nilFile *ConfigFile
	d := nilFile.DecisionFor(7)
	if d.Method != costmodel.Hybrid || d.Hoist != 1 {
		t.Error("nil config should default to non-hoisted hybrid")
	}
	c := &ConfigFile{Decisions: []Decision{{OpIndex: 3, Method: costmodel.KLSS, Hoist: 2}}}
	if got := c.DecisionFor(3); got.Method != costmodel.KLSS || got.Hoist != 2 {
		t.Error("lookup failed")
	}
	if got := c.DecisionFor(4); got.Method != costmodel.Hybrid {
		t.Error("missing op should default to hybrid")
	}
}

func TestHoistCandidates(t *testing.T) {
	a := analyzer(t, arch.FAST())
	if got := a.hoistCandidates(8); len(got) != 4 || got[3] != 8 {
		t.Errorf("hoistCandidates(8) = %v", got)
	}
	if got := a.hoistCandidates(6); got[len(got)-1] != 6 {
		t.Errorf("hoistCandidates(6) should end with the full group, got %v", got)
	}
	cfg := arch.FAST()
	cfg.EnableHoisting = false
	b := analyzer(t, cfg)
	if got := b.hoistCandidates(8); len(got) != 1 || got[0] != 1 {
		t.Errorf("disabled hoisting should yield [1], got %v", got)
	}
}
