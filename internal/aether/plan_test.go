package aether

import (
	"testing"

	"github.com/fastfhe/fast/internal/costmodel"
)

func TestPlanSitesPinsHybridWithoutKLSS(t *testing.T) {
	p := costmodel.SetI()
	out := PlanSites(p, []Site{{Op: 7, Level: p.L, Hoist: 1, KLSS: false}})
	if len(out) != 1 || out[0].OpIndex != 7 || out[0].Method != costmodel.Hybrid {
		t.Fatalf("got %+v, want hybrid at op 7", out)
	}
}

func TestPlanSitesPicksCheaperMethod(t *testing.T) {
	p := costmodel.SetI()
	for _, s := range []Site{
		{Op: 0, Level: p.L, Hoist: 1, KLSS: true},
		{Op: 1, Level: 1, Hoist: 1, KLSS: true},
		{Op: 2, Level: p.L, Hoist: 8, KLSS: true},
	} {
		d := PlanSites(p, []Site{s})[0]
		hy := p.KeySwitch(costmodel.Hybrid, s.Level, s.Hoist).Total()
		kl := p.KeySwitch(costmodel.KLSS, s.Level, s.Hoist).Total()
		wantKLSS := kl < hy*0.95
		if (d.Method == costmodel.KLSS) != wantKLSS {
			t.Fatalf("site %+v: got %v (hy=%g kl=%g)", s, d.Method, hy, kl)
		}
		if d.Hoist != s.Hoist || d.Level != s.Level {
			t.Fatalf("site %+v: echo mismatch %+v", s, d)
		}
	}
}

func TestPlanSitesDeterministic(t *testing.T) {
	p := costmodel.SetI()
	sites := []Site{
		{Op: 0, Level: p.L, Hoist: 1, KLSS: true},
		{Op: 1, Level: p.L / 2, Hoist: 3, KLSS: true},
		{Op: 2, Level: 0, Hoist: 1, KLSS: false},
	}
	a := PlanSites(p, sites)
	b := PlanSites(p, sites)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("non-deterministic verdict at %d: %+v vs %+v", i, a[i], b[i])
		}
	}
}

func TestPlanSitesClampsInputs(t *testing.T) {
	p := costmodel.SetI()
	out := PlanSites(p, []Site{{Op: 0, Level: -3, Hoist: 0, KLSS: true}})
	if out[0].Level != 0 || out[0].Hoist != 1 {
		t.Fatalf("clamping: got %+v", out[0])
	}
}
