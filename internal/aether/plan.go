package aether

import "github.com/fastfhe/fast/internal/costmodel"

// Site describes one key-switching site of a program DAG for the online
// whole-program planner: a DAG node (or hoist group of rotations sharing one
// decomposition) that needs a hybrid-vs-KLSS verdict.
type Site struct {
	// Op is the caller's node identifier, echoed into Decision.OpIndex.
	Op int
	// Level is the operand level entering the site.
	Level int
	// Hoist is the number of rotations sharing the site's decomposition
	// (1 for multiplications, conjugations and lone rotations).
	Hoist int
	// KLSS reports whether the 60-bit key chain is available at this site;
	// when false the site is pinned to hybrid regardless of cost.
	KLSS bool
}

// PlanSites is the online counterpart of Analyzer.Analyze for functional
// serving: given the whole program's key-switch sites at their propagated
// levels and hoist widths, it picks the method minimizing modeled modular
// operations per site. Ties within 5% break toward hybrid — the same
// minimal-key-size tie-break as the offline three-step selection (hybrid
// evaluation keys are ~3.7x smaller than KLSS keys, §3.1), which matters
// because the functional runtime keeps every resident key in the modeled
// Hemera pool.
//
// The decision is deterministic in (params, sites): two identical programs
// planned against the same context always agree, which the differential
// equivalence suite relies on to replay planned executions step by step.
func PlanSites(p costmodel.Params, sites []Site) []Decision {
	out := make([]Decision, len(sites))
	for i, s := range sites {
		level := s.Level
		if level < 0 {
			level = 0
		}
		if level > p.L {
			level = p.L
		}
		hoist := s.Hoist
		if hoist < 1 {
			hoist = 1
		}
		d := Decision{OpIndex: s.Op, Level: level, Method: costmodel.Hybrid, Hoist: hoist}
		if s.KLSS {
			hy := p.KeySwitch(costmodel.Hybrid, level, hoist).Total()
			kl := p.KeySwitch(costmodel.KLSS, level, hoist).Total()
			if kl < hy*0.95 {
				d.Method = costmodel.KLSS
			}
		}
		out[i] = d
	}
	return out
}
