package costmodel

// Plan-level unit estimation for the serving layer. The admission controller
// (internal/serve) prices every request in 36-bit modular-operation
// equivalents; a planned program is a set of key-switch sites (each possibly
// amortizing one decomposition over a hoisted rotation group) plus a number
// of element-wise passes. These helpers keep that arithmetic in one place so
// cmd/fastd and the public planner agree on admission weights.

// ForContext returns Set-I parameters resized to a live functional context:
// its ring-degree exponent and maximum level replace the paper's hardware
// point. Zero values fall back to the laptop-sized defaults the daemon used
// historically (LogN 11, L 5).
func ForContext(logN, level int) Params {
	p := SetI()
	p.LogN = logN
	if p.LogN == 0 {
		p.LogN = 11
	}
	p.L = level
	if p.L == 0 {
		p.L = 5
	}
	return p
}

// PassUnits is the unit weight of one element-wise pass over a ciphertext
// (add, rescale, plaintext ops, encode/encrypt/decrypt): one touch per
// coefficient per limb at the full depth.
func (p Params) PassUnits() float64 {
	return float64(p.N()) * float64(p.L+1)
}

// SiteCost describes one key-switch site of a planned program: the method the
// planner chose, the level the operands enter at, and the number of rotations
// sharing the site's decomposition (1 for multiplications, conjugations and
// lone rotations).
type SiteCost struct {
	Method Method
	Level  int
	Hoist  int
}

// KeySwitchUnits prices one site: the full ModUp/KeyMult/ModDown breakdown
// with the one-time decomposition amortized across the hoisted group.
func (p Params) KeySwitchUnits(s SiteCost) float64 {
	level := s.Level
	if level < 0 {
		level = 0
	}
	if level > p.L {
		level = p.L
	}
	hoist := s.Hoist
	if hoist < 1 {
		hoist = 1
	}
	return p.KeySwitch(s.Method, level, hoist).Total()
}

// PlanUnits sums a planned program's admission weight: every key-switch site
// at its planned level and hoist width, plus `passes` element-wise passes.
func (p Params) PlanUnits(sites []SiteCost, passes int) float64 {
	total := float64(passes) * p.PassUnits()
	for _, s := range sites {
		total += p.KeySwitchUnits(s)
	}
	return total
}
