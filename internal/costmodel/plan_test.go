package costmodel

import "testing"

func TestForContextResizes(t *testing.T) {
	p := ForContext(11, 5)
	if p.LogN != 11 || p.L != 5 {
		t.Fatalf("got LogN=%d L=%d, want 11/5", p.LogN, p.L)
	}
	// Zero values fall back to the daemon's historical laptop defaults.
	p = ForContext(0, 0)
	if p.LogN != 11 || p.L != 5 {
		t.Fatalf("fallback: got LogN=%d L=%d, want 11/5", p.LogN, p.L)
	}
}

func TestPassUnits(t *testing.T) {
	p := ForContext(11, 5)
	if got, want := p.PassUnits(), float64(1<<11)*6; got != want {
		t.Fatalf("PassUnits = %g, want %g", got, want)
	}
}

func TestKeySwitchUnitsClamps(t *testing.T) {
	p := ForContext(11, 5)
	atTop := p.KeySwitchUnits(SiteCost{Method: Hybrid, Level: 5, Hoist: 1})
	clamped := p.KeySwitchUnits(SiteCost{Method: Hybrid, Level: 99, Hoist: 0})
	if atTop != clamped {
		t.Fatalf("clamping: %g != %g", atTop, clamped)
	}
	if atTop <= 0 {
		t.Fatal("key-switch units must be positive")
	}
	// Hoisting amortizes the decomposition: per-site total for a hoist-4
	// group must be below 4 independent switches.
	solo := p.KeySwitchUnits(SiteCost{Method: Hybrid, Level: 5, Hoist: 1})
	hoisted := p.KeySwitchUnits(SiteCost{Method: Hybrid, Level: 5, Hoist: 4})
	if hoisted >= 4*solo {
		t.Fatalf("hoist-4 group (%g) not cheaper than 4 solo switches (%g)", hoisted, 4*solo)
	}
}

func TestPlanUnitsSums(t *testing.T) {
	p := ForContext(11, 5)
	sites := []SiteCost{
		{Method: Hybrid, Level: 5, Hoist: 1},
		{Method: KLSS, Level: 4, Hoist: 2},
	}
	want := p.KeySwitchUnits(sites[0]) + p.KeySwitchUnits(sites[1]) + 3*p.PassUnits()
	if got := p.PlanUnits(sites, 3); got != want {
		t.Fatalf("PlanUnits = %g, want %g", got, want)
	}
}
