package costmodel

import (
	"math"
	"testing"
)

func meanRatio(p Params, loLevel, hiLevel, hoist int) float64 {
	sum := 0.0
	for l := loLevel; l <= hiLevel; l++ {
		sum += p.QuantitativeLine(l, hoist)
	}
	return sum / float64(hiLevel-loLevel+1)
}

// The calibration anchors from the paper's motivation study (§3.1).
func TestQuantitativeLineBands(t *testing.T) {
	p := SetII()

	// Levels 25-35: KLSS reduces modular multiplications by ~15.2%, i.e.
	// hybrid/klss ≈ 1.18.
	if r := meanRatio(p, 25, 35, 1); r < 1.12 || r > 1.25 {
		t.Errorf("levels 25-35 mean ratio %.3f, want ~1.18 (KLSS ~15%% cheaper)", r)
	}
	// Levels 5-12: hybrid reduces modular multiplications by ~23.5%, i.e.
	// hybrid/klss well below 1.
	if r := meanRatio(p, 5, 12, 1); r < 0.70 || r > 0.88 {
		t.Errorf("levels 5-12 mean ratio %.3f, want ~0.77-0.80 (hybrid cheaper)", r)
	}
	// Levels 21-24: mixed region where KLSS may require more computation.
	low := math.Inf(1)
	for l := 21; l <= 24; l++ {
		if r := p.QuantitativeLine(l, 1); r < low {
			low = r
		}
	}
	if low >= 1.0 {
		t.Errorf("levels 21-24 should contain a point where hybrid wins, min ratio %.3f", low)
	}
}

// Hoisting makes KeyMult dominant, eroding the KLSS advantage (Fig. 3(a)).
func TestHoistingErodesKLSSAdvantage(t *testing.T) {
	p := SetII()
	for _, level := range []int{30, 35} {
		r1 := p.QuantitativeLine(level, 1)
		r6 := p.QuantitativeLine(level, 6)
		if r6 >= r1 {
			t.Errorf("level %d: ratio should fall with hoisting, h1=%.3f h6=%.3f", level, r1, r6)
		}
	}
}

// Hoisting must strictly reduce the per-rotation cost of both methods.
func TestHoistingAmortisesDecomposition(t *testing.T) {
	p := SetII()
	for _, m := range []Method{Hybrid, KLSS} {
		for _, level := range []int{10, 20, 35} {
			single := p.KeySwitch(m, level, 1).Total()
			six := p.KeySwitch(m, level, 6).Total()
			if six >= 6*single {
				t.Errorf("%v level %d: hoisted 6 rotations (%.0f) should cost less than 6 singles (%.0f)",
					m, level, six, 6*single)
			}
			if six <= single {
				t.Errorf("%v level %d: six rotations must cost more than one", m, level)
			}
		}
	}
}

func TestKernelNarrative(t *testing.T) {
	p := SetII()
	// At high levels KLSS spends fewer ops on NTT and more on KeyMult and
	// BConv than hybrid — the Fig. 2(b)/11(b) narrative.
	hy := p.HybridKeySwitch(35, 1)
	kl := p.KLSSKeySwitch(35, 1)
	if kl.NTT >= hy.NTT {
		t.Errorf("level 35: KLSS NTT %.0f should be below hybrid %.0f", kl.NTT, hy.NTT)
	}
	if kl.KeyMult <= hy.KeyMult {
		t.Errorf("level 35: KLSS KeyMult %.0f should exceed hybrid %.0f", kl.KeyMult, hy.KeyMult)
	}
	// At low levels KLSS loses its NTT edge (more limb groups).
	hyLo := p.HybridKeySwitch(5, 1)
	klLo := p.KLSSKeySwitch(5, 1)
	if klLo.NTT < 0.8*hyLo.NTT {
		t.Errorf("level 5: KLSS NTT %.0f should not be far below hybrid %.0f", klLo.NTT, hyLo.NTT)
	}
}

func TestBreakdownArithmetic(t *testing.T) {
	b := Breakdown{1, 2, 3, 4}
	if b.Total() != 10 {
		t.Fatalf("Total = %g", b.Total())
	}
	s := b.Add(b)
	if s.Total() != 20 || s.NTT != 2 {
		t.Fatalf("Add wrong: %+v", s)
	}
	if b.Scale(2).Total() != 20 {
		t.Fatal("Scale wrong")
	}
}

// Sizes must land near the paper's published working-set numbers (Fig. 3(b),
// §5.6): ct ≈ 19.7 MB, hybrid evk ≈ 79.3 MB, KLSS evk ≈ 295.3 MB at level 35.
func TestWorkingSetAnchors(t *testing.T) {
	p := SetII()
	const mb = 1 << 20
	ct := float64(p.CiphertextBytes(35)) / mb
	if ct < 17 || ct > 23 {
		t.Errorf("ciphertext size %.1f MB, want ~19.7-21 MB", ct)
	}
	hy := float64(p.EvkBytes(Hybrid, 35)) / mb
	if hy < 70 || hy > 92 {
		t.Errorf("hybrid evk %.1f MB, want ~79 MB", hy)
	}
	kl := float64(p.EvkBytes(KLSS, 35)) / mb
	if kl < 240 || kl > 330 {
		t.Errorf("KLSS evk %.1f MB, want ~295 MB", kl)
	}
	if kl/hy < 2.8 || kl/hy > 4.5 {
		t.Errorf("KLSS/hybrid evk ratio %.2f, want ~3.7", kl/hy)
	}
	ws := p.WorkingSetBytes(KLSS, 35, 4, 1)
	if ws != 4*p.CiphertextBytes(35)+p.EvkBytes(KLSS, 35) {
		t.Error("WorkingSetBytes composition wrong")
	}
	if p.WorkingSetBytes(Hybrid, 35, 1, 4) <= p.WorkingSetBytes(Hybrid, 35, 1, 1) {
		t.Error("hoisting must increase the working set")
	}
}

// Sizes grow monotonically with level.
func TestSizesMonotone(t *testing.T) {
	p := SetII()
	for l := 1; l <= 35; l++ {
		if p.CiphertextBytes(l) <= p.CiphertextBytes(l-1) {
			t.Fatalf("ct size not monotone at level %d", l)
		}
		for _, m := range []Method{Hybrid, KLSS} {
			if p.EvkBytes(m, l) < p.EvkBytes(m, l-1) {
				t.Fatalf("%v evk size decreasing at level %d", m, l)
			}
		}
	}
}

// The hybrid formulas must be internally consistent with the dataflow: the
// decomposition cost (hoist-independent part) equals the h=2 minus h=1 delta
// subtracted from the single-shot cost.
func TestHybridHoistDecomposition(t *testing.T) {
	p := SetI()
	for _, level := range []int{7, 19, 35} {
		h1 := p.HybridKeySwitch(level, 1).Total()
		h2 := p.HybridKeySwitch(level, 2).Total()
		h3 := p.HybridKeySwitch(level, 3).Total()
		// Per-rotation increments are constant.
		if math.Abs((h2-h1)-(h3-h2)) > 1e-6*h1 {
			t.Fatalf("level %d: hoist increments not linear", level)
		}
	}
}

func TestMethodString(t *testing.T) {
	if Hybrid.String() != "hybrid" || KLSS.String() != "klss" {
		t.Fatal("method names wrong")
	}
	if Method(7).String() == "" {
		t.Fatal("unknown method should print something")
	}
}

func TestKeySwitchDispatch(t *testing.T) {
	p := SetII()
	if p.KeySwitch(Hybrid, 20, 1) != p.HybridKeySwitch(20, 1) {
		t.Fatal("dispatch hybrid wrong")
	}
	if p.KeySwitch(KLSS, 20, 1) != p.KLSSKeySwitch(20, 1) {
		t.Fatal("dispatch klss wrong")
	}
	// hoist < 1 is clamped.
	if p.KeySwitch(Hybrid, 20, 0) != p.KeySwitch(Hybrid, 20, 1) {
		t.Fatal("hoist clamp wrong")
	}
}
