// Package costmodel quantifies the modular-operation workload and memory
// working set of the two key-switching methods the FAST accelerator
// schedules (paper §3.1, Fig. 2, Fig. 3 and Fig. 11(b)).
//
// Counting convention: every figure is reported in 36-bit modular-operation
// equivalents. A 60-bit modular multiplication counts as 2 because the
// tunable-bit multiplier (TBM) retires either two 36-bit products or one
// 60-bit product per cycle, so a 60-bit op occupies twice the datapath of a
// 36-bit op. This makes the hybrid (36-bit) and KLSS (60-bit) kernels
// directly comparable in accelerator-time terms.
//
// The hybrid formulas are the standard ModUp → KeyMult → ModDown counts and
// can be derived line-by-line from the dataflow in internal/ckks. The KLSS
// formulas follow the double-decomposition dataflow of Fig. 1(b) with the
// structural constants (digit-container size, output-group count, fixed
// pipeline overhead) calibrated so the model reproduces the paper's measured
// behaviour: KLSS saves ~15% of modular operations at levels 25–35, the
// hybrid method saves ~21–24% at levels 5–12, levels 21–24 are mixed, and
// hoisting erodes the KLSS advantage because KeyMult becomes dominant.
package costmodel

import "fmt"

// Method identifies a key-switching method. It deliberately mirrors (but
// does not depend on) the ckks package's enum so the performance layer can
// be used without instantiating the functional scheme.
type Method int

const (
	// Hybrid is the 36-bit ModUp/KeyMult/ModDown method.
	Hybrid Method = iota
	// KLSS is the 60-bit double-decomposition method.
	KLSS
)

func (m Method) String() string {
	switch m {
	case Hybrid:
		return "hybrid"
	case KLSS:
		return "klss"
	default:
		return fmt.Sprintf("Method(%d)", int(m))
	}
}

// op-weight of a 60-bit modular operation in 36-bit equivalents (one TBM =
// two 36-bit ops or one 60-bit op per cycle).
const weight60 = 2.0

// Params describes a parameter set for workload analysis (paper Table 2).
type Params struct {
	LogN  int // ring degree exponent
	L     int // maximum level (limbs = level+1)
	QBits int // ciphertext limb width (36)

	// Hybrid method.
	Alpha int // limbs per decomposition group (Set-I: 12)

	// KLSS method.
	AlphaKLSS  int // limbs per input group (Set-II: 5)
	AlphaTilde int // 60-bit limbs of the KeyMult accumulator basis
	TBits      int // auxiliary limb width (60)

	// klssFixedNTT models the fixed per-ciphertext pipeline overhead of the
	// double decomposition (twiddle reload + container alignment), in
	// NTT-limb equivalents. Calibrated; see package comment.
	klssFixedNTT float64
}

// SetI returns the paper's Set-I parameters (hybrid-only: N=2^16, L=35,
// alpha=12, 36-bit limbs).
func SetI() Params {
	return Params{LogN: 16, L: 35, QBits: 36, Alpha: 12, AlphaKLSS: 5, AlphaTilde: 7, TBits: 60, klssFixedNTT: 20}
}

// SetII returns the paper's Set-II parameters (hybrid+KLSS). The hybrid side
// of every comparison keeps the Set-I grouping (α=12), exactly as the
// paper's Fig. 2 compares "hybrid with Set-I" against "KLSS with Set-II";
// the Set-II α=5 is the KLSS input group size, stored in AlphaKLSS.
func SetII() Params {
	return SetI()
}

// N returns the ring degree.
func (p Params) N() int { return 1 << uint(p.LogN) }

// nttLimb returns the 36-bit-equivalent modmul count of one N-point NTT pass
// over a single limb: (N/2)·logN butterflies, one mul each.
func (p Params) nttLimb() float64 {
	return float64(p.N()) / 2 * float64(p.LogN)
}

// Breakdown is a per-kernel modular-multiplication count (36-bit
// equivalents), matching the kernel classes of Fig. 2(b): NTT, BConv,
// KeyMult (evk inner products) and Other (element-wise scaling etc.).
type Breakdown struct {
	NTT     float64
	BConv   float64
	KeyMult float64
	Other   float64
}

// Total sums all kernels.
func (b Breakdown) Total() float64 { return b.NTT + b.BConv + b.KeyMult + b.Other }

// Add returns the kernel-wise sum.
func (b Breakdown) Add(o Breakdown) Breakdown {
	return Breakdown{b.NTT + o.NTT, b.BConv + o.BConv, b.KeyMult + o.KeyMult, b.Other + o.Other}
}

// Scale returns the breakdown multiplied by f.
func (b Breakdown) Scale(f float64) Breakdown {
	return Breakdown{b.NTT * f, b.BConv * f, b.KeyMult * f, b.Other * f}
}

// betaHybrid returns the hybrid group count at a level.
func (p Params) betaHybrid(level int) int {
	return (level + p.Alpha) / p.Alpha
}

// betaKLSS returns the KLSS input group count at a level.
func (p Params) betaKLSS(level int) int {
	return (level + p.AlphaKLSS) / p.AlphaKLSS
}

// betaTildeKLSS returns the KLSS output-group (key-column) count at a level.
// Calibrated as ceil((k+3)/8) for k = level+1 limbs.
func (p Params) betaTildeKLSS(level int) int {
	k := level + 1
	return (k + 3 + 7) / 8
}

// HybridKeySwitch returns the modular-operation breakdown of performing
// `hoist` rotations (or one multiplication when hoist==1) that share a
// single decomposition at the given level. hoist=1 is the non-hoisted case.
func (p Params) HybridKeySwitch(level, hoist int) Breakdown {
	if hoist < 1 {
		hoist = 1
	}
	k := level + 1
	kp := p.Alpha
	beta := p.betaHybrid(level)
	n := float64(p.N())
	h := float64(hoist)

	var oneNTT, oneBC float64
	for j := 0; j < beta; j++ {
		size := p.Alpha
		if (j+1)*p.Alpha > k {
			size = k - j*p.Alpha
		}
		oneNTT += float64(k + kp - size)            // forward NTTs of the extended limbs
		oneBC += float64(size+size*(k+kp-size)) * n // scaling + base-table product
	}
	oneNTT += float64(k) // input INTT

	rotNTT := float64(2*(k+kp) + 2*k)   // INTT before ModDown + forward after
	rotBC := float64(2*(kp+kp*k)) * n   // ModDown conversions
	rotKM := float64(2*beta*(k+kp)) * n // gadget inner product
	rotOther := float64(2*k) * n        // ModDown final scaling
	return Breakdown{
		NTT:     (oneNTT + h*rotNTT) * p.nttLimb(),
		BConv:   oneBC + h*rotBC,
		KeyMult: h * rotKM,
		Other:   h * rotOther,
	}
}

// KLSSKeySwitch is the KLSS counterpart of HybridKeySwitch: one double
// decomposition shared by `hoist` rotations. 60-bit kernels are weighted by
// weight60 (see package comment).
func (p Params) KLSSKeySwitch(level, hoist int) Breakdown {
	if hoist < 1 {
		hoist = 1
	}
	k := level + 1
	beta := p.betaKLSS(level)
	btil := p.betaTildeKLSS(level)
	at := p.AlphaTilde
	aK := p.AlphaKLSS
	n := float64(p.N())
	h := float64(hoist)

	// One-time: input INTT (36-bit) + per-group forward NTTs over the
	// 60-bit digit containers + digit conversion + fixed pipeline overhead.
	oneNTT := float64(k)*p.nttLimb() +
		float64(beta*at)*p.nttLimb()*weight60 +
		p.klssFixedNTT*p.nttLimb()*weight60
	oneBC := float64(beta*(aK+aK*at)) * n

	// Per rotation: accumulator INTT (60-bit) + final forward NTT (36-bit),
	// the β×β̃ key inner product at 60 bits, and the recovery conversion
	// back to the Q basis.
	rotNTT := float64(2*at)*p.nttLimb()*weight60 + float64(2*k)*p.nttLimb()
	rotKM := float64(2*beta*btil*at) * n * weight60
	rotBC := float64(2*(at+at*k)) * n
	rotOther := float64(2*k) * n
	return Breakdown{
		NTT:     oneNTT + h*rotNTT,
		BConv:   oneBC + h*rotBC,
		KeyMult: h * rotKM,
		Other:   h * rotOther,
	}
}

// KeySwitch dispatches on the method.
func (p Params) KeySwitch(m Method, level, hoist int) Breakdown {
	if m == KLSS {
		return p.KLSSKeySwitch(level, hoist)
	}
	return p.HybridKeySwitch(level, hoist)
}

// QuantitativeLine returns hybrid_ops/klss_ops at a level (paper Fig. 2(a)):
// values above 1 mean KLSS is the more efficient method.
func (p Params) QuantitativeLine(level, hoist int) float64 {
	return p.HybridKeySwitch(level, hoist).Total() / p.KLSSKeySwitch(level, hoist).Total()
}

// --- Working-set sizes (paper Fig. 3(b), §5.6) ---

// CiphertextBytes returns the packed size of one ciphertext at a level: two
// polynomials of level+1 limbs at QBits bits per coefficient.
func (p Params) CiphertextBytes(level int) int64 {
	return int64(2*(level+1)) * int64(p.N()) * int64(p.QBits) / 8
}

// EvkBytes returns the packed size of one evaluation key at a level.
func (p Params) EvkBytes(m Method, level int) int64 {
	k := level + 1
	switch m {
	case KLSS:
		beta := p.betaKLSS(level)
		btil := p.betaTildeKLSS(level)
		return int64(2*beta*btil*p.AlphaTilde) * int64(p.N()) * int64(p.TBits) / 8
	default:
		beta := p.betaHybrid(level)
		return int64(2*beta*(k+p.Alpha)) * int64(p.N()) * int64(p.QBits) / 8
	}
}

// WorkingSetBytes returns the on-chip working set of a key-switching phase:
// numCT resident ciphertexts plus `hoist` distinct evaluation keys (hoisted
// rotations each need their own rotation key).
func (p Params) WorkingSetBytes(m Method, level, numCT, hoist int) int64 {
	if hoist < 1 {
		hoist = 1
	}
	return int64(numCT)*p.CiphertextBytes(level) + int64(hoist)*p.EvkBytes(m, level)
}
