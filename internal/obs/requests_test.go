package obs

import (
	"bufio"
	"bytes"
	"encoding/json"
	"log/slog"
	"net/http/httptest"
	"sync"
	"testing"
	"time"
)

// TestRequestNilSafety: every accessor and mutator must be a no-op on a nil
// *Request and a nil *RequestTable, matching the package's disabled-is-free
// convention.
func TestRequestNilSafety(t *testing.T) {
	var r *Request
	r.SetSession("s")
	r.SetPhase(PhaseQueued)
	r.SetUnits(1)
	r.SetBatch(1)
	r.SetFingerprint("fp")
	r.SetDeadline(time.Now())
	r.SetOutcome("ok")
	if r.Session() != "" || r.Outcome() != "" || r.Units() != 0 || r.Batch() != 0 ||
		r.Fingerprint() != "" || r.QueueWait() != 0 {
		t.Fatal("nil *Request accessors must return zero values")
	}
	var tab *RequestTable
	tab.Begin(&Request{ID: "x"})
	tab.End(&Request{ID: "x"})
	if tab.Len() != 0 || tab.Snapshot() != nil {
		t.Fatal("nil *RequestTable must be inert")
	}
}

// TestRequestLifecycle walks a request through the phase machine and checks
// the derived queue-wait plus the first-write-wins outcome rule.
func TestRequestLifecycle(t *testing.T) {
	r := &Request{ID: "r1", Op: "POST /v1/x", Start: time.Now()}
	r.SetPhase(PhaseReceived)
	if r.QueueWait() != 0 {
		t.Fatal("queue wait before queueing must be 0")
	}
	r.SetPhase(PhaseQueued)
	time.Sleep(time.Millisecond)
	r.SetPhase(PhaseExecuting)
	if qw := r.QueueWait(); qw <= 0 {
		t.Fatalf("queue wait = %v, want > 0 after queued->executing", qw)
	}
	qw := r.QueueWait()
	// A later batched stamp must not move the recorded execution start.
	r.SetPhase(PhaseBatched)
	if r.QueueWait() != qw {
		t.Fatal("execAt must be stamped once")
	}
	r.SetOutcome("deadline")
	r.SetOutcome("error") // loses: first non-empty write wins
	if got := r.Outcome(); got != "deadline" {
		t.Fatalf("outcome = %q, want deadline", got)
	}
}

// TestRequestTableSnapshotAndHandler: the table tracks the in-flight set,
// keeps its gauge in sync, orders snapshots oldest-first and serves the
// documented {"count", "requests"} JSON shape.
func TestRequestTableSnapshotAndHandler(t *testing.T) {
	reg := New().Reg()
	tab := NewRequestTable(reg)
	old := &Request{ID: "old", Op: "GET /a", Start: time.Now().Add(-time.Second)}
	young := &Request{ID: "young", Op: "GET /b", Start: time.Now()}
	young.SetSession("sess-1")
	young.SetUnits(2.5)
	young.SetDeadline(time.Now().Add(time.Minute))
	tab.Begin(old)
	tab.Begin(young)
	if tab.Len() != 2 {
		t.Fatalf("Len = %d, want 2", tab.Len())
	}
	if g := reg.Gauge("http.requests.inflight").Value(); g != 2 {
		t.Fatalf("inflight gauge = %d, want 2", g)
	}
	snap := tab.Snapshot()
	if len(snap) != 2 || snap[0].ID != "old" || snap[1].ID != "young" {
		t.Fatalf("snapshot order = %+v, want oldest first", snap)
	}
	if snap[1].Session != "sess-1" || snap[1].Units != 2.5 || snap[1].DeadlineRemainingMs <= 0 {
		t.Fatalf("annotations missing from snapshot row: %+v", snap[1])
	}

	rec := httptest.NewRecorder()
	tab.Handler().ServeHTTP(rec, httptest.NewRequest("GET", "/debug/requests", nil))
	var body struct {
		Count    int               `json:"count"`
		Requests []RequestSnapshot `json:"requests"`
	}
	if err := json.Unmarshal(rec.Body.Bytes(), &body); err != nil {
		t.Fatalf("handler body %q: %v", rec.Body.String(), err)
	}
	if body.Count != 2 || len(body.Requests) != 2 {
		t.Fatalf("handler = %+v, want count 2", body)
	}

	tab.End(old)
	tab.End(young)
	if tab.Len() != 0 || reg.Gauge("http.requests.inflight").Value() != 0 {
		t.Fatal("table must drain to empty and zero the gauge")
	}
}

// TestTracerLiveDropCounter pins the satellite contract: overflow is not
// only summarised at export time, it increments a live registry counter the
// moment events are lost.
func TestTracerLiveDropCounter(t *testing.T) {
	o := NewTracing(8) // tiny buffer; NewTracing wires obs.trace.dropped
	tr := o.Tr()
	for i := 0; i < 20; i++ {
		tr.Complete("ev", "test", 0, 0, float64(i), 1, nil)
	}
	if got := tr.Dropped(); got != 12 {
		t.Fatalf("Dropped = %d, want 12", got)
	}
	if got := o.Reg().Counter("obs.trace.dropped").Value(); got != 12 {
		t.Fatalf("obs.trace.dropped counter = %d, want 12", got)
	}
	// The counter also appears in the snapshot operators actually scrape.
	if got := o.Snapshot().Counters["obs.trace.dropped"]; got != 12 {
		t.Fatalf("snapshot counter = %d, want 12", got)
	}
}

// TestOnScrapeHook: scrape hooks run at every Snapshot, so derived gauges
// (the serving layer's latency quantiles) refresh lazily per scrape.
func TestOnScrapeHook(t *testing.T) {
	reg := New().Reg()
	h := reg.Histogram("lat")
	p99 := reg.Gauge("lat.p99")
	reg.OnScrape(func() { p99.Set(int64(h.Quantile(0.99))) })
	for i := int64(1); i <= 100; i++ {
		h.Observe(i * 10)
	}
	snap := reg.Snapshot()
	got := snap.Gauges["lat.p99"]
	if got < 500 || got > 2000 {
		t.Fatalf("lat.p99 after scrape = %d, want within factor 2 of 1000", got)
	}
}

// TestNewLoggerJSONLines: the logger emits one parseable JSON object per
// record with the standard slog fields, even under concurrent writers.
func TestNewLoggerJSONLines(t *testing.T) {
	var buf bytes.Buffer
	lg := NewLogger(&buf, slog.LevelInfo)
	lg.Debug("dropped", "k", "v") // below level: must not appear
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func(n int) {
			defer wg.Done()
			lg.Info("request", slog.Int("worker", n), slog.String("id", "abc"))
		}(i)
	}
	wg.Wait()
	lines := 0
	sc := bufio.NewScanner(&buf)
	for sc.Scan() {
		var rec map[string]any
		if err := json.Unmarshal(sc.Bytes(), &rec); err != nil {
			t.Fatalf("non-JSON log line %q: %v", sc.Text(), err)
		}
		for _, k := range []string{"time", "level", "msg", "worker", "id"} {
			if _, ok := rec[k]; !ok {
				t.Fatalf("log record missing %q: %v", k, rec)
			}
		}
		if rec["msg"] != "request" {
			t.Fatalf("msg = %v, want request", rec["msg"])
		}
		lines++
	}
	if lines != 8 {
		t.Fatalf("got %d log lines, want 8 (debug suppressed)", lines)
	}
}

// TestParseLogLevel maps flag strings onto slog levels with an info default.
func TestParseLogLevel(t *testing.T) {
	cases := map[string]slog.Level{
		"debug": slog.LevelDebug,
		"info":  slog.LevelInfo,
		"warn":  slog.LevelWarn,
		"error": slog.LevelError,
		"":      slog.LevelInfo,
		"bogus": slog.LevelInfo,
	}
	for in, want := range cases {
		if got := ParseLogLevel(in); got != want {
			t.Fatalf("ParseLogLevel(%q) = %v, want %v", in, got, want)
		}
	}
}
