package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"strings"
	"sync"
	"time"
)

// Event is one structured trace event in the Chrome trace-event model
// (https://docs.google.com/document/d/1CvAClvFfyA5R-PhYUmn5OOQtYMH4h6I0nSsKchNAySU):
// "X" complete events carry a start timestamp and duration, "i" instants a
// timestamp only, "M" metadata events name processes/threads. Timestamps are
// microseconds on the tracer's timebase.
type Event struct {
	Name string         `json:"name"`
	Cat  string         `json:"cat,omitempty"`
	Ph   string         `json:"ph"`
	TS   float64        `json:"ts"`
	Dur  float64        `json:"dur,omitempty"`
	PID  int            `json:"pid"`
	TID  int            `json:"tid"`
	Args map[string]any `json:"args,omitempty"`
}

// Tracer is a bounded, race-safe event recorder. Events past the capacity
// are dropped (never silently: the drop count is reported by Dropped and in
// the export's summary). A nil *Tracer is a valid disabled tracer: every
// method is a no-op and StartSpan returns an inert span, so instrumented
// code needs no feature flag.
//
// The tracer favours simplicity over peak throughput: Emit takes a mutex.
// One uncontended lock per recorded event (~20 ns) is noise against the
// microsecond-to-millisecond spans this repository records (homomorphic ops,
// key-switch phases, simulated kernels); the metrics registry, not the
// tracer, is the instrument for per-limb-scale hot paths.
type Tracer struct {
	t0 time.Time

	mu      sync.Mutex
	events  []Event
	cap     int
	dropped uint64
	dropC   *Counter // live overflow counter (nil = export-summary only)
}

// NewTracer returns a tracer buffering up to capacity events
// (capacity <= 0 selects a 64k-event default).
func NewTracer(capacity int) *Tracer {
	if capacity <= 0 {
		capacity = 1 << 16
	}
	return &Tracer{t0: time.Now(), events: make([]Event, 0, capacity), cap: capacity}
}

// Enabled reports whether the tracer records events.
func (t *Tracer) Enabled() bool { return t != nil }

// SetDropCounter attaches a live counter incremented on every event lost to
// the capacity bound, so buffer overflow is visible on /metrics without
// pulling a trace export. Safe on nil; a nil counter detaches.
func (t *Tracer) SetDropCounter(c *Counter) {
	if t == nil {
		return
	}
	t.mu.Lock()
	t.dropC = c
	t.mu.Unlock()
}

// Now returns the current timestamp on the tracer's timebase in microseconds.
func (t *Tracer) Now() float64 {
	if t == nil {
		return 0
	}
	return float64(time.Since(t.t0)) / float64(time.Microsecond)
}

// Emit records one event verbatim (dropped when the buffer is full).
func (t *Tracer) Emit(ev Event) {
	if t == nil {
		return
	}
	t.mu.Lock()
	var dropC *Counter
	if len(t.events) >= t.cap {
		t.dropped++
		dropC = t.dropC
	} else {
		t.events = append(t.events, ev)
	}
	t.mu.Unlock()
	dropC.Inc() // nil-safe; incremented outside the event lock
}

// Complete records an "X" complete event with an explicit timebase — the
// cycle simulator uses this to lay out synthetic (simulated-time) tracks.
func (t *Tracer) Complete(name, cat string, pid, tid int, tsMicros, durMicros float64, args map[string]any) {
	t.Emit(Event{Name: name, Cat: cat, Ph: "X", TS: tsMicros, Dur: durMicros, PID: pid, TID: tid, Args: args})
}

// CompleteSince records an "X" complete event for work that started at the
// wall-clock time start and finishes now — the pattern instrumented code
// uses when it measured start with a plain time.Now() guard instead of
// carrying a Span.
func (t *Tracer) CompleteSince(name, cat string, pid, tid int, start time.Time, args map[string]any) {
	if t == nil {
		return
	}
	end := time.Now()
	ts := float64(start.Sub(t.t0)) / float64(time.Microsecond)
	dur := float64(end.Sub(start)) / float64(time.Microsecond)
	t.Emit(Event{Name: name, Cat: cat, Ph: "X", TS: ts, Dur: dur, PID: pid, TID: tid, Args: args})
}

// Instant records an "i" instant event at the current wall-clock timestamp.
func (t *Tracer) Instant(name, cat string, pid, tid int, args map[string]any) {
	if t == nil {
		return
	}
	t.Emit(Event{Name: name, Cat: cat, Ph: "i", TS: t.Now(), PID: pid, TID: tid, Args: args})
}

// SetProcessName emits the metadata event naming a pid's track group.
func (t *Tracer) SetProcessName(pid int, name string) {
	t.Emit(Event{Name: "process_name", Ph: "M", PID: pid, Args: map[string]any{"name": name}})
}

// SetThreadName emits the metadata event naming a (pid, tid) track.
func (t *Tracer) SetThreadName(pid, tid int, name string) {
	t.Emit(Event{Name: "thread_name", Ph: "M", PID: pid, TID: tid, Args: map[string]any{"name": name}})
}

// Span is an in-flight wall-clock span started by StartSpan. The zero Span
// (and any span from a nil tracer) is inert: End is a no-op.
type Span struct {
	tr       *Tracer
	name     string
	cat      string
	pid, tid int
	start    time.Time
}

// StartSpan opens a wall-clock span on track (pid, tid). Close it with End
// or EndArgs. On a nil tracer this performs no work (not even a clock read).
func (t *Tracer) StartSpan(name, cat string, pid, tid int) Span {
	if t == nil {
		return Span{}
	}
	return Span{tr: t, name: name, cat: cat, pid: pid, tid: tid, start: time.Now()}
}

// End closes the span, recording a complete event.
func (s Span) End() { s.EndArgs(nil) }

// EndArgs closes the span with attached arguments.
func (s Span) EndArgs(args map[string]any) {
	if s.tr == nil {
		return
	}
	end := time.Now()
	ts := float64(s.start.Sub(s.tr.t0)) / float64(time.Microsecond)
	dur := float64(end.Sub(s.start)) / float64(time.Microsecond)
	s.tr.Emit(Event{Name: s.name, Cat: s.cat, Ph: "X", TS: ts, Dur: dur, PID: s.pid, TID: s.tid, Args: args})
}

// Len returns the number of buffered events.
func (t *Tracer) Len() int {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return len(t.events)
}

// Dropped returns the number of events lost to the capacity bound.
func (t *Tracer) Dropped() uint64 {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.dropped
}

// Events returns a copy of the buffered events.
func (t *Tracer) Events() []Event {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make([]Event, len(t.events))
	copy(out, t.events)
	return out
}

// chromeTraceFile is the JSON object format of the trace-event spec
// (preferred over the bare array format because it carries metadata).
type chromeTraceFile struct {
	TraceEvents     []Event        `json:"traceEvents"`
	DisplayTimeUnit string         `json:"displayTimeUnit"`
	Metadata        map[string]any `json:"metadata,omitempty"`
}

// WriteChromeTrace writes the buffered events as Chrome trace-event JSON,
// loadable in chrome://tracing or https://ui.perfetto.dev. Safe on nil
// (writes an empty trace).
func (t *Tracer) WriteChromeTrace(w io.Writer) error {
	file := chromeTraceFile{TraceEvents: t.Events(), DisplayTimeUnit: "ms"}
	if d := t.Dropped(); d > 0 {
		file.Metadata = map[string]any{"dropped_events": d}
	}
	if file.TraceEvents == nil {
		file.TraceEvents = []Event{}
	}
	enc := json.NewEncoder(w)
	return enc.Encode(file)
}

// Summary returns a human-readable per-(cat, name) digest of the buffered
// complete events: count, total and mean duration, sorted by total duration
// descending. Safe on nil.
func (t *Tracer) Summary() string {
	type agg struct {
		key   string
		count int
		total float64
	}
	byKey := map[string]*agg{}
	for _, ev := range t.Events() {
		if ev.Ph != "X" {
			continue
		}
		key := ev.Cat + "/" + ev.Name
		a, ok := byKey[key]
		if !ok {
			a = &agg{key: key}
			byKey[key] = a
		}
		a.count++
		a.total += ev.Dur
	}
	rows := make([]*agg, 0, len(byKey))
	for _, a := range byKey {
		rows = append(rows, a)
	}
	sort.Slice(rows, func(i, j int) bool {
		if rows[i].total != rows[j].total {
			return rows[i].total > rows[j].total
		}
		return rows[i].key < rows[j].key
	})
	var b strings.Builder
	fmt.Fprintf(&b, "trace: %d events buffered, %d dropped\n", t.Len(), t.Dropped())
	for _, a := range rows {
		fmt.Fprintf(&b, "  %-40s %8d spans  %12.1f us total  %10.2f us mean\n",
			a.key, a.count, a.total, a.total/float64(a.count))
	}
	return b.String()
}
