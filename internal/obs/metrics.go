// Package obs is the observability substrate of the FAST reproduction: a
// lock-cheap metrics registry (atomic counters, gauges and fixed log-scale
// histograms), a structured span/event tracer with Chrome trace-event export,
// and stdlib-only serving (Prometheus-style text exposition, expvar,
// net/http/pprof).
//
// Design rules, in order of importance:
//
//  1. Disabled must be free. Every instrument method is a no-op on a nil
//     receiver, so instrumented code holds plain pointers and never branches
//     on a feature flag: the hot-path cost of observability-off is one nil
//     check (and zero heap allocations). Code that would otherwise pay for
//     argument construction (time.Now, label formatting) guards on a single
//     pointer it already holds.
//  2. Enabled must be cheap and race-free. Counters, gauges and histogram
//     buckets are sync/atomic words; the registry itself takes a mutex only
//     on instrument registration (construction time), never on update.
//  3. Stdlib only. The package imports nothing outside the standard library
//     so every layer of the repository (ring, ckks, sim, hemera) can depend
//     on it without cycles.
package obs

import (
	"fmt"
	"io"
	"math"
	"math/bits"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// Counter is a monotonically increasing atomic counter.
// All methods are safe on a nil *Counter (no-ops / zero values).
type Counter struct {
	v atomic.Uint64
}

// Inc adds one.
func (c *Counter) Inc() {
	if c == nil {
		return
	}
	c.v.Add(1)
}

// Add adds n.
func (c *Counter) Add(n uint64) {
	if c == nil {
		return
	}
	c.v.Add(n)
}

// Value returns the current count.
func (c *Counter) Value() uint64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is an atomic integer gauge (set/add semantics, may decrease).
// All methods are safe on a nil *Gauge.
type Gauge struct {
	v atomic.Int64
}

// Set stores v.
func (g *Gauge) Set(v int64) {
	if g == nil {
		return
	}
	g.v.Store(v)
}

// Add adds delta (may be negative).
func (g *Gauge) Add(delta int64) {
	if g == nil {
		return
	}
	g.v.Add(delta)
}

// Value returns the current value.
func (g *Gauge) Value() int64 {
	if g == nil {
		return 0
	}
	return g.v.Load()
}

// FloatGauge is an atomic float64 gauge (the simulator's cycle counts are
// fractional). All methods are safe on a nil *FloatGauge.
type FloatGauge struct {
	bits atomic.Uint64
}

// Set stores v.
func (g *FloatGauge) Set(v float64) {
	if g == nil {
		return
	}
	g.bits.Store(math.Float64bits(v))
}

// Add adds delta with a CAS loop.
func (g *FloatGauge) Add(delta float64) {
	if g == nil {
		return
	}
	for {
		old := g.bits.Load()
		nv := math.Float64bits(math.Float64frombits(old) + delta)
		if g.bits.CompareAndSwap(old, nv) {
			return
		}
	}
}

// Value returns the current value.
func (g *FloatGauge) Value() float64 {
	if g == nil {
		return 0
	}
	return math.Float64frombits(g.bits.Load())
}

// histBuckets is the fixed bucket count of every histogram: bucket i holds
// observations v with bits.Len64(v) == i, i.e. v in [2^(i-1), 2^i). Bucket 0
// holds v == 0. Log-scale buckets over the full uint64 range cover both
// nanosecond latencies and byte sizes without configuration.
const histBuckets = 65

// Histogram is a fixed log2-bucket histogram of non-negative int64
// observations (negative observations clamp to 0). All methods are safe on a
// nil *Histogram.
type Histogram struct {
	count   atomic.Uint64
	sum     atomic.Int64
	buckets [histBuckets]atomic.Uint64
}

// Observe records one value.
func (h *Histogram) Observe(v int64) {
	if h == nil {
		return
	}
	if v < 0 {
		v = 0
	}
	h.buckets[bits.Len64(uint64(v))].Add(1)
	h.count.Add(1)
	h.sum.Add(v)
}

// ObserveSince records the elapsed nanoseconds since t0.
func (h *Histogram) ObserveSince(t0 time.Time) {
	if h == nil {
		return
	}
	h.Observe(int64(time.Since(t0)))
}

// Count returns the total number of observations.
func (h *Histogram) Count() uint64 {
	if h == nil {
		return 0
	}
	return h.count.Load()
}

// Sum returns the sum of all observed values.
func (h *Histogram) Sum() int64 {
	if h == nil {
		return 0
	}
	return h.sum.Load()
}

// BucketBound returns the inclusive upper bound of bucket i (2^i - 1;
// the last bucket is unbounded).
func BucketBound(i int) uint64 {
	if i >= histBuckets-1 {
		return math.MaxUint64
	}
	return 1<<uint(i) - 1
}

// HistogramBucket is one populated bucket of a histogram snapshot.
type HistogramBucket struct {
	UpperBound uint64 `json:"le"`    // inclusive upper bound of the bucket
	Count      uint64 `json:"count"` // observations in this bucket (not cumulative)
}

// HistogramSnapshot is a point-in-time copy of a histogram.
type HistogramSnapshot struct {
	Count   uint64            `json:"count"`
	Sum     int64             `json:"sum"`
	Buckets []HistogramBucket `json:"buckets,omitempty"` // populated buckets only, ascending
}

// Mean returns the average observation (0 when empty).
func (s HistogramSnapshot) Mean() float64 {
	if s.Count == 0 {
		return 0
	}
	return float64(s.Sum) / float64(s.Count)
}

// snapshot copies the histogram state. The copy is not atomic across fields
// (counters may advance between loads) but every loaded word is consistent.
func (h *Histogram) snapshot() HistogramSnapshot {
	s := HistogramSnapshot{Count: h.count.Load(), Sum: h.sum.Load()}
	for i := range h.buckets {
		if n := h.buckets[i].Load(); n > 0 {
			s.Buckets = append(s.Buckets, HistogramBucket{UpperBound: BucketBound(i), Count: n})
		}
	}
	return s
}

// Registry is a named-instrument registry. Instrument lookup/creation takes a
// mutex; the returned instruments update lock-free. Instruments are created
// on first use and live for the registry's lifetime, so hot paths resolve
// their instruments once at construction and hold the pointers.
//
// All methods are safe on a nil *Registry: they return nil instruments,
// which are themselves safe no-ops.
type Registry struct {
	mu       sync.Mutex
	counters map[string]*Counter
	gauges   map[string]*Gauge
	fgauges  map[string]*FloatGauge
	hists    map[string]*Histogram
	onScrape []func()
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		counters: map[string]*Counter{},
		gauges:   map[string]*Gauge{},
		fgauges:  map[string]*FloatGauge{},
		hists:    map[string]*Histogram{},
	}
}

// Counter returns (creating if needed) the named counter.
func (r *Registry) Counter(name string) *Counter {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	c, ok := r.counters[name]
	if !ok {
		c = &Counter{}
		r.counters[name] = c
	}
	return c
}

// Gauge returns (creating if needed) the named integer gauge.
func (r *Registry) Gauge(name string) *Gauge {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	g, ok := r.gauges[name]
	if !ok {
		g = &Gauge{}
		r.gauges[name] = g
	}
	return g
}

// FloatGauge returns (creating if needed) the named float gauge.
func (r *Registry) FloatGauge(name string) *FloatGauge {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	g, ok := r.fgauges[name]
	if !ok {
		g = &FloatGauge{}
		r.fgauges[name] = g
	}
	return g
}

// Histogram returns (creating if needed) the named histogram.
func (r *Registry) Histogram(name string) *Histogram {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	h, ok := r.hists[name]
	if !ok {
		h = &Histogram{}
		r.hists[name] = h
	}
	return h
}

// Snapshot is a point-in-time copy of every instrument in a registry.
type Snapshot struct {
	TakenAt     time.Time                    `json:"taken_at"`
	Counters    map[string]uint64            `json:"counters,omitempty"`
	Gauges      map[string]int64             `json:"gauges,omitempty"`
	FloatGauges map[string]float64           `json:"float_gauges,omitempty"`
	Histograms  map[string]HistogramSnapshot `json:"histograms,omitempty"`
}

// OnScrape registers a hook run at the start of every Snapshot (and thus
// every /metrics and /snapshot.json scrape), before instrument values are
// copied. Hooks derive gauges from other instruments — e.g. the serving
// layer publishes latency quantile gauges computed from its log2-bucket
// histogram. Hooks run outside the registry lock and must not call Snapshot
// themselves; updating pre-resolved instruments (atomic sets) is the
// intended use. Safe on nil (no-op).
func (r *Registry) OnScrape(fn func()) {
	if r == nil || fn == nil {
		return
	}
	r.mu.Lock()
	r.onScrape = append(r.onScrape, fn)
	r.mu.Unlock()
}

// Snapshot copies the current instrument values. Safe on a nil registry
// (returns an empty snapshot).
func (r *Registry) Snapshot() *Snapshot {
	s := &Snapshot{
		TakenAt:     time.Now(),
		Counters:    map[string]uint64{},
		Gauges:      map[string]int64{},
		FloatGauges: map[string]float64{},
		Histograms:  map[string]HistogramSnapshot{},
	}
	if r == nil {
		return s
	}
	r.mu.Lock()
	hooks := r.onScrape
	r.mu.Unlock()
	for _, fn := range hooks {
		fn()
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	for n, c := range r.counters {
		s.Counters[n] = c.Value()
	}
	for n, g := range r.gauges {
		s.Gauges[n] = g.Value()
	}
	for n, g := range r.fgauges {
		s.FloatGauges[n] = g.Value()
	}
	for n, h := range r.hists {
		s.Histograms[n] = h.snapshot()
	}
	return s
}

// promName sanitises an instrument name into the Prometheus metric-name
// charset [a-zA-Z0-9_:].
func promName(name string) string {
	var b strings.Builder
	b.Grow(len(name))
	for i, r := range name {
		ok := r == '_' || r == ':' ||
			(r >= 'a' && r <= 'z') || (r >= 'A' && r <= 'Z') ||
			(r >= '0' && r <= '9' && i > 0)
		if ok {
			b.WriteRune(r)
		} else {
			b.WriteByte('_')
		}
	}
	return b.String()
}

// WritePrometheus writes the registry in the Prometheus text exposition
// format (hand-rolled, version 0.0.4 compatible). Histograms emit cumulative
// `_bucket{le="..."}` series plus `_sum` and `_count`. Safe on nil.
func (r *Registry) WritePrometheus(w io.Writer) error {
	snap := r.Snapshot()
	var names []string
	for n := range snap.Counters {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		p := promName(n)
		if _, err := fmt.Fprintf(w, "# TYPE %s counter\n%s %d\n", p, p, snap.Counters[n]); err != nil {
			return err
		}
	}
	names = names[:0]
	for n := range snap.Gauges {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		p := promName(n)
		if _, err := fmt.Fprintf(w, "# TYPE %s gauge\n%s %d\n", p, p, snap.Gauges[n]); err != nil {
			return err
		}
	}
	names = names[:0]
	for n := range snap.FloatGauges {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		p := promName(n)
		if _, err := fmt.Fprintf(w, "# TYPE %s gauge\n%s %g\n", p, p, snap.FloatGauges[n]); err != nil {
			return err
		}
	}
	names = names[:0]
	for n := range snap.Histograms {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		h := snap.Histograms[n]
		p := promName(n)
		if _, err := fmt.Fprintf(w, "# TYPE %s histogram\n", p); err != nil {
			return err
		}
		cum := uint64(0)
		for _, b := range h.Buckets {
			cum += b.Count
			if _, err := fmt.Fprintf(w, "%s_bucket{le=\"%d\"} %d\n", p, b.UpperBound, cum); err != nil {
				return err
			}
		}
		if _, err := fmt.Fprintf(w, "%s_bucket{le=\"+Inf\"} %d\n%s_sum %d\n%s_count %d\n",
			p, h.Count, p, h.Sum, p, h.Count); err != nil {
			return err
		}
	}
	return nil
}
