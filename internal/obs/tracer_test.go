package obs

import (
	"bytes"
	"encoding/json"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestNilTracerIsInert(t *testing.T) {
	var tr *Tracer
	if tr.Enabled() {
		t.Fatal("nil tracer reports enabled")
	}
	sp := tr.StartSpan("x", "cat", 0, 0)
	sp.End()
	sp.EndArgs(map[string]any{"k": "v"})
	tr.Emit(Event{Name: "e"})
	tr.Complete("n", "c", 0, 0, 0, 1, nil)
	tr.Instant("i", "c", 0, 0, nil)
	tr.SetProcessName(0, "p")
	tr.SetThreadName(0, 0, "t")
	if tr.Len() != 0 || tr.Dropped() != 0 || tr.Events() != nil {
		t.Fatal("nil tracer retained state")
	}
	var buf bytes.Buffer
	if err := tr.WriteChromeTrace(&buf); err != nil {
		t.Fatal(err)
	}
	var decoded struct {
		TraceEvents []Event `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &decoded); err != nil {
		t.Fatalf("nil tracer export is not valid JSON: %v", err)
	}
	if len(decoded.TraceEvents) != 0 {
		t.Fatal("nil tracer export has events")
	}
	if !strings.Contains(tr.Summary(), "0 events") {
		t.Fatalf("nil summary: %q", tr.Summary())
	}
}

// TestTracerOverflowReportsDrops pins the drop-on-overflow contract: a
// tracer with capacity c keeps the first c events and counts the rest.
func TestTracerOverflowReportsDrops(t *testing.T) {
	const capacity = 16
	tr := NewTracer(capacity)
	for i := 0; i < 3*capacity; i++ {
		tr.Complete("ev", "test", 0, 0, float64(i), 1, nil)
	}
	if got := tr.Len(); got != capacity {
		t.Fatalf("len = %d, want %d", got, capacity)
	}
	if got := tr.Dropped(); got != 2*capacity {
		t.Fatalf("dropped = %d, want %d", got, 2*capacity)
	}
	// The drop count must surface in the export metadata and the summary.
	var buf bytes.Buffer
	if err := tr.WriteChromeTrace(&buf); err != nil {
		t.Fatal(err)
	}
	var decoded struct {
		Metadata map[string]any `json:"metadata"`
	}
	if err := json.Unmarshal(buf.Bytes(), &decoded); err != nil {
		t.Fatal(err)
	}
	if d, ok := decoded.Metadata["dropped_events"].(float64); !ok || d != 2*capacity {
		t.Fatalf("export metadata dropped_events = %v", decoded.Metadata)
	}
	if !strings.Contains(tr.Summary(), "32 dropped") {
		t.Fatalf("summary does not report drops: %q", tr.Summary())
	}
}

// TestTracerConcurrentEmit hammers Emit and the read paths from 8 goroutines
// (exercised under -race by `make race`): buffered + dropped must equal the
// number of emitted events exactly.
func TestTracerConcurrentEmit(t *testing.T) {
	const (
		goroutines = 8
		perG       = 1000
		capacity   = 2048
	)
	tr := NewTracer(capacity)
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			for i := 0; i < perG; i++ {
				if i%100 == 0 {
					// Interleave readers with writers.
					_ = tr.Len()
					_ = tr.Events()
				}
				sp := tr.StartSpan("op", "hammer", 0, id)
				sp.EndArgs(map[string]any{"i": i})
			}
		}(g)
	}
	wg.Wait()
	total := uint64(tr.Len()) + tr.Dropped()
	if total != goroutines*perG {
		t.Fatalf("buffered %d + dropped %d = %d, want %d",
			tr.Len(), tr.Dropped(), total, goroutines*perG)
	}
	if tr.Len() != capacity {
		t.Fatalf("buffer should be full: %d/%d", tr.Len(), capacity)
	}
}

// TestChromeTraceSchema decodes an export and checks the trace-event schema
// fields Chrome requires: every event has name/ph/ts/pid/tid, complete
// events carry durations, metadata events carry name args.
func TestChromeTraceSchema(t *testing.T) {
	tr := NewTracer(64)
	tr.SetProcessName(7, "simulated-accelerator")
	tr.SetThreadName(7, 1, "NTTU")
	tr.Complete("kernel", "sim", 7, 1, 10, 5, map[string]any{"op": "HMult"})
	sp := tr.StartSpan("Mul", "eval", 1, 0)
	time.Sleep(time.Millisecond)
	sp.EndArgs(map[string]any{"method": "hybrid", "level": 3})
	tr.Instant("marker", "eval", 1, 0, nil)

	var buf bytes.Buffer
	if err := tr.WriteChromeTrace(&buf); err != nil {
		t.Fatal(err)
	}
	var decoded struct {
		TraceEvents     []map[string]any `json:"traceEvents"`
		DisplayTimeUnit string           `json:"displayTimeUnit"`
	}
	if err := json.Unmarshal(buf.Bytes(), &decoded); err != nil {
		t.Fatalf("invalid JSON: %v", err)
	}
	if decoded.DisplayTimeUnit != "ms" {
		t.Errorf("displayTimeUnit = %q", decoded.DisplayTimeUnit)
	}
	if len(decoded.TraceEvents) != 5 {
		t.Fatalf("got %d events, want 5", len(decoded.TraceEvents))
	}
	phases := map[string]int{}
	for _, ev := range decoded.TraceEvents {
		for _, field := range []string{"name", "ph", "ts", "pid", "tid"} {
			if _, ok := ev[field]; !ok {
				t.Errorf("event %v missing %q", ev, field)
			}
		}
		ph := ev["ph"].(string)
		phases[ph]++
		switch ph {
		case "X":
			if _, ok := ev["dur"]; !ok {
				t.Errorf("complete event %v missing dur", ev)
			}
		case "M":
			args, ok := ev["args"].(map[string]any)
			if !ok || args["name"] == nil {
				t.Errorf("metadata event %v missing args.name", ev)
			}
		}
	}
	if phases["X"] != 2 || phases["M"] != 2 || phases["i"] != 1 {
		t.Errorf("phase histogram = %v", phases)
	}
	// The wall-clock span must have a plausible duration (>= 1 ms sleep).
	for _, ev := range decoded.TraceEvents {
		if ev["name"] == "Mul" {
			if dur := ev["dur"].(float64); dur < 900 {
				t.Errorf("span dur = %v us, want >= ~1000", dur)
			}
			args := ev["args"].(map[string]any)
			if args["method"] != "hybrid" {
				t.Errorf("span args = %v", args)
			}
		}
	}
}

func TestSummaryAggregates(t *testing.T) {
	tr := NewTracer(64)
	tr.Complete("a", "c", 0, 0, 0, 10, nil)
	tr.Complete("a", "c", 0, 0, 10, 30, nil)
	tr.Complete("b", "c", 0, 0, 40, 5, nil)
	s := tr.Summary()
	if !strings.Contains(s, "c/a") || !strings.Contains(s, "c/b") {
		t.Fatalf("summary missing keys:\n%s", s)
	}
	// c/a has the larger total and must come first.
	if strings.Index(s, "c/a") > strings.Index(s, "c/b") {
		t.Fatalf("summary not sorted by total duration:\n%s", s)
	}
}
