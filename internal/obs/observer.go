package obs

import (
	"encoding/json"
	"io"
)

// Observer bundles the two observability channels handed through the layers:
// the metrics registry (always present on a non-nil observer) and the span
// tracer (present when event tracing was requested). A nil *Observer is the
// disabled state: Reg() and Tr() return nil, which in turn are safe no-op
// instruments, so a single nil check (or none at all) suffices everywhere.
type Observer struct {
	reg *Registry
	tr  *Tracer
}

// New returns an observer with a fresh registry and no tracer.
func New() *Observer {
	return &Observer{reg: NewRegistry()}
}

// NewTracing returns an observer with a fresh registry and a tracer
// buffering up to traceCapacity events (<= 0 selects the default capacity).
// Buffer overflow surfaces live as the registry's obs.trace.dropped counter,
// not only in the trace export's summary.
func NewTracing(traceCapacity int) *Observer {
	reg := NewRegistry()
	tr := NewTracer(traceCapacity)
	tr.SetDropCounter(reg.Counter("obs.trace.dropped"))
	return &Observer{reg: reg, tr: tr}
}

// Reg returns the metrics registry (nil on a nil observer).
func (o *Observer) Reg() *Registry {
	if o == nil {
		return nil
	}
	return o.reg
}

// Tr returns the tracer (nil on a nil observer or when tracing is off).
func (o *Observer) Tr() *Tracer {
	if o == nil {
		return nil
	}
	return o.tr
}

// Snapshot returns a point-in-time copy of the registry.
func (o *Observer) Snapshot() *Snapshot { return o.Reg().Snapshot() }

// WriteSnapshot writes the registry snapshot as indented JSON — the dump
// format cmd/benchtables emits next to its tables.
func (o *Observer) WriteSnapshot(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(o.Snapshot())
}

// WriteChromeTrace writes the buffered trace events as Chrome trace-event
// JSON (empty trace when tracing is off).
func (o *Observer) WriteChromeTrace(w io.Writer) error { return o.Tr().WriteChromeTrace(w) }

// WritePrometheus writes the registry in Prometheus text exposition format.
func (o *Observer) WritePrometheus(w io.Writer) error { return o.Reg().WritePrometheus(w) }
