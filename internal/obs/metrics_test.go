package obs

import (
	"strings"
	"sync"
	"testing"
)

// TestNilInstrumentsAreNoOps pins the disabled-observability contract: every
// method on nil receivers is callable and returns zero values.
func TestNilInstrumentsAreNoOps(t *testing.T) {
	var c *Counter
	c.Inc()
	c.Add(5)
	if c.Value() != 0 {
		t.Fatal("nil counter value")
	}
	var g *Gauge
	g.Set(3)
	g.Add(-1)
	if g.Value() != 0 {
		t.Fatal("nil gauge value")
	}
	var fg *FloatGauge
	fg.Set(1.5)
	fg.Add(2.5)
	if fg.Value() != 0 {
		t.Fatal("nil float gauge value")
	}
	var h *Histogram
	h.Observe(7)
	if h.Count() != 0 || h.Sum() != 0 {
		t.Fatal("nil histogram state")
	}
	var r *Registry
	if r.Counter("x") != nil || r.Gauge("x") != nil || r.FloatGauge("x") != nil || r.Histogram("x") != nil {
		t.Fatal("nil registry must hand out nil instruments")
	}
	if s := r.Snapshot(); len(s.Counters) != 0 {
		t.Fatal("nil registry snapshot not empty")
	}
	var sb strings.Builder
	if err := r.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	var o *Observer
	if o.Reg() != nil || o.Tr() != nil {
		t.Fatal("nil observer must expose nil channels")
	}
}

// TestRegistryReturnsSameInstrument pins instrument identity: hot paths
// resolve once and hold the pointer.
func TestRegistryReturnsSameInstrument(t *testing.T) {
	r := NewRegistry()
	if r.Counter("a") != r.Counter("a") {
		t.Fatal("counter identity")
	}
	if r.Histogram("h") != r.Histogram("h") {
		t.Fatal("histogram identity")
	}
	if r.Gauge("g") != r.Gauge("g") {
		t.Fatal("gauge identity")
	}
	if r.FloatGauge("f") != r.FloatGauge("f") {
		t.Fatal("float gauge identity")
	}
}

// TestConcurrentMetricsHammer drives every instrument kind from 8 goroutines
// (run under -race by `make race`): counter totals must be exact, histogram
// bucket counts must sum to the observation count, and the sum must match
// the arithmetic total.
func TestConcurrentMetricsHammer(t *testing.T) {
	const (
		goroutines = 8
		iters      = 5000
	)
	r := NewRegistry()
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			// Mixed operations: shared counter, per-goroutine counter
			// (registered concurrently), gauge add, float gauge add,
			// histogram observations.
			shared := r.Counter("hammer.shared")
			own := r.Counter("hammer.own." + string(rune('a'+id)))
			gauge := r.Gauge("hammer.gauge")
			fgauge := r.FloatGauge("hammer.fgauge")
			hist := r.Histogram("hammer.hist")
			for i := 0; i < iters; i++ {
				shared.Inc()
				own.Add(2)
				gauge.Add(1)
				fgauge.Add(0.5)
				hist.Observe(int64(i % 1000))
			}
		}(g)
	}
	wg.Wait()

	if got := r.Counter("hammer.shared").Value(); got != goroutines*iters {
		t.Errorf("shared counter = %d, want %d", got, goroutines*iters)
	}
	for id := 0; id < goroutines; id++ {
		if got := r.Counter("hammer.own." + string(rune('a'+id))).Value(); got != 2*iters {
			t.Errorf("own counter %d = %d, want %d", id, got, 2*iters)
		}
	}
	if got := r.Gauge("hammer.gauge").Value(); got != goroutines*iters {
		t.Errorf("gauge = %d, want %d", got, goroutines*iters)
	}
	if got := r.FloatGauge("hammer.fgauge").Value(); got != goroutines*iters/2 {
		t.Errorf("float gauge = %g, want %d", got, goroutines*iters/2)
	}
	h := r.Histogram("hammer.hist")
	if got := h.Count(); got != goroutines*iters {
		t.Errorf("histogram count = %d, want %d", got, goroutines*iters)
	}
	// Per-goroutine sum of i%1000 over 5000 iterations: 5 full cycles of
	// 0..999 = 5 * 999*1000/2.
	wantSum := int64(goroutines) * 5 * 999 * 1000 / 2
	if got := h.Sum(); got != wantSum {
		t.Errorf("histogram sum = %d, want %d", got, wantSum)
	}
	// Bucket counts must sum to the total count.
	snap := h.snapshot()
	var bucketTotal uint64
	for _, b := range snap.Buckets {
		bucketTotal += b.Count
	}
	if bucketTotal != snap.Count {
		t.Errorf("bucket counts sum to %d, count is %d", bucketTotal, snap.Count)
	}
}

// TestHistogramBuckets pins the log2 bucketing: value v lands in the bucket
// whose inclusive upper bound is the next 2^k-1 at or above v.
func TestHistogramBuckets(t *testing.T) {
	h := &Histogram{}
	for _, v := range []int64{0, 1, 2, 3, 4, 7, 8, 1023, 1024, -5} {
		h.Observe(v)
	}
	snap := h.snapshot()
	want := map[uint64]uint64{
		0:    2, // 0 and the clamped -5
		1:    1, // 1
		3:    2, // 2, 3
		7:    2, // 4, 7
		15:   1, // 8
		1023: 1,
		2047: 1, // 1024
	}
	got := map[uint64]uint64{}
	for _, b := range snap.Buckets {
		got[b.UpperBound] = b.Count
	}
	for ub, n := range want {
		if got[ub] != n {
			t.Errorf("bucket le=%d: got %d, want %d (all: %v)", ub, got[ub], n, got)
		}
	}
	if snap.Count != 10 || snap.Sum != 0+1+2+3+4+7+8+1023+1024 {
		t.Errorf("count/sum = %d/%d", snap.Count, snap.Sum)
	}
}

func TestPrometheusExposition(t *testing.T) {
	r := NewRegistry()
	r.Counter("eval.op.mul-hybrid.count").Add(3)
	r.Gauge("pool.bytes").Set(4096)
	r.FloatGauge("sim.cycles").Set(123.5)
	h := r.Histogram("op.latency_ns")
	h.Observe(100)
	h.Observe(200000)

	var sb strings.Builder
	if err := r.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{
		"# TYPE eval_op_mul_hybrid_count counter",
		"eval_op_mul_hybrid_count 3",
		"# TYPE pool_bytes gauge",
		"pool_bytes 4096",
		"sim_cycles 123.5",
		"# TYPE op_latency_ns histogram",
		`op_latency_ns_bucket{le="+Inf"} 2`,
		"op_latency_ns_sum 200100",
		"op_latency_ns_count 2",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q:\n%s", want, out)
		}
	}
	// Cumulative bucket ordering: the 127 bucket (holding 100) must report 1,
	// the 262143 bucket (holding 200000) must report 2.
	if !strings.Contains(out, `op_latency_ns_bucket{le="127"} 1`) {
		t.Errorf("cumulative bucket for 100 wrong:\n%s", out)
	}
	if !strings.Contains(out, `op_latency_ns_bucket{le="262143"} 2`) {
		t.Errorf("cumulative bucket for 200000 wrong:\n%s", out)
	}
}

func TestSnapshotMean(t *testing.T) {
	h := &Histogram{}
	h.Observe(10)
	h.Observe(30)
	if m := h.snapshot().Mean(); m != 20 {
		t.Fatalf("mean = %g, want 20", m)
	}
	if m := (HistogramSnapshot{}).Mean(); m != 0 {
		t.Fatalf("empty mean = %g", m)
	}
}
