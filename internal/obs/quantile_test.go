package obs

import (
	"math"
	"sort"
	"testing"
)

// exactQuantile returns the q-quantile of the sample as the value at the
// 1-based rank ceil(q*n) in sorted order — the same rank convention the
// bucket estimator targets, so the two are comparable.
func exactQuantile(sorted []int64, q float64) float64 {
	if len(sorted) == 0 {
		return 0
	}
	rank := int(math.Ceil(q * float64(len(sorted))))
	if rank < 1 {
		rank = 1
	}
	if rank > len(sorted) {
		rank = len(sorted)
	}
	return float64(sorted[rank-1])
}

// observeAll feeds every value into a fresh histogram and returns it with
// the sorted sample for exact comparison.
func observeAll(values []int64) (*Histogram, []int64) {
	h := New().Reg().Histogram("test.q")
	for _, v := range values {
		h.Observe(v)
	}
	sorted := append([]int64(nil), values...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	return h, sorted
}

// assertWithinFactor2 pins the documented error bound: the estimate lies in
// the same log2 bucket as the true quantile, hence within a factor of 2.
func assertWithinFactor2(t *testing.T, q, est, exact float64) {
	t.Helper()
	if exact == 0 {
		if est != 0 {
			t.Fatalf("q=%.2f: estimate %g for exact 0", q, est)
		}
		return
	}
	if est < exact/2 || est > exact*2 {
		t.Fatalf("q=%.2f: estimate %g not within factor 2 of exact %g", q, est, exact)
	}
}

// TestQuantileEmptyHistogram pins the zero-value contract: no observations,
// nil receiver and nil snapshot all estimate 0 for every q.
func TestQuantileEmptyHistogram(t *testing.T) {
	var s HistogramSnapshot
	for _, q := range []float64{0, 0.5, 0.99, 1} {
		if got := s.Quantile(q); got != 0 {
			t.Fatalf("empty snapshot Quantile(%g) = %g, want 0", q, got)
		}
	}
	var h *Histogram
	if got := h.Quantile(0.99); got != 0 {
		t.Fatalf("nil histogram Quantile = %g, want 0", got)
	}
	if snap := h.Snapshot(); snap.Count != 0 || len(snap.Buckets) != 0 {
		t.Fatalf("nil histogram Snapshot = %+v, want empty", snap)
	}
}

// TestQuantileSingleBucket covers the degenerate distribution: every
// observation identical, so every quantile must land inside that one
// bucket's [2^(i-1), 2^i] octave.
func TestQuantileSingleBucket(t *testing.T) {
	h, sorted := observeAll([]int64{100, 100, 100, 100, 100})
	for _, q := range []float64{0.01, 0.5, 0.9, 0.99, 1} {
		est := h.Quantile(q)
		if est < 64 || est > 128 {
			t.Fatalf("q=%g: estimate %g outside the [64,128] bucket of 100", q, est)
		}
		assertWithinFactor2(t, q, est, exactQuantile(sorted, q))
	}
}

// TestQuantileZeroBucket pins bucket 0: Observe(0) lands in the zero-width
// [0,0] bucket, so an all-zero distribution estimates exactly 0.
func TestQuantileZeroBucket(t *testing.T) {
	h, _ := observeAll([]int64{0, 0, 0})
	for _, q := range []float64{0.5, 1} {
		if got := h.Quantile(q); got != 0 {
			t.Fatalf("all-zero Quantile(%g) = %g, want 0", q, got)
		}
	}
	// Mixed zero/non-zero: the median is still 0, the max is not.
	h2, sorted2 := observeAll([]int64{0, 0, 0, 1000})
	if got := h2.Quantile(0.5); got != 0 {
		t.Fatalf("Quantile(0.5) = %g, want 0", got)
	}
	assertWithinFactor2(t, 1, h2.Quantile(1), exactQuantile(sorted2, 1))
}

// TestQuantileUniform checks the estimator against exact order statistics of
// a uniform 1..N sample across the quantiles the serving layer exports.
func TestQuantileUniform(t *testing.T) {
	values := make([]int64, 0, 10000)
	for i := int64(1); i <= 10000; i++ {
		values = append(values, i)
	}
	h, sorted := observeAll(values)
	for _, q := range []float64{0.50, 0.90, 0.99, 1} {
		assertWithinFactor2(t, q, h.Quantile(q), exactQuantile(sorted, q))
	}
}

// TestQuantileBimodal checks a latency-shaped distribution: a fast mode with
// a heavy-tailed slow mode two decades out. p50 must report the fast mode,
// p99 the slow one.
func TestQuantileBimodal(t *testing.T) {
	var values []int64
	for i := 0; i < 95; i++ {
		values = append(values, 100) // fast mode: bucket [64,128]
	}
	for i := 0; i < 5; i++ {
		values = append(values, 100000) // slow tail: bucket [65536,131072]
	}
	h, sorted := observeAll(values)
	p50 := h.Quantile(0.50)
	if p50 < 64 || p50 > 128 {
		t.Fatalf("p50 = %g, want inside the fast mode's [64,128] bucket", p50)
	}
	p99 := h.Quantile(0.99)
	if p99 < 65536 || p99 > 131072 {
		t.Fatalf("p99 = %g, want inside the slow tail's [65536,131072] bucket", p99)
	}
	for _, q := range []float64{0.50, 0.90, 0.99} {
		assertWithinFactor2(t, q, h.Quantile(q), exactQuantile(sorted, q))
	}
}

// TestQuantileGeometric checks a geometric (log-uniform) sample — one
// observation per octave — where every quantile falls in a different bucket.
func TestQuantileGeometric(t *testing.T) {
	var values []int64
	for i := 0; i < 20; i++ {
		values = append(values, int64(3)<<uint(i)) // 3, 6, 12, ... one per bucket
	}
	h, sorted := observeAll(values)
	for _, q := range []float64{0.10, 0.25, 0.50, 0.75, 0.90, 0.99, 1} {
		assertWithinFactor2(t, q, h.Quantile(q), exactQuantile(sorted, q))
	}
}

// TestQuantileClamping pins the q-domain edges: q <= 0 clamps to the minimum
// rank (first observation), q > 1 clamps to 1 (last observation).
func TestQuantileClamping(t *testing.T) {
	h, sorted := observeAll([]int64{10, 1000, 100000})
	lo := h.Quantile(-1)
	assertWithinFactor2(t, 0, lo, float64(sorted[0]))
	hi := h.Quantile(2)
	assertWithinFactor2(t, 1, hi, float64(sorted[len(sorted)-1]))
	if lo > hi {
		t.Fatalf("Quantile(-1) = %g > Quantile(2) = %g", lo, hi)
	}
}

// TestQuantileMonotone: estimates must be non-decreasing in q for any
// distribution, or an exported p99 could read below the p50.
func TestQuantileMonotone(t *testing.T) {
	h, _ := observeAll([]int64{1, 7, 7, 30, 500, 500, 500, 9000, 123456})
	prev := -1.0
	for q := 0.05; q <= 1.0; q += 0.05 {
		est := h.Quantile(q)
		if est < prev {
			t.Fatalf("Quantile(%g) = %g < previous %g", q, est, prev)
		}
		prev = est
	}
}
