package obs

import (
	"context"
	"strings"
	"sync"
	"testing"
)

// TestNewRequestIDShapeAndUniqueness: assigned IDs must look like W3C
// trace-ids (32 lowercase hex) and never collide in practice.
func TestNewRequestIDShapeAndUniqueness(t *testing.T) {
	seen := make(map[string]struct{}, 1000)
	for i := 0; i < 1000; i++ {
		id := NewRequestID()
		if len(id) != 32 || !isHex(id) || id != strings.ToLower(id) {
			t.Fatalf("NewRequestID() = %q, want 32 lowercase hex chars", id)
		}
		if allZero(id) {
			t.Fatalf("NewRequestID() returned the all-zero fallback")
		}
		if _, dup := seen[id]; dup {
			t.Fatalf("duplicate request ID %q", id)
		}
		seen[id] = struct{}{}
	}
	if id := NewSpanID(); len(id) != 16 || !isHex(id) {
		t.Fatalf("NewSpanID() = %q, want 16 hex chars", id)
	}
}

// TestNewRequestIDConcurrent hammers the generator from many goroutines;
// run under -race this also proves it carries no shared mutable state.
func TestNewRequestIDConcurrent(t *testing.T) {
	const goroutines, per = 16, 64
	var mu sync.Mutex
	seen := make(map[string]struct{}, goroutines*per)
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			local := make([]string, 0, per)
			for i := 0; i < per; i++ {
				local = append(local, NewRequestID())
			}
			mu.Lock()
			for _, id := range local {
				seen[id] = struct{}{}
			}
			mu.Unlock()
		}()
	}
	wg.Wait()
	if len(seen) != goroutines*per {
		t.Fatalf("got %d unique IDs from %d generations", len(seen), goroutines*per)
	}
}

// TestRequestIDCarriers pins carrier resolution: bare WithRequestID works,
// a *Request carrier wins over it, and absent/nil contexts yield "".
func TestRequestIDCarriers(t *testing.T) {
	if got := RequestIDFrom(nil); got != "" {
		t.Fatalf("RequestIDFrom(nil) = %q, want empty", got)
	}
	if got := RequestIDFrom(context.Background()); got != "" {
		t.Fatalf("RequestIDFrom(background) = %q, want empty", got)
	}
	ctx := WithRequestID(context.Background(), "bare-id")
	if got := RequestIDFrom(ctx); got != "bare-id" {
		t.Fatalf("bare carrier: got %q, want bare-id", got)
	}
	// A *Request carrier layered on top takes precedence.
	ctx = WithRequest(ctx, &Request{ID: "req-id"})
	if got := RequestIDFrom(ctx); got != "req-id" {
		t.Fatalf("*Request carrier: got %q, want req-id", got)
	}
	if r := RequestFrom(ctx); r == nil || r.ID != "req-id" {
		t.Fatalf("RequestFrom: got %+v, want ID req-id", r)
	}
	if r := RequestFrom(context.Background()); r != nil {
		t.Fatalf("RequestFrom(background) = %+v, want nil", r)
	}
}

// TestParseTraceparent is the accept/reject table for the W3C header,
// including the spec's forward-compatibility rule for future versions.
func TestParseTraceparent(t *testing.T) {
	const (
		trace = "4bf92f3577b34da6a3ce929d0e0e4736"
		span  = "00f067aa0ba902b7"
	)
	valid := "00-" + trace + "-" + span + "-01"
	cases := []struct {
		name string
		in   string
		ok   bool
	}{
		{"canonical", valid, true},
		{"surrounding whitespace", "  " + valid + "  ", true},
		{"uppercase hex normalised", "00-" + strings.ToUpper(trace) + "-" + strings.ToUpper(span) + "-01", true},
		{"future version", "cc-" + trace + "-" + span + "-01", true},
		{"future version extra fields", "cc-" + trace + "-" + span + "-01-extrastuff", true},
		{"empty", "", false},
		{"garbage", "not-a-traceparent", false},
		{"version ff reserved", "ff-" + trace + "-" + span + "-01", false},
		{"version 00 with extra fields", valid + "-extra", false},
		{"version not hex", "zz-" + trace + "-" + span + "-01", false},
		{"trace-id short", "00-" + trace[:31] + "-" + span + "-01", false},
		{"trace-id long", "00-" + trace + "0-" + span + "-01", false},
		{"trace-id not hex", "00-" + strings.Replace(trace, "4", "g", 1) + "-" + span + "-01", false},
		{"trace-id all zero", "00-" + strings.Repeat("0", 32) + "-" + span + "-01", false},
		{"span-id short", "00-" + trace + "-" + span[:15] + "-01", false},
		{"span-id all zero", "00-" + trace + "-" + strings.Repeat("0", 16) + "-01", false},
		{"flags short", "00-" + trace + "-" + span + "-1", false},
		{"flags not hex", "00-" + trace + "-" + span + "-xy", false},
		{"missing fields", "00-" + trace, false},
	}
	for _, tc := range cases {
		tp, ok := ParseTraceparent(tc.in)
		if ok != tc.ok {
			t.Fatalf("%s: ParseTraceparent(%q) ok = %v, want %v", tc.name, tc.in, ok, tc.ok)
		}
		if !ok {
			continue
		}
		if tp.TraceID != trace || tp.SpanID != span {
			t.Fatalf("%s: parsed %+v, want trace %s span %s (lowercased)", tc.name, tp, trace, span)
		}
		if tp.Flags != "01" {
			t.Fatalf("%s: flags = %q, want 01", tc.name, tp.Flags)
		}
	}
}

// TestTraceparentRoundTrip: String() of a parsed header reproduces the
// canonical wire form, and re-parses to the same value.
func TestTraceparentRoundTrip(t *testing.T) {
	in := "00-4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7-01"
	tp, ok := ParseTraceparent(in)
	if !ok {
		t.Fatalf("ParseTraceparent(%q) rejected a canonical header", in)
	}
	if got := tp.String(); got != in {
		t.Fatalf("String() = %q, want %q", got, in)
	}
	tp2, ok := ParseTraceparent(tp.String())
	if !ok || tp2 != tp {
		t.Fatalf("re-parse: got %+v ok=%v, want %+v", tp2, ok, tp)
	}
}
