package obs

import (
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
)

func get(t *testing.T, srv *httptest.Server, path string) (int, string) {
	t.Helper()
	resp, err := http.Get(srv.URL + path)
	if err != nil {
		t.Fatalf("GET %s: %v", path, err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatalf("read %s: %v", path, err)
	}
	return resp.StatusCode, string(body)
}

func TestHandlerEndpoints(t *testing.T) {
	o := NewTracing(64)
	o.Reg().Counter("test.requests").Add(42)
	o.Reg().Histogram("test.latency_ns").Observe(1000)
	o.Tr().Complete("kernel", "sim", 0, 0, 0, 10, nil)

	srv := httptest.NewServer(o.Handler())
	defer srv.Close()

	code, body := get(t, srv, "/metrics")
	if code != http.StatusOK {
		t.Fatalf("/metrics status %d", code)
	}
	if !strings.Contains(body, "test_requests 42") {
		t.Errorf("/metrics missing counter:\n%s", body)
	}
	if !strings.Contains(body, "# TYPE test_latency_ns histogram") {
		t.Errorf("/metrics missing histogram:\n%s", body)
	}

	code, body = get(t, srv, "/debug/vars")
	if code != http.StatusOK {
		t.Fatalf("/debug/vars status %d", code)
	}
	var vars map[string]any
	if err := json.Unmarshal([]byte(body), &vars); err != nil {
		t.Fatalf("/debug/vars not JSON: %v\n%s", err, body)
	}
	// expvar's init publishes cmdline and memstats; our snapshot rides under
	// "fast".
	for _, key := range []string{"cmdline", "memstats", "fast"} {
		if _, ok := vars[key]; !ok {
			t.Errorf("/debug/vars missing %q (have %d keys)", key, len(vars))
		}
	}
	snap, _ := vars["fast"].(map[string]any)
	counters, _ := snap["counters"].(map[string]any)
	if counters["test.requests"] != float64(42) {
		t.Errorf("/debug/vars fast.counters = %v", counters)
	}

	code, body = get(t, srv, "/snapshot.json")
	if code != http.StatusOK {
		t.Fatalf("/snapshot.json status %d", code)
	}
	var s Snapshot
	if err := json.Unmarshal([]byte(body), &s); err != nil {
		t.Fatalf("/snapshot.json decode: %v", err)
	}
	if s.Counters["test.requests"] != 42 {
		t.Errorf("snapshot counters = %v", s.Counters)
	}

	code, body = get(t, srv, "/trace.json")
	if code != http.StatusOK {
		t.Fatalf("/trace.json status %d", code)
	}
	var ct struct {
		TraceEvents []Event `json:"traceEvents"`
	}
	if err := json.Unmarshal([]byte(body), &ct); err != nil {
		t.Fatalf("/trace.json decode: %v", err)
	}
	if len(ct.TraceEvents) != 1 || ct.TraceEvents[0].Name != "kernel" {
		t.Errorf("/trace.json events = %+v", ct.TraceEvents)
	}

	code, body = get(t, srv, "/trace.txt")
	if code != http.StatusOK || !strings.Contains(body, "sim/kernel") {
		t.Errorf("/trace.txt (%d):\n%s", code, body)
	}

	code, _ = get(t, srv, "/debug/pprof/")
	if code != http.StatusOK {
		t.Errorf("/debug/pprof/ status %d", code)
	}
	code, _ = get(t, srv, "/debug/pprof/goroutine?debug=1")
	if code != http.StatusOK {
		t.Errorf("/debug/pprof/goroutine status %d", code)
	}

	code, _ = get(t, srv, "/nope")
	if code != http.StatusNotFound {
		t.Errorf("unknown path status %d", code)
	}
}

func TestServeBindsAndShutsDown(t *testing.T) {
	o := New()
	addr, shutdown, err := o.Serve("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Get("http://" + addr.String() + "/metrics")
	if err != nil {
		t.Fatalf("scrape: %v", err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}
	if err := shutdown(); err != nil {
		t.Fatalf("shutdown: %v", err)
	}
}
