package obs

import "math/bits"

// Quantile estimation over the fixed log2-bucket histograms.
//
// The buckets are coarse by design (bucket i holds [2^(i-1), 2^i)), so an
// estimate interpolates linearly inside the bucket containing the target
// rank. The error bound follows directly: the estimate always lies in the
// same bucket as the true quantile, i.e. within a factor of 2 — tight enough
// to state and track a p99 SLO ("p99 < 50ms" vs a measured 80ms estimate is
// a real signal), cheap enough to compute at every scrape from counters the
// hot path already maintains.

// Quantile estimates the q-quantile (0 < q <= 1) of the observed
// distribution from the snapshot's buckets. It returns 0 on an empty
// histogram and clamps q into (0, 1]. The estimate interpolates linearly
// within the target bucket's [lower, upper] value range.
func (s HistogramSnapshot) Quantile(q float64) float64 {
	if s.Count == 0 {
		return 0
	}
	if q <= 0 {
		q = 1e-9
	}
	if q > 1 {
		q = 1
	}
	// rank is the 1-based index of the target observation in sorted order.
	rank := q * float64(s.Count)
	if rank < 1 {
		rank = 1
	}
	var cum float64
	for _, b := range s.Buckets {
		next := cum + float64(b.Count)
		if rank <= next {
			lower, upper := bucketRange(b.UpperBound)
			if b.Count == 0 {
				return upper
			}
			frac := (rank - cum) / float64(b.Count)
			return lower + frac*(upper-lower)
		}
		cum = next
	}
	// Numerical edge: fall back to the top populated bucket's upper bound.
	_, upper := bucketRange(s.Buckets[len(s.Buckets)-1].UpperBound)
	return upper
}

// bucketRange returns the value range [lower, upper] of the bucket whose
// inclusive upper bound is ub. Bucket 0 (ub == 0) holds only zeros; the
// unbounded last bucket is treated as one octave wide, consistent with every
// other bucket.
func bucketRange(ub uint64) (lower, upper float64) {
	if ub == 0 {
		return 0, 0
	}
	// ub == 2^i - 1 for bucket i; the bucket spans [2^(i-1), 2^i).
	i := bits.Len64(ub)
	lower = float64(uint64(1) << uint(i-1))
	upper = 2 * lower
	return lower, upper
}

// Quantile estimates the q-quantile of the live histogram (0 when nil or
// empty). It snapshots the buckets first, so the estimate is consistent even
// under concurrent observation.
func (h *Histogram) Quantile(q float64) float64 {
	if h == nil {
		return 0
	}
	return h.snapshot().Quantile(q)
}

// Snapshot returns a point-in-time copy of the histogram (empty on nil).
func (h *Histogram) Snapshot() HistogramSnapshot {
	if h == nil {
		return HistogramSnapshot{}
	}
	return h.snapshot()
}
