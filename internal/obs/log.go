package obs

import (
	"io"
	"log/slog"
	"sync"
)

// The structured-logging spine: stdlib log/slog with a JSON handler, one
// line per record, so the daemon's access log is greppable and machine-
// joinable against /snapshot.json (by request ID and plan fingerprint)
// without any logging dependency.

// NewLogger returns a JSON-lines slog.Logger writing to w at the given
// level. Writes are serialized through a mutex so concurrent request
// handlers never interleave partial lines (slog guarantees one Write call
// per record; the lock makes that atomic on any io.Writer, not just
// O_APPEND files).
func NewLogger(w io.Writer, level slog.Level) *slog.Logger {
	return slog.New(slog.NewJSONHandler(&syncWriter{w: w}, &slog.HandlerOptions{Level: level}))
}

// ParseLogLevel maps a flag string onto a slog.Level (default info).
func ParseLogLevel(s string) slog.Level {
	switch s {
	case "debug":
		return slog.LevelDebug
	case "warn":
		return slog.LevelWarn
	case "error":
		return slog.LevelError
	default:
		return slog.LevelInfo
	}
}

// syncWriter serializes writes to the underlying writer.
type syncWriter struct {
	mu sync.Mutex
	w  io.Writer
}

func (sw *syncWriter) Write(p []byte) (int, error) {
	sw.mu.Lock()
	defer sw.mu.Unlock()
	return sw.w.Write(p)
}
