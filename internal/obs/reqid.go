package obs

import (
	"context"
	"crypto/rand"
	"encoding/hex"
	"strings"
)

// Request identity propagation.
//
// The serving stack threads one request ID through every layer it crosses —
// HTTP middleware, admission queue, batcher, planner execution, down to the
// key-switch kernels — via context.Context. Two carriers exist:
//
//   - a bare ID string (WithRequestID), the lightweight form any library
//     caller can attach to correlate spans and PlanRecords with its own
//     bookkeeping;
//   - a *Request (WithRequest), the daemon's richer in-flight record with a
//     live phase, admission units and deadline — see requests.go.
//
// RequestIDFrom resolves either carrier, preferring the *Request, so the
// layers underneath never care which form the caller used.

// ridKey is the context key of the bare request-ID carrier.
type ridKey struct{}

// WithRequestID returns ctx annotated with a request ID. Spans recorded by
// instrumented operations running under this context carry the ID in their
// args, and PlanRecords produced by plan execution list it.
func WithRequestID(ctx context.Context, id string) context.Context {
	return context.WithValue(ctx, ridKey{}, id)
}

// RequestIDFrom returns the request ID carried by ctx ("" when absent). Both
// carriers are recognised: an in-flight *Request (see WithRequest) wins over
// a bare WithRequestID annotation.
func RequestIDFrom(ctx context.Context) string {
	if ctx == nil {
		return ""
	}
	if r, ok := ctx.Value(reqKey{}).(*Request); ok && r != nil {
		return r.ID
	}
	if id, ok := ctx.Value(ridKey{}).(string); ok {
		return id
	}
	return ""
}

// NewRequestID returns a fresh 16-byte (32 hex char) random identifier —
// the same shape as a W3C trace-id, so assigned IDs and trace-derived IDs
// are indistinguishable downstream.
func NewRequestID() string {
	var b [16]byte
	if _, err := rand.Read(b[:]); err != nil {
		// crypto/rand never fails on supported platforms; a zero ID is still
		// a valid (if non-unique) identifier and better than a panic in the
		// serving path.
		return "00000000000000000000000000000000"
	}
	return hex.EncodeToString(b[:])
}

// NewSpanID returns a fresh 8-byte (16 hex char) random span identifier for
// traceparent propagation.
func NewSpanID() string {
	var b [8]byte
	if _, err := rand.Read(b[:]); err != nil {
		return "0000000000000000"
	}
	return hex.EncodeToString(b[:])
}

// Traceparent is a parsed W3C trace-context traceparent header
// (https://www.w3.org/TR/trace-context/): version "00",
// "00-<32 hex trace-id>-<16 hex parent-id>-<2 hex flags>".
type Traceparent struct {
	TraceID string // 32 lowercase hex chars, not all-zero
	SpanID  string // 16 lowercase hex chars, not all-zero
	Flags   string // 2 hex chars (e.g. "01" = sampled)
}

// String formats the traceparent back into its wire form.
func (tp Traceparent) String() string {
	return "00-" + tp.TraceID + "-" + tp.SpanID + "-" + tp.Flags
}

// ParseTraceparent parses a traceparent header. It accepts version 00 (and,
// per the spec's forward-compatibility rule, any other non-ff version with
// at least the 00 fields) and rejects malformed or all-zero identifiers.
func ParseTraceparent(h string) (Traceparent, bool) {
	parts := strings.Split(strings.TrimSpace(h), "-")
	if len(parts) < 4 {
		return Traceparent{}, false
	}
	ver, traceID, spanID, flags := parts[0], parts[1], parts[2], parts[3]
	if len(ver) != 2 || !isHex(ver) || strings.EqualFold(ver, "ff") {
		return Traceparent{}, false
	}
	if ver == "00" && len(parts) != 4 {
		return Traceparent{}, false
	}
	if len(traceID) != 32 || !isHex(traceID) || allZero(traceID) {
		return Traceparent{}, false
	}
	if len(spanID) != 16 || !isHex(spanID) || allZero(spanID) {
		return Traceparent{}, false
	}
	if len(flags) != 2 || !isHex(flags) {
		return Traceparent{}, false
	}
	return Traceparent{
		TraceID: strings.ToLower(traceID),
		SpanID:  strings.ToLower(spanID),
		Flags:   strings.ToLower(flags),
	}, true
}

func isHex(s string) bool {
	for i := 0; i < len(s); i++ {
		c := s[i]
		ok := (c >= '0' && c <= '9') || (c >= 'a' && c <= 'f') || (c >= 'A' && c <= 'F')
		if !ok {
			return false
		}
	}
	return true
}

func allZero(s string) bool {
	for i := 0; i < len(s); i++ {
		if s[i] != '0' {
			return false
		}
	}
	return true
}
