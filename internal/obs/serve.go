package obs

import (
	"context"
	"expvar"
	"fmt"
	"net"
	"net/http"
	"net/http/pprof"
	"time"
)

// Handler returns the observer's HTTP surface:
//
//	/                  index listing the endpoints
//	/metrics           Prometheus text exposition of the registry
//	/debug/vars        expvar JSON (cmdline, memstats, plus the registry
//	                   snapshot under the "fast" key)
//	/snapshot.json     indented JSON snapshot of the registry
//	/trace.json        Chrome trace-event JSON of the buffered spans
//	/trace.txt         human-readable span summary
//	/debug/pprof/...   net/http/pprof profiles (heap, goroutine, profile, ...)
//
// The handler is self-contained (no global DefaultServeMux registration), so
// tests and multi-observer processes can mount several without collisions.
func (o *Observer) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/", func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path != "/" {
			http.NotFound(w, r)
			return
		}
		fmt.Fprint(w, `<html><body><h1>fast observability</h1><ul>
<li><a href="/metrics">/metrics</a> (Prometheus text)</li>
<li><a href="/debug/vars">/debug/vars</a> (expvar)</li>
<li><a href="/snapshot.json">/snapshot.json</a></li>
<li><a href="/trace.json">/trace.json</a> (Chrome trace-event JSON)</li>
<li><a href="/trace.txt">/trace.txt</a></li>
<li><a href="/debug/pprof/">/debug/pprof/</a></li>
</ul></body></html>`)
	})
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		_ = o.WritePrometheus(w)
	})
	mux.HandleFunc("/debug/vars", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "application/json; charset=utf-8")
		// The expvar handler layout, with the registry snapshot appended:
		// importing expvar published cmdline and memstats for us.
		fmt.Fprintf(w, "{\n")
		first := true
		expvar.Do(func(kv expvar.KeyValue) {
			if !first {
				fmt.Fprintf(w, ",\n")
			}
			first = false
			fmt.Fprintf(w, "%q: %s", kv.Key, kv.Value)
		})
		if !first {
			fmt.Fprintf(w, ",\n")
		}
		fmt.Fprintf(w, "%q: ", "fast")
		_ = o.WriteSnapshot(w)
		fmt.Fprintf(w, "\n}\n")
	})
	mux.HandleFunc("/snapshot.json", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "application/json; charset=utf-8")
		_ = o.WriteSnapshot(w)
	})
	mux.HandleFunc("/trace.json", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "application/json; charset=utf-8")
		_ = o.WriteChromeTrace(w)
	})
	mux.HandleFunc("/trace.txt", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		fmt.Fprint(w, o.Tr().Summary())
	})
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}

// serveShutdownTimeout bounds how long Serve's shutdown closure waits for
// in-flight requests (a scrape or a long pprof profile) before falling back
// to an abrupt close.
const serveShutdownTimeout = 5 * time.Second

// Serve starts the observer's HTTP surface on addr (":0" picks a free port)
// in a background goroutine. It returns the bound address and a shutdown
// function. Opt-in only: nothing in the repository serves unless a caller
// (e.g. cmd/fastsim -http or cmd/fastd) asks.
//
// The shutdown function is graceful: it stops accepting new connections,
// waits up to serveShutdownTimeout for in-flight requests (an interrupted
// Prometheus scrape would otherwise surface as a spurious target failure),
// then force-closes whatever remains. It is safe to call more than once.
func (o *Observer) Serve(addr string) (bound net.Addr, shutdown func() error, err error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, nil, fmt.Errorf("obs: listen %s: %w", addr, err)
	}
	srv := &http.Server{Handler: o.Handler()}
	go func() { _ = srv.Serve(ln) }()
	return ln.Addr(), func() error { return ShutdownServer(srv, serveShutdownTimeout) }, nil
}

// ShutdownServer gracefully shuts down an http.Server with a bounded wait:
// Shutdown is given `within` to drain in-flight requests, after which the
// server is force-closed. Shared by the observer's Serve and the fastd
// daemon's SIGINT/SIGTERM path.
func ShutdownServer(srv *http.Server, within time.Duration) error {
	ctx, cancel := context.WithTimeout(context.Background(), within)
	defer cancel()
	if err := srv.Shutdown(ctx); err != nil {
		// Drain window expired (or the context was already done): fall back
		// to closing the remaining connections abruptly.
		if cerr := srv.Close(); cerr != nil && cerr != http.ErrServerClosed {
			return cerr
		}
		if err != context.DeadlineExceeded {
			return err
		}
	}
	return nil
}
