package obs

import (
	"context"
	"encoding/json"
	"net/http"
	"sort"
	"sync"
	"time"
)

// The in-flight request table: the live complement of the post-hoc plan ring
// and the latency histograms. Every served request owns one *Request from
// HTTP arrival to response; the layers it crosses advance its phase
// (received → queued → executing/batched) and annotate it with whatever
// attribution they learn (session, admission units, batch sequence, plan
// fingerprint). The table serves the current set at /debug/requests, so an
// operator can answer "what is the server doing right now, and for whom"
// without waiting for a scrape or pulling a trace.

// Request phases, in lifecycle order. A request may skip phases (an encrypt
// never plans; a sequential eval never batches).
const (
	PhaseReceived  = "received"  // middleware accepted it; not yet admitted
	PhasePlanning  = "planning"  // parsing/compiling the program
	PhaseQueued    = "queued"    // admitted, waiting for a worker
	PhaseExecuting = "executing" // running on a worker
	PhaseBatched   = "batched"   // scooped into a batchmate's execution
)

// Request is one in-flight request's live record. Identity fields (ID,
// TraceID, Op) are written once by the middleware before the request enters
// any concurrent layer and are read-only afterwards; mutable attribution
// goes through the Set* methods, which are nil-safe so instrumented layers
// hold plain pointers without feature flags.
type Request struct {
	ID      string // request ID (assigned or client-provided)
	TraceID string // W3C trace-id when the client sent a traceparent
	Op      string // "POST /v1/sessions/{id}/eval" style route label
	Start   time.Time

	mu          sync.Mutex
	session     string
	phase       string
	outcome     string
	units       float64
	batch       uint64
	fingerprint string
	deadline    time.Time
	queuedAt    time.Time
	execAt      time.Time
}

// SetOutcome records the request's terminal classification on the degradation
// ladder ("ok", "queue_full", "shed", "breaker_open", "draining", "canceled",
// "deadline", "bad_request", "panic", "error") for the access log. The first
// non-empty write wins: the error-mapping layer classifies before the
// middleware applies its status-code fallback.
func (r *Request) SetOutcome(o string) {
	if r == nil || o == "" {
		return
	}
	r.mu.Lock()
	if r.outcome == "" {
		r.outcome = o
	}
	r.mu.Unlock()
}

// Outcome returns the recorded outcome ("" = none yet).
func (r *Request) Outcome() string {
	if r == nil {
		return ""
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.outcome
}

// SetSession records the session keyspace the request targets.
func (r *Request) SetSession(id string) {
	if r == nil {
		return
	}
	r.mu.Lock()
	r.session = id
	r.mu.Unlock()
}

// SetPhase advances the lifecycle phase, stamping the queue/execution
// transition times the access log's queue-wait field is computed from.
func (r *Request) SetPhase(phase string) {
	if r == nil {
		return
	}
	now := time.Now()
	r.mu.Lock()
	r.phase = phase
	switch phase {
	case PhaseQueued:
		r.queuedAt = now
	case PhaseExecuting, PhaseBatched:
		if r.execAt.IsZero() {
			r.execAt = now
		}
	}
	r.mu.Unlock()
}

// SetUnits records the admission cost weight.
func (r *Request) SetUnits(u float64) {
	if r == nil {
		return
	}
	r.mu.Lock()
	r.units = u
	r.mu.Unlock()
}

// SetBatch records the micro-batch sequence number the request executed in.
func (r *Request) SetBatch(seq uint64) {
	if r == nil {
		return
	}
	r.mu.Lock()
	r.batch = seq
	r.mu.Unlock()
}

// SetFingerprint records the executed plan's fingerprint.
func (r *Request) SetFingerprint(fp string) {
	if r == nil {
		return
	}
	r.mu.Lock()
	r.fingerprint = fp
	r.mu.Unlock()
}

// SetDeadline records the request's deadline for the table's
// deadline-remaining column (zero = none).
func (r *Request) SetDeadline(d time.Time) {
	if r == nil {
		return
	}
	r.mu.Lock()
	r.deadline = d
	r.mu.Unlock()
}

// QueueWait returns how long the request waited between admission and
// execution (0 when it never queued or has not started executing).
func (r *Request) QueueWait() time.Duration {
	if r == nil {
		return 0
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.queuedAt.IsZero() || r.execAt.IsZero() {
		return 0
	}
	return r.execAt.Sub(r.queuedAt)
}

// Batch returns the recorded micro-batch sequence (0 = none).
func (r *Request) Batch() uint64 {
	if r == nil {
		return 0
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.batch
}

// Fingerprint returns the recorded plan fingerprint ("" = none).
func (r *Request) Fingerprint() string {
	if r == nil {
		return ""
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.fingerprint
}

// Units returns the recorded admission units.
func (r *Request) Units() float64 {
	if r == nil {
		return 0
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.units
}

// Session returns the recorded session ID ("" = none).
func (r *Request) Session() string {
	if r == nil {
		return ""
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.session
}

// reqKey is the context key carrying an in-flight *Request.
type reqKey struct{}

// WithRequest returns ctx carrying the in-flight request record, so every
// layer downstream (admission, batcher, kernels) can annotate it and read
// its ID without new plumbing through call signatures.
func WithRequest(ctx context.Context, r *Request) context.Context {
	return context.WithValue(ctx, reqKey{}, r)
}

// RequestFrom returns the in-flight request carried by ctx (nil when absent).
func RequestFrom(ctx context.Context) *Request {
	if ctx == nil {
		return nil
	}
	r, _ := ctx.Value(reqKey{}).(*Request)
	return r
}

// RequestSnapshot is one row of the /debug/requests table.
type RequestSnapshot struct {
	ID                  string  `json:"id"`
	TraceID             string  `json:"trace_id,omitempty"`
	Session             string  `json:"session,omitempty"`
	Op                  string  `json:"op"`
	Phase               string  `json:"phase"`
	AgeMs               float64 `json:"age_ms"`
	Units               float64 `json:"units,omitempty"`
	Batch               uint64  `json:"batch,omitempty"`
	Fingerprint         string  `json:"fingerprint,omitempty"`
	DeadlineRemainingMs float64 `json:"deadline_remaining_ms,omitempty"`
}

// RequestTable tracks the set of in-flight requests. All methods are safe on
// a nil *RequestTable (no-ops / empty results), mirroring the rest of the
// package's disabled-is-free convention.
type RequestTable struct {
	mu       sync.Mutex
	inflight map[*Request]struct{}
	gauge    *Gauge // optional live-size gauge
}

// NewRequestTable returns an empty table. reg, when non-nil, receives an
// "http.requests.inflight" gauge tracking the live table size.
func NewRequestTable(reg *Registry) *RequestTable {
	t := &RequestTable{inflight: make(map[*Request]struct{})}
	if reg != nil {
		t.gauge = reg.Gauge("http.requests.inflight")
	}
	return t
}

// Begin adds a request to the table.
func (t *RequestTable) Begin(r *Request) {
	if t == nil || r == nil {
		return
	}
	t.mu.Lock()
	t.inflight[r] = struct{}{}
	n := len(t.inflight)
	t.mu.Unlock()
	t.gauge.Set(int64(n))
}

// End removes a request from the table.
func (t *RequestTable) End(r *Request) {
	if t == nil || r == nil {
		return
	}
	t.mu.Lock()
	delete(t.inflight, r)
	n := len(t.inflight)
	t.mu.Unlock()
	t.gauge.Set(int64(n))
}

// Len returns the number of in-flight requests.
func (t *RequestTable) Len() int {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return len(t.inflight)
}

// Snapshot returns the current in-flight set, oldest first.
func (t *RequestTable) Snapshot() []RequestSnapshot {
	if t == nil {
		return nil
	}
	now := time.Now()
	t.mu.Lock()
	reqs := make([]*Request, 0, len(t.inflight))
	for r := range t.inflight {
		reqs = append(reqs, r)
	}
	t.mu.Unlock()

	out := make([]RequestSnapshot, 0, len(reqs))
	for _, r := range reqs {
		r.mu.Lock()
		snap := RequestSnapshot{
			ID:          r.ID,
			TraceID:     r.TraceID,
			Session:     r.session,
			Op:          r.Op,
			Phase:       r.phase,
			AgeMs:       float64(now.Sub(r.Start)) / float64(time.Millisecond),
			Units:       r.units,
			Batch:       r.batch,
			Fingerprint: r.fingerprint,
		}
		if !r.deadline.IsZero() {
			snap.DeadlineRemainingMs = float64(r.deadline.Sub(now)) / float64(time.Millisecond)
		}
		r.mu.Unlock()
		out = append(out, snap)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].AgeMs != out[j].AgeMs {
			return out[i].AgeMs > out[j].AgeMs
		}
		return out[i].ID < out[j].ID
	})
	return out
}

// Handler serves the table as indented JSON: {"count": N, "requests": [...]}.
func (t *RequestTable) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "application/json; charset=utf-8")
		snap := t.Snapshot()
		if snap == nil {
			snap = []RequestSnapshot{}
		}
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		_ = enc.Encode(map[string]any{"count": len(snap), "requests": snap})
	})
}
