package rns

import (
	"fmt"
	"math/rand"
	"testing"

	"github.com/fastfhe/fast/internal/ring"
)

// benchModuli builds a prime chain for benchmarking.
func benchModuli(b *testing.B, bitSize, logN, count int) []ring.Modulus {
	b.Helper()
	ps, err := ring.GenerateNTTPrimes(bitSize, logN, count)
	if err != nil {
		b.Fatalf("GenerateNTTPrimes: %v", err)
	}
	ms := make([]ring.Modulus, len(ps))
	for i, p := range ps {
		ms[i], err = ring.NewModulus(p)
		if err != nil {
			b.Fatalf("NewModulus: %v", err)
		}
	}
	return ms
}

func benchRows(ms []ring.Modulus, n int, seed int64) [][]uint64 {
	rng := rand.New(rand.NewSource(seed))
	out := make([][]uint64, len(ms))
	for i, m := range ms {
		out[i] = make([]uint64, n)
		for k := range out[i] {
			out[i][k] = rng.Uint64() % m.Q
		}
	}
	return out
}

// BenchmarkConvert measures the BConv kernel (the paper's BConvU systolic
// matrix product) across the shapes the key-switch dataflow actually runs:
// ModUp extends an α-limb group to the complement basis; ModDown converts the
// short special chain back onto Q.
func BenchmarkConvert(b *testing.B) {
	const logN = 12
	n := 1 << logN
	cases := []struct {
		name              string
		fromBits, fromCnt int
		toBits, toCnt     int
	}{
		{"modup/3x36to12x36", 36, 3, 36, 12},
		{"modup/2x60to6x60", 60, 2, 60, 6},
		{"moddown/2x60to12x36", 60, 2, 36, 12},
		{"moddown/4x36to8x36", 36, 4, 36, 8},
	}
	for _, tc := range cases {
		from := benchModuli(b, tc.fromBits, logN, tc.fromCnt)
		var to []ring.Modulus
		if tc.fromBits == tc.toBits {
			// Disjoint chains of the same width: take extras from one call.
			all := benchModuli(b, tc.toBits, logN, tc.fromCnt+tc.toCnt)
			from = all[:tc.fromCnt]
			to = all[tc.fromCnt:]
		} else {
			to = benchModuli(b, tc.toBits, logN, tc.toCnt)
		}
		ext, err := NewExtender(from, to)
		if err != nil {
			b.Fatalf("NewExtender: %v", err)
		}
		src := benchRows(from, n, 7)
		dst := benchRows(to, n, 8)
		b.Run(tc.name, func(b *testing.B) {
			b.SetBytes(int64(n) * 8 * int64(tc.fromCnt+tc.toCnt))
			for i := 0; i < b.N; i++ {
				ext.Convert(src, dst)
			}
		})
	}
}

// BenchmarkModDownKernel measures the full ModDown (inner BConv plus the
// subtract-and-scale pass over the Q limbs).
func BenchmarkModDownKernel(b *testing.B) {
	const logN = 12
	n := 1 << logN
	q := benchModuli(b, 36, logN, 12)
	p := benchModuli(b, 60, logN, 2)
	d, err := NewModDowner(q, p)
	if err != nil {
		b.Fatalf("NewModDowner: %v", err)
	}
	xQ := benchRows(q, n, 9)
	xP := benchRows(p, n, 10)
	out := benchRows(q, n, 11)
	b.Run(fmt.Sprintf("12x36aux2x60/N=%d", n), func(b *testing.B) {
		b.SetBytes(int64(n) * 8 * 14)
		for i := 0; i < b.N; i++ {
			d.ModDown(xQ, xP, out)
		}
	})
}

// BenchmarkRescaleKernel measures the rescale pass (drop the top limb).
func BenchmarkRescaleKernel(b *testing.B) {
	const logN = 12
	n := 1 << logN
	q := benchModuli(b, 36, logN, 12)
	r := NewRescaler(q)
	x := benchRows(q, n, 12)
	out := benchRows(q[:len(q)-1], n, 13)
	b.Run(fmt.Sprintf("12x36/N=%d", n), func(b *testing.B) {
		b.SetBytes(int64(n) * 8 * 12)
		for i := 0; i < b.N; i++ {
			r.Rescale(x, out)
		}
	})
}
