package rns

import (
	"math/big"
	"math/rand"
	"testing"

	"github.com/fastfhe/fast/internal/ring"
)

func moduli(t *testing.T, bitSize, logN, count int) []ring.Modulus {
	t.Helper()
	ps, err := ring.GenerateNTTPrimes(bitSize, logN, count)
	if err != nil {
		t.Fatalf("GenerateNTTPrimes: %v", err)
	}
	ms := make([]ring.Modulus, len(ps))
	for i, p := range ps {
		ms[i], err = ring.NewModulus(p)
		if err != nil {
			t.Fatalf("NewModulus: %v", err)
		}
	}
	return ms
}

func prod(ms []ring.Modulus) *big.Int {
	p := big.NewInt(1)
	for _, m := range ms {
		p.Mul(p, new(big.Int).SetUint64(m.Q))
	}
	return p
}

// encodeRNS reduces v (non-negative) into each limb.
func encodeRNS(v *big.Int, ms []ring.Modulus, col int, dst [][]uint64) {
	t := new(big.Int)
	for i, m := range ms {
		dst[i][col] = t.Mod(v, new(big.Int).SetUint64(m.Q)).Uint64()
	}
}

// decodeRNS CRT-reconstructs column col over the limbs ms.
func decodeRNS(src [][]uint64, ms []ring.Modulus, col int) *big.Int {
	P := prod(ms)
	acc := new(big.Int)
	for i, m := range ms {
		qi := new(big.Int).SetUint64(m.Q)
		hat := new(big.Int).Div(P, qi)
		inv := m.InvMod(new(big.Int).Mod(hat, qi).Uint64())
		term := new(big.Int).SetUint64(m.MulMod(src[i][col], inv))
		term.Mul(term, hat)
		acc.Add(acc, term)
	}
	return acc.Mod(acc, P)
}

func rows(limbs, n int) [][]uint64 {
	out := make([][]uint64, limbs)
	for i := range out {
		out[i] = make([]uint64, n)
	}
	return out
}

func TestNewExtenderValidation(t *testing.T) {
	q := moduli(t, 36, 10, 2)
	if _, err := NewExtender(nil, q); err == nil {
		t.Error("expected error for empty source basis")
	}
	if _, err := NewExtender(q, q); err == nil {
		t.Error("expected error for overlapping bases")
	}
}

// The approximate conversion must return x + u*Q with 0 <= u < len(from).
func TestConvertApproximationBound(t *testing.T) {
	const n = 16
	q := moduli(t, 36, 10, 4)
	p := moduli(t, 60, 10, 3)
	ext, err := NewExtender(q, p)
	if err != nil {
		t.Fatalf("NewExtender: %v", err)
	}
	Q := prod(q)
	P := prod(p)
	rng := rand.New(rand.NewSource(5))
	src, dst := rows(len(q), n), rows(len(p), n)
	want := make([]*big.Int, n)
	for k := 0; k < n; k++ {
		v := new(big.Int).Rand(rng, Q)
		want[k] = v
		encodeRNS(v, q, k, src)
	}
	ext.Convert(src, dst)
	for k := 0; k < n; k++ {
		got := decodeRNS(dst, p, k)
		// got ≡ want + u*Q (mod P) for small u >= 0.
		diff := new(big.Int).Sub(got, want[k])
		diff.Mod(diff, P)
		u := new(big.Int)
		rem := new(big.Int)
		u.DivMod(diff, Q, rem)
		if rem.Sign() != 0 {
			t.Fatalf("col %d: conversion error is not a multiple of Q (rem=%s)", k, rem)
		}
		if u.Cmp(big.NewInt(int64(len(q)))) >= 0 {
			t.Fatalf("col %d: overflow multiple u=%s too large", k, u)
		}
	}
}

func TestConvertPreservesValueModQ(t *testing.T) {
	// When the target basis is much larger than u*Q the reconstruction does
	// not wrap, so the converted value must be congruent to the input mod Q.
	const n = 8
	q := moduli(t, 36, 10, 3)
	p := moduli(t, 60, 11, 4)
	ext, err := NewExtender(q, p)
	if err != nil {
		t.Fatalf("NewExtender: %v", err)
	}
	Q := prod(q)
	src, dst := rows(len(q), n), rows(len(p), n)
	for k := 0; k < n; k++ {
		encodeRNS(big.NewInt(int64(k*977+3)), q, k, src)
	}
	ext.Convert(src, dst)
	for k := 0; k < n; k++ {
		got := decodeRNS(dst, p, k)
		got.Mod(got, Q)
		if got.Int64() != int64(k*977+3) {
			t.Fatalf("col %d: got %s want %d (mod Q)", k, got, k*977+3)
		}
	}
}

func TestConvertShapePanics(t *testing.T) {
	q := moduli(t, 36, 10, 2)
	p := moduli(t, 38, 11, 2)
	ext, _ := NewExtender(q, p)
	defer func() {
		if recover() == nil {
			t.Error("expected panic on limb mismatch")
		}
	}()
	ext.Convert(rows(1, 4), rows(2, 4))
}

// ModDown(x*P + e) must equal x + small error, for x < Q.
func TestModDownRemovesAuxiliaryModulus(t *testing.T) {
	const n = 16
	q := moduli(t, 36, 10, 4)
	p := moduli(t, 60, 10, 2)
	d, err := NewModDowner(q, p)
	if err != nil {
		t.Fatalf("NewModDowner: %v", err)
	}
	Q, P := prod(q), prod(p)
	rng := rand.New(rand.NewSource(6))
	xQ, xP, out := rows(len(q), n), rows(len(p), n), rows(len(q), n)
	want := make([]*big.Int, n)
	for k := 0; k < n; k++ {
		x := new(big.Int).Rand(rng, Q)
		want[k] = x
		v := new(big.Int).Mul(x, P) // exact multiple: ModDown must invert it
		vModQP := new(big.Int).Mod(v, new(big.Int).Mul(Q, P))
		encodeRNS(vModQP, q, k, xQ)
		encodeRNS(vModQP, p, k, xP)
	}
	d.ModDown(xQ, xP, out)
	for k := 0; k < n; k++ {
		got := decodeRNS(out, q, k)
		// Allow error of a few units from the approximate conversion:
		// |got - want| mod Q must be < len(p)+1 in centered representation.
		diff := new(big.Int).Sub(got, want[k])
		diff.Mod(diff, Q)
		half := new(big.Int).Rsh(Q, 1)
		if diff.Cmp(half) > 0 {
			diff.Sub(diff, Q)
		}
		if diff.CmpAbs(big.NewInt(int64(len(p)+1))) > 0 {
			t.Fatalf("col %d: ModDown error %s exceeds bound", k, diff)
		}
	}
}

func TestModDownShapePanics(t *testing.T) {
	q := moduli(t, 36, 10, 2)
	p := moduli(t, 38, 11, 1)
	d, err := NewModDowner(q, p)
	if err != nil {
		t.Fatalf("NewModDowner: %v", err)
	}
	defer func() {
		if recover() == nil {
			t.Error("expected panic on limb mismatch")
		}
	}()
	d.ModDown(rows(2, 4), rows(2, 4), rows(2, 4))
}

// Rescale(x) must equal round towards the congruent value: the output y
// satisfies y ≡ (x - [x]_{q_l}) / q_l, i.e. |y - x/q_l| < 1.
func TestRescaleDividesByTopLimb(t *testing.T) {
	const n = 16
	q := moduli(t, 36, 10, 4)
	rs := NewRescaler(q)
	Q := prod(q)
	Ql := prod(q[:3])
	ql := new(big.Int).SetUint64(q[3].Q)
	rng := rand.New(rand.NewSource(7))
	x, out := rows(4, n), rows(3, n)
	want := make([]*big.Int, n)
	for k := 0; k < n; k++ {
		v := new(big.Int).Rand(rng, Q)
		want[k] = v
		encodeRNS(v, q, k, x)
	}
	rs.Rescale(x, out)
	for k := 0; k < n; k++ {
		got := decodeRNS(out, q[:3], k)
		// Exact identity: got ≡ (v - (v mod q_l)) * q_l^-1 (mod Ql).
		exact := new(big.Int).Mod(want[k], ql)
		exact.Sub(want[k], exact)
		exact.Div(exact, ql)
		exact.Mod(exact, Ql)
		if got.Cmp(exact) != 0 {
			t.Fatalf("col %d: got %s want %s", k, got, exact)
		}
	}
}

func TestRescalePanicsOnSingleLimb(t *testing.T) {
	q := moduli(t, 36, 10, 2)
	rs := NewRescaler(q)
	defer func() {
		if recover() == nil {
			t.Error("expected panic rescaling a single-limb value")
		}
	}()
	rs.Rescale(rows(1, 4), rows(0, 4))
}
