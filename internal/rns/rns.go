// Package rns provides the residue-number-system tools the CKKS scheme and
// the FAST accelerator's BConv units operate on: approximate base conversion
// between RNS bases (the BConv kernel), ModUp/ModDown for key-switching, and
// rescaling. All routines work on polynomials in coefficient representation.
//
// The base conversion implemented here is the Halevi–Polyak–Shoup fast
// approximate conversion: it may add a small multiple u*Q of the source
// modulus (0 <= u < #source limbs) to the converted value. Every consumer in
// this codebase is designed for that contract (key-switching absorbs the
// Q-multiple into the key gadget, ModDown removes it with the rounding
// correction).
package rns

import (
	"fmt"
	"math/big"

	"github.com/fastfhe/fast/internal/ring"
)

// Extender converts RNS representations from a source basis Q = {q_i} to a
// target basis P = {p_j}. The precomputations follow the standard CRT
// factorisation x = sum_i [x_i * (Q/q_i)^-1]_{q_i} * (Q/q_i) (mod Q).
type Extender struct {
	From, To []ring.Modulus

	qhatInv    []uint64   // (Q/q_i)^-1 mod q_i
	qhatInvSho []uint64   // Shoup companions of qhatInv
	qhatModP   [][]uint64 // [j][i] = (Q/q_i) mod p_j
}

// NewExtender precomputes the conversion tables from the `from` chain to the
// `to` chain. The two chains must be disjoint.
func NewExtender(from, to []ring.Modulus) (*Extender, error) {
	if len(from) == 0 || len(to) == 0 {
		return nil, fmt.Errorf("rns: empty basis (from=%d, to=%d limbs)", len(from), len(to))
	}
	for _, f := range from {
		for _, t := range to {
			if f.Q == t.Q {
				return nil, fmt.Errorf("rns: bases overlap at prime %d", f.Q)
			}
		}
	}
	e := &Extender{From: from, To: to}

	Q := big.NewInt(1)
	for _, m := range from {
		Q.Mul(Q, new(big.Int).SetUint64(m.Q))
	}
	e.qhatInv = make([]uint64, len(from))
	e.qhatInvSho = make([]uint64, len(from))
	qhat := make([]*big.Int, len(from))
	for i, m := range from {
		qi := new(big.Int).SetUint64(m.Q)
		qhat[i] = new(big.Int).Div(Q, qi)
		rem := new(big.Int).Mod(qhat[i], qi).Uint64()
		e.qhatInv[i] = m.InvMod(rem)
		e.qhatInvSho[i] = m.ShoupPrecomp(e.qhatInv[i])
	}
	e.qhatModP = make([][]uint64, len(to))
	for j, mp := range to {
		e.qhatModP[j] = make([]uint64, len(from))
		pj := new(big.Int).SetUint64(mp.Q)
		for i := range from {
			e.qhatModP[j][i] = new(big.Int).Mod(qhat[i], pj).Uint64()
		}
	}
	return e, nil
}

// Convert performs the approximate base conversion of src (one value per
// source limb: src[i][k] is coefficient k mod q_i) into dst (dst[j][k] mod
// p_j). src and dst must have matching coefficient counts. The scratch slice,
// if non-nil, must have len(src) rows of the coefficient count and is used to
// hold the scaled residues.
func (e *Extender) Convert(src, dst [][]uint64) {
	if len(src) != len(e.From) || len(dst) != len(e.To) {
		panic(fmt.Sprintf("rns: Convert limb mismatch: src %d/%d, dst %d/%d",
			len(src), len(e.From), len(dst), len(e.To)))
	}
	n := len(src[0])
	// t_i = x_i * (Q/q_i)^-1 mod q_i
	t := make([][]uint64, len(src))
	for i, m := range e.From {
		t[i] = make([]uint64, n)
		inv, invSho := e.qhatInv[i], e.qhatInvSho[i]
		for k := 0; k < n; k++ {
			t[i][k] = m.MulModShoup(src[i][k], inv, invSho)
		}
	}
	// y_j = sum_i t_i * (Q/q_i) mod p_j  — this is the matrix product the
	// accelerator's BConvU systolic array executes (limbs x base-table).
	for j, mp := range e.To {
		dj := dst[j]
		for k := 0; k < n; k++ {
			dj[k] = 0
		}
		for i := range e.From {
			w := e.qhatModP[j][i]
			wSho := mp.ShoupPrecomp(w)
			ti := t[i]
			for k := 0; k < n; k++ {
				dj[k] = mp.AddMod(dj[k], mp.MulModShoup(ti[k], w, wSho))
			}
		}
	}
}

// ModDowner removes an auxiliary modulus P from a value defined over Q*P:
// out = round(x / P) mod Q, the final step of both key-switching methods.
type ModDowner struct {
	Q, P []ring.Modulus

	conv    *Extender // P -> Q
	pInvMod []uint64  // P^-1 mod q_i
}

// NewModDowner precomputes the ModDown tables for main chain Q and auxiliary
// chain P.
func NewModDowner(q, p []ring.Modulus) (*ModDowner, error) {
	conv, err := NewExtender(p, q)
	if err != nil {
		return nil, err
	}
	d := &ModDowner{Q: q, P: p, conv: conv}
	Pprod := big.NewInt(1)
	for _, m := range p {
		Pprod.Mul(Pprod, new(big.Int).SetUint64(m.Q))
	}
	d.pInvMod = make([]uint64, len(q))
	for i, m := range q {
		rem := new(big.Int).Mod(Pprod, new(big.Int).SetUint64(m.Q)).Uint64()
		d.pInvMod[i] = m.InvMod(rem)
	}
	return d, nil
}

// ModDown computes out_i = (xQ_i - conv(xP)_i) * P^-1 mod q_i for each main
// limb. xQ has len(Q) rows, xP len(P) rows, out len(Q) rows; all in
// coefficient form.
func (d *ModDowner) ModDown(xQ, xP, out [][]uint64) {
	if len(xQ) != len(d.Q) || len(xP) != len(d.P) || len(out) != len(d.Q) {
		panic("rns: ModDown limb mismatch")
	}
	n := len(xQ[0])
	tmp := make([][]uint64, len(d.Q))
	for i := range tmp {
		tmp[i] = make([]uint64, n)
	}
	d.conv.Convert(xP, tmp)
	for i, m := range d.Q {
		inv := d.pInvMod[i]
		invSho := m.ShoupPrecomp(inv)
		xi, ti, oi := xQ[i], tmp[i], out[i]
		for k := 0; k < n; k++ {
			oi[k] = m.MulModShoup(m.SubMod(xi[k], ti[k]), inv, invSho)
		}
	}
}

// Rescaler divides a ciphertext polynomial by its top limb prime, the CKKS
// rescale operation that keeps the scale bounded after multiplications.
type Rescaler struct {
	Moduli []ring.Modulus
	// qlInv[level][i] = q_level^-1 mod q_i for i < level
	qlInv [][]uint64
}

// NewRescaler precomputes the per-level inverse tables for the given chain.
func NewRescaler(moduli []ring.Modulus) *Rescaler {
	r := &Rescaler{Moduli: moduli, qlInv: make([][]uint64, len(moduli))}
	for l := 1; l < len(moduli); l++ {
		r.qlInv[l] = make([]uint64, l)
		ql := moduli[l].Q
		for i := 0; i < l; i++ {
			r.qlInv[l][i] = moduli[i].InvMod(ql % moduli[i].Q)
		}
	}
	return r
}

// Rescale drops the last limb of x (level = len(x)-1) writing (x - x_l)/q_l
// into out, which must have one fewer limb. Inputs in coefficient form.
func (r *Rescaler) Rescale(x, out [][]uint64) {
	l := len(x) - 1
	if l < 1 || len(out) != l {
		panic(fmt.Sprintf("rns: Rescale needs >=2 limbs and out of %d rows", l))
	}
	n := len(x[0])
	xl := x[l]
	for i := 0; i < l; i++ {
		m := r.Moduli[i]
		inv := r.qlInv[l][i]
		invSho := m.ShoupPrecomp(inv)
		xi, oi := x[i], out[i]
		for k := 0; k < n; k++ {
			// Reduce the top-limb residue into q_i before subtracting;
			// centering the residue halves the rounding error but the
			// plain variant keeps the error below q_l which the CKKS
			// scale absorbs.
			v := xl[k] % m.Q
			oi[k] = m.MulModShoup(m.SubMod(xi[k], v), inv, invSho)
		}
	}
}
