// Package rns provides the residue-number-system tools the CKKS scheme and
// the FAST accelerator's BConv units operate on: approximate base conversion
// between RNS bases (the BConv kernel), ModUp/ModDown for key-switching, and
// rescaling. All routines work on polynomials in coefficient representation.
//
// The base conversion implemented here is the Halevi–Polyak–Shoup fast
// approximate conversion: it may add a small multiple u*Q of the source
// modulus (0 <= u < #source limbs) to the converted value. Every consumer in
// this codebase is designed for that contract (key-switching absorbs the
// Q-multiple into the key gadget, ModDown removes it with the rounding
// correction).
//
// Concurrency: Extender, ModDowner and Rescaler are immutable after
// construction apart from an internal scratch pool, and are safe for
// concurrent use from multiple goroutines. Their Workers field (read-only
// after construction) fans the independent per-limb loops out across
// goroutines following ring.Workers semantics — the lane-level parallelism
// the FAST accelerator's BConvU array provides in hardware.
package rns

import (
	"fmt"
	"math/big"
	"math/bits"
	"sync"

	"github.com/fastfhe/fast/internal/ring"
)

// rowMatrix is an arena-backed scratch matrix: rows[i] aliases
// backing[i*n : (i+1)*n], so kernels that want strided access (the vectorized
// BConv accumulate) can run over the contiguous backing while per-limb loops
// keep the row view.
type rowMatrix struct {
	rows    [][]uint64
	backing []uint64
}

// rowPool recycles arena-backed scratch matrices of a fixed shape.
type rowPool struct {
	rows, n int
	pool    sync.Pool
}

func newRowPool(rows, n int) *rowPool {
	rp := &rowPool{rows: rows, n: n}
	rp.pool.New = func() any {
		backing := make([]uint64, rows*n)
		m := make([][]uint64, rows)
		for i := range m {
			m[i] = backing[i*n : (i+1)*n : (i+1)*n]
		}
		return &rowMatrix{rows: m, backing: backing}
	}
	return rp
}

func (rp *rowPool) get() *rowMatrix  { return rp.pool.Get().(*rowMatrix) }
func (rp *rowPool) put(m *rowMatrix) { rp.pool.Put(m) }

// Extender converts RNS representations from a source basis Q = {q_i} to a
// target basis P = {p_j}. The precomputations follow the standard CRT
// factorisation x = sum_i [x_i * (Q/q_i)^-1]_{q_i} * (Q/q_i) (mod Q).
type Extender struct {
	From, To []ring.Modulus

	// Workers caps the goroutine fan-out of Convert (ring.Workers
	// convention; 1 = serial). Set once before first use.
	Workers int

	qhatInv     []uint64   // (Q/q_i)^-1 mod q_i
	qhatInvSho  []uint64   // Shoup companions of qhatInv
	qhatModP    [][]uint64 // [j][i] = (Q/q_i) mod p_j
	qhatModPSho [][]uint64 // [j][i] = Shoup companion of qhatModP[j][i] under p_j

	scratch struct {
		mu    sync.Mutex
		n     int
		pools *rowPool
	}
}

// NewExtender precomputes the conversion tables from the `from` chain to the
// `to` chain. The two chains must be disjoint.
func NewExtender(from, to []ring.Modulus) (*Extender, error) {
	if len(from) == 0 || len(to) == 0 {
		return nil, fmt.Errorf("rns: empty basis (from=%d, to=%d limbs)", len(from), len(to))
	}
	for _, f := range from {
		for _, t := range to {
			if f.Q == t.Q {
				return nil, fmt.Errorf("rns: bases overlap at prime %d", f.Q)
			}
		}
	}
	e := &Extender{From: from, To: to, Workers: 1}

	Q := big.NewInt(1)
	for _, m := range from {
		Q.Mul(Q, new(big.Int).SetUint64(m.Q))
	}
	e.qhatInv = make([]uint64, len(from))
	e.qhatInvSho = make([]uint64, len(from))
	qhat := make([]*big.Int, len(from))
	for i, m := range from {
		qi := new(big.Int).SetUint64(m.Q)
		qhat[i] = new(big.Int).Div(Q, qi)
		rem := new(big.Int).Mod(qhat[i], qi).Uint64()
		e.qhatInv[i] = m.InvMod(rem)
		e.qhatInvSho[i] = m.ShoupPrecomp(e.qhatInv[i])
	}
	e.qhatModP = make([][]uint64, len(to))
	e.qhatModPSho = make([][]uint64, len(to))
	for j := range to {
		e.qhatModP[j] = make([]uint64, len(from))
		e.qhatModPSho[j] = make([]uint64, len(from))
		pj := new(big.Int).SetUint64(to[j].Q)
		for i := range from {
			e.qhatModP[j][i] = new(big.Int).Mod(qhat[i], pj).Uint64()
			e.qhatModPSho[j][i] = to[j].ShoupPrecomp(e.qhatModP[j][i])
		}
	}
	return e, nil
}

// scratchRows returns a pooled len(From)-row scratch matrix for coefficient
// count n, plus the pool to return it to.
func (e *Extender) scratchRows(n int) (*rowMatrix, *rowPool) {
	e.scratch.mu.Lock()
	if e.scratch.pools == nil || e.scratch.n != n {
		e.scratch.pools = newRowPool(len(e.From), n)
		e.scratch.n = n
	}
	rp := e.scratch.pools
	e.scratch.mu.Unlock()
	return rp.get(), rp
}

// Convert performs the approximate base conversion of src (one value per
// source limb: src[i][k] is coefficient k mod q_i) into dst (dst[j][k] mod
// p_j). src and dst must have matching coefficient counts. Source rows may be
// lazily reduced ([0, 2q_i), e.g. straight out of ring.NTTTable.InverseLazy);
// outputs are fully reduced. Safe for concurrent use; the per-limb work is
// fanned out across Workers goroutines.
//
// The ℓ-term inner product y_j[k] = Σ_i t_i[k] * (Q/q_i mod p_j) — the matrix
// product the accelerator's BConvU systolic array executes — is accumulated
// HPS-style as a 128-bit (hi, lo) pair via bits.Mul64/bits.Add64 and reduced
// with ONE Barrett step per output coefficient, instead of ℓ round-trips
// through AddMod(MulModShoup(...)). A 128-bit accumulator holds at least
// AccumCapacity terms (≥ 8 even at the 61-bit cap); longer source bases fold
// the accumulator through an intermediate Barrett reduction.
func (e *Extender) Convert(src, dst [][]uint64) {
	// INVARIANT: basis shapes are derived from one validated parameter set.
	// A panic here is a repo-internal bug, never a reaction to caller input —
	// malformed inputs are rejected with typed errors at the public boundary.
	if len(src) != len(e.From) || len(dst) != len(e.To) {
		panic(fmt.Sprintf("rns: Convert limb mismatch: src %d/%d, dst %d/%d",
			len(src), len(e.From), len(dst), len(e.To)))
	}
	n := len(src[0])
	// t_i = x_i * (Q/q_i)^-1 mod q_i — independent per source limb. Exact for
	// any src magnitude (Shoup reduction is exact over the full 64-bit range),
	// so lazy inputs are tolerated; t_i is always fully reduced.
	t, rp := e.scratchRows(n)
	defer rp.put(t)
	ring.ForEachLimbRange(len(e.From), e.Workers, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			m := e.From[i]
			inv, invSho := e.qhatInv[i], e.qhatInvSho[i]
			m.ShoupMulVec(t.rows[i], src[i][:n], inv, invSho)
		}
	})
	l := len(e.From)
	rows := t.rows[:l]
	backing := t.backing
	ring.ForEachLimbRange(len(e.To), e.Workers, func(lo, hi int) {
		for j := lo; j < hi; j++ {
			mp := e.To[j]
			dj := dst[j]
			ws := e.qhatModP[j]
			if capTerms := mp.AccumCapacity(); l > capTerms {
				convertFold(mp, rows, ws, dj, n, capTerms)
				continue
			}
			// The scratch arena has the rows at stride n, so the inner
			// product runs over the contiguous backing (vectorized when the
			// assembly kernels are in). The precomputed Shoup companions let
			// short bases take the per-term lazy-Shoup kernel.
			mp.BConvAccumShoup(dj[:n], backing, n, ws[:l], e.qhatModPSho[j][:l])
		}
	})
}

// convertFold is the long-base fallback of Convert: when the source base has
// more limbs than the target modulus' 128-bit accumulator capacity, the
// accumulator is folded through an intermediate Barrett reduction every `cap`
// terms (the folded value < p counts as one term). Only reachable for ℓ > 8
// source limbs at the 61-bit cap; ciphertext-prime targets never fold.
func convertFold(mp ring.Modulus, rows [][]uint64, ws, dj []uint64, n, capTerms int) {
	l := len(rows)
	for k := 0; k < n; k++ {
		var accHi, accLo uint64
		terms := 0
		for i := 0; i < l; i++ {
			if terms == capTerms {
				accLo = mp.Reduce(accHi, accLo)
				accHi = 0
				terms = 1
			}
			ph, pl := bits.Mul64(rows[i][k], ws[i])
			var c uint64
			accLo, c = bits.Add64(accLo, pl, 0)
			accHi += ph + c
			terms++
		}
		dj[k] = mp.Reduce(accHi, accLo)
	}
}

// ModDowner removes an auxiliary modulus P from a value defined over Q*P:
// out = round(x / P) mod Q, the final step of both key-switching methods.
type ModDowner struct {
	Q, P []ring.Modulus

	// Workers caps the goroutine fan-out (ring.Workers convention; 1 =
	// serial). Set once before first use; propagated to the inner BConv.
	Workers int

	conv       *Extender // P -> Q
	pInvMod    []uint64  // P^-1 mod q_i
	pInvModSho []uint64  // Shoup companions

	scratch struct {
		mu    sync.Mutex
		n     int
		pools *rowPool
	}
}

// NewModDowner precomputes the ModDown tables for main chain Q and auxiliary
// chain P.
func NewModDowner(q, p []ring.Modulus) (*ModDowner, error) {
	conv, err := NewExtender(p, q)
	if err != nil {
		return nil, err
	}
	d := &ModDowner{Q: q, P: p, Workers: 1, conv: conv}
	Pprod := big.NewInt(1)
	for _, m := range p {
		Pprod.Mul(Pprod, new(big.Int).SetUint64(m.Q))
	}
	d.pInvMod = make([]uint64, len(q))
	d.pInvModSho = make([]uint64, len(q))
	for i, m := range q {
		rem := new(big.Int).Mod(Pprod, new(big.Int).SetUint64(m.Q)).Uint64()
		d.pInvMod[i] = m.InvMod(rem)
		d.pInvModSho[i] = m.ShoupPrecomp(d.pInvMod[i])
	}
	return d, nil
}

// SetWorkers sets the fan-out on the downer and its inner converter. Call
// before first use; not safe to race with ModDown.
func (d *ModDowner) SetWorkers(w int) {
	d.Workers = w
	d.conv.Workers = w
}

func (d *ModDowner) scratchRows(n int) (*rowMatrix, *rowPool) {
	d.scratch.mu.Lock()
	if d.scratch.pools == nil || d.scratch.n != n {
		d.scratch.pools = newRowPool(len(d.Q), n)
		d.scratch.n = n
	}
	rp := d.scratch.pools
	d.scratch.mu.Unlock()
	return rp.get(), rp
}

// ModDown computes out_i = (xQ_i - conv(xP)_i) * P^-1 mod q_i for each main
// limb. xQ has len(Q) rows, xP len(P) rows, out len(Q) rows; all in
// coefficient form. Input rows may be lazily reduced ([0, 2q); e.g. straight
// out of InverseLazy); outputs are fully reduced. Safe for concurrent use.
func (d *ModDowner) ModDown(xQ, xP, out [][]uint64) {
	// INVARIANT: ModDown operands are sized by the key switcher from the same chain.
	// A panic here is a repo-internal bug, never a reaction to caller input —
	// malformed inputs are rejected with typed errors at the public boundary.
	if len(xQ) != len(d.Q) || len(xP) != len(d.P) || len(out) != len(d.Q) {
		panic("rns: ModDown limb mismatch")
	}
	n := len(xQ[0])
	tmp, rp := d.scratchRows(n)
	defer rp.put(tmp)
	d.conv.Convert(xP, tmp.rows)
	ring.ForEachLimbRange(len(d.Q), d.Workers, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			m := d.Q[i]
			inv, invSho := d.pInvMod[i], d.pInvModSho[i]
			// Fused lazy subtract-multiply: xQ rows < 2q and the converted
			// rows < q, within ShoupMulSubVec's < 2q contract; the result
			// re-enters the fully reduced domain.
			m.ShoupMulSubVec(out[i][:n], xQ[i][:n], tmp.rows[i], inv, invSho)
		}
	})
}

// Rescaler divides a ciphertext polynomial by its top limb prime, the CKKS
// rescale operation that keeps the scale bounded after multiplications.
type Rescaler struct {
	Moduli []ring.Modulus

	// Workers caps the goroutine fan-out of Rescale (ring.Workers
	// convention; 1 = serial). Set once before first use.
	Workers int

	// qlInv[level][i] = q_level^-1 mod q_i for i < level
	qlInv    [][]uint64
	qlInvSho [][]uint64
}

// NewRescaler precomputes the per-level inverse tables for the given chain.
func NewRescaler(moduli []ring.Modulus) *Rescaler {
	r := &Rescaler{
		Moduli:   moduli,
		Workers:  1,
		qlInv:    make([][]uint64, len(moduli)),
		qlInvSho: make([][]uint64, len(moduli)),
	}
	for l := 1; l < len(moduli); l++ {
		r.qlInv[l] = make([]uint64, l)
		r.qlInvSho[l] = make([]uint64, l)
		ql := moduli[l].Q
		for i := 0; i < l; i++ {
			r.qlInv[l][i] = moduli[i].InvMod(ql % moduli[i].Q)
			r.qlInvSho[l][i] = moduli[i].ShoupPrecomp(r.qlInv[l][i])
		}
	}
	return r
}

// Rescale drops the last limb of x (level = len(x)-1) writing (x - x_l)/q_l
// into out, which must have one fewer limb. Inputs in coefficient form; rows
// may be lazily reduced ([0, 2q)); outputs are fully reduced. Safe for
// concurrent use.
func (r *Rescaler) Rescale(x, out [][]uint64) {
	l := len(x) - 1
	// INVARIANT: Rescale at level 0 is rejected with ErrLevelExhausted at the evaluator boundary.
	// A panic here is a repo-internal bug, never a reaction to caller input —
	// malformed inputs are rejected with typed errors at the public boundary.
	if l < 1 || len(out) != l {
		panic(fmt.Sprintf("rns: Rescale needs >=2 limbs and out of %d rows", l))
	}
	n := len(x[0])
	xl := x[l]
	ring.ForEachLimbRange(l, r.Workers, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			m := r.Moduli[i]
			twoQ := m.Q << 1
			inv, invSho := r.qlInv[l][i], r.qlInvSho[l][i]
			xi, oi := x[i], out[i]
			for k := 0; k < n; k++ {
				// Reduce the top-limb residue into q_i before subtracting;
				// centering the residue halves the rounding error but the
				// plain variant keeps the error below q_l which the CKKS
				// scale absorbs. ReduceWord is a one-word Barrett step (no
				// hardware division); the subtraction is lazy (xi < 2q,
				// v < q, so xi + 2q - v < 4q) and the Shoup multiply, exact
				// for any 64-bit operand, fully reduces the output.
				v := m.ReduceWord(xl[k])
				oi[k] = m.MulModShoup(xi[k]+twoQ-v, inv, invSho)
			}
		}
	})
}
