package rns

import (
	"math/rand"
	"testing"

	"github.com/fastfhe/fast/internal/ring"
)

// benchConvertAB measures the full approximate base conversion — the BConv
// kernel the accelerator's systolic array implements — with the vector
// kernels toggled in-process (see ring.SetKernelASM): the only A/B that
// isolates kernel speedup from host noise. The shapes mirror the stored
// BENCH_kernels.json entries: a 3-limb 36-bit ModUp group fanning to 12
// target limbs, and a 2-limb 60-bit special chain fanning to 6.
func benchConvertAB(b *testing.B, asm bool, fromBits, fromL, toBits, toL int) {
	const logN, n = 12, 4096
	fp, err := ring.GenerateNTTPrimes(fromBits, logN, fromL)
	if err != nil {
		b.Fatal(err)
	}
	// Generate the target chain past the source chain so the bases stay
	// disjoint even at matching bit widths.
	tp, err := ring.GenerateNTTPrimes(toBits, logN, fromL+toL)
	if err != nil {
		b.Fatal(err)
	}
	var from, to []ring.Modulus
	for _, q := range fp {
		m, err := ring.NewModulus(q)
		if err != nil {
			b.Fatal(err)
		}
		from = append(from, m)
	}
	for _, q := range tp[fromL:] {
		m, err := ring.NewModulus(q)
		if err != nil {
			b.Fatal(err)
		}
		to = append(to, m)
	}
	ext, err := NewExtender(from, to)
	if err != nil {
		b.Fatal(err)
	}
	rng := rand.New(rand.NewSource(9))
	src := rows(fromL, n)
	for i := range src {
		for k := range src[i] {
			src[i][k] = rng.Uint64() % from[i].Q
		}
	}
	dst := rows(toL, n)
	prev := ring.SetKernelASM(asm)
	defer ring.SetKernelASM(prev)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ext.Convert(src, dst)
	}
}

func BenchmarkABConvert36_Go(b *testing.B)  { benchConvertAB(b, false, 36, 3, 36, 12) }
func BenchmarkABConvert36_ASM(b *testing.B) { benchConvertAB(b, true, 36, 3, 36, 12) }
func BenchmarkABConvert60_Go(b *testing.B)  { benchConvertAB(b, false, 60, 2, 60, 6) }
func BenchmarkABConvert60_ASM(b *testing.B) { benchConvertAB(b, true, 60, 2, 60, 6) }
