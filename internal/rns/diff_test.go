package rns

import (
	"math/big"
	"math/rand"
	"testing"

	"github.com/fastfhe/fast/internal/ring"
)

// refConvert computes the HPS approximate base conversion with math/big:
// dst[j][k] = ( Σ_i [x_i * (Q/q_i)^-1 mod q_i] * (Q/q_i mod p_j) ) mod p_j.
// This is the exact formula the 128-bit accumulating kernel must reproduce
// bit for bit.
func refConvert(from, to []ring.Modulus, src [][]uint64) [][]uint64 {
	Q := prod(from)
	l := len(from)
	n := len(src[0])
	t := make([][]uint64, l)
	hatModP := make([][]*big.Int, len(to))
	for j, mp := range to {
		hatModP[j] = make([]*big.Int, l)
		pj := new(big.Int).SetUint64(mp.Q)
		for i, m := range from {
			hat := new(big.Int).Div(Q, new(big.Int).SetUint64(m.Q))
			hatModP[j][i] = hat.Mod(hat, pj)
		}
	}
	for i, m := range from {
		qi := new(big.Int).SetUint64(m.Q)
		hat := new(big.Int).Div(Q, qi)
		inv := m.InvMod(new(big.Int).Mod(hat, qi).Uint64())
		t[i] = make([]uint64, n)
		for k := 0; k < n; k++ {
			// Exact over any input magnitude, matching MulModShoup's contract.
			xi := new(big.Int).SetUint64(src[i][k])
			xi.Mod(xi, qi)
			t[i][k] = m.MulMod(xi.Uint64(), inv)
		}
	}
	dst := rows(len(to), n)
	acc := new(big.Int)
	term := new(big.Int)
	for j, mp := range to {
		pj := new(big.Int).SetUint64(mp.Q)
		for k := 0; k < n; k++ {
			acc.SetUint64(0)
			for i := 0; i < l; i++ {
				term.SetUint64(t[i][k])
				term.Mul(term, hatModP[j][i])
				acc.Add(acc, term)
			}
			dst[j][k] = acc.Mod(acc, pj).Uint64()
		}
	}
	return dst
}

func randRows(rng *rand.Rand, ms []ring.Modulus, n int, lazy bool) [][]uint64 {
	out := rows(len(ms), n)
	for i, m := range ms {
		bound := m.Q
		if lazy {
			bound = 2 * m.Q
		}
		for k := 0; k < n; k++ {
			out[i][k] = rng.Uint64() % bound
		}
	}
	return out
}

// TestConvertMatchesBigIntReference pins the accumulating Convert kernel
// against the math/big reference, bit for bit, across both datapath widths
// (36-bit and 60-bit chains in both directions) and every unrolled width of
// the ring.BConvAccum inner product (1..4 source limbs plus the generic
// tail), on canonical and lazy ([0, 2q)) inputs.
func TestConvertMatchesBigIntReference(t *testing.T) {
	const logN, n = 4, 16
	rng := rand.New(rand.NewSource(201))
	q36 := moduli(t, 36, logN, 8)
	q60 := moduli(t, 60, logN, 8)
	cases := []struct {
		name     string
		from, to []ring.Modulus
	}{
		{"1x36to2x60", q36[:1], q60[:2]},
		{"2x36to3x60", q36[:2], q60[:3]},
		{"3x60to4x36", q60[:3], q36[:4]},
		{"4x36to2x60", q36[:4], q60[:2]},
		{"6x36to3x60", q36[:6], q60[:3]}, // generic (non-unrolled) accumulator
		{"5x60to5x36", q60[:5], q36[3:8]},
	}
	for _, tc := range cases {
		ext, err := NewExtender(tc.from, tc.to)
		if err != nil {
			t.Fatalf("%s: NewExtender: %v", tc.name, err)
		}
		for _, lazy := range []bool{false, true} {
			src := randRows(rng, tc.from, n, lazy)
			dst := rows(len(tc.to), n)
			ext.Convert(src, dst)
			want := refConvert(tc.from, tc.to, src)
			for j, mp := range tc.to {
				for k := 0; k < n; k++ {
					if dst[j][k] >= mp.Q {
						t.Fatalf("%s lazy=%v: output %d >= p at [%d][%d]", tc.name, lazy, dst[j][k], j, k)
					}
					if dst[j][k] != want[j][k] {
						t.Fatalf("%s lazy=%v: Convert diverges from big.Int reference at [%d][%d]: %d != %d",
							tc.name, lazy, j, k, dst[j][k], want[j][k])
					}
				}
			}
		}
	}
}

// TestConvertFoldPathMatchesBigInt drives the public Convert through the
// long-base fold fallback: a 60-bit target modulus holds ~15 accumulator
// terms, so a source base with more limbs than that must fold through an
// intermediate Barrett reduction — and still match the reference bit for bit.
func TestConvertFoldPathMatchesBigInt(t *testing.T) {
	const logN, n = 4, 16
	rng := rand.New(rand.NewSource(202))
	to := moduli(t, 60, logN, 1)
	capTerms := to[0].AccumCapacity()
	if capTerms > 40 {
		t.Skipf("target capacity %d too large to exercise the fold path cheaply", capTerms)
	}
	from := moduli(t, 36, logN, capTerms+1) // l > capTerms forces convertFold
	ext, err := NewExtender(from, to)
	if err != nil {
		t.Fatalf("NewExtender: %v", err)
	}
	src := randRows(rng, from, n, true)
	dst := rows(1, n)
	ext.Convert(src, dst)
	want := refConvert(from, to, src)
	for k := 0; k < n; k++ {
		if dst[0][k] != want[0][k] {
			t.Fatalf("fold path diverges from reference at %d: %d != %d", k, dst[0][k], want[0][k])
		}
	}
}

// TestConvertFoldMatchesAccum checks the fold fallback against the straight
// accumulator on the same data with an artificially tiny capacity, proving
// the intermediate reductions are value-preserving at every fold boundary.
func TestConvertFoldMatchesAccum(t *testing.T) {
	const logN, n = 4, 16
	rng := rand.New(rand.NewSource(203))
	from := moduli(t, 36, logN, 6)
	to := moduli(t, 60, logN, 1)
	ext, err := NewExtender(from, to)
	if err != nil {
		t.Fatalf("NewExtender: %v", err)
	}
	src := randRows(rng, from, n, false)
	dst := rows(1, n)
	ext.Convert(src, dst) // reference via the accumulating path (6 << capacity)
	// Recompute stage 1 to feed the fold directly.
	tRows := rows(len(from), n)
	for i, m := range from {
		inv := ext.qhatInv[i]
		invSho := ext.qhatInvSho[i]
		for k := 0; k < n; k++ {
			tRows[i][k] = m.MulModShoup(src[i][k], inv, invSho)
		}
	}
	for _, capTerms := range []int{1, 2, 3, 5} {
		got := make([]uint64, n)
		convertFold(to[0], tRows, ext.qhatModP[0], got, n, capTerms)
		for k := 0; k < n; k++ {
			if got[k] != dst[0][k] {
				t.Fatalf("capTerms=%d: fold diverges from accumulator at %d: %d != %d",
					capTerms, k, got[k], dst[0][k])
			}
		}
	}
}

// TestModDownLazyInputEquivalence checks ModDown's lazy input contract:
// feeding rows in [0, 2q) produces bit-identical, fully reduced outputs to
// feeding their canonical representatives.
func TestModDownLazyInputEquivalence(t *testing.T) {
	const logN, n = 4, 16
	rng := rand.New(rand.NewSource(204))
	q := moduli(t, 36, logN, 4)
	p := moduli(t, 60, logN, 2)
	d, err := NewModDowner(q, p)
	if err != nil {
		t.Fatalf("NewModDowner: %v", err)
	}
	xQLazy := randRows(rng, q, n, true)
	xPLazy := randRows(rng, p, n, true)
	xQ := rows(len(q), n)
	xP := rows(len(p), n)
	for i, m := range q {
		for k := 0; k < n; k++ {
			xQ[i][k] = xQLazy[i][k] % m.Q
		}
	}
	for i, m := range p {
		for k := 0; k < n; k++ {
			xP[i][k] = xPLazy[i][k] % m.Q
		}
	}
	out1 := rows(len(q), n)
	out2 := rows(len(q), n)
	d.ModDown(xQ, xP, out1)
	d.ModDown(xQLazy, xPLazy, out2)
	for i, m := range q {
		for k := 0; k < n; k++ {
			if out1[i][k] >= m.Q {
				t.Fatalf("ModDown output %d >= q at [%d][%d]", out1[i][k], i, k)
			}
			if out1[i][k] != out2[i][k] {
				t.Fatalf("ModDown lazy/canonical mismatch at [%d][%d]: %d != %d", i, k, out2[i][k], out1[i][k])
			}
		}
	}
}

// TestRescaleLazyInputEquivalence is the same contract check for Rescale.
func TestRescaleLazyInputEquivalence(t *testing.T) {
	const logN, n = 4, 16
	rng := rand.New(rand.NewSource(205))
	ms := moduli(t, 36, logN, 5)
	r := NewRescaler(ms)
	xLazy := randRows(rng, ms, n, true)
	// The top limb stays canonical: a lazy top-limb representative rep+q_l is
	// an equally valid rescale input but subtracts a different representative,
	// shifting outputs by 1 mod q_i — correct (the scale absorbs it) yet not
	// bit-identical. Bit-equality is the contract for the non-top rows.
	l := len(ms) - 1
	for k := 0; k < n; k++ {
		xLazy[l][k] %= ms[l].Q
	}
	x := rows(len(ms), n)
	for i, m := range ms {
		for k := 0; k < n; k++ {
			x[i][k] = xLazy[i][k] % m.Q
		}
	}
	out1 := rows(len(ms)-1, n)
	out2 := rows(len(ms)-1, n)
	r.Rescale(x, out1)
	r.Rescale(xLazy, out2)
	for i := 0; i < len(ms)-1; i++ {
		for k := 0; k < n; k++ {
			if out1[i][k] >= ms[i].Q {
				t.Fatalf("Rescale output %d >= q at [%d][%d]", out1[i][k], i, k)
			}
			if out1[i][k] != out2[i][k] {
				t.Fatalf("Rescale lazy/canonical mismatch at [%d][%d]", i, k)
			}
		}
	}
}
