package sim

import (
	"testing"

	"github.com/fastfhe/fast/internal/arch"
	"github.com/fastfhe/fast/internal/costmodel"
	"github.com/fastfhe/fast/internal/fault"
	"github.com/fastfhe/fast/internal/obs"
	"github.com/fastfhe/fast/internal/workloads"
)

// runWithFaults executes the bootstrap workload on the FAST config under a
// fault plan and returns the result.
func runWithFaults(t *testing.T, plan fault.Plan, o *obs.Observer) *Result {
	t.Helper()
	params := costmodel.SetII()
	cfg := arch.FAST()
	tr := workloads.Bootstrap(workloads.DefaultProfile())
	aplan, err := Plan(params, cfg, tr, true, true)
	if err != nil {
		t.Fatal(err)
	}
	s, err := New(params, cfg, aplan)
	if err != nil {
		t.Fatal(err)
	}
	s.SetFaultPlan(plan)
	if o != nil {
		s.SetObserver(o)
	}
	res, err := s.Run(tr)
	if err != nil {
		t.Fatal(err)
	}
	return res
}

// Every fault scenario must (a) be deterministic for a fixed seed, (b) show
// its recovery activity in the result, and (c) never make the run cheaper
// than the fault-free baseline.
func TestFaultScenariosDeterministicAndAccounted(t *testing.T) {
	base := runWithFaults(t, fault.Plan{}, nil)
	if base.Retries+base.Timeouts+base.Refetches+base.DegradedDecisions != 0 || base.WastedEvkBytes != 0 {
		t.Fatalf("fault-free run shows fault accounting: %+v", base)
	}
	for _, name := range []string{"transfer", "spike", "corrupt", "pressure", "all"} {
		t.Run(name, func(t *testing.T) {
			plan, err := fault.Scenario(name)
			if err != nil {
				t.Fatal(err)
			}
			plan.Seed = 42
			a := runWithFaults(t, plan, nil)
			b := runWithFaults(t, plan, nil)
			if a.Cycles != b.Cycles || a.StallCy != b.StallCy || a.WastedEvkBytes != b.WastedEvkBytes ||
				a.Retries != b.Retries || a.Timeouts != b.Timeouts || a.Refetches != b.Refetches ||
				a.DegradedDecisions != b.DegradedDecisions || a.EnergyJ != b.EnergyJ {
				t.Fatalf("same seed, different results:\n%+v\nvs\n%+v", a, b)
			}
			if a.Cycles < base.Cycles {
				t.Errorf("faulty run (%0.f cy) cheaper than fault-free (%0.f cy)", a.Cycles, base.Cycles)
			}
			switch name {
			case "transfer":
				if a.Retries == 0 {
					t.Error("transfer scenario produced no retries")
				}
			case "spike":
				if a.Timeouts == 0 {
					t.Error("spike scenario produced no timeouts")
				}
			case "corrupt":
				if a.Refetches == 0 {
					t.Error("corrupt scenario produced no refetches")
				}
			}
			if name != "pressure" && a.WastedEvkBytes == 0 {
				t.Errorf("scenario %s wasted no traffic", name)
			}
			// A different seed must change the injected pattern somewhere.
			plan.Seed = 43
			c := runWithFaults(t, plan, nil)
			if c.Cycles == a.Cycles && c.WastedEvkBytes == a.WastedEvkBytes &&
				c.Retries == a.Retries && c.Timeouts == a.Timeouts && c.Refetches == a.Refetches {
				t.Logf("note: seeds 42 and 43 produced identical accounting (possible but unlikely)")
			}
		})
	}
}

// Retried and timed-out transfers must surface in the stall/energy
// accounting: backoff waits land in StallCy, wasted traffic in TransferCy
// (and therefore HBM energy).
func TestFaultStallAndEnergyAccounting(t *testing.T) {
	base := runWithFaults(t, fault.Plan{}, nil)
	plan := fault.Plan{Seed: 1, TransferFailure: 0.5, LatencySpike: 0.3}
	res := runWithFaults(t, plan, nil)
	if res.BackoffCy == 0 {
		t.Fatal("expected backoff cycles under heavy transfer failures")
	}
	if res.StallCy < res.BackoffCy {
		t.Errorf("StallCy %.0f must include the %.0f backoff cycles", res.StallCy, res.BackoffCy)
	}
	if res.TransferCy <= base.TransferCy {
		t.Errorf("wasted traffic must busy the HBM channel: %.0f <= %.0f", res.TransferCy, base.TransferCy)
	}
	if res.EnergyJ <= base.EnergyJ {
		t.Errorf("recovery work must cost energy: %g <= %g", res.EnergyJ, base.EnergyJ)
	}
}

// Pool-pressure bursts must trigger the Aether degradation fallback and the
// hemera.* / fault.* / aether.* instruments must fill in.
func TestFaultMetricsPublished(t *testing.T) {
	o := obs.New()
	plan := fault.Plan{Seed: 5, TransferFailure: 0.4, LatencySpike: 0.4, Corruption: 0.2, PoolPressure: 0.5}
	res := runWithFaults(t, plan, o)
	if res.DegradedDecisions == 0 {
		t.Error("sustained pressure/misses should degrade at least one decision")
	}
	reg := o.Reg()
	for _, name := range []string{
		"fault.injected", "hemera.retries", "hemera.timeouts",
		"hemera.refetches", "hemera.wasted_bytes",
	} {
		if reg.Counter(name).Value() == 0 {
			t.Errorf("metric %s did not accumulate", name)
		}
	}
	if reg.Counter("aether.degraded_decisions").Value() != uint64(res.DegradedDecisions) {
		t.Errorf("aether.degraded_decisions = %d, want %d",
			reg.Counter("aether.degraded_decisions").Value(), res.DegradedDecisions)
	}
	if reg.Counter("hemera.retries").Value() != uint64(res.Retries) {
		t.Errorf("hemera.retries = %d, want %d", reg.Counter("hemera.retries").Value(), res.Retries)
	}
}
