package sim

import (
	"testing"

	"github.com/fastfhe/fast/internal/arch"
	"github.com/fastfhe/fast/internal/costmodel"
	"github.com/fastfhe/fast/internal/obs"
	"github.com/fastfhe/fast/internal/workloads"
)

// The observed run must publish the Result into the registry and lay the ops
// on the synthetic Chrome-trace timeline.
func TestRunPublishesMetricsAndTrace(t *testing.T) {
	tr := workloads.Bootstrap(workloads.DefaultProfile())
	cfg := arch.FAST()
	params := costmodel.SetII()
	plan, err := Plan(params, cfg, tr, cfg.EnableKLSS, cfg.EnableHoisting)
	if err != nil {
		t.Fatalf("Plan: %v", err)
	}
	s, err := New(params, cfg, plan)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	o := obs.NewTracing(0)
	s.SetObserver(o)
	res, err := s.Run(tr)
	if err != nil {
		t.Fatalf("Run: %v", err)
	}

	snap := o.Snapshot()
	if got := snap.FloatGauges["sim.cycles"]; got != res.Cycles {
		t.Errorf("sim.cycles gauge = %g, want %g", got, res.Cycles)
	}
	for _, c := range []arch.Component{arch.NTTU, arch.BConvU, arch.KMU} {
		name := "sim.busy_cycles." + c.String()
		if got := snap.FloatGauges[name]; got != res.ComponentBusy[c] {
			t.Errorf("%s = %g, want %g", name, got, res.ComponentBusy[c])
		}
	}
	// Every op dispatched must be tallied, and every key-switch op must carry
	// an Aether verdict tally.
	var opTotal, ksTotal uint64
	for name, v := range snap.Counters {
		if len(name) > 7 && name[:7] == "sim.op." {
			opTotal += v
		}
	}
	ksTotal = snap.Counters["aether.decision.hybrid"] + snap.Counters["aether.decision.klss"]
	if opTotal != uint64(len(tr.Ops)) {
		t.Errorf("sim.op.* total = %d, want %d", opTotal, len(tr.Ops))
	}
	var wantKS uint64
	for _, op := range tr.Ops {
		if op.Kind.NeedsKeySwitch() {
			wantKS++
		}
	}
	if ksTotal != wantKS {
		t.Errorf("aether.decision.* total = %d, want %d", ksTotal, wantKS)
	}
	// Hemera pool counters must reconcile with the Result's bookkeeping.
	if hits := snap.Counters["hemera.pool.hits"]; hits != uint64(res.PoolHits) {
		t.Errorf("hemera.pool.hits = %d, want %d", hits, res.PoolHits)
	}
	if misses := snap.Counters["hemera.pool.misses"]; misses != uint64(res.PoolMisses) {
		t.Errorf("hemera.pool.misses = %d, want %d", misses, res.PoolMisses)
	}

	// Synthetic timeline: one ops-track span per op, metadata naming the
	// simulator process, spans on simulated (not wall-clock) timebase.
	events := o.Tr().Events()
	var opSpans, meta int
	for _, ev := range events {
		if ev.PID != TracePIDSimulator {
			continue
		}
		switch {
		case ev.Ph == "M":
			meta++
		case ev.Ph == "X" && ev.TID == simTIDOps:
			opSpans++
			if ev.Dur <= 0 {
				t.Errorf("op span %q has non-positive duration %g", ev.Name, ev.Dur)
			}
		}
	}
	if opSpans != len(tr.Ops) {
		t.Errorf("ops-track spans = %d, want %d", opSpans, len(tr.Ops))
	}
	if meta == 0 {
		t.Error("no metadata events naming the simulator tracks")
	}
}

// An unobserved simulator must behave identically (nil observer is the
// default; SetObserver(nil) detaches).
func TestRunUnobservedMatchesObserved(t *testing.T) {
	tr := workloads.ResNet20(workloads.DefaultProfile())
	cfg := arch.FAST()
	params := costmodel.SetII()
	plan, err := Plan(params, cfg, tr, true, true)
	if err != nil {
		t.Fatalf("Plan: %v", err)
	}
	s1, _ := New(params, cfg, plan)
	s2, _ := New(params, cfg, plan)
	s2.SetObserver(obs.NewTracing(0))
	r1, err := s1.Run(tr)
	if err != nil {
		t.Fatal(err)
	}
	r2, err := s2.Run(tr)
	if err != nil {
		t.Fatal(err)
	}
	if r1.Cycles != r2.Cycles || r1.TimeMS != r2.TimeMS || r1.EnergyJ != r2.EnergyJ {
		t.Errorf("observed run diverged: %+v vs %+v", r1, r2)
	}
	s2.SetObserver(nil)
	if _, err := s2.Run(tr); err != nil {
		t.Fatalf("detached run: %v", err)
	}
}
