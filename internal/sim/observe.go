package sim

import (
	"github.com/fastfhe/fast/internal/arch"
	"github.com/fastfhe/fast/internal/costmodel"
	"github.com/fastfhe/fast/internal/obs"
	"github.com/fastfhe/fast/internal/trace"
)

// TracePIDSimulator is the Chrome-trace process id of the cycle simulator's
// synthetic (simulated-time) tracks — kept distinct from the functional
// evaluator's wall-clock pid so one trace file can carry both timelines.
const TracePIDSimulator = 2

// simTIDOps is the track showing the serialized operation pipeline; the
// compute components get one track each after it, and HBM transfers the last.
const (
	simTIDOps = iota
	simTIDNTTU
	simTIDBConvU
	simTIDKMU
	simTIDAutoU
	simTIDAEM
	simTIDHBM
)

// componentTID maps a compute component to its trace track.
var componentTID = map[arch.Component]int{
	arch.NTTU:   simTIDNTTU,
	arch.BConvU: simTIDBConvU,
	arch.KMU:    simTIDKMU,
	arch.AutoU:  simTIDAutoU,
	arch.AEM:    simTIDAEM,
}

// SetObserver attaches the observability substrate to subsequent Run calls:
// per-run summary gauges (cycles, stalls, per-component busy time, energy),
// per-OpKind dispatch counters, Aether decision tallies, Hemera pool
// counters, and — when the observer carries a tracer — a synthetic-timebase
// Chrome trace laying every op and its kernel occupancy on per-component
// tracks (simulated cycles converted to microseconds via the configuration
// clock). A nil observer detaches.
func (s *Simulator) SetObserver(o *obs.Observer) { s.o = o }

// cyclesToMicros converts simulated cycles to trace microseconds.
func (s *Simulator) cyclesToMicros(cy float64) float64 {
	return cy / (s.cfg.ClockGHz * 1e3)
}

// traceSetup emits the metadata naming the simulator's tracks.
func (s *Simulator) traceSetup(tr *obs.Tracer) {
	tr.SetProcessName(TracePIDSimulator, "fast simulator ("+s.cfg.Name+")")
	tr.SetThreadName(TracePIDSimulator, simTIDOps, "ops")
	for _, c := range []arch.Component{arch.NTTU, arch.BConvU, arch.KMU, arch.AutoU, arch.AEM} {
		tr.SetThreadName(TracePIDSimulator, componentTID[c], c.String())
	}
	tr.SetThreadName(TracePIDSimulator, simTIDHBM, "HBM")
}

// traceOp lays one executed op on the synthetic timeline: the op span on the
// ops track, each kernel's busy window on its component track, and the key
// transfer on the HBM track. startCy is the op's position on the serialized
// compute pipeline.
func (s *Simulator) traceOp(tr *obs.Tracer, idx int, op trace.Op, w opWork,
	startCy, computeCy, transferCy float64, busy map[arch.Component]float64) {
	args := map[string]any{"idx": idx, "level": op.Level}
	if op.Kind.NeedsKeySwitch() {
		args["method"] = w.method.String()
		if h := op.HoistCount(); h > 1 {
			args["hoist"] = h
		}
	}
	if op.Phase != "" {
		args["phase"] = op.Phase
	}
	ts := s.cyclesToMicros(startCy)
	tr.Complete(op.Kind.String(), "sim.op", TracePIDSimulator, simTIDOps,
		ts, s.cyclesToMicros(computeCy), args)
	for c, cy := range busy {
		if cy <= 0 {
			continue
		}
		tr.Complete(op.Kind.String(), "sim.kernel", TracePIDSimulator, componentTID[c],
			ts, s.cyclesToMicros(cy), nil)
	}
	if transferCy > 0 {
		tr.Complete("evk", "sim.hbm", TracePIDSimulator, simTIDHBM,
			ts, s.cyclesToMicros(transferCy), map[string]any{"idx": idx})
	}
}

// publish mirrors one Run's Result into the metrics registry. Gauges are
// point-in-time (last run wins); dispatch and decision counters accumulate
// across runs.
func (s *Simulator) publish(tr *trace.Trace, res *Result) {
	reg := s.o.Reg()
	reg.FloatGauge("sim.cycles").Set(res.Cycles)
	reg.FloatGauge("sim.time_ms").Set(res.TimeMS)
	reg.FloatGauge("sim.stall_cycles").Set(res.StallCy)
	reg.FloatGauge("sim.transfer_cycles").Set(res.TransferCy)
	reg.FloatGauge("sim.energy_j").Set(res.EnergyJ)
	reg.FloatGauge("sim.avg_power_w").Set(res.AvgPowerW)
	reg.FloatGauge("sim.edp").Set(res.EDP)
	reg.Gauge("sim.evk_bytes").Set(res.EvkBytes)
	if res.FaultPlan != "" {
		reg.FloatGauge("sim.fault.backoff_cycles").Set(res.BackoffCy)
		reg.Gauge("sim.fault.wasted_evk_bytes").Set(res.WastedEvkBytes)
		reg.Gauge("sim.fault.retries").Set(int64(res.Retries))
		reg.Gauge("sim.fault.timeouts").Set(int64(res.Timeouts))
		reg.Gauge("sim.fault.refetches").Set(int64(res.Refetches))
		reg.Gauge("sim.fault.degraded_decisions").Set(int64(res.DegradedDecisions))
	}
	for c, cy := range res.ComponentBusy {
		reg.FloatGauge("sim.busy_cycles." + c.String()).Set(cy)
	}
	for m, cy := range res.MethodCycles {
		reg.FloatGauge("sim.method_cycles." + m.String()).Set(cy)
	}
	for phase, cy := range res.PhaseCycles {
		reg.FloatGauge("sim.phase_cycles." + phase).Set(cy)
	}
	for idx, op := range tr.Ops {
		reg.Counter("sim.op." + op.Kind.String() + ".count").Inc()
		if !op.Kind.NeedsKeySwitch() {
			continue
		}
		// Aether decision tallies: which backend the plan picked, and whether
		// it exploited hoisting.
		d := s.plan.DecisionFor(idx)
		if d.Method == costmodel.KLSS {
			reg.Counter("aether.decision.klss").Inc()
		} else {
			reg.Counter("aether.decision.hybrid").Inc()
		}
		if op.Kind == trace.HRot && d.Hoist > 1 {
			reg.Counter("aether.decision.hoisted").Inc()
		}
	}
}
