package sim

import (
	"testing"

	"github.com/fastfhe/fast/internal/arch"
	"github.com/fastfhe/fast/internal/baselines"
	"github.com/fastfhe/fast/internal/costmodel"
	"github.com/fastfhe/fast/internal/trace"
	"github.com/fastfhe/fast/internal/workloads"
)

func runConfig(t *testing.T, cfg arch.Config, tr *trace.Trace) *Result {
	t.Helper()
	params := costmodel.SetII()
	plan, err := Plan(params, cfg, tr, cfg.EnableKLSS, cfg.EnableHoisting)
	if err != nil {
		t.Fatalf("Plan: %v", err)
	}
	s, err := New(params, cfg, plan)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	res, err := s.Run(tr)
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	return res
}

func TestNewRejectsInvalidConfig(t *testing.T) {
	bad := arch.FAST()
	bad.Clusters = 0
	if _, err := New(costmodel.SetII(), bad, nil); err == nil {
		t.Error("expected config validation error")
	}
}

func TestRunRejectsInvalidTrace(t *testing.T) {
	s, err := New(costmodel.SetII(), arch.FAST(), nil)
	if err != nil {
		t.Fatal(err)
	}
	bad := &trace.Trace{Name: "bad", Ops: []trace.Op{{Kind: trace.PMult, Level: -3, Hoist: 1}}}
	if _, err := s.Run(bad); err == nil {
		t.Error("expected trace validation error")
	}
}

// The headline reproduction: FAST must beat the SHARP-class baseline on
// bootstrapping by roughly the published 2.26x (Table 5: 3.12 ms vs 1.38 ms),
// and the absolute latencies must land near the published numbers.
func TestBootstrapSpeedupOverSHARP(t *testing.T) {
	tr := workloads.Bootstrap(workloads.DefaultProfile())
	sharp := runConfig(t, baselines.SHARP(), tr)
	fast := runConfig(t, arch.FAST(), tr)

	if sharp.TimeMS < 2.3 || sharp.TimeMS > 4.2 {
		t.Errorf("SHARP bootstrap %.2f ms, want ~3.12 ms", sharp.TimeMS)
	}
	if fast.TimeMS < 1.0 || fast.TimeMS > 1.9 {
		t.Errorf("FAST bootstrap %.2f ms, want ~1.38 ms", fast.TimeMS)
	}
	speedup := sharp.TimeMS / fast.TimeMS
	if speedup < 1.7 || speedup > 2.9 {
		t.Errorf("FAST/SHARP bootstrap speedup %.2f, want ~2.26", speedup)
	}
}

// Table 5 shape across all four workloads: FAST wins every row.
func TestFASTWinsAllWorkloads(t *testing.T) {
	p := workloads.DefaultProfile()
	for _, tr := range []*trace.Trace{
		workloads.Bootstrap(p),
		workloads.HELR(p, 256),
		workloads.HELR(p, 1024),
		workloads.ResNet20(p),
	} {
		sharp := runConfig(t, baselines.SHARP(), tr)
		fast := runConfig(t, arch.FAST(), tr)
		if fast.TimeMS >= sharp.TimeMS {
			t.Errorf("%s: FAST %.2f ms not faster than SHARP %.2f ms", tr.Name, fast.TimeMS, sharp.TimeMS)
		}
		r := sharp.TimeMS / fast.TimeMS
		if r < 1.4 || r > 3.0 {
			t.Errorf("%s: speedup %.2f outside the published 1.6-2.3 band", tr.Name, r)
		}
	}
}

// Fig. 12 ablation ladder must be monotone: 36-bit ALU < +Aether-Hemera
// (no TBM) < full FAST.
func TestAblationLadder(t *testing.T) {
	tr := workloads.Bootstrap(workloads.DefaultProfile())
	base := runConfig(t, baselines.FAST36(), tr)
	noTBM := runConfig(t, baselines.FASTNoTBM(), tr)
	full := runConfig(t, arch.FAST(), tr)
	if !(full.TimeMS < noTBM.TimeMS && noTBM.TimeMS < base.TimeMS) {
		t.Errorf("ablation not monotone: full %.2f, noTBM %.2f, base %.2f",
			full.TimeMS, noTBM.TimeMS, base.TimeMS)
	}
	if r := base.TimeMS / noTBM.TimeMS; r < 1.1 {
		t.Errorf("Aether-Hemera alone should give >1.1x (paper 1.3x), got %.2f", r)
	}
}

// Fig. 10: hoisting and Aether reduce bootstrap time versus OneKSW, and
// Aether moves a large share of the former hybrid key-switch time to KLSS.
func TestPlanLadder(t *testing.T) {
	params := costmodel.SetII()
	cfg := arch.FAST()
	tr := workloads.Bootstrap(workloads.DefaultProfile())

	times := map[string]float64{}
	var aetherRes *Result
	for _, tc := range []struct {
		name        string
		klss, hoist bool
	}{{"oneksw", false, false}, {"hoisting", false, true}, {"aether", true, true}} {
		plan, err := Plan(params, cfg, tr, tc.klss, tc.hoist)
		if err != nil {
			t.Fatal(err)
		}
		s, _ := New(params, cfg, plan)
		res, err := s.Run(tr)
		if err != nil {
			t.Fatal(err)
		}
		times[tc.name] = res.TimeMS
		if tc.name == "aether" {
			aetherRes = res
		}
	}
	if times["hoisting"] >= times["oneksw"] {
		t.Errorf("hoisting (%.3f) should beat OneKSW (%.3f)", times["hoisting"], times["oneksw"])
	}
	if times["aether"] > times["oneksw"]*0.95 {
		t.Errorf("Aether (%.3f) should clearly beat OneKSW (%.3f)", times["aether"], times["oneksw"])
	}
	if aetherRes.MethodCycles[costmodel.KLSS] == 0 {
		t.Error("Aether plan should execute some key-switches with KLSS")
	}
}

// Fig. 11(a): FAST's component profile — NTTU is the busiest unit; HBM
// traffic is substantial; nothing exceeds 100%.
func TestUtilizationProfile(t *testing.T) {
	tr := workloads.Bootstrap(workloads.DefaultProfile())
	res := runConfig(t, arch.FAST(), tr)
	ntt := res.Utilization(arch.NTTU)
	if ntt < 0.4 || ntt > 0.9 {
		t.Errorf("NTTU utilisation %.2f, want ~0.66", ntt)
	}
	for _, c := range arch.Components() {
		u := res.Utilization(c)
		if u < 0 || u > 1.0001 {
			t.Errorf("%v utilisation %.3f out of range", c, u)
		}
		if c != arch.HBM && c != arch.RegisterFile && c != arch.NoC && u > ntt+1e-9 {
			t.Errorf("%v (%.2f) should not exceed the NTTU (%.2f)", c, u, ntt)
		}
	}
	if hbm := res.Utilization(arch.HBM); hbm < 0.2 || hbm > 0.9 {
		t.Errorf("HBM utilisation %.2f, want ~0.44-0.6", hbm)
	}
}

// Fig. 13(b): halving the clusters must slow FAST down; doubling must speed
// it up but sublinearly (HBM limits).
func TestClusterSensitivity(t *testing.T) {
	tr := workloads.Bootstrap(workloads.DefaultProfile())
	c2 := runConfig(t, arch.FAST().WithClusters(2), tr)
	c4 := runConfig(t, arch.FAST(), tr)
	c8 := runConfig(t, arch.FAST().WithClusters(8), tr)
	if !(c8.TimeMS < c4.TimeMS && c4.TimeMS < c2.TimeMS) {
		t.Errorf("cluster scaling not monotone: %.2f / %.2f / %.2f", c2.TimeMS, c4.TimeMS, c8.TimeMS)
	}
	if sp := c4.TimeMS / c8.TimeMS; sp >= 2.0 {
		t.Errorf("8-cluster speedup %.2f should be sublinear (paper ~1.7)", sp)
	}
}

// Fig. 13(a): shrinking SRAM hurts; growing it beyond the working set gives
// little.
func TestMemorySensitivity(t *testing.T) {
	tr := workloads.Bootstrap(workloads.DefaultProfile())
	small := runConfig(t, arch.FAST().WithOnChipMB(70), tr)
	normal := runConfig(t, arch.FAST(), tr)
	big := runConfig(t, arch.FAST().WithOnChipMB(562), tr)
	if small.TimeMS <= normal.TimeMS {
		t.Errorf("small SRAM (%.3f) should be slower than normal (%.3f)", small.TimeMS, normal.TimeMS)
	}
	gain := normal.TimeMS / big.TimeMS
	if gain > 1.3 {
		t.Errorf("doubling SRAM should not give large gains, got %.2fx", gain)
	}
}

func TestEnergyAccounting(t *testing.T) {
	tr := workloads.Bootstrap(workloads.DefaultProfile())
	res := runConfig(t, arch.FAST(), tr)
	if res.AvgPowerW < 60 || res.AvgPowerW > 250 {
		t.Errorf("average power %.1f W implausible (paper ~120-160 W)", res.AvgPowerW)
	}
	if res.EnergyJ <= 0 || res.EDP <= 0 {
		t.Error("energy/EDP must be positive")
	}
	wantE := res.AvgPowerW * res.TimeMS / 1e3
	if diff := res.EnergyJ - wantE; diff > 1e-9 || diff < -1e-9 {
		t.Error("energy != power * time")
	}
}

func TestPhaseBreakdownCoversBootstrap(t *testing.T) {
	tr := workloads.Bootstrap(workloads.DefaultProfile())
	res := runConfig(t, arch.FAST(), tr)
	var sum float64
	for _, ph := range tr.Phases() {
		if res.PhaseCycles[ph] <= 0 {
			t.Errorf("phase %q has no cycles", ph)
		}
		sum += res.PhaseCycles[ph]
	}
	if sum <= 0 || sum > res.Cycles*1.01 {
		t.Errorf("phase cycles %f inconsistent with total %f", sum, res.Cycles)
	}
}

func TestNilPlanDefaultsToHybrid(t *testing.T) {
	s, err := New(costmodel.SetII(), baselines.SHARP(), nil)
	if err != nil {
		t.Fatal(err)
	}
	res, err := s.Run(workloads.Bootstrap(workloads.DefaultProfile()))
	if err != nil {
		t.Fatal(err)
	}
	if res.MethodCycles[costmodel.KLSS] != 0 {
		t.Error("nil plan must never run KLSS")
	}
	if res.TimeMS <= 0 {
		t.Error("no time elapsed")
	}
}

// Bootstrapping dominates every application (87.7% average in the paper).
func TestBootstrapDominance(t *testing.T) {
	p := workloads.DefaultProfile()
	for _, tr := range []*trace.Trace{workloads.HELR(p, 256), workloads.ResNet20(p)} {
		res := runConfig(t, arch.FAST(), tr)
		boot := res.PhaseCycles["ModRaise"] + res.PhaseCycles["CoeffToSlot"] +
			res.PhaseCycles["EvalMod"] + res.PhaseCycles["SlotToCoeff"]
		var sum float64
		for _, c := range res.PhaseCycles {
			sum += c
		}
		if frac := boot / sum; frac < 0.75 {
			t.Errorf("%s: bootstrap fraction %.2f, want > 0.75 (paper ~0.88)", tr.Name, frac)
		}
	}
}

// Ablation: disabling Hemera's prefetch must not speed anything up, and on
// transfer-heavy plans it must cost measurable stall cycles.
func TestPrefetchAblation(t *testing.T) {
	tr := workloads.Bootstrap(workloads.DefaultProfile())
	on := runConfig(t, arch.FAST(), tr)
	cfg := arch.FAST()
	cfg.DisablePrefetch = true
	off := runConfig(t, cfg, tr)
	if off.TimeMS < on.TimeMS {
		t.Errorf("disabling prefetch made the run faster: %.3f vs %.3f", off.TimeMS, on.TimeMS)
	}
	if off.StallCy <= on.StallCy {
		t.Errorf("disabling prefetch should add stalls: %.0f vs %.0f", off.StallCy, on.StallCy)
	}
}
