// Package sim is the kernel-level performance simulator of the FAST
// reproduction (paper §6.1): it executes an FHE operation trace against an
// accelerator configuration, translating every operation into
// hardware-aligned kernels (NTT, BConv, KeyMult, element-wise) via the cost
// model, mapping each kernel to its component (NTTU, BConvU, KMU, AutoU,
// AEM), overlapping evaluation-key HBM traffic with compute through the
// Hemera manager, and accumulating per-component busy time, stalls, energy
// and EDP.
//
// Fidelity note: this is an analytic pipeline model, not an RTL simulator.
// Stage throughputs derive from the paper's microarchitecture (ten-step
// NTTU, 256-wide systolic BConvU, 3x256 KMU) and an inter-kernel overlap
// efficiency calibrated so the SHARP-class baseline lands at its published
// bootstrapping latency; every comparative claim (who wins, by what factor)
// then emerges from the model rather than being hard-coded.
package sim

import (
	"fmt"

	"github.com/fastfhe/fast/internal/aether"
	"github.com/fastfhe/fast/internal/arch"
	"github.com/fastfhe/fast/internal/costmodel"
	"github.com/fastfhe/fast/internal/fault"
	"github.com/fastfhe/fast/internal/hemera"
	"github.com/fastfhe/fast/internal/obs"
	"github.com/fastfhe/fast/internal/trace"
)

// muls-per-lane-per-cycle of each compute component at the base (one 36-bit
// product per multiplier per cycle) configuration. NTTU lanes feed
// log(sqrt[4]N)-deep butterfly columns (ten-step NTT), BConvU lanes are MAC
// columns of the two systolic arrays, KMU lanes carry the width-3 gadget
// array.
var unitFactor = map[arch.Component]float64{
	arch.NTTU:   3,
	arch.BConvU: 4,
	arch.KMU:    1,
	arch.AEM:    4,
}

// bottleneckEff models dependency stalls on an operation's bottleneck
// component: the units run concurrently (the NTTU of one kernel overlaps the
// BConvU of the next), so an operation's compute time is its slowest
// component's busy time divided by this efficiency. Calibrated against the
// published SHARP bootstrapping latency (see package comment).
const bottleneckEff = 0.72

// pipelineFillCycles is the fixed fill/drain latency every operation pays
// regardless of lane count: the ten-step NTTU, the systolic arrays and the
// inter-cluster NoC all have depth that does not shrink when clusters are
// added, which is why the paper's 8-cluster variants scale by ~1.7x rather
// than 2x (Fig. 13(b)) and report extra pipeline stalls.
const pipelineFillCycles = 200.0

// Result is the outcome of one simulation.
type Result struct {
	Config arch.Config
	Trace  string

	Cycles float64
	TimeMS float64

	ComponentBusy map[arch.Component]float64
	TransferCy    float64 // HBM busy cycles (useful + fault-wasted traffic)
	StallCy       float64 // transfer cycles not hidden behind compute + backoff waits
	EvkBytes      int64
	PoolHits      int
	PoolMisses    int
	Prefetched    int

	// Fault-injection and recovery accounting (all zero on a fault-free
	// run; see internal/fault and the Hemera transfer policies).
	FaultPlan         string  `json:",omitempty"` // plan spec driving the run
	Retries           int     // transfer attempts re-issued after mid-flight failure
	Timeouts          int     // attempts abandoned at the per-transfer deadline
	Refetches         int     // transfers refetched on checksum mismatch
	DegradedDecisions int     // Aether decisions degraded to the fallback config
	WastedEvkBytes    int64   // extra HBM traffic burned by recovery
	BackoffCy         float64 // pipeline stall cycles spent in retry backoff

	Ops costmodel.Breakdown // total kernel work (36-bit-equivalent muls)

	// MethodCycles splits key-switch compute cycles by method (Fig. 10).
	MethodCycles map[costmodel.Method]float64
	// PhaseCycles splits total op cycles by trace phase.
	PhaseCycles map[string]float64

	EnergyJ   float64
	AvgPowerW float64
	EDP       float64 // energy-delay product (J*s)
}

// Utilization returns busy/total for a component.
func (r *Result) Utilization(c arch.Component) float64 {
	if r.Cycles == 0 {
		return 0
	}
	if c == arch.HBM {
		return r.TransferCy / r.Cycles
	}
	return r.ComponentBusy[c] / r.Cycles
}

// Simulator executes traces.
type Simulator struct {
	params costmodel.Params
	cfg    arch.Config
	plan   *aether.ConfigFile

	// o is the optional observability substrate (see SetObserver); nil
	// disables metric publication and synthetic-trace emission.
	o *obs.Observer

	// faultPlan drives deterministic fault injection on the evk transfer
	// path (see SetFaultPlan); the zero plan is the fault-free run.
	faultPlan fault.Plan
}

// SetFaultPlan arms deterministic fault injection for subsequent Run calls:
// each run compiles the plan into a fresh injector seeded by plan.Seed, so a
// fixed (trace, config, plan) triple reproduces the same Result bit for bit.
// Injected transfer failures, latency spikes, corruptions and pool-pressure
// events exercise Hemera's recovery policies (retry with exponential backoff,
// per-transfer timeouts, refetch, Aether degradation), and every recovery
// cost lands in the stall/energy accounting. The zero plan disarms.
func (s *Simulator) SetFaultPlan(p fault.Plan) { s.faultPlan = p }

// New builds a simulator. plan may be nil (every key-switch defaults to
// non-hoisted hybrid, the OneKSW baseline).
func New(params costmodel.Params, cfg arch.Config, plan *aether.ConfigFile) (*Simulator, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	return &Simulator{params: params, cfg: cfg, plan: plan}, nil
}

func kernelBits(m costmodel.Method) int {
	if m == costmodel.KLSS {
		return 60
	}
	return 36
}

// throughput returns equivalent muls/cycle of a component for a kernel
// width: multiplier units per lane (unitFactor) times the lane count times
// the per-unit equivalent rate of the ALU design (2 for TBM, 1 for a plain
// matched-width unit, 0.5 for Booth-emulated 60-bit on a 36-bit unit).
func (s *Simulator) throughput(c arch.Component, bits int) float64 {
	perUnit := s.cfg.EquivMuls36PerCycle(bits) / float64(s.cfg.Lanes())
	return unitFactor[c] * float64(s.cfg.Lanes()) * perUnit
}

// opWork maps one trace op (under a decision) to kernel work, key traffic
// and bookkeeping.
type opWork struct {
	bd        costmodel.Breakdown
	bits      int
	method    costmodel.Method
	keyIDs    []string
	keyBytes  int64
	autoElems float64 // automorphism traffic (AutoU, no multiplies)
}

// classify maps one trace op to kernel work, key traffic and bookkeeping.
// For key-switching ops d is the (possibly degradation-adjusted) Aether
// decision; other kinds ignore it.
func (s *Simulator) classify(op trace.Op, d aether.Decision) opWork {
	n := float64(s.params.N())
	k := float64(op.Level + 1)
	w := opWork{bits: 36, method: costmodel.Hybrid}
	switch op.Kind {
	case trace.HMult:
		w.method = d.Method
		w.bits = kernelBits(d.Method)
		w.bd = s.params.KeySwitch(d.Method, op.Level, 1)
		w.bd.Other += 4 * k * n // tensor products
		w.keyIDs = []string{fmt.Sprintf("%v/relin", d.Method)}
		w.keyBytes = s.params.EvkBytes(d.Method, op.Level) / 2 // EKG: part a regenerated on chip
	case trace.HRot:
		w.method = d.Method
		w.bits = kernelBits(d.Method)
		h := d.Hoist
		if h < 1 {
			h = 1
		}
		groups := (op.HoistCount() + h - 1) / h
		w.bd = s.params.KeySwitch(d.Method, op.Level, h).Scale(float64(groups))
		for _, r := range op.Rotations {
			w.keyIDs = append(w.keyIDs, fmt.Sprintf("%v/rot%d", d.Method, r))
		}
		w.keyBytes = s.params.EvkBytes(d.Method, op.Level) / 2 // EKG: part a regenerated on chip
		w.autoElems = float64(op.HoistCount()) * k * n
	case trace.PMult, trace.CMult:
		w.bd.Other = 2 * k * n
	case trace.PAdd, trace.HAdd:
		w.bd.Other = k * n
	case trace.Rescale:
		w.bd.NTT = (4*k - 2) * n / 2 * float64(s.params.LogN)
		w.bd.Other = 2 * k * n
	case trace.ModRaise:
		w.bd.BConv = 2 * 2 * k * n // base extension from the exhausted limbs
		w.bd.NTT = 2 * k * n / 2 * float64(s.params.LogN)
	}
	return w
}

// Run executes the trace and returns the metrics.
func (s *Simulator) Run(tr *trace.Trace) (*Result, error) {
	if err := tr.Validate(); err != nil {
		return nil, err
	}
	res := &Result{
		Config:        s.cfg,
		Trace:         tr.Name,
		ComponentBusy: map[arch.Component]float64{},
		MethodCycles:  map[costmodel.Method]float64{},
		PhaseCycles:   map[string]float64{},
	}
	hem := hemera.NewManager(int64(s.cfg.ReservedEvkMB*(1<<20)), s.plan)
	hem.DisablePrefetch = s.cfg.DisablePrefetch

	var otr *obs.Tracer
	if s.o != nil {
		hem.SetObserver(s.o)
		if otr = s.o.Tr(); otr != nil {
			s.traceSetup(otr)
		}
	}
	// Arm fault injection: a fresh injector per run keeps the random stream
	// aligned with the trace, so results are deterministic per fault seed.
	inj := fault.NewInjector(s.faultPlan)
	if inj != nil {
		hem.SetInjector(inj)
		res.FaultPlan = s.faultPlan.String()
	}

	computeCy := 0.0
	for idx, op := range tr.Ops {
		d := s.plan.DecisionFor(idx)
		if op.Kind.NeedsKeySwitch() {
			// Graceful degradation: while Hemera observes sustained prefetch
			// misses or pool thrash, the op falls back to the smallest-key
			// configuration instead of compounding the pressure.
			if dd, changed := hem.MaybeDegrade(d); changed {
				d = dd
				res.DegradedDecisions++
			}
		}
		w := s.classify(op, d)
		res.Ops = res.Ops.Add(w.bd)

		// Kernel times on their components.
		tNTT := w.bd.NTT / s.throughput(arch.NTTU, w.bits)
		tBC := w.bd.BConv / s.throughput(arch.BConvU, w.bits)
		tKM := w.bd.KeyMult / s.throughput(arch.KMU, w.bits)
		tOth := w.bd.Other / s.throughput(arch.AEM, w.bits)
		// AutoU permutes lanes-wide words (512 at 36-bit, 256 at 60-bit).
		autoPerCycle := float64(s.cfg.Lanes())
		if w.bits == 36 {
			autoPerCycle *= 2
		}
		tAuto := w.autoElems / autoPerCycle

		res.ComponentBusy[arch.NTTU] += tNTT
		res.ComponentBusy[arch.BConvU] += tBC
		res.ComponentBusy[arch.KMU] += tKM
		res.ComponentBusy[arch.AEM] += tOth
		res.ComponentBusy[arch.AutoU] += tAuto

		compute := tNTT
		for _, t := range []float64{tBC, tKM, tOth, tAuto} {
			if t > compute {
				compute = t
			}
		}
		compute = compute/bottleneckEff + pipelineFillCycles

		// Evaluation-key traffic through Hemera, including the resilience
		// accounting: wasted attempt traffic busies the HBM channel like
		// useful bytes, while exponential-backoff waits stall the pipeline
		// with the channel idle.
		var transfer float64
		prefetchedOp := true
		if op.Kind.NeedsKeySwitch() {
			for _, id := range w.keyIDs {
				t := hem.RequestKey(id, w.keyBytes, op.Level, d)
				if t.Hit {
					res.PoolHits++
					continue
				}
				res.PoolMisses++
				if t.Prefetched {
					res.Prefetched++
				} else {
					prefetchedOp = false
				}
				res.EvkBytes += t.Bytes
				res.Retries += t.Retries
				res.Timeouts += t.Timeouts
				res.Refetches += t.Refetches
				res.WastedEvkBytes += t.WastedBytes
				transfer += float64(t.Bytes+t.WastedBytes) / s.cfg.BytesPerCycle()
				if t.BackoffBytes > 0 {
					backoff := float64(t.BackoffBytes) / s.cfg.BytesPerCycle()
					res.BackoffCy += backoff
					res.StallCy += backoff
				}
			}
		}
		if otr != nil {
			s.traceOp(otr, idx, op, w, computeCy, compute, transfer,
				map[arch.Component]float64{
					arch.NTTU: tNTT, arch.BConvU: tBC, arch.KMU: tKM,
					arch.AEM: tOth, arch.AutoU: tAuto,
				})
		}
		res.TransferCy += transfer
		computeCy += compute
		if transfer > 0 && !prefetchedOp {
			// A transfer the history recorder did not predict cannot start
			// early; the part that does not fit under this op's own compute
			// stalls the pipeline.
			if transfer > compute {
				res.StallCy += transfer - compute
			}
		}
		if op.Kind.NeedsKeySwitch() {
			res.MethodCycles[w.method] += compute
		}
		if op.Phase != "" {
			res.PhaseCycles[op.Phase] += compute
		}
	}

	// Two-resource pipeline: Hemera prefetching lets key transfers stream
	// during earlier compute, so the runtime is bounded by the slower of the
	// compute pipeline and the HBM channel, plus the unpredicted stalls.
	res.Cycles = computeCy
	if res.TransferCy > res.Cycles {
		res.Cycles = res.TransferCy
	}
	res.Cycles += res.StallCy
	res.TimeMS = res.Cycles / (s.cfg.ClockGHz * 1e6)
	s.energy(res)
	if s.o != nil {
		s.publish(tr, res)
	}
	return res, nil
}

// energy integrates per-component activity against the area/power budget:
// dynamic energy tracks busy cycles at peak component power, static/idle
// energy charges the memory system (register file, HBM, NoC) for the whole
// runtime plus a 10% leakage floor on compute.
func (s *Simulator) energy(res *Result) {
	seconds := res.TimeMS / 1e3
	if res.Cycles == 0 {
		return
	}
	var watts float64
	for _, c := range []arch.Component{arch.NTTU, arch.BConvU, arch.KMU, arch.AutoU, arch.AEM} {
		util := res.ComponentBusy[c] / res.Cycles
		p := s.cfg.ComponentBudget(c).PowerW
		// 5% leakage floor plus dynamic power at a 0.5 switching-activity
		// derating of the synthesis peak.
		watts += p * (0.05 + 0.5*util)
	}
	for _, c := range []arch.Component{arch.RegisterFile, arch.NoC} {
		watts += s.cfg.ComponentBudget(c).PowerW * 0.6
	}
	watts += s.cfg.ComponentBudget(arch.HBM).PowerW * (0.2 + 0.6*res.TransferCy/res.Cycles)
	res.AvgPowerW = watts
	res.EnergyJ = watts * seconds
	res.EDP = res.EnergyJ * seconds
}

// Plans for the execution-time breakdown study (Fig. 10): OneKSW uses only
// the non-hoisted hybrid method, Hoisting adds hoisting but keeps hybrid,
// Aether enables the full dual-method selection. Each returns the plan and
// the analyzer's MCT.
func Plan(params costmodel.Params, cfg arch.Config, tr *trace.Trace, enableKLSS, enableHoisting bool) (*aether.ConfigFile, error) {
	cfg.EnableKLSS = enableKLSS
	cfg.EnableHoisting = enableHoisting
	an, err := aether.NewAnalyzer(params, cfg)
	if err != nil {
		return nil, err
	}
	plan, _, err := an.Analyze(tr)
	return plan, err
}
