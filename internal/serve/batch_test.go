package serve

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"
)

// gateExec returns an exec that blocks until release is closed, then finishes
// every item with its payload echoed back, recording batch sizes.
func gateExec(release <-chan struct{}, sizes *[]int, mu *sync.Mutex) func([]*BatchItem) {
	return func(batch []*BatchItem) {
		<-release
		mu.Lock()
		*sizes = append(*sizes, len(batch))
		mu.Unlock()
		for _, it := range batch {
			if it.Ctx.Err() != nil {
				it.Finish(nil, it.Ctx.Err())
				continue
			}
			it.Finish(fmt.Sprintf("done:%v", it.Payload), nil)
		}
	}
}

func TestBatcherCoalescesQueuedRequests(t *testing.T) {
	srv := New(Config{Workers: 1, QueueDepth: 8})
	defer srv.Drain(context.Background())
	release := make(chan struct{})
	var sizes []int
	var mu sync.Mutex
	b := NewBatcher(srv, gateExec(release, &sizes, &mu), nil)

	const n = 4
	var wg sync.WaitGroup
	results := make([]any, n)
	errs := make([]error, n)
	start := func(i int) {
		wg.Add(1)
		go func() {
			defer wg.Done()
			results[i], errs[i] = b.Do(context.Background(), Op{Name: "t", Units: 1}, "k", i)
		}()
	}
	// The first request reaches the single worker and blocks in exec on the
	// gate; the rest enroll while it holds the worker, so the next leader
	// must coalesce all of them.
	start(0)
	waitFor(t, func() bool { return inflight(srv) == 1 })
	for i := 1; i < n; i++ {
		start(i)
	}
	waitFor(t, func() bool {
		b.mu.Lock()
		defer b.mu.Unlock()
		return len(b.boards["k"]) == n-1
	})
	close(release)
	wg.Wait()

	for i := 0; i < n; i++ {
		if errs[i] != nil {
			t.Fatalf("request %d: %v", i, errs[i])
		}
		if want := fmt.Sprintf("done:%d", i); results[i] != want {
			t.Fatalf("request %d: got %v want %v", i, results[i], want)
		}
	}
	mu.Lock()
	defer mu.Unlock()
	total := 0
	coalesced := false
	for _, s := range sizes {
		total += s
		if s > 1 {
			coalesced = true
		}
	}
	if total != n {
		t.Fatalf("executed %d items across batches %v, want %d", total, sizes, n)
	}
	if !coalesced {
		t.Fatalf("expected at least one multi-item batch, got sizes %v", sizes)
	}
}

func TestBatcherKeysDoNotMix(t *testing.T) {
	srv := New(Config{Workers: 1, QueueDepth: 8})
	defer srv.Drain(context.Background())
	release := make(chan struct{})
	close(release)
	var mu sync.Mutex
	exec := func(batch []*BatchItem) {
		mu.Lock()
		defer mu.Unlock()
		key := batch[0].key
		for _, it := range batch {
			if it.key != key {
				t.Errorf("batch mixes keys %q and %q", key, it.key)
			}
			it.Finish(it.Payload, nil)
		}
	}
	b := NewBatcher(srv, exec, nil)
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			key := fmt.Sprintf("k%d", i%2)
			if _, err := b.Do(context.Background(), Op{Name: "t", Units: 1}, key, i); err != nil {
				t.Errorf("request %d: %v", i, err)
			}
		}(i)
	}
	wg.Wait()
}

func TestBatcherWithdrawOnQueueFull(t *testing.T) {
	srv := New(Config{Workers: 1, QueueDepth: 1})
	defer srv.Drain(context.Background())
	release := make(chan struct{})
	var sizes []int
	var mu sync.Mutex
	b := NewBatcher(srv, gateExec(release, &sizes, &mu), nil)

	// Occupy the worker...
	first := make(chan error, 1)
	go func() {
		_, err := b.Do(context.Background(), Op{Name: "t", Units: 1}, "other", "lead")
		first <- err
	}()
	waitFor(t, func() bool { return srv.QueueLen() == 0 && inflight(srv) == 1 })
	// ...fill the queue...
	second := make(chan error, 1)
	go func() {
		_, err := b.Do(context.Background(), Op{Name: "t", Units: 1}, "other", "queued")
		second <- err
	}()
	waitFor(t, func() bool { return srv.QueueLen() == 1 })
	// ...and overflow it with a request on a DIFFERENT key, so no leader can
	// ever scoop it: the rejection must withdraw the enrollment.
	_, err := b.Do(context.Background(), Op{Name: "t", Units: 1}, "lonely", "rejected")
	if !errors.Is(err, ErrQueueFull) {
		t.Fatalf("got %v, want ErrQueueFull", err)
	}
	b.mu.Lock()
	if len(b.boards["lonely"]) != 0 {
		t.Fatalf("rejected item left on board: %v", b.boards["lonely"])
	}
	b.mu.Unlock()

	close(release)
	if err := <-first; err != nil {
		t.Fatalf("first: %v", err)
	}
	if err := <-second; err != nil {
		t.Fatalf("second: %v", err)
	}
}

func TestBatcherCancelWhileQueued(t *testing.T) {
	srv := New(Config{Workers: 1, QueueDepth: 2})
	defer srv.Drain(context.Background())
	release := make(chan struct{})
	var sizes []int
	var mu sync.Mutex
	b := NewBatcher(srv, gateExec(release, &sizes, &mu), nil)

	first := make(chan error, 1)
	go func() {
		_, err := b.Do(context.Background(), Op{Name: "t", Units: 1}, "a", "lead")
		first <- err
	}()
	waitFor(t, func() bool { return inflight(srv) == 1 })

	ctx, cancel := context.WithCancel(context.Background())
	second := make(chan error, 1)
	go func() {
		_, err := b.Do(ctx, Op{Name: "t", Units: 1}, "b", "canceled")
		second <- err
	}()
	waitFor(t, func() bool { return srv.QueueLen() == 1 })
	cancel()
	err := <-second
	if !isCancellation(err) {
		t.Fatalf("got %v, want cancellation-class", err)
	}
	b.mu.Lock()
	if len(b.boards["b"]) != 0 {
		t.Fatal("canceled item left on board")
	}
	b.mu.Unlock()

	close(release)
	if err := <-first; err != nil {
		t.Fatalf("first: %v", err)
	}
}

func TestBatcherPanicGuardFinishesItems(t *testing.T) {
	srv := New(Config{Workers: 1, QueueDepth: 4})
	defer srv.Drain(context.Background())
	b := NewBatcher(srv, func(batch []*BatchItem) {
		panic("executor bug")
	}, nil)
	_, err := b.Do(context.Background(), Op{Name: "t", Units: 1}, "k", nil)
	if !errors.Is(err, ErrPanicked) {
		t.Fatalf("got %v, want ErrPanicked", err)
	}
}

func waitFor(t *testing.T, cond func() bool) {
	t.Helper()
	deadline := time.After(5 * time.Second)
	for !cond() {
		select {
		case <-deadline:
			t.Fatal("condition not reached in time")
		case <-time.After(time.Millisecond):
		}
	}
}

func inflight(s *Server) int64 { return s.inflight.Load() }
