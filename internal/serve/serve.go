// Package serve is the admission-control layer of the serving stack: a
// bounded queue in front of a fixed worker pool, deadline-aware load
// shedding, a circuit breaker, per-worker panic isolation and graceful
// drain. It is deliberately generic — tasks are closures — so the same
// machinery fronts the fastd HTTP daemon and the in-process chaos tests.
//
// The degradation ladder, outermost first:
//
//	draining   → ErrDraining   (server is shutting down; nothing new enters)
//	breaker    → ErrBreakerOpen (downstream fault storm; fail fast)
//	queue full → ErrQueueFull  (burst exceeded QueueDepth; push back)
//	shed       → ErrShed       (deadline provably unmeetable; reject now,
//	                            in microseconds, instead of timing out after
//	                            burning a worker for the full service time)
//	canceled   → ErrCanceled/ErrDeadline (caller gave up while queued or
//	                            mid-kernel; pooled scratch is released)
//	panic      → ErrPanicked   (handler bug; the worker survives, the one
//	                            request fails)
package serve

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"github.com/fastfhe/fast/internal/ckks"
	"github.com/fastfhe/fast/internal/obs"
)

// Typed admission errors. ErrShed additionally matches ckks.ErrDeadline (and
// therefore fast.ErrDeadline) under errors.Is — a shed request and a request
// that ran out of deadline mid-kernel are the same failure class to a client,
// they differ only in how cheaply the server found out.
var (
	// ErrQueueFull reports an arrival that found the bounded admission queue
	// at capacity. The request was not executed.
	ErrQueueFull = errors.New("serve: admission queue full")

	// ErrShed reports an arrival rejected because its deadline could not be
	// met given the estimated queue wait plus service time.
	ErrShed = errors.New("serve: request shed")

	// ErrBreakerOpen reports an arrival rejected because the circuit breaker
	// is open (the downstream dependency is failing; fail fast instead of
	// piling more work onto it).
	ErrBreakerOpen = errors.New("serve: circuit breaker open")

	// ErrDraining reports an arrival during graceful shutdown.
	ErrDraining = errors.New("serve: server draining")

	// ErrPanicked reports a task whose handler panicked. The panic was
	// recovered inside the worker: the worker survives and the panic value is
	// attached to the returned error.
	ErrPanicked = errors.New("serve: handler panicked")
)

// Op describes one unit of admitted work for cost estimation. Units is an
// abstract work measure — fastd uses the costmodel's 36-bit modular-operation
// equivalents — consistent across ops so the EWMA calibration converges.
type Op struct {
	Name  string
	Units float64
}

// Config sizes a Server. Zero values pick conservative defaults.
type Config struct {
	// Workers is the number of concurrent task executors (default 1).
	Workers int
	// QueueDepth bounds the number of admitted-but-not-started tasks
	// (default 2*Workers).
	QueueDepth int
	// NsPerUnit seeds the service-time estimator before the first completed
	// task calibrates it (default 1 ns/unit; the EWMA converges within a few
	// requests).
	NsPerUnit float64
	// Breaker, when non-nil, is consulted on arrival and fed task outcomes.
	Breaker *Breaker
	// FailureIsBreaking classifies task errors for the breaker. When nil, no
	// task error trips the breaker (the breaker then only reacts to failures
	// reported externally via Breaker.RecordFailure — e.g. fastd feeding it
	// Hemera transfer-fault deltas). Cancellation-class errors are never
	// breaking regardless of the classifier.
	FailureIsBreaking func(error) bool
	// Reg, when non-nil, receives the admission instruments (serve.* names).
	Reg *obs.Registry
}

// Server is a bounded admission queue feeding a fixed worker pool. Safe for
// concurrent use. Create with New, stop with Drain.
type Server struct {
	workers   int
	est       *Estimator
	breaker   *Breaker
	isFailure func(error) bool

	mu       sync.RWMutex // guards queue send vs. close(queue) in Drain
	queue    chan *task
	draining atomic.Bool
	wg       sync.WaitGroup

	queuedUnits atomic.Int64 // sum of Op.Units over queued tasks (rounded)
	inflight    atomic.Int64

	// Instruments (nil-safe no-ops when Config.Reg was nil).
	mQueueDepth    *obs.Gauge
	mInflight      *obs.Gauge
	mAdmitted      *obs.Counter
	mCompleted     *obs.Counter
	mFailed        *obs.Counter
	mShed          *obs.Counter
	mQueueFull     *obs.Counter
	mBreakerReject *obs.Counter
	mDrainReject   *obs.Counter
	mCanceled      *obs.Counter
	mPanics        *obs.Counter
	mWaitNS        *obs.Histogram
	mServiceNS     *obs.Histogram
	mLatencyNS     *obs.Histogram
}

// task is one admitted request. claimed arbitrates between the worker
// (starting execution) and the submitter (abandoning on ctx.Done): exactly
// one side wins the CAS, so an abandoned task is never executed and an
// executing task is never abandoned — the submitter then waits for the
// worker's verdict, which arrives quickly because the kernels poll the same
// ctx.
type task struct {
	ctx     context.Context
	fn      func(context.Context) error
	units   int64
	probe   bool // this admission consumed the breaker's half-open probe slot
	claimed atomic.Bool
	done    chan error // buffered(1): worker never blocks on delivery
	arrived time.Time
}

func (t *task) claim() bool { return t.claimed.CompareAndSwap(false, true) }

// New builds and starts a Server.
func New(cfg Config) *Server {
	if cfg.Workers <= 0 {
		cfg.Workers = 1
	}
	if cfg.QueueDepth <= 0 {
		cfg.QueueDepth = 2 * cfg.Workers
	}
	if cfg.NsPerUnit <= 0 {
		cfg.NsPerUnit = 1
	}
	s := &Server{
		workers:   cfg.Workers,
		est:       NewEstimator(cfg.NsPerUnit),
		breaker:   cfg.Breaker,
		isFailure: cfg.FailureIsBreaking,
		queue:     make(chan *task, cfg.QueueDepth),
	}
	if reg := cfg.Reg; reg != nil {
		s.mQueueDepth = reg.Gauge("serve.queue.depth")
		s.mInflight = reg.Gauge("serve.inflight")
		s.mAdmitted = reg.Counter("serve.admitted")
		s.mCompleted = reg.Counter("serve.completed")
		s.mFailed = reg.Counter("serve.failed")
		s.mShed = reg.Counter("serve.shed.deadline")
		s.mQueueFull = reg.Counter("serve.rejected.queue_full")
		s.mBreakerReject = reg.Counter("serve.rejected.breaker")
		s.mDrainReject = reg.Counter("serve.rejected.draining")
		s.mCanceled = reg.Counter("serve.canceled")
		s.mPanics = reg.Counter("serve.panics")
		s.mWaitNS = reg.Histogram("serve.admission_wait_ns")
		s.mServiceNS = reg.Histogram("serve.service_ns")
		s.mLatencyNS = reg.Histogram("serve.latency_ns")
		// Derived SLO gauges, refreshed on every scrape from the end-to-end
		// latency histogram (rank interpolation over the log2 buckets, so the
		// estimate is within 2x of the exact quantile). Gauges are resolved
		// here, outside the hook, because OnScrape hooks run during Snapshot
		// and must not touch the registry.
		p50 := reg.Gauge("serve.latency.p50_ns")
		p90 := reg.Gauge("serve.latency.p90_ns")
		p99 := reg.Gauge("serve.latency.p99_ns")
		lat := s.mLatencyNS
		reg.OnScrape(func() {
			snap := lat.Snapshot()
			p50.Set(int64(snap.Quantile(0.50)))
			p90.Set(int64(snap.Quantile(0.90)))
			p99.Set(int64(snap.Quantile(0.99)))
		})
	}
	for i := 0; i < cfg.Workers; i++ {
		s.wg.Add(1)
		go s.worker()
	}
	return s
}

// Estimator returns the server's service-time estimator (shared with callers
// that want to report externally-timed work).
func (s *Server) Estimator() *Estimator { return s.est }

// Breaker returns the server's circuit breaker (nil if none was configured).
func (s *Server) Breaker() *Breaker { return s.breaker }

// QueueLen returns the number of admitted-but-not-started tasks.
func (s *Server) QueueLen() int { return len(s.queue) }

// QueueCap returns the admission queue's depth bound.
func (s *Server) QueueCap() int { return cap(s.queue) }

// Do admits and executes fn under the server's concurrency limits, returning
// fn's error. Admission is non-blocking: a full queue, an open breaker, a
// draining server or an unmeetable deadline reject immediately with a typed
// error (never executing fn). Once admitted, fn runs on a worker goroutine
// with the caller's ctx; if ctx is done before a worker picks the task up,
// Do returns a cancellation-class error and the task is skipped.
func (s *Server) Do(ctx context.Context, op Op, fn func(context.Context) error) error {
	if s.draining.Load() {
		s.mDrainReject.Inc()
		return fmt.Errorf("serve: %s rejected: %w", op.Name, ErrDraining)
	}
	// probe is true when this admission consumed the breaker's single
	// half-open probe slot. From here on, every path that does not run fn to
	// a recorded outcome MUST return the slot via cancelProbe, or the breaker
	// wedges half-open (Allow false forever → permanent ErrBreakerOpen).
	var probe bool
	if b := s.breaker; b != nil {
		ok, p := b.AllowProbe()
		if !ok {
			s.mBreakerReject.Inc()
			return fmt.Errorf("serve: %s rejected: %w", op.Name, ErrBreakerOpen)
		}
		probe = p
	}
	if err := ctx.Err(); err != nil {
		s.cancelProbe(probe)
		s.mCanceled.Inc()
		return wrapCtxErr(op.Name, err)
	}
	// Deadline-aware shedding: reject on arrival when the estimated queue
	// wait plus this op's estimated service time overruns the deadline.
	// Rejecting now costs microseconds; admitting and timing out later costs
	// a worker the full service time and the client the full deadline.
	if dl, ok := ctx.Deadline(); ok {
		wait := s.est.WaitNS(float64(s.queuedUnits.Load()), s.workers)
		service := s.est.ServiceNS(op.Units)
		if need := time.Duration(wait + service); time.Until(dl) < need {
			s.cancelProbe(probe)
			s.mShed.Inc()
			return fmt.Errorf("serve: %s shed (estimated %v exceeds deadline): %w: %w",
				op.Name, need.Round(time.Microsecond), ErrShed, ckks.ErrDeadline)
		}
	}

	t := &task{
		ctx:     ctx,
		fn:      fn,
		units:   int64(op.Units),
		probe:   probe,
		done:    make(chan error, 1),
		arrived: time.Now(),
	}

	s.mu.RLock()
	if s.draining.Load() {
		s.mu.RUnlock()
		s.cancelProbe(probe)
		s.mDrainReject.Inc()
		return fmt.Errorf("serve: %s rejected: %w", op.Name, ErrDraining)
	}
	// Account the units before the send so a concurrent arrival never sees
	// the queue under-reported: the worker decrements only after it pops the
	// task, so incrementing after the send would let the counter go
	// transiently negative (clamped to 0 by WaitNS) and over-admit past
	// deadlines.
	s.queuedUnits.Add(t.units)
	select {
	case s.queue <- t:
		s.mu.RUnlock()
		s.mAdmitted.Inc()
		s.mQueueDepth.Set(int64(len(s.queue)))
		obs.RequestFrom(ctx).SetPhase(obs.PhaseQueued)
	default:
		s.mu.RUnlock()
		s.queuedUnits.Add(-t.units)
		s.cancelProbe(probe)
		s.mQueueFull.Inc()
		return fmt.Errorf("serve: %s rejected (queue depth %d): %w", op.Name, cap(s.queue), ErrQueueFull)
	}

	select {
	case err := <-t.done:
		return err
	case <-ctx.Done():
		if t.claim() {
			// Won the race against the workers: the task is still queued and
			// will be skipped. Settle the queue accounting here (the worker
			// that eventually pops the tombstone does not know the units),
			// and return the probe slot the abandoned task was carrying.
			s.queuedUnits.Add(-t.units)
			s.cancelProbe(probe)
			s.mCanceled.Inc()
			return wrapCtxErr(op.Name, ctx.Err())
		}
		// A worker is executing fn with the same ctx: the kernels underneath
		// poll it, so the verdict arrives within one checkpoint interval.
		return <-t.done
	}
}

// cancelProbe returns a half-open probe slot consumed by an admission that
// never reached a recordable outcome. No-op unless probe is true.
func (s *Server) cancelProbe(probe bool) {
	if probe && s.breaker != nil {
		s.breaker.CancelProbe()
	}
}

// worker executes queued tasks until the queue is closed by Drain.
func (s *Server) worker() {
	defer s.wg.Done()
	for t := range s.queue {
		s.mQueueDepth.Set(int64(len(s.queue)))
		if !t.claim() {
			continue // abandoned while queued; accounting settled by Do
		}
		s.queuedUnits.Add(-t.units)
		s.mWaitNS.ObserveSince(t.arrived)
		obs.RequestFrom(t.ctx).SetPhase(obs.PhaseExecuting)
		s.inflight.Add(1)
		s.mInflight.Set(s.inflight.Load())
		start := time.Now()
		err := s.runTask(t)
		elapsed := time.Since(start)
		s.inflight.Add(-1)
		s.mInflight.Set(s.inflight.Load())
		s.mServiceNS.Observe(int64(elapsed))
		s.settle(t, err, elapsed)
	}
}

// settle records the outcome of an executed task and delivers the verdict.
func (s *Server) settle(t *task, err error, elapsed time.Duration) {
	// End-to-end latency (arrival through execution) feeds the SLO quantile
	// gauges; rejected and abandoned arrivals never reach settle and are
	// accounted by their own counters instead.
	s.mLatencyNS.ObserveSince(t.arrived)
	switch {
	case err == nil:
		s.mCompleted.Inc()
		// Only successful runs calibrate the estimator: canceled or failed
		// runs stop partway and would bias ns-per-unit low.
		s.est.Observe(float64(t.units), elapsed)
	case isCancellation(err):
		s.mCanceled.Inc()
	default:
		s.mFailed.Inc()
	}
	// Breaker recording is classifier-driven: with no classifier the breaker
	// is externally owned (fastd records Hemera transfer-fault deltas from
	// inside the task body) and settle must not fight those reports.
	if b := s.breaker; b != nil {
		if s.isFailure != nil {
			switch {
			case err == nil:
				b.RecordSuccess()
			case isCancellation(err):
				// The caller gave up; the downstream is not to blame.
			case s.isFailure(err):
				b.RecordFailure()
			}
		}
		// A probe task must always resolve the half-open state, even when the
		// classifier block above declined to record (cancellation-class or
		// unclassified errors, or no classifier at all): a clean run closes
		// the breaker, anything inconclusive returns the probe slot so the
		// next arrival re-probes. Both calls are no-ops if the outcome was
		// already recorded (by the classifier or from inside the task body).
		if t.probe {
			if err == nil {
				b.RecordSuccess()
			} else {
				b.CancelProbe()
			}
		}
	}
	t.done <- err
}

// runTask runs the task body with panic isolation: a panicking handler
// poisons its one request, not the worker or its siblings.
func (s *Server) runTask(t *task) (err error) {
	defer func() {
		if r := recover(); r != nil {
			s.mPanics.Inc()
			err = fmt.Errorf("serve: recovered %v: %w", r, ErrPanicked)
		}
	}()
	if cerr := t.ctx.Err(); cerr != nil {
		return wrapCtxErr("task", cerr)
	}
	return t.fn(t.ctx)
}

// Drain gracefully stops the server: new arrivals are rejected with
// ErrDraining, already-admitted tasks run to completion, and Drain returns
// when every worker has exited or ctx is done (whichever is first). Calling
// Drain more than once is safe; later calls just wait.
func (s *Server) Drain(ctx context.Context) error {
	s.mu.Lock()
	if !s.draining.Swap(true) {
		close(s.queue)
	}
	s.mu.Unlock()

	idle := make(chan struct{})
	go func() { s.wg.Wait(); close(idle) }()
	select {
	case <-idle:
		return nil
	case <-ctx.Done():
		return wrapCtxErr("drain", ctx.Err())
	}
}

// Draining reports whether Drain has been initiated.
func (s *Server) Draining() bool { return s.draining.Load() }

// wrapCtxErr maps a context error to the package taxonomy, keeping the
// original in the chain so errors.Is matches both the typed sentinel and the
// context sentinel.
func wrapCtxErr(op string, cause error) error {
	sentinel := ckks.ErrCanceled
	if errors.Is(cause, context.DeadlineExceeded) {
		sentinel = ckks.ErrDeadline
	}
	return fmt.Errorf("serve: %s abandoned: %w: %w", op, sentinel, cause)
}

// isCancellation reports whether err is cancellation-class (caller fault,
// not downstream fault).
func isCancellation(err error) bool {
	return errors.Is(err, ckks.ErrCanceled) || errors.Is(err, ckks.ErrDeadline) ||
		errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded)
}
