package serve

import (
	"context"
	"fmt"
	"sync"

	"github.com/fastfhe/fast/internal/obs"
)

// Cross-request micro-batching on top of the admission Server.
//
// A Batcher coalesces concurrently admitted requests that share a batch key
// (fastd keys by session, so batchmates share key material) into one
// execution of the caller-supplied exec function. The coalescing window is
// the admission queue wait itself — no added latency, no timers: every
// request is individually admitted through Server.Do (so the degradation
// ladder, deadline shedding and breaker behavior are untouched), and the
// first admitted request to reach a worker becomes the batch leader, taking
// every still-pending same-key request with it.
//
// Cancellation stays per-request: each BatchItem carries its own context and
// the executor fails exactly the canceled items while batchmates proceed.

// itemState is the lifecycle of a BatchItem on its board.
type itemState int

const (
	itemPending   itemState = iota // enrolled, waiting for a leader
	itemRunning                    // taken into a leader's batch
	itemDone                       // finished (res/err valid, done closed)
	itemWithdrawn                  // removed before any leader took it
)

// BatchItem is one request enrolled for batched execution. The exec callback
// reads Ctx and Payload and must call Finish exactly once per item.
type BatchItem struct {
	// Ctx is the request's own context; the executor uses it to cancel this
	// item independently of its batchmates.
	Ctx context.Context
	// Payload is the caller's compiled request, opaque to this package.
	Payload any

	key  string
	mu   sync.Mutex
	st   itemState
	res  any
	err  error
	done chan struct{}
}

// Finish records the item's outcome and releases its waiter. Idempotent:
// only the first call lands (the Batcher's panic guard calls it defensively
// after exec returns).
func (it *BatchItem) Finish(res any, err error) {
	it.mu.Lock()
	defer it.mu.Unlock()
	if it.st == itemDone {
		return
	}
	it.st = itemDone
	it.res, it.err = res, err
	close(it.done)
}

// Batcher coalesces same-key requests admitted through one Server into
// micro-batches. Create with NewBatcher.
type Batcher struct {
	srv  *Server
	exec func([]*BatchItem)

	mu     sync.Mutex
	boards map[string][]*BatchItem

	mBatches   *obs.Counter   // batches executed
	mCoalesced *obs.Counter   // items that rode a batchmate's admission
	mSize      *obs.Histogram // batch size distribution
}

// NewBatcher wraps srv with micro-batching. exec executes one batch: it must
// call Finish on every item (a panic guard finishes stragglers with an error
// so waiters never hang). reg, when non-nil, receives the serve.batch.*
// instruments.
func NewBatcher(srv *Server, exec func([]*BatchItem), reg *obs.Registry) *Batcher {
	b := &Batcher{srv: srv, exec: exec, boards: make(map[string][]*BatchItem)}
	if reg != nil {
		b.mBatches = reg.Counter("serve.batch.count")
		b.mCoalesced = reg.Counter("serve.batch.coalesced")
		b.mSize = reg.Histogram("serve.batch.size")
	}
	return b
}

// Do admits one request and returns its batched-execution result. The
// request is enrolled on its key's board before admission, individually
// admitted via Server.Do (every rung of the degradation ladder applies to it
// alone), and executed either as a batch leader — taking all still-pending
// same-key requests — or as a follower whose result a leader already
// produced.
//
// On an admission rejection (queue full, shed, breaker, draining) or an
// abandon-while-queued, the enrollment is withdrawn and the admission error
// returned — unless a leader scooped the item first, in which case the work
// already ran on the batchmate's worker and its result is returned instead
// of a lie about capacity.
func (b *Batcher) Do(ctx context.Context, op Op, key string, payload any) (any, error) {
	it := &BatchItem{Ctx: ctx, Payload: payload, key: key, done: make(chan struct{})}
	b.enroll(it)
	admissionErr := b.srv.Do(ctx, op, func(context.Context) error {
		batch := b.lead(it)
		if batch == nil {
			// A batchmate's leader took this item; its verdict arrives when
			// that batch completes. If this request's own ctx dies meanwhile,
			// the executor fails the item fast — the wait stays bounded.
			<-it.done
			return it.err
		}
		b.runBatch(batch)
		return it.err
	})
	it.mu.Lock()
	st := it.st
	it.mu.Unlock()
	if st == itemDone {
		return it.res, it.err
	}
	if b.withdraw(it) {
		return nil, admissionErr
	}
	// Scooped between the rejection and the withdrawal: the work is running
	// (or just finished) on a batchmate's worker.
	<-it.done
	return it.res, it.err
}

// enroll puts the item on its key's board.
func (b *Batcher) enroll(it *BatchItem) {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.boards[it.key] = append(b.boards[it.key], it)
}

// lead attempts to make it the leader of its board: if it is still pending,
// every pending same-key item (it included) is taken and returned. Returns
// nil when another leader already took it.
func (b *Batcher) lead(it *BatchItem) []*BatchItem {
	b.mu.Lock()
	defer b.mu.Unlock()
	it.mu.Lock()
	pendingSelf := it.st == itemPending
	it.mu.Unlock()
	if !pendingSelf {
		return nil
	}
	board := b.boards[it.key]
	batch := make([]*BatchItem, 0, len(board))
	for _, cand := range board {
		cand.mu.Lock()
		if cand.st == itemPending {
			cand.st = itemRunning
			batch = append(batch, cand)
			// Followers ride the leader's worker without ever reaching one
			// themselves; stamp their in-flight phase here so /debug/requests
			// shows them executing as part of a batch rather than stuck queued.
			if cand != it {
				obs.RequestFrom(cand.Ctx).SetPhase(obs.PhaseBatched)
			}
		}
		cand.mu.Unlock()
	}
	delete(b.boards, it.key)
	return batch
}

// withdraw removes a still-pending item from its board. Returns false when a
// leader already took it (the caller must then wait for the verdict).
func (b *Batcher) withdraw(it *BatchItem) bool {
	b.mu.Lock()
	defer b.mu.Unlock()
	it.mu.Lock()
	defer it.mu.Unlock()
	if it.st != itemPending {
		return false
	}
	it.st = itemWithdrawn
	board := b.boards[it.key]
	for i, cand := range board {
		if cand == it {
			board = append(board[:i], board[i+1:]...)
			break
		}
	}
	if len(board) == 0 {
		delete(b.boards, it.key)
	} else {
		b.boards[it.key] = board
	}
	return true
}

// runBatch executes one batch with a straggler guard: every item the exec
// callback failed to finish (bug or panic unwinding through it) is finished
// with an error so no waiter hangs. The panic itself propagates to the
// Server's per-worker isolation.
func (b *Batcher) runBatch(batch []*BatchItem) {
	b.mBatches.Inc()
	b.mSize.Observe(int64(len(batch)))
	if len(batch) > 1 {
		b.mCoalesced.Add(uint64(len(batch) - 1))
	}
	defer func() {
		for _, it := range batch {
			it.Finish(nil, fmt.Errorf("serve: batch executor did not finish item: %w", ErrPanicked))
		}
	}()
	b.exec(batch)
}

// Server returns the underlying admission server.
func (b *Batcher) Server() *Server { return b.srv }
