package serve

// Regression tests for the REVIEW.md findings: the half-open probe slot must
// never be leaked by an admission that consumes it but is then rejected or
// abandoned before reaching a recordable outcome, and the queued-units
// counter must never under-report admitted work.

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"github.com/fastfhe/fast/internal/ckks"
)

// tripped returns an open breaker (threshold 1) whose cooldown has already
// elapsed on the injected clock, so the next admission is the half-open probe.
func tripped(t *testing.T) *Breaker {
	t.Helper()
	br := NewBreaker(1, time.Hour)
	now := time.Now()
	var mu sync.Mutex
	br.setClock(func() time.Time { mu.Lock(); defer mu.Unlock(); return now })
	br.RecordFailure()
	if br.State() != BreakerOpen {
		t.Fatal("breaker should open after threshold=1 failure")
	}
	mu.Lock()
	now = now.Add(2 * time.Hour)
	mu.Unlock()
	return br
}

func TestBreakerCancelProbe(t *testing.T) {
	br := tripped(t)
	ok, probe := br.AllowProbe()
	if !ok || !probe {
		t.Fatalf("AllowProbe after cooldown = (%v, %v), want (true, true)", ok, probe)
	}
	if br.Allow() {
		t.Fatal("second admission while probe in flight must be refused")
	}
	// Returning the slot must make the very next admission the new probe
	// (the original cooldown already elapsed) — not restart the cooldown.
	br.CancelProbe()
	if st := br.State(); st != BreakerOpen {
		t.Fatalf("state after CancelProbe = %v, want open", st)
	}
	ok, probe = br.AllowProbe()
	if !ok || !probe {
		t.Fatalf("AllowProbe after CancelProbe = (%v, %v), want (true, true)", ok, probe)
	}
	// CancelProbe after the probe's outcome was recorded is a no-op.
	br.RecordSuccess()
	br.CancelProbe()
	if st := br.State(); st != BreakerClosed {
		t.Fatalf("CancelProbe after RecordSuccess changed state to %v", st)
	}
}

// TestProbeReturnedOnPreCanceledContext: Allow consumes the probe slot, then
// the ctx-already-done check rejects the request. The slot must come back, or
// the breaker is wedged half-open and every later request gets ErrBreakerOpen
// forever.
func TestProbeReturnedOnPreCanceledContext(t *testing.T) {
	br := tripped(t)
	s := New(Config{Workers: 1, QueueDepth: 2, Breaker: br})
	defer s.Drain(context.Background())

	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	err := s.Do(ctx, Op{Name: "dead-on-arrival"}, func(context.Context) error {
		t.Error("task with pre-canceled ctx must not run")
		return nil
	})
	if !errors.Is(err, ckks.ErrCanceled) {
		t.Fatalf("want ErrCanceled, got %v", err)
	}
	if st := br.State(); st == BreakerHalfOpen {
		t.Fatal("probe slot leaked: breaker wedged half-open after rejected admission")
	}
	// Service must be recoverable: the next clean request is the new probe
	// and closes the breaker.
	if err := s.Do(context.Background(), Op{Name: "probe"}, func(context.Context) error { return nil }); err != nil {
		t.Fatalf("post-leak probe rejected: %v", err)
	}
	if st := br.State(); st != BreakerClosed {
		t.Fatalf("breaker state after successful probe = %v, want closed", st)
	}
}

// TestProbeReturnedOnQueueFull: the review's wedge interleaving — open
// breaker plus full queue at cooldown expiry. The probe admission finds the
// queue full and is rejected; the slot must be returned.
func TestProbeReturnedOnQueueFull(t *testing.T) {
	br := NewBreaker(1, time.Hour)
	now := time.Now()
	var mu sync.Mutex
	br.setClock(func() time.Time { mu.Lock(); defer mu.Unlock(); return now })
	s := New(Config{Workers: 1, QueueDepth: 1, Breaker: br})
	defer s.Drain(context.Background())

	// Occupy the worker and fill the queue while the breaker is still closed.
	release := make(chan struct{})
	started := make(chan struct{})
	var bg sync.WaitGroup
	bg.Add(2)
	go func() {
		defer bg.Done()
		_ = s.Do(context.Background(), Op{Name: "hog"}, func(ctx context.Context) error {
			close(started)
			return block(release)(ctx)
		})
	}()
	<-started
	go func() {
		defer bg.Done()
		_ = s.Do(context.Background(), Op{Name: "queued"}, block(release))
	}()
	deadline := time.Now().Add(time.Second)
	for s.QueueLen() == 0 {
		if time.Now().After(deadline) {
			t.Fatal("queued task never enqueued")
		}
		time.Sleep(time.Millisecond)
	}

	// Breaker opens (external fault report) and the cooldown elapses while
	// the queue is still full.
	br.RecordFailure()
	mu.Lock()
	now = now.Add(2 * time.Hour)
	mu.Unlock()

	err := s.Do(context.Background(), Op{Name: "overflow"}, func(context.Context) error {
		t.Error("queue-full task must not run")
		return nil
	})
	if !errors.Is(err, ErrQueueFull) {
		t.Fatalf("want ErrQueueFull, got %v", err)
	}
	if st := br.State(); st == BreakerHalfOpen {
		t.Fatal("probe slot leaked on queue-full rejection: breaker wedged half-open")
	}

	// Drain the backlog; the next clean request re-probes and closes.
	close(release)
	bg.Wait()
	if err := s.Do(context.Background(), Op{Name: "probe"}, func(context.Context) error { return nil }); err != nil {
		t.Fatalf("recovery probe rejected: %v", err)
	}
	if st := br.State(); st != BreakerClosed {
		t.Fatalf("breaker state after recovery = %v, want closed", st)
	}
}

// TestProbeReturnedOnUnmeetableDeadline: shed-on-arrival after Allow consumed
// the probe slot.
func TestProbeReturnedOnShed(t *testing.T) {
	br := tripped(t)
	s := New(Config{Workers: 1, QueueDepth: 2, Breaker: br, NsPerUnit: 1e6})
	defer s.Drain(context.Background())

	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Millisecond)
	defer cancel()
	err := s.Do(ctx, Op{Name: "doomed", Units: 1000}, func(context.Context) error {
		t.Error("shed task must not run")
		return nil
	})
	if !errors.Is(err, ErrShed) {
		t.Fatalf("want ErrShed, got %v", err)
	}
	if st := br.State(); st == BreakerHalfOpen {
		t.Fatal("probe slot leaked on shed: breaker wedged half-open")
	}
	if err := s.Do(context.Background(), Op{Name: "probe"}, func(context.Context) error { return nil }); err != nil {
		t.Fatalf("recovery probe rejected: %v", err)
	}
	if st := br.State(); st != BreakerClosed {
		t.Fatalf("breaker state after recovery = %v, want closed", st)
	}
}

// TestProbeCanceledMidFlightResolves: a probe task whose ctx is canceled
// while executing is cancellation-class — the classifier never records, so
// settle itself must decide the probe outcome (inconclusive → slot returned,
// breaker back to plain open, next arrival re-probes). This is the fastd
// shape: no FailureIsBreaking classifier, breaker externally owned.
func TestProbeCanceledMidFlightResolves(t *testing.T) {
	br := tripped(t)
	s := New(Config{Workers: 1, QueueDepth: 2, Breaker: br})
	defer s.Drain(context.Background())

	ctx, cancel := context.WithCancel(context.Background())
	err := s.Do(ctx, Op{Name: "probe"}, func(ctx context.Context) error {
		cancel()
		<-ctx.Done()
		return fmt.Errorf("op: %w: %w", ckks.ErrCanceled, ctx.Err())
	})
	if !errors.Is(err, ckks.ErrCanceled) {
		t.Fatalf("want ErrCanceled, got %v", err)
	}
	if st := br.State(); st != BreakerOpen {
		t.Fatalf("state after canceled probe = %v, want open (slot returned, cooldown not re-armed)", st)
	}
	// With no classifier, a clean probe run still closes the breaker via
	// settle's probe resolution (this is how fastd recovers after a storm).
	if err := s.Do(context.Background(), Op{Name: "probe2"}, func(context.Context) error { return nil }); err != nil {
		t.Fatalf("second probe: %v", err)
	}
	if st := br.State(); st != BreakerClosed {
		t.Fatalf("breaker state after clean probe = %v, want closed", st)
	}
}

// TestProbeReturnedOnAbandonWhileQueued: the submitter wins the claim() race
// against the workers and abandons a queued probe task; the abandon path in
// Do must return the slot (settle never runs for tombstones).
func TestProbeReturnedOnAbandonWhileQueued(t *testing.T) {
	br := tripped(t)
	s := New(Config{Workers: 1, QueueDepth: 2, Breaker: br})
	defer s.Drain(context.Background())

	// Admit a hog first: it consumes the probe slot and blocks in the worker.
	release := make(chan struct{})
	started := make(chan struct{})
	var bg sync.WaitGroup
	bg.Add(1)
	go func() {
		defer bg.Done()
		_ = s.Do(context.Background(), Op{Name: "hog"}, func(ctx context.Context) error {
			close(started)
			<-release
			return nil
		})
	}()
	<-started
	// Return the hog's slot manually so the next admission (our victim)
	// becomes the new probe while the worker is still busy executing the hog.
	br.CancelProbe()

	ctx, cancel := context.WithCancel(context.Background())
	victim := make(chan error, 1)
	go func() {
		victim <- s.Do(ctx, Op{Name: "victim"}, func(context.Context) error {
			t.Error("abandoned task must not run")
			return nil
		})
	}()
	// Wait until the victim is queued (worker busy), then abandon it.
	deadline := time.Now().Add(time.Second)
	for s.QueueLen() == 0 {
		if time.Now().After(deadline) {
			t.Fatal("victim never enqueued")
		}
		time.Sleep(time.Millisecond)
	}
	cancel()
	if err := <-victim; !errors.Is(err, ckks.ErrCanceled) {
		t.Fatalf("want ErrCanceled, got %v", err)
	}
	if st := br.State(); st == BreakerHalfOpen {
		t.Fatal("probe slot leaked on abandon-while-queued: breaker wedged half-open")
	}

	close(release)
	bg.Wait()
	if err := s.Do(context.Background(), Op{Name: "probe"}, func(context.Context) error { return nil }); err != nil {
		t.Fatalf("recovery probe rejected: %v", err)
	}
	if st := br.State(); st != BreakerClosed {
		t.Fatalf("breaker state after recovery = %v, want closed", st)
	}
}

// TestQueuedUnitsNeverNegative: units are accounted before the channel send,
// so a worker popping the task can never drive the counter below zero —
// which WaitNS would clamp to 0, transiently telling concurrent arrivals the
// queue is empty and over-admitting past their deadlines.
func TestQueuedUnitsNeverNegative(t *testing.T) {
	s := New(Config{Workers: 4, QueueDepth: 64})
	defer s.Drain(context.Background())

	stop := make(chan struct{})
	var sawNegative atomic.Bool
	var sampler sync.WaitGroup
	sampler.Add(1)
	go func() {
		defer sampler.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			if s.queuedUnits.Load() < 0 {
				sawNegative.Store(true)
				return
			}
			runtime.Gosched()
		}
	}()

	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 200; j++ {
				_ = s.Do(context.Background(), Op{Name: "w", Units: 7}, func(context.Context) error { return nil })
			}
		}()
	}
	wg.Wait()
	close(stop)
	sampler.Wait()
	if sawNegative.Load() {
		t.Fatal("queuedUnits went negative: units accounted after the channel send")
	}
	if got := s.queuedUnits.Load(); got != 0 {
		t.Fatalf("queuedUnits after quiescence = %d, want 0", got)
	}
}
