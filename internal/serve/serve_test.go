package serve

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"github.com/fastfhe/fast/internal/ckks"
	"github.com/fastfhe/fast/internal/obs"
)

// block returns a task body that blocks until release is closed.
func block(release <-chan struct{}) func(context.Context) error {
	return func(ctx context.Context) error {
		select {
		case <-release:
			return nil
		case <-ctx.Done():
			return ctx.Err()
		}
	}
}

func TestDoRunsTasks(t *testing.T) {
	s := New(Config{Workers: 2, QueueDepth: 4})
	defer s.Drain(context.Background())
	var ran atomic.Int32
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			// 8 concurrent submitters can legitimately outrun 2 workers + 4
			// queue slots on a small box; queue-full pushback asks the client
			// to retry, so retry — the invariant under test is that every
			// task eventually executes exactly once.
			for {
				err := s.Do(context.Background(), Op{Name: "t", Units: 10}, func(context.Context) error {
					ran.Add(1)
					return nil
				})
				if errors.Is(err, ErrQueueFull) {
					time.Sleep(100 * time.Microsecond)
					continue
				}
				if err != nil {
					t.Errorf("Do: %v", err)
				}
				return
			}
		}()
	}
	wg.Wait()
	if got := ran.Load(); got != 8 {
		t.Fatalf("ran %d of 8 tasks", got)
	}
}

func TestQueueFullRejectsImmediately(t *testing.T) {
	s := New(Config{Workers: 1, QueueDepth: 1})
	defer s.Drain(context.Background())

	release := make(chan struct{})
	defer close(release)
	started := make(chan struct{})
	go s.Do(context.Background(), Op{Name: "hog"}, func(ctx context.Context) error {
		close(started)
		return block(release)(ctx)
	})
	<-started
	// Fill the queue slot.
	go s.Do(context.Background(), Op{Name: "queued"}, block(release))
	deadline := time.Now().Add(time.Second)
	for s.QueueLen() == 0 {
		if time.Now().After(deadline) {
			t.Fatal("queued task never enqueued")
		}
		time.Sleep(time.Millisecond)
	}

	start := time.Now()
	err := s.Do(context.Background(), Op{Name: "overflow"}, func(context.Context) error { return nil })
	if !errors.Is(err, ErrQueueFull) {
		t.Fatalf("want ErrQueueFull, got %v", err)
	}
	if d := time.Since(start); d > 10*time.Millisecond {
		t.Fatalf("queue-full rejection took %v, want <10ms", d)
	}
}

func TestDeadlineShedding(t *testing.T) {
	s := New(Config{Workers: 1, QueueDepth: 8, NsPerUnit: 1e6}) // 1ms per unit
	defer s.Drain(context.Background())

	// 100 units * 1ms = 100ms estimated service; a 5ms deadline is hopeless.
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Millisecond)
	defer cancel()
	start := time.Now()
	err := s.Do(ctx, Op{Name: "doomed", Units: 100}, func(context.Context) error {
		t.Error("shed task must not run")
		return nil
	})
	if !errors.Is(err, ErrShed) {
		t.Fatalf("want ErrShed, got %v", err)
	}
	if !errors.Is(err, ckks.ErrDeadline) {
		t.Fatalf("shed error must match ckks.ErrDeadline, got %v", err)
	}
	if d := time.Since(start); d > 10*time.Millisecond {
		t.Fatalf("shed took %v, want <10ms", d)
	}

	// A comfortable deadline is admitted.
	ctx2, cancel2 := context.WithTimeout(context.Background(), time.Minute)
	defer cancel2()
	if err := s.Do(ctx2, Op{Name: "fine", Units: 1}, func(context.Context) error { return nil }); err != nil {
		t.Fatalf("admissible request rejected: %v", err)
	}
}

func TestCanceledWhileQueued(t *testing.T) {
	s := New(Config{Workers: 1, QueueDepth: 2})
	defer s.Drain(context.Background())

	release := make(chan struct{})
	started := make(chan struct{})
	go s.Do(context.Background(), Op{Name: "hog"}, func(ctx context.Context) error {
		close(started)
		return block(release)(ctx)
	})
	<-started

	ctx, cancel := context.WithCancel(context.Background())
	errc := make(chan error, 1)
	go func() {
		errc <- s.Do(ctx, Op{Name: "waiter"}, func(context.Context) error {
			t.Error("abandoned task must not run")
			return nil
		})
	}()
	deadline := time.Now().Add(time.Second)
	for s.QueueLen() == 0 {
		if time.Now().After(deadline) {
			t.Fatal("waiter never enqueued")
		}
		time.Sleep(time.Millisecond)
	}
	cancel()
	select {
	case err := <-errc:
		if !errors.Is(err, ckks.ErrCanceled) || !errors.Is(err, context.Canceled) {
			t.Fatalf("want ErrCanceled/context.Canceled, got %v", err)
		}
	case <-time.After(time.Second):
		t.Fatal("canceled Do did not return promptly")
	}
	close(release)
}

func TestPanicIsolation(t *testing.T) {
	reg := obs.NewRegistry()
	s := New(Config{Workers: 1, QueueDepth: 2, Reg: reg})
	defer s.Drain(context.Background())

	err := s.Do(context.Background(), Op{Name: "bomb"}, func(context.Context) error {
		panic("boom")
	})
	if !errors.Is(err, ErrPanicked) {
		t.Fatalf("want ErrPanicked, got %v", err)
	}
	// The worker must survive: the next task runs on the same single worker.
	if err := s.Do(context.Background(), Op{Name: "after"}, func(context.Context) error { return nil }); err != nil {
		t.Fatalf("worker died after panic: %v", err)
	}
	if got := reg.Counter("serve.panics").Value(); got != 1 {
		t.Fatalf("panic counter = %d, want 1", got)
	}
}

func TestDrainRejectsNewFinishesQueued(t *testing.T) {
	s := New(Config{Workers: 1, QueueDepth: 4})

	release := make(chan struct{})
	started := make(chan struct{})
	var finished atomic.Int32
	go s.Do(context.Background(), Op{Name: "hog"}, func(ctx context.Context) error {
		close(started)
		<-release
		finished.Add(1)
		return nil
	})
	<-started
	// Queue one more; it must complete during drain.
	queuedErr := make(chan error, 1)
	go func() {
		queuedErr <- s.Do(context.Background(), Op{Name: "queued"}, func(context.Context) error {
			finished.Add(1)
			return nil
		})
	}()
	deadline := time.Now().Add(time.Second)
	for s.QueueLen() == 0 {
		if time.Now().After(deadline) {
			t.Fatal("queued task never enqueued")
		}
		time.Sleep(time.Millisecond)
	}

	drained := make(chan error, 1)
	go func() { drained <- s.Drain(context.Background()) }()
	deadline = time.Now().Add(time.Second)
	for !s.Draining() {
		if time.Now().After(deadline) {
			t.Fatal("drain never started")
		}
		time.Sleep(time.Millisecond)
	}

	// New arrivals are rejected while draining.
	if err := s.Do(context.Background(), Op{Name: "late"}, func(context.Context) error { return nil }); !errors.Is(err, ErrDraining) {
		t.Fatalf("want ErrDraining, got %v", err)
	}

	close(release)
	if err := <-drained; err != nil {
		t.Fatalf("drain: %v", err)
	}
	if err := <-queuedErr; err != nil {
		t.Fatalf("queued task failed during drain: %v", err)
	}
	if got := finished.Load(); got != 2 {
		t.Fatalf("finished %d tasks, want 2 (hog + queued)", got)
	}
}

func TestDrainTimeout(t *testing.T) {
	s := New(Config{Workers: 1, QueueDepth: 1})
	release := make(chan struct{})
	started := make(chan struct{})
	go s.Do(context.Background(), Op{Name: "stuck"}, func(ctx context.Context) error {
		close(started)
		<-release // ignores ctx: a worst-case handler
		return nil
	})
	<-started
	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Millisecond)
	defer cancel()
	if err := s.Drain(ctx); !errors.Is(err, ckks.ErrDeadline) {
		t.Fatalf("want ErrDeadline from bounded drain, got %v", err)
	}
	close(release)
	if err := s.Drain(context.Background()); err != nil {
		t.Fatalf("second drain: %v", err)
	}
}

// TestBreakerFaultTripAndRecover is part of the chaos gate (`make chaos`
// matches Fault): consecutive downstream faults open the breaker, requests
// fail fast while open, and the half-open probe re-closes it.
func TestBreakerFaultTripAndRecover(t *testing.T) {
	br := NewBreaker(3, time.Hour)
	now := time.Now()
	clock := &now
	var mu sync.Mutex
	br.setClock(func() time.Time { mu.Lock(); defer mu.Unlock(); return *clock })

	failing := errors.New("downstream exploded")
	s := New(Config{
		Workers: 1, QueueDepth: 4,
		Breaker:           br,
		FailureIsBreaking: func(err error) bool { return errors.Is(err, failing) },
	})
	defer s.Drain(context.Background())

	fail := func(context.Context) error { return fmt.Errorf("op: %w", failing) }
	for i := 0; i < 3; i++ {
		if err := s.Do(context.Background(), Op{Name: "f"}, fail); !errors.Is(err, failing) {
			t.Fatalf("task %d: %v", i, err)
		}
	}
	if st := br.State(); st != BreakerOpen {
		t.Fatalf("breaker state after 3 failures = %v, want open", st)
	}

	// Open: fail fast without executing.
	err := s.Do(context.Background(), Op{Name: "rejected"}, func(context.Context) error {
		t.Error("must not run while breaker open")
		return nil
	})
	if !errors.Is(err, ErrBreakerOpen) {
		t.Fatalf("want ErrBreakerOpen, got %v", err)
	}

	// Cooldown elapses; the half-open probe succeeds; breaker closes.
	mu.Lock()
	now = now.Add(2 * time.Hour)
	clock = &now
	mu.Unlock()
	if err := s.Do(context.Background(), Op{Name: "probe"}, func(context.Context) error { return nil }); err != nil {
		t.Fatalf("probe: %v", err)
	}
	if st := br.State(); st != BreakerClosed {
		t.Fatalf("breaker state after successful probe = %v, want closed", st)
	}
}

func TestBreakerHalfOpenProbeFailureReopens(t *testing.T) {
	br := NewBreaker(1, time.Hour)
	now := time.Now()
	var mu sync.Mutex
	br.setClock(func() time.Time { mu.Lock(); defer mu.Unlock(); return now })

	br.RecordFailure()
	if br.State() != BreakerOpen {
		t.Fatal("breaker should open after threshold=1 failure")
	}
	mu.Lock()
	now = now.Add(2 * time.Hour)
	mu.Unlock()
	if !br.Allow() {
		t.Fatal("cooldown elapsed: probe must be allowed")
	}
	if br.Allow() {
		t.Fatal("only one half-open probe may pass")
	}
	br.RecordFailure()
	if br.State() != BreakerOpen {
		t.Fatal("failed probe must re-open the breaker")
	}
}

func TestCancellationNotBreaking(t *testing.T) {
	br := NewBreaker(1, time.Hour)
	s := New(Config{
		Workers: 1, QueueDepth: 2,
		Breaker:           br,
		FailureIsBreaking: func(error) bool { return true },
	})
	defer s.Drain(context.Background())

	ctx, cancel := context.WithCancel(context.Background())
	err := s.Do(ctx, Op{Name: "c"}, func(ctx context.Context) error {
		cancel()
		<-ctx.Done()
		return fmt.Errorf("op: %w: %w", ckks.ErrCanceled, ctx.Err())
	})
	if !errors.Is(err, ckks.ErrCanceled) {
		t.Fatalf("want ErrCanceled, got %v", err)
	}
	if st := br.State(); st != BreakerClosed {
		t.Fatalf("cancellation tripped the breaker (state %v)", st)
	}
}

func TestEstimatorCalibration(t *testing.T) {
	e := NewEstimator(1)
	for i := 0; i < 20; i++ {
		e.Observe(1000, time.Millisecond) // 1000 ns/unit
	}
	got := e.NsPerUnit()
	if got < 900 || got > 1100 {
		t.Fatalf("ns/unit = %v, want ~1000", got)
	}
	if w := e.WaitNS(4000, 2); w < 1.8e6 || w > 2.2e6 {
		t.Fatalf("WaitNS(4000 units, 2 workers) = %v, want ~2e6", w)
	}
	if s := e.ServiceNS(500); s < 4.5e5 || s > 5.5e5 {
		t.Fatalf("ServiceNS(500) = %v, want ~5e5", s)
	}
}

func TestDoMetrics(t *testing.T) {
	reg := obs.NewRegistry()
	s := New(Config{Workers: 1, QueueDepth: 1, Reg: reg})
	defer s.Drain(context.Background())
	if err := s.Do(context.Background(), Op{Name: "ok", Units: 5}, func(context.Context) error { return nil }); err != nil {
		t.Fatal(err)
	}
	if got := reg.Counter("serve.admitted").Value(); got != 1 {
		t.Fatalf("admitted = %d, want 1", got)
	}
	if got := reg.Counter("serve.completed").Value(); got != 1 {
		t.Fatalf("completed = %d, want 1", got)
	}
	if got := reg.Histogram("serve.admission_wait_ns").Count(); got != 1 {
		t.Fatalf("wait histogram count = %d, want 1", got)
	}
}
