package serve

import (
	"math"
	"sync"
	"time"
)

// ewmaAlpha weights the latest observation in the ns-per-unit average. 0.2
// converges within ~10 requests while smoothing over GC pauses and scheduler
// noise.
const ewmaAlpha = 0.2

// Estimator converts abstract work units (fastd feeds it the costmodel's
// 36-bit modular-operation equivalents) into wall-clock estimates via an
// exponentially weighted moving average of observed ns-per-unit. The cost
// model gives the *relative* weight of each op exactly (a level-20 KLSS
// key-switch is this many times a level-3 hybrid rotation); the EWMA
// calibrates the single machine-dependent scale factor from live traffic.
type Estimator struct {
	mu        sync.Mutex
	nsPerUnit float64
	samples   uint64
}

// NewEstimator seeds the calibration with an initial ns-per-unit guess.
func NewEstimator(initialNsPerUnit float64) *Estimator {
	if initialNsPerUnit <= 0 || math.IsNaN(initialNsPerUnit) || math.IsInf(initialNsPerUnit, 0) {
		initialNsPerUnit = 1
	}
	return &Estimator{nsPerUnit: initialNsPerUnit}
}

// Observe feeds one completed request (its unit weight and measured wall
// time) into the calibration. Non-positive inputs are ignored.
func (e *Estimator) Observe(units float64, elapsed time.Duration) {
	if units <= 0 || elapsed <= 0 {
		return
	}
	sample := float64(elapsed.Nanoseconds()) / units
	e.mu.Lock()
	if e.samples == 0 {
		e.nsPerUnit = sample // first real measurement replaces the seed
	} else {
		e.nsPerUnit = ewmaAlpha*sample + (1-ewmaAlpha)*e.nsPerUnit
	}
	e.samples++
	e.mu.Unlock()
}

// NsPerUnit returns the current calibration.
func (e *Estimator) NsPerUnit() float64 {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.nsPerUnit
}

// ServiceNS estimates the wall-clock nanoseconds one op of the given unit
// weight will occupy a worker for.
func (e *Estimator) ServiceNS(units float64) float64 {
	if units <= 0 {
		return 0
	}
	return units * e.NsPerUnit()
}

// WaitNS estimates the queue wait seen by a new arrival: the queued work
// divided evenly across the worker pool. It deliberately ignores the
// residual service time of in-flight tasks (unknowable without progress
// introspection), so the estimate is optimistic by at most one mean service
// time per worker — acceptable for shedding, which only needs the right
// order of magnitude.
func (e *Estimator) WaitNS(queuedUnits float64, workers int) float64 {
	if queuedUnits <= 0 {
		return 0
	}
	if workers < 1 {
		workers = 1
	}
	return queuedUnits * e.NsPerUnit() / float64(workers)
}
