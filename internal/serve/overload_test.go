package serve_test

// TestServeOverload is the acceptance exercise for the admission layer: a
// real evaluator behind a tiny worker pool, hit by 4x its admission capacity
// concurrently, with panicking tasks and unmeetable deadlines mixed in.
// Invariants:
//
//   - zero panics escape the pool (panicking tasks return ErrPanicked, the
//     workers keep serving),
//   - shed requests are rejected with typed errors in under 10ms,
//   - every accepted request computes a result bit-identical to the direct
//     (unserved) evaluator — degradation may drop work, never corrupt it,
//   - drain completes cleanly and the worker goroutines exit (goroutine
//     count returns to the pre-server baseline).
//
// It lives in package serve_test so it can drive the real public evaluator;
// the admission layer itself never imports it (no cycle).

import (
	"bytes"
	"context"
	"errors"
	"runtime"
	"sync"
	"testing"
	"time"

	fast "github.com/fastfhe/fast"
	"github.com/fastfhe/fast/internal/obs"
	"github.com/fastfhe/fast/internal/serve"
)

func TestServeOverload(t *testing.T) {
	// Real evaluator and reference result, built before the goroutine
	// baseline is taken so any goroutines the evaluator owns are excluded
	// from the drain delta.
	fctx, err := fast.NewContext(fast.ContextConfig{
		LogN:      9,
		Levels:    3,
		LogScale:  36,
		Rotations: []int{1},
		Seed:      7,
	})
	if err != nil {
		t.Fatal(err)
	}
	slots := fctx.Slots()
	av := make([]complex128, slots)
	bv := make([]complex128, slots)
	for i := range av {
		av[i] = complex(0.5, 0.1)
		bv[i] = complex(0.25, -0.05)
	}
	ca, err := fctx.Encrypt(av)
	if err != nil {
		t.Fatal(err)
	}
	cb, err := fctx.Encrypt(bv)
	if err != nil {
		t.Fatal(err)
	}
	evalOnce := func(ctx context.Context) (*fast.Ciphertext, error) {
		rot, err := fctx.RotateCtx(ctx, ca, 1)
		if err != nil {
			return nil, err
		}
		return fctx.MulCtx(ctx, rot, cb)
	}
	direct, err := evalOnce(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	var refBuf bytes.Buffer
	if err := direct.Serialize(&refBuf); err != nil {
		t.Fatal(err)
	}
	refBytes := refBuf.Bytes()

	baseline := runtime.NumGoroutine()

	reg := obs.New().Reg()
	srv := serve.New(serve.Config{
		Workers:    2,
		QueueDepth: 2, // admission capacity = 4 (2 running + 2 queued)
		NsPerUnit:  100,
		Reg:        reg,
	})
	const capacity = 4
	const clients = 4 * capacity // the contracted 4x overload

	type outcome struct {
		kind    string // "eval", "panic", "shed"
		err     error
		elapsed time.Duration
		bits    []byte
		retries int
	}
	outcomes := make([]outcome, clients)
	var wg sync.WaitGroup
	for i := 0; i < clients; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			o := &outcomes[i]
			switch {
			case i%8 == 7: // panicking task: must be isolated, typed
				o.kind = "panic"
				for {
					o.err = srv.Do(context.Background(), serve.Op{Name: "boom", Units: 1},
						func(context.Context) error { panic("kernel bug") })
					if errors.Is(o.err, serve.ErrQueueFull) && o.retries < 200 {
						o.retries++
						time.Sleep(2 * time.Millisecond)
						continue
					}
					return
				}
			case i%4 == 3: // unmeetable deadline: must shed on arrival, fast
				o.kind = "shed"
				ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
				defer cancel()
				start := time.Now()
				// 1e9 units at >=100ns/unit is ~100s of estimated service
				// against a 50ms deadline: provably unmeetable.
				o.err = srv.Do(ctx, serve.Op{Name: "doomed", Units: 1e9},
					func(context.Context) error { return nil })
				o.elapsed = time.Since(start)
			default: // real work: retry queue-full like a backoff client
				o.kind = "eval"
				for {
					var out *fast.Ciphertext
					o.err = srv.Do(context.Background(), serve.Op{Name: "eval", Units: 1},
						func(ctx context.Context) error {
							var err error
							out, err = evalOnce(ctx)
							return err
						})
					if errors.Is(o.err, serve.ErrQueueFull) && o.retries < 200 {
						o.retries++
						time.Sleep(2 * time.Millisecond)
						continue
					}
					if o.err == nil {
						var buf bytes.Buffer
						if err := out.Serialize(&buf); err != nil {
							o.err = err
						} else {
							o.bits = buf.Bytes()
						}
					}
					return
				}
			}
		}(i)
	}
	wg.Wait()

	var evals, sheds, panics int
	for i, o := range outcomes {
		switch o.kind {
		case "eval":
			evals++
			if o.err != nil {
				t.Errorf("client %d: eval failed: %v (after %d retries)", i, o.err, o.retries)
				continue
			}
			if !bytes.Equal(o.bits, refBytes) {
				t.Errorf("client %d: accepted result is not bit-identical to the direct evaluator", i)
			}
		case "shed":
			sheds++
			if !errors.Is(o.err, serve.ErrShed) {
				t.Errorf("client %d: shed error = %v, want ErrShed", i, o.err)
			}
			if !errors.Is(o.err, fast.ErrDeadline) {
				t.Errorf("client %d: shed error %v does not match fast.ErrDeadline", i, o.err)
			}
			if o.elapsed > 10*time.Millisecond {
				t.Errorf("client %d: shed took %v, want < 10ms", i, o.elapsed)
			}
		case "panic":
			panics++
			if !errors.Is(o.err, serve.ErrPanicked) {
				t.Errorf("client %d: panic task error = %v, want ErrPanicked", i, o.err)
			}
		}
	}
	if evals == 0 || sheds == 0 || panics == 0 {
		t.Fatalf("mix degenerated: evals=%d sheds=%d panics=%d", evals, sheds, panics)
	}

	// The pool must still be fully alive after the panics.
	if err := srv.Do(context.Background(), serve.Op{Name: "post", Units: 1},
		func(context.Context) error { return nil }); err != nil {
		t.Fatalf("pool dead after panics: %v", err)
	}

	// Panic accounting reached the registry.
	snap := reg.Snapshot()
	if got := snap.Counters["serve.panics"]; got != uint64(panics) {
		t.Errorf("serve.panics = %d, want %d", got, panics)
	}
	if snap.Counters["serve.shed.deadline"] < uint64(sheds) {
		t.Errorf("serve.shed.deadline = %d, want >= %d", snap.Counters["serve.shed.deadline"], sheds)
	}

	// Clean drain: bounded, no stragglers, new work typed-refused.
	drainCtx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := srv.Drain(drainCtx); err != nil {
		t.Fatalf("drain: %v", err)
	}
	if err := srv.Do(context.Background(), serve.Op{Name: "late", Units: 1},
		func(context.Context) error { return nil }); !errors.Is(err, serve.ErrDraining) {
		t.Fatalf("post-drain Do error = %v, want ErrDraining", err)
	}

	// Worker goroutines must be gone: poll until the count returns to the
	// pre-server baseline (small slack for runtime/test housekeeping).
	deadline := time.Now().Add(5 * time.Second)
	for {
		if n := runtime.NumGoroutine(); n <= baseline+2 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("goroutine leak after drain: baseline %d, now %d", baseline, runtime.NumGoroutine())
		}
		runtime.Gosched()
		time.Sleep(10 * time.Millisecond)
	}
}
