package serve

import (
	"sync"
	"time"
)

// BreakerState is the circuit breaker's tri-state.
type BreakerState int

const (
	// BreakerClosed passes traffic and counts consecutive failures.
	BreakerClosed BreakerState = iota
	// BreakerOpen fails fast until the cooldown elapses.
	BreakerOpen
	// BreakerHalfOpen lets exactly one probe through; its outcome decides
	// between closing and re-opening.
	BreakerHalfOpen
)

func (s BreakerState) String() string {
	switch s {
	case BreakerClosed:
		return "closed"
	case BreakerOpen:
		return "open"
	case BreakerHalfOpen:
		return "half-open"
	default:
		return "unknown"
	}
}

// Breaker is a consecutive-failure circuit breaker: Threshold failures in a
// row open it, a Cooldown later one probe is allowed through, and the probe's
// outcome either closes it or re-arms the cooldown. fastd wires it over the
// fault-injected Hemera key-transfer path — a storm of modeled transfer
// faults trips the breaker, key-switch-bearing requests fail fast with
// ErrBreakerOpen, and once the faults subside the half-open probe re-closes
// it.
//
// All methods are safe for concurrent use.
type Breaker struct {
	mu        sync.Mutex
	threshold int
	cooldown  time.Duration
	now       func() time.Time // injectable for tests
	onChange  func(old, new BreakerState)

	state       BreakerState
	consecutive int
	openedAt    time.Time
	trips       uint64
}

// NewBreaker returns a closed breaker that opens after `threshold`
// consecutive failures and allows a half-open probe `cooldown` after opening.
// threshold < 1 is clamped to 1; cooldown <= 0 defaults to one second.
func NewBreaker(threshold int, cooldown time.Duration) *Breaker {
	if threshold < 1 {
		threshold = 1
	}
	if cooldown <= 0 {
		cooldown = time.Second
	}
	return &Breaker{threshold: threshold, cooldown: cooldown, now: time.Now}
}

// Allow reports whether a request may proceed. In the open state it returns
// false until the cooldown has elapsed, then transitions to half-open and
// admits exactly one probe; further calls return false until the probe's
// outcome is recorded.
func (b *Breaker) Allow() bool {
	ok, _ := b.AllowProbe()
	return ok
}

// AllowProbe is Allow plus the information the caller needs to not leak the
// half-open probe slot: probe is true exactly when this admission performed
// the Open→HalfOpen transition and is therefore the single probe. A caller
// that obtains probe=true and then does NOT run the request to a recordable
// outcome (RecordSuccess/RecordFailure) must call CancelProbe, or the breaker
// wedges in half-open — where every Allow returns false — forever.
func (b *Breaker) AllowProbe() (ok, probe bool) {
	b.mu.Lock()
	var notify func()
	switch b.state {
	case BreakerClosed:
		b.mu.Unlock()
		return true, false
	case BreakerOpen:
		if b.now().Sub(b.openedAt) >= b.cooldown {
			notify = b.setState(BreakerHalfOpen)
			b.mu.Unlock()
			if notify != nil {
				notify()
			}
			return true, true // the probe
		}
		b.mu.Unlock()
		return false, false
	default: // BreakerHalfOpen: probe in flight
		b.mu.Unlock()
		return false, false
	}
}

// OnStateChange registers a hook invoked (outside the breaker lock, so it
// may call State/Trips but must not block) after every state transition.
// At most one hook; nil clears it. fastd wires the per-shard
// serve.breaker.state gauge here.
func (b *Breaker) OnStateChange(fn func(old, new BreakerState)) {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.onChange = fn
}

// setState performs a state transition with b.mu held and returns the
// notification thunk to run after unlock (nil when no hook or no change).
func (b *Breaker) setState(to BreakerState) func() {
	from := b.state
	if from == to {
		return nil
	}
	b.state = to
	if b.onChange == nil {
		return nil
	}
	cb := b.onChange
	return func() { cb(from, to) }
}

// CancelProbe returns an unused or inconclusive half-open probe slot:
// HalfOpen reverts to Open with the original openedAt preserved, so the
// already-elapsed cooldown lets the very next Allow become the new probe.
// Unlike RecordFailure it does not re-arm the cooldown (the downstream was
// never consulted) and unlike RecordSuccess it does not close the breaker.
// No-op in any other state, so it is safe to call after the probe's outcome
// was already recorded by other means.
func (b *Breaker) CancelProbe() {
	b.mu.Lock()
	var notify func()
	if b.state == BreakerHalfOpen {
		notify = b.setState(BreakerOpen)
	}
	b.mu.Unlock()
	if notify != nil {
		notify()
	}
}

// RecordSuccess reports a successful request. It resets the failure streak
// and closes a half-open breaker.
func (b *Breaker) RecordSuccess() {
	b.mu.Lock()
	var notify func()
	b.consecutive = 0
	if b.state == BreakerHalfOpen {
		notify = b.setState(BreakerClosed)
	}
	b.mu.Unlock()
	if notify != nil {
		notify()
	}
}

// RecordFailure reports a failed request. Threshold consecutive failures trip
// a closed breaker; any failure re-opens a half-open one (the probe failed,
// restart the cooldown).
func (b *Breaker) RecordFailure() {
	b.mu.Lock()
	var notify func()
	switch b.state {
	case BreakerHalfOpen:
		notify = b.trip()
	case BreakerClosed:
		b.consecutive++
		if b.consecutive >= b.threshold {
			notify = b.trip()
		}
	case BreakerOpen:
		// Late failure reports while open don't extend the cooldown.
	}
	b.mu.Unlock()
	if notify != nil {
		notify()
	}
}

// trip must be called with b.mu held; returns the state-change notification
// thunk to run after unlock.
func (b *Breaker) trip() func() {
	notify := b.setState(BreakerOpen)
	b.openedAt = b.now()
	b.consecutive = 0
	b.trips++
	return notify
}

// State returns the current state (open breakers whose cooldown has elapsed
// still report open until the next Allow performs the half-open transition).
func (b *Breaker) State() BreakerState {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.state
}

// Trips returns how many times the breaker has opened.
func (b *Breaker) Trips() uint64 {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.trips
}

// setClock replaces the breaker's time source (tests only).
func (b *Breaker) setClock(now func() time.Time) {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.now = now
}
