// Package arch models the FAST accelerator organisation (paper §5): four
// vector clusters of 256 lanes connected by a lane-wise NoC, each cluster
// holding an NTT unit (ten-step pipelined FFT), a base-conversion systolic
// array, a key-multiplication systolic array, a Benes-network automorphism
// unit and the auxiliary execution module (double-prime scaling + evaluation
// key generator), backed by a large register file and HBM.
//
// The package carries the area/power budget of Table 3, the configuration
// knobs the sensitivity studies sweep (cluster count, SRAM capacity), and
// the per-component throughput figures the cycle simulator consumes.
package arch

import (
	"fmt"

	"github.com/fastfhe/fast/internal/tbm"
)

// Component identifies a hardware unit class.
type Component int

const (
	NTTU Component = iota
	BConvU
	KMU
	AutoU
	AEM
	RegisterFile
	HBM
	NoC
	numComponents
)

func (c Component) String() string {
	switch c {
	case NTTU:
		return "NTTU"
	case BConvU:
		return "BConvU"
	case KMU:
		return "KMU"
	case AutoU:
		return "AutoU"
	case AEM:
		return "AEM"
	case RegisterFile:
		return "RegisterFiles"
	case HBM:
		return "HBM"
	case NoC:
		return "NoC"
	default:
		return fmt.Sprintf("Component(%d)", int(c))
	}
}

// Components lists every unit class in Table 3 order.
func Components() []Component {
	return []Component{NTTU, BConvU, KMU, AutoU, AEM, RegisterFile, HBM, NoC}
}

// ALUKind selects the multiplier design of a configuration.
type ALUKind int

const (
	// ALU36 is a fixed 36-bit datapath (SHARP-style): no native 60-bit
	// support, 60-bit products require the 4-multiplication Booth method.
	ALU36 ALUKind = iota
	// ALU60 is a fixed 60-bit datapath (ARK-style word): native 60-bit, but
	// 36-bit operations waste half the multiplier.
	ALU60
	// TBM is the tunable-bit multiplier: two 36-bit ops or one 60-bit op
	// per unit per cycle.
	TBM

	// numALUKinds is the sentinel bounding the enum (keep last).
	numALUKinds
)

func (k ALUKind) String() string {
	switch k {
	case ALU36:
		return "36-bit"
	case ALU60:
		return "60-bit"
	case TBM:
		return "TBM"
	default:
		return fmt.Sprintf("ALUKind(%d)", int(k))
	}
}

// Config describes one accelerator instance. The zero value is not valid;
// start from FAST() or a baseline constructor and adjust.
type Config struct {
	Name            string
	Clusters        int
	LanesPerCluster int
	ClockGHz        float64
	ALU             ALUKind

	OffChipGBps   float64 // HBM bandwidth (1000 GB/s in all paper configs)
	OnChipMB      float64 // scratchpad SRAM capacity
	ReservedEvkMB float64 // portion of OnChipMB reserved for evaluation keys

	// Feature flags the ablation study (Fig. 12) toggles.
	EnableKLSS     bool // Aether may select the KLSS method
	EnableHoisting bool // Aether may select hoisted rotations

	// DisablePrefetch turns off Hemera's configuration-file-driven key
	// prefetching (ablation: every first key use then stalls the pipeline
	// for whatever part of the transfer its own compute cannot hide).
	DisablePrefetch bool
}

// FAST returns the paper's FAST configuration (Table 4 row: 1024 lanes,
// 60-bit-capable TBM datapath, 281 MB on-chip, 1 TB/s off-chip).
func FAST() Config {
	return Config{
		Name:            "FAST",
		Clusters:        4,
		LanesPerCluster: 256,
		ClockGHz:        1.0,
		ALU:             TBM,
		OffChipGBps:     1000,
		OnChipMB:        281,
		ReservedEvkMB:   200,
		EnableKLSS:      true,
		EnableHoisting:  true,
	}
}

// Lanes returns the total lane count.
func (c Config) Lanes() int { return c.Clusters * c.LanesPerCluster }

// EquivMuls36PerCycle returns how many 36-bit-equivalent modular
// multiplications the datapath retires per cycle for a kernel of the given
// native width (36 or 60). The cost model counts every 60-bit op as two
// 36-bit equivalents, so a unit that retires one 60-bit op per cycle scores
// 2 equivalents for 60-bit kernels.
func (c Config) EquivMuls36PerCycle(kernelBits int) float64 {
	lanes := float64(c.Lanes())
	switch c.ALU {
	case TBM:
		// Two 36-bit products or one 60-bit product per TBM per cycle:
		// 2 equivalents/cycle either way.
		return 2 * lanes
	case ALU60:
		if kernelBits > 36 {
			return 2 * lanes // one 60-bit op = 2 equivalents
		}
		return lanes // 36-bit op wastes the upper half
	default: // ALU36
		if kernelBits > 36 {
			// Booth 4-mult emulation: 4 cycles of one multiplier per
			// 60-bit product, i.e. 2 equivalents per 4 lane-cycles.
			return lanes / 2
		}
		return lanes
	}
}

// AreaPower is an (area mm^2, peak power W) pair.
type AreaPower struct {
	AreaMM2 float64
	PowerW  float64
}

// table3 holds the published per-component budget of the 4-cluster FAST
// configuration (TSMC 7nm synthesis, Table 3).
var table3 = map[Component]AreaPower{
	NTTU:         {60.88, 142.7},
	BConvU:       {28.89, 86.6},
	KMU:          {10.58, 27.67},
	AutoU:        {0.6, 0.8},
	AEM:          {8.67, 10.7},
	RegisterFile: {123.9, 29.4},
	HBM:          {29.6, 31.8},
	NoC:          {20.6, 27.0},
}

// ComponentBudget returns the area/power of one component class under this
// configuration, scaled from the published 4-cluster budget: compute units
// scale with cluster count, the register file with SRAM capacity, the NoC
// with cluster count (wiring), HBM is fixed.
func (c Config) ComponentBudget(comp Component) AreaPower {
	base := table3[comp]
	clusterScale := float64(c.Clusters) / 4.0
	switch comp {
	case NTTU, BConvU, KMU, AutoU, AEM:
		ap := AreaPower{base.AreaMM2 * clusterScale, base.PowerW * clusterScale}
		// Compute area tracks the ALU design: the published numbers are for
		// the TBM datapath; a plain 36-bit datapath is ~1/TBMRelativeArea()
		// of it per lane, a plain 60-bit one 1/AreaOverheadVs60.
		switch c.ALU {
		case ALU36:
			f := 1 / tbm.TBMRelativeArea()
			ap.AreaMM2 *= f * tbm.ControlLogicOverhead // keep shared control
			ap.PowerW *= f * tbm.ControlLogicOverhead
		case ALU60:
			ap.AreaMM2 /= tbm.AreaOverheadVs60
			ap.PowerW /= tbm.AreaOverheadVs60
		}
		return ap
	case RegisterFile:
		memScale := c.OnChipMB / 281.0
		return AreaPower{base.AreaMM2 * memScale, base.PowerW * memScale}
	case NoC:
		return AreaPower{base.AreaMM2 * clusterScale, base.PowerW * clusterScale}
	default: // HBM
		return base
	}
}

// TotalAreaPower sums the component budgets.
func (c Config) TotalAreaPower() AreaPower {
	var t AreaPower
	for _, comp := range Components() {
		ap := c.ComponentBudget(comp)
		t.AreaMM2 += ap.AreaMM2
		t.PowerW += ap.PowerW
	}
	return t
}

// BytesPerCycle converts the off-chip bandwidth to bytes per clock cycle.
func (c Config) BytesPerCycle() float64 {
	return c.OffChipGBps / c.ClockGHz
}

// Validate reports configuration errors.
func (c Config) Validate() error {
	if c.Clusters < 1 || c.LanesPerCluster < 1 {
		return fmt.Errorf("arch: %q needs at least one cluster and lane", c.Name)
	}
	if c.ClockGHz <= 0 || c.OffChipGBps <= 0 {
		return fmt.Errorf("arch: %q needs positive clock and bandwidth", c.Name)
	}
	if c.ReservedEvkMB > c.OnChipMB {
		return fmt.Errorf("arch: %q reserves %g MB for keys out of %g MB SRAM",
			c.Name, c.ReservedEvkMB, c.OnChipMB)
	}
	return nil
}

// WithClusters returns a copy with the cluster count replaced (Fig. 13(b)).
func (c Config) WithClusters(n int) Config {
	c.Clusters = n
	c.Name = fmt.Sprintf("%s-%dC", c.Name, n)
	return c
}

// WithOnChipMB returns a copy with the SRAM capacity replaced (Fig. 13(a)),
// keeping the same reserved-key fraction.
func (c Config) WithOnChipMB(mb float64) Config {
	frac := c.ReservedEvkMB / c.OnChipMB
	c.OnChipMB = mb
	c.ReservedEvkMB = mb * frac
	c.Name = fmt.Sprintf("%s-%.0fMB", c.Name, mb)
	return c
}
