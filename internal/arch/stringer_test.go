package arch

import (
	"strings"
	"testing"
)

// Every Component must carry a real name: the metrics registry keys
// per-component gauges by Component.String(), so a numeric fallback would
// silently split a component's series from its trace track.
func TestComponentStringExhaustive(t *testing.T) {
	seen := map[string]Component{}
	for c := Component(0); c < numComponents; c++ {
		s := c.String()
		if strings.HasPrefix(s, "Component(") {
			t.Errorf("Component %d has no name (got fallback %q)", int(c), s)
		}
		if prev, dup := seen[s]; dup {
			t.Errorf("Component %d and %d share the name %q", int(prev), int(c), s)
		}
		seen[s] = c
	}
	if s := numComponents.String(); !strings.HasPrefix(s, "Component(") {
		t.Errorf("sentinel stringified as %q, want fallback", s)
	}
	// Components() must enumerate exactly the named values, in order.
	if got := Components(); len(got) != int(numComponents) {
		t.Errorf("Components() lists %d of %d components", len(got), int(numComponents))
	}
}

// Same contract for the ALU designs the configuration tables print.
func TestALUKindStringExhaustive(t *testing.T) {
	seen := map[string]ALUKind{}
	for k := ALUKind(0); k < numALUKinds; k++ {
		s := k.String()
		if strings.HasPrefix(s, "ALUKind(") {
			t.Errorf("ALUKind %d has no name (got fallback %q)", int(k), s)
		}
		if prev, dup := seen[s]; dup {
			t.Errorf("ALUKind %d and %d share the name %q", int(prev), int(k), s)
		}
		seen[s] = k
	}
	if s := numALUKinds.String(); !strings.HasPrefix(s, "ALUKind(") {
		t.Errorf("sentinel stringified as %q, want fallback", s)
	}
}
