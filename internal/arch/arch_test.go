package arch

import (
	"math"
	"testing"
)

func TestTable3Totals(t *testing.T) {
	f := FAST()
	got := f.TotalAreaPower()
	// Paper Table 3: 283.75 mm^2, 337.5 W peak.
	if math.Abs(got.AreaMM2-283.72) > 0.5 {
		t.Errorf("total area %.2f mm^2, want ~283.7", got.AreaMM2)
	}
	if math.Abs(got.PowerW-356.67) > 3 {
		// Table 3 lists 337.5 as the total but the column sums to 356.67;
		// we reproduce the column sum and note the discrepancy.
		t.Errorf("total power %.2f W, want the component sum ~356.7", got.PowerW)
	}
}

func TestComponentBudgetAnchors(t *testing.T) {
	f := FAST()
	cases := map[Component]AreaPower{
		NTTU:         {60.88, 142.7},
		BConvU:       {28.89, 86.6},
		KMU:          {10.58, 27.67},
		AutoU:        {0.6, 0.8},
		AEM:          {8.67, 10.7},
		RegisterFile: {123.9, 29.4},
		HBM:          {29.6, 31.8},
		NoC:          {20.6, 27.0},
	}
	for comp, want := range cases {
		got := f.ComponentBudget(comp)
		if math.Abs(got.AreaMM2-want.AreaMM2) > 1e-9 || math.Abs(got.PowerW-want.PowerW) > 1e-9 {
			t.Errorf("%v budget %+v, want %+v", comp, got, want)
		}
	}
}

func TestClusterScaling(t *testing.T) {
	f := FAST()
	f8 := f.WithClusters(8)
	if f8.ComponentBudget(NTTU).AreaMM2 != 2*f.ComponentBudget(NTTU).AreaMM2 {
		t.Error("NTTU area should double with 8 clusters")
	}
	if f8.ComponentBudget(HBM) != f.ComponentBudget(HBM) {
		t.Error("HBM budget should not scale with clusters")
	}
	if f8.ComponentBudget(RegisterFile) != f.ComponentBudget(RegisterFile) {
		t.Error("register file should not scale with clusters")
	}
	// Fig. 13(b): 8 clusters increase total area by ~1.37x.
	ratio := f8.TotalAreaPower().AreaMM2 / f.TotalAreaPower().AreaMM2
	if ratio < 1.25 || ratio > 1.5 {
		t.Errorf("8-cluster area ratio %.2f, want ~1.37", ratio)
	}
}

func TestMemoryScaling(t *testing.T) {
	f := FAST()
	big := f.WithOnChipMB(562)
	if big.ComponentBudget(RegisterFile).AreaMM2 <= f.ComponentBudget(RegisterFile).AreaMM2 {
		t.Error("register file area should grow with SRAM")
	}
	if big.ReservedEvkMB <= f.ReservedEvkMB {
		t.Error("reserved key space should scale with SRAM")
	}
	if big.ComponentBudget(NTTU) != f.ComponentBudget(NTTU) {
		t.Error("compute should not scale with SRAM")
	}
}

func TestEquivThroughput(t *testing.T) {
	f := FAST()
	if got := f.EquivMuls36PerCycle(36); got != 2048 {
		t.Errorf("TBM 36-bit equiv throughput %g, want 2048", got)
	}
	if got := f.EquivMuls36PerCycle(60); got != 2048 {
		t.Errorf("TBM 60-bit equiv throughput %g, want 2048", got)
	}
	f.ALU = ALU36
	if got := f.EquivMuls36PerCycle(36); got != 1024 {
		t.Errorf("ALU36 36-bit throughput %g, want 1024", got)
	}
	if got := f.EquivMuls36PerCycle(60); got != 512 {
		t.Errorf("ALU36 60-bit (Booth) throughput %g, want 512", got)
	}
	f.ALU = ALU60
	if got := f.EquivMuls36PerCycle(36); got != 1024 {
		t.Errorf("ALU60 36-bit throughput %g, want 1024", got)
	}
	if got := f.EquivMuls36PerCycle(60); got != 2048 {
		t.Errorf("ALU60 60-bit throughput %g, want 2048", got)
	}
}

func TestValidate(t *testing.T) {
	f := FAST()
	if err := f.Validate(); err != nil {
		t.Fatalf("FAST config invalid: %v", err)
	}
	bad := f
	bad.Clusters = 0
	if bad.Validate() == nil {
		t.Error("expected error for zero clusters")
	}
	bad = f
	bad.ReservedEvkMB = f.OnChipMB + 1
	if bad.Validate() == nil {
		t.Error("expected error for oversubscribed key space")
	}
	bad = f
	bad.ClockGHz = 0
	if bad.Validate() == nil {
		t.Error("expected error for zero clock")
	}
}

func TestStringers(t *testing.T) {
	for _, c := range Components() {
		if c.String() == "" {
			t.Error("component stringer empty")
		}
	}
	for _, k := range []ALUKind{ALU36, ALU60, TBM} {
		if k.String() == "" {
			t.Error("ALU stringer empty")
		}
	}
	if Component(99).String() == "" || ALUKind(99).String() == "" {
		t.Error("unknown values should still print")
	}
}

func TestBytesPerCycle(t *testing.T) {
	f := FAST()
	if got := f.BytesPerCycle(); got != 1000 {
		t.Errorf("1 TB/s at 1 GHz should be 1000 B/cycle, got %g", got)
	}
}
