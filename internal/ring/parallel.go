package ring

import (
	"runtime"
	"sync"
)

// parallelThreshold is the limb count from which the per-limb transforms are
// fanned out across cores. RNS limbs are fully independent (the property the
// FAST accelerator's lane parallelism exploits), so the split is safe and
// deterministic.
const parallelThreshold = 4

// Workers normalises a parallelism request into a concrete worker count:
//
//	n <= 0  -> GOMAXPROCS (use every available core)
//	n == 1  -> 1 (serial execution, no goroutines spawned)
//	n >= 2  -> n
//
// This is the single interpretation of the "Parallelism" knob used by every
// limb-parallel kernel in the repository (NTT, BConv, ModUp, ModDown,
// KeyMult, Rescale).
func Workers(n int) int {
	if n <= 0 {
		return runtime.GOMAXPROCS(0)
	}
	return n
}

// ForEachLimbRange partitions [0, limbs) into at most `workers` contiguous
// chunks and runs fn(lo, hi) for each chunk, in parallel when it pays off.
// Unlike a one-channel-item-per-limb fan-out, chunking keeps per-goroutine
// work coarse (one range per worker) so the scheduling overhead stays
// negligible even for cheap per-limb bodies. workers follows the Workers
// convention (<=0 means GOMAXPROCS, 1 means serial).
//
// fn must be safe to call concurrently on disjoint ranges; ranges never
// overlap and together cover [0, limbs) exactly once.
func ForEachLimbRange(limbs, workers int, fn func(lo, hi int)) {
	if limbs <= 0 {
		return
	}
	w := Workers(workers)
	if w > limbs {
		w = limbs
	}
	if w < 2 || limbs < parallelThreshold {
		fn(0, limbs)
		return
	}
	chunk := (limbs + w - 1) / w
	var wg sync.WaitGroup
	for lo := 0; lo < limbs; lo += chunk {
		hi := lo + chunk
		if hi > limbs {
			hi = limbs
		}
		wg.Add(1)
		go func(lo, hi int) {
			defer wg.Done()
			fn(lo, hi)
		}(lo, hi)
	}
	wg.Wait()
}

// ForEachLimb runs fn(i) for every limb index in [0, limbs), distributing
// contiguous index ranges across up to `workers` goroutines.
func ForEachLimb(limbs, workers int, fn func(i int)) {
	ForEachLimbRange(limbs, workers, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			fn(i)
		}
	})
}

// forEachLimb is the legacy helper: fan out across all cores.
func forEachLimb(limbs int, fn func(int)) {
	ForEachLimb(limbs, -1, fn)
}

// NTTParallel is NTT with the per-limb transforms distributed across cores.
func (r *Ring) NTTParallel(p Poly) {
	r.NTTWorkers(p, -1)
}

// INTTParallel is INTT with the per-limb transforms distributed across cores.
func (r *Ring) INTTParallel(p Poly) {
	r.INTTWorkers(p, -1)
}

// NTTWorkers is NTT with the per-limb transforms distributed across up to
// `workers` goroutines (Workers convention).
func (r *Ring) NTTWorkers(p Poly, workers int) {
	r.checkShape(p)
	ForEachLimb(len(r.Moduli), workers, func(i int) {
		r.Tables[i].Forward(p.Coeffs[i])
	})
}

// INTTWorkers is INTT with the per-limb transforms distributed across up to
// `workers` goroutines (Workers convention).
func (r *Ring) INTTWorkers(p Poly, workers int) {
	r.checkShape(p)
	ForEachLimb(len(r.Moduli), workers, func(i int) {
		r.Tables[i].Inverse(p.Coeffs[i])
	})
}
