package ring

import (
	"runtime"
	"sync"
)

// parallelThreshold is the limb count from which the per-limb transforms are
// fanned out across cores. RNS limbs are fully independent (the property the
// FAST accelerator's lane parallelism exploits), so the split is safe and
// deterministic.
const parallelThreshold = 4

// forEachLimb runs fn(i) for every limb index, in parallel when it pays off.
func forEachLimb(limbs int, fn func(int)) {
	workers := runtime.GOMAXPROCS(0)
	if limbs < parallelThreshold || workers < 2 {
		for i := 0; i < limbs; i++ {
			fn(i)
		}
		return
	}
	if workers > limbs {
		workers = limbs
	}
	var wg sync.WaitGroup
	next := make(chan int, limbs)
	for i := 0; i < limbs; i++ {
		next <- i
	}
	close(next)
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for i := range next {
				fn(i)
			}
		}()
	}
	wg.Wait()
}

// NTTParallel is NTT with the per-limb transforms distributed across cores.
func (r *Ring) NTTParallel(p Poly) {
	r.checkShape(p)
	forEachLimb(len(r.Moduli), func(i int) {
		r.Tables[i].Forward(p.Coeffs[i])
	})
}

// INTTParallel is INTT with the per-limb transforms distributed across cores.
func (r *Ring) INTTParallel(p Poly) {
	r.checkShape(p)
	forEachLimb(len(r.Moduli), func(i int) {
		r.Tables[i].Inverse(p.Coeffs[i])
	})
}
