package ring

import (
	"fmt"
	"math/rand"
	"testing"
)

// benchNTTTable builds one NTT table for benchmarking; panics on setup errors
// (benchmark-only code path).
func benchNTTTable(b *testing.B, bitSize, logN int) *NTTTable {
	b.Helper()
	ps, err := GenerateNTTPrimes(bitSize, logN, 1)
	if err != nil {
		b.Fatalf("GenerateNTTPrimes: %v", err)
	}
	m, err := NewModulus(ps[0])
	if err != nil {
		b.Fatalf("NewModulus: %v", err)
	}
	t, err := NewNTTTable(m, logN)
	if err != nil {
		b.Fatalf("NewNTTTable: %v", err)
	}
	return t
}

func benchCoeffs(t *NTTTable, seed int64) []uint64 {
	rng := rand.New(rand.NewSource(seed))
	a := make([]uint64, t.N)
	for i := range a {
		a[i] = rng.Uint64() % t.Mod.Q
	}
	return a
}

// BenchmarkNTTForward measures the single-limb forward NTT — the NTTU kernel
// of the paper — for both prime widths the tunable-bit datapath targets.
func BenchmarkNTTForward(b *testing.B) {
	for _, bits := range []int{36, 60} {
		for _, logN := range []int{12, 13} {
			t := benchNTTTable(b, bits, logN)
			a := benchCoeffs(t, 1)
			b.Run(fmt.Sprintf("bits=%d/N=%d", bits, 1<<logN), func(b *testing.B) {
				b.SetBytes(int64(t.N) * 8)
				for i := 0; i < b.N; i++ {
					t.Forward(a)
				}
			})
		}
	}
}

// BenchmarkNTTInverse measures the single-limb inverse NTT including the 1/N
// scaling.
func BenchmarkNTTInverse(b *testing.B) {
	for _, bits := range []int{36, 60} {
		for _, logN := range []int{12, 13} {
			t := benchNTTTable(b, bits, logN)
			a := benchCoeffs(t, 2)
			b.Run(fmt.Sprintf("bits=%d/N=%d", bits, 1<<logN), func(b *testing.B) {
				b.SetBytes(int64(t.N) * 8)
				for i := 0; i < b.N; i++ {
					t.Inverse(a)
				}
			})
		}
	}
}

// BenchmarkMulCoeffsKernel measures the element-wise modular product over one
// limb (the tensoring inner loop).
func BenchmarkMulCoeffsKernel(b *testing.B) {
	for _, bits := range []int{36, 60} {
		logN := 12
		ps, err := GenerateNTTPrimes(bits, logN, 1)
		if err != nil {
			b.Fatalf("GenerateNTTPrimes: %v", err)
		}
		r, err := NewRing(logN, ps)
		if err != nil {
			b.Fatalf("NewRing: %v", err)
		}
		p := randPoly(r, 3)
		q := randPoly(r, 4)
		out := r.NewPoly()
		b.Run(fmt.Sprintf("bits=%d/N=%d", bits, 1<<logN), func(b *testing.B) {
			b.SetBytes(int64(r.N) * 8)
			for i := 0; i < b.N; i++ {
				r.MulCoeffs(p, q, out)
			}
		})
	}
}
