package ring

import (
	"math/big"
	"math/rand"
	"testing"
)

// refForward is a textbook Cooley–Tukey negacyclic NTT with a full reduction
// after every butterfly — the correctness reference for the Harvey
// lazy-reduction Forward. It shares the bit-reversed twiddle tables with the
// production kernel so the two computations are stage-by-stage comparable.
func refForward(t *NTTTable, a []uint64) {
	mod := t.Mod
	step := t.N >> 1
	for m := 1; m < t.N; m <<= 1 {
		for i := 0; i < m; i++ {
			w := t.rootsFwd[m+i]
			j1 := 2 * i * step
			for j := j1; j < j1+step; j++ {
				u := a[j]
				v := mod.MulMod(a[j+step], w)
				a[j] = mod.AddMod(u, v)
				a[j+step] = mod.SubMod(u, v)
			}
		}
		step >>= 1
	}
}

// refInverse is the fully-reduced Gentleman–Sande reference, with the 1/N
// scaling applied as a separate final pass (the production kernel folds it
// into the last stage).
func refInverse(t *NTTTable, a []uint64) {
	mod := t.Mod
	step := 1
	for m := t.N >> 1; m >= 1; m >>= 1 {
		for i := 0; i < m; i++ {
			w := t.rootsInv[m+i]
			j1 := 2 * i * step
			for j := j1; j < j1+step; j++ {
				x, y := a[j], a[j+step]
				a[j] = mod.AddMod(x, y)
				a[j+step] = mod.MulMod(mod.SubMod(x, y), w)
			}
		}
		step <<= 1
	}
	for j := range a {
		a[j] = mod.MulMod(a[j], t.nInv)
	}
}

func diffTables(t *testing.T, bitSizes, logNs []int) []*NTTTable {
	t.Helper()
	var out []*NTTTable
	for _, bits := range bitSizes {
		for _, logN := range logNs {
			primes, err := GenerateNTTPrimes(bits, logN, 1)
			if err != nil {
				t.Fatalf("GenerateNTTPrimes(%d,%d): %v", bits, logN, err)
			}
			mod, err := NewModulus(primes[0])
			if err != nil {
				t.Fatalf("NewModulus: %v", err)
			}
			tbl, err := NewNTTTable(mod, logN)
			if err != nil {
				t.Fatalf("NewNTTTable: %v", err)
			}
			out = append(out, tbl)
		}
	}
	return out
}

func randCoeffs(tbl *NTTTable, rng *rand.Rand, bound uint64) []uint64 {
	a := make([]uint64, tbl.N)
	for i := range a {
		a[i] = rng.Uint64() % bound
	}
	return a
}

// TestForwardMatchesReference pins bit-equality of the lazy Forward against
// the fully-reduced reference on random inputs, across 36-bit and 60-bit
// moduli and several transform sizes, and checks the [0, q) output contract.
func TestForwardMatchesReference(t *testing.T) {
	rng := rand.New(rand.NewSource(101))
	for _, tbl := range diffTables(t, []int{36, 60}, []int{1, 4, 8, 10}) {
		q := tbl.Mod.Q
		for trial := 0; trial < 5; trial++ {
			a := randCoeffs(tbl, rng, q)
			want := append([]uint64(nil), a...)
			refForward(tbl, want)
			tbl.Forward(a)
			for i := range a {
				if a[i] >= q {
					t.Fatalf("q=%d N=%d: Forward output %d >= q at %d", q, tbl.N, a[i], i)
				}
				if a[i] != want[i] {
					t.Fatalf("q=%d N=%d trial=%d: Forward diverges from reference at %d: %d != %d",
						q, tbl.N, trial, i, a[i], want[i])
				}
			}
		}
	}
}

// TestInverseMatchesReference pins bit-equality of the lazy Inverse (with its
// folded 1/N scaling) against the fully-reduced reference.
func TestInverseMatchesReference(t *testing.T) {
	rng := rand.New(rand.NewSource(102))
	for _, tbl := range diffTables(t, []int{36, 60}, []int{1, 4, 8, 10}) {
		q := tbl.Mod.Q
		for trial := 0; trial < 5; trial++ {
			a := randCoeffs(tbl, rng, q)
			want := append([]uint64(nil), a...)
			refInverse(tbl, want)
			tbl.Inverse(a)
			for i := range a {
				if a[i] >= q {
					t.Fatalf("q=%d N=%d: Inverse output %d >= q at %d", q, tbl.N, a[i], i)
				}
				if a[i] != want[i] {
					t.Fatalf("q=%d N=%d trial=%d: Inverse diverges from reference at %d: %d != %d",
						q, tbl.N, trial, i, a[i], want[i])
				}
			}
		}
	}
}

// TestNTTToleratesLazyInputs checks the documented input contract: Forward
// and Inverse accept coefficients in [0, 2q) and produce the same
// fully-reduced bits as on the canonical representatives.
func TestNTTToleratesLazyInputs(t *testing.T) {
	rng := rand.New(rand.NewSource(103))
	for _, tbl := range diffTables(t, []int{36, 60}, []int{4, 8}) {
		q := tbl.Mod.Q
		for trial := 0; trial < 5; trial++ {
			lazy := randCoeffs(tbl, rng, 2*q)
			canon := make([]uint64, tbl.N)
			for i := range canon {
				canon[i] = lazy[i] % q
			}
			fl := append([]uint64(nil), lazy...)
			fc := append([]uint64(nil), canon...)
			tbl.Forward(fl)
			tbl.Forward(fc)
			for i := range fl {
				if fl[i] != fc[i] {
					t.Fatalf("q=%d N=%d: Forward lazy/canonical mismatch at %d", q, tbl.N, i)
				}
			}
			il := append([]uint64(nil), lazy...)
			ic := append([]uint64(nil), canon...)
			tbl.Inverse(il)
			tbl.Inverse(ic)
			for i := range il {
				if il[i] != ic[i] {
					t.Fatalf("q=%d N=%d: Inverse lazy/canonical mismatch at %d", q, tbl.N, i)
				}
			}
		}
	}
}

// TestInverseLazyCongruent checks InverseLazy's contract: outputs live in
// [0, 2q) and are congruent mod q to the fully-reduced Inverse, on both
// canonical and lazy inputs.
func TestInverseLazyCongruent(t *testing.T) {
	rng := rand.New(rand.NewSource(104))
	for _, tbl := range diffTables(t, []int{36, 60}, []int{1, 4, 8}) {
		q := tbl.Mod.Q
		for trial := 0; trial < 5; trial++ {
			a := randCoeffs(tbl, rng, 2*q)
			full := append([]uint64(nil), a...)
			lazy := append([]uint64(nil), a...)
			tbl.Inverse(full)
			tbl.InverseLazy(lazy)
			for i := range lazy {
				if lazy[i] >= 2*q {
					t.Fatalf("q=%d N=%d: InverseLazy output %d >= 2q at %d", q, tbl.N, lazy[i], i)
				}
				if lazy[i]%q != full[i] {
					t.Fatalf("q=%d N=%d: InverseLazy not congruent to Inverse at %d", q, tbl.N, i)
				}
			}
		}
	}
}

// TestReduceWordMatchesBigInt checks the one-word Barrett step against
// math/big over the full 64-bit input range, including values far above q.
func TestReduceWordMatchesBigInt(t *testing.T) {
	rng := rand.New(rand.NewSource(105))
	for _, bits := range []int{36, 60} {
		primes, err := GenerateNTTPrimes(bits, 4, 1)
		if err != nil {
			t.Fatalf("GenerateNTTPrimes: %v", err)
		}
		m, _ := NewModulus(primes[0])
		qB := new(big.Int).SetUint64(m.Q)
		inputs := []uint64{0, 1, m.Q - 1, m.Q, m.Q + 1, 2*m.Q - 1, ^uint64(0)}
		for i := 0; i < 200; i++ {
			inputs = append(inputs, rng.Uint64())
		}
		for _, x := range inputs {
			want := new(big.Int).Mod(new(big.Int).SetUint64(x), qB).Uint64()
			if got := m.ReduceWord(x); got != want {
				t.Fatalf("q=%d: ReduceWord(%d) = %d, want %d", m.Q, x, got, want)
			}
		}
	}
}

// TestMulModShoupLazyCongruent checks the lazy Shoup multiply: for any 64-bit
// x and w < q the result is in [0, 2q) and congruent to x*w mod q.
func TestMulModShoupLazyCongruent(t *testing.T) {
	rng := rand.New(rand.NewSource(106))
	for _, bits := range []int{36, 60} {
		primes, err := GenerateNTTPrimes(bits, 4, 1)
		if err != nil {
			t.Fatalf("GenerateNTTPrimes: %v", err)
		}
		m, _ := NewModulus(primes[0])
		qB := new(big.Int).SetUint64(m.Q)
		for i := 0; i < 500; i++ {
			x := rng.Uint64()
			w := rng.Uint64() % m.Q
			ws := m.ShoupPrecomp(w)
			got := m.MulModShoupLazy(x, w, ws)
			if got >= 2*m.Q {
				t.Fatalf("q=%d: MulModShoupLazy(%d,%d) = %d >= 2q", m.Q, x, w, got)
			}
			want := new(big.Int).Mul(new(big.Int).SetUint64(x), new(big.Int).SetUint64(w))
			want.Mod(want, qB)
			if got%m.Q != want.Uint64() {
				t.Fatalf("q=%d: MulModShoupLazy(%d,%d) incongruent", m.Q, x, w)
			}
			// The strict variant must agree bit-for-bit with the congruence.
			if s := m.MulModShoup(x, w, ws); s != want.Uint64() {
				t.Fatalf("q=%d: MulModShoup(%d,%d) = %d, want %d", m.Q, x, w, s, want.Uint64())
			}
		}
	}
}

// TestAccumCapacity checks the accumulator-capacity bound: summing exactly
// AccumCapacity products of (q-1)^2 keeps the 128-bit value below q*2^64
// (hi < q), i.e. within Reduce's documented domain.
func TestAccumCapacity(t *testing.T) {
	for _, bits := range []int{36, 60} {
		primes, err := GenerateNTTPrimes(bits, 4, 1)
		if err != nil {
			t.Fatalf("GenerateNTTPrimes: %v", err)
		}
		m, _ := NewModulus(primes[0])
		c := m.AccumCapacity()
		if c < 1 {
			t.Fatalf("q=%d: AccumCapacity %d < 1", m.Q, c)
		}
		if bits == 60 && c < 8 {
			// The "60-bit" generator primes sit just above 2^60 (61 significant
			// bits), the widest NewModulus accepts — the paper's tunable-bit
			// worst case. The HPS accumulator must still hold >= 8 terms there.
			t.Fatalf("q=%d: 61-significant-bit capacity %d < 8", m.Q, c)
		}
		// c * (q-1)^2 < q * 2^64 must hold (and fail for c+1 only when the
		// bound is tight; we only check the safe direction).
		lhs := new(big.Int).Mul(
			big.NewInt(int64(min(c, 1<<20))), // cap the check for 36-bit's huge capacity
			new(big.Int).Mul(new(big.Int).SetUint64(m.Q-1), new(big.Int).SetUint64(m.Q-1)))
		rhs := new(big.Int).Lsh(new(big.Int).SetUint64(m.Q), 64)
		if lhs.Cmp(rhs) >= 0 {
			t.Fatalf("q=%d: %d products of (q-1)^2 overflow the Reduce domain", m.Q, c)
		}
	}
}
