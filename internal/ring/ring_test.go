package ring

import (
	"math/big"
	"testing"
)

func TestNewRingValidation(t *testing.T) {
	if _, err := NewRing(12, nil); err == nil {
		t.Error("expected error for empty prime chain")
	}
	if _, err := NewRing(0, []uint64{97}); err == nil {
		t.Error("expected error for logN=0")
	}
	ps := []uint64{1152921504606830593}
	if _, err := NewRing(12, append(ps, ps...)); err == nil {
		t.Error("expected error for duplicate primes")
	}
}

func TestRingAddSubNeg(t *testing.T) {
	r := testRing(t, 6, 36, 3)
	a := randPoly(r, 1)
	b := randPoly(r, 2)
	sum, diff, neg := r.NewPoly(), r.NewPoly(), r.NewPoly()
	r.Add(a, b, sum)
	r.Sub(sum, b, diff)
	if !diff.Equal(a) {
		t.Fatal("(a+b)-b != a")
	}
	r.Neg(a, neg)
	r.Add(a, neg, sum)
	zero := r.NewPoly()
	if !sum.Equal(zero) {
		t.Fatal("a + (-a) != 0")
	}
}

func TestRingScalarOps(t *testing.T) {
	r := testRing(t, 6, 36, 2)
	a := randPoly(r, 3)
	doubled, sum := r.NewPoly(), r.NewPoly()
	r.MulScalar(a, 2, doubled)
	r.Add(a, a, sum)
	if !doubled.Equal(sum) {
		t.Fatal("2*a != a+a")
	}
	big2 := big.NewInt(2)
	bigDoubled := r.NewPoly()
	r.MulScalarBigint(a, big2, bigDoubled)
	if !bigDoubled.Equal(sum) {
		t.Fatal("bigint 2*a != a+a")
	}
	plus := r.NewPoly()
	r.AddScalar(a, 1, plus)
	r.Sub(plus, a, plus)
	for i := range r.Moduli {
		for j := 0; j < r.N; j++ {
			if plus.Coeffs[i][j] != 1 {
				t.Fatal("AddScalar(1) - a != 1")
			}
		}
	}
}

func TestMulCoeffsThenAdd(t *testing.T) {
	r := testRing(t, 5, 36, 2)
	a, b := randPoly(r, 4), randPoly(r, 5)
	acc := randPoly(r, 6)
	want := r.NewPoly()
	r.MulCoeffs(a, b, want)
	r.Add(want, acc, want)
	got := acc.Clone()
	r.MulCoeffsThenAdd(a, b, got)
	if !got.Equal(want) {
		t.Fatal("MulCoeffsThenAdd mismatch")
	}
}

func TestAtLevel(t *testing.T) {
	r := testRing(t, 5, 36, 4)
	r2 := r.AtLevel(1)
	if len(r2.Moduli) != 2 {
		t.Fatalf("AtLevel(1) has %d limbs, want 2", len(r2.Moduli))
	}
	wantProd := new(big.Int).Mul(
		new(big.Int).SetUint64(r.Moduli[0].Q),
		new(big.Int).SetUint64(r.Moduli[1].Q))
	if r2.ModulusProduct().Cmp(wantProd) != 0 {
		t.Error("AtLevel modulus product mismatch")
	}
	defer func() {
		if recover() == nil {
			t.Error("AtLevel out of range should panic")
		}
	}()
	r.AtLevel(99)
}

func TestBigintRoundTrip(t *testing.T) {
	r := testRing(t, 5, 36, 3)
	// Small centered values must survive the CRT round trip exactly.
	vals := make([]*big.Int, r.N)
	for j := range vals {
		vals[j] = big.NewInt(int64(j - r.N/2))
	}
	p := r.NewPoly()
	r.SetCoeffBigint(vals, p)
	back := make([]*big.Int, r.N)
	r.PolyToBigintCentered(p, back)
	for j := range vals {
		if vals[j].Cmp(back[j]) != 0 {
			t.Fatalf("coeff %d: got %s want %s", j, back[j], vals[j])
		}
	}
}

func TestPolyHelpers(t *testing.T) {
	r := testRing(t, 4, 36, 2)
	p := randPoly(r, 9)
	c := p.Clone()
	if !c.Equal(p) {
		t.Fatal("clone not equal")
	}
	c.Coeffs[0][0]++
	if c.Equal(p) {
		t.Fatal("clone aliases original")
	}
	tr := p.Truncated(1)
	if tr.Limbs() != 1 || tr.N() != r.N {
		t.Fatal("Truncated shape wrong")
	}
	p.Zero()
	if !p.Equal(r.NewPoly()) {
		t.Fatal("Zero did not clear")
	}
	var empty Poly
	if empty.N() != 0 || empty.Limbs() != 0 {
		t.Fatal("empty poly should have zero shape")
	}
	if p.Equal(Poly{}) {
		t.Fatal("shaped poly equal to empty poly")
	}
}

func TestCheckShapePanics(t *testing.T) {
	r := testRing(t, 4, 36, 2)
	bad := NewPoly(r.N, 1)
	defer func() {
		if recover() == nil {
			t.Error("shape mismatch should panic")
		}
	}()
	r.Add(bad, bad, bad)
}

func TestSamplerDeterminism(t *testing.T) {
	r := testRing(t, 6, 36, 2)
	p1, p2 := r.NewPoly(), r.NewPoly()
	NewSampler(99).UniformPoly(r, p1)
	NewSampler(99).UniformPoly(r, p2)
	if !p1.Equal(p2) {
		t.Fatal("same seed must reproduce the same polynomial")
	}
	NewSampler(100).UniformPoly(r, p2)
	if p1.Equal(p2) {
		t.Fatal("different seeds should differ")
	}
}

func TestTernaryAndGaussianRanges(t *testing.T) {
	r := testRing(t, 8, 36, 2)
	s := NewSampler(7)
	p := r.NewPoly()
	signed := s.TernaryPoly(r, p)
	counts := map[int64]int{}
	for j, v := range signed {
		if v < -1 || v > 1 {
			t.Fatalf("ternary coeff %d out of range: %d", j, v)
		}
		counts[v]++
		// Check the RNS embedding of the signed value.
		for i, m := range r.Moduli {
			want := v
			got := int64(p.Coeffs[i][j])
			if got > int64(m.Q)/2 {
				got -= int64(m.Q)
			}
			if got != want {
				t.Fatalf("limb %d coeff %d: embedded %d want %d", i, j, got, want)
			}
		}
	}
	for _, v := range []int64{-1, 0, 1} {
		if counts[v] == 0 {
			t.Errorf("ternary sampler never produced %d over %d draws", v, r.N)
		}
	}

	g := r.NewPoly()
	s.GaussianPoly(r, 3.2, g)
	for i, m := range r.Moduli {
		for j := 0; j < r.N; j++ {
			v := int64(g.Coeffs[i][j])
			if v > int64(m.Q)/2 {
				v -= int64(m.Q)
			}
			if v < -20 || v > 20 { // 6*3.2 = 19.2
				t.Fatalf("gaussian coeff out of truncation bound: %d", v)
			}
		}
	}
}
