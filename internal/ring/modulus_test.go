package ring

import (
	"math/big"
	"math/bits"
	"math/rand"
	"testing"
	"testing/quick"
)

func mustModulus(t *testing.T, q uint64) Modulus {
	t.Helper()
	m, err := NewModulus(q)
	if err != nil {
		t.Fatalf("NewModulus(%d): %v", q, err)
	}
	return m
}

func somePrimes(t *testing.T, bitSize, logN, count int) []uint64 {
	t.Helper()
	ps, err := GenerateNTTPrimes(bitSize, logN, count)
	if err != nil {
		t.Fatalf("GenerateNTTPrimes(%d,%d,%d): %v", bitSize, logN, count, err)
	}
	return ps
}

func TestNewModulusRejectsBadInputs(t *testing.T) {
	if _, err := NewModulus(1); err == nil {
		t.Error("expected error for modulus 1")
	}
	if _, err := NewModulus(1 << 62); err == nil {
		t.Error("expected error for 63-bit modulus")
	}
}

func TestGenerateNTTPrimesProperties(t *testing.T) {
	for _, tc := range []struct{ bitSize, logN, count int }{
		{36, 12, 8},
		{60, 12, 4},
		{40, 10, 6},
		{28, 13, 3},
	} {
		ps := somePrimes(t, tc.bitSize, tc.logN, tc.count)
		if len(ps) != tc.count {
			t.Fatalf("wanted %d primes, got %d", tc.count, len(ps))
		}
		seen := map[uint64]bool{}
		m := uint64(2) << uint(tc.logN)
		for _, p := range ps {
			if seen[p] {
				t.Errorf("duplicate prime %d", p)
			}
			seen[p] = true
			if !isPrime(p) {
				t.Errorf("%d is not prime", p)
			}
			if p%m != 1 {
				t.Errorf("%d is not 1 mod 2N", p)
			}
			if got := bits.Len64(p); got < tc.bitSize-1 || got > tc.bitSize+1 {
				t.Errorf("prime %d has %d bits, want about %d", p, got, tc.bitSize)
			}
		}
	}
}

func TestGenerateNTTPrimesErrors(t *testing.T) {
	if _, err := GenerateNTTPrimes(2, 12, 1); err == nil {
		t.Error("expected error for tiny bit size")
	}
	if _, err := GenerateNTTPrimes(64, 12, 1); err == nil {
		t.Error("expected error for oversized bit size")
	}
	if _, err := GenerateNTTPrimes(36, 12, 0); err == nil {
		t.Error("expected error for zero count")
	}
}

func TestModularArithmeticAgainstBigInt(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for _, bitSize := range []int{28, 36, 50, 60} {
		q := somePrimes(t, bitSize, 10, 1)[0]
		m := mustModulus(t, q)
		qB := new(big.Int).SetUint64(q)
		for i := 0; i < 500; i++ {
			a := uint64(rng.Int63n(int64(q)))
			b := uint64(rng.Int63n(int64(q)))
			want := new(big.Int).Mul(new(big.Int).SetUint64(a), new(big.Int).SetUint64(b))
			want.Mod(want, qB)
			if got := m.MulMod(a, b); got != want.Uint64() {
				t.Fatalf("MulMod(%d,%d) mod %d = %d, want %s", a, b, q, got, want)
			}
			hi, lo := bits.Mul64(a, b)
			if got := m.Reduce(hi, lo); got != want.Uint64() {
				t.Fatalf("Reduce(%d,%d) mod %d = %d, want %s", hi, lo, q, got, want)
			}
			sum := (a + b) % q
			if got := m.AddMod(a, b); got != sum {
				t.Fatalf("AddMod(%d,%d) = %d, want %d", a, b, got, sum)
			}
			var diff uint64
			if a >= b {
				diff = a - b
			} else {
				diff = a + q - b
			}
			if got := m.SubMod(a, b); got != diff {
				t.Fatalf("SubMod(%d,%d) = %d, want %d", a, b, got, diff)
			}
		}
	}
}

func TestMulModShoupMatchesMulMod(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for _, bitSize := range []int{36, 60} {
		q := somePrimes(t, bitSize, 11, 1)[0]
		m := mustModulus(t, q)
		for i := 0; i < 1000; i++ {
			x := uint64(rng.Int63n(int64(q)))
			w := uint64(rng.Int63n(int64(q)))
			ws := m.ShoupPrecomp(w)
			if got, want := m.MulModShoup(x, w, ws), m.MulMod(x, w); got != want {
				t.Fatalf("MulModShoup(%d,%d) = %d, want %d (q=%d)", x, w, got, want, q)
			}
		}
	}
}

func TestPowAndInv(t *testing.T) {
	q := somePrimes(t, 36, 10, 1)[0]
	m := mustModulus(t, q)
	rng := rand.New(rand.NewSource(3))
	for i := 0; i < 100; i++ {
		a := uint64(rng.Int63n(int64(q)-1)) + 1
		inv := m.InvMod(a)
		if m.MulMod(a, inv) != 1 {
			t.Fatalf("InvMod(%d) incorrect for q=%d", a, q)
		}
	}
	if m.PowMod(0, 0) != 1 {
		t.Error("PowMod(0,0) should be 1 by convention")
	}
	if m.PowMod(7, 1) != 7 {
		t.Error("PowMod(7,1) should be 7")
	}
}

func TestNegMod(t *testing.T) {
	q := somePrimes(t, 36, 10, 1)[0]
	m := mustModulus(t, q)
	if m.NegMod(0) != 0 {
		t.Error("NegMod(0) should be 0")
	}
	if got := m.AddMod(m.NegMod(123), 123); got != 0 {
		t.Errorf("x + (-x) = %d, want 0", got)
	}
}

// Property: Reduce is the canonical representative for arbitrary 128-bit
// inputs with hi < q.
func TestReduceProperty(t *testing.T) {
	q := somePrimes(t, 60, 10, 1)[0]
	m := mustModulus(t, q)
	qB := new(big.Int).SetUint64(q)
	f := func(hi, lo uint64) bool {
		hi %= q
		x := new(big.Int).SetUint64(hi)
		x.Lsh(x, 64)
		x.Add(x, new(big.Int).SetUint64(lo))
		x.Mod(x, qB)
		return m.Reduce(hi, lo) == x.Uint64()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}

func TestDistinctPrimeFactors(t *testing.T) {
	got := distinctPrimeFactors(360) // 2^3 * 3^2 * 5
	want := []uint64{2, 3, 5}
	if len(got) != len(want) {
		t.Fatalf("factors(360) = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("factors(360) = %v, want %v", got, want)
		}
	}
	if fs := distinctPrimeFactors(97); len(fs) != 1 || fs[0] != 97 {
		t.Errorf("factors(97) = %v, want [97]", fs)
	}
}
