//go:build amd64 && !purego

package ring

// AVX2 kernel entry points and CPU feature detection for amd64. The raw
// assembly routines live in asm_amd64.s; this file holds the thin Go shims
// the dispatch sites in ntt.go / bconv.go call. Build with `-tags purego` to
// compile the pure-Go reference instead (asm_fallback.go).

// hasAVX2 is resolved once at init: AVX2 in CPUID leaf 7 plus OS-enabled
// XMM/YMM state (OSXSAVE + XGETBV), the standard safety check before issuing
// VEX-256 instructions.
var hasAVX2 = detectAVX2()

func cpuSupportsKernels() bool { return hasAVX2 }

func detectAVX2() bool {
	maxID, _, _, _ := cpuid(0, 0)
	if maxID < 7 {
		return false
	}
	_, _, ecx1, _ := cpuid(1, 0)
	const (
		osxsave = 1 << 27
		avx     = 1 << 28
	)
	if ecx1&osxsave == 0 || ecx1&avx == 0 {
		return false
	}
	if eax, _ := xgetbv(); eax&6 != 6 {
		return false // OS does not save XMM+YMM state
	}
	_, ebx7, _, _ := cpuid(7, 0)
	const avx2 = 1 << 5
	return ebx7&avx2 != 0
}

// fwdStagesASM runs the Cooley–Tukey stages with butterfly stride >= 4 (the
// first stage m=1 down to step=4) through the AVX2 stage kernel. Stage m
// reads twiddles rootsFwd[m..2m); the kernel walks them in order.
func fwdStagesASM(t *NTTTable, a []uint64, n int) {
	q := t.Mod.Q
	step := n >> 1
	nttFwdStageAVX2(&a[0], 1, step, &t.rootsFwd[1], &t.rootsFwdSho[1], q)
	for m := 2; m <= n>>3; m <<= 1 {
		step >>= 1
		nttFwdStageAVX2(&a[0], m, step, &t.rootsFwd[m], &t.rootsFwdSho[m], q)
	}
}

// invStagesASM runs the Gentleman–Sande stages with butterfly stride >= 4
// (m = n/8 down to 2, step = 4 up to n/4) through the AVX2 stage kernel.
func invStagesASM(t *NTTTable, a []uint64, n int) {
	q := t.Mod.Q
	step := 4
	for m := n >> 3; m >= 2; m >>= 1 {
		nttInvStageAVX2(&a[0], m, step, &t.rootsInv[m], &t.rootsInvSho[m], q)
		step <<= 1
	}
}

// invLastASM runs the final Gentleman–Sande stage: one vector pass forming
// the sum/difference legs (x+y, x+2q-y; both < 4q, which the Shoup multiply
// tolerates), then one Shoup multiply pass per leg with the 1/N-folded
// twiddles.
func invLastASM(t *NTTTable, x, y []uint64, lazy bool) {
	q := t.Mod.Q
	half := len(x)
	nttInvCombineAVX2(&x[0], &y[0], half, q)
	full := uint64(1)
	if lazy {
		full = 0
	}
	shoupMulVecAVX2(&x[0], &x[0], half, t.nInv, t.nInvSho, q, full)
	shoupMulVecAVX2(&y[0], &y[0], half, t.wLastInv, t.wLastInvSho, q, full)
}

func shoupMulVecASM(m Modulus, dst, src []uint64, w, ws uint64) {
	shoupMulVecAVX2(&dst[0], &src[0], len(dst), w, ws, m.Q, 1)
}

func shoupMulSubVecASM(m Modulus, dst, x, sub []uint64, w, ws uint64) {
	shoupMulSubVecAVX2(&dst[0], &x[0], &sub[0], len(dst), w, ws, m.Q)
}

func bconvAccumASM(m Modulus, dst, src []uint64, stride int, ws []uint64) {
	bconvAccumAVX2(&dst[0], &src[0], len(dst), stride, len(ws), &ws[0], m.Q, m.brc[0], m.brc[1])
}

func bconvShoupASM(m Modulus, dst, src []uint64, stride int, ws, wsSho []uint64) {
	bconvShoupAVX2(&dst[0], &src[0], len(dst), stride, len(ws), &ws[0], &wsSho[0], m.Q)
}

// Raw assembly routines (asm_amd64.s). All vector lengths must be multiples
// of 4; the dispatch layer guarantees this (power-of-two ring degrees).

//go:noescape
func nttFwdStageAVX2(p *uint64, m, step int, roots, rootsSho *uint64, q uint64)

//go:noescape
func nttInvStageAVX2(p *uint64, m, step int, roots, rootsSho *uint64, q uint64)

//go:noescape
func nttInvCombineAVX2(x, y *uint64, n int, q uint64)

//go:noescape
func shoupMulVecAVX2(dst, src *uint64, n int, w, ws, q, full uint64)

//go:noescape
func shoupMulSubVecAVX2(dst, x, sub *uint64, n int, w, ws, q uint64)

//go:noescape
func bconvAccumAVX2(dst, src *uint64, n, stride, l int, ws *uint64, q, brc0, brc1 uint64)

//go:noescape
func bconvShoupAVX2(dst, src *uint64, n, stride, l int, ws, wsSho *uint64, q uint64)

func cpuid(eaxIn, ecxIn uint32) (eax, ebx, ecx, edx uint32)

func xgetbv() (eax, edx uint32)
