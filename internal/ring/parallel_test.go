package ring

import (
	"sync/atomic"
	"testing"
)

func TestParallelNTTMatchesSequential(t *testing.T) {
	r := testRing(t, 10, 36, 8)
	p := randPoly(r, 21)
	q := p.Clone()

	r.NTT(p)
	r.NTTParallel(q)
	if !p.Equal(q) {
		t.Fatal("parallel NTT differs from sequential")
	}
	r.INTT(p)
	r.INTTParallel(q)
	if !p.Equal(q) {
		t.Fatal("parallel INTT differs from sequential")
	}
}

func TestParallelRoundTrip(t *testing.T) {
	r := testRing(t, 9, 36, 6)
	p := randPoly(r, 22)
	orig := p.Clone()
	r.NTTParallel(p)
	r.INTTParallel(p)
	if !p.Equal(orig) {
		t.Fatal("parallel round trip failed")
	}
}

func TestForEachLimbCoversAll(t *testing.T) {
	for _, limbs := range []int{1, 3, 4, 7, 16, 33} {
		var mask [64]int32
		var count int32
		forEachLimb(limbs, func(i int) {
			atomic.AddInt32(&mask[i], 1)
			atomic.AddInt32(&count, 1)
		})
		if int(count) != limbs {
			t.Fatalf("limbs=%d: %d calls", limbs, count)
		}
		for i := 0; i < limbs; i++ {
			if mask[i] != 1 {
				t.Fatalf("limbs=%d: index %d visited %d times", limbs, i, mask[i])
			}
		}
	}
}

func BenchmarkNTTSequential(b *testing.B) {
	ps, _ := GenerateNTTPrimes(36, 12, 16)
	r, _ := NewRing(12, ps)
	p := r.NewPoly()
	NewSampler(1).UniformPoly(r, p)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r.NTT(p)
	}
}

func BenchmarkNTTParallel(b *testing.B) {
	ps, _ := GenerateNTTPrimes(36, 12, 16)
	r, _ := NewRing(12, ps)
	p := r.NewPoly()
	NewSampler(1).UniformPoly(r, p)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r.NTTParallel(p)
	}
}
