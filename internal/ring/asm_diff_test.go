package ring

import (
	"math/rand"
	"testing"
)

// This file is the differential suite for the vectorized kernels: every
// assembly entry point is checked for bit-equality against its pure-Go
// reference across both datapath widths (36- and 60-bit moduli), the full
// size range the dispatcher routes to assembly, and the input domains the
// kernel contracts allow (canonical, lazy [0, 2q), and full 64-bit where the
// Shoup multiply is exact). On machines without the kernels (or under
// -tags purego) the suite skips: there is nothing to differ against.

// asmDiffModuli generates one modulus per tested bit width.
func asmDiffModuli(t testing.TB, logN int) []Modulus {
	t.Helper()
	var out []Modulus
	for _, bits := range []int{36, 60} {
		primes, err := GenerateNTTPrimes(bits, logN, 1)
		if err != nil {
			t.Fatalf("GenerateNTTPrimes(%d, %d): %v", bits, logN, err)
		}
		m, err := NewModulus(primes[0])
		if err != nil {
			t.Fatalf("NewModulus: %v", err)
		}
		out = append(out, m)
	}
	return out
}

// runBothKernels runs f twice — pure Go then assembly — and returns the two
// destination slices for comparison. The toggle is restored on exit.
func runBothKernels(t testing.TB, n int, f func(dst []uint64)) (goOut, asmOut []uint64) {
	t.Helper()
	goOut = make([]uint64, n)
	asmOut = make([]uint64, n)
	prev := SetKernelASM(false)
	f(goOut)
	SetKernelASM(true)
	f(asmOut)
	SetKernelASM(prev)
	return goOut, asmOut
}

// TestNTTASMMatchesGo pins the AVX2 butterfly stage kernels against the Go
// stages bit for bit: forward and inverse, strict and lazy variants, on lazy
// inputs ([0, 2q) — the widest domain the Harvey butterflies accept), across
// sizes from the asm floor up to a production degree.
func TestNTTASMMatchesGo(t *testing.T) {
	if !HasKernelASM() {
		t.Skip("vectorized kernels not available on this build/CPU")
	}
	rng := rand.New(rand.NewSource(42))
	for _, logN := range []int{5, 6, 7, 9, 12} {
		n := 1 << logN
		for _, mod := range asmDiffModuli(t, logN) {
			tbl, err := NewNTTTable(mod, logN)
			if err != nil {
				t.Fatalf("NewNTTTable: %v", err)
			}
			in := make([]uint64, n)
			for i := range in {
				in[i] = rng.Uint64() % (2 * mod.Q)
			}
			type pass struct {
				name string
				run  func(a []uint64)
			}
			for _, p := range []pass{
				{"Forward", tbl.Forward},
				{"Inverse", tbl.Inverse},
				{"InverseLazy", tbl.InverseLazy},
			} {
				g, a := runBothKernels(t, n, func(dst []uint64) {
					copy(dst, in)
					p.run(dst)
				})
				for i := range g {
					if g[i] != a[i] {
						t.Fatalf("q=%d logN=%d %s: asm diverges at %d: go=%d asm=%d",
							mod.Q, logN, p.name, i, g[i], a[i])
					}
				}
			}
			// Forward∘Inverse on the asm path must return the canonical input:
			// round-trip closure, not just Go-equality.
			canon := make([]uint64, n)
			for i := range canon {
				canon[i] = in[i] % mod.Q
			}
			rt := append([]uint64(nil), canon...)
			prev := SetKernelASM(true)
			tbl.Forward(rt)
			tbl.Inverse(rt)
			SetKernelASM(prev)
			for i := range rt {
				if rt[i] != canon[i] {
					t.Fatalf("q=%d logN=%d: asm round trip diverges at %d: %d != %d",
						mod.Q, logN, i, rt[i], canon[i])
				}
			}
		}
	}
}

// TestVectorPrimitivesASMMatchGo pins ShoupMulVec (full 64-bit inputs — the
// exactness domain of the Shoup multiply), ShoupMulSubVec (lazy operands, the
// ModDown contract) and both BConvAccum flavors (strided lazy rows, every
// width through the unrolled cases, the generic tail, and the lazy-Shoup
// kernel's crossover at bconvShoupMaxTerms) against the Go loops.
func TestVectorPrimitivesASMMatchGo(t *testing.T) {
	if !HasKernelASM() {
		t.Skip("vectorized kernels not available on this build/CPU")
	}
	rng := rand.New(rand.NewSource(7))
	for _, n := range []int{asmMinVec, 64, 100} { // 100: non-power-of-two multiple of 4
		for _, mod := range asmDiffModuli(t, 5) {
			q := mod.Q
			w := rng.Uint64() % q
			ws := mod.ShoupPrecomp(w)

			src := make([]uint64, n)
			for i := range src {
				src[i] = rng.Uint64() // full 64-bit: Shoup reduction is exact here
			}
			g, a := runBothKernels(t, n, func(dst []uint64) { mod.ShoupMulVec(dst, src, w, ws) })
			for i := range g {
				if g[i] != a[i] {
					t.Fatalf("q=%d n=%d ShoupMulVec: asm diverges at %d: go=%d asm=%d", q, n, i, g[i], a[i])
				}
			}

			x := make([]uint64, n)
			sub := make([]uint64, n)
			for i := range x {
				x[i] = rng.Uint64() % (2 * q)
				sub[i] = rng.Uint64() % (2 * q)
			}
			g, a = runBothKernels(t, n, func(dst []uint64) { mod.ShoupMulSubVec(dst, x, sub, w, ws) })
			for i := range g {
				if g[i] != a[i] {
					t.Fatalf("q=%d n=%d ShoupMulSubVec: asm diverges at %d: go=%d asm=%d", q, n, i, g[i], a[i])
				}
			}

			for l := 1; l <= 13; l++ {
				if l > mod.AccumCapacity() {
					break
				}
				stride := n + 8 // rows deliberately not adjacent: exercise the stride walk
				rows := make([]uint64, l*stride)
				for i := range rows {
					rows[i] = rng.Uint64() % (2 * q)
				}
				wsv := make([]uint64, l)
				wsSho := make([]uint64, l)
				for i := range wsv {
					wsv[i] = rng.Uint64() % q
					wsSho[i] = mod.ShoupPrecomp(wsv[i])
				}
				g, a = runBothKernels(t, n, func(dst []uint64) { mod.BConvAccum(dst, rows, stride, wsv) })
				for i := range g {
					if g[i] != a[i] {
						t.Fatalf("q=%d n=%d l=%d BConvAccum: asm diverges at %d: go=%d asm=%d", q, n, l, i, g[i], a[i])
					}
				}
				// BConvAccumShoup must produce the identical fully reduced sum
				// through whichever kernel it picks (lazy-Shoup for l <= 6,
				// the 128-bit accumulator beyond).
				g, a = runBothKernels(t, n, func(dst []uint64) { mod.BConvAccumShoup(dst, rows, stride, wsv, wsSho) })
				for i := range g {
					if g[i] != a[i] {
						t.Fatalf("q=%d n=%d l=%d BConvAccumShoup: asm diverges at %d: go=%d asm=%d", q, n, l, i, g[i], a[i])
					}
				}
			}
		}
	}
}

// FuzzNTTRoundTrip fuzzes the NTT over random degrees, limb counts and limb
// data: for each limb the asm and Go paths must agree bit for bit on Forward
// and Inverse, and the composition must be the identity on canonical inputs.
// Limb count and degree derive from the fuzz bytes, so the corpus explores
// the dispatcher's size floor (n < asmMinN stays scalar) as well as the
// vector path.
func FuzzNTTRoundTrip(f *testing.F) {
	f.Add(uint8(5), uint8(3), int64(1))
	f.Add(uint8(4), uint8(1), int64(99))  // n=16 < asmMinN: scalar path
	f.Add(uint8(8), uint8(6), int64(-17)) // production-ish limb count
	f.Fuzz(func(t *testing.T, logNSel, limbSel uint8, seed int64) {
		logN := 4 + int(logNSel)%6 // 16..512
		limbs := 1 + int(limbSel)%8
		n := 1 << logN
		rng := rand.New(rand.NewSource(seed))
		bits := 36
		if seed%2 == 0 {
			bits = 60
		}
		primes, err := GenerateNTTPrimes(bits, logN, limbs)
		if err != nil {
			t.Skip("not enough NTT primes at this size")
		}
		for _, qv := range primes {
			mod, err := NewModulus(qv)
			if err != nil {
				t.Fatalf("NewModulus(%d): %v", qv, err)
			}
			tbl, err := NewNTTTable(mod, logN)
			if err != nil {
				t.Fatalf("NewNTTTable: %v", err)
			}
			in := make([]uint64, n)
			for i := range in {
				in[i] = rng.Uint64() % mod.Q
			}
			goF, asmF := runBothKernels(t, n, func(dst []uint64) {
				copy(dst, in)
				tbl.Forward(dst)
			})
			for i := range goF {
				if goF[i] != asmF[i] {
					t.Fatalf("q=%d n=%d: forward asm/Go mismatch at %d", qv, n, i)
				}
			}
			back := append([]uint64(nil), goF...)
			tbl.Inverse(back)
			for i := range back {
				if back[i] != in[i] {
					t.Fatalf("q=%d n=%d: round trip diverges at %d: %d != %d", qv, n, i, back[i], in[i])
				}
			}
		}
	})
}
