package ring

import "fmt"

// GaloisGen is the generator of the rotation subgroup of Gal(Q(ζ_2N)/Q) used
// by CKKS: the automorphism X -> X^(5^r) cyclically rotates the message slots
// by r positions. The conjugation automorphism is X -> X^(2N-1).
const GaloisGen uint64 = 5

// GaloisElementForRotation returns 5^r mod 2N (r may be negative).
func GaloisElementForRotation(logN, r int) uint64 {
	m := uint64(2) << uint(logN)
	n2 := int(m >> 2) // N/2 slots; rotations are modulo the slot count
	r %= n2
	if r < 0 {
		r += n2
	}
	g := uint64(1)
	for i := 0; i < r; i++ {
		g = (g * GaloisGen) % m
	}
	return g
}

// GaloisElementForConjugation returns 2N-1, the Galois element of complex
// conjugation on the slots.
func GaloisElementForConjugation(logN int) uint64 {
	return (uint64(2) << uint(logN)) - 1
}

// AutomorphismCoeff applies X -> X^galEl to a polynomial in coefficient form:
// coefficient i moves to position i*galEl mod 2N, negated when the exponent
// wraps past N (negacyclic ring).
func (r *Ring) AutomorphismCoeff(in, out Poly, galEl uint64) {
	r.checkShape(in, out)
	if galEl&1 == 0 {
		panic(fmt.Sprintf("ring: galois element %d must be odd", galEl))
	}
	n := uint64(r.N)
	mask := 2*n - 1
	for l, m := range r.Moduli {
		il, ol := in.Coeffs[l], out.Coeffs[l]
		for i := uint64(0); i < n; i++ {
			e := (i * galEl) & mask
			if e < n {
				ol[e] = il[i]
			} else {
				ol[e-n] = m.NegMod(il[i])
			}
		}
	}
}

// AutomorphismNTTIndex precomputes the permutation applied by the Galois
// automorphism X -> X^galEl directly in the NTT domain (bit-reversed slot
// ordering): out[j] = in[index[j]].
func AutomorphismNTTIndex(n int, logN int, galEl uint64) []int {
	mask := uint64(2*n) - 1
	idx := make([]int, n)
	for j := 0; j < n; j++ {
		// Array slot j holds the evaluation at ψ^(2*brv(j)+1); the
		// automorphism pulls the evaluation at exponent e*galEl.
		e := 2*bitReverse(uint64(j), logN) + 1
		e2 := (e * galEl) & mask
		idx[j] = int(bitReverse((e2-1)>>1, logN))
	}
	return idx
}

// AutomorphismNTT applies the automorphism to a polynomial in NTT form using
// a precomputed index table from AutomorphismNTTIndex.
func (r *Ring) AutomorphismNTT(in, out Poly, index []int) {
	r.checkShape(in, out)
	for l := range r.Moduli {
		il, ol := in.Coeffs[l], out.Coeffs[l]
		for j := range ol {
			ol[j] = il[index[j]]
		}
	}
}
