package ring

import "fmt"

// NTTTable holds the precomputed twiddle factors for the negacyclic NTT of
// degree N over one prime modulus. Twiddles are powers of a primitive 2N-th
// root of unity ψ, stored in bit-reversed order together with their Shoup
// companions so every butterfly costs one multiplication-high plus two
// multiplication-lows and no division.
//
// Both transforms use Harvey lazy-reduction butterflies: the forward
// (Cooley–Tukey) pass keeps coefficients in [0, 4q) across stages with a
// single conditional fold per butterfly, the inverse (Gentleman–Sande) pass
// keeps them in [0, 2q), and only the final stage normalizes to [0, q). The
// 61-bit modulus cap (MaxModulusBits) guarantees every lazy intermediate,
// including u + 2q - v, stays below 2^63.
//
// The stage loops are split by butterfly stride: stages with step >= 4 run
// through fwdBlock/invBlock (4-way unrolled, bounds-check-free windows, and
// the layer the AVX2 assembly replaces — see asm_amd64.go), while the
// step == 2, step == 1 and final stages have dedicated scalar loops.
type NTTTable struct {
	Mod  Modulus
	N    int
	logN int

	psi     uint64 // primitive 2N-th root of unity mod q
	psiInv  uint64 // psi^-1 mod q
	nInv    uint64 // N^-1 mod q
	nInvSho uint64

	// wLastInv = rootsInv[1] * nInv mod q: the last Gentleman–Sande stage has
	// a single twiddle, so the 1/N scaling is folded into it (and applied via
	// nInv on the sum outputs), saving a full normalization pass.
	wLastInv, wLastInvSho uint64

	// rootsFwd[brv(i)] = ψ^i for the Cooley–Tukey forward pass,
	// rootsInv[brv(i)] = ψ^{-i} for the Gentleman–Sande inverse pass.
	rootsFwd, rootsFwdSho []uint64
	rootsInv, rootsInvSho []uint64
}

// NewNTTTable precomputes the twiddle tables for degree N = 2^logN and the
// given modulus. The modulus must satisfy q ≡ 1 (mod 2N).
func NewNTTTable(mod Modulus, logN int) (*NTTTable, error) {
	n := 1 << uint(logN)
	m := uint64(2 * n)
	if (mod.Q-1)%m != 0 {
		return nil, fmt.Errorf("ring: modulus %d is not 1 mod 2N (N=%d)", mod.Q, n)
	}
	g, err := primitiveRoot(mod)
	if err != nil {
		return nil, err
	}
	psi := mod.PowMod(g, (mod.Q-1)/m)
	// ψ must have exact order 2N: g is a generator so this holds, but verify.
	if mod.PowMod(psi, uint64(n)) == 1 {
		return nil, fmt.Errorf("ring: root order check failed for modulus %d", mod.Q)
	}
	t := &NTTTable{
		Mod:    mod,
		N:      n,
		logN:   logN,
		psi:    psi,
		psiInv: mod.InvMod(psi),
		nInv:   mod.InvMod(uint64(n)),
	}
	t.nInvSho = mod.ShoupPrecomp(t.nInv)

	t.rootsFwd = make([]uint64, n)
	t.rootsInv = make([]uint64, n)
	t.rootsFwdSho = make([]uint64, n)
	t.rootsInvSho = make([]uint64, n)
	fw, iv := uint64(1), uint64(1)
	for i := 0; i < n; i++ {
		j := bitReverse(uint64(i), logN)
		t.rootsFwd[j] = fw
		t.rootsInv[j] = iv
		t.rootsFwdSho[j] = mod.ShoupPrecomp(fw)
		t.rootsInvSho[j] = mod.ShoupPrecomp(iv)
		fw = mod.MulMod(fw, psi)
		iv = mod.MulMod(iv, t.psiInv)
	}
	if n > 1 {
		t.wLastInv = mod.MulMod(t.rootsInv[1], t.nInv)
		t.wLastInvSho = mod.ShoupPrecomp(t.wLastInv)
	}
	return t, nil
}

// bitReverse reverses the low `bits` bits of v.
func bitReverse(v uint64, bits int) uint64 {
	var r uint64
	for i := 0; i < bits; i++ {
		r = (r << 1) | (v & 1)
		v >>= 1
	}
	return r
}

// asmMinN is the smallest transform size routed to the assembly kernels: below
// it the wide stages are too short to fill a vector lane and the call overhead
// dominates.
const asmMinN = 32

// useASM reports whether the step>=4 stages of a size-n transform should run
// through the vectorized kernels.
func (t *NTTTable) useASM(n int) bool { return kernelASMEnabled && n >= asmMinN }

// Forward transforms a (coefficient representation, length N) into the NTT
// evaluation representation, in place, using Harvey lazy Cooley–Tukey
// butterflies. Inputs may be in [0, 2q) (fully reduced inputs are the common
// case); outputs are fully reduced in [0, q). Internally coefficients travel
// in [0, 4q): each butterfly folds its even-leg input once (u >= 2q → u-2q),
// lazily multiplies the odd leg into [0, 2q), and emits u+v and u+2q-v. The
// last stage fuses the final normalization, so no separate reduction pass
// runs. The output ordering is the standard bit-reversed NTT ordering used
// consistently across this package.
func (t *NTTTable) Forward(a []uint64) {
	mod := t.Mod
	q := mod.Q
	twoQ := q << 1
	n := t.N
	a = a[:n:n]
	if n == 1 {
		if a[0] >= twoQ {
			a[0] -= twoQ
		}
		if a[0] >= q {
			a[0] -= q
		}
		return
	}
	if n > 2 {
		// Stages with step >= 4: first stage (m=1, step=n/2) down to step=4.
		if t.useASM(n) {
			fwdStagesASM(t, a, n)
		} else {
			t.forwardStagesGo(a, n)
		}
		if n >= 8 {
			t.fwdStage2(a, n)
		}
	}
	t.fwdLastStage(a, n)
}

// forwardStagesGo runs the Cooley–Tukey stages with butterfly stride >= 4:
// the first stage (m=1) and every middle stage down to step=4, keeping
// coefficients in [0, 4q). This is the differential reference for
// fwdStagesASM.
func (t *NTTTable) forwardStagesGo(a []uint64, n int) {
	mod := t.Mod
	twoQ := mod.Q << 1
	step := n >> 1
	fwdBlock(mod, a[:step:step], a[step:n:n], t.rootsFwd[1], t.rootsFwdSho[1], twoQ)
	for m := 2; m <= n>>3; m <<= 1 {
		step >>= 1
		roots := t.rootsFwd[m : 2*m : 2*m]
		rootsSho := t.rootsFwdSho[m : 2*m : 2*m]
		for i := 0; i < m; i++ {
			j1 := 2 * i * step
			fwdBlock(mod, a[j1:j1+step:j1+step], a[j1+step:j1+2*step:j1+2*step], roots[i], rootsSho[i], twoQ)
		}
	}
}

// fwdBlock runs len(x) Cooley–Tukey butterflies sharing one twiddle over the
// equal-length windows x (even leg) and y (odd leg): fold x into [0, 2q),
// lazily multiply y, emit u+v / u+2q-v. 4-way unrolled over fixed-size
// sub-windows so the compiler drops the per-element bounds checks (verified
// with -gcflags=-d=ssa/check_bce). The fold is a no-op on first-stage inputs
// (< 2q by contract), so the same block serves every stage.
func fwdBlock(mod Modulus, x, y []uint64, w, ws, twoQ uint64) {
	step := len(x)
	y = y[:step]
	var j int
	for ; j+4 <= step; j += 4 {
		xw := x[j : j+4 : j+4]
		yw := y[j : j+4 : j+4]
		u0, u1, u2, u3 := xw[0], xw[1], xw[2], xw[3]
		if u0 >= twoQ {
			u0 -= twoQ
		}
		if u1 >= twoQ {
			u1 -= twoQ
		}
		if u2 >= twoQ {
			u2 -= twoQ
		}
		if u3 >= twoQ {
			u3 -= twoQ
		}
		v0 := mod.MulModShoupLazy(yw[0], w, ws)
		v1 := mod.MulModShoupLazy(yw[1], w, ws)
		v2 := mod.MulModShoupLazy(yw[2], w, ws)
		v3 := mod.MulModShoupLazy(yw[3], w, ws)
		xw[0] = u0 + v0
		xw[1] = u1 + v1
		xw[2] = u2 + v2
		xw[3] = u3 + v3
		yw[0] = u0 + twoQ - v0
		yw[1] = u1 + twoQ - v1
		yw[2] = u2 + twoQ - v2
		yw[3] = u3 + twoQ - v3
	}
	for ; j < step; j++ {
		u := x[j]
		if u >= twoQ {
			u -= twoQ
		}
		v := mod.MulModShoupLazy(y[j], w, ws)
		x[j] = u + v
		y[j] = u + twoQ - v
	}
}

// fwdStage2 is the step=2 Cooley–Tukey stage (m = n/4): each twiddle covers
// one aligned 4-coefficient block, butterflies (0,2) and (1,3).
func (t *NTTTable) fwdStage2(a []uint64, n int) {
	mod := t.Mod
	twoQ := mod.Q << 1
	m := n >> 2
	roots := t.rootsFwd[m : 2*m : 2*m]
	rootsSho := t.rootsFwdSho[m : 2*m : 2*m]
	for i := 0; i < m; i++ {
		w, ws := roots[i], rootsSho[i]
		blk := a[4*i : 4*i+4 : 4*i+4]
		u0, u1 := blk[0], blk[1]
		if u0 >= twoQ {
			u0 -= twoQ
		}
		if u1 >= twoQ {
			u1 -= twoQ
		}
		v0 := mod.MulModShoupLazy(blk[2], w, ws)
		v1 := mod.MulModShoupLazy(blk[3], w, ws)
		blk[0] = u0 + v0
		blk[1] = u1 + v1
		blk[2] = u0 + twoQ - v0
		blk[3] = u1 + twoQ - v1
	}
}

// fwdLastStage is the step=1 Cooley–Tukey stage (m = n/2), specialized to
// fuse the [0,4q) → [0,q) normalization of both butterfly legs.
func (t *NTTTable) fwdLastStage(a []uint64, n int) {
	mod := t.Mod
	q := mod.Q
	twoQ := q << 1
	m := n >> 1
	roots := t.rootsFwd[m : 2*m : 2*m]
	rootsSho := t.rootsFwdSho[m : 2*m : 2*m]
	for i := 0; i < m; i++ {
		blk := a[2*i : 2*i+2 : 2*i+2]
		u := blk[0]
		if u >= twoQ {
			u -= twoQ
		}
		v := mod.MulModShoupLazy(blk[1], roots[i], rootsSho[i])
		x := u + v
		y := u + twoQ - v
		if x >= twoQ {
			x -= twoQ
		}
		if x >= q {
			x -= q
		}
		if y >= twoQ {
			y -= twoQ
		}
		if y >= q {
			y -= q
		}
		blk[0] = x
		blk[1] = y
	}
}

// Inverse transforms a from the NTT evaluation representation back to
// coefficients, in place (Gentleman–Sande), including the 1/N scaling which
// is folded into the final stage. Inputs may be in [0, 2q); outputs are fully
// reduced in [0, q). Internally coefficients stay in [0, 2q) across stages:
// the sum leg folds once per butterfly and the difference leg re-enters
// [0, 2q) through the lazy Shoup multiply.
func (t *NTTTable) Inverse(a []uint64) {
	t.inverseStages(a)
	t.inverseLastStage(a, false)
}

// InverseLazy is Inverse with the final normalization elided: outputs are in
// [0, 2q) (still scaled by 1/N and congruent to the exact inverse transform).
// Use it when the consumer tolerates lazy inputs — e.g. the accumulating
// BConv source rows and the ModDown subtraction path — to skip one
// conditional per coefficient.
func (t *NTTTable) InverseLazy(a []uint64) {
	t.inverseStages(a)
	t.inverseLastStage(a, true)
}

// inverseStages runs every Gentleman–Sande stage except the last, keeping
// coefficients in [0, 2q): the step=1 and step=2 stages in dedicated scalar
// loops, then the step>=4 stages through invBlock (or the assembly kernels).
func (t *NTTTable) inverseStages(a []uint64) {
	n := t.N
	a = a[:n:n]
	if n >= 4 {
		t.invStage1(a, n)
	}
	if n >= 8 {
		t.invStage2(a, n)
	}
	if n >= 16 {
		if t.useASM(n) {
			invStagesASM(t, a, n)
		} else {
			t.inverseStagesGo(a, n)
		}
	}
}

// inverseStagesGo runs the Gentleman–Sande stages with butterfly stride >= 4,
// m = n/8 down to 2 (step = 4 up to n/4). This is the differential reference
// for invStagesASM.
func (t *NTTTable) inverseStagesGo(a []uint64, n int) {
	mod := t.Mod
	twoQ := mod.Q << 1
	step := 4
	for m := n >> 3; m >= 2; m >>= 1 {
		roots := t.rootsInv[m : 2*m : 2*m]
		rootsSho := t.rootsInvSho[m : 2*m : 2*m]
		for i := 0; i < m; i++ {
			j1 := 2 * i * step
			invBlock(mod, a[j1:j1+step:j1+step], a[j1+step:j1+2*step:j1+2*step], roots[i], rootsSho[i], twoQ)
		}
		step <<= 1
	}
}

// invBlock runs len(x) Gentleman–Sande butterflies sharing one twiddle over
// the equal-length windows x (sum leg) and y (difference leg), keeping both
// legs in [0, 2q). 4-way unrolled with fixed-size sub-windows for
// bounds-check elimination, like fwdBlock.
func invBlock(mod Modulus, x, y []uint64, w, ws, twoQ uint64) {
	step := len(x)
	y = y[:step]
	var j int
	for ; j+4 <= step; j += 4 {
		xw := x[j : j+4 : j+4]
		yw := y[j : j+4 : j+4]
		x0, x1, x2, x3 := xw[0], xw[1], xw[2], xw[3]
		y0, y1, y2, y3 := yw[0], yw[1], yw[2], yw[3]
		s0 := x0 + y0
		s1 := x1 + y1
		s2 := x2 + y2
		s3 := x3 + y3
		if s0 >= twoQ {
			s0 -= twoQ
		}
		if s1 >= twoQ {
			s1 -= twoQ
		}
		if s2 >= twoQ {
			s2 -= twoQ
		}
		if s3 >= twoQ {
			s3 -= twoQ
		}
		xw[0] = s0
		xw[1] = s1
		xw[2] = s2
		xw[3] = s3
		yw[0] = mod.MulModShoupLazy(x0+twoQ-y0, w, ws)
		yw[1] = mod.MulModShoupLazy(x1+twoQ-y1, w, ws)
		yw[2] = mod.MulModShoupLazy(x2+twoQ-y2, w, ws)
		yw[3] = mod.MulModShoupLazy(x3+twoQ-y3, w, ws)
	}
	for ; j < step; j++ {
		x0, y0 := x[j], y[j]
		s := x0 + y0
		if s >= twoQ {
			s -= twoQ
		}
		x[j] = s
		y[j] = mod.MulModShoupLazy(x0+twoQ-y0, w, ws)
	}
}

// invStage1 is the step=1 Gentleman–Sande stage (m = n/2): adjacent pairs,
// one twiddle per butterfly.
func (t *NTTTable) invStage1(a []uint64, n int) {
	mod := t.Mod
	twoQ := mod.Q << 1
	m := n >> 1
	roots := t.rootsInv[m : 2*m : 2*m]
	rootsSho := t.rootsInvSho[m : 2*m : 2*m]
	for i := 0; i < m; i++ {
		blk := a[2*i : 2*i+2 : 2*i+2]
		x, y := blk[0], blk[1]
		s := x + y
		if s >= twoQ {
			s -= twoQ
		}
		blk[0] = s
		blk[1] = mod.MulModShoupLazy(x+twoQ-y, roots[i], rootsSho[i])
	}
}

// invStage2 is the step=2 Gentleman–Sande stage (m = n/4): each twiddle
// covers one aligned 4-coefficient block, butterflies (0,2) and (1,3).
func (t *NTTTable) invStage2(a []uint64, n int) {
	mod := t.Mod
	twoQ := mod.Q << 1
	m := n >> 2
	roots := t.rootsInv[m : 2*m : 2*m]
	rootsSho := t.rootsInvSho[m : 2*m : 2*m]
	for i := 0; i < m; i++ {
		w, ws := roots[i], rootsSho[i]
		blk := a[4*i : 4*i+4 : 4*i+4]
		x0, x1, y0, y1 := blk[0], blk[1], blk[2], blk[3]
		s0 := x0 + y0
		s1 := x1 + y1
		if s0 >= twoQ {
			s0 -= twoQ
		}
		if s1 >= twoQ {
			s1 -= twoQ
		}
		blk[0] = s0
		blk[1] = s1
		blk[2] = mod.MulModShoupLazy(x0+twoQ-y0, w, ws)
		blk[3] = mod.MulModShoupLazy(x1+twoQ-y1, w, ws)
	}
}

// inverseLastStage runs the final Gentleman–Sande stage (m=1) with the 1/N
// scaling folded into its twiddles: the sum leg is multiplied by nInv, the
// difference leg by rootsInv[1]*nInv. With lazy=false the Shoup multiplies
// fully reduce (outputs < q); with lazy=true they stay in [0, 2q).
func (t *NTTTable) inverseLastStage(a []uint64, lazy bool) {
	mod := t.Mod
	q := mod.Q
	twoQ := q << 1
	n := t.N
	if n == 1 {
		// nInv = 1; just normalize the contract.
		if a[0] >= q && !lazy {
			a[0] = mod.ReduceWord(a[0])
		}
		return
	}
	half := n >> 1
	wN, wNs := t.nInv, t.nInvSho
	wL, wLs := t.wLastInv, t.wLastInvSho
	x := a[:half:half]
	y := a[half:n:n]
	if t.useASM(n) {
		invLastASM(t, x, y, lazy)
		return
	}
	if lazy {
		for j := range x {
			x0, y0 := x[j], y[j]
			x[j] = mod.MulModShoupLazy(x0+y0, wN, wNs)
			y[j] = mod.MulModShoupLazy(x0+twoQ-y0, wL, wLs)
		}
		return
	}
	for j := range x {
		x0, y0 := x[j], y[j]
		x[j] = mod.MulModShoup(x0+y0, wN, wNs)
		y[j] = mod.MulModShoup(x0+twoQ-y0, wL, wLs)
	}
}
