package ring

import "fmt"

// NTTTable holds the precomputed twiddle factors for the negacyclic NTT of
// degree N over one prime modulus. Twiddles are powers of a primitive 2N-th
// root of unity ψ, stored in bit-reversed order together with their Shoup
// companions so every butterfly costs one multiplication-high plus two
// multiplication-lows and no division.
//
// Both transforms use Harvey lazy-reduction butterflies: the forward
// (Cooley–Tukey) pass keeps coefficients in [0, 4q) across stages with a
// single conditional fold per butterfly, the inverse (Gentleman–Sande) pass
// keeps them in [0, 2q), and only the final stage normalizes to [0, q). The
// 61-bit modulus cap (MaxModulusBits) guarantees every lazy intermediate,
// including u + 2q - v, stays below 2^63.
type NTTTable struct {
	Mod  Modulus
	N    int
	logN int

	psi     uint64 // primitive 2N-th root of unity mod q
	psiInv  uint64 // psi^-1 mod q
	nInv    uint64 // N^-1 mod q
	nInvSho uint64

	// wLastInv = rootsInv[1] * nInv mod q: the last Gentleman–Sande stage has
	// a single twiddle, so the 1/N scaling is folded into it (and applied via
	// nInv on the sum outputs), saving a full normalization pass.
	wLastInv, wLastInvSho uint64

	// rootsFwd[brv(i)] = ψ^i for the Cooley–Tukey forward pass,
	// rootsInv[brv(i)] = ψ^{-i} for the Gentleman–Sande inverse pass.
	rootsFwd, rootsFwdSho []uint64
	rootsInv, rootsInvSho []uint64
}

// NewNTTTable precomputes the twiddle tables for degree N = 2^logN and the
// given modulus. The modulus must satisfy q ≡ 1 (mod 2N).
func NewNTTTable(mod Modulus, logN int) (*NTTTable, error) {
	n := 1 << uint(logN)
	m := uint64(2 * n)
	if (mod.Q-1)%m != 0 {
		return nil, fmt.Errorf("ring: modulus %d is not 1 mod 2N (N=%d)", mod.Q, n)
	}
	g, err := primitiveRoot(mod)
	if err != nil {
		return nil, err
	}
	psi := mod.PowMod(g, (mod.Q-1)/m)
	// ψ must have exact order 2N: g is a generator so this holds, but verify.
	if mod.PowMod(psi, uint64(n)) == 1 {
		return nil, fmt.Errorf("ring: root order check failed for modulus %d", mod.Q)
	}
	t := &NTTTable{
		Mod:    mod,
		N:      n,
		logN:   logN,
		psi:    psi,
		psiInv: mod.InvMod(psi),
		nInv:   mod.InvMod(uint64(n)),
	}
	t.nInvSho = mod.ShoupPrecomp(t.nInv)

	t.rootsFwd = make([]uint64, n)
	t.rootsInv = make([]uint64, n)
	t.rootsFwdSho = make([]uint64, n)
	t.rootsInvSho = make([]uint64, n)
	fw, iv := uint64(1), uint64(1)
	for i := 0; i < n; i++ {
		j := bitReverse(uint64(i), logN)
		t.rootsFwd[j] = fw
		t.rootsInv[j] = iv
		t.rootsFwdSho[j] = mod.ShoupPrecomp(fw)
		t.rootsInvSho[j] = mod.ShoupPrecomp(iv)
		fw = mod.MulMod(fw, psi)
		iv = mod.MulMod(iv, t.psiInv)
	}
	if n > 1 {
		t.wLastInv = mod.MulMod(t.rootsInv[1], t.nInv)
		t.wLastInvSho = mod.ShoupPrecomp(t.wLastInv)
	}
	return t, nil
}

// bitReverse reverses the low `bits` bits of v.
func bitReverse(v uint64, bits int) uint64 {
	var r uint64
	for i := 0; i < bits; i++ {
		r = (r << 1) | (v & 1)
		v >>= 1
	}
	return r
}

// Forward transforms a (coefficient representation, length N) into the NTT
// evaluation representation, in place, using Harvey lazy Cooley–Tukey
// butterflies. Inputs may be in [0, 2q) (fully reduced inputs are the common
// case); outputs are fully reduced in [0, q). Internally coefficients travel
// in [0, 4q): each butterfly folds its even-leg input once (u >= 2q → u-2q),
// lazily multiplies the odd leg into [0, 2q), and emits u+v and u+2q-v. The
// first stage skips the fold (inputs are < 2q by contract) and the last stage
// fuses the final normalization, so no separate reduction pass runs. The
// output ordering is the standard bit-reversed NTT ordering used consistently
// across this package.
func (t *NTTTable) Forward(a []uint64) {
	mod := t.Mod
	q := mod.Q
	twoQ := q << 1
	n := t.N
	if n == 1 {
		if a[0] >= twoQ {
			a[0] -= twoQ
		}
		if a[0] >= q {
			a[0] -= q
		}
		return
	}
	step := n >> 1
	if n > 2 {
		// First stage (m=1), specialized: inputs < 2q, no fold needed.
		w, ws := t.rootsFwd[1], t.rootsFwdSho[1]
		for j := 0; j < step; j++ {
			u := a[j]
			v := mod.MulModShoupLazy(a[j+step], w, ws)
			a[j] = u + v
			a[j+step] = u + twoQ - v
		}
		// Middle stages: coefficients in [0, 4q), one fold per butterfly.
		for m := 2; m < n>>1; m <<= 1 {
			step >>= 1
			for i := 0; i < m; i++ {
				w, ws := t.rootsFwd[m+i], t.rootsFwdSho[m+i]
				j1 := 2 * i * step
				for j := j1; j < j1+step; j++ {
					u := a[j]
					if u >= twoQ {
						u -= twoQ
					}
					v := mod.MulModShoupLazy(a[j+step], w, ws)
					a[j] = u + v
					a[j+step] = u + twoQ - v
				}
			}
		}
	}
	// Last stage (m = n/2, step = 1), specialized: fuse the [0,4q) → [0,q)
	// normalization of both butterfly legs.
	m := n >> 1
	for i := 0; i < m; i++ {
		w, ws := t.rootsFwd[m+i], t.rootsFwdSho[m+i]
		j := 2 * i
		u := a[j]
		if u >= twoQ {
			u -= twoQ
		}
		v := mod.MulModShoupLazy(a[j+1], w, ws)
		x := u + v
		y := u + twoQ - v
		if x >= twoQ {
			x -= twoQ
		}
		if x >= q {
			x -= q
		}
		if y >= twoQ {
			y -= twoQ
		}
		if y >= q {
			y -= q
		}
		a[j] = x
		a[j+1] = y
	}
}

// Inverse transforms a from the NTT evaluation representation back to
// coefficients, in place (Gentleman–Sande), including the 1/N scaling which
// is folded into the final stage. Inputs may be in [0, 2q); outputs are fully
// reduced in [0, q). Internally coefficients stay in [0, 2q) across stages:
// the sum leg folds once per butterfly and the difference leg re-enters
// [0, 2q) through the lazy Shoup multiply.
func (t *NTTTable) Inverse(a []uint64) {
	t.inverseStages(a)
	t.inverseLastStage(a, false)
}

// InverseLazy is Inverse with the final normalization elided: outputs are in
// [0, 2q) (still scaled by 1/N and congruent to the exact inverse transform).
// Use it when the consumer tolerates lazy inputs — e.g. the accumulating
// BConv source rows and the ModDown subtraction path — to skip one
// conditional per coefficient.
func (t *NTTTable) InverseLazy(a []uint64) {
	t.inverseStages(a)
	t.inverseLastStage(a, true)
}

// inverseStages runs every Gentleman–Sande stage except the last, keeping
// coefficients in [0, 2q).
func (t *NTTTable) inverseStages(a []uint64) {
	mod := t.Mod
	twoQ := mod.Q << 1
	n := t.N
	step := 1
	for m := n >> 1; m >= 2; m >>= 1 {
		for i := 0; i < m; i++ {
			w, ws := t.rootsInv[m+i], t.rootsInvSho[m+i]
			j1 := 2 * i * step
			for j := j1; j < j1+step; j++ {
				x, y := a[j], a[j+step]
				s := x + y
				if s >= twoQ {
					s -= twoQ
				}
				a[j] = s
				a[j+step] = mod.MulModShoupLazy(x+twoQ-y, w, ws)
			}
		}
		step <<= 1
	}
}

// inverseLastStage runs the final Gentleman–Sande stage (m=1) with the 1/N
// scaling folded into its twiddles: the sum leg is multiplied by nInv, the
// difference leg by rootsInv[1]*nInv. With lazy=false the Shoup multiplies
// fully reduce (outputs < q); with lazy=true they stay in [0, 2q).
func (t *NTTTable) inverseLastStage(a []uint64, lazy bool) {
	mod := t.Mod
	q := mod.Q
	twoQ := q << 1
	n := t.N
	if n == 1 {
		// nInv = 1; just normalize the contract.
		if a[0] >= q && !lazy {
			a[0] = mod.ReduceWord(a[0])
		}
		return
	}
	half := n >> 1
	wN, wNs := t.nInv, t.nInvSho
	wL, wLs := t.wLastInv, t.wLastInvSho
	if lazy {
		for j := 0; j < half; j++ {
			x, y := a[j], a[j+half]
			a[j] = mod.MulModShoupLazy(x+y, wN, wNs)
			a[j+half] = mod.MulModShoupLazy(x+twoQ-y, wL, wLs)
		}
		return
	}
	for j := 0; j < half; j++ {
		x, y := a[j], a[j+half]
		a[j] = mod.MulModShoup(x+y, wN, wNs)
		a[j+half] = mod.MulModShoup(x+twoQ-y, wL, wLs)
	}
}
