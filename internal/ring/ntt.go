package ring

import "fmt"

// NTTTable holds the precomputed twiddle factors for the negacyclic NTT of
// degree N over one prime modulus. Twiddles are powers of a primitive 2N-th
// root of unity ψ, stored in bit-reversed order together with their Shoup
// companions so every butterfly costs one multiplication-high plus one
// multiplication-low.
type NTTTable struct {
	Mod  Modulus
	N    int
	logN int

	psi     uint64 // primitive 2N-th root of unity mod q
	psiInv  uint64 // psi^-1 mod q
	nInv    uint64 // N^-1 mod q
	nInvSho uint64

	// rootsFwd[brv(i)] = ψ^i for the Cooley–Tukey forward pass,
	// rootsInv[brv(i)] = ψ^{-i} for the Gentleman–Sande inverse pass.
	rootsFwd, rootsFwdSho []uint64
	rootsInv, rootsInvSho []uint64
}

// NewNTTTable precomputes the twiddle tables for degree N = 2^logN and the
// given modulus. The modulus must satisfy q ≡ 1 (mod 2N).
func NewNTTTable(mod Modulus, logN int) (*NTTTable, error) {
	n := 1 << uint(logN)
	m := uint64(2 * n)
	if (mod.Q-1)%m != 0 {
		return nil, fmt.Errorf("ring: modulus %d is not 1 mod 2N (N=%d)", mod.Q, n)
	}
	g, err := primitiveRoot(mod)
	if err != nil {
		return nil, err
	}
	psi := mod.PowMod(g, (mod.Q-1)/m)
	// ψ must have exact order 2N: g is a generator so this holds, but verify.
	if mod.PowMod(psi, uint64(n)) == 1 {
		return nil, fmt.Errorf("ring: root order check failed for modulus %d", mod.Q)
	}
	t := &NTTTable{
		Mod:    mod,
		N:      n,
		logN:   logN,
		psi:    psi,
		psiInv: mod.InvMod(psi),
		nInv:   mod.InvMod(uint64(n)),
	}
	t.nInvSho = mod.ShoupPrecomp(t.nInv)

	t.rootsFwd = make([]uint64, n)
	t.rootsInv = make([]uint64, n)
	t.rootsFwdSho = make([]uint64, n)
	t.rootsInvSho = make([]uint64, n)
	fw, iv := uint64(1), uint64(1)
	for i := 0; i < n; i++ {
		j := bitReverse(uint64(i), logN)
		t.rootsFwd[j] = fw
		t.rootsInv[j] = iv
		t.rootsFwdSho[j] = mod.ShoupPrecomp(fw)
		t.rootsInvSho[j] = mod.ShoupPrecomp(iv)
		fw = mod.MulMod(fw, psi)
		iv = mod.MulMod(iv, t.psiInv)
	}
	return t, nil
}

// bitReverse reverses the low `bits` bits of v.
func bitReverse(v uint64, bits int) uint64 {
	var r uint64
	for i := 0; i < bits; i++ {
		r = (r << 1) | (v & 1)
		v >>= 1
	}
	return r
}

// Forward transforms a (coefficient representation, length N, values < q)
// into the NTT evaluation representation, in place. The output ordering is
// the standard bit-reversed NTT ordering used consistently across this
// package.
func (t *NTTTable) Forward(a []uint64) {
	mod := t.Mod
	n := t.N
	step := n
	for m := 1; m < n; m <<= 1 {
		step >>= 1
		for i := 0; i < m; i++ {
			w := t.rootsFwd[m+i]
			ws := t.rootsFwdSho[m+i]
			j1 := 2 * i * step
			for j := j1; j < j1+step; j++ {
				u := a[j]
				v := mod.MulModShoup(a[j+step], w, ws)
				a[j] = mod.AddMod(u, v)
				a[j+step] = mod.SubMod(u, v)
			}
		}
	}
}

// Inverse transforms a from the NTT evaluation representation back to
// coefficients, in place (Gentleman–Sande), including the final 1/N scaling.
func (t *NTTTable) Inverse(a []uint64) {
	mod := t.Mod
	n := t.N
	step := 1
	for m := n >> 1; m >= 1; m >>= 1 {
		for i := 0; i < m; i++ {
			w := t.rootsInv[m+i]
			ws := t.rootsInvSho[m+i]
			j1 := 2 * i * step
			for j := j1; j < j1+step; j++ {
				u := a[j]
				v := a[j+step]
				a[j] = mod.AddMod(u, v)
				a[j+step] = mod.MulModShoup(mod.SubMod(u, v), w, ws)
			}
		}
		step <<= 1
	}
	for j := range a {
		a[j] = mod.MulModShoup(a[j], t.nInv, t.nInvSho)
	}
}
