package ring

import (
	"fmt"
	"math/big"
)

// GenerateNTTPrimes returns count distinct primes of the requested bit size
// that are congruent to 1 mod 2N, i.e. primes for which the negacyclic
// NTT of degree N exists. Candidates are explored outward from 2^bitSize,
// alternating below and above, so the generated chain stays as close to the
// nominal word size as possible (CKKS rescaling precision depends on the
// primes being close to the scale).
func GenerateNTTPrimes(bitSize, logN, count int) ([]uint64, error) {
	if bitSize < 3 || bitSize > MaxModulusBits {
		return nil, fmt.Errorf("ring: prime bit size %d out of range [3,%d]", bitSize, MaxModulusBits)
	}
	if count <= 0 {
		return nil, fmt.Errorf("ring: prime count %d must be positive", count)
	}
	m := uint64(2) << uint(logN) // 2N
	center := uint64(1) << uint(bitSize)

	// Align the two scan cursors on values ≡ 1 mod 2N around 2^bitSize.
	lo := center - (center % m) + 1 // ≡ 1 mod m, just above a multiple below center
	hi := lo + m

	primes := make([]uint64, 0, count)
	lower, upper := uint64(1)<<uint(bitSize-1), uint64(1)<<uint(bitSize+1)
	for len(primes) < count {
		progressed := false
		if hi < upper {
			if isPrime(hi) {
				primes = append(primes, hi)
			}
			hi += m
			progressed = true
		}
		if len(primes) < count && lo > lower && lo > m {
			if isPrime(lo) {
				primes = append(primes, lo)
			}
			lo -= m
			progressed = true
		}
		if !progressed {
			return nil, fmt.Errorf("ring: exhausted %d-bit candidates for logN=%d after %d primes", bitSize, logN, len(primes))
		}
	}
	return primes, nil
}

// isPrime reports whether v is prime. math/big's ProbablyPrime with 20 rounds
// is deterministic for all 64-bit inputs.
func isPrime(v uint64) bool {
	return new(big.Int).SetUint64(v).ProbablyPrime(20)
}

// primitiveRoot returns a generator of the multiplicative group Z_q^*.
// q must be prime.
func primitiveRoot(m Modulus) (uint64, error) {
	q := m.Q
	// Factor q-1.
	factors := distinctPrimeFactors(q - 1)
	for g := uint64(2); g < q; g++ {
		ok := true
		for _, f := range factors {
			if m.PowMod(g, (q-1)/f) == 1 {
				ok = false
				break
			}
		}
		if ok {
			return g, nil
		}
	}
	return 0, fmt.Errorf("ring: no primitive root found for %d", q)
}

// distinctPrimeFactors returns the distinct prime factors of v by trial
// division. v-1 for our NTT primes always has many small factors (powers of
// two from the 2N congruence), so this terminates quickly.
func distinctPrimeFactors(v uint64) []uint64 {
	var fs []uint64
	for p := uint64(2); p*p <= v; p++ {
		if v%p == 0 {
			fs = append(fs, p)
			for v%p == 0 {
				v /= p
			}
		}
	}
	if v > 1 {
		fs = append(fs, v)
	}
	return fs
}
