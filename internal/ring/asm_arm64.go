//go:build arm64 && !purego

package ring

// NEON kernel stub for arm64. The dispatch plumbing (kernels.go) is wired so
// that dropping in asm_arm64.s with cpuSupportsKernels() returning true lights
// up the same fwd/inv stage and vector entry points as amd64; until then the
// entry points delegate to the pure-Go loops and kernelASMEnabled stays false.

func cpuSupportsKernels() bool { return false }

func fwdStagesASM(t *NTTTable, a []uint64, n int) { t.forwardStagesGo(a, n) }

func invStagesASM(t *NTTTable, a []uint64, n int) { t.inverseStagesGo(a, n) }

func invLastASM(t *NTTTable, x, y []uint64, lazy bool) {
	mod := t.Mod
	twoQ := mod.Q << 1
	wN, wNs := t.nInv, t.nInvSho
	wL, wLs := t.wLastInv, t.wLastInvSho
	if lazy {
		for j := range x {
			x0, y0 := x[j], y[j]
			x[j] = mod.MulModShoupLazy(x0+y0, wN, wNs)
			y[j] = mod.MulModShoupLazy(x0+twoQ-y0, wL, wLs)
		}
		return
	}
	for j := range x {
		x0, y0 := x[j], y[j]
		x[j] = mod.MulModShoup(x0+y0, wN, wNs)
		y[j] = mod.MulModShoup(x0+twoQ-y0, wL, wLs)
	}
}

func shoupMulVecASM(m Modulus, dst, src []uint64, w, ws uint64) {
	shoupMulVecGo(m, dst, src, w, ws)
}

func shoupMulSubVecASM(m Modulus, dst, x, sub []uint64, w, ws uint64) {
	shoupMulSubVecGo(m, dst, x, sub, w, ws)
}

func bconvAccumASM(m Modulus, dst, src []uint64, stride int, ws []uint64) {
	bconvAccumGo(m, dst, src, stride, ws)
}

func bconvShoupASM(m Modulus, dst, src []uint64, stride int, ws, wsSho []uint64) {
	bconvAccumGo(m, dst, src, stride, ws)
}
