package ring

import (
	"testing"
	"unsafe"
)

// Tests for the arena invariant: every constructed Poly keeps Coeffs[i] as an
// exact alias of Backing[i*N:(i+1)*N], rows cannot spill into neighbors, and
// the pool recycles whole arenas by identity.

func backingPtr(p Poly) uintptr {
	if len(p.Backing) == 0 {
		return 0
	}
	return uintptr(unsafe.Pointer(&p.Backing[0]))
}

func TestPolyFromBackingAliasing(t *testing.T) {
	const n, limbs = 8, 3
	backing := make([]uint64, n*limbs+5) // extra tail must be trimmed off
	p := PolyFromBacking(n, limbs, backing)
	if len(p.Backing) != n*limbs || cap(p.Backing) != n*limbs {
		t.Fatalf("backing not trimmed: len=%d cap=%d, want %d", len(p.Backing), cap(p.Backing), n*limbs)
	}
	for i := 0; i < limbs; i++ {
		if &p.Coeffs[i][0] != &backing[i*n] {
			t.Fatalf("row %d does not alias backing[%d]", i, i*n)
		}
		if cap(p.Coeffs[i]) != n {
			t.Fatalf("row %d capacity %d not clamped to %d: appends could spill into row %d",
				i, cap(p.Coeffs[i]), n, i+1)
		}
	}
	// Writes through rows land in the backing and vice versa.
	p.Coeffs[1][2] = 42
	if p.Backing[n+2] != 42 {
		t.Fatal("row write did not reach the backing")
	}
	p.Backing[2*n] = 7
	if p.Coeffs[2][0] != 7 {
		t.Fatal("backing write did not reach the row view")
	}
}

func TestPolyFromBackingRejectsShortBacking(t *testing.T) {
	for _, tc := range []struct {
		name             string
		n, limbs, length int
	}{
		{"short", 8, 3, 23},
		{"zero n", 0, 3, 24},
		{"zero limbs", 8, 0, 24},
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: PolyFromBacking(%d, %d) over %d words did not panic",
						tc.name, tc.n, tc.limbs, tc.length)
				}
			}()
			PolyFromBacking(tc.n, tc.limbs, make([]uint64, tc.length))
		}()
	}
}

func TestNewPolyIsArenaBacked(t *testing.T) {
	p := NewPoly(16, 4)
	if len(p.Backing) != 64 {
		t.Fatalf("NewPoly backing length %d, want 64", len(p.Backing))
	}
	for i := range p.Coeffs {
		if &p.Coeffs[i][0] != &p.Backing[i*16] {
			t.Fatalf("NewPoly row %d detached from backing", i)
		}
	}
}

// TestPolyPoolReusesArena pins the pool's reason to exist: returning a poly
// and fetching the same shape again must hand back the identical arena (no
// fresh allocation), including through a Truncated view — the shape the
// evaluator returns at lower levels.
func TestPolyPoolReusesArena(t *testing.T) {
	pool := NewPolyPool(16, 4)
	p := pool.Get(4)
	ptr := backingPtr(p)
	if ptr == 0 {
		t.Fatal("pooled poly has no backing")
	}
	pool.Put(p)
	q := pool.Get(4)
	if backingPtr(q) != ptr {
		t.Fatal("pool did not recycle the arena for a same-shape Get")
	}
	// A truncated view keeps the arena linkage, so Put recovers the full
	// arena and the next full-shape Get reuses it.
	tr := q.Truncated(2)
	if backingPtr(tr) != ptr {
		t.Fatal("Truncated view lost the arena prefix")
	}
	pool.Put(tr)
	r := pool.Get(4)
	if backingPtr(r) != ptr {
		t.Fatal("pool did not recover the arena from a truncated view")
	}
	if r.Limbs() != 4 || r.N() != 16 {
		t.Fatalf("recovered poly has shape %dx%d, want 4x16", r.Limbs(), r.N())
	}
}
