package ring

import "math/bits"

// Vectorizable per-limb primitives shared by the rns package's BConv /
// ModDown / Rescale kernels. Each method dispatches to the GOARCH-gated
// assembly (see kernels.go) when available, with the pure-Go loops below as
// the differential reference. Dispatch requires 4-aligned lengths of at least
// asmMinVec — always true for ring degrees, which are powers of two >= 32 on
// every production parameter set.

// asmMinVec is the minimum vector length routed to the assembly kernels.
const asmMinVec = 16

func vecUseASM(n int) bool { return kernelASMEnabled && n >= asmMinVec && n%4 == 0 }

// ShoupMulVec sets dst[k] = src[k] * w mod q with a fully reduced result,
// given w's Shoup companion ws. Like MulModShoup, it is exact for ANY 64-bit
// src values (lazy inputs tolerated). dst and src must have equal length and
// may alias exactly.
func (m Modulus) ShoupMulVec(dst, src []uint64, w, ws uint64) {
	if vecUseASM(len(dst)) {
		shoupMulVecASM(m, dst, src, w, ws)
		return
	}
	shoupMulVecGo(m, dst, src, w, ws)
}

func shoupMulVecGo(m Modulus, dst, src []uint64, w, ws uint64) {
	n := len(dst)
	src = src[:n]
	var k int
	for ; k+4 <= n; k += 4 {
		d := dst[k : k+4 : k+4]
		s := src[k : k+4 : k+4]
		d[0] = m.MulModShoup(s[0], w, ws)
		d[1] = m.MulModShoup(s[1], w, ws)
		d[2] = m.MulModShoup(s[2], w, ws)
		d[3] = m.MulModShoup(s[3], w, ws)
	}
	for ; k < n; k++ {
		dst[k] = m.MulModShoup(src[k], w, ws)
	}
}

// ShoupMulSubVec sets dst[k] = (x[k] + 2q - sub[k]) * w mod q, the fused lazy
// subtract-multiply at the heart of ModDown and Rescale. Requires x[k] < 2q
// and sub[k] < 2q so the lazy difference stays below 4q < 2^63; the result is
// fully reduced. dst may alias x or sub exactly.
func (m Modulus) ShoupMulSubVec(dst, x, sub []uint64, w, ws uint64) {
	if vecUseASM(len(dst)) {
		shoupMulSubVecASM(m, dst, x, sub, w, ws)
		return
	}
	shoupMulSubVecGo(m, dst, x, sub, w, ws)
}

func shoupMulSubVecGo(m Modulus, dst, x, sub []uint64, w, ws uint64) {
	n := len(dst)
	x = x[:n]
	sub = sub[:n]
	twoQ := m.Q << 1
	var k int
	for ; k+4 <= n; k += 4 {
		d := dst[k : k+4 : k+4]
		xw := x[k : k+4 : k+4]
		sw := sub[k : k+4 : k+4]
		d[0] = m.MulModShoup(xw[0]+twoQ-sw[0], w, ws)
		d[1] = m.MulModShoup(xw[1]+twoQ-sw[1], w, ws)
		d[2] = m.MulModShoup(xw[2]+twoQ-sw[2], w, ws)
		d[3] = m.MulModShoup(xw[3]+twoQ-sw[3], w, ws)
	}
	for ; k < n; k++ {
		dst[k] = m.MulModShoup(x[k]+twoQ-sub[k], w, ws)
	}
}

// BConvAccum computes the HPS base-conversion inner product over an
// arena-backed source: dst[k] = (Σ_i src[i*stride + k] * ws[i]) mod q, with
// 128-bit accumulation and ONE Barrett reduction per output coefficient. The
// source rows live at stride offsets in one contiguous slice (row i is
// src[i*stride : i*stride+len(dst)]). Callers must keep len(ws) within
// m.AccumCapacity(); longer bases fold through an intermediate reduction at a
// higher level (see rns.Convert). Source values may be lazily reduced.
func (m Modulus) BConvAccum(dst, src []uint64, stride int, ws []uint64) {
	if vecUseASM(len(dst)) {
		bconvAccumASM(m, dst, src, stride, ws)
		return
	}
	bconvAccumGo(m, dst, src, stride, ws)
}

// bconvShoupMaxTerms is the source-base width at which the per-term
// lazy-Shoup kernel stops beating the 128-bit accumulator: each Shoup term
// costs ~1.5x a schoolbook MAC term but skips the ~60-op vector Barrett tail,
// so the crossover sits near six terms.
const bconvShoupMaxTerms = 6

// BConvAccumShoup is BConvAccum with precomputed Shoup companions for the
// weights (wsSho[i] = m.ShoupPrecomp(ws[i])). The result is bit-identical to
// BConvAccum — both produce the fully reduced mod-q inner product — but for
// short bases (len(ws) <= 6) the vector path reduces each term to [0, 2q)
// with an exact lazy Shoup multiply and folds the running sum by 2q, skipping
// the 128-bit accumulator and its Barrett tail entirely. Longer bases and the
// pure-Go path fall back to the accumulating kernel, so the same
// AccumCapacity contract applies.
func (m Modulus) BConvAccumShoup(dst, src []uint64, stride int, ws, wsSho []uint64) {
	if vecUseASM(len(dst)) {
		if len(ws) <= bconvShoupMaxTerms {
			bconvShoupASM(m, dst, src, stride, ws, wsSho)
			return
		}
		bconvAccumASM(m, dst, src, stride, ws)
		return
	}
	bconvAccumGo(m, dst, src, stride, ws)
}

// bconvAccumGo unrolls the common small source-base widths (the α-limb ModUp
// groups and the 2–4 limb special chains) with hoisted row windows so the
// inner loop carries no slice-of-slice indirection or bounds checks.
func bconvAccumGo(m Modulus, dst, src []uint64, stride int, ws []uint64) {
	n := len(dst)
	switch len(ws) {
	case 1:
		r0, w0 := src[:n], ws[0]
		for k := range dst {
			hi, lo := bits.Mul64(r0[k], w0)
			dst[k] = m.Reduce(hi, lo)
		}
	case 2:
		r0, r1 := src[:n], src[stride:stride+n]
		w0, w1 := ws[0], ws[1]
		for k := range dst {
			h0, l0 := bits.Mul64(r0[k], w0)
			h1, l1 := bits.Mul64(r1[k], w1)
			lo, c := bits.Add64(l0, l1, 0)
			dst[k] = m.Reduce(h0+h1+c, lo)
		}
	case 3:
		r0, r1, r2 := src[:n], src[stride:stride+n], src[2*stride:2*stride+n]
		w0, w1, w2 := ws[0], ws[1], ws[2]
		_ = r2[n-1] // bounds hint: the prover tracks only the first two rows
		for k := range dst {
			h0, l0 := bits.Mul64(r0[k], w0)
			h1, l1 := bits.Mul64(r1[k], w1)
			h2, l2 := bits.Mul64(r2[k], w2)
			lo, c := bits.Add64(l0, l1, 0)
			hi := h0 + h1 + c
			lo, c = bits.Add64(lo, l2, 0)
			dst[k] = m.Reduce(hi+h2+c, lo)
		}
	case 4:
		r0, r1 := src[:n], src[stride:stride+n]
		r2, r3 := src[2*stride:2*stride+n], src[3*stride:3*stride+n]
		w0, w1, w2, w3 := ws[0], ws[1], ws[2], ws[3]
		_, _ = r2[n-1], r3[n-1] // bounds hint: the prover tracks only the first two rows
		for k := range dst {
			h0, l0 := bits.Mul64(r0[k], w0)
			h1, l1 := bits.Mul64(r1[k], w1)
			h2, l2 := bits.Mul64(r2[k], w2)
			h3, l3 := bits.Mul64(r3[k], w3)
			loA, cA := bits.Add64(l0, l1, 0)
			hiA := h0 + h1 + cA
			loB, cB := bits.Add64(l2, l3, 0)
			hiB := h2 + h3 + cB
			lo, c := bits.Add64(loA, loB, 0)
			dst[k] = m.Reduce(hiA+hiB+c, lo)
		}
	default:
		l := len(ws)
		for k := range dst {
			var accHi, accLo uint64
			for i := 0; i < l; i++ {
				ph, pl := bits.Mul64(src[i*stride+k], ws[i])
				var c uint64
				accLo, c = bits.Add64(accLo, pl, 0)
				accHi += ph + c
			}
			dst[k] = m.Reduce(accHi, accLo)
		}
	}
}
