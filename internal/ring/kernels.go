package ring

// Vectorized kernel dispatch. The hot inner loops (NTT butterfly stages with
// stride >= 4, Shoup multiply vectors, the BConv accumulate) have
// GOARCH-gated assembly implementations selected once at init via CPU feature
// detection; the pure-Go loops in ntt.go / bconv.go are the differential-test
// reference and the only implementation under `-tags purego` or on
// architectures without kernels.
//
// Per-arch files provide cpuSupportsKernels plus the fwdStagesASM /
// invStagesASM / invLastASM / shoupMulVec / shoupMulSubVec / bconvAccumASM
// entry points:
//
//	asm_amd64.go/.s   AVX2 kernels            (amd64 && !purego)
//	asm_arm64.go      NEON stub, Go fallback  (arm64 && !purego)
//	asm_fallback.go   Go fallback             ((!amd64 && !arm64) || purego)

// kernelASMEnabled gates the assembly kernels. It is set once at package init
// from CPU feature detection and only ever toggled by SetKernelASM in tests.
var kernelASMEnabled = cpuSupportsKernels()

// HasKernelASM reports whether the vectorized kernels are compiled in and the
// CPU supports them.
func HasKernelASM() bool { return cpuSupportsKernels() }

// KernelASMEnabled reports whether the vectorized kernels are currently
// selected.
func KernelASMEnabled() bool { return kernelASMEnabled }

// SetKernelASM toggles the vectorized kernels and returns the previous
// setting. It exists for differential tests that compare the assembly and
// pure-Go paths on the same inputs; it is NOT synchronized, so call it only
// while no ring kernels run concurrently (test setup/teardown). Enabling has
// no effect when the kernels are not compiled in or the CPU lacks the
// required features.
func SetKernelASM(on bool) (prev bool) {
	prev = kernelASMEnabled
	kernelASMEnabled = on && cpuSupportsKernels()
	return prev
}
