package ring

import (
	"fmt"
	"sync"

	"github.com/fastfhe/fast/internal/obs"
)

// PolyPool is a sync.Pool-backed reservoir of scratch polynomials of a fixed
// maximal shape (degree n, up to maxLimbs RNS rows). The evaluator hot paths
// (tensoring, key-switch ModUp/KeyMult accumulators, rescale staging) draw
// their temporaries from a pool sized off the parameter set instead of
// allocating fresh polynomials per operation — the Lattigo buffer-reuse idiom,
// made safe for many concurrent goroutines by sync.Pool.
//
// Get hands out a view truncated to the requested limb count; Put recovers the
// full arena through the Poly's arena pointer, so a truncated view can be
// returned directly. Polynomials not allocated by a pool of the same shape are
// silently dropped by Put (never corrupted, never double-pooled).
type PolyPool struct {
	n, maxLimbs int
	pool        sync.Pool

	// Optional instruments (see Instrument). Nil instruments are no-ops, so
	// the uninstrumented hot-path cost is a nil check per Get.
	gets       *obs.Counter
	puts       *obs.Counter
	misses     *obs.Counter
	allocBytes *obs.Gauge
}

// poolArena is one recyclable (n, maxLimbs)-class allocation: a contiguous
// coefficient backing plus its row view, built once by PolyFromBacking and
// re-sliced (never re-built) on every Get. Pooling the pointer — and threading
// it back through Poly.arena — keeps both Get and Put allocation-free, which
// the ckks alloc guards (TestKeySwitchAllocs) depend on.
type poolArena struct {
	owner   *PolyPool
	coeffs  [][]uint64
	backing []uint64
}

// NewPolyPool creates a pool of polynomials with the given degree and maximal
// limb count.
func NewPolyPool(n, maxLimbs int) *PolyPool {
	// INVARIANT: pool shapes are fixed at construction from a validated parameter set.
	// A panic here is a repo-internal bug, never a reaction to caller input —
	// malformed inputs are rejected with typed errors at the public boundary.
	if n < 1 || maxLimbs < 1 {
		panic(fmt.Sprintf("ring: invalid pool shape %dx%d", maxLimbs, n))
	}
	pp := &PolyPool{n: n, maxLimbs: maxLimbs}
	pp.pool.New = func() any {
		pp.misses.Inc()
		pp.allocBytes.Add(int64(n) * int64(maxLimbs) * 8)
		p := NewPoly(n, maxLimbs)
		return &poolArena{owner: pp, coeffs: p.Coeffs, backing: p.Backing}
	}
	return pp
}

// Instrument attaches observability instruments to the pool:
//
//	gets    counts every Get/GetZero (a pool hit is gets - misses);
//	puts    counts every Put of a pool-shaped buffer — on a quiescent pool
//	        gets == puts; a persistent gap is a scratch leak (some error or
//	        cancellation path failed to release), the invariant the
//	        cancellation tests assert;
//	misses  counts Gets that had to allocate a fresh backing buffer;
//	alloc   accumulates the bytes of those fresh backings — the pool's
//	        steady-state footprint once the workload's concurrency peak has
//	        been seen (sync.Pool may later release buffers to the GC; the
//	        gauge tracks cumulative allocation, the interesting signal for
//	        sizing).
//
// Any (or all) instruments may be nil. Call before the pool is shared across
// goroutines (construction time).
func (pp *PolyPool) Instrument(gets, puts, misses *obs.Counter, alloc *obs.Gauge) {
	pp.gets, pp.puts, pp.misses, pp.allocBytes = gets, puts, misses, alloc
}

// N returns the polynomial degree of pooled buffers.
func (pp *PolyPool) N() int { return pp.n }

// MaxLimbs returns the maximal limb count of pooled buffers.
func (pp *PolyPool) MaxLimbs() int { return pp.maxLimbs }

// Get returns a polynomial with exactly `limbs` rows. The contents are
// unspecified (callers that accumulate must use GetZero or overwrite every
// coefficient). The returned Poly must be handed back with Put once dead.
func (pp *PolyPool) Get(limbs int) Poly {
	// INVARIANT: limb counts come from ciphertext levels already range-checked upstream.
	// A panic here is a repo-internal bug, never a reaction to caller input —
	// malformed inputs are rejected with typed errors at the public boundary.
	if limbs < 1 || limbs > pp.maxLimbs {
		panic(fmt.Sprintf("ring: pool Get(%d) out of range [1,%d]", limbs, pp.maxLimbs))
	}
	pp.gets.Inc()
	a := pp.pool.Get().(*poolArena)
	return Poly{
		Coeffs:  a.coeffs[:limbs],
		Backing: a.backing[: limbs*pp.n : limbs*pp.n],
		arena:   a,
	}
}

// GetZero returns a zeroed polynomial with exactly `limbs` rows.
func (pp *PolyPool) GetZero(limbs int) Poly {
	p := pp.Get(limbs)
	p.Zero()
	return p
}

// Put returns a polynomial obtained from Get back to the pool. Puts of
// polynomials that did not come from this pool (no arena, or another pool's
// arena) are ignored, so callers can uniformly release mixed scratch. p must
// not be used after Put.
func (pp *PolyPool) Put(p Poly) {
	a := p.arena
	if a == nil || a.owner != pp {
		return // not one of ours; let the GC have it
	}
	pp.puts.Inc()
	pp.pool.Put(a)
}
