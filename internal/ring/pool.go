package ring

import (
	"fmt"
	"sync"
)

// PolyPool is a sync.Pool-backed reservoir of scratch polynomials of a fixed
// maximal shape (degree n, up to maxLimbs RNS rows). The evaluator hot paths
// (tensoring, key-switch ModUp/KeyMult accumulators, rescale staging) draw
// their temporaries from a pool sized off the parameter set instead of
// allocating fresh polynomials per operation — the Lattigo buffer-reuse idiom,
// made safe for many concurrent goroutines by sync.Pool.
//
// Get hands out a view truncated to the requested limb count; Put recovers the
// full backing through the slice capacity, so a truncated view can be returned
// directly. Polynomials not allocated by a pool of the same shape are silently
// dropped by Put (never corrupted, never double-pooled).
type PolyPool struct {
	n, maxLimbs int
	pool        sync.Pool
}

// NewPolyPool creates a pool of polynomials with the given degree and maximal
// limb count.
func NewPolyPool(n, maxLimbs int) *PolyPool {
	if n < 1 || maxLimbs < 1 {
		panic(fmt.Sprintf("ring: invalid pool shape %dx%d", maxLimbs, n))
	}
	pp := &PolyPool{n: n, maxLimbs: maxLimbs}
	pp.pool.New = func() any {
		return NewPoly(n, maxLimbs).Coeffs
	}
	return pp
}

// N returns the polynomial degree of pooled buffers.
func (pp *PolyPool) N() int { return pp.n }

// MaxLimbs returns the maximal limb count of pooled buffers.
func (pp *PolyPool) MaxLimbs() int { return pp.maxLimbs }

// Get returns a polynomial with exactly `limbs` rows. The contents are
// unspecified (callers that accumulate must use GetZero or overwrite every
// coefficient). The returned Poly must be handed back with Put once dead.
func (pp *PolyPool) Get(limbs int) Poly {
	if limbs < 1 || limbs > pp.maxLimbs {
		panic(fmt.Sprintf("ring: pool Get(%d) out of range [1,%d]", limbs, pp.maxLimbs))
	}
	c := pp.pool.Get().([][]uint64)
	return Poly{Coeffs: c[:limbs]}
}

// GetZero returns a zeroed polynomial with exactly `limbs` rows.
func (pp *PolyPool) GetZero(limbs int) Poly {
	p := pp.Get(limbs)
	p.Zero()
	return p
}

// Put returns a polynomial obtained from Get back to the pool. Puts of
// polynomials with a foreign shape are ignored, so callers can uniformly
// release mixed scratch. p must not be used after Put.
func (pp *PolyPool) Put(p Poly) {
	if p.Coeffs == nil {
		return
	}
	c := p.Coeffs[:cap(p.Coeffs)]
	if len(c) != pp.maxLimbs || len(c[0]) != pp.n {
		return // not one of ours; let the GC have it
	}
	pp.pool.Put(c)
}
