package ring

import (
	"fmt"
	"math/big"
)

// Ring represents R_Q = Z_Q[X]/(X^N+1) with Q given in RNS form as a chain of
// NTT-friendly primes. A Ring value is immutable after construction and safe
// for concurrent use.
type Ring struct {
	N       int
	LogN    int
	Moduli  []Modulus
	Tables  []*NTTTable
	modProd *big.Int // product of all moduli
}

// NewRing builds a ring of degree 2^logN over the given prime chain.
func NewRing(logN int, primes []uint64) (*Ring, error) {
	if logN < 1 || logN > 17 {
		return nil, fmt.Errorf("ring: logN %d out of range [1,17]", logN)
	}
	if len(primes) == 0 {
		return nil, fmt.Errorf("ring: empty prime chain")
	}
	seen := make(map[uint64]bool, len(primes))
	r := &Ring{N: 1 << uint(logN), LogN: logN, modProd: big.NewInt(1)}
	for _, q := range primes {
		if seen[q] {
			return nil, fmt.Errorf("ring: duplicate prime %d", q)
		}
		seen[q] = true
		mod, err := NewModulus(q)
		if err != nil {
			return nil, err
		}
		tbl, err := NewNTTTable(mod, logN)
		if err != nil {
			return nil, err
		}
		r.Moduli = append(r.Moduli, mod)
		r.Tables = append(r.Tables, tbl)
		r.modProd.Mul(r.modProd, new(big.Int).SetUint64(q))
	}
	return r, nil
}

// Level returns the index of the last limb (len-1) of the full chain.
func (r *Ring) Level() int { return len(r.Moduli) - 1 }

// ModulusProduct returns a copy of the product of all limb moduli.
func (r *Ring) ModulusProduct() *big.Int { return new(big.Int).Set(r.modProd) }

// ModulusProductAtLevel returns the product q_0*...*q_level.
func (r *Ring) ModulusProductAtLevel(level int) *big.Int {
	p := big.NewInt(1)
	for i := 0; i <= level; i++ {
		p.Mul(p, new(big.Int).SetUint64(r.Moduli[i].Q))
	}
	return p
}

// AtLevel returns a shallow view of the ring truncated to level+1 limbs.
// The returned ring shares tables with the receiver.
func (r *Ring) AtLevel(level int) *Ring {
	// INVARIANT: levels are validated at the ckks boundary (ErrLevelMismatch) before reaching ring kernels.
	// A panic here is a repo-internal bug, never a reaction to caller input —
	// malformed inputs are rejected with typed errors at the public boundary.
	if level < 0 || level > r.Level() {
		panic(fmt.Sprintf("ring: level %d out of range [0,%d]", level, r.Level()))
	}
	return &Ring{
		N:       r.N,
		LogN:    r.LogN,
		Moduli:  r.Moduli[:level+1],
		Tables:  r.Tables[:level+1],
		modProd: r.ModulusProductAtLevel(level),
	}
}

// Poly is a polynomial in RNS representation: Coeffs[i][j] is the j-th
// coefficient modulo the i-th limb prime. Whether the value is in coefficient
// or NTT (evaluation) form is tracked by the owner, not by the Poly itself;
// the ckks layer keeps ciphertexts in NTT form by convention.
//
// Arena invariant: every pool- or NewPoly-constructed Poly is arena-backed —
// Backing is one contiguous []uint64 of length Limbs()*N(), and Coeffs[i]
// aliases Backing[i*N : (i+1)*N]. Kernels and serialization may iterate the
// backing directly (stride-N limb access, one encoding/binary pass). Code that
// accepts foreign polys (hand-built Coeffs, Backing == nil) must fall back to
// the row view; the helpers in this file do.
type Poly struct {
	Coeffs  [][]uint64
	Backing []uint64
	arena   *poolArena // set by PolyPool.Get; lets Put recycle without alloc
}

// NewPoly allocates a zero polynomial with limbs levels+1 limbs of degree N.
func (r *Ring) NewPoly() Poly {
	return NewPoly(r.N, len(r.Moduli))
}

// NewPoly allocates a zero polynomial with the given degree and limb count,
// backed by a single contiguous allocation.
func NewPoly(n, limbs int) Poly {
	return PolyFromBacking(n, limbs, make([]uint64, n*limbs))
}

// PolyFromBacking builds a Poly over a caller-provided contiguous backing
// slice of length at least n*limbs. Row i aliases backing[i*n:(i+1)*n] with
// its capacity clamped to n, so row writes can never spill into a neighbor.
// The Poly retains backing (trimmed to n*limbs), which is what makes pooled
// arenas reusable: recycling re-derives the rows from the one slice instead of
// re-slicing garbage-retaining sub-slices.
func PolyFromBacking(n, limbs int, backing []uint64) Poly {
	// INVARIANT: shapes are pinned by the parameter set or the pool class.
	// A panic here is a repo-internal bug, never a reaction to caller input —
	// malformed inputs are rejected with typed errors at the public boundary.
	if n < 1 || limbs < 1 || len(backing) < n*limbs {
		panic(fmt.Sprintf("ring: PolyFromBacking(%d, %d) with backing length %d", n, limbs, len(backing)))
	}
	backing = backing[: n*limbs : n*limbs]
	c := make([][]uint64, limbs)
	for i := range c {
		c[i] = backing[i*n : (i+1)*n : (i+1)*n]
	}
	return Poly{Coeffs: c, Backing: backing}
}

// Limbs returns the number of RNS limbs of p.
func (p Poly) Limbs() int { return len(p.Coeffs) }

// N returns the polynomial degree of p.
func (p Poly) N() int {
	if len(p.Coeffs) == 0 {
		return 0
	}
	return len(p.Coeffs[0])
}

// CopyValues copies src into p; both must have identical shape.
func (p Poly) CopyValues(src Poly) {
	if p.Backing != nil && src.Backing != nil && len(p.Backing) == len(src.Backing) {
		copy(p.Backing, src.Backing)
		return
	}
	for i := range p.Coeffs {
		copy(p.Coeffs[i], src.Coeffs[i])
	}
}

// Clone returns a deep copy of p.
func (p Poly) Clone() Poly {
	out := NewPoly(p.N(), p.Limbs())
	out.CopyValues(p)
	return out
}

// Truncated returns a shallow view of p restricted to the first limbs limbs.
// The view keeps the arena linkage: its Backing is the contiguous prefix
// covering the retained limbs, and a pooled poly's truncated view can still be
// handed back to its pool.
func (p Poly) Truncated(limbs int) Poly {
	t := Poly{Coeffs: p.Coeffs[:limbs], arena: p.arena}
	if n := p.N(); p.Backing != nil && len(p.Backing) >= limbs*n {
		t.Backing = p.Backing[: limbs*n : limbs*n]
	}
	return t
}

// Zero sets all coefficients of p to zero.
func (p Poly) Zero() {
	if p.Backing != nil && len(p.Backing) == p.Limbs()*p.N() {
		clear(p.Backing)
		return
	}
	for i := range p.Coeffs {
		clear(p.Coeffs[i])
	}
}

// Equal reports whether p and q have identical shape and coefficients.
func (p Poly) Equal(q Poly) bool {
	if p.Limbs() != q.Limbs() || p.N() != q.N() {
		return false
	}
	for i := range p.Coeffs {
		pi, qi := p.Coeffs[i], q.Coeffs[i]
		for j := range pi {
			if pi[j] != qi[j] {
				return false
			}
		}
	}
	return true
}

// checkShape panics unless all operands have exactly limbs(r) limbs of degree N.
func (r *Ring) checkShape(ps ...Poly) {
	for _, p := range ps {
		// INVARIANT: operand shapes are pinned by the parameter set; the public API validates ciphertext shape (ErrInvalidCiphertext) at entry.
		// A panic here is a repo-internal bug, never a reaction to caller input —
		// malformed inputs are rejected with typed errors at the public boundary.
		if p.Limbs() != len(r.Moduli) || p.N() != r.N {
			panic(fmt.Sprintf("ring: operand shape %dx%d does not match ring %dx%d",
				p.Limbs(), p.N(), len(r.Moduli), r.N))
		}
	}
}

// NTT transforms p (coefficient form) to evaluation form, in place.
func (r *Ring) NTT(p Poly) {
	r.checkShape(p)
	for i, t := range r.Tables {
		t.Forward(p.Coeffs[i])
	}
}

// INTT transforms p (evaluation form) back to coefficient form, in place.
func (r *Ring) INTT(p Poly) {
	r.checkShape(p)
	for i, t := range r.Tables {
		t.Inverse(p.Coeffs[i])
	}
}

// Add sets out = a + b (element-wise mod each limb).
func (r *Ring) Add(a, b, out Poly) {
	r.checkShape(a, b, out)
	for i, m := range r.Moduli {
		ai, bi, oi := a.Coeffs[i], b.Coeffs[i], out.Coeffs[i]
		for j := range oi {
			oi[j] = m.AddMod(ai[j], bi[j])
		}
	}
}

// Sub sets out = a - b.
func (r *Ring) Sub(a, b, out Poly) {
	r.checkShape(a, b, out)
	for i, m := range r.Moduli {
		ai, bi, oi := a.Coeffs[i], b.Coeffs[i], out.Coeffs[i]
		for j := range oi {
			oi[j] = m.SubMod(ai[j], bi[j])
		}
	}
}

// Neg sets out = -a.
func (r *Ring) Neg(a, out Poly) {
	r.checkShape(a, out)
	for i, m := range r.Moduli {
		ai, oi := a.Coeffs[i], out.Coeffs[i]
		for j := range oi {
			oi[j] = m.NegMod(ai[j])
		}
	}
}

// MulCoeffs sets out = a ∘ b (element-wise product; polynomial product when
// both operands are in NTT form). Both operands are variable, so neither the
// Shoup trick (fixed operand) nor 128-bit accumulation (many terms, one
// reduction) applies; a single hardware 128/64 division per coefficient
// benchmarks faster than a two-word Barrett step on current cores, so MulMod
// is the right primitive here (see DESIGN.md "Reduction strategy").
func (r *Ring) MulCoeffs(a, b, out Poly) {
	r.checkShape(a, b, out)
	for i, m := range r.Moduli {
		ai, bi, oi := a.Coeffs[i], b.Coeffs[i], out.Coeffs[i]
		for j := range oi {
			oi[j] = m.MulMod(ai[j], bi[j])
		}
	}
}

// MulCoeffsThenAdd sets out += a ∘ b.
func (r *Ring) MulCoeffsThenAdd(a, b, out Poly) {
	r.checkShape(a, b, out)
	for i, m := range r.Moduli {
		ai, bi, oi := a.Coeffs[i], b.Coeffs[i], out.Coeffs[i]
		for j := range oi {
			oi[j] = m.AddMod(oi[j], m.MulMod(ai[j], bi[j]))
		}
	}
}

// MulScalar sets out = a * scalar.
func (r *Ring) MulScalar(a Poly, scalar uint64, out Poly) {
	r.checkShape(a, out)
	for i, m := range r.Moduli {
		s := scalar % m.Q
		sSho := m.ShoupPrecomp(s)
		ai, oi := a.Coeffs[i], out.Coeffs[i]
		for j := range oi {
			oi[j] = m.MulModShoup(ai[j], s, sSho)
		}
	}
}

// AddScalar sets out = a + scalar.
func (r *Ring) AddScalar(a Poly, scalar uint64, out Poly) {
	r.checkShape(a, out)
	for i, m := range r.Moduli {
		s := scalar % m.Q
		ai, oi := a.Coeffs[i], out.Coeffs[i]
		for j := range oi {
			oi[j] = m.AddMod(ai[j], s)
		}
	}
}

// MulScalarBigint sets out = a * scalar for an arbitrary-precision scalar.
func (r *Ring) MulScalarBigint(a Poly, scalar *big.Int, out Poly) {
	r.checkShape(a, out)
	tmp := new(big.Int)
	for i, m := range r.Moduli {
		s := tmp.Mod(scalar, new(big.Int).SetUint64(m.Q)).Uint64()
		sSho := m.ShoupPrecomp(s)
		ai, oi := a.Coeffs[i], out.Coeffs[i]
		for j := range oi {
			oi[j] = m.MulModShoup(ai[j], s, sSho)
		}
	}
}

// PolyToBigintCentered reconstructs coefficient j of p (coefficient form)
// as centered big integers in (-Q/2, Q/2] via the CRT, writing into out
// (which must have length N). Used by the decoder.
func (r *Ring) PolyToBigintCentered(p Poly, out []*big.Int) {
	r.checkShape(p)
	// Precompute CRT garner constants: Q/q_i and (Q/q_i)^-1 mod q_i.
	Q := r.modProd
	half := new(big.Int).Rsh(Q, 1)
	qiB := make([]*big.Int, len(r.Moduli))
	QdivQi := make([]*big.Int, len(r.Moduli))
	inv := make([]uint64, len(r.Moduli))
	for i, m := range r.Moduli {
		qiB[i] = new(big.Int).SetUint64(m.Q)
		QdivQi[i] = new(big.Int).Div(Q, qiB[i])
		rem := new(big.Int).Mod(QdivQi[i], qiB[i]).Uint64()
		inv[i] = m.InvMod(rem)
	}
	tmp := new(big.Int)
	for j := 0; j < r.N; j++ {
		acc := new(big.Int)
		for i, m := range r.Moduli {
			// term = (p_ij * inv_i mod q_i) * (Q/q_i)
			t := m.MulMod(p.Coeffs[i][j], inv[i])
			tmp.SetUint64(t)
			tmp.Mul(tmp, QdivQi[i])
			acc.Add(acc, tmp)
		}
		acc.Mod(acc, Q)
		if acc.Cmp(half) > 0 {
			acc.Sub(acc, Q)
		}
		out[j] = acc
	}
}

// SetCoeffBigint sets p from centered big-integer coefficients (length N),
// reducing each into every limb.
func (r *Ring) SetCoeffBigint(coeffs []*big.Int, p Poly) {
	r.checkShape(p)
	tmp := new(big.Int)
	for i, m := range r.Moduli {
		q := new(big.Int).SetUint64(m.Q)
		for j := 0; j < r.N; j++ {
			tmp.Mod(coeffs[j], q)
			p.Coeffs[i][j] = tmp.Uint64()
		}
	}
}
