//go:build amd64 && !purego

#include "textflag.h"

// AVX2 kernels for the Harvey NTT butterflies, Shoup multiply vectors and the
// HPS BConv accumulate. AVX2 has no 64x64->128 multiply, so every wide
// multiply is a 32-bit schoolbook over VPMULUDQ:
//
//	a*b = ll + (lh + hl)<<32 + hh<<64
//	  ll = alo*blo, lh = alo*bhi, hl = ahi*blo, hh = ahi*bhi
//	mullo64(a,b) = ll + ((lh + hl) << 32)                       (mod 2^64)
//	mulhi64(a,b): t2 = hl + (ll>>32)
//	              t3 = lh + (t2 & 0xffffffff)
//	              hi = hh + (t2>>32) + (t3>>32)
//
// Every value compared with VPCMPGTQ (which is signed) is < 2^63 — the lazy
// bounds 4q < 2^63 guaranteed by MaxModulusBits = 61 — except the 128-bit
// accumulator carry checks, which bias both operands by 2^63 first.
//
// Vector lengths (step, n, half) are multiples of 4; the Go dispatch layer
// guarantees this.

// SHOUPLAZY computes v = in*w - q*mulhi64(in, ws) in [0, 2q) for any 64-bit
// lanes of `in`. Constant registers: Y7=ws>>32, Y8=ws(lo), Y9=w>>32, Y10=w,
// Y11=q>>32, Y12=q, Y15=0xffffffff mask. in/out register: \vin (clobbers
// Y2..Y6, except \vin itself which receives the result).
#define SHOUPLAZY(vin) \
	VPSRLQ $32, vin, Y3   \ // in >> 32
	VPMULUDQ Y8, vin, Y4  \ // ll = inlo*wslo
	VPMULUDQ Y7, vin, Y5  \ // lh = inlo*wshi
	VPMULUDQ Y8, Y3, Y6   \ // hl = inhi*wslo
	VPMULUDQ Y7, Y3, Y2   \ // hh = inhi*wshi
	VPSRLQ $32, Y4, Y4    \ // t1 = ll >> 32
	VPADDQ Y4, Y6, Y6     \ // t2 = hl + t1
	VPAND Y15, Y6, Y4     \ // t2 & m32
	VPSRLQ $32, Y6, Y6    \ // t2 >> 32
	VPADDQ Y4, Y5, Y5     \ // t3 = lh + (t2 & m32)
	VPSRLQ $32, Y5, Y5    \ // t3 >> 32
	VPADDQ Y6, Y2, Y2     \
	VPADDQ Y5, Y2, Y2     \ // Y2 = t = mulhi64(in, ws)
	VPMULUDQ Y10, vin, Y4 \ // ll2 = inlo*wlo
	VPMULUDQ Y9, vin, Y5  \ // lh2 = inlo*whi
	VPMULUDQ Y10, Y3, Y6  \ // hl2 = inhi*wlo
	VPADDQ Y5, Y6, Y5     \
	VPSLLQ $32, Y5, Y5    \
	VPADDQ Y4, Y5, vin    \ // in*w mod 2^64
	VPSRLQ $32, Y2, Y3    \ // t >> 32
	VPMULUDQ Y12, Y2, Y4  \ // tlo*qlo
	VPMULUDQ Y11, Y2, Y5  \ // tlo*qhi
	VPMULUDQ Y12, Y3, Y6  \ // thi*qlo
	VPADDQ Y5, Y6, Y5     \
	VPSLLQ $32, Y5, Y5    \
	VPADDQ Y4, Y5, Y2     \ // t*q mod 2^64
	VPSUBQ Y2, vin, vin     // in*w - t*q in [0, 2q)

// func nttFwdStageAVX2(p *uint64, m, step int, roots, rootsSho *uint64, q uint64)
//
// One Cooley-Tukey stage: for each twiddle i in [0,m), butterfly the block
// x = p[2*i*step : ...+step], y = x+step with w = roots[i], keeping
// coefficients in [0, 4q) (fold the even leg, lazy-multiply the odd leg).
TEXT ·nttFwdStageAVX2(SB), NOSPLIT, $0-48
	MOVQ p+0(FP), DI
	MOVQ m+8(FP), R8
	MOVQ step+16(FP), R9
	MOVQ roots+24(FP), R10
	MOVQ rootsSho+32(FP), R11
	MOVQ q+40(FP), AX

	// Constants: Y11=q>>32, Y12=q, Y13=2q, Y14=2q-1, Y15=m32.
	MOVQ AX, X0
	VPBROADCASTQ X0, Y12
	VPSRLQ $32, Y12, Y11
	VPADDQ Y12, Y12, Y13
	VPCMPEQD Y14, Y14, Y14 // all ones = -1 per lane
	VPSRLQ $32, Y14, Y15   // m32
	VPADDQ Y13, Y14, Y14   // 2q - 1

	MOVQ R9, R13
	SHLQ $3, R13           // step*8: byte distance between legs

fwd_outer:
	TESTQ R8, R8
	JZ fwd_done
	VPBROADCASTQ (R10), Y10 // w
	ADDQ $8, R10
	VPSRLQ $32, Y10, Y9
	VPBROADCASTQ (R11), Y8 // ws
	ADDQ $8, R11
	VPSRLQ $32, Y8, Y7

	MOVQ DI, SI            // x leg
	MOVQ DI, BX
	ADDQ R13, BX           // y leg
	MOVQ R9, CX            // butterflies this block

fwd_inner:
	VMOVDQU (SI), Y0       // u
	VMOVDQU (BX), Y1       // y
	// fold u into [0, 2q)
	VPCMPGTQ Y14, Y0, Y2   // u > 2q-1
	VPAND Y13, Y2, Y2
	VPSUBQ Y2, Y0, Y0
	SHOUPLAZY(Y1)          // v = y*w mod' q in [0, 2q)
	VPADDQ Y1, Y0, Y2      // x' = u + v
	VMOVDQU Y2, (SI)
	VPADDQ Y13, Y0, Y0
	VPSUBQ Y1, Y0, Y0      // y' = u + 2q - v
	VMOVDQU Y0, (BX)
	ADDQ $32, SI
	ADDQ $32, BX
	SUBQ $4, CX
	JNZ fwd_inner

	LEAQ (DI)(R13*2), DI   // next block
	DECQ R8
	JMP fwd_outer

fwd_done:
	VZEROUPPER
	RET

// func nttInvStageAVX2(p *uint64, m, step int, roots, rootsSho *uint64, q uint64)
//
// One Gentleman-Sande stage: s = x+y folded into [0, 2q); the difference leg
// x+2q-y re-enters [0, 2q) through the lazy Shoup multiply.
TEXT ·nttInvStageAVX2(SB), NOSPLIT, $0-48
	MOVQ p+0(FP), DI
	MOVQ m+8(FP), R8
	MOVQ step+16(FP), R9
	MOVQ roots+24(FP), R10
	MOVQ rootsSho+32(FP), R11
	MOVQ q+40(FP), AX

	MOVQ AX, X0
	VPBROADCASTQ X0, Y12
	VPSRLQ $32, Y12, Y11
	VPADDQ Y12, Y12, Y13
	VPCMPEQD Y14, Y14, Y14
	VPSRLQ $32, Y14, Y15
	VPADDQ Y13, Y14, Y14   // 2q - 1

	MOVQ R9, R13
	SHLQ $3, R13

inv_outer:
	TESTQ R8, R8
	JZ inv_done
	VPBROADCASTQ (R10), Y10
	ADDQ $8, R10
	VPSRLQ $32, Y10, Y9
	VPBROADCASTQ (R11), Y8
	ADDQ $8, R11
	VPSRLQ $32, Y8, Y7

	MOVQ DI, SI
	MOVQ DI, BX
	ADDQ R13, BX
	MOVQ R9, CX

inv_inner:
	VMOVDQU (SI), Y0       // x
	VMOVDQU (BX), Y1       // y
	VPADDQ Y1, Y0, Y2      // s = x + y (< 4q)
	VPCMPGTQ Y14, Y2, Y3   // s > 2q-1
	VPAND Y13, Y3, Y3
	VPSUBQ Y3, Y2, Y2      // fold into [0, 2q)
	VMOVDQU Y2, (SI)
	VPADDQ Y13, Y0, Y0
	VPSUBQ Y1, Y0, Y1      // d = x + 2q - y (< 4q)
	SHOUPLAZY(Y1)
	VMOVDQU Y1, (BX)
	ADDQ $32, SI
	ADDQ $32, BX
	SUBQ $4, CX
	JNZ inv_inner

	LEAQ (DI)(R13*2), DI
	DECQ R8
	JMP inv_outer

inv_done:
	VZEROUPPER
	RET

// func nttInvCombineAVX2(x, y *uint64, n int, q uint64)
//
// Final-stage leg formation: x[j], y[j] = x[j]+y[j], x[j]+2q-y[j]. Inputs
// < 2q, outputs < 4q (the following Shoup multiply is exact for any 64-bit
// input, so no fold is needed).
TEXT ·nttInvCombineAVX2(SB), NOSPLIT, $0-32
	MOVQ x+0(FP), SI
	MOVQ y+8(FP), BX
	MOVQ n+16(FP), CX
	MOVQ q+24(FP), AX

	MOVQ AX, X0
	VPBROADCASTQ X0, Y13
	VPADDQ Y13, Y13, Y13   // 2q

combine_loop:
	VMOVDQU (SI), Y0
	VMOVDQU (BX), Y1
	VPADDQ Y1, Y0, Y2      // x + y
	VMOVDQU Y2, (SI)
	VPADDQ Y13, Y0, Y0
	VPSUBQ Y1, Y0, Y0      // x + 2q - y
	VMOVDQU Y0, (BX)
	ADDQ $32, SI
	ADDQ $32, BX
	SUBQ $4, CX
	JNZ combine_loop

	VZEROUPPER
	RET

// func shoupMulVecAVX2(dst, src *uint64, n int, w, ws, q, full uint64)
//
// dst[k] = src[k]*w mod q (Shoup; exact for any 64-bit src). full != 0 fully
// reduces into [0, q); full == 0 leaves the lazy [0, 2q) result.
TEXT ·shoupMulVecAVX2(SB), NOSPLIT, $0-56
	MOVQ dst+0(FP), DI
	MOVQ src+8(FP), SI
	MOVQ n+16(FP), CX
	MOVQ w+24(FP), AX
	MOVQ ws+32(FP), BX
	MOVQ q+40(FP), DX
	MOVQ full+48(FP), R8

	MOVQ AX, X0
	VPBROADCASTQ X0, Y10   // w
	VPSRLQ $32, Y10, Y9
	MOVQ BX, X0
	VPBROADCASTQ X0, Y8    // ws
	VPSRLQ $32, Y8, Y7
	MOVQ DX, X0
	VPBROADCASTQ X0, Y12   // q
	VPSRLQ $32, Y12, Y11
	VPCMPEQD Y14, Y14, Y14
	VPSRLQ $32, Y14, Y15   // m32
	VPADDQ Y12, Y14, Y14   // q - 1

smv_loop:
	VMOVDQU (SI), Y1
	SHOUPLAZY(Y1)          // in [0, 2q)
	TESTQ R8, R8
	JZ smv_store
	VPCMPGTQ Y14, Y1, Y2   // r > q-1
	VPAND Y12, Y2, Y2
	VPSUBQ Y2, Y1, Y1      // into [0, q)
smv_store:
	VMOVDQU Y1, (DI)
	ADDQ $32, SI
	ADDQ $32, DI
	SUBQ $4, CX
	JNZ smv_loop

	VZEROUPPER
	RET

// func shoupMulSubVecAVX2(dst, x, sub *uint64, n int, w, ws, q uint64)
//
// dst[k] = (x[k] + 2q - sub[k]) * w mod q, fully reduced. Requires
// x[k], sub[k] < 2q so the lazy difference stays below 4q.
TEXT ·shoupMulSubVecAVX2(SB), NOSPLIT, $0-56
	MOVQ dst+0(FP), DI
	MOVQ x+8(FP), SI
	MOVQ sub+16(FP), BX
	MOVQ n+24(FP), CX
	MOVQ w+32(FP), AX
	MOVQ ws+40(FP), DX
	MOVQ q+48(FP), R9

	MOVQ AX, X0
	VPBROADCASTQ X0, Y10
	VPSRLQ $32, Y10, Y9
	MOVQ DX, X0
	VPBROADCASTQ X0, Y8
	VPSRLQ $32, Y8, Y7
	MOVQ R9, X0
	VPBROADCASTQ X0, Y12
	VPSRLQ $32, Y12, Y11
	VPADDQ Y12, Y12, Y13   // 2q
	VPCMPEQD Y14, Y14, Y14
	VPSRLQ $32, Y14, Y15
	VPADDQ Y12, Y14, Y14   // q - 1

smsv_loop:
	VMOVDQU (SI), Y1
	VMOVDQU (BX), Y0
	VPADDQ Y13, Y1, Y1
	VPSUBQ Y0, Y1, Y1      // x + 2q - sub (< 4q)
	SHOUPLAZY(Y1)
	VPCMPGTQ Y14, Y1, Y2
	VPAND Y12, Y2, Y2
	VPSUBQ Y2, Y1, Y1
	VMOVDQU Y1, (DI)
	ADDQ $32, SI
	ADDQ $32, BX
	ADDQ $32, DI
	SUBQ $4, CX
	JNZ smsv_loop

	VZEROUPPER
	RET

// func bconvAccumAVX2(dst, src *uint64, n, stride, l int, ws *uint64, q, brc0, brc1 uint64)
//
// dst[k] = (sum_i src[i*stride+k] * ws[i]) mod q: 128-bit lane accumulators
// over the strided arena rows, then one vectorized Barrett reduction per
// lane. Caller bounds l by AccumCapacity (so acc_hi < q < 2^61).
//
// Two independent 4-lane accumulator chains (8 coefficients per iteration)
// run interleaved so the carry-propagation latency of one chain hides under
// the multiplies of the other; a single-quad loop handles the n%8 == 4
// remainder.
//
// The accumulator low words stay BIASED by 2^63 throughout the MAC loop:
// carry-out of acc_lo += lo is then one signed compare of the biased sum
// against the biased previous value (a <u b  <=>  a^2^63 <s b^2^63), with no
// per-term XORs. The bias is removed once, in the reduction tail.
//
// The tail estimates the Barrett quotient as
//
//	qhat = mullo(hi,c1) + mulhi(hi,c0) + mulhi(lo,c1)
//
// dropping the low-word carries and the mulhi(lo,c0) term of the exact
// Modulus.Reduce estimate. Each dropped carry lowers qhat by at most 1
// (total <= 2), on top of Barrett's own error <= 2, so r = lo - qhat*q lands
// in [0, 5q). 5q can exceed 2^63, so the first conditional subtraction (by
// 4q) compares sign-biased; after it r < 4q < 2^63 and the 2q and q steps
// compare directly. The result is exact: differential tests pin it bit-for-
// bit against the scalar path.

// BCMAC: one 128-bit MAC step for the 4 lanes at OFF(BX): full schoolbook
// product of the lanes with the broadcast term weight (Y7 = w, Y8 = w>>32),
// accumulated into ACCL (biased low word) / ACCH. Clobbers Y0..Y4.
#define BCMAC(OFF, ACCL, ACCH) \
	VMOVDQU OFF(BX), Y0   \ // x
	VPSRLQ $32, Y0, Y1    \ // x >> 32
	VPMULUDQ Y7, Y0, Y2   \ // ll = xlo*wlo
	VPMULUDQ Y8, Y0, Y3   \ // lh = xlo*whi
	VPMULUDQ Y7, Y1, Y4   \ // hl = xhi*wlo
	VPMULUDQ Y8, Y1, Y1   \ // hh = xhi*whi (x>>32 dead)
	VPSRLQ $32, Y2, Y0    \ // ll >> 32 (x dead)
	VPADDQ Y0, Y4, Y4     \ // t2 = hl + (ll>>32)
	VPSRLQ $32, Y4, Y0    \
	VPADDQ Y0, Y1, Y1     \ // hh += t2 >> 32
	VPAND Y15, Y4, Y0     \
	VPADDQ Y0, Y3, Y3     \ // t3 = lh + (t2 & m32)
	VPSRLQ $32, Y3, Y0    \
	VPADDQ Y0, Y1, Y1     \ // phi = mulhi64(x, w)
	VPSLLQ $32, Y3, Y3    \
	VPAND Y15, Y2, Y2     \
	VPOR Y3, Y2, Y2       \ // plo = mullo64(x, w)
	VPADDQ Y2, ACCL, Y2   \ // sum_b = acc_b + plo
	VPCMPGTQ Y2, ACCL, Y3 \ // carry: acc_b >s sum_b  <=>  acc +u plo wrapped
	VMOVDQA Y2, ACCL      \
	VPSUBQ Y3, ACCH, ACCH \ // acc_hi += carry
	VPADDQ Y1, ACCH, ACCH   // acc_hi += phi

// BCTAIL: reduce the (ACCH, biased ACCL) accumulator mod q and store at
// OFF(DI). Constant registers: Y7 = c1, Y8 = c1>>32, Y9 = c0, Y10 = c0>>32,
// Y11 = q (plus Y14 = 2^63, Y15 = m32). Clobbers Y0..Y4 and both acc
// registers; the other quad's accumulators are untouched.
#define BCTAIL(OFF, ACCL, ACCH) \
	VPXOR Y14, ACCL, ACCL \ // un-bias: lo
	/* m2h = mulhi64(lo, c1) -> Y4 */ \
	VPSRLQ $32, ACCL, Y0  \ // lo >> 32
	VPMULUDQ Y7, ACCL, Y1 \ // ll
	VPMULUDQ Y8, ACCL, Y2 \ // lh
	VPMULUDQ Y7, Y0, Y3   \ // hl
	VPMULUDQ Y8, Y0, Y4   \ // hh
	VPSRLQ $32, Y1, Y1    \
	VPADDQ Y1, Y3, Y3     \ // t2 = hl + (ll>>32)
	VPSRLQ $32, Y3, Y1    \
	VPADDQ Y1, Y4, Y4     \
	VPAND Y15, Y3, Y1     \
	VPADDQ Y1, Y2, Y2     \ // t3 = lh + (t2 & m32)
	VPSRLQ $32, Y2, Y1    \
	VPADDQ Y1, Y4, Y4     \ // m2h
	/* tl = mullo64(hi, c1), sharing hi>>32 in Y0 */ \
	VPSRLQ $32, ACCH, Y0  \ // hi >> 32
	VPMULUDQ Y7, ACCH, Y1 \ // ll
	VPMULUDQ Y8, ACCH, Y2 \ // lh
	VPMULUDQ Y7, Y0, Y3   \ // hl
	VPADDQ Y3, Y2, Y2     \
	VPSLLQ $32, Y2, Y2    \
	VPADDQ Y2, Y1, Y1     \ // tl
	VPADDQ Y1, Y4, Y4     \ // qhat = m2h + tl
	/* m1h = mulhi64(hi, c0); hi>>32 still in Y0 */ \
	VPMULUDQ Y9, ACCH, Y1  \ // ll
	VPMULUDQ Y10, ACCH, Y2 \ // lh
	VPMULUDQ Y9, Y0, Y3    \ // hl
	VPSRLQ $32, Y1, Y1     \
	VPADDQ Y1, Y3, Y3      \ // t2 (ll dead)
	VPMULUDQ Y10, Y0, Y1   \ // hh (hi>>32 dead)
	VPSRLQ $32, Y3, Y0     \
	VPADDQ Y0, Y1, Y1      \
	VPAND Y15, Y3, Y0      \
	VPADDQ Y0, Y2, Y2      \ // t3
	VPSRLQ $32, Y2, Y0     \
	VPADDQ Y0, Y1, Y1      \ // m1h
	VPADDQ Y1, Y4, Y4      \ // qhat = m2h + tl + m1h (mod 2^64)
	/* r = lo - qhat*q (mod 2^64) */ \
	VPSRLQ $32, Y4, Y0    \
	VPSRLQ $32, Y11, Y2   \ // q >> 32
	VPMULUDQ Y11, Y4, Y1  \ // ll
	VPMULUDQ Y2, Y4, Y3   \ // lh
	VPMULUDQ Y11, Y0, Y0  \ // hl
	VPADDQ Y0, Y3, Y3     \
	VPSLLQ $32, Y3, Y3    \
	VPADDQ Y3, Y1, Y1     \ // qhat*q mod 2^64
	VPSUBQ Y1, ACCL, ACCL \ // r in [0, 5q)
	/* conditional -4q (sign-biased compare: 5q may exceed 2^63) */ \
	VPSLLQ $2, Y11, Y0    \ // 4q
	VPCMPEQD Y2, Y2, Y2   \ // all ones = -1
	VPADDQ Y2, Y0, Y3     \ // 4q - 1
	VPXOR Y14, Y3, Y3     \
	VPXOR Y14, ACCL, Y1   \
	VPCMPGTQ Y3, Y1, Y1   \ // r >u 4q-1
	VPAND Y0, Y1, Y1      \
	VPSUBQ Y1, ACCL, ACCL \ // r in [0, 4q) < 2^63
	/* conditional -2q, -q (plain signed compares) */ \
	VPADDQ Y11, Y11, Y0   \ // 2q
	VPADDQ Y2, Y0, Y3     \ // 2q - 1
	VPCMPGTQ Y3, ACCL, Y1 \
	VPAND Y0, Y1, Y1      \
	VPSUBQ Y1, ACCL, ACCL \
	VPADDQ Y2, Y11, Y3    \ // q - 1
	VPCMPGTQ Y3, ACCL, Y1 \
	VPAND Y11, Y1, Y1     \
	VPSUBQ Y1, ACCL, ACCL \
	VMOVDQU ACCL, OFF(DI)

TEXT ·bconvAccumAVX2(SB), NOSPLIT, $0-72
	MOVQ dst+0(FP), DI
	MOVQ src+8(FP), SI
	MOVQ n+16(FP), R15
	MOVQ stride+24(FP), R9
	MOVQ l+32(FP), R8
	MOVQ ws+40(FP), R10
	SHLQ $3, R9            // stride in bytes

	VPCMPEQD Y15, Y15, Y15
	VPSLLQ $63, Y15, Y14   // sign = 2^63
	VPSRLQ $32, Y15, Y15   // m32

bc_pair:
	CMPQ R15, $8
	JLT bc_single
	// acc A = Y5 (biased lo) / Y6 (hi); acc B = Y12 / Y13.
	VMOVDQA Y14, Y5
	VPXOR Y6, Y6, Y6
	VMOVDQA Y14, Y12
	VPXOR Y13, Y13, Y13
	MOVQ SI, BX            // row pointer
	MOVQ R10, DX           // ws pointer
	MOVQ R8, CX            // term counter

bc_mac2:
	VPBROADCASTQ (DX), Y7  // w (shared by both quads)
	ADDQ $8, DX
	VPSRLQ $32, Y7, Y8     // w >> 32
	BCMAC(0, Y5, Y6)
	BCMAC(32, Y12, Y13)
	ADDQ R9, BX            // next row, same coefficients
	DECQ CX
	JNZ bc_mac2

	// Reduction tails (constants shared by both quads).
	VPBROADCASTQ brc0+56(FP), Y7  // c1 = high Barrett word
	VPSRLQ $32, Y7, Y8
	VPBROADCASTQ brc1+64(FP), Y9  // c0 = low Barrett word
	VPSRLQ $32, Y9, Y10
	VPBROADCASTQ q+48(FP), Y11
	BCTAIL(0, Y5, Y6)
	BCTAIL(32, Y12, Y13)

	ADDQ $64, DI
	ADDQ $64, SI
	SUBQ $8, R15
	JMP bc_pair

bc_single:
	TESTQ R15, R15
	JZ bc_done
	// One remaining quad (n % 8 == 4): same pipeline, A chain only.
	VMOVDQA Y14, Y5
	VPXOR Y6, Y6, Y6
	MOVQ SI, BX
	MOVQ R10, DX
	MOVQ R8, CX

bc_mac1:
	VPBROADCASTQ (DX), Y7
	ADDQ $8, DX
	VPSRLQ $32, Y7, Y8
	BCMAC(0, Y5, Y6)
	ADDQ R9, BX
	DECQ CX
	JNZ bc_mac1

	VPBROADCASTQ brc0+56(FP), Y7  // c1 = high Barrett word
	VPSRLQ $32, Y7, Y8
	VPBROADCASTQ brc1+64(FP), Y9  // c0 = low Barrett word
	VPSRLQ $32, Y9, Y10
	VPBROADCASTQ q+48(FP), Y11
	BCTAIL(0, Y5, Y6)

bc_done:
	VZEROUPPER
	RET

// func bconvShoupAVX2(dst, src *uint64, n, stride, l int, ws, wsSho *uint64, q uint64)
//
// dst[k] = (sum_i src[i*stride+k] * ws[i]) mod q for SMALL l, via per-term
// lazy Shoup multiplies instead of a 128-bit accumulator: each term
// r_i = x*w - mulhi(x, wsSho)*q lands in [0, 2q) (exact for any 64-bit x),
// the running sum folds by 2q to keep acc < 2q, and one conditional
// subtraction at the end fully reduces. No Barrett tail, so for l <= ~6 this
// beats the schoolbook MAC above; the Go dispatch picks per l. Result is
// bit-identical to the accumulating path (both are the exact mod-q sum).
//
// All compared values stay < 4q < 2^63, so plain signed VPCMPGTQ is safe.
TEXT ·bconvShoupAVX2(SB), NOSPLIT, $0-64
	MOVQ dst+0(FP), DI
	MOVQ src+8(FP), SI
	MOVQ n+16(FP), R15
	MOVQ stride+24(FP), R9
	MOVQ l+32(FP), R8
	MOVQ ws+40(FP), R10
	MOVQ wsSho+48(FP), R11
	SHLQ $3, R9            // stride in bytes

	VPCMPEQD Y15, Y15, Y15
	VPSRLQ $32, Y15, Y15   // m32
	VPBROADCASTQ q+56(FP), Y14
	VPADDQ Y14, Y14, Y13   // 2q
	VPCMPEQD Y7, Y7, Y7    // all ones = -1
	VPADDQ Y7, Y13, Y12    // 2q - 1

bs_chunk:
	VPXOR Y9, Y9, Y9       // acc
	MOVQ SI, BX            // row pointer
	MOVQ R10, DX           // ws pointer
	MOVQ R11, AX           // wsSho pointer
	MOVQ R8, CX            // term counter

bs_term:
	VPBROADCASTQ (DX), Y10 // w
	VPBROADCASTQ (AX), Y11 // wsSho
	ADDQ $8, DX
	ADDQ $8, AX
	VMOVDQU (BX), Y0       // x
	ADDQ R9, BX            // next row, same coefficients
	// t = mulhi64(x, wsSho)
	VPSRLQ $32, Y0, Y1     // xh
	VPSRLQ $32, Y11, Y2    // wsSho >> 32
	VPMULUDQ Y11, Y0, Y3   // ll
	VPMULUDQ Y2, Y0, Y4    // lh
	VPMULUDQ Y11, Y1, Y5   // hl
	VPMULUDQ Y2, Y1, Y6    // hh
	VPSRLQ $32, Y3, Y3     // ll >> 32
	VPADDQ Y3, Y5, Y5      // t2 = hl + (ll>>32)
	VPSRLQ $32, Y5, Y3
	VPADDQ Y3, Y6, Y6
	VPAND Y15, Y5, Y3
	VPADDQ Y3, Y4, Y4      // t3 = lh + (t2 & m32)
	VPSRLQ $32, Y4, Y3
	VPADDQ Y3, Y6, Y6      // t
	// xw = mullo64(x, w)
	VPSRLQ $32, Y10, Y2    // w >> 32
	VPMULUDQ Y10, Y0, Y3   // ll2
	VPMULUDQ Y2, Y0, Y4    // lh2
	VPMULUDQ Y10, Y1, Y5   // hl2 (xh dead)
	VPADDQ Y4, Y5, Y4
	VPSLLQ $32, Y4, Y4
	VPADDQ Y3, Y4, Y0      // x*w mod 2^64
	// tq = mullo64(t, q)
	VPSRLQ $32, Y6, Y1     // th
	VPSRLQ $32, Y14, Y2    // q >> 32
	VPMULUDQ Y14, Y6, Y3
	VPMULUDQ Y2, Y6, Y4
	VPMULUDQ Y14, Y1, Y5
	VPADDQ Y4, Y5, Y4
	VPSLLQ $32, Y4, Y4
	VPADDQ Y3, Y4, Y3      // t*q mod 2^64
	VPSUBQ Y3, Y0, Y0      // r = x*w - t*q in [0, 2q)
	// acc = (acc + r) folded to < 2q
	VPADDQ Y0, Y9, Y9      // acc < 4q
	VPCMPGTQ Y12, Y9, Y1   // acc > 2q-1
	VPAND Y13, Y1, Y1
	VPSUBQ Y1, Y9, Y9      // acc < 2q
	DECQ CX
	JNZ bs_term

	// fully reduce: acc < 2q -> one conditional subtraction
	VPCMPEQD Y0, Y0, Y0
	VPADDQ Y0, Y14, Y1     // q - 1
	VPCMPGTQ Y1, Y9, Y0
	VPAND Y14, Y0, Y0
	VPSUBQ Y0, Y9, Y9
	VMOVDQU Y9, (DI)

	ADDQ $32, DI
	ADDQ $32, SI
	SUBQ $4, R15
	JNZ bs_chunk

	VZEROUPPER
	RET

// func cpuid(eaxIn, ecxIn uint32) (eax, ebx, ecx, edx uint32)
TEXT ·cpuid(SB), NOSPLIT, $0-24
	MOVL eaxIn+0(FP), AX
	MOVL ecxIn+4(FP), CX
	CPUID
	MOVL AX, eax+8(FP)
	MOVL BX, ebx+12(FP)
	MOVL CX, ecx+16(FP)
	MOVL DX, edx+20(FP)
	RET

// func xgetbv() (eax, edx uint32)
TEXT ·xgetbv(SB), NOSPLIT, $0-8
	MOVL $0, CX
	XGETBV
	MOVL AX, eax+0(FP)
	MOVL DX, edx+4(FP)
	RET
