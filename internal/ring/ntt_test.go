package ring

import (
	"math/big"
	"math/rand"
	"testing"
)

func testRing(t *testing.T, logN, bitSize, limbs int) *Ring {
	t.Helper()
	ps := somePrimes(t, bitSize, logN, limbs)
	r, err := NewRing(logN, ps)
	if err != nil {
		t.Fatalf("NewRing: %v", err)
	}
	return r
}

func randPoly(r *Ring, seed int64) Poly {
	s := NewSampler(seed)
	p := r.NewPoly()
	s.UniformPoly(r, p)
	return p
}

func TestNTTRoundTrip(t *testing.T) {
	for _, logN := range []int{4, 8, 11} {
		for _, bitSize := range []int{36, 60} {
			r := testRing(t, logN, bitSize, 3)
			p := randPoly(r, 42)
			orig := p.Clone()
			r.NTT(p)
			if p.Equal(orig) {
				t.Fatalf("logN=%d: NTT left the polynomial unchanged", logN)
			}
			r.INTT(p)
			if !p.Equal(orig) {
				t.Fatalf("logN=%d bits=%d: NTT/INTT round trip failed", logN, bitSize)
			}
		}
	}
}

// schoolbookNegacyclic multiplies two polynomials modulo X^N+1 and q using
// big integers; the reference for the NTT-based product.
func schoolbookNegacyclic(a, b []uint64, q uint64) []uint64 {
	n := len(a)
	qB := new(big.Int).SetUint64(q)
	acc := make([]*big.Int, n)
	for i := range acc {
		acc[i] = new(big.Int)
	}
	tmp := new(big.Int)
	for i := 0; i < n; i++ {
		if a[i] == 0 {
			continue
		}
		ai := new(big.Int).SetUint64(a[i])
		for j := 0; j < n; j++ {
			tmp.SetUint64(b[j])
			tmp.Mul(tmp, ai)
			k := i + j
			if k < n {
				acc[k].Add(acc[k], tmp)
			} else {
				acc[k-n].Sub(acc[k-n], tmp)
			}
		}
	}
	out := make([]uint64, n)
	for i := range out {
		acc[i].Mod(acc[i], qB)
		out[i] = acc[i].Uint64()
	}
	return out
}

func TestNTTMultiplicationMatchesSchoolbook(t *testing.T) {
	for _, bitSize := range []int{36, 60} {
		r := testRing(t, 6, bitSize, 2)
		a := randPoly(r, 7)
		b := randPoly(r, 8)
		want := make([][]uint64, len(r.Moduli))
		for i, m := range r.Moduli {
			want[i] = schoolbookNegacyclic(a.Coeffs[i], b.Coeffs[i], m.Q)
		}
		r.NTT(a)
		r.NTT(b)
		c := r.NewPoly()
		r.MulCoeffs(a, b, c)
		r.INTT(c)
		for i := range r.Moduli {
			for j := 0; j < r.N; j++ {
				if c.Coeffs[i][j] != want[i][j] {
					t.Fatalf("bits=%d limb %d coeff %d: got %d want %d", bitSize, i, j, c.Coeffs[i][j], want[i][j])
				}
			}
		}
	}
}

func TestNTTLinearity(t *testing.T) {
	r := testRing(t, 8, 36, 2)
	a := randPoly(r, 1)
	b := randPoly(r, 2)
	sum := r.NewPoly()
	r.Add(a, b, sum)
	r.NTT(sum)

	r.NTT(a)
	r.NTT(b)
	sum2 := r.NewPoly()
	r.Add(a, b, sum2)
	if !sum.Equal(sum2) {
		t.Fatal("NTT(a+b) != NTT(a)+NTT(b)")
	}
}

func TestNTTConstantPolynomial(t *testing.T) {
	// NTT of the constant polynomial c is the all-c vector (evaluations of a
	// constant are the constant).
	r := testRing(t, 5, 36, 1)
	p := r.NewPoly()
	const c = 12345
	p.Coeffs[0][0] = c
	r.NTT(p)
	for j := 0; j < r.N; j++ {
		if p.Coeffs[0][j] != c {
			t.Fatalf("NTT(const)[%d] = %d, want %d", j, p.Coeffs[0][j], c)
		}
	}
}

func TestBitReverse(t *testing.T) {
	if bitReverse(0b001, 3) != 0b100 {
		t.Error("bitReverse(1,3) != 4")
	}
	if bitReverse(0b110, 3) != 0b011 {
		t.Error("bitReverse(6,3) != 3")
	}
	for v := uint64(0); v < 64; v++ {
		if bitReverse(bitReverse(v, 6), 6) != v {
			t.Fatalf("bitReverse not involutive at %d", v)
		}
	}
}

func TestNewNTTTableRejectsIncompatibleModulus(t *testing.T) {
	// 17 is prime but 17-1=16 is not divisible by 2*32.
	m := mustModulus(t, 17)
	if _, err := NewNTTTable(m, 5); err == nil {
		t.Error("expected error for incompatible modulus/degree")
	}
}

func TestAutomorphismCoeffVsNTT(t *testing.T) {
	r := testRing(t, 7, 36, 2)
	rng := rand.New(rand.NewSource(11))
	for _, galEl := range []uint64{5, 25, GaloisElementForConjugation(7), GaloisElementForRotation(7, 3), GaloisElementForRotation(7, -2)} {
		p := r.NewPoly()
		for i := range r.Moduli {
			for j := range p.Coeffs[i] {
				p.Coeffs[i][j] = uint64(rng.Int63n(int64(r.Moduli[i].Q)))
			}
		}
		// Path 1: automorphism in coefficient domain, then NTT.
		want := r.NewPoly()
		r.AutomorphismCoeff(p, want, galEl)
		r.NTT(want)
		// Path 2: NTT, then permutation in the evaluation domain.
		got := r.NewPoly()
		pn := p.Clone()
		r.NTT(pn)
		idx := AutomorphismNTTIndex(r.N, r.LogN, galEl)
		r.AutomorphismNTT(pn, got, idx)
		if !got.Equal(want) {
			t.Fatalf("galEl=%d: NTT-domain automorphism disagrees with coefficient-domain", galEl)
		}
	}
}

func TestGaloisElements(t *testing.T) {
	logN := 10
	m := uint64(2) << uint(logN)
	if g := GaloisElementForRotation(logN, 0); g != 1 {
		t.Errorf("rotation by 0 should be identity, got %d", g)
	}
	g1 := GaloisElementForRotation(logN, 1)
	if g1 != 5 {
		t.Errorf("rotation by 1 should be 5, got %d", g1)
	}
	// rot(r) * rot(-r) == identity in the group.
	gp := GaloisElementForRotation(logN, 7)
	gn := GaloisElementForRotation(logN, -7)
	if (gp*gn)%m != 1 {
		t.Errorf("rot(7)*rot(-7) = %d mod %d, want 1", (gp*gn)%m, m)
	}
	if gc := GaloisElementForConjugation(logN); gc != m-1 {
		t.Errorf("conjugation element = %d, want %d", gc, m-1)
	}
}
