package ring

import (
	"math/rand"
	"testing"
)

// In-process A/B benchmarks for the vector primitives: each benchmark runs
// the same workload with the assembly kernels toggled off (Go) and on (ASM)
// via SetKernelASM, which is the only comparison that survives the noise of
// shared hosts — cross-process runs of the same binary can drift several
// percent. On builds without the kernels both variants measure the Go path.
func benchVecAB(b *testing.B, asm bool, run func(m Modulus, n int, src []uint64)) {
	primes, err := GenerateNTTPrimes(36, 12, 1)
	if err != nil {
		b.Fatal(err)
	}
	mod, err := NewModulus(primes[0])
	if err != nil {
		b.Fatal(err)
	}
	const n = 4096
	src := make([]uint64, 16*n) // 16 lazy rows at stride n
	rng := rand.New(rand.NewSource(1))
	for i := range src {
		src[i] = rng.Uint64() % (2 * mod.Q)
	}
	prev := SetKernelASM(asm)
	defer SetKernelASM(prev)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		run(mod, n, src)
	}
}

func benchVecBoth(b *testing.B, run func(m Modulus, n int, src []uint64)) {
	b.Run("Go", func(b *testing.B) { benchVecAB(b, false, run) })
	b.Run("ASM", func(b *testing.B) { benchVecAB(b, true, run) })
}

func BenchmarkABShoupMulVec(b *testing.B) {
	d := make([]uint64, 4096)
	benchVecBoth(b, func(m Modulus, n int, src []uint64) {
		w := uint64(12345678901) % m.Q
		m.ShoupMulVec(d, src[:n], w, m.ShoupPrecomp(w))
	})
}

func BenchmarkABShoupMulSubVec(b *testing.B) {
	d := make([]uint64, 4096)
	benchVecBoth(b, func(m Modulus, n int, src []uint64) {
		m.ShoupMulSubVec(d, src[:n], src[n:2*n], 12345, m.ShoupPrecomp(12345))
	})
}

func benchBConv(b *testing.B, l int, shoup bool) {
	d := make([]uint64, 4096)
	var mod Modulus
	ws := make([]uint64, l)
	wsSho := make([]uint64, l)
	benchVecBoth(b, func(m Modulus, n int, src []uint64) {
		if m.Q != mod.Q {
			mod = m
			for i := range ws {
				ws[i] = uint64(111*(i+1)) % m.Q
				wsSho[i] = m.ShoupPrecomp(ws[i])
			}
		}
		if shoup {
			m.BConvAccumShoup(d, src, n, ws, wsSho)
			return
		}
		m.BConvAccum(d, src, n, ws)
	})
}

func BenchmarkABBConvAccum3(b *testing.B)      { benchBConv(b, 3, false) }
func BenchmarkABBConvAccum8(b *testing.B)      { benchBConv(b, 8, false) }
func BenchmarkABBConvAccumShoup3(b *testing.B) { benchBConv(b, 3, true) }
