package ring

import (
	"sync"
	"testing"
)

func TestPolyPoolShapes(t *testing.T) {
	pp := NewPolyPool(16, 8)
	if pp.N() != 16 || pp.MaxLimbs() != 8 {
		t.Fatalf("pool shape accessors: %dx%d", pp.MaxLimbs(), pp.N())
	}
	for _, limbs := range []int{1, 3, 8} {
		p := pp.Get(limbs)
		if p.Limbs() != limbs || p.N() != 16 {
			t.Fatalf("Get(%d): got %dx%d", limbs, p.Limbs(), p.N())
		}
		pp.Put(p)
	}
}

func TestPolyPoolGetZero(t *testing.T) {
	pp := NewPolyPool(8, 4)
	// Dirty a buffer, return it, and check GetZero cleans it.
	p := pp.Get(4)
	for i := range p.Coeffs {
		for j := range p.Coeffs[i] {
			p.Coeffs[i][j] = 0xdead
		}
	}
	pp.Put(p)
	q := pp.GetZero(4)
	for i := range q.Coeffs {
		for j := range q.Coeffs[i] {
			if q.Coeffs[i][j] != 0 {
				t.Fatalf("GetZero returned dirty buffer at [%d][%d]", i, j)
			}
		}
	}
	pp.Put(q)
}

func TestPolyPoolRecoversTruncatedViews(t *testing.T) {
	pp := NewPolyPool(8, 6)
	// A truncated Get view must round-trip back to full capacity.
	p := pp.Get(2)
	pp.Put(p)
	q := pp.Get(6)
	if q.Limbs() != 6 {
		t.Fatalf("after Put of truncated view, Get(6) has %d limbs", q.Limbs())
	}
	pp.Put(q)
	// Foreign polynomials are dropped, not pooled.
	pp.Put(NewPoly(8, 3))
	pp.Put(Poly{})
}

func TestPolyPoolConcurrent(t *testing.T) {
	pp := NewPolyPool(32, 7)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				limbs := 1 + (g+i)%7
				p := pp.GetZero(limbs)
				for r := range p.Coeffs {
					p.Coeffs[r][0] = uint64(g)
				}
				pp.Put(p)
			}
		}(g)
	}
	wg.Wait()
}

func TestForEachLimbRangeCoversExactly(t *testing.T) {
	for _, limbs := range []int{1, 2, 3, 4, 7, 16, 33} {
		for _, workers := range []int{-1, 0, 1, 2, 3, 64} {
			var mu sync.Mutex
			seen := make([]int, limbs)
			calls := 0
			ForEachLimbRange(limbs, workers, func(lo, hi int) {
				mu.Lock()
				defer mu.Unlock()
				calls++
				if lo < 0 || hi > limbs || lo >= hi {
					t.Fatalf("limbs=%d workers=%d: bad range [%d,%d)", limbs, workers, lo, hi)
				}
				for i := lo; i < hi; i++ {
					seen[i]++
				}
			})
			for i, c := range seen {
				if c != 1 {
					t.Fatalf("limbs=%d workers=%d: index %d covered %d times", limbs, workers, i, c)
				}
			}
			// Chunked contract: never more range calls than workers allow.
			if w := Workers(workers); calls > w && w >= 2 {
				t.Fatalf("limbs=%d workers=%d: %d chunks for %d workers", limbs, workers, calls, w)
			}
		}
	}
	// Degenerate inputs are no-ops.
	ForEachLimbRange(0, 4, func(lo, hi int) { t.Fatal("called for limbs=0") })
}

func TestWorkersConvention(t *testing.T) {
	if Workers(1) != 1 || Workers(5) != 5 {
		t.Fatal("positive worker counts must pass through")
	}
	if Workers(0) < 1 || Workers(-3) < 1 {
		t.Fatal("non-positive requests must resolve to at least one worker")
	}
}

func TestNTTWorkersMatchesSequential(t *testing.T) {
	r := testRing(t, 10, 36, 8)
	p := randPoly(r, 99)
	for _, w := range []int{1, 2, -1} {
		q := p.Clone()
		r.NTT(p)
		r.NTTWorkers(q, w)
		if !p.Equal(q) {
			t.Fatalf("workers=%d: NTT mismatch", w)
		}
		r.INTT(p)
		r.INTTWorkers(q, w)
		if !p.Equal(q) {
			t.Fatalf("workers=%d: INTT mismatch", w)
		}
	}
}
