package ring

import (
	"math"
	"math/rand"
)

// Sampler draws the random polynomials the scheme needs: uniform masks,
// ternary secrets and discrete-Gaussian noise. It is deterministic given its
// seed, which is what the accelerator's on-chip evaluation-key generator
// (EKG, §5.7.2 of the paper) exploits: only the seed of the "a" part of each
// key must be stored, the polynomial itself is re-expanded on the fly.
type Sampler struct {
	rng *rand.Rand
}

// NewSampler returns a sampler seeded deterministically.
func NewSampler(seed int64) *Sampler {
	return &Sampler{rng: rand.New(rand.NewSource(seed))}
}

// UniformPoly fills p with independent uniform values modulo each limb.
func (s *Sampler) UniformPoly(r *Ring, p Poly) {
	r.checkShape(p)
	for i, m := range r.Moduli {
		ci := p.Coeffs[i]
		for j := range ci {
			// Rejection-free: Int63n is uniform over [0, q).
			ci[j] = uint64(s.rng.Int63n(int64(m.Q)))
		}
	}
}

// TernaryPoly fills p with a ternary polynomial (coefficients in {-1,0,1},
// each nonzero with probability 2/3), identical across limbs. Returns the
// signed coefficients for callers that need them (key generation stores the
// secret this way).
func (s *Sampler) TernaryPoly(r *Ring, p Poly) []int64 {
	r.checkShape(p)
	signed := make([]int64, r.N)
	for j := range signed {
		signed[j] = int64(s.rng.Intn(3)) - 1
	}
	setSigned(r, signed, p)
	return signed
}

// TernaryHWTPoly fills p with a sparse ternary polynomial of exactly h
// non-zero coefficients (±1 with equal probability) — the sparse-secret
// distribution CKKS bootstrapping uses to bound the modular-reduction range
// K of EvalMod. Returns the signed coefficients.
func (s *Sampler) TernaryHWTPoly(r *Ring, h int, p Poly) []int64 {
	r.checkShape(p)
	if h > r.N {
		h = r.N
	}
	signed := make([]int64, r.N)
	perm := s.rng.Perm(r.N)
	for i := 0; i < h; i++ {
		if s.rng.Intn(2) == 0 {
			signed[perm[i]] = 1
		} else {
			signed[perm[i]] = -1
		}
	}
	setSigned(r, signed, p)
	return signed
}

// GaussianPoly fills p with discrete-Gaussian noise of standard deviation
// sigma truncated at 6 sigma, identical across limbs.
func (s *Sampler) GaussianPoly(r *Ring, sigma float64, p Poly) {
	r.checkShape(p)
	signed := make([]int64, r.N)
	bound := 6 * sigma
	for j := range signed {
		for {
			v := s.rng.NormFloat64() * sigma
			if math.Abs(v) <= bound {
				signed[j] = int64(math.Round(v))
				break
			}
		}
	}
	setSigned(r, signed, p)
}

// setSigned reduces small signed coefficients into every limb of p.
func setSigned(r *Ring, signed []int64, p Poly) {
	for i, m := range r.Moduli {
		ci := p.Coeffs[i]
		for j, v := range signed {
			if v >= 0 {
				ci[j] = uint64(v) % m.Q
			} else {
				ci[j] = m.Q - uint64(-v)%m.Q
				if ci[j] == m.Q {
					ci[j] = 0
				}
			}
		}
	}
}
