package ring

import (
	"math"
	"math/rand"

	"github.com/fastfhe/fast/internal/obs"
)

// Sampler draws the random polynomials the scheme needs: uniform masks,
// ternary secrets and discrete-Gaussian noise. It is deterministic given its
// seed, which is what the accelerator's on-chip evaluation-key generator
// (EKG, §5.7.2 of the paper) exploits: only the seed of the "a" part of each
// key must be stored, the polynomial itself is re-expanded on the fly.
//
// A Sampler is NOT safe for concurrent use (the underlying generator is one
// sequential stream); callers that share one — the Encryptor does — must
// serialise the draw. The draw-only methods (TernarySigned, GaussianSigned)
// exist so that callers can hold a lock across exactly the stream
// consumption and do the per-limb reduction (SetSigned) outside it.
type Sampler struct {
	rng *rand.Rand

	// draws counts the random polynomials drawn (uniform, ternary and
	// gaussian alike). Nil when uninstrumented; see Instrument.
	draws *obs.Counter
}

// NewSampler returns a sampler seeded deterministically.
func NewSampler(seed int64) *Sampler {
	return &Sampler{rng: rand.New(rand.NewSource(seed))}
}

// Instrument attaches a counter of polynomial draws (nil detaches). The
// counter does not perturb the random stream.
func (s *Sampler) Instrument(draws *obs.Counter) { s.draws = draws }

// UniformPoly fills p with independent uniform values modulo each limb.
func (s *Sampler) UniformPoly(r *Ring, p Poly) {
	r.checkShape(p)
	s.draws.Inc()
	for i, m := range r.Moduli {
		ci := p.Coeffs[i]
		for j := range ci {
			// Rejection-free: Int63n is uniform over [0, q).
			ci[j] = uint64(s.rng.Int63n(int64(m.Q)))
		}
	}
}

// TernarySigned draws the signed coefficient vector of a ternary polynomial
// (each coefficient in {-1,0,1}, nonzero with probability 2/3) without
// touching any Poly. It consumes exactly the random stream TernaryPoly
// consumes, so splitting a draw from its reduction preserves the stream
// bit-for-bit.
func (s *Sampler) TernarySigned(n int) []int64 {
	s.draws.Inc()
	signed := make([]int64, n)
	for j := range signed {
		signed[j] = int64(s.rng.Intn(3)) - 1
	}
	return signed
}

// TernaryPoly fills p with a ternary polynomial (coefficients in {-1,0,1},
// each nonzero with probability 2/3), identical across limbs. Returns the
// signed coefficients for callers that need them (key generation stores the
// secret this way).
func (s *Sampler) TernaryPoly(r *Ring, p Poly) []int64 {
	r.checkShape(p)
	signed := s.TernarySigned(r.N)
	SetSigned(r, signed, p)
	return signed
}

// TernaryHWTPoly fills p with a sparse ternary polynomial of exactly h
// non-zero coefficients (±1 with equal probability) — the sparse-secret
// distribution CKKS bootstrapping uses to bound the modular-reduction range
// K of EvalMod. Returns the signed coefficients.
func (s *Sampler) TernaryHWTPoly(r *Ring, h int, p Poly) []int64 {
	r.checkShape(p)
	s.draws.Inc()
	if h > r.N {
		h = r.N
	}
	signed := make([]int64, r.N)
	perm := s.rng.Perm(r.N)
	for i := 0; i < h; i++ {
		if s.rng.Intn(2) == 0 {
			signed[perm[i]] = 1
		} else {
			signed[perm[i]] = -1
		}
	}
	SetSigned(r, signed, p)
	return signed
}

// GaussianSigned draws the signed coefficient vector of a discrete-Gaussian
// polynomial of standard deviation sigma truncated at 6 sigma, consuming
// exactly the random stream GaussianPoly consumes (see TernarySigned).
func (s *Sampler) GaussianSigned(n int, sigma float64) []int64 {
	s.draws.Inc()
	signed := make([]int64, n)
	bound := 6 * sigma
	for j := range signed {
		for {
			v := s.rng.NormFloat64() * sigma
			if math.Abs(v) <= bound {
				signed[j] = int64(math.Round(v))
				break
			}
		}
	}
	return signed
}

// GaussianPoly fills p with discrete-Gaussian noise of standard deviation
// sigma truncated at 6 sigma, identical across limbs.
func (s *Sampler) GaussianPoly(r *Ring, sigma float64, p Poly) {
	r.checkShape(p)
	SetSigned(r, s.GaussianSigned(r.N, sigma), p)
}

// SetSigned reduces small signed coefficients into every limb of p. It is
// pure computation on its arguments (no sampler state), so callers holding a
// sampler lock for a draw can run it after releasing the lock.
func SetSigned(r *Ring, signed []int64, p Poly) {
	for i, m := range r.Moduli {
		ci := p.Coeffs[i]
		for j, v := range signed {
			if v >= 0 {
				ci[j] = uint64(v) % m.Q
			} else {
				ci[j] = m.Q - uint64(-v)%m.Q
				if ci[j] == m.Q {
					ci[j] = 0
				}
			}
		}
	}
}
