// Package ring implements arithmetic over the negacyclic polynomial rings
// R_q = Z_q[X]/(X^N+1) that underpin the RNS-CKKS scheme: word-size modular
// arithmetic, NTT-friendly prime generation, forward/inverse number-theoretic
// transforms, Galois automorphisms, and secret/noise samplers.
//
// All arithmetic is implemented from scratch on top of math/bits; moduli up to
// 61 bits are supported, which covers both the 36-bit ciphertext primes and
// the 60-bit auxiliary primes the FAST accelerator's tunable-bit datapath
// targets.
package ring

import (
	"fmt"
	"math/bits"
)

// MaxModulusBits is the largest supported modulus width. The bound comes from
// the lazy-reduction headroom used by the Harvey NTT butterflies: the forward
// transform keeps coefficients in [0, 4q) between stages and the inverse in
// [0, 2q), so 4q (and every intermediate like u + 2q - v) must fit in 64 bits
// with margin. With q < 2^61 the largest lazy intermediate is < 2^63.
//
// Bounds invariant at each kernel boundary (see DESIGN.md "Reduction
// strategy" for the full table):
//
//	NTTTable.Forward      in [0,2q) -> out [0,q)   (internally [0,4q))
//	NTTTable.Inverse      in [0,2q) -> out [0,q)   (internally [0,2q))
//	NTTTable.InverseLazy  in [0,2q) -> out [0,2q)
//	Extender.Convert      src [0,2q) -> dst [0,q)
//	ModDowner.ModDown     xQ/xP [0,2q) -> out [0,q)
//	Rescaler.Rescale      x [0,2q) -> out [0,q)
const MaxModulusBits = 61

// Modulus bundles a prime q with the precomputed constants required for fast
// reduction of 128-bit products (Barrett) and of products by a fixed operand
// (Shoup).
type Modulus struct {
	Q uint64 // the prime itself

	// brc is the Barrett constant floor(2^128 / q), stored as (hi, lo)
	// 64-bit words. It lets us reduce a 128-bit product with two
	// multiplications instead of a hardware division.
	brc [2]uint64
}

// NewModulus validates q and precomputes its reduction constants.
func NewModulus(q uint64) (Modulus, error) {
	if q < 2 {
		return Modulus{}, fmt.Errorf("ring: modulus %d is too small", q)
	}
	if bits.Len64(q) > MaxModulusBits {
		return Modulus{}, fmt.Errorf("ring: modulus %d exceeds %d bits", q, MaxModulusBits)
	}
	return Modulus{Q: q, brc: barrettConstant(q)}, nil
}

// barrettConstant returns floor(2^128/q) as (hi, lo). We divide the two-word
// value 2^128-1 by q with long division; floor((2^128-1)/q) equals
// floor(2^128/q) whenever q does not divide 2^128, which holds for every odd
// q > 1.
func barrettConstant(q uint64) [2]uint64 {
	w1, r1 := bits.Div64(0, ^uint64(0), q)
	w0, _ := bits.Div64(r1, ^uint64(0), q)
	return [2]uint64{w1, w0}
}

// Reduce returns x mod q for a full 128-bit value x = hi*2^64 + lo using the
// Barrett constant. Requires x < q*2^64 (equivalently hi < q), which holds for
// a single product of two values < q and, more generally, for a 128-bit
// accumulator of up to AccumCapacity products of values < q — the contract
// the HPS-style accumulating BConv and the fused KeyMult kernels rely on.
func (m Modulus) Reduce(hi, lo uint64) uint64 {
	if hi == 0 && lo < m.Q {
		return lo
	}
	// Estimate the quotient: t = floor(x * floor(2^128/q) / 2^128).
	// x = hi*2^64+lo, c = brc[0]*2^64 + brc[1].
	// We need the top 128 bits of the 256-bit product x*c; because hi < q
	// < 2^61 the estimate below is off by at most 2, fixed by conditional
	// subtractions.
	c1, c0 := m.brc[0], m.brc[1]

	// x*c = hi*c1*2^128 + (hi*c0 + lo*c1)*2^64 + lo*c0
	h1, _ := bits.Mul64(lo, c0)
	m1h, m1l := bits.Mul64(hi, c0)
	m2h, m2l := bits.Mul64(lo, c1)
	th, tl := bits.Mul64(hi, c1)

	// mid = m1 + m2 + h1 (collect carries into the top word).
	midl, carry := bits.Add64(m1l, m2l, 0)
	midh := m1h + m2h + carry
	midl, carry = bits.Add64(midl, h1, 0)
	midh += carry

	// quotient estimate = th*2^64 + tl + midh (top 128 bits of x*c).
	qlo, carry := bits.Add64(tl, midh, 0)
	_ = th + carry // th only nonzero when hi,q near 2^64; quotient high word unused since result < 2^64

	// r = x - q*quot (mod 2^64); r fits in 64 bits after correction.
	qql := qlo * m.Q
	r := lo - qql
	for r >= m.Q {
		r -= m.Q
	}
	return r
}

// ReduceWord returns x mod q for a single 64-bit x of arbitrary magnitude
// using a one-word Barrett step (quotient estimate from the high word of the
// Barrett constant, off by at most 2). This replaces the hardware division of
// `x % q` in kernels that fold a foreign-limb residue, e.g. the rescale
// subtraction path.
func (m Modulus) ReduceWord(x uint64) uint64 {
	if x < m.Q {
		return x
	}
	t, _ := bits.Mul64(x, m.brc[0])
	r := x - t*m.Q
	for r >= m.Q {
		r -= m.Q
	}
	return r
}

// AccumCapacity returns the number of products of operands < q that a 128-bit
// accumulator can sum while staying < q*2^64, i.e. while remaining reducible
// by Reduce in one Barrett step: floor((2^64-1)/q) terms of at most (q-1)^2
// each. For the 61-bit cap this is at least 8; for the 36-bit ciphertext
// primes it is astronomically large, so inner products over the Q chain never
// need intermediate folding.
func (m Modulus) AccumCapacity() int {
	c := ^uint64(0) / m.Q
	const maxInt = int(^uint(0) >> 1)
	if c > uint64(maxInt) {
		return maxInt
	}
	return int(c)
}

// MulMod returns a*b mod q using exact 128-bit division. It is the
// correctness reference for the Barrett path and is fast enough for
// non-inner-loop uses.
func (m Modulus) MulMod(a, b uint64) uint64 {
	hi, lo := bits.Mul64(a, b)
	_, r := bits.Div64(hi, lo, m.Q)
	return r
}

// AddMod returns a+b mod q for a, b < q.
func (m Modulus) AddMod(a, b uint64) uint64 {
	s := a + b
	if s >= m.Q || s < a { // s < a catches wraparound (cannot happen for q<2^63)
		s -= m.Q
	}
	return s
}

// SubMod returns a-b mod q for a, b < q.
func (m Modulus) SubMod(a, b uint64) uint64 {
	if a >= b {
		return a - b
	}
	return a + m.Q - b
}

// NegMod returns -a mod q for a < q.
func (m Modulus) NegMod(a uint64) uint64 {
	if a == 0 {
		return 0
	}
	return m.Q - a
}

// PowMod returns a^e mod q by square-and-multiply.
func (m Modulus) PowMod(a, e uint64) uint64 {
	r := uint64(1)
	a %= m.Q
	for e > 0 {
		if e&1 == 1 {
			r = m.MulMod(r, a)
		}
		a = m.MulMod(a, a)
		e >>= 1
	}
	return r
}

// InvMod returns a^-1 mod q (q prime, a != 0 mod q).
func (m Modulus) InvMod(a uint64) uint64 {
	return m.PowMod(a, m.Q-2)
}

// ShoupPrecomp returns floor(w * 2^64 / q), the Shoup companion word for
// multiplying arbitrary values by the fixed operand w.
func (m Modulus) ShoupPrecomp(w uint64) uint64 {
	hi, _ := bits.Div64(w%m.Q, 0, m.Q)
	return hi
}

// MulModShoup returns x*w mod q given w's Shoup companion wShoup. The result
// is fully reduced, and — crucially for lazy-reduction pipelines — the
// identity holds for ANY 64-bit x, not just x < q: the quotient estimate
// floor(x*wShoup/2^64) is off by at most 1, so a single conditional
// subtraction suffices. Kernels therefore feed values in [0, 2q) or [0, 4q)
// straight into a Shoup multiply to re-enter the fully-reduced domain.
func (m Modulus) MulModShoup(x, w, wShoup uint64) uint64 {
	t, _ := bits.Mul64(x, wShoup) // quotient estimate floor(x*w/q) or that minus 1
	r := x*w - t*m.Q
	if r >= m.Q {
		r -= m.Q
	}
	return r
}

// MulModShoupLazy is MulModShoup without the final conditional subtraction:
// the result is in [0, 2q) and congruent to x*w mod q, for any 64-bit x and
// w < q. This is the Harvey lazy butterfly multiply: one high-mul, two
// low-muls, zero branches.
func (m Modulus) MulModShoupLazy(x, w, wShoup uint64) uint64 {
	t, _ := bits.Mul64(x, wShoup)
	return x*w - t*m.Q
}
