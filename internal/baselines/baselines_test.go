package baselines

import (
	"testing"

	"github.com/fastfhe/fast/internal/arch"
)

func TestAllRowsComplete(t *testing.T) {
	rows := All()
	if len(rows) != 8 {
		t.Fatalf("got %d rows, want 8 (Table 4/5)", len(rows))
	}
	names := map[string]bool{}
	for _, r := range rows {
		if r.Name == "" || r.BitWidth == 0 || r.AreaMM2 == 0 {
			t.Errorf("incomplete row %+v", r)
		}
		if names[r.Name] {
			t.Errorf("duplicate row %q", r.Name)
		}
		names[r.Name] = true
	}
	for _, want := range []string{"BTS", "CLake", "ARK", "SHARP", "FAST"} {
		if !names[want] {
			t.Errorf("missing baseline %q", want)
		}
	}
}

func TestPublishedTable5Anchors(t *testing.T) {
	var sharp, fastRow Published
	for _, r := range All() {
		switch r.Name {
		case "SHARP":
			sharp = r
		case "FAST":
			fastRow = r
		}
	}
	if sharp.Bootstrap != 3.12 || fastRow.Bootstrap != 1.38 {
		t.Errorf("bootstrap anchors wrong: %v / %v", sharp.Bootstrap, fastRow.Bootstrap)
	}
	// The headline claim: average 1.85x over SHARP across the four rows.
	ratios := []float64{
		sharp.Bootstrap / fastRow.Bootstrap,
		sharp.HELR256 / fastRow.HELR256,
		sharp.HELR1024 / fastRow.HELR1024,
		sharp.ResNet20 / fastRow.ResNet20,
	}
	sum := 0.0
	for _, r := range ratios {
		sum += r
	}
	if avg := sum / 4; avg < 1.8 || avg > 1.95 {
		t.Errorf("published average speedup %.2f, expected ~1.85", avg)
	}
}

func TestTable6Extra(t *testing.T) {
	extra := Table6Extra()
	if len(extra) != 2 {
		t.Fatalf("want F1 and SHARP_60, got %d rows", len(extra))
	}
	if extra[0].Name != "F1" || extra[0].TmultNS != 470 {
		t.Errorf("F1 row wrong: %+v", extra[0])
	}
}

func TestSimulatableConfigsValid(t *testing.T) {
	for _, cfg := range []arch.Config{SHARP(), SHARPLM(), SHARP8C(), SHARPLM8C(), FASTNoTBM(), FAST36()} {
		if err := cfg.Validate(); err != nil {
			t.Errorf("%s: %v", cfg.Name, err)
		}
	}
}

func TestConfigFeatureMatrix(t *testing.T) {
	if s := SHARP(); s.EnableKLSS || s.EnableHoisting || s.ALU != arch.ALU36 {
		t.Error("SHARP must be a plain 36-bit hybrid machine")
	}
	if lm := SHARPLM(); !lm.EnableHoisting || lm.OnChipMB != 281 {
		t.Error("SHARP_LM must add memory and hoisting")
	}
	if c8 := SHARP8C(); c8.Clusters != 8 {
		t.Error("SHARP_8C must have 8 clusters")
	}
	if nt := FASTNoTBM(); nt.ALU != arch.ALU60 || !nt.EnableKLSS {
		t.Error("FAST-noTBM keeps Aether but drops the TBM")
	}
	if f36 := FAST36(); f36.ALU != arch.ALU36 || f36.EnableKLSS {
		t.Error("FAST36 must disable both TBM and Aether features")
	}
}
