// Package baselines carries the prior-accelerator data FAST is evaluated
// against (paper Tables 4-6): the published hardware descriptions and
// benchmark latencies of BTS, CraterLake, ARK, F1 and the SHARP family, plus
// simulatable configurations of the SHARP-class machines and the Fig. 12
// ablation points so relative claims can be regenerated through the same
// cycle model rather than copied.
package baselines

import "github.com/fastfhe/fast/internal/arch"

// Published is one row of the hardware/performance comparison tables. Exec
// latencies are milliseconds; a zero entry means the paper reports none.
type Published struct {
	Name        string
	OffChipTBps float64
	BitWidth    int
	Lanes       int
	OnChipMB    float64
	AreaMM2     float64

	// Table 5 latencies (ms).
	Bootstrap, HELR256, HELR1024, ResNet20 float64

	// Table 6 amortised mult time per slot.
	Slots   int
	TmultNS float64
}

// All returns the published rows in Table 4/5 order, FAST last.
func All() []Published {
	return []Published{
		{Name: "BTS", OffChipTBps: 1, BitWidth: 64, Lanes: 2048, OnChipMB: 512, AreaMM2: 373.6,
			Bootstrap: 22.88, HELR1024: 28.4, ResNet20: 1910, Slots: 1 << 15, TmultNS: 45.7},
		{Name: "CLake", OffChipTBps: 1, BitWidth: 28, Lanes: 2048, OnChipMB: 282, AreaMM2: 222.7,
			Bootstrap: 6.32, HELR256: 3.81, ResNet20: 321, Slots: 1 << 15, TmultNS: 17.6},
		{Name: "ARK", OffChipTBps: 1, BitWidth: 64, Lanes: 1024, OnChipMB: 588, AreaMM2: 418.3,
			Bootstrap: 3.52, HELR1024: 7.42, ResNet20: 125, Slots: 1 << 15, TmultNS: 14.3},
		{Name: "SHARP", OffChipTBps: 1, BitWidth: 36, Lanes: 1024, OnChipMB: 198, AreaMM2: 178.8,
			Bootstrap: 3.12, HELR256: 1.82, HELR1024: 2.53, ResNet20: 99, Slots: 1 << 15, TmultNS: 12.8},
		{Name: "SHARP_LM", OffChipTBps: 1, BitWidth: 36, Lanes: 1024, OnChipMB: 281, AreaMM2: 215,
			Bootstrap: 2.94, HELR256: 1.72, HELR1024: 2.44, ResNet20: 93.88},
		{Name: "SHARP_8C", OffChipTBps: 1, BitWidth: 36, Lanes: 2048, OnChipMB: 198, AreaMM2: 250,
			Bootstrap: 2.16, HELR256: 1.33, HELR1024: 1.89, ResNet20: 72.34},
		{Name: "SHARP_LM+8C", OffChipTBps: 1, BitWidth: 36, Lanes: 2048, OnChipMB: 281, AreaMM2: 290,
			Bootstrap: 2.03, HELR256: 1.26, HELR1024: 1.83, ResNet20: 68.59},
		{Name: "FAST", OffChipTBps: 1, BitWidth: 60, Lanes: 1024, OnChipMB: 281, AreaMM2: 283.75,
			Bootstrap: 1.38, HELR256: 1.12, HELR1024: 1.33, ResNet20: 60.49, Slots: 1 << 15, TmultNS: 5.4},
	}
}

// Table6Extra returns the rows that appear only in the T_mult,a/s study.
func Table6Extra() []Published {
	return []Published{
		{Name: "F1", BitWidth: 32, Slots: 1, TmultNS: 470},
		{Name: "SHARP_60", BitWidth: 60, Slots: 1 << 15, TmultNS: 11.7},
	}
}

// SHARP returns a simulatable SHARP-class configuration: fixed 36-bit
// datapath, hybrid-only key-switching, no hoisting, 198 MB SRAM.
func SHARP() arch.Config {
	c := arch.FAST()
	c.Name = "SHARP"
	c.ALU = arch.ALU36
	c.OnChipMB = 198
	c.ReservedEvkMB = 140
	c.EnableKLSS = false
	c.EnableHoisting = false
	return c
}

// SHARPLM is SHARP with the large (281 MB) memory and direct hoisting.
func SHARPLM() arch.Config {
	c := SHARP()
	c.Name = "SHARP_LM"
	c.OnChipMB = 281
	c.ReservedEvkMB = 200
	c.EnableHoisting = true
	return c
}

// SHARP8C is the 8-cluster SHARP configuration.
func SHARP8C() arch.Config {
	c := SHARP()
	c.Name = "SHARP_8C"
	c.Clusters = 8
	return c
}

// SHARPLM8C combines the large memory and 8 clusters.
func SHARPLM8C() arch.Config {
	c := SHARPLM()
	c.Name = "SHARP_LM+8C"
	c.Clusters = 8
	return c
}

// FASTNoTBM is the Fig. 12 ablation point: Aether-Hemera dual-method
// selection retained but the datapath is a fixed 60-bit design (so 36-bit
// hybrid kernels waste half of every multiplier).
func FASTNoTBM() arch.Config {
	c := arch.FAST()
	c.Name = "FAST-noTBM"
	c.ALU = arch.ALU60
	return c
}

// FAST36 is the bottom of the Fig. 12 ladder: a 36-bit ALU accelerator with
// neither TBM nor the Aether-Hemera framework (hybrid-only, no hoisting),
// i.e. the same machine class as SHARP but with FAST's memory.
func FAST36() arch.Config {
	c := arch.FAST()
	c.Name = "FAST-36bitALU"
	c.ALU = arch.ALU36
	c.EnableKLSS = false
	c.EnableHoisting = false
	return c
}
