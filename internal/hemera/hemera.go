// Package hemera implements the online half of the dual-method management
// framework (paper §4.1.2): it owns the evaluation-key pool (HBM address
// catalog indexed by level), monitors the upcoming operation stream, reads
// the Aether configuration file, tracks key-switching patterns in the
// history recorder, and schedules batch-wise, prefetched evk transfers so
// key movement overlaps the preceding key-switch execution.
package hemera

import (
	"container/list"
	"fmt"

	"github.com/fastfhe/fast/internal/aether"
	"github.com/fastfhe/fast/internal/obs"
)

// BatchBytes is the transfer granularity: Hemera groups 256 consecutive
// 72-bit lane words per batch (§4.1.2), i.e. 256 * 9 bytes.
const BatchBytes = 256 * 9

// Transfer describes the traffic one key request generates.
type Transfer struct {
	KeyID   string
	Bytes   int64 // bytes actually moved from HBM (0 on a pool hit)
	Batches int   // batch count of the movement
	Hit     bool  // key was already resident
	// Prefetched reports that the history recorder predicted this request,
	// so the transfer overlaps the preceding execution instead of stalling
	// the pipeline.
	Prefetched bool
}

// PoolEntry is a resident evaluation key.
type poolEntry struct {
	id   string
	size int64
}

// Pool is the on-chip evaluation-key store with LRU replacement.
type Pool struct {
	capacity int64
	used     int64
	order    *list.List // front = most recent
	index    map[string]*list.Element
}

// NewPool returns a pool bounded by capacity bytes.
func NewPool(capacity int64) *Pool {
	return &Pool{capacity: capacity, order: list.New(), index: map[string]*list.Element{}}
}

// Used returns the resident bytes.
func (p *Pool) Used() int64 { return p.used }

// Contains reports residency without touching recency.
func (p *Pool) Contains(id string) bool {
	_, ok := p.index[id]
	return ok
}

// Request makes the key resident, evicting least-recently-used keys as
// needed, and reports whether it was already present. Keys bigger than the
// pool are streamed (never resident) and always miss.
func (p *Pool) Request(id string, size int64) (hit bool) {
	if el, ok := p.index[id]; ok {
		p.order.MoveToFront(el)
		return true
	}
	if size > p.capacity {
		return false // streamed through, nothing retained
	}
	for p.used+size > p.capacity {
		back := p.order.Back()
		if back == nil {
			break
		}
		ev := back.Value.(poolEntry)
		p.order.Remove(back)
		delete(p.index, ev.id)
		p.used -= ev.size
	}
	p.index[id] = p.order.PushFront(poolEntry{id, size})
	p.used += size
	return false
}

// historyKey is the pattern the recorder tracks: at a given level, which
// method/hoist configuration ran last time.
type historyKey struct{ level int }

// Recorder is the history recorder: it remembers the key-switching
// configuration used at each level so recurring FHE workflows (bootstrap
// phases repeat the same per-level pattern) can be predicted and their keys
// prefetched.
type Recorder struct {
	seen map[historyKey]aether.Decision
}

// NewRecorder returns an empty recorder.
func NewRecorder() *Recorder { return &Recorder{seen: map[historyKey]aether.Decision{}} }

// Predicts reports whether the decision at this level matches the recorded
// pattern (a prefetch hit).
func (r *Recorder) Predicts(level int, d aether.Decision) bool {
	prev, ok := r.seen[historyKey{level}]
	return ok && prev.Method == d.Method && prev.Hoist == d.Hoist
}

// Record stores the configuration that actually ran.
func (r *Recorder) Record(level int, d aether.Decision) {
	r.seen[historyKey{level}] = d
}

// Manager ties the pool, the recorder and the Aether configuration together.
type Manager struct {
	pool     *Pool
	recorder *Recorder
	cfg      *aether.ConfigFile

	// DisablePrefetch suppresses both the config-file-driven and the
	// history-driven prefetch classification (used by ablation studies).
	DisablePrefetch bool

	// address catalog: the Evk Pool of the paper stores HBM addresses per
	// level and key kind; we model it to expose the lookups.
	addresses map[string]uint64
	nextAddr  uint64

	// Optional instruments (nil when unobserved): pool hit/miss traffic,
	// prefetch-classified misses, batch and byte movement, resident bytes.
	hits, misses, prefetched, batches, bytes *obs.Counter
	resident                                 *obs.Gauge
}

// NewManager builds a manager with the given on-chip key capacity and the
// Aether configuration file (may be nil: every lookup then falls back to
// non-hoisted hybrid).
func NewManager(capacityBytes int64, cfg *aether.ConfigFile) *Manager {
	return &Manager{
		pool:      NewPool(capacityBytes),
		recorder:  NewRecorder(),
		cfg:       cfg,
		addresses: map[string]uint64{},
	}
}

// SetObserver attaches observability instruments under the hemera.pool.*
// namespace: key-request hits and misses, misses the prefetcher hid,
// batch/byte transfer volume, and resident pool bytes. A nil observer
// detaches; RequestKey then pays a single nil check.
func (m *Manager) SetObserver(o *obs.Observer) {
	if o == nil {
		m.hits, m.misses, m.prefetched, m.batches, m.bytes, m.resident = nil, nil, nil, nil, nil, nil
		return
	}
	reg := o.Reg()
	m.hits = reg.Counter("hemera.pool.hits")
	m.misses = reg.Counter("hemera.pool.misses")
	m.prefetched = reg.Counter("hemera.pool.prefetched")
	m.batches = reg.Counter("hemera.pool.batches")
	m.bytes = reg.Counter("hemera.pool.transfer_bytes")
	m.resident = reg.Gauge("hemera.pool.resident_bytes")
}

// Decision exposes the Aether verdict for an op index (monitor lookup).
func (m *Manager) Decision(opIndex int) aether.Decision {
	return m.cfg.DecisionFor(opIndex)
}

// Address returns the stable HBM address of a key, allocating one on first
// use (the pool catalog of §4.1.2).
func (m *Manager) Address(keyID string, size int64) uint64 {
	if a, ok := m.addresses[keyID]; ok {
		return a
	}
	a := m.nextAddr
	m.addresses[keyID] = a
	m.nextAddr += uint64(size)
	return a
}

// RequestKey processes one evaluation-key requirement: pool lookup, LRU
// update, batch-wise transfer sizing, and prefetch classification. A request
// counts as prefetched when the Aether configuration file announced it (the
// monitor reads the file far ahead of execution: ~900 ns per lookup versus
// ~80 us per key transfer, §7.2) or when the history recorder has seen the
// same per-level pattern.
func (m *Manager) RequestKey(keyID string, size int64, level int, d aether.Decision) Transfer {
	if keyID == "" {
		return Transfer{}
	}
	m.Address(keyID, size)
	tr := Transfer{KeyID: keyID}
	tr.Prefetched = !m.DisablePrefetch && (m.cfg != nil || m.recorder.Predicts(level, d))
	m.recorder.Record(level, d)
	tr.Hit = m.pool.Request(keyID, size)
	if !tr.Hit {
		tr.Bytes = size
		tr.Batches = int((size + BatchBytes - 1) / BatchBytes)
	}
	if m.hits != nil {
		if tr.Hit {
			m.hits.Inc()
		} else {
			m.misses.Inc()
			m.bytes.Add(uint64(tr.Bytes))
			m.batches.Add(uint64(tr.Batches))
			if tr.Prefetched {
				m.prefetched.Inc()
			}
		}
		m.resident.Set(m.pool.Used())
	}
	return tr
}

// PoolUsed exposes resident bytes (for utilisation reporting).
func (m *Manager) PoolUsed() int64 { return m.pool.Used() }

// String describes the manager state.
func (m *Manager) String() string {
	return fmt.Sprintf("hemera: %d keys catalogued, %d bytes resident", len(m.addresses), m.pool.Used())
}
