// Package hemera implements the online half of the dual-method management
// framework (paper §4.1.2): it owns the evaluation-key pool (HBM address
// catalog indexed by level), monitors the upcoming operation stream, reads
// the Aether configuration file, tracks key-switching patterns in the
// history recorder, and schedules batch-wise, prefetched evk transfers so
// key movement overlaps the preceding key-switch execution.
package hemera

import (
	"container/list"
	"fmt"

	"github.com/fastfhe/fast/internal/aether"
	"github.com/fastfhe/fast/internal/fault"
	"github.com/fastfhe/fast/internal/obs"
)

// BatchBytes is the transfer granularity: Hemera groups 256 consecutive
// 72-bit lane words per batch (§4.1.2), i.e. 256 * 9 bytes.
const BatchBytes = 256 * 9

// Resilience policy constants. All fault penalties are expressed in
// bytes-equivalent at HBM line rate so the simulator converts them to cycles
// with the same BytesPerCycle factor as useful traffic.
const (
	// maxTransferAttempts bounds the retry loop; the final attempt always
	// completes (modeling escalation to a verified slow path) so the
	// functional result never depends on fault luck.
	maxTransferAttempts = 4
	// timeoutFactor is the per-transfer timeout deadline as a multiple of
	// the nominal transfer time: a latency spike beyond it is abandoned and
	// retried rather than waited out.
	timeoutFactor = 4.0
	// backoffNumerator/Denominator: the first retry backs off for
	// size * 1/8 bytes-equivalent, doubling each further attempt.
	backoffShift = 3
	// degradeMissStreak is how many consecutive unprefetched misses flip the
	// Aether decision to the degraded fallback.
	degradeMissStreak = 4
	// degradePressureBurst is how many pool-pressure events inside
	// pressureWindow requests count as thrash.
	degradePressureBurst = 2
	// pressureWindow is the request distance within which pressure events
	// form a burst.
	pressureWindow = 16
)

// Transfer describes the traffic one key request generates.
type Transfer struct {
	KeyID   string
	Bytes   int64 // useful bytes moved from HBM (0 on a pool hit)
	Batches int   // batch count of the useful movement
	Hit     bool  // key was already resident
	// Prefetched reports that the history recorder predicted this request,
	// so the transfer overlaps the preceding execution instead of stalling
	// the pipeline.
	Prefetched bool

	// Fault/recovery accounting (all zero on the fault-free path):

	// Retries counts transfer attempts that failed mid-flight and were
	// re-issued after exponential backoff.
	Retries int
	// Timeouts counts attempts abandoned at the per-transfer deadline
	// because a latency spike pushed them past timeoutFactor x nominal.
	Timeouts int
	// Refetches counts completed transfers discarded on checksum mismatch
	// and fetched again.
	Refetches int
	// WastedBytes is the extra HBM-channel occupancy (bytes-equivalent at
	// line rate) burned by failed attempts, timed-out attempts, refetches
	// and latency spikes. It busies the channel like useful traffic.
	WastedBytes int64
	// BackoffBytes is the exponential-backoff wait (bytes-equivalent at
	// line rate). The channel is idle during backoff but the pipeline is
	// stalled, so the simulator adds it straight to stall cycles.
	BackoffBytes int64
}

// PoolEntry is a resident evaluation key.
type poolEntry struct {
	id   string
	size int64
}

// Pool is the on-chip evaluation-key store with LRU replacement.
type Pool struct {
	capacity int64
	used     int64
	order    *list.List // front = most recent
	index    map[string]*list.Element
}

// NewPool returns a pool bounded by capacity bytes.
func NewPool(capacity int64) *Pool {
	return &Pool{capacity: capacity, order: list.New(), index: map[string]*list.Element{}}
}

// Used returns the resident bytes.
func (p *Pool) Used() int64 { return p.used }

// Len returns the number of resident keys.
func (p *Pool) Len() int { return p.order.Len() }

// Capacity returns the pool bound in bytes.
func (p *Pool) Capacity() int64 { return p.capacity }

// Flush models a transient pool-pressure event: keys are evicted from the
// LRU end until at most surviving*capacity bytes remain resident. It returns
// the number of keys evicted. surviving outside (0,1) flushes everything.
func (p *Pool) Flush(surviving float64) (evicted int) {
	limit := int64(0)
	if surviving > 0 && surviving < 1 {
		limit = int64(surviving * float64(p.capacity))
	}
	for p.used > limit {
		back := p.order.Back()
		if back == nil {
			break
		}
		ev := back.Value.(poolEntry)
		p.order.Remove(back)
		delete(p.index, ev.id)
		p.used -= ev.size
		evicted++
	}
	return evicted
}

// Contains reports residency without touching recency.
func (p *Pool) Contains(id string) bool {
	_, ok := p.index[id]
	return ok
}

// Request makes the key resident, evicting least-recently-used keys as
// needed, and reports whether it was already present. Keys bigger than the
// pool are streamed (never resident) and always miss.
func (p *Pool) Request(id string, size int64) (hit bool) {
	if el, ok := p.index[id]; ok {
		p.order.MoveToFront(el)
		return true
	}
	if size > p.capacity {
		return false // streamed through, nothing retained
	}
	for p.used+size > p.capacity {
		back := p.order.Back()
		if back == nil {
			break
		}
		ev := back.Value.(poolEntry)
		p.order.Remove(back)
		delete(p.index, ev.id)
		p.used -= ev.size
	}
	p.index[id] = p.order.PushFront(poolEntry{id, size})
	p.used += size
	return false
}

// historyKey is the pattern the recorder tracks: at a given level, which
// method/hoist configuration ran last time.
type historyKey struct{ level int }

// Recorder is the history recorder: it remembers the key-switching
// configuration used at each level so recurring FHE workflows (bootstrap
// phases repeat the same per-level pattern) can be predicted and their keys
// prefetched.
type Recorder struct {
	seen map[historyKey]aether.Decision
}

// NewRecorder returns an empty recorder.
func NewRecorder() *Recorder { return &Recorder{seen: map[historyKey]aether.Decision{}} }

// Predicts reports whether the decision at this level matches the recorded
// pattern (a prefetch hit).
func (r *Recorder) Predicts(level int, d aether.Decision) bool {
	prev, ok := r.seen[historyKey{level}]
	return ok && prev.Method == d.Method && prev.Hoist == d.Hoist
}

// Record stores the configuration that actually ran.
func (r *Recorder) Record(level int, d aether.Decision) {
	r.seen[historyKey{level}] = d
}

// Manager ties the pool, the recorder and the Aether configuration together.
type Manager struct {
	pool     *Pool
	recorder *Recorder
	cfg      *aether.ConfigFile

	// DisablePrefetch suppresses both the config-file-driven and the
	// history-driven prefetch classification (used by ablation studies).
	DisablePrefetch bool

	// address catalog: the Evk Pool of the paper stores HBM addresses per
	// level and key kind; we model it to expose the lookups.
	addresses map[string]uint64
	nextAddr  uint64

	// inj is the optional fault injector (nil = fault-free, single pointer
	// check on the hot path, mirroring the obs nil-safe pattern). When an
	// injector is attached the recovery policies below — retry with
	// exponential backoff, per-transfer timeout, refetch-on-corruption,
	// pressure flushes and Aether degradation — come alive.
	inj *fault.Injector

	// Degradation state: sustained unprefetched misses or pool thrash make
	// MaybeDegrade fall back to the lower-evk-footprint configuration.
	reqIndex        int // RequestKey call counter
	missStreak      int // consecutive unprefetched misses
	pressureBurst   int // pressure events within pressureWindow of each other
	lastPressureReq int // reqIndex of the most recent pressure event

	// Optional instruments (nil when unobserved): pool hit/miss traffic,
	// prefetch-classified misses, batch and byte movement, resident bytes,
	// plus the resilience counters (retries, timeouts, refetches, wasted
	// bytes, pressure evictions, degraded Aether decisions).
	o                                        *obs.Observer
	hits, misses, prefetched, batches, bytes *obs.Counter
	resident                                 *obs.Gauge
	retries, timeouts, refetches             *obs.Counter
	wasted, pressureEvicted, degraded        *obs.Counter
}

// NewManager builds a manager with the given on-chip key capacity and the
// Aether configuration file (may be nil: every lookup then falls back to
// non-hoisted hybrid).
func NewManager(capacityBytes int64, cfg *aether.ConfigFile) *Manager {
	return &Manager{
		pool:      NewPool(capacityBytes),
		recorder:  NewRecorder(),
		cfg:       cfg,
		addresses: map[string]uint64{},
	}
}

// SetObserver attaches observability instruments under the hemera.pool.*
// namespace: key-request hits and misses, misses the prefetcher hid,
// batch/byte transfer volume, and resident pool bytes. A nil observer
// detaches; RequestKey then pays a single nil check.
func (m *Manager) SetObserver(o *obs.Observer) {
	m.o = o
	if o == nil {
		m.hits, m.misses, m.prefetched, m.batches, m.bytes, m.resident = nil, nil, nil, nil, nil, nil
		m.retries, m.timeouts, m.refetches, m.wasted, m.pressureEvicted, m.degraded = nil, nil, nil, nil, nil, nil
		m.inj.SetObserver(nil)
		return
	}
	reg := o.Reg()
	m.hits = reg.Counter("hemera.pool.hits")
	m.misses = reg.Counter("hemera.pool.misses")
	m.prefetched = reg.Counter("hemera.pool.prefetched")
	m.batches = reg.Counter("hemera.pool.batches")
	m.bytes = reg.Counter("hemera.pool.transfer_bytes")
	m.resident = reg.Gauge("hemera.pool.resident_bytes")
	m.retries = reg.Counter("hemera.retries")
	m.timeouts = reg.Counter("hemera.timeouts")
	m.refetches = reg.Counter("hemera.refetches")
	m.wasted = reg.Counter("hemera.wasted_bytes")
	m.pressureEvicted = reg.Counter("hemera.pool.pressure_evictions")
	m.degraded = reg.Counter("aether.degraded_decisions")
	m.inj.SetObserver(o)
}

// SetInjector attaches a fault injector to the transfer path (nil detaches —
// RequestKey then pays a single pointer check and the degradation fallback is
// disarmed). The injector also feeds the fault.injected counters once an
// observer is attached.
func (m *Manager) SetInjector(inj *fault.Injector) {
	m.inj = inj
	inj.SetObserver(m.o)
}

// Injector returns the attached fault injector (nil when fault-free).
func (m *Manager) Injector() *fault.Injector { return m.inj }

// Decision exposes the Aether verdict for an op index (monitor lookup).
func (m *Manager) Decision(opIndex int) aether.Decision {
	return m.cfg.DecisionFor(opIndex)
}

// Address returns the stable HBM address of a key, allocating one on first
// use (the pool catalog of §4.1.2).
func (m *Manager) Address(keyID string, size int64) uint64 {
	if a, ok := m.addresses[keyID]; ok {
		return a
	}
	a := m.nextAddr
	m.addresses[keyID] = a
	m.nextAddr += uint64(size)
	return a
}

// RequestKey processes one evaluation-key requirement: pool lookup, LRU
// update, batch-wise transfer sizing, and prefetch classification. A request
// counts as prefetched when the Aether configuration file announced it (the
// monitor reads the file far ahead of execution: ~900 ns per lookup versus
// ~80 us per key transfer, §7.2) or when the history recorder has seen the
// same per-level pattern.
func (m *Manager) RequestKey(keyID string, size int64, level int, d aether.Decision) Transfer {
	if keyID == "" {
		return Transfer{}
	}
	m.reqIndex++
	m.Address(keyID, size)
	tr := Transfer{KeyID: keyID}
	tr.Prefetched = !m.DisablePrefetch && (m.cfg != nil || m.recorder.Predicts(level, d))
	m.recorder.Record(level, d)
	if m.inj != nil {
		// Pool-pressure fault: a transient capacity squeeze flushes resident
		// keys before the lookup, so this and the following requests thrash.
		if surviving, ok := m.inj.PoolPressure(); ok {
			evicted := m.pool.Flush(surviving)
			if m.pressureEvicted != nil {
				m.pressureEvicted.Add(uint64(evicted))
			}
			if m.reqIndex-m.lastPressureReq <= pressureWindow {
				m.pressureBurst++
			} else {
				m.pressureBurst = 1
			}
			m.lastPressureReq = m.reqIndex
		}
	}
	tr.Hit = m.pool.Request(keyID, size)
	if !tr.Hit {
		tr.Bytes = size
		tr.Batches = int((size + BatchBytes - 1) / BatchBytes)
		if m.inj != nil {
			m.faultTransfer(size, &tr)
		}
	}
	// Degradation bookkeeping: consecutive unpredicted misses indicate the
	// prefetcher has lost the workload's pattern.
	if tr.Hit || tr.Prefetched {
		m.missStreak = 0
	} else {
		m.missStreak++
	}
	if m.hits != nil {
		if tr.Hit {
			m.hits.Inc()
		} else {
			m.misses.Inc()
			m.bytes.Add(uint64(tr.Bytes))
			m.batches.Add(uint64(tr.Batches))
			if tr.Prefetched {
				m.prefetched.Inc()
			}
			if tr.Retries > 0 {
				m.retries.Add(uint64(tr.Retries))
			}
			if tr.Timeouts > 0 {
				m.timeouts.Add(uint64(tr.Timeouts))
			}
			if tr.Refetches > 0 {
				m.refetches.Add(uint64(tr.Refetches))
			}
			if tr.WastedBytes > 0 {
				m.wasted.Add(uint64(tr.WastedBytes))
			}
		}
		m.resident.Set(m.pool.Used())
	}
	return tr
}

// faultTransfer runs the resilient transfer loop for one key of the given
// size, accumulating recovery accounting into tr. Every attempt may suffer a
// latency spike (abandoned at the timeout deadline when it exceeds
// timeoutFactor x nominal), a mid-flight failure (retried after exponential
// backoff), or a checksum mismatch on arrival (refetched). The loop is
// bounded by maxTransferAttempts; the final attempt always completes, so
// faults shape timing and traffic but never functional outcomes.
func (m *Manager) faultTransfer(size int64, tr *Transfer) {
	backoff := size >> backoffShift
	// Attempts 1..maxTransferAttempts-1 may fault; falling out of the loop
	// models the final escalated attempt, which always completes.
	for attempt := 1; attempt < maxTransferAttempts; attempt++ {
		retry, backsOff := false, false
		if factor, ok := m.inj.Spike(); ok {
			if factor > timeoutFactor {
				// Abandoned at the deadline: the channel was busy for the
				// full timeout window, then the attempt was cut.
				tr.Timeouts++
				tr.WastedBytes += int64(timeoutFactor * float64(size))
				retry, backsOff = true, true
			} else {
				// Slow but inside the deadline: completes, channel busy for
				// the extra (factor-1) x nominal time.
				tr.WastedBytes += int64((factor - 1) * float64(size))
			}
		}
		if !retry && m.inj.TransferFails() {
			// Failed mid-flight: on average half the batches had moved.
			tr.Retries++
			tr.WastedBytes += size / 2
			retry, backsOff = true, true
		}
		if !retry && m.inj.Corrupts() {
			// Full transfer arrived but the checksum mismatched: discard and
			// refetch immediately (no backoff — the link itself is healthy).
			tr.Refetches++
			tr.WastedBytes += size
			retry = true
		}
		if !retry {
			return
		}
		if backsOff {
			// Exponential backoff before the next attempt (channel idle,
			// pipeline stalled).
			tr.BackoffBytes += backoff
			backoff <<= 1
		}
	}
}

// Degraded reports whether the manager is currently in the degraded state:
// the prefetcher has missed degradeMissStreak consecutive times, or
// pool-pressure events are arriving in bursts (thrash).
func (m *Manager) Degraded() bool {
	if m.inj == nil {
		return false
	}
	if m.missStreak >= degradeMissStreak {
		return true
	}
	return m.pressureBurst >= degradePressureBurst &&
		m.reqIndex-m.lastPressureReq <= pressureWindow
}

// MaybeDegrade applies the graceful-degradation policy to an Aether decision:
// while the manager observes sustained prefetch misses or pool thrash, the
// decision falls back to the lower-evk-footprint configuration (non-hoisted
// hybrid — the smallest resident key set the hardware always supports) for
// this op, shrinking pool pressure at the cost of a slower key switch. The
// returned bool reports whether the decision was changed; changes are counted
// on aether.degraded_decisions.
func (m *Manager) MaybeDegrade(d aether.Decision) (aether.Decision, bool) {
	if !m.Degraded() {
		return d, false
	}
	fb := aether.Fallback(d.OpIndex, d.Level)
	if d.Method == fb.Method && d.Hoist == fb.Hoist {
		return d, false
	}
	if m.degraded != nil {
		m.degraded.Inc()
	}
	return fb, true
}

// PoolUsed exposes resident bytes (for utilisation reporting).
func (m *Manager) PoolUsed() int64 { return m.pool.Used() }

// String describes the manager state.
func (m *Manager) String() string {
	return fmt.Sprintf("hemera: %d keys catalogued, %d bytes resident", len(m.addresses), m.pool.Used())
}
