package hemera

import (
	"container/list"
	"sync"

	"github.com/fastfhe/fast/internal/obs"
)

// SharedCache is the process-wide evaluation-key tier: one byte-budgeted LRU
// shared by every serving shard, keyed by session + key-switch method +
// galois element (the key ID). It models the memory hierarchy one level
// above the per-Context Hemera pool — the paper's on-chip Evk Pool caches
// keys per accelerator, this caches them per serving process, so N shards
// working the same hot sessions stop holding N duplicate copies of the same
// rotation keys.
//
// Fills are singleflighted: concurrent misses for one key perform one fill
// and the stragglers count as hits once it lands. Each entry remembers the
// shard that filled it; a hit from a different shard counts as a cross-shard
// hit (the metric failover effectiveness is judged by — a session remapped
// to a survivor finds its keys already resident) and ownership transfers to
// the hitting shard. Entries larger than the whole budget stream through:
// they count a miss, run the fill, and are never retained, so one oversized
// key set cannot wipe the cache.
//
// All methods are safe for concurrent use. The fill callback runs OUTSIDE
// the cache lock.
type SharedCache struct {
	mu       sync.Mutex
	capacity int64
	used     int64
	order    *list.List // front = most recent
	index    map[string]*list.Element
	inflight map[string]*sharedFill

	mHits       *obs.Counter
	mMisses     *obs.Counter
	mEvictions  *obs.Counter
	mCrossShard *obs.Counter
	mResident   *obs.Gauge
}

type sharedEntry struct {
	key   string
	size  int64
	shard int // the shard whose fill (or last hit) owns the entry
}

type sharedFill struct {
	done  chan struct{}
	err   error
	shard int
}

// SharedStats is a point-in-time snapshot of the cache counters.
type SharedStats struct {
	Hits, Misses, Evictions, CrossShardHits uint64
	ResidentBytes, Capacity                 int64
	ResidentKeys                            int
}

// NewSharedCache returns a shared evk cache bounded by capacity bytes.
// capacity <= 0 disables retention entirely (every request misses and
// streams through) while keeping the accounting live. reg registers the
// hemera.shared.* instruments (nil disables them).
func NewSharedCache(capacity int64, reg *obs.Registry) *SharedCache {
	c := &SharedCache{
		capacity: capacity,
		order:    list.New(),
		index:    map[string]*list.Element{},
		inflight: map[string]*sharedFill{},
	}
	if reg != nil {
		c.mHits = reg.Counter("hemera.shared.hits")
		c.mMisses = reg.Counter("hemera.shared.misses")
		c.mEvictions = reg.Counter("hemera.shared.evictions")
		c.mCrossShard = reg.Counter("hemera.shared.cross_shard_hits")
		c.mResident = reg.Gauge("hemera.shared.resident_bytes")
	}
	return c
}

// GetOrFill resolves one evaluation-key request from shard `shard`:
//
//   - resident key: counts a hit (cross-shard when a different shard filled
//     it), refreshes recency, returns immediately — fill is not called;
//   - first miss: runs fill (outside the lock), then makes the key resident
//     (evicting LRU entries past the byte budget) and counts a miss;
//   - concurrent miss: waits for the in-flight fill and counts a hit (the
//     transfer was shared), cross-shard when the filler was another shard.
//
// A fill error is returned to the caller that ran it AND to every waiter;
// nothing is retained. fill == nil is treated as an instant successful fill.
func (c *SharedCache) GetOrFill(key string, shard int, size int64, fill func() error) error {
	for {
		c.mu.Lock()
		if el, ok := c.index[key]; ok {
			e := el.Value.(*sharedEntry)
			c.order.MoveToFront(el)
			cross := e.shard != shard
			e.shard = shard
			c.mu.Unlock()
			c.mHits.Inc()
			if cross {
				c.mCrossShard.Inc()
			}
			return nil
		}
		if f, ok := c.inflight[key]; ok {
			c.mu.Unlock()
			<-f.done
			if f.err != nil {
				return f.err
			}
			// The fill landed; loop to take the resident-hit path (which
			// also handles the pathological case of the entry having been
			// evicted already — then this caller becomes the next filler).
			continue
		}
		f := &sharedFill{done: make(chan struct{}), shard: shard}
		c.inflight[key] = f
		c.mu.Unlock()

		c.mMisses.Inc()
		var err error
		if fill != nil {
			err = fill()
		}

		c.mu.Lock()
		delete(c.inflight, key)
		if err == nil && size <= c.capacity && size > 0 {
			c.insertLocked(key, shard, size)
		}
		c.mu.Unlock()
		f.err = err
		close(f.done)
		return err
	}
}

// insertLocked makes key resident, evicting from the LRU end to fit.
func (c *SharedCache) insertLocked(key string, shard int, size int64) {
	for c.used+size > c.capacity {
		back := c.order.Back()
		if back == nil {
			break
		}
		ev := back.Value.(*sharedEntry)
		c.order.Remove(back)
		delete(c.index, ev.key)
		c.used -= ev.size
		c.mEvictions.Inc()
	}
	c.index[key] = c.order.PushFront(&sharedEntry{key: key, size: size, shard: shard})
	c.used += size
	c.mResident.Set(c.used)
}

// Contains reports residency without touching recency (tests/telemetry).
func (c *SharedCache) Contains(key string) bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	_, ok := c.index[key]
	return ok
}

// Stats snapshots the counters.
func (c *SharedCache) Stats() SharedStats {
	c.mu.Lock()
	keys := c.order.Len()
	used := c.used
	c.mu.Unlock()
	return SharedStats{
		Hits:           c.mHits.Value(),
		Misses:         c.mMisses.Value(),
		Evictions:      c.mEvictions.Value(),
		CrossShardHits: c.mCrossShard.Value(),
		ResidentBytes:  used,
		Capacity:       c.capacity,
		ResidentKeys:   keys,
	}
}
