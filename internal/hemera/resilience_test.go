package hemera

import (
	"testing"

	"github.com/fastfhe/fast/internal/aether"
	"github.com/fastfhe/fast/internal/costmodel"
	"github.com/fastfhe/fast/internal/fault"
	"github.com/fastfhe/fast/internal/obs"
)

// ---- Pool eviction ordering under capacity pressure (degradation path
// dependency: Flush and LRU order decide which keys thrash first). ----

func TestPoolEvictionOrderUnderPressure(t *testing.T) {
	p := NewPool(100)
	p.Request("a", 30)
	p.Request("b", 30)
	p.Request("c", 30) // order MRU->LRU: c b a
	p.Request("a", 30) // touch a: a c b
	if p.Len() != 3 || p.Used() != 90 {
		t.Fatalf("resident %d keys / %d bytes, want 3/90", p.Len(), p.Used())
	}
	// A 40-byte key evicts exactly the LRU key b (freeing 30 is enough);
	// c survives because eviction stops as soon as the key fits.
	p.Request("d", 40)
	if p.Contains("b") {
		t.Error("b (LRU) should have been evicted first")
	}
	if !p.Contains("a") || !p.Contains("c") || !p.Contains("d") {
		t.Error("a, c and d should be resident")
	}
	if p.Used() != 100 {
		t.Errorf("used = %d, want 100", p.Used())
	}
	// A further 40-byte key at full occupancy needs two evictions, strictly
	// from the LRU end (order MRU->LRU is now d a c): c goes, then a.
	p.Request("e", 40)
	if p.Contains("c") || p.Contains("a") {
		t.Error("c and a should have been evicted in LRU order")
	}
	if !p.Contains("d") || !p.Contains("e") {
		t.Error("d (recent) and e (incoming) should be resident")
	}
	if p.Used() != 80 {
		t.Errorf("used = %d, want 80", p.Used())
	}
}

func TestPoolFlush(t *testing.T) {
	p := NewPool(100)
	p.Request("a", 25)
	p.Request("b", 25)
	p.Request("c", 25)
	p.Request("d", 25)
	// Flush to half capacity: the two LRU keys (a, b) go.
	if ev := p.Flush(0.5); ev != 2 {
		t.Fatalf("evicted %d keys, want 2", ev)
	}
	if p.Contains("a") || p.Contains("b") || !p.Contains("c") || !p.Contains("d") {
		t.Error("Flush must evict from the LRU end")
	}
	if p.Used() != 50 {
		t.Errorf("used = %d, want 50", p.Used())
	}
	// Out-of-range surviving fraction flushes everything.
	if ev := p.Flush(0); ev != 2 || p.Used() != 0 || p.Len() != 0 {
		t.Errorf("full flush: evicted %d, used %d, len %d", ev, p.Used(), p.Len())
	}
	// Flushing an empty pool is a no-op.
	if ev := p.Flush(0.5); ev != 0 {
		t.Errorf("empty flush evicted %d", ev)
	}
}

// ---- Recorder predict/record edge cases. ----

func TestRecorderLevelReuseAndDecisionFlip(t *testing.T) {
	r := NewRecorder()
	hybrid := aether.Decision{Method: costmodel.Hybrid, Hoist: 1}
	klss4 := aether.Decision{Method: costmodel.KLSS, Hoist: 4}

	// Level reuse: re-recording the same level overwrites, not accumulates.
	r.Record(3, hybrid)
	r.Record(3, klss4)
	if r.Predicts(3, hybrid) {
		t.Error("overwritten pattern must not predict")
	}
	if !r.Predicts(3, klss4) {
		t.Error("latest pattern must predict")
	}

	// Decision flip: same method, different hoist is a different pattern.
	klss8 := aether.Decision{Method: costmodel.KLSS, Hoist: 8}
	if r.Predicts(3, klss8) {
		t.Error("hoist flip must break the prediction")
	}
	r.Record(3, klss8)
	if !r.Predicts(3, klss8) || r.Predicts(3, klss4) {
		t.Error("recorder must track the flipped decision")
	}

	// Levels are independent.
	if r.Predicts(4, klss8) {
		t.Error("level 4 was never recorded")
	}
}

// ---- Resilient transfer path. ----

func reqDecision() aether.Decision {
	return aether.Decision{Method: costmodel.Hybrid, Hoist: 1}
}

func TestFaultTransferRetryAccounting(t *testing.T) {
	m := NewManager(1<<20, nil)
	m.SetInjector(fault.NewInjector(fault.Plan{Seed: 1, TransferFailure: 1}))
	const size = 1 << 16
	tr := m.RequestKey("k", size, 0, reqDecision())
	if tr.Hit {
		t.Fatal("first request cannot hit")
	}
	// Probability-1 failures: attempts 1..3 fail with backoff, the final
	// escalated attempt completes.
	if tr.Retries != maxTransferAttempts-1 {
		t.Errorf("retries = %d, want %d", tr.Retries, maxTransferAttempts-1)
	}
	if want := int64(maxTransferAttempts-1) * size / 2; tr.WastedBytes != want {
		t.Errorf("wasted = %d, want %d", tr.WastedBytes, want)
	}
	// Backoff doubles per retry: size/8 + size/4 + size/2.
	if want := int64(size>>backoffShift) * 7; tr.BackoffBytes != want {
		t.Errorf("backoff = %d, want %d", tr.BackoffBytes, want)
	}
	if tr.Bytes != size {
		t.Errorf("useful bytes = %d, want %d", tr.Bytes, size)
	}
}

func TestFaultTransferCorruptionRefetchesWithoutBackoff(t *testing.T) {
	m := NewManager(1<<20, nil)
	m.SetInjector(fault.NewInjector(fault.Plan{Seed: 1, Corruption: 1}))
	const size = 1 << 16
	tr := m.RequestKey("k", size, 0, reqDecision())
	if tr.Refetches != maxTransferAttempts-1 {
		t.Errorf("refetches = %d, want %d", tr.Refetches, maxTransferAttempts-1)
	}
	if want := int64(maxTransferAttempts-1) * size; tr.WastedBytes != want {
		t.Errorf("wasted = %d, want %d", tr.WastedBytes, want)
	}
	if tr.BackoffBytes != 0 {
		t.Errorf("refetches back off: %d bytes", tr.BackoffBytes)
	}
}

func TestFaultTransferTimeouts(t *testing.T) {
	m := NewManager(1<<20, nil)
	// SpikeFactor 10 > timeoutFactor 4: every spiked attempt times out.
	m.SetInjector(fault.NewInjector(fault.Plan{Seed: 1, LatencySpike: 1, SpikeFactor: 10}))
	const size = 1 << 16
	tr := m.RequestKey("k", size, 0, reqDecision())
	if tr.Timeouts != maxTransferAttempts-1 {
		t.Errorf("timeouts = %d, want %d", tr.Timeouts, maxTransferAttempts-1)
	}
	if want := int64(maxTransferAttempts-1) * int64(timeoutFactor*size); tr.WastedBytes != want {
		t.Errorf("wasted = %d, want %d", tr.WastedBytes, want)
	}
	if tr.BackoffBytes == 0 {
		t.Error("timed-out attempts must back off")
	}

	// A mild spike (factor <= timeoutFactor) completes slowly: no timeout,
	// (factor-1) x size extra channel occupancy.
	m2 := NewManager(1<<20, nil)
	m2.SetInjector(fault.NewInjector(fault.Plan{Seed: 1, LatencySpike: 1, SpikeFactor: 3}))
	tr2 := m2.RequestKey("k", size, 0, reqDecision())
	if tr2.Timeouts != 0 || tr2.Retries != 0 {
		t.Errorf("mild spike must complete: %+v", tr2)
	}
	if want := int64(2 * size); tr2.WastedBytes != want {
		t.Errorf("mild spike wasted %d, want %d", tr2.WastedBytes, want)
	}
}

func TestPoolPressureFlushesAndDegrades(t *testing.T) {
	m := NewManager(1<<20, nil)
	m.SetInjector(fault.NewInjector(fault.Plan{Seed: 2, PoolPressure: 1}))
	d := aether.Decision{Method: costmodel.KLSS, Hoist: 4}
	// Every request suffers a pressure flush; after the second event inside
	// the window the manager reports thrash and degrades KLSS/hoisted
	// decisions to non-hoisted hybrid.
	m.RequestKey("a", 1000, 0, d)
	if m.Degraded() {
		t.Fatal("one pressure event is not yet a burst")
	}
	m.RequestKey("b", 1000, 0, d)
	if !m.Degraded() {
		t.Fatal("two pressure events inside the window must degrade")
	}
	got, changed := m.MaybeDegrade(d)
	if !changed || got.Method != costmodel.Hybrid || got.Hoist != 1 {
		t.Errorf("MaybeDegrade = %+v (changed=%v), want non-hoisted hybrid", got, changed)
	}
	// The fallback decision itself is never "changed" again.
	if _, changed := m.MaybeDegrade(got); changed {
		t.Error("fallback decision must be stable under MaybeDegrade")
	}
}

func TestMissStreakDegradesAndRecovers(t *testing.T) {
	m := NewManager(1<<20, nil)
	m.DisablePrefetch = true                                                  // force unpredicted misses
	m.SetInjector(fault.NewInjector(fault.Plan{Seed: 3, Corruption: 0.0001})) // enabled, but ~never fires
	d := aether.Decision{Method: costmodel.KLSS, Hoist: 2}
	for i := 0; i < degradeMissStreak; i++ {
		if m.Degraded() {
			t.Fatalf("degraded after only %d misses", i)
		}
		m.RequestKey(keyName(i), 100, 0, d)
	}
	if !m.Degraded() {
		t.Fatal("miss streak must degrade")
	}
	// A pool hit resets the streak.
	m.RequestKey(keyName(0), 100, 0, d)
	if m.Degraded() {
		t.Error("a hit must clear the miss streak")
	}
}

func TestNoDegradationWithoutInjector(t *testing.T) {
	m := NewManager(1<<20, nil)
	m.DisablePrefetch = true
	d := aether.Decision{Method: costmodel.KLSS, Hoist: 2}
	for i := 0; i < 3*degradeMissStreak; i++ {
		m.RequestKey(keyName(i), 100, 0, d)
	}
	if m.Degraded() {
		t.Error("fault-free managers never degrade (behavior must match the seed)")
	}
	if _, changed := m.MaybeDegrade(d); changed {
		t.Error("fault-free MaybeDegrade must be the identity")
	}
}

func TestResilienceMetrics(t *testing.T) {
	o := obs.New()
	m := NewManager(1<<20, nil)
	m.SetObserver(o)
	m.SetInjector(fault.NewInjector(fault.Plan{Seed: 4, TransferFailure: 1}))
	m.RequestKey("k", 1<<12, 0, reqDecision())
	reg := o.Reg()
	if reg.Counter("hemera.retries").Value() != uint64(maxTransferAttempts-1) {
		t.Errorf("hemera.retries = %d", reg.Counter("hemera.retries").Value())
	}
	if reg.Counter("hemera.wasted_bytes").Value() == 0 {
		t.Error("hemera.wasted_bytes did not accumulate")
	}
	if reg.Counter("fault.injected").Value() == 0 {
		t.Error("fault.injected did not accumulate (injector must inherit the manager's observer)")
	}
	// Detaching zeroes the instrument set without breaking requests.
	m.SetObserver(nil)
	m.RequestKey("k2", 1<<12, 0, reqDecision())
}

func keyName(i int) string {
	return string(rune('a'+i%26)) + "key"
}

// ---- Zero-cost disabled path. ----

// A fault-free manager (nil injector) must not pay for the resilience
// machinery: the request hot path adds no allocations, mirroring the obs
// nil-safe pattern where the disabled state is a single pointer check.
func TestNilInjectorRequestKeyZeroAllocs(t *testing.T) {
	m := NewManager(1<<20, nil)
	m.DisablePrefetch = true
	d := reqDecision()
	m.RequestKey("warm", 1<<10, 0, d) // populate the pool
	allocs := testing.AllocsPerRun(100, func() {
		m.RequestKey("warm", 1<<10, 0, d) // pure hit path
	})
	if allocs != 0 {
		t.Errorf("nil-injector hit path allocates %.0f objects per request, want 0", allocs)
	}
	if m.Injector() != nil {
		t.Fatal("manager without SetInjector must hold a nil injector")
	}
	// And MaybeDegrade must be the identity at zero cost.
	allocs = testing.AllocsPerRun(100, func() {
		if _, changed := m.MaybeDegrade(d); changed {
			t.Fatal("fault-free MaybeDegrade changed a decision")
		}
	})
	if allocs != 0 {
		t.Errorf("nil-injector MaybeDegrade allocates %.0f objects, want 0", allocs)
	}
}
