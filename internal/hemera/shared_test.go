package hemera

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"

	"github.com/fastfhe/fast/internal/obs"
)

func newTestShared(capacity int64) (*SharedCache, *obs.Registry) {
	reg := obs.NewRegistry()
	return NewSharedCache(capacity, reg), reg
}

// TestSharedCacheHitMissEvict: basic LRU-by-bytes behavior plus the metric
// surface — misses fill, hits refresh recency, the byte budget evicts from
// the cold end, and resident_bytes tracks exactly.
func TestSharedCacheHitMissEvict(t *testing.T) {
	c, reg := newTestShared(100)
	for i := 0; i < 3; i++ { // 3 x 40 bytes: third insert evicts the first
		if err := c.GetOrFill(fmt.Sprintf("k%d", i), 0, 40, nil); err != nil {
			t.Fatal(err)
		}
	}
	st := c.Stats()
	if st.Misses != 3 || st.Hits != 0 {
		t.Fatalf("misses=%d hits=%d, want 3/0", st.Misses, st.Hits)
	}
	if st.Evictions != 1 || c.Contains("k0") {
		t.Fatalf("evictions=%d contains(k0)=%v, want 1/false", st.Evictions, c.Contains("k0"))
	}
	if st.ResidentBytes != 80 || st.ResidentBytes > st.Capacity {
		t.Fatalf("resident=%d capacity=%d", st.ResidentBytes, st.Capacity)
	}
	if g := reg.Gauge("hemera.shared.resident_bytes").Value(); g != 80 {
		t.Fatalf("resident_bytes gauge = %d, want 80", g)
	}
	// k1 is resident: hit, no new fill.
	if err := c.GetOrFill("k1", 0, 40, func() error { t.Fatal("fill ran on hit"); return nil }); err != nil {
		t.Fatal(err)
	}
	if st := c.Stats(); st.Hits != 1 {
		t.Fatalf("hits=%d, want 1", st.Hits)
	}
}

// TestSharedCacheCrossShardAccounting: a key filled by shard 0 and hit by
// shard 1 counts a cross-shard hit and transfers ownership, so a third
// access from shard 1 is a plain hit.
func TestSharedCacheCrossShardAccounting(t *testing.T) {
	c, _ := newTestShared(1000)
	if err := c.GetOrFill("s1/rot:1", 0, 10, nil); err != nil {
		t.Fatal(err)
	}
	if err := c.GetOrFill("s1/rot:1", 1, 10, nil); err != nil {
		t.Fatal(err)
	}
	st := c.Stats()
	if st.CrossShardHits != 1 {
		t.Fatalf("cross-shard hits = %d, want 1", st.CrossShardHits)
	}
	if err := c.GetOrFill("s1/rot:1", 1, 10, nil); err != nil {
		t.Fatal(err)
	}
	if st := c.Stats(); st.CrossShardHits != 1 {
		t.Fatalf("cross-shard hits after same-shard re-hit = %d, want 1", st.CrossShardHits)
	}
}

// TestSharedCacheOversizedStreamsThrough: an entry bigger than the whole
// budget runs its fill but is never retained and evicts nothing.
func TestSharedCacheOversizedStreamsThrough(t *testing.T) {
	c, _ := newTestShared(100)
	if err := c.GetOrFill("small", 0, 60, nil); err != nil {
		t.Fatal(err)
	}
	ran := false
	if err := c.GetOrFill("huge", 0, 500, func() error { ran = true; return nil }); err != nil {
		t.Fatal(err)
	}
	if !ran {
		t.Fatal("oversized fill did not run")
	}
	if c.Contains("huge") || !c.Contains("small") {
		t.Fatal("oversized entry retained or displaced resident keys")
	}
	if st := c.Stats(); st.ResidentBytes != 60 {
		t.Fatalf("resident=%d, want 60", st.ResidentBytes)
	}
}

// TestSharedCacheFillErrorNotRetained: a failed fill propagates its error to
// the filler and all waiters and leaves nothing resident; the next request
// retries the fill.
func TestSharedCacheFillErrorNotRetained(t *testing.T) {
	c, _ := newTestShared(100)
	boom := errors.New("transfer failed")
	if err := c.GetOrFill("k", 0, 10, func() error { return boom }); !errors.Is(err, boom) {
		t.Fatalf("err = %v, want boom", err)
	}
	if c.Contains("k") {
		t.Fatal("failed fill retained")
	}
	if err := c.GetOrFill("k", 0, 10, nil); err != nil {
		t.Fatalf("retry after failed fill: %v", err)
	}
	if !c.Contains("k") {
		t.Fatal("retry did not fill")
	}
}

// TestSharedCacheSingleflightFaultStorm: many goroutines across many shards
// demand the same small key set concurrently; fills must be singleflighted
// (at most one per key per residency period), the budget invariant must hold
// throughout, and with two shards hammering identical keys cross-shard hits
// must appear. Runs under -race via `make chaos`.
func TestSharedCacheSingleflightFaultStorm(t *testing.T) {
	c, _ := newTestShared(1000)
	var fills atomic.Int64
	var wg sync.WaitGroup
	const workers, rounds = 16, 200
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < rounds; i++ {
				key := fmt.Sprintf("k%d", i%4) // 4 hot keys, all fit
				if err := c.GetOrFill(key, w%2, 100, func() error {
					fills.Add(1)
					return nil
				}); err != nil {
					t.Errorf("GetOrFill: %v", err)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	st := c.Stats()
	// 4 keys, all permanently resident after first fill: exactly 4 fills.
	if fills.Load() != 4 {
		t.Fatalf("fills = %d, want 4 (singleflight violated)", fills.Load())
	}
	if st.ResidentBytes != 400 || st.ResidentBytes > st.Capacity {
		t.Fatalf("resident=%d capacity=%d", st.ResidentBytes, st.Capacity)
	}
	if st.CrossShardHits == 0 {
		t.Fatal("two shards on identical keys produced no cross-shard hits")
	}
	if st.Hits+st.Misses != workers*rounds {
		t.Fatalf("hits+misses = %d, want %d", st.Hits+st.Misses, workers*rounds)
	}
}
