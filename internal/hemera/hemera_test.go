package hemera

import (
	"strings"
	"testing"

	"github.com/fastfhe/fast/internal/aether"
	"github.com/fastfhe/fast/internal/costmodel"
)

func TestPoolLRU(t *testing.T) {
	p := NewPool(100)
	if p.Request("a", 40) {
		t.Error("first request should miss")
	}
	if !p.Request("a", 40) {
		t.Error("second request should hit")
	}
	p.Request("b", 40)
	if p.Used() != 80 {
		t.Errorf("used = %d, want 80", p.Used())
	}
	// c (40) forces eviction of the LRU entry, which is a (b was touched
	// later... a was touched more recently than b? a was requested twice,
	// then b: LRU order is b oldest after a's second touch). Touch a to be
	// explicit.
	p.Request("a", 40)
	p.Request("c", 40)
	if p.Contains("b") {
		t.Error("b should have been evicted as LRU")
	}
	if !p.Contains("a") || !p.Contains("c") {
		t.Error("a and c should be resident")
	}
	if p.Used() != 80 {
		t.Errorf("used = %d, want 80 after eviction", p.Used())
	}
}

func TestPoolOversizedKeyStreams(t *testing.T) {
	p := NewPool(10)
	if p.Request("big", 100) {
		t.Error("oversized key cannot hit")
	}
	if p.Used() != 0 {
		t.Error("oversized key must not be retained")
	}
	if p.Request("big", 100) {
		t.Error("oversized key misses every time")
	}
}

func TestRecorder(t *testing.T) {
	r := NewRecorder()
	d := aether.Decision{Method: costmodel.KLSS, Hoist: 4}
	if r.Predicts(10, d) {
		t.Error("empty recorder cannot predict")
	}
	r.Record(10, d)
	if !r.Predicts(10, d) {
		t.Error("recorder should predict a repeated pattern")
	}
	if r.Predicts(10, aether.Decision{Method: costmodel.Hybrid, Hoist: 4}) {
		t.Error("different method must not match")
	}
	if r.Predicts(11, d) {
		t.Error("different level must not match")
	}
}

func TestManagerTransfers(t *testing.T) {
	m := NewManager(1<<20, nil) // 1 MB pool, no config file
	d := aether.Decision{Method: costmodel.Hybrid, Hoist: 1}

	tr := m.RequestKey("hybrid/rot1", 512<<10, 5, d)
	if tr.Hit || tr.Bytes != 512<<10 {
		t.Fatalf("first request: %+v", tr)
	}
	if tr.Prefetched {
		t.Error("no config file and no history: not prefetched")
	}
	wantBatches := int((512<<10 + BatchBytes - 1) / BatchBytes)
	if tr.Batches != wantBatches {
		t.Errorf("batches = %d, want %d", tr.Batches, wantBatches)
	}

	tr = m.RequestKey("hybrid/rot1", 512<<10, 5, d)
	if !tr.Hit || tr.Bytes != 0 || tr.Batches != 0 {
		t.Fatalf("second request should hit: %+v", tr)
	}

	// Same level pattern on a different key: history predicts it.
	tr = m.RequestKey("hybrid/rot2", 512<<10, 5, d)
	if !tr.Prefetched {
		t.Error("history recorder should predict the repeated level pattern")
	}
}

func TestManagerWithConfigFilePrefetches(t *testing.T) {
	cfg := &aether.ConfigFile{Workload: "w"}
	m := NewManager(1<<20, cfg)
	tr := m.RequestKey("hybrid/relin", 100, 3, aether.Decision{})
	if !tr.Prefetched {
		t.Error("config-file-driven requests are prefetched")
	}
}

func TestManagerEmptyKey(t *testing.T) {
	m := NewManager(100, nil)
	if tr := m.RequestKey("", 10, 0, aether.Decision{}); tr.Bytes != 0 || tr.Hit {
		t.Error("empty key id should be a no-op")
	}
}

func TestAddressesStable(t *testing.T) {
	m := NewManager(1<<20, nil)
	a1 := m.Address("k1", 100)
	a2 := m.Address("k2", 100)
	if a1 == a2 {
		t.Error("distinct keys need distinct addresses")
	}
	if m.Address("k1", 100) != a1 {
		t.Error("address must be stable")
	}
}

func TestManagerString(t *testing.T) {
	m := NewManager(1<<20, nil)
	m.RequestKey("k", 100, 0, aether.Decision{})
	s := m.String()
	if !strings.Contains(s, "hemera") {
		t.Errorf("String() = %q", s)
	}
	if m.PoolUsed() != 100 {
		t.Errorf("PoolUsed = %d", m.PoolUsed())
	}
}

func TestManagerDecisionLookup(t *testing.T) {
	cfg := &aether.ConfigFile{Decisions: []aether.Decision{{OpIndex: 2, Method: costmodel.KLSS, Hoist: 8}}}
	m := NewManager(1, cfg)
	if d := m.Decision(2); d.Method != costmodel.KLSS || d.Hoist != 8 {
		t.Error("decision lookup failed")
	}
	if d := m.Decision(0); d.Method != costmodel.Hybrid {
		t.Error("default decision should be hybrid")
	}
}
