package fast

import (
	"sync"

	"github.com/fastfhe/fast/internal/aether"
	"github.com/fastfhe/fast/internal/ckks"
	"github.com/fastfhe/fast/internal/costmodel"
	"github.com/fastfhe/fast/internal/fault"
	"github.com/fastfhe/fast/internal/hemera"
)

// FaultPlan configures deterministic fault injection on the modeled
// evaluation-key transfer path (see WithFaultPlan). Each probability is drawn
// independently per transfer attempt from a seeded stream: a fixed Seed
// reproduces the exact same fault pattern run after run.
//
// Faults perturb the modeled Hemera transfer/pool machinery only — recovery
// (retries, refetches, timeouts, degradation) is exercised and accounted in
// Context.FaultStats and the observer's fault.*/hemera.* instruments, but
// the homomorphic computation itself is untouched: decrypted results are
// bit-exact with a fault-free run. That invariant is what the chaos suite
// (make chaos) asserts.
type FaultPlan struct {
	// Seed selects the deterministic fault stream (0 is a valid seed).
	Seed uint64
	// TransferFailure is the probability a key transfer attempt fails
	// outright and is retried with exponential backoff.
	TransferFailure float64
	// LatencySpike is the probability a transfer is slowed by SpikeFactor;
	// spikes beyond the timeout threshold abort and retry the transfer.
	LatencySpike float64
	// SpikeFactor is the slowdown multiplier of a latency spike (default 8).
	SpikeFactor float64
	// Corruption is the probability a completed transfer fails its checksum
	// and is refetched immediately (no backoff — the link is healthy).
	Corruption float64
	// PoolPressure is the probability a request suffers an external pool
	// flush; bursts of pressure degrade subsequent key-switch decisions to
	// the smallest-footprint method.
	PoolPressure float64
	// PressureFraction is the fraction of pool capacity surviving a
	// pressure flush (default 0.5).
	PressureFraction float64
}

// Enabled reports whether any fault kind has a nonzero probability.
func (p FaultPlan) Enabled() bool { return p.internal().Enabled() }

func (p FaultPlan) internal() fault.Plan {
	return fault.Plan{
		Seed:             p.Seed,
		TransferFailure:  p.TransferFailure,
		LatencySpike:     p.LatencySpike,
		SpikeFactor:      p.SpikeFactor,
		Corruption:       p.Corruption,
		PoolPressure:     p.PoolPressure,
		PressureFraction: p.PressureFraction,
	}
}

// FaultScenario returns a named preset fault plan: "transfer", "spike",
// "corrupt", "pressure", "all" or "none". These mirror the simulator's
// -fault-plan scenarios so the functional and performance layers can be
// chaos-tested under the same conditions.
func FaultScenario(name string) (FaultPlan, error) {
	ip, err := fault.Scenario(name)
	if err != nil {
		return FaultPlan{}, err
	}
	return FaultPlan{
		Seed:             ip.Seed,
		TransferFailure:  ip.TransferFailure,
		LatencySpike:     ip.LatencySpike,
		SpikeFactor:      ip.SpikeFactor,
		Corruption:       ip.Corruption,
		PoolPressure:     ip.PoolPressure,
		PressureFraction: ip.PressureFraction,
	}, nil
}

// FaultStats summarises the recovery activity of the modeled key-transfer
// path since the context was built. All zeros when no fault plan is attached.
type FaultStats struct {
	// Transfers counts modeled evaluation-key requests (one per key-switch).
	Transfers int
	// PoolHits / PoolMisses split requests by key-pool residency.
	PoolHits, PoolMisses int
	// Retries, Timeouts and Refetches count recovery actions on the
	// transfer path.
	Retries, Timeouts, Refetches int
	// DegradedDecisions counts key-switch decisions the degradation
	// fallback rewrote to the smallest-footprint method.
	DegradedDecisions int
	// WastedBytes is the modeled traffic burned by failed attempts;
	// BackoffBytes the modeled idle-channel wait, both in bytes-equivalent
	// at the HBM line rate.
	WastedBytes, BackoffBytes int64
}

// faultState runs a Hemera key-pool manager alongside the functional
// evaluator, feeding it one modeled transfer per key-switch so fault
// injection exercises the full retry/refetch/degrade machinery without
// perturbing computed values. Calls are serialised by a mutex: the fault
// stream is deterministic for deterministic op orders, and safe (though
// order-dependent) under concurrency.
type faultState struct {
	mu    sync.Mutex
	mgr   *hemera.Manager
	plan  FaultPlan
	stats FaultStats
}

// evkPoolKeys sizes the modeled key pool: deliberately smaller than a
// typical working set (relin + a few rotation keys per method) so chaos
// workloads keep exercising real transfers — hits and capacity misses both
// occur, as on the accelerator's on-chip pool.
const evkPoolKeys = 4

// evkBytes estimates the evaluation-key footprint for one key-switch at the
// given level: 2 polynomials per decomposition group over the extended chain.
func evkBytes(params *ckks.Parameters, level int, m Method) int64 {
	n := int64(params.N())
	if m == KLSS && params.SupportsKLSS() {
		limbs := int64(level + 1 + len(params.TChain()))
		return 2 * int64(params.BetaT(level)) * limbs * n * 8
	}
	limbs := int64(level + 1 + len(params.PChain()))
	return 2 * int64(params.Beta(level)) * limbs * n * 8
}

func newFaultState(params *ckks.Parameters, plan FaultPlan) *faultState {
	capacity := evkPoolKeys * evkBytes(params, params.MaxLevel(), Hybrid)
	fs := &faultState{mgr: hemera.NewManager(capacity, nil), plan: plan}
	fs.mgr.SetInjector(fault.NewInjector(plan.internal()))
	return fs
}

// request models one evaluation-key fetch. It returns the (possibly
// degraded) method so callers could, in a future scheduling layer, react to
// degradation; today the functional compute path always uses the caller's
// method, keeping results bit-exact under faults.
func (f *faultState) request(params *ckks.Parameters, keyID string, level int, m Method) {
	if f == nil {
		return
	}
	method := costmodel.Hybrid
	if m == KLSS {
		method = costmodel.KLSS
	}
	d := aether.Decision{Level: level, Method: method, Hoist: 1}
	size := evkBytes(params, level, m)
	// Hybrid and KLSS use different physical keys: make the pool identity
	// method-qualified.
	keyID = m.String() + "/" + keyID

	f.mu.Lock()
	defer f.mu.Unlock()
	if dd, changed := f.mgr.MaybeDegrade(d); changed {
		f.stats.DegradedDecisions++
		d = dd
		size = evkBytes(params, level, Hybrid)
	}
	tr := f.mgr.RequestKey(keyID, size, level, d)
	f.stats.Transfers++
	if tr.Hit {
		f.stats.PoolHits++
	} else {
		f.stats.PoolMisses++
	}
	f.stats.Retries += tr.Retries
	f.stats.Timeouts += tr.Timeouts
	f.stats.Refetches += tr.Refetches
	f.stats.WastedBytes += tr.WastedBytes
	f.stats.BackoffBytes += tr.BackoffBytes
}

func (f *faultState) snapshot() FaultStats {
	if f == nil {
		return FaultStats{}
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.stats
}

// setObserver forwards the observability substrate to the modeled manager
// and injector (hemera.* and fault.* instruments).
func (f *faultState) setObserver(o *Observer) {
	if f == nil || o == nil {
		return
	}
	f.mgr.SetObserver(o.internal())
}

// FaultStats returns the recovery activity accumulated by the fault-injected
// key-transfer model. Without WithFaultPlan it is all zeros.
func (c *Context) FaultStats() FaultStats { return c.faults.snapshot() }

// FaultPlanActive reports whether the context carries an active fault plan.
func (c *Context) FaultPlanActive() bool { return c.faults != nil }
