package fast

import (
	"io"

	"github.com/fastfhe/fast/internal/ckks"
)

// Serialize writes the ciphertext to w in the package's versioned binary wire
// format (tagged header, level, scale, then the RNS coefficient rows of both
// components). Because ciphertext polynomials are arena-backed (one contiguous
// []uint64 per poly, rows in limb order), each component is emitted as a
// single encoding/binary pass over its backing — the wire bytes are identical
// to the historical per-row encoding. The format is what the fastd serving
// daemon moves over HTTP; ReadCiphertext is the inverse.
func (c *Ciphertext) Serialize(w io.Writer) error {
	return c.ct.Serialize(w)
}

// ReadCiphertext reads a ciphertext in the Serialize wire format and
// validates it against the context's parameters: level within the chain, limb
// counts consistent with the level, coefficient rows inside their moduli, and
// a finite positive scale. Malformed or truncated input returns an error
// wrapping fast.ErrInvalidCiphertext — never a panic and never a structurally
// broken handle.
func (c *Context) ReadCiphertext(r io.Reader) (*Ciphertext, error) {
	ct, err := ckks.ReadCiphertext(r, c.params)
	if err != nil {
		return nil, err
	}
	return &Ciphertext{ct}, nil
}
