package fast

import (
	"bytes"
	"crypto/sha256"
	"encoding/binary"
	"encoding/json"
	"fmt"
	"io"
	"reflect"

	"github.com/fastfhe/fast/internal/ckks"
)

// Serialize writes the ciphertext to w in the package's versioned binary wire
// format (tagged header, level, scale, then the RNS coefficient rows of both
// components). Because ciphertext polynomials are arena-backed (one contiguous
// []uint64 per poly, rows in limb order), each component is emitted as a
// single encoding/binary pass over its backing — the wire bytes are identical
// to the historical per-row encoding. The format is what the fastd serving
// daemon moves over HTTP; ReadCiphertext is the inverse.
func (c *Ciphertext) Serialize(w io.Writer) error {
	return c.ct.Serialize(w)
}

// ReadCiphertext reads a ciphertext in the Serialize wire format and
// validates it against the context's parameters: level within the chain, limb
// counts consistent with the level, coefficient rows inside their moduli, and
// a finite positive scale. Malformed or truncated input returns an error
// wrapping fast.ErrInvalidCiphertext — never a panic and never a structurally
// broken handle.
func (c *Context) ReadCiphertext(r io.Reader) (*Ciphertext, error) {
	ct, err := ckks.ReadCiphertext(r, c.params)
	if err != nil {
		return nil, err
	}
	return &Ciphertext{ct}, nil
}

// ---- Session snapshots -----------------------------------------------------

// SessionMeta is the serving-layer metadata a session snapshot carries
// alongside the cryptographic material. The fields are owned by the caller
// (fastd stores its session ID, creation time and fault scenario here); the
// snapshot machinery itself only interprets Restores.
type SessionMeta struct {
	// ID is the serving-layer session identifier.
	ID string `json:"id,omitempty"`
	// CreatedUnixNano is the session's creation time.
	CreatedUnixNano int64 `json:"created_unix_nano,omitempty"`
	// Restores counts completed restorations of this session. It doubles as
	// the encryptor's reseeding epoch: Restore derives the deterministic
	// sampler seed from it, so bumping the counter before each restoration
	// guarantees a restored session never replays pre-crash encryption
	// randomness (randomness reuse under one public key leaks plaintext
	// differences).
	Restores uint64 `json:"restores,omitempty"`
	// FaultScenario names the fault-injection scenario the session was
	// created with ("" or "none" when unfaulted), so a restoring daemon can
	// reattach the same plan.
	FaultScenario string `json:"fault_scenario,omitempty"`
}

// Snapshot wire layout (little-endian):
//
//	magic   [8]byte  "FASTSNP\x01"
//	hdrLen  uint32   length of the JSON header
//	header  []byte   {"meta":..., "config":..., "default_method":...}
//	keyLen  uint64   length of the key payload
//	keys    []byte   sk | pk | evaluation-key set (internal/ckks wire format)
//	sum     [32]byte SHA-256 over every preceding byte
//
// The checksum is verified BEFORE any parsing: a flipped bit anywhere in the
// stream surfaces as ErrCorruptSnapshot, never as a structurally plausible
// but wrong key set. Canonical ordering in the key-set serialisation makes
// identical sessions produce identical snapshot bytes.
var snapshotMagic = [8]byte{'F', 'A', 'S', 'T', 'S', 'N', 'P', 1}

const (
	snapshotMaxHeader = 1 << 20 // sanity bound on the JSON header
	snapshotMaxKeys   = 1 << 31 // sanity bound on the key payload
)

// snapshotHeader is the JSON head of a snapshot: everything needed to
// recompile the parameter set plus the serving-layer metadata.
type snapshotHeader struct {
	Meta          SessionMeta   `json:"meta"`
	Config        ContextConfig `json:"config"`
	DefaultMethod string        `json:"default_method"`
}

// SessionSnapshot is a decoded (checksum-verified) session snapshot whose
// key material has not yet been expanded into a Context. Callers may adjust
// Meta between DecodeSessionSnapshot and Restore — the restore path bumps
// Meta.Restores so each restoration gets a fresh encryptor stream.
type SessionSnapshot struct {
	Meta          SessionMeta
	Config        ContextConfig
	DefaultMethod Method

	keyBytes []byte
}

// WriteSessionSnapshot serialises the context's full session state — resolved
// configuration, secret/public/relinearization/Galois key material — plus the
// caller's metadata, in the versioned, checksummed snapshot format.
// ReadSessionSnapshot (or DecodeSessionSnapshot + Restore) is the inverse.
func (c *Context) WriteSessionSnapshot(w io.Writer, meta SessionMeta) error {
	hdr, err := json.Marshal(snapshotHeader{
		Meta:          meta,
		Config:        c.cfg,
		DefaultMethod: c.defaultMethod.String(),
	})
	if err != nil {
		return fmt.Errorf("fast: marshal snapshot header: %w", err)
	}
	var keys bytes.Buffer
	if err := c.sk.Serialize(&keys); err != nil {
		return fmt.Errorf("fast: serialize secret key: %w", err)
	}
	if err := c.pk.Serialize(&keys); err != nil {
		return fmt.Errorf("fast: serialize public key: %w", err)
	}
	if err := c.keys.Serialize(&keys); err != nil {
		return fmt.Errorf("fast: serialize evaluation keys: %w", err)
	}

	var body bytes.Buffer
	body.Write(snapshotMagic[:])
	_ = binary.Write(&body, binary.LittleEndian, uint32(len(hdr)))
	body.Write(hdr)
	_ = binary.Write(&body, binary.LittleEndian, uint64(keys.Len()))
	body.Write(keys.Bytes())
	sum := sha256.Sum256(body.Bytes())
	if _, err := w.Write(body.Bytes()); err != nil {
		return err
	}
	_, err = w.Write(sum[:])
	return err
}

// DecodeSessionSnapshot verifies and parses a session snapshot: checksum
// first (any corruption — truncation, bit flips, a foreign file — returns an
// error wrapping ErrCorruptSnapshot before a single key byte is parsed),
// then the JSON header. Key material stays in its wire form until Restore.
func DecodeSessionSnapshot(data []byte) (*SessionSnapshot, error) {
	const minLen = 8 + 4 + 8 + sha256.Size
	if len(data) < minLen {
		return nil, fmt.Errorf("fast: snapshot truncated (%d bytes): %w", len(data), ErrCorruptSnapshot)
	}
	if !bytes.Equal(data[:8], snapshotMagic[:]) {
		return nil, fmt.Errorf("fast: bad snapshot magic: %w", ErrCorruptSnapshot)
	}
	body, sum := data[:len(data)-sha256.Size], data[len(data)-sha256.Size:]
	want := sha256.Sum256(body)
	if !bytes.Equal(sum, want[:]) {
		return nil, fmt.Errorf("fast: snapshot checksum mismatch: %w", ErrCorruptSnapshot)
	}

	rest := body[8:]
	hdrLen := binary.LittleEndian.Uint32(rest[:4])
	rest = rest[4:]
	if hdrLen > snapshotMaxHeader || int(hdrLen) > len(rest) {
		return nil, fmt.Errorf("fast: snapshot header length %d out of range: %w", hdrLen, ErrCorruptSnapshot)
	}
	var hdr snapshotHeader
	if err := json.Unmarshal(rest[:hdrLen], &hdr); err != nil {
		return nil, fmt.Errorf("fast: snapshot header: %v: %w", err, ErrCorruptSnapshot)
	}
	rest = rest[hdrLen:]
	if len(rest) < 8 {
		return nil, fmt.Errorf("fast: snapshot truncated before key payload: %w", ErrCorruptSnapshot)
	}
	keyLen := binary.LittleEndian.Uint64(rest[:8])
	rest = rest[8:]
	if keyLen > snapshotMaxKeys || keyLen != uint64(len(rest)) {
		return nil, fmt.Errorf("fast: snapshot key payload length %d does not match %d remaining bytes: %w",
			keyLen, len(rest), ErrCorruptSnapshot)
	}
	method, _, err := ParseMethod(hdr.DefaultMethod)
	if err != nil {
		return nil, fmt.Errorf("fast: snapshot default method: %v: %w", err, ErrCorruptSnapshot)
	}
	return &SessionSnapshot{
		Meta:          hdr.Meta,
		Config:        hdr.Config,
		DefaultMethod: method,
		keyBytes:      rest,
	}, nil
}

// Restore expands the snapshot into a ready-to-use Context: the parameter
// set is recompiled from the embedded configuration (deterministic — the
// same config always yields bit-identical ring tables) and the persisted key
// material is installed in place of key generation, so restored sessions
// decrypt pre-crash ciphertexts bit-identically. Restoration costs the
// deserialisation plus NTT-table compilation, never a keygen.
//
// Options may attach an observer or fault plan and override the default
// key-switching method; options that would alter the parameter description
// (WithRotations, WithKLSS, WithSeed, WithParallelism...) are rejected with
// ErrInvalidParameters, because the persisted keys were generated for
// exactly the embedded configuration.
//
// The encryptor's deterministic sampler is seeded from Meta.Restores, so
// each restoration epoch draws a fresh randomness stream (see SessionMeta).
func (s *SessionSnapshot) Restore(opts ...Option) (*Context, error) {
	cfg := s.Config
	cfg.Rotations = append([]int(nil), s.Config.Rotations...)
	settings := contextSettings{cfg: &cfg, defaultMethod: s.DefaultMethod}
	for _, o := range opts {
		o(&settings)
	}
	if !reflect.DeepEqual(cfg, s.Config) {
		return nil, fmt.Errorf("fast: config-mutating options are invalid on snapshot restore "+
			"(keys were generated for the persisted config): %w", ErrInvalidParameters)
	}
	if settings.defaultMethod == KLSS && !cfg.EnableKLSS {
		return nil, fmt.Errorf("fast: WithDefaultMethod(KLSS) requires EnableKLSS: %w", ErrMethodUnavailable)
	}
	params, err := compileParameters(cfg)
	if err != nil {
		return nil, err
	}
	r := bytes.NewReader(s.keyBytes)
	sk, err := ckks.ReadSecretKey(r, params)
	if err != nil {
		return nil, fmt.Errorf("fast: snapshot secret key: %w", err)
	}
	pk, err := ckks.ReadPublicKey(r, params)
	if err != nil {
		return nil, fmt.Errorf("fast: snapshot public key: %w", err)
	}
	keys, err := ckks.ReadEvaluationKeySet(r, params)
	if err != nil {
		return nil, fmt.Errorf("fast: snapshot evaluation keys: %w", err)
	}
	if r.Len() != 0 {
		return nil, fmt.Errorf("fast: %d trailing bytes after snapshot key material: %w", r.Len(), ErrCorruptSnapshot)
	}
	encSeed := params.Seed() + 0x5eed + int64(s.Meta.Restores)*0x9e3779b9
	return assembleContext(cfg, settings, params, sk, pk, keys, encSeed)
}

// ReadSessionSnapshot reads, verifies and restores a session snapshot in one
// step, returning the rebuilt context and the stored metadata. Callers that
// need to bump Meta.Restores before expansion (every restoring daemon
// should) use DecodeSessionSnapshot + Restore instead.
func ReadSessionSnapshot(r io.Reader, opts ...Option) (*Context, SessionMeta, error) {
	data, err := io.ReadAll(r)
	if err != nil {
		return nil, SessionMeta{}, fmt.Errorf("fast: read snapshot: %w", err)
	}
	snap, err := DecodeSessionSnapshot(data)
	if err != nil {
		return nil, SessionMeta{}, err
	}
	ctx, err := snap.Restore(opts...)
	if err != nil {
		return nil, SessionMeta{}, err
	}
	return ctx, snap.Meta, nil
}
