package fast_test

import (
	"fmt"
	"math"

	fast "github.com/fastfhe/fast"
)

// Encrypt two vectors, multiply them homomorphically, and decrypt.
func ExampleContext() {
	ctx, err := fast.NewContext(fast.DefaultConfig())
	if err != nil {
		panic(err)
	}
	a := make([]complex128, ctx.Slots())
	b := make([]complex128, ctx.Slots())
	for i := range a {
		a[i], b[i] = complex(0.5, 0), complex(0.25, 0)
	}
	ca, _ := ctx.Encrypt(a)
	cb, _ := ctx.Encrypt(b)
	prod, err := ctx.Mul(ca, cb)
	if err != nil {
		panic(err)
	}
	got := ctx.Decrypt(prod)
	fmt.Printf("0.5 * 0.25 = %.4f\n", real(got[0]))
	// Output: 0.5 * 0.25 = 0.1250
}

// Route a rotation through the KLSS (60-bit) backend with a per-call option.
func ExampleWithMethod() {
	ctx, err := fast.NewContext(fast.DefaultConfig())
	if err != nil {
		panic(err)
	}
	v := make([]complex128, ctx.Slots())
	v[1] = complex(1, 0)
	ct, _ := ctx.Encrypt(v)
	rot, err := ctx.Rotate(ct, 1, fast.WithMethod(fast.KLSS))
	if err != nil {
		panic(err)
	}
	got := ctx.Decrypt(rot)
	fmt.Printf("slot 0 after rotating by 1: %.2f\n", math.Round(real(got[0])*100)/100)
	// Output: slot 0 after rotating by 1: 1.00
}

// Defer the rescale of a multiply-accumulate chain: the three products keep
// their product scale, are summed, and pay a single rescale at the end.
func ExampleNoRescale() {
	ctx, err := fast.NewContext(fast.DefaultConfig())
	if err != nil {
		panic(err)
	}
	n := ctx.Slots()
	vec := func(v float64) []complex128 {
		s := make([]complex128, n)
		for i := range s {
			s[i] = complex(v, 0)
		}
		return s
	}
	ca, _ := ctx.Encrypt(vec(0.5))
	cb, _ := ctx.Encrypt(vec(0.25))

	// acc = a*b + a*b + a*b, rescaled once.
	acc, err := ctx.Mul(ca, cb, fast.NoRescale())
	if err != nil {
		panic(err)
	}
	for i := 0; i < 2; i++ {
		term, err := ctx.Mul(ca, cb, fast.NoRescale())
		if err != nil {
			panic(err)
		}
		if acc, err = ctx.Add(acc, term); err != nil {
			panic(err)
		}
	}
	if acc, err = ctx.Rescale(acc); err != nil {
		panic(err)
	}
	got := ctx.Decrypt(acc)
	fmt.Printf("3 * 0.5 * 0.25 = %.4f\n", math.Round(real(got[0])*1e4)/1e4)
	// Output: 3 * 0.5 * 0.25 = 0.3750
}

// Simulate the bootstrapping benchmark on the modelled FAST accelerator.
func ExampleSimulate() {
	report, err := fast.Simulate(fast.BootstrapWorkload(), fast.FASTAccelerator(), fast.PlanAether)
	if err != nil {
		panic(err)
	}
	fmt.Printf("bootstrap on %s takes about %.1f ms (paper: 1.38 ms)\n",
		report.Accelerator, math.Round(report.TimeMS*10)/10)
	// Output: bootstrap on FAST takes about 1.4 ms (paper: 1.38 ms)
}
