package fast

import (
	"bytes"
	"context"
	"encoding/json"
	"testing"
)

// TestPlanRecordRequestIDs pins the library-level correlation contract: a
// request ID attached to a run's context (ContextWithRequestID) is listed on
// every PlanRecord of the batch the run coalesced into, in run order, and
// each executed run learns its batch sequence number.
func TestPlanRecordRequestIDs(t *testing.T) {
	ob := NewObserver()
	cfg := DefaultConfig()
	cfg.LogN = 9
	cfg.Levels = 3
	cfg.Seed = 13
	ctx, err := NewContext(cfg, WithObserver(ob))
	if err != nil {
		t.Fatal(err)
	}
	plan, err := ctx.Plan(differentialPrograms()["fanout"], nil)
	if err != nil {
		t.Fatal(err)
	}
	shared := chaosPlanInputs(ctx, t, 6)
	runs := []*Run{
		{Plan: plan, Inputs: shared, Ctx: ContextWithRequestID(context.Background(), "req-a")},
		{Plan: plan, Inputs: shared, Ctx: ContextWithRequestID(context.Background(), "req-b")},
		{Plan: plan, Inputs: shared}, // anonymous: contributes no ID
	}
	ctx.ExecuteBatch(runs)
	for i, run := range runs {
		if run.Err != nil {
			t.Fatalf("run %d: %v", i, run.Err)
		}
		if run.Batch == 0 {
			t.Fatalf("run %d: Batch = 0, want the batch sequence", i)
		}
		if run.Batch != runs[0].Batch {
			t.Fatalf("run %d: Batch = %d, batchmate has %d", i, run.Batch, runs[0].Batch)
		}
	}

	recs := ob.PlanRecords()
	if len(recs) != len(runs) {
		t.Fatalf("got %d plan records, want %d", len(recs), len(runs))
	}
	for _, rec := range recs {
		if rec.Batch != runs[0].Batch {
			t.Fatalf("record batch %d != runs' %d", rec.Batch, runs[0].Batch)
		}
		if len(rec.RequestIDs) != 2 || rec.RequestIDs[0] != "req-a" || rec.RequestIDs[1] != "req-b" {
			t.Fatalf("record RequestIDs = %v, want [req-a req-b] in run order", rec.RequestIDs)
		}
	}

	// The IDs survive the JSON shape /debug/plans serves.
	raw, err := json.Marshal(recs[0])
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Contains(raw, []byte(`"request_ids":["req-a","req-b"]`)) {
		t.Fatalf("marshaled record lacks request_ids: %s", raw)
	}
}

// TestPlanRecordRequestIDsOmittedWhenAbsent: batches with no tagged run keep
// the field empty (and omitted from JSON), so untagged library use stays
// byte-identical to before the field existed.
func TestPlanRecordRequestIDsOmittedWhenAbsent(t *testing.T) {
	ob := NewObserver()
	cfg := DefaultConfig()
	cfg.LogN = 9
	cfg.Levels = 3
	cfg.Seed = 13
	ctx, err := NewContext(cfg, WithObserver(ob))
	if err != nil {
		t.Fatal(err)
	}
	plan, err := ctx.Plan(differentialPrograms()["fanout"], nil)
	if err != nil {
		t.Fatal(err)
	}
	out, err := ctx.Execute(context.Background(), plan, chaosPlanInputs(ctx, t, 6))
	if err != nil || out == nil {
		t.Fatalf("execute: %v", err)
	}
	recs := ob.PlanRecords()
	if len(recs) != 1 {
		t.Fatalf("got %d plan records, want 1", len(recs))
	}
	if recs[0].RequestIDs != nil {
		t.Fatalf("untagged run produced RequestIDs %v", recs[0].RequestIDs)
	}
	raw, err := json.Marshal(recs[0])
	if err != nil {
		t.Fatal(err)
	}
	if bytes.Contains(raw, []byte("request_ids")) {
		t.Fatalf("request_ids must be omitted when empty: %s", raw)
	}
}

// TestWithRequestIDOpOption: the per-op option tags spans regardless of
// whether WithContext is also supplied, in either order.
func TestWithRequestIDOpOption(t *testing.T) {
	ob := NewTracingObserver(0)
	cfg := DefaultConfig()
	cfg.LogN = 9
	cfg.Levels = 3
	cfg.Seed = 13
	ctx, err := NewContext(cfg, WithObserver(ob))
	if err != nil {
		t.Fatal(err)
	}
	enc, err := ctx.Encrypt([]complex128{1, 2, 3, 4})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ctx.Mul(enc, enc, WithRequestID("op-req-1")); err != nil {
		t.Fatal(err)
	}
	if _, err := ctx.Mul(enc, enc, WithContext(context.Background()), WithRequestID("op-req-2")); err != nil {
		t.Fatal(err)
	}
	if _, err := ctx.Mul(enc, enc, WithRequestID("op-req-3"), WithContext(context.Background())); err != nil {
		t.Fatal(err)
	}

	var buf bytes.Buffer
	if err := ob.WriteChromeTrace(&buf); err != nil {
		t.Fatal(err)
	}
	var trace struct {
		TraceEvents []struct {
			Args map[string]any `json:"args"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &trace); err != nil {
		t.Fatal(err)
	}
	seen := map[string]bool{}
	for _, ev := range trace.TraceEvents {
		if id, _ := ev.Args["request_id"].(string); id != "" {
			seen[id] = true
		}
	}
	for _, want := range []string{"op-req-1", "op-req-2", "op-req-3"} {
		if !seen[want] {
			t.Fatalf("no span carries request_id %s (saw %v)", want, seen)
		}
	}
}
