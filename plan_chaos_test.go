package fast

// Differential planner suite, part of the chaos tier (`make chaos` runs it
// under -race): the DAG planner may reorder work, hoist rotation fan-out,
// defer rescales across batch steps and merge groups across concurrently
// admitted runs — but every planned execution must remain BIT-identical to
// the straight-line interpretation of the same program. "Close enough" is
// not a property you can serve from a daemon that promises deterministic
// ciphertexts.

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"sync"
	"testing"
)

// ctBytes serializes a ciphertext for bit-exact comparison.
func ctBytes(t *testing.T, ct *Ciphertext) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := ct.Serialize(&buf); err != nil {
		t.Fatalf("serialize: %v", err)
	}
	return buf.Bytes()
}

func chaosPlanInputs(ctx *Context, t *testing.T, salt int) map[string]*Ciphertext {
	t.Helper()
	n := ctx.Slots()
	xs := make([]complex128, n)
	ys := make([]complex128, n)
	for i := range xs {
		xs[i] = complex(0.07*float64((i+salt)%11), -0.02*float64(i%5))
		ys[i] = complex(0.3, 0.05*float64((i+2*salt)%7))
	}
	cx, err := ctx.Encrypt(xs)
	if err != nil {
		t.Fatal(err)
	}
	cy, err := ctx.Encrypt(ys)
	if err != nil {
		t.Fatal(err)
	}
	return map[string]*Ciphertext{"x": cx, "y": cy}
}

// differentialPrograms is the program zoo: each shape stresses a different
// planner transformation.
func differentialPrograms() map[string]*Program {
	return map[string]*Program{
		// Rotation fan-out on a shared input: the planner hoists all three
		// through one ModUp.
		"fanout": NewProgram().In("x", "y").
			Rotate("a", "x", 1).
			Rotate("b", "x", 2).
			Rotate("c", "x", 4).
			Add("s1", "a", "b").
			Add("s2", "s1", "c").
			Mul("out", "s2", "y").
			Return("out"),
		// Multiply feeding a rotation fan-out: the planner defers the
		// automatic rescale so the group hoists at the pre-rescale level.
		"deferred-rescale": NewProgram().In("x", "y").
			Mul("m", "x", "y").
			Rotate("a", "m", 1).
			Rotate("b", "m", -1).
			Sub("out", "a", "b").
			Return("out"),
		// Mixed pinned methods: the KLSS pin splits the hoist group.
		"pinned-mix": NewProgram().In("x", "y").
			Rotate("a", "x", 1).
			Rotate("b", "x", 2, WithMethod(KLSS)).
			Rotate("c", "x", 4).
			Conjugate("cc", "y").
			Add("s1", "a", "b").
			Add("s2", "s1", "c").
			Add("out", "s2", "cc").
			Return("out"),
		// Straight-line arithmetic with explicit rescale control.
		"norescale-chain": NewProgram().In("x", "y").
			Mul("m", "x", "y", NoRescale()).
			Rescale("ms", "m").
			MulConst("mc", "ms", 0.5).
			AddPlain("ap", "mc", []complex128{complex(0.1, 0)}).
			AddConst("out", "ap", 0.25).
			Return("out"),
	}
}

// TestChaosPlannerDifferentialBitExact: for every program shape, the batch
// executor (hoisting, deferral) and the sequential interpreter must produce
// byte-identical ciphertexts.
func TestChaosPlannerDifferentialBitExact(t *testing.T) {
	ctx := sharedConcCtx(t)
	for name, prog := range differentialPrograms() {
		t.Run(name, func(t *testing.T) {
			if err := prog.Validate(); err != nil {
				t.Fatalf("program: %v", err)
			}
			plan, err := ctx.Plan(prog, nil)
			if err != nil {
				t.Fatalf("plan: %v", err)
			}
			inputs := chaosPlanInputs(ctx, t, 3)

			batched, err := ctx.Execute(context.Background(), plan, inputs)
			if err != nil {
				t.Fatalf("Execute: %v", err)
			}
			seq, err := ctx.ExecuteSequential(context.Background(), plan, inputs)
			if err != nil {
				t.Fatalf("ExecuteSequential: %v", err)
			}
			if !bytes.Equal(ctBytes(t, batched), ctBytes(t, seq)) {
				t.Fatal("batch execution is not bit-identical to straight-line execution")
			}
		})
	}
}

// TestChaosPlannerConcurrentBatchBitExact merges several concurrently
// admitted runs — two of them sharing the literal same input ciphertext, so
// their rotation groups merge across runs — and checks each run's output
// against its own sequential execution.
func TestChaosPlannerConcurrentBatchBitExact(t *testing.T) {
	ctx := sharedConcCtx(t)
	prog := differentialPrograms()["fanout"]
	plan, err := ctx.Plan(prog, nil)
	if err != nil {
		t.Fatal(err)
	}

	shared := chaosPlanInputs(ctx, t, 1)
	other := chaosPlanInputs(ctx, t, 2)
	runs := []*Run{
		{Plan: plan, Inputs: shared},
		{Plan: plan, Inputs: shared}, // same ciphertext pointers: cross-run merge
		{Plan: plan, Inputs: other},
	}
	ctx.ExecuteBatch(runs)

	for i, run := range runs {
		if run.Err != nil {
			t.Fatalf("run %d: %v", i, run.Err)
		}
		want, err := ctx.ExecuteSequential(context.Background(), plan, run.Inputs)
		if err != nil {
			t.Fatalf("run %d sequential: %v", i, err)
		}
		if !bytes.Equal(ctBytes(t, run.Out), ctBytes(t, want)) {
			t.Fatalf("run %d: batched output differs from sequential", i)
		}
	}
}

// TestChaosPlannerParallelBatchesBitExact drives ExecuteBatch from several
// goroutines at once (the daemon's worker pool shape) under -race.
func TestChaosPlannerParallelBatchesBitExact(t *testing.T) {
	ctx := sharedConcCtx(t)
	prog := differentialPrograms()["deferred-rescale"]
	plan, err := ctx.Plan(prog, nil)
	if err != nil {
		t.Fatal(err)
	}

	const workers = 4
	var wg sync.WaitGroup
	errs := make(chan error, workers)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			inputs := chaosPlanInputs(ctx, t, w)
			got, err := ctx.Execute(context.Background(), plan, inputs)
			if err != nil {
				errs <- fmt.Errorf("worker %d: %v", w, err)
				return
			}
			want, err := ctx.ExecuteSequential(context.Background(), plan, inputs)
			if err != nil {
				errs <- fmt.Errorf("worker %d sequential: %v", w, err)
				return
			}
			if !bytes.Equal(ctBytes(t, got), ctBytes(t, want)) {
				errs <- fmt.Errorf("worker %d: not bit-identical", w)
			}
		}(w)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
}

// TestChaosPlannerHoistReducesModUp is the quantitative claim behind the
// planner: a 3-rotation fan-out costs 3 ModUps straight-line but 1 hoisted
// (paper §2.2.3). Counted via the key-switch phase histograms.
func TestChaosPlannerHoistReducesModUp(t *testing.T) {
	ob := NewObserver()
	cfg := DefaultConfig()
	cfg.LogN = 9
	cfg.Levels = 3
	cfg.Seed = 11
	ctx, err := NewContext(cfg, WithObserver(ob))
	if err != nil {
		t.Fatal(err)
	}
	prog := NewProgram().In("x").
		Rotate("a", "x", 1).
		Rotate("b", "x", 2).
		Rotate("c", "x", 4).
		Add("s1", "a", "b").
		Add("out", "s1", "c").
		Return("out")
	plan, err := ctx.Plan(prog, nil)
	if err != nil {
		t.Fatal(err)
	}
	inputs := chaosPlanInputs(ctx, t, 5)

	modUps := func() uint64 {
		snap := ob.Metrics()
		var n uint64
		for name, h := range snap.Histograms {
			if len(name) > 14 && name[:14] == "ckks.keyswitch" && name[len(name)-9:] == ".modup_ns" {
				n += h.Count
			}
		}
		return n
	}

	before := modUps()
	if _, err := ctx.ExecuteSequential(context.Background(), plan, inputs); err != nil {
		t.Fatal(err)
	}
	seq := modUps() - before

	before = modUps()
	if _, err := ctx.Execute(context.Background(), plan, inputs); err != nil {
		t.Fatal(err)
	}
	batch := modUps() - before

	if seq != 3 || batch != 1 {
		t.Fatalf("ModUp counts: sequential=%d batch=%d, want 3 and 1", seq, batch)
	}
}

// TestChaosPlannerBatchCancellation: a pre-canceled run inside a batch fails
// with ErrCanceled while its batchmates complete bit-exactly — per-request
// cancellation survives micro-batching.
func TestChaosPlannerBatchCancellation(t *testing.T) {
	ctx := sharedConcCtx(t)
	prog := differentialPrograms()["fanout"]
	plan, err := ctx.Plan(prog, nil)
	if err != nil {
		t.Fatal(err)
	}
	shared := chaosPlanInputs(ctx, t, 4)

	canceled, cancel := context.WithCancel(context.Background())
	cancel()
	runs := []*Run{
		{Plan: plan, Inputs: shared, Ctx: canceled},
		{Plan: plan, Inputs: shared},
	}
	ctx.ExecuteBatch(runs)

	if !errors.Is(runs[0].Err, ErrCanceled) {
		t.Fatalf("canceled run: got %v, want ErrCanceled", runs[0].Err)
	}
	if runs[0].Out != nil {
		t.Fatal("canceled run produced an output")
	}
	if runs[1].Err != nil {
		t.Fatalf("healthy batchmate failed: %v", runs[1].Err)
	}
	want, err := ctx.ExecuteSequential(context.Background(), plan, shared)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(ctBytes(t, runs[1].Out), ctBytes(t, want)) {
		t.Fatal("healthy batchmate not bit-identical after batchmate cancellation")
	}
}

// TestChaosPlanRecordsIntrospection: executed batches surface their plan
// decisions and merge accounting on the Observer.
func TestChaosPlanRecordsIntrospection(t *testing.T) {
	ob := NewObserver()
	cfg := DefaultConfig()
	cfg.LogN = 9
	cfg.Levels = 3
	cfg.Seed = 13
	ctx, err := NewContext(cfg, WithObserver(ob))
	if err != nil {
		t.Fatal(err)
	}
	prog := differentialPrograms()["fanout"]
	plan, err := ctx.Plan(prog, nil)
	if err != nil {
		t.Fatal(err)
	}
	shared := chaosPlanInputs(ctx, t, 6)
	runs := []*Run{
		{Plan: plan, Inputs: shared},
		{Plan: plan, Inputs: shared},
	}
	ctx.ExecuteBatch(runs)
	for i, run := range runs {
		if run.Err != nil {
			t.Fatalf("run %d: %v", i, run.Err)
		}
	}

	recs := ob.PlanRecords()
	if len(recs) != 2 {
		t.Fatalf("got %d plan records, want 2", len(recs))
	}
	for _, rec := range recs {
		if rec.Fingerprint != plan.Fingerprint() {
			t.Fatalf("record fingerprint %s != plan %s", rec.Fingerprint, plan.Fingerprint())
		}
		if rec.Runs != 2 || rec.Err {
			t.Fatalf("record %+v: want Runs=2, Err=false", rec)
		}
		if rec.MergedRotations == 0 {
			t.Fatal("identical-input batch recorded no merged rotations")
		}
		if len(rec.Decisions) != len(plan.Decisions()) {
			t.Fatalf("record carries %d decisions, plan has %d", len(rec.Decisions), len(plan.Decisions()))
		}
	}

	snap := ob.Metrics()
	if snap.Counters["aether.decision.hybrid"]+snap.Counters["aether.decision.klss"] == 0 {
		t.Fatal("no aether method decisions counted")
	}
	if snap.Counters["aether.decision.hoisted"] == 0 {
		t.Fatal("hoisted fan-out not counted")
	}
}
