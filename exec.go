package fast

import (
	"context"
	"fmt"
	"sort"
	"sync/atomic"

	"github.com/fastfhe/fast/internal/obs"
)

// This file executes Plans: single runs, micro-batches of concurrently
// admitted runs (sharing hoisted decompositions across requests when their
// rotation groups read identical input ciphertexts), and the sequential
// reference interpretation the differential suite compares against.
//
// Bit-identity contract: ExecuteBatch and ExecuteSequential produce byte-for-
// byte identical ciphertexts for the same plan and inputs. Three properties
// make this hold: (1) every planned rotation — singletons included — runs
// through the hoisted kernel, whose per-rotation output is independent of the
// other rotations sharing the decomposition; (2) Mul with fused rescale and
// Mul(NoRescale)+Rescale execute the same kernel sequence, so deferred
// rescale placement is bit-neutral; (3) method decisions are deterministic in
// (program, input levels, context), so both interpreters resolve the same
// backend at every site.

// Run is one program execution in a batch: a plan, its input ciphertexts and
// a cancellation context in; the output ciphertext or a typed error out.
type Run struct {
	// Plan is the compiled program (from Context.Plan on the same context the
	// batch executes on).
	Plan *Plan
	// Inputs maps declared input registers to ciphertexts at the levels the
	// plan was compiled for.
	Inputs map[string]*Ciphertext
	// InputIDs optionally names each input's identity (e.g. the serialized
	// ciphertext the daemon decoded it from). Two runs' rotation groups merge
	// into one hoisted decomposition only when they read inputs with equal
	// IDs at equal level and method; without IDs, pointer identity of the
	// *Ciphertext is used.
	InputIDs map[string]string
	// Ctx cancels this run independently of its batchmates (nil = Background).
	// A request ID carried by Ctx (see ContextWithRequestID) is propagated to
	// the run's trace spans and recorded on the batch's PlanRecords.
	Ctx context.Context
	// Out is the output ciphertext (set on success).
	Out *Ciphertext
	// Err is the run's failure, wrapping the package taxonomy (set on error).
	Err error
	// Batch is the observer-wide micro-batch sequence number this run executed
	// under (set by ExecuteBatch on an observed context; 0 otherwise). Equal
	// Batch values identify runs coalesced into one batch.
	Batch uint64

	regs    map[string]*Ciphertext // register file
	pending map[string]int         // registers holding an unrescaled value -> producing node
	noDefer bool                   // sequential mode: keep every rescale fused
}

// Execute compiles-and-runs in one call for a single request: it executes
// plan against inputs under ctx and returns the output ciphertext. Shorthand
// for a one-run ExecuteBatch.
func (c *Context) Execute(ctx context.Context, plan *Plan, inputs map[string]*Ciphertext) (*Ciphertext, error) {
	run := &Run{Plan: plan, Inputs: inputs, Ctx: ctx}
	c.ExecuteBatch([]*Run{run})
	return run.Out, run.Err
}

// prepareRun validates a run against the batch's context and initializes its
// register file. Returns false (with run.Err set) when the run cannot start.
func (c *Context) prepareRun(run *Run) bool {
	if run.Plan == nil {
		run.Err = fmt.Errorf("fast: run without a plan: %w", ErrInvalidProgram)
		return false
	}
	if run.Plan.c != c {
		run.Err = fmt.Errorf("fast: plan was compiled on a different context: %w", ErrInvalidProgram)
		return false
	}
	if run.Ctx == nil {
		run.Ctx = context.Background()
	}
	for _, in := range run.Plan.prog.inputs {
		ct, ok := run.Inputs[in]
		if !ok {
			run.Err = fmt.Errorf("fast: missing ciphertext for input %q: %w", in, ErrInvalidProgram)
			return false
		}
		if err := c.validate(ct); err != nil {
			run.Err = fmt.Errorf("fast: input %q: %w", in, err)
			return false
		}
		if want := run.Plan.inputLevels[in]; ct.Level() != want {
			run.Err = fmt.Errorf("fast: input %q at level %d, plan compiled for level %d: %w", in, ct.Level(), want, ErrLevelMismatch)
			return false
		}
	}
	run.regs = make(map[string]*Ciphertext, len(run.Plan.nodes)+len(run.Inputs))
	for in, ct := range run.Inputs {
		run.regs[in] = ct
	}
	run.pending = make(map[string]int)
	return true
}

// failNode records a node failure on the run, attributing cancellation to the
// run's own context when that is the cause.
func (run *Run) failNode(node int, err error) {
	op := run.Plan.nodes[node].op
	if ctxErr := run.Ctx.Err(); ctxErr != nil {
		err = wrapRunCtxErr(ctxErr)
	}
	run.Err = fmt.Errorf("op %d (%s -> %s): %w", node, op.Op, op.Out, err)
}

func wrapRunCtxErr(ctxErr error) error {
	if ctxErr == context.DeadlineExceeded {
		return fmt.Errorf("%w: %w", ErrDeadline, ctxErr)
	}
	return fmt.Errorf("%w: %w", ErrCanceled, ctxErr)
}

// value fetches a register, materializing a deferred rescale first: the
// unrescaled product is rescaled adjacent to its first consumer, under the
// owning run's context. Bit-identical to the fused placement.
func (c *Context) value(run *Run, reg string) (*Ciphertext, error) {
	if node, ok := run.pending[reg]; ok {
		out, err := c.Rescale(run.regs[reg], WithContext(run.Ctx))
		if err != nil {
			run.failNode(node, err)
			return nil, run.Err
		}
		delete(run.pending, reg)
		run.regs[reg] = out
	}
	return run.regs[reg], nil
}

// inputID resolves the merge identity of a run's input register.
func (run *Run) inputID(reg string) string {
	if id, ok := run.InputIDs[reg]; ok && id != "" {
		return "id:" + id
	}
	return fmt.Sprintf("ptr:%p", run.Inputs[reg])
}

// batchStep is one schedulable unit: a hoisted rotation group (possibly
// merged across runs) or one solo node of one run.
type batchStep struct {
	members []stepMember
	group   bool
	method  Method
}

// stepMember is one run's share of a step: for groups, every group-member
// node of that run; for solo steps, the single node.
type stepMember struct {
	run   *Run
	nodes []int
}

// ExecuteBatch executes a micro-batch of runs on the shared context. The
// scheduler walks all runs' DAG nodes in deterministic (run, node) order and
// merges rotation groups that read identical input ciphertexts at the same
// level and method into one hoisted decomposition — one ModUp serving every
// member request. Each run keeps its own cancellation: a canceled run fails
// with its own ErrCanceled/ErrDeadline at its next node while batchmates
// proceed; a merged kernel is canceled only when every owning run is done.
//
// Results and errors are reported per run on Run.Out / Run.Err. Runs in one
// batch must share input *levels* only if they share input bytes; otherwise
// they are fully independent.
func (c *Context) ExecuteBatch(runs []*Run) {
	type mergeKey struct {
		id     string
		level  int
		method Method
	}
	var steps []batchStep
	stepOf := make(map[mergeKey]int)
	for _, run := range runs {
		if run == nil || !c.prepareRun(run) {
			continue
		}
		plan := run.Plan
		for i := range plan.nodes {
			n := &plan.nodes[i]
			if n.op.Op == "rotate" {
				g := plan.groups[n.group]
				if g[0] != i {
					continue // scheduled with the group's first member
				}
				st := batchStep{group: true, method: n.method, members: []stepMember{{run: run, nodes: append([]int(nil), g...)}}}
				// Merge only groups rotating a program input: identical
				// bytes in, deterministic kernels, identical bytes out.
				if n.srcA == -1 {
					k := mergeKey{id: run.inputID(n.op.A), level: n.levelIn, method: n.method}
					if si, ok := stepOf[k]; ok {
						steps[si].members = append(steps[si].members, st.members[0])
						continue
					}
					stepOf[k] = len(steps)
				}
				steps = append(steps, st)
				continue
			}
			steps = append(steps, batchStep{members: []stepMember{{run: run, nodes: []int{i}}}})
		}
	}

	merged := 0
	for si := range steps {
		st := &steps[si]
		// Drop members whose run already failed or whose context is done.
		alive := st.members[:0]
		for _, m := range st.members {
			if m.run.Err != nil {
				continue
			}
			if ctxErr := m.run.Ctx.Err(); ctxErr != nil {
				m.run.failNode(m.nodes[0], wrapRunCtxErr(ctxErr))
				continue
			}
			alive = append(alive, m)
		}
		st.members = alive
		if len(st.members) == 0 {
			continue
		}
		if st.group {
			if len(st.members) > 1 {
				for _, m := range st.members {
					merged += len(m.nodes)
				}
			}
			c.execGroupStep(st)
		} else {
			c.execSoloStep(st.members[0].run, st.members[0].nodes[0])
		}
	}

	// Collect outputs (materializing a deferred rescale that reached the
	// output unconsumed) and record the batch for introspection.
	for _, run := range runs {
		if run == nil || run.Err != nil || run.regs == nil {
			continue
		}
		out, err := c.value(run, run.Plan.prog.output)
		if err != nil {
			continue // value() set run.Err
		}
		run.Out = out
	}
	c.recordBatch(runs, merged)
}

// execGroupStep runs one hoisted rotation group, possibly shared by several
// runs, via the public RotateHoisted path (faults, metrics and cancellation
// behave exactly as a direct call would).
func (c *Context) execGroupStep(st *batchStep) {
	lead := st.members[0]
	src, err := c.value(lead.run, lead.run.Plan.nodes[lead.nodes[0]].op.A)
	if err != nil {
		// The lead's deferred-rescale materialization failed; retry the step
		// with the remaining members (their sources are their own registers).
		if len(st.members) > 1 {
			st.members = st.members[1:]
			c.execGroupStep(st)
		}
		return
	}
	rotSet := make(map[int]bool)
	for _, m := range st.members {
		for _, node := range m.nodes {
			rotSet[m.run.Plan.nodes[node].op.R] = true
		}
	}
	rots := make([]int, 0, len(rotSet))
	for r := range rotSet {
		rots = append(rots, r)
	}
	sort.Ints(rots)

	ctxs := make([]context.Context, len(st.members))
	for i, m := range st.members {
		ctxs[i] = m.run.Ctx
	}
	mctx, stop := mergedContext(ctxs)
	defer stop()
	outs, err := c.RotateHoisted(src, rots, WithContext(mctx), WithMethod(st.method))
	if err != nil {
		for _, m := range st.members {
			m.run.failNode(m.nodes[0], err)
		}
		return
	}
	for _, m := range st.members {
		for _, node := range m.nodes {
			n := &m.run.Plan.nodes[node]
			m.run.regs[n.op.Out] = outs[n.op.R]
		}
	}
}

// execSoloStep runs one non-group node of one run.
func (c *Context) execSoloStep(run *Run, node int) {
	n := &run.Plan.nodes[node]
	op := n.op
	a, err := run.src(c, op.A)
	if err != nil {
		return
	}
	var b *Ciphertext
	switch op.Op {
	case "add", "sub", "mul":
		if b, err = run.src(c, op.B); err != nil {
			return
		}
	}

	var out *Ciphertext
	switch op.Op {
	case "add":
		out, err = c.Add(a, b)
	case "sub":
		out, err = c.Sub(a, b)
	case "mul":
		deferred := n.defer_ && !run.noDefer
		opts := []OpOption{WithContext(run.Ctx), WithMethod(n.method)}
		if op.NoRescale || deferred {
			opts = append(opts, NoRescale())
		}
		out, err = c.Mul(a, b, opts...)
		if err == nil && deferred {
			run.pending[op.Out] = node
		}
	case "mulplain":
		deferred := n.defer_ && !run.noDefer
		opts := []OpOption{WithContext(run.Ctx)}
		if op.NoRescale || deferred {
			opts = append(opts, NoRescale())
		}
		out, err = c.MulPlain(a, op.Values, opts...)
		if err == nil && deferred {
			run.pending[op.Out] = node
		}
	case "addplain":
		out, err = c.AddPlain(a, op.Values)
	case "mulconst":
		deferred := n.defer_ && !run.noDefer
		opts := []OpOption{WithContext(run.Ctx)}
		if op.NoRescale || deferred {
			opts = append(opts, NoRescale())
		}
		out, err = c.MulConst(a, op.Value, opts...)
		if err == nil && deferred {
			run.pending[op.Out] = node
		}
	case "addconst":
		out, err = c.AddConst(a, op.Value)
	case "rescale":
		out, err = c.Rescale(a, WithContext(run.Ctx))
	case "conjugate":
		out, err = c.Conjugate(a, WithContext(run.Ctx), WithMethod(n.method))
	default:
		err = fmt.Errorf("unknown op %q: %w", op.Op, ErrInvalidProgram)
	}
	if err != nil {
		run.failNode(node, err)
		return
	}
	run.regs[op.Out] = out
}

// src is value() with run-local error bookkeeping already applied.
func (run *Run) src(c *Context, reg string) (*Ciphertext, error) {
	return c.value(run, reg)
}

// ExecuteSequential interprets the plan straight-line in program order — the
// v1 interpretation, kept as the differential reference and the baseline the
// batching benchmark compares against. Every rotation runs as a singleton
// hoisted call with the plan's method decision and every mul rescales fused,
// which by the bit-identity contract (see top of file) yields byte-identical
// outputs to ExecuteBatch.
func (c *Context) ExecuteSequential(ctx context.Context, plan *Plan, inputs map[string]*Ciphertext) (*Ciphertext, error) {
	run := &Run{Plan: plan, Inputs: inputs, Ctx: ctx, noDefer: true}
	if !c.prepareRun(run) {
		return nil, run.Err
	}
	for i := range plan.nodes {
		n := &plan.nodes[i]
		op := n.op
		if op.Op == "rotate" {
			src := run.regs[op.A]
			outs, err := c.RotateHoisted(src, []int{op.R}, WithContext(run.Ctx), WithMethod(n.method))
			if err != nil {
				run.failNode(i, err)
				return nil, run.Err
			}
			run.regs[op.Out] = outs[op.R]
			continue
		}
		c.execSoloStep(run, i)
		if run.Err != nil {
			return nil, run.Err
		}
	}
	return c.value(run, plan.prog.output)
}

// mergedContext derives a context canceled only when ALL owner contexts are
// done — the cancellation rule for kernels shared across runs. With zero or
// one distinct owners it short-circuits. Deadlines do not propagate: a
// deadline-bound run abandons its remaining nodes itself, without tearing
// down a kernel its batchmates still need. The returned stop releases the
// watchers; callers must invoke it.
func mergedContext(ctxs []context.Context) (context.Context, func()) {
	distinct := ctxs[:0]
	for _, ctx := range ctxs {
		dup := false
		for _, d := range distinct {
			if d == ctx {
				dup = true
				break
			}
		}
		if !dup {
			distinct = append(distinct, ctx)
		}
	}
	switch len(distinct) {
	case 0:
		return context.Background(), func() {}
	case 1:
		return distinct[0], func() {}
	}
	mctx, cancel := context.WithCancel(context.Background())
	var remaining atomic.Int64
	remaining.Store(int64(len(distinct)))
	stops := make([]func() bool, len(distinct))
	for i, ctx := range distinct {
		stops[i] = context.AfterFunc(ctx, func() {
			if remaining.Add(-1) == 0 {
				cancel()
			}
		})
	}
	return mctx, func() {
		for _, s := range stops {
			s()
		}
		cancel()
	}
}

// recordBatch tallies the planner's decisions on the observer: one
// aether.decision.{hybrid,klss} count per executed key-switch site,
// aether.decision.hoisted per rotation served from a shared decomposition,
// plus a PlanRecord per run correlating the metrics with a fingerprinted
// program execution.
func (c *Context) recordBatch(runs []*Run, mergedRotations int) {
	if c.observer == nil {
		return
	}
	reg := c.observer.Registry()
	seq := c.observer.nextBatchSeq()
	executed := 0
	var requestIDs []string
	for _, run := range runs {
		if run == nil || run.Plan == nil || run.regs == nil {
			continue
		}
		executed++
		run.Batch = seq
		if rid := obs.RequestIDFrom(run.Ctx); rid != "" {
			requestIDs = append(requestIDs, rid)
		}
	}
	for _, run := range runs {
		if run == nil || run.Plan == nil || run.regs == nil {
			continue
		}
		plan := run.Plan
		for _, d := range plan.decisions {
			if d.Op == "rotate" && plan.groups[d.Group][0] != d.Node {
				// The group's first member accounts for the whole site.
				continue
			}
			switch d.Method {
			case KLSS:
				reg.Counter("aether.decision.klss").Inc()
			default:
				reg.Counter("aether.decision.hybrid").Inc()
			}
			if d.Op == "rotate" && d.Hoist >= 2 {
				reg.Counter("aether.decision.hoisted").Add(uint64(d.Hoist))
			}
		}
		c.observer.recordPlan(PlanRecord{
			Fingerprint:     plan.fingerprint,
			Batch:           seq,
			Runs:            executed,
			MergedRotations: mergedRotations,
			Units:           plan.units,
			Decisions:       plan.Decisions(),
			RequestIDs:      requestIDs,
			Err:             run.Err != nil,
		})
	}
}
