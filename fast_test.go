package fast

import (
	"bytes"
	"math/cmplx"
	"testing"
)

func testCtx(t *testing.T) *Context {
	t.Helper()
	ctx, err := NewContext(DefaultConfig())
	if err != nil {
		t.Fatalf("NewContext: %v", err)
	}
	return ctx
}

func almostEqual(t *testing.T, got, want []complex128, tol float64, what string) {
	t.Helper()
	for i := range want {
		if cmplx.Abs(got[i]-want[i]) > tol {
			t.Fatalf("%s: slot %d: got %v want %v", what, i, got[i], want[i])
		}
	}
}

func TestContextRoundTrip(t *testing.T) {
	ctx := testCtx(t)
	vals := make([]complex128, ctx.Slots())
	for i := range vals {
		vals[i] = complex(float64(i%7)/10, -float64(i%3)/10)
	}
	ct, err := ctx.Encrypt(vals)
	if err != nil {
		t.Fatal(err)
	}
	if ct.Level() != ctx.MaxLevel() {
		t.Errorf("fresh ciphertext level %d, want %d", ct.Level(), ctx.MaxLevel())
	}
	almostEqual(t, ctx.Decrypt(ct), vals, 1e-4, "roundtrip")
}

func TestContextArithmetic(t *testing.T) {
	ctx := testCtx(t)
	n := ctx.Slots()
	a := make([]complex128, n)
	b := make([]complex128, n)
	for i := range a {
		a[i] = complex(0.5, 0.1)
		b[i] = complex(-0.25, 0.3)
	}
	ca, _ := ctx.Encrypt(a)
	cb, _ := ctx.Encrypt(b)

	sum, err := ctx.Add(ca, cb)
	if err != nil {
		t.Fatal(err)
	}
	want := make([]complex128, n)
	for i := range want {
		want[i] = a[i] + b[i]
	}
	almostEqual(t, ctx.Decrypt(sum), want, 1e-4, "Add")

	diff, err := ctx.Sub(ca, cb)
	if err != nil {
		t.Fatal(err)
	}
	for i := range want {
		want[i] = a[i] - b[i]
	}
	almostEqual(t, ctx.Decrypt(diff), want, 1e-4, "Sub")

	prod, err := ctx.Mul(ca, cb)
	if err != nil {
		t.Fatal(err)
	}
	if prod.Level() != ca.Level()-1 {
		t.Errorf("Mul should consume one level, got %d", prod.Level())
	}
	for i := range want {
		want[i] = a[i] * b[i]
	}
	almostEqual(t, ctx.Decrypt(prod), want, 1e-4, "Mul")
}

func TestContextPlainOpsAndConstants(t *testing.T) {
	ctx := testCtx(t)
	n := ctx.Slots()
	a := make([]complex128, n)
	p := make([]complex128, n)
	for i := range a {
		a[i] = complex(0.3, -0.2)
		p[i] = complex(0.9, 0.05)
	}
	ca, _ := ctx.Encrypt(a)

	mp, err := ctx.MulPlain(ca, p)
	if err != nil {
		t.Fatal(err)
	}
	want := make([]complex128, n)
	for i := range want {
		want[i] = a[i] * p[i]
	}
	almostEqual(t, ctx.Decrypt(mp), want, 1e-4, "MulPlain")

	ap, err := ctx.AddPlain(ca, p)
	if err != nil {
		t.Fatal(err)
	}
	for i := range want {
		want[i] = a[i] + p[i]
	}
	almostEqual(t, ctx.Decrypt(ap), want, 1e-4, "AddPlain")

	mc, err := ctx.MulConst(ca, -2.5)
	if err != nil {
		t.Fatal(err)
	}
	for i := range want {
		want[i] = a[i] * complex(-2.5, 0)
	}
	almostEqual(t, ctx.Decrypt(mc), want, 1e-4, "MulConst")

	ac, err := ctx.AddConst(ca, 0.125)
	if err != nil {
		t.Fatal(err)
	}
	for i := range want {
		want[i] = a[i] + 0.125
	}
	almostEqual(t, ctx.Decrypt(ac), want, 1e-4, "AddConst")
}

func TestContextRotationsBothBackends(t *testing.T) {
	ctx := testCtx(t)
	n := ctx.Slots()
	a := make([]complex128, n)
	for i := range a {
		a[i] = complex(float64(i)/float64(n), 0)
	}
	ca, _ := ctx.Encrypt(a)
	for _, m := range []Method{Hybrid, KLSS} {
		rot, err := ctx.Rotate(ca, 2, WithMethod(m))
		if err != nil {
			t.Fatal(err)
		}
		want := make([]complex128, n)
		for i := range want {
			want[i] = a[(i+2)%n]
		}
		almostEqual(t, ctx.Decrypt(rot), want, 1e-4, m.String()+" Rotate")
	}
}

func TestContextHoistedRotations(t *testing.T) {
	ctx := testCtx(t)
	n := ctx.Slots()
	a := make([]complex128, n)
	for i := range a {
		a[i] = complex(float64(i%13)/13, 0)
	}
	ca, _ := ctx.Encrypt(a)
	outs, err := ctx.RotateHoisted(ca, []int{1, 2, 4})
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range []int{1, 2, 4} {
		want := make([]complex128, n)
		for i := range want {
			want[i] = a[(i+r)%n]
		}
		almostEqual(t, ctx.Decrypt(outs[r]), want, 1e-4, "hoisted")
	}
}

func TestContextConjugate(t *testing.T) {
	ctx := testCtx(t)
	n := ctx.Slots()
	a := make([]complex128, n)
	for i := range a {
		a[i] = complex(0.1, 0.7)
	}
	ca, _ := ctx.Encrypt(a)
	conj, err := ctx.Conjugate(ca)
	if err != nil {
		t.Fatal(err)
	}
	want := make([]complex128, n)
	for i := range want {
		want[i] = cmplx.Conj(a[i])
	}
	almostEqual(t, ctx.Decrypt(conj), want, 1e-4, "Conjugate")
}

func TestContextValidation(t *testing.T) {
	if _, err := NewContext(ContextConfig{LogN: 11, Levels: 0}); err == nil {
		t.Error("expected error for zero levels")
	}
	cfg := DefaultConfig()
	cfg.EnableKLSS = false
	ctx, err := NewContext(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if ctx.SupportsKLSS() {
		t.Error("KLSS should be disabled")
	}
	if _, err := NewContext(cfg, WithDefaultMethod(KLSS)); err == nil {
		t.Error("expected error selecting disabled backend as default")
	}
	x := make([]complex128, ctx.Slots())
	cx, _ := ctx.Encrypt(x)
	if _, err := ctx.Rotate(cx, 1, WithMethod(KLSS)); err == nil {
		t.Error("expected error selecting disabled backend per call")
	}
}

func TestMethodString(t *testing.T) {
	if Hybrid.String() != "hybrid" || KLSS.String() != "klss" {
		t.Error("method names")
	}
}

func TestSimulateFacade(t *testing.T) {
	rep, err := Simulate(BootstrapWorkload(), FASTAccelerator(), PlanAuto)
	if err != nil {
		t.Fatal(err)
	}
	if rep.TimeMS <= 0 || rep.Accelerator != "FAST" || rep.Workload != "Bootstrap" {
		t.Fatalf("report: %+v", rep)
	}
	if rep.KLSSCycles == 0 {
		t.Error("FAST with Aether should run some KLSS key-switches")
	}
	one, err := Simulate(BootstrapWorkload(), FASTAccelerator(), PlanOneKSW)
	if err != nil {
		t.Fatal(err)
	}
	if one.KLSSCycles != 0 {
		t.Error("OneKSW plan must not use KLSS")
	}
	if one.TimeMS <= rep.TimeMS*0.99 {
		t.Errorf("Aether (%.3f) should not lose to OneKSW (%.3f)", rep.TimeMS, one.TimeMS)
	}
}

func TestSimulateUnknownMode(t *testing.T) {
	if _, err := Simulate(BootstrapWorkload(), FASTAccelerator(), PlanMode(42)); err == nil {
		t.Error("expected error for unknown mode")
	}
}

func TestPlanWorkloadSerialises(t *testing.T) {
	plan, err := PlanWorkload(BootstrapWorkload(), FASTAccelerator())
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := plan.Save(&buf); err != nil {
		t.Fatal(err)
	}
	if buf.Len() == 0 {
		t.Error("empty config file")
	}
}

func TestAcceleratorAccessors(t *testing.T) {
	f := FASTAccelerator()
	if f.Name() != "FAST" || f.AreaMM2() < 200 || f.PeakPowerW() < 200 {
		t.Errorf("FAST accessors: %s %.1f %.1f", f.Name(), f.AreaMM2(), f.PeakPowerW())
	}
	if f.WithClusters(8).Config().Clusters != 8 {
		t.Error("WithClusters")
	}
	if f.WithOnChipMB(100).Config().OnChipMB != 100 {
		t.Error("WithOnChipMB")
	}
	if len(Published()) < 8 {
		t.Error("missing published baselines")
	}
	if BootstrapWorkload().KeySwitches() == 0 {
		t.Error("bootstrap workload has no key-switches")
	}
	if HELRWorkload(1024).Name() != "HELR1024" || ResNet20Workload().Name() != "ResNet-20" {
		t.Error("workload names")
	}
}
