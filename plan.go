package fast

import (
	"encoding/json"
	"fmt"
	"hash/fnv"
	"sort"

	"github.com/fastfhe/fast/internal/aether"
	"github.com/fastfhe/fast/internal/costmodel"
)

// This file is the program planner: it compiles a Program against a Context
// into a Plan — the def-use DAG with rotation fan-out folded into hoisted
// groups, per-site key-switching methods chosen by the whole-program Aether
// entry point, rescale placement per DAG edge, and the admission unit weight
// the serving layer sheds against. Execution of a Plan lives in exec.go.

// PlanDecision is the planner's inspectable verdict for one key-switch-bearing
// DAG node (mul, rotate, conjugate).
type PlanDecision struct {
	// Node is the op index in the program.
	Node int `json:"node"`
	// Op is the instruction name.
	Op string `json:"op"`
	// Out is the register the node writes.
	Out string `json:"out"`
	// Level is the operand level entering the node after whole-program level
	// propagation from the actual input levels.
	Level int `json:"level"`
	// Method is the key-switching backend the node executes with.
	Method Method `json:"method"`
	// Pinned reports that Method was fixed before the planner ran (an explicit
	// per-op method in the program, or a Plan-wide default from
	// PlanWithDefaultMethod) rather than chosen by the cost model.
	Pinned bool `json:"pinned"`
	// Group identifies the hoisted rotation group the node belongs to
	// (-1 for non-rotations). Nodes sharing a Group share one ModUp.
	Group int `json:"group"`
	// Hoist is the number of rotations sharing the group's decomposition
	// (1 for mul/conjugate and lone rotations).
	Hoist int `json:"hoist"`
	// DeferredRescale reports that the node's automatic rescale was sunk from
	// the producing edge to the consuming edge of the DAG: the multiply runs
	// unrescaled and the rescale executes adjacent to its first consumer —
	// placement the batch scheduler exploits, bit-identical either way.
	DeferredRescale bool `json:"deferred_rescale,omitempty"`
}

// planNode is one compiled DAG node.
type planNode struct {
	op       ProgramOp
	srcA     int // defining node of A, -1 = program input
	srcB     int // defining node of B, -1 = input or unused
	levelIn  int // min operand level entering the node
	levelOut int // level of the node's (materialized) result
	method   Method
	pinned   bool
	group    int  // hoist group index, -1
	rescales bool // mul-family op with automatic rescale
	defer_   bool // rescale deferred to the consuming edge
}

// keySwitches reports whether the node's op bears a key switch.
func (n *planNode) keySwitches() bool {
	switch n.op.Op {
	case "mul", "rotate", "conjugate":
		return true
	}
	return false
}

// Plan is a compiled Program: the DAG, the hoist groups, the per-site method
// and rescale-placement decisions and the admission unit weight. A Plan is
// immutable and safe for concurrent executions; it is bound to the Context
// that compiled it (the decisions depend on that context's parameters and key
// material).
type Plan struct {
	c           *Context
	prog        *Program
	nodes       []planNode
	groups      [][]int // node indices per hoist group
	decisions   []PlanDecision
	inputLevels map[string]int
	units       float64
	passes      int
	fingerprint string
}

// planConfig collects PlanOption knobs.
type planConfig struct {
	pinDefault *Method
}

// PlanOption configures Context.Plan.
type PlanOption func(*planConfig)

// PlanWithDefaultMethod pins every op that does not carry an explicit method
// to m instead of letting the whole-program planner choose — the v1
// compatibility behavior, where "no method" meant "the session default".
// Hoist-group detection still applies; only the method selection is disabled.
func PlanWithDefaultMethod(m Method) PlanOption {
	return func(pc *planConfig) { pc.pinDefault = &m }
}

// Plan compiles a program against the context. inputLevels gives the level of
// each input ciphertext (missing entries assume the context's maximum level —
// pass the actual levels, the method decisions and unit weights depend on
// them). The returned Plan can be inspected (Decisions, Units) and executed
// (Execute, ExecuteBatch, ExecuteSequential).
//
// Compilation performs Program.Validate plus plan-time checks: level
// exhaustion along the propagated DAG and pinned-KLSS on a context built
// without EnableKLSS.
func (c *Context) Plan(prog *Program, inputLevels map[string]int, opts ...PlanOption) (*Plan, error) {
	if prog == nil {
		return nil, fmt.Errorf("nil program: %w", ErrInvalidProgram)
	}
	if err := prog.Validate(); err != nil {
		return nil, err
	}
	var pc planConfig
	for _, o := range opts {
		o(&pc)
	}
	if pc.pinDefault != nil && *pc.pinDefault == KLSS && !c.SupportsKLSS() {
		return nil, fmt.Errorf("fast: PlanWithDefaultMethod(KLSS) on a context without EnableKLSS: %w", ErrMethodUnavailable)
	}

	maxL := c.MaxLevel()
	p := &Plan{c: c, prog: prog, inputLevels: make(map[string]int, len(prog.inputs))}
	for _, in := range prog.inputs {
		lvl, ok := inputLevels[in]
		if !ok {
			lvl = maxL
		}
		p.inputLevels[in] = lvl
	}

	// Pass 1: def-use edges, level propagation, pinned methods.
	p.nodes = make([]planNode, len(prog.ops))
	def := make(map[string]int, len(prog.ops))
	regLevel := make(map[string]int, len(prog.ops)+len(prog.inputs))
	for in, lvl := range p.inputLevels {
		regLevel[in] = lvl
	}
	for i, op := range prog.ops {
		n := planNode{op: op, srcA: -1, srcB: -1, group: -1}
		if d, ok := def[op.A]; ok {
			n.srcA = d
		}
		n.levelIn = regLevel[op.A]
		switch op.Op {
		case "add", "sub", "mul":
			if d, ok := def[op.B]; ok {
				n.srcB = d
			}
			if lb := regLevel[op.B]; lb < n.levelIn {
				n.levelIn = lb
			}
		}
		n.levelOut = n.levelIn
		switch op.Op {
		case "mul", "mulplain", "mulconst":
			if !op.NoRescale {
				n.rescales = true
				if n.levelIn < 1 {
					return nil, fmt.Errorf("op %d (%s -> %s): automatic rescale below the chain bottom: %w", i, op.Op, op.Out, ErrLevelExhausted)
				}
				n.levelOut = n.levelIn - 1
			}
		case "rescale":
			if n.levelIn < 1 {
				return nil, fmt.Errorf("op %d (%s -> %s): rescale below the chain bottom: %w", i, op.Op, op.Out, ErrLevelExhausted)
			}
			n.levelOut = n.levelIn - 1
		}
		if n.keySwitches() {
			switch {
			case op.MethodPinned:
				n.method, n.pinned = op.Method, true
				if op.Method == KLSS && !c.SupportsKLSS() {
					return nil, fmt.Errorf("op %d (%s): pinned method klss: %w", i, op.Op, ErrMethodUnavailable)
				}
			case pc.pinDefault != nil:
				n.method, n.pinned = *pc.pinDefault, true
			}
		}
		def[op.Out] = i
		regLevel[op.Out] = n.levelOut
		p.nodes[i] = n
	}

	// Pass 2: hoist groups — rotations of one SSA definition (or one input
	// register) at the same level and with compatible method constraints share
	// a decomposition. The group key keeps pinned-hybrid, pinned-klss and
	// planner-decided rotations apart so a pin never leaks onto its neighbors.
	type groupKey struct {
		src    int
		input  string
		level  int
		pinned bool
		method Method
	}
	groupOf := make(map[groupKey]int)
	for i := range p.nodes {
		n := &p.nodes[i]
		if n.op.Op != "rotate" {
			continue
		}
		k := groupKey{src: n.srcA, level: n.levelIn, pinned: n.pinned}
		if n.srcA == -1 {
			k.input = n.op.A
		}
		if n.pinned {
			k.method = n.method
		}
		gi, ok := groupOf[k]
		if !ok {
			gi = len(p.groups)
			p.groups = append(p.groups, nil)
			groupOf[k] = gi
		}
		p.groups[gi] = append(p.groups[gi], i)
		n.group = gi
	}

	// Pass 3: whole-program method selection for the undecided sites. One
	// Aether site per undecided mul/conjugate node and per undecided rotation
	// group (the group's hoist width changes the verdict: hoisting erodes the
	// KLSS advantage because KeyMult dominates, paper Fig. 2).
	cm := costmodel.ForContext(c.params.LogN(), maxL)
	var sites []aether.Site
	for i := range p.nodes {
		n := &p.nodes[i]
		if !n.keySwitches() || n.pinned {
			continue
		}
		if n.op.Op == "rotate" {
			if p.groups[n.group][0] != i {
				continue // decided with the group's first member
			}
			sites = append(sites, aether.Site{Op: i, Level: n.levelIn, Hoist: len(p.groups[n.group]), KLSS: c.SupportsKLSS()})
			continue
		}
		sites = append(sites, aether.Site{Op: i, Level: n.levelIn, Hoist: 1, KLSS: c.SupportsKLSS()})
	}
	for _, d := range aether.PlanSites(cm, sites) {
		m := Hybrid
		if d.Method == costmodel.KLSS {
			m = KLSS
		}
		n := &p.nodes[d.OpIndex]
		if n.op.Op == "rotate" {
			for _, member := range p.groups[n.group] {
				p.nodes[member].method = m
			}
		} else {
			n.method = m
		}
	}

	// Pass 4: rescale placement. A mul-family rescale is sunk to the consuming
	// edge when its value feeds a hoisted rotation group (>= 2 rotations): the
	// rescale then executes adjacent to the group's shared decomposition in
	// the batch schedule instead of inside the producing node. Bit-identical
	// either way — Mul+auto-rescale and Mul(NoRescale)+Rescale run the same
	// kernel sequence — so the differential suite can replay either placement.
	for i := range p.nodes {
		n := &p.nodes[i]
		if !n.rescales {
			continue
		}
		for j := i + 1; j < len(p.nodes); j++ {
			cns := &p.nodes[j]
			if cns.srcA != i && cns.srcB != i {
				continue
			}
			if cns.op.Op == "rotate" && len(p.groups[cns.group]) >= 2 {
				n.defer_ = true
				break
			}
		}
	}

	// Decisions, unit weight, fingerprint.
	var costSites []costmodel.SiteCost
	for i := range p.nodes {
		n := &p.nodes[i]
		if !n.keySwitches() {
			p.passes++
			continue
		}
		d := PlanDecision{
			Node: i, Op: n.op.Op, Out: n.op.Out, Level: n.levelIn,
			Method: n.method, Pinned: n.pinned, Group: n.group, Hoist: 1,
			DeferredRescale: n.defer_,
		}
		if n.op.Op == "rotate" {
			d.Hoist = len(p.groups[n.group])
			if p.groups[n.group][0] == i {
				costSites = append(costSites, costmodel.SiteCost{Method: cmMethod(n.method), Level: n.levelIn, Hoist: d.Hoist})
			}
		} else {
			costSites = append(costSites, costmodel.SiteCost{Method: cmMethod(n.method), Level: n.levelIn, Hoist: 1})
			if n.rescales {
				p.passes++ // the (possibly deferred) rescale pass
			}
		}
		p.decisions = append(p.decisions, d)
	}
	p.units = cm.PlanUnits(costSites, p.passes)
	p.fingerprint = planFingerprint(p.prog, p.inputLevels, pc)
	return p, nil
}

// PlanFingerprint computes the fingerprint Plan would assign for (prog,
// inputLevels, opts) WITHOUT compiling: missing input levels resolve to the
// context's maximum level exactly as Plan resolves them, so the returned key
// equals plan.Fingerprint() of the corresponding Plan call. Serving layers use
// it as a cache key to skip recompilation of hot programs; it performs no
// validation, so an invalid program still hashes (and its Plan still fails).
// The fingerprint does not cover context parameters — cache per context.
func (c *Context) PlanFingerprint(prog *Program, inputLevels map[string]int, opts ...PlanOption) string {
	if prog == nil {
		return ""
	}
	var pc planConfig
	for _, o := range opts {
		o(&pc)
	}
	maxL := c.MaxLevel()
	resolved := make(map[string]int, len(prog.inputs))
	for _, in := range prog.inputs {
		lvl, ok := inputLevels[in]
		if !ok {
			lvl = maxL
		}
		resolved[in] = lvl
	}
	return planFingerprint(prog, resolved, pc)
}

func cmMethod(m Method) costmodel.Method {
	if m == KLSS {
		return costmodel.KLSS
	}
	return costmodel.Hybrid
}

// planFingerprint hashes the program text, the resolved input levels and
// the plan-wide default into a stable identifier correlating observer records
// (Observer.PlanRecords, aether.decision.* tallies) with a program run.
// Shared by Plan and Context.PlanFingerprint so cache keys computed before
// compilation match the fingerprints stamped on compiled plans.
func planFingerprint(prog *Program, inputLevels map[string]int, pc planConfig) string {
	h := fnv.New64a()
	if raw, err := json.Marshal(prog); err == nil {
		_, _ = h.Write(raw)
	}
	names := make([]string, 0, len(inputLevels))
	for in := range inputLevels {
		names = append(names, in)
	}
	sort.Strings(names)
	for _, in := range names {
		fmt.Fprintf(h, "|%s@%d", in, inputLevels[in])
	}
	if pc.pinDefault != nil {
		fmt.Fprintf(h, "|pin:%s", pc.pinDefault.String())
	}
	return fmt.Sprintf("plan-%016x", h.Sum64())
}

// Program returns the program this plan compiles.
func (p *Plan) Program() *Program { return p.prog }

// Units returns the plan's admission weight in the cost model's 36-bit
// modular-operation equivalents: every key-switch site at its propagated
// level with hoist amortization, plus the element-wise passes.
func (p *Plan) Units() float64 { return p.units }

// Decisions returns the planner's verdicts for every key-switch-bearing node,
// in program order.
func (p *Plan) Decisions() []PlanDecision {
	return append([]PlanDecision(nil), p.decisions...)
}

// Fingerprint returns a stable identifier for (program, input levels, plan
// options); observer plan records carry it so metrics correlate to a run.
func (p *Plan) Fingerprint() string { return p.fingerprint }

// HoistGroups returns the rotation fan-out groups the planner detected: each
// inner slice lists the program op indices sharing one hoisted decomposition.
func (p *Plan) HoistGroups() [][]int {
	out := make([][]int, len(p.groups))
	for i, g := range p.groups {
		out[i] = append([]int(nil), g...)
	}
	return out
}

// InputLevels returns the input levels the plan was compiled for.
func (p *Plan) InputLevels() map[string]int {
	out := make(map[string]int, len(p.inputLevels))
	for k, v := range p.inputLevels {
		out[k] = v
	}
	return out
}
