package fast

import (
	"context"
	"io"
	"net"
	"net/http"
	"sync"

	"github.com/fastfhe/fast/internal/obs"
)

// Observer is the public handle on the observability substrate: a lock-cheap
// metrics registry plus (optionally) a structured span tracer with Chrome
// trace-event export. One Observer can be shared by any number of Contexts
// and simulations — instruments are named, so everything lands in one
// registry and one trace timeline.
//
// A nil *Observer is valid everywhere it is accepted and disables all
// instrumentation at a single-pointer-check cost.
type Observer struct {
	o *obs.Observer

	planMu   sync.Mutex
	planSeq  uint64
	planRing []PlanRecord // bounded ring, newest-last once full
	planNext int          // ring write cursor
	planFull bool
}

// planRingCap bounds the plan-record ring: enough history to correlate a
// metrics scrape interval's worth of aether.decision.* movement with the
// programs that caused it, small enough to never matter for memory.
const planRingCap = 256

// PlanRecord correlates one planned program execution with the observer's
// aether.decision.* counters: which program (by plan fingerprint), in which
// micro-batch, with which per-site verdicts. Records land in a bounded ring
// (capacity 256, oldest evicted first).
type PlanRecord struct {
	// Fingerprint identifies the (program, input levels, options) tuple —
	// Plan.Fingerprint of the executed plan.
	Fingerprint string `json:"fingerprint"`
	// Batch is the observer-wide micro-batch sequence number; runs coalesced
	// into one ExecuteBatch share it.
	Batch uint64 `json:"batch"`
	// Runs is the number of runs executed in the batch.
	Runs int `json:"runs"`
	// MergedRotations counts rotations in the batch served from a
	// decomposition shared across runs (0 when nothing merged).
	MergedRotations int `json:"merged_rotations"`
	// Units is the plan's admission weight.
	Units float64 `json:"units"`
	// Decisions are the planner's per-site verdicts (Plan.Decisions).
	Decisions []PlanDecision `json:"decisions"`
	// RequestIDs lists the serving-request identifiers of every run coalesced
	// into this record's batch (see ContextWithRequestID), in run order —
	// the join key between the plan ring, the access log and the trace.
	// Empty when no run carried an ID.
	RequestIDs []string `json:"request_ids,omitempty"`
	// Err reports that this run failed (cancellation included).
	Err bool `json:"err,omitempty"`
}

// nextBatchSeq issues a batch sequence number (nil-safe; 0 on nil).
func (ob *Observer) nextBatchSeq() uint64 {
	if ob == nil {
		return 0
	}
	ob.planMu.Lock()
	defer ob.planMu.Unlock()
	ob.planSeq++
	return ob.planSeq
}

// recordPlan appends a record to the ring (nil-safe).
func (ob *Observer) recordPlan(rec PlanRecord) {
	if ob == nil {
		return
	}
	ob.planMu.Lock()
	defer ob.planMu.Unlock()
	if len(ob.planRing) < planRingCap && !ob.planFull {
		ob.planRing = append(ob.planRing, rec)
		if len(ob.planRing) == planRingCap {
			ob.planFull = true
		}
		return
	}
	ob.planRing[ob.planNext] = rec
	ob.planNext = (ob.planNext + 1) % planRingCap
}

// PlanRecords returns the retained plan-execution records, oldest first
// (empty on a nil observer). Use it to attribute aether.decision.{hybrid,
// klss,hoisted} movement to specific program runs.
func (ob *Observer) PlanRecords() []PlanRecord {
	if ob == nil {
		return nil
	}
	ob.planMu.Lock()
	defer ob.planMu.Unlock()
	if !ob.planFull {
		return append([]PlanRecord(nil), ob.planRing...)
	}
	out := make([]PlanRecord, 0, planRingCap)
	out = append(out, ob.planRing[ob.planNext:]...)
	out = append(out, ob.planRing[:ob.planNext]...)
	return out
}

// ContextWithRequestID returns ctx tagged with a serving-request identifier.
// Operations run under the tagged context (via WithContext, Execute or
// ExecuteBatch) carry the ID on their trace spans and plan records, so one
// request's work is attributable end to end across the access log, the plan
// ring and the Chrome trace. Empty IDs are dropped at the consumers.
func ContextWithRequestID(ctx context.Context, id string) context.Context {
	return obs.WithRequestID(ctx, id)
}

// RequestIDFromContext returns the request ID carried by ctx ("" when
// untagged).
func RequestIDFromContext(ctx context.Context) string {
	return obs.RequestIDFrom(ctx)
}

// NewObserver returns an observer with a metrics registry and no tracer
// (per-op spans are skipped; counters and histograms still accumulate).
func NewObserver() *Observer { return &Observer{o: obs.New()} }

// NewTracingObserver returns an observer that additionally records spans into
// a bounded in-memory buffer (capacity events, <= 0 selects the 64k default;
// overflow drops events and reports the drop count in the export).
func NewTracingObserver(capacity int) *Observer {
	return &Observer{o: obs.NewTracing(capacity)}
}

// internal unwraps the observer for the internal layers (nil-safe).
func (ob *Observer) internal() *obs.Observer {
	if ob == nil {
		return nil
	}
	return ob.o
}

// Registry exposes the observer's metrics registry so sibling subsystems in
// this module (the serving layer's admission instruments, cmd/fastd's request
// counters) register their counters, gauges and histograms alongside the
// evaluator's and everything lands in one /metrics exposition. Nil-safe: a
// nil observer returns a nil registry; callers should then skip
// instrumentation, exactly as the internal layers do.
func (ob *Observer) Registry() *obs.Registry {
	if ob == nil {
		return nil
	}
	return ob.o.Reg()
}

// Tracer exposes the observer's span tracer so sibling subsystems (cmd/fastd's
// HTTP middleware) emit their spans onto the same Chrome-trace timeline as the
// evaluator's. Nil on a nil observer or when the observer does not trace; a
// nil tracer is itself a safe no-op.
func (ob *Observer) Tracer() *obs.Tracer {
	if ob == nil {
		return nil
	}
	return ob.o.Tr()
}

// MetricsSnapshot is a point-in-time copy of every registered instrument.
type MetricsSnapshot = obs.Snapshot

// HistogramSnapshot is the snapshot of one log2-bucket histogram.
type HistogramSnapshot = obs.HistogramSnapshot

// Metrics returns a snapshot of the observer's registry (empty on nil).
func (ob *Observer) Metrics() *MetricsSnapshot { return ob.internal().Snapshot() }

// WriteMetricsJSON writes the metrics snapshot as indented JSON.
func (ob *Observer) WriteMetricsJSON(w io.Writer) error {
	return ob.internal().WriteSnapshot(w)
}

// WritePrometheus writes the registry in the Prometheus text exposition
// format.
func (ob *Observer) WritePrometheus(w io.Writer) error {
	return ob.internal().WritePrometheus(w)
}

// WriteChromeTrace writes the buffered spans as Chrome trace-event JSON,
// loadable in chrome://tracing or https://ui.perfetto.dev. On a non-tracing
// observer the trace is empty.
func (ob *Observer) WriteChromeTrace(w io.Writer) error {
	return ob.internal().WriteChromeTrace(w)
}

// TraceSummary returns a human-readable per-(category, name) digest of the
// buffered spans.
func (ob *Observer) TraceSummary() string { return ob.internal().Tr().Summary() }

// Handler returns the observer's HTTP surface: Prometheus text on /metrics,
// expvar on /debug/vars, pprof under /debug/pprof/, the JSON metrics snapshot
// on /snapshot.json and the Chrome trace on /trace.json.
func (ob *Observer) Handler() http.Handler { return ob.internal().Handler() }

// Serve starts an HTTP server for Handler on addr (e.g. ":9090" or
// "127.0.0.1:0"). It returns the bound address and a shutdown function.
func (ob *Observer) Serve(addr string) (net.Addr, func() error, error) {
	return ob.internal().Serve(addr)
}
