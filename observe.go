package fast

import (
	"io"
	"net"
	"net/http"

	"github.com/fastfhe/fast/internal/obs"
)

// Observer is the public handle on the observability substrate: a lock-cheap
// metrics registry plus (optionally) a structured span tracer with Chrome
// trace-event export. One Observer can be shared by any number of Contexts
// and simulations — instruments are named, so everything lands in one
// registry and one trace timeline.
//
// A nil *Observer is valid everywhere it is accepted and disables all
// instrumentation at a single-pointer-check cost.
type Observer struct {
	o *obs.Observer
}

// NewObserver returns an observer with a metrics registry and no tracer
// (per-op spans are skipped; counters and histograms still accumulate).
func NewObserver() *Observer { return &Observer{o: obs.New()} }

// NewTracingObserver returns an observer that additionally records spans into
// a bounded in-memory buffer (capacity events, <= 0 selects the 64k default;
// overflow drops events and reports the drop count in the export).
func NewTracingObserver(capacity int) *Observer {
	return &Observer{o: obs.NewTracing(capacity)}
}

// internal unwraps the observer for the internal layers (nil-safe).
func (ob *Observer) internal() *obs.Observer {
	if ob == nil {
		return nil
	}
	return ob.o
}

// Registry exposes the observer's metrics registry so sibling subsystems in
// this module (the serving layer's admission instruments, cmd/fastd's request
// counters) register their counters, gauges and histograms alongside the
// evaluator's and everything lands in one /metrics exposition. Nil-safe: a
// nil observer returns a nil registry; callers should then skip
// instrumentation, exactly as the internal layers do.
func (ob *Observer) Registry() *obs.Registry {
	if ob == nil {
		return nil
	}
	return ob.o.Reg()
}

// MetricsSnapshot is a point-in-time copy of every registered instrument.
type MetricsSnapshot = obs.Snapshot

// HistogramSnapshot is the snapshot of one log2-bucket histogram.
type HistogramSnapshot = obs.HistogramSnapshot

// Metrics returns a snapshot of the observer's registry (empty on nil).
func (ob *Observer) Metrics() *MetricsSnapshot { return ob.internal().Snapshot() }

// WriteMetricsJSON writes the metrics snapshot as indented JSON.
func (ob *Observer) WriteMetricsJSON(w io.Writer) error {
	return ob.internal().WriteSnapshot(w)
}

// WritePrometheus writes the registry in the Prometheus text exposition
// format.
func (ob *Observer) WritePrometheus(w io.Writer) error {
	return ob.internal().WritePrometheus(w)
}

// WriteChromeTrace writes the buffered spans as Chrome trace-event JSON,
// loadable in chrome://tracing or https://ui.perfetto.dev. On a non-tracing
// observer the trace is empty.
func (ob *Observer) WriteChromeTrace(w io.Writer) error {
	return ob.internal().WriteChromeTrace(w)
}

// TraceSummary returns a human-readable per-(category, name) digest of the
// buffered spans.
func (ob *Observer) TraceSummary() string { return ob.internal().Tr().Summary() }

// Handler returns the observer's HTTP surface: Prometheus text on /metrics,
// expvar on /debug/vars, pprof under /debug/pprof/, the JSON metrics snapshot
// on /snapshot.json and the Chrome trace on /trace.json.
func (ob *Observer) Handler() http.Handler { return ob.internal().Handler() }

// Serve starts an HTTP server for Handler on addr (e.g. ":9090" or
// "127.0.0.1:0"). It returns the bound address and a shutdown function.
func (ob *Observer) Serve(addr string) (net.Addr, func() error, error) {
	return ob.internal().Serve(addr)
}
