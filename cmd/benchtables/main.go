// Command benchtables regenerates every table and figure of the paper's
// evaluation section in one run, printing our modelled numbers next to the
// published ones. It is the one-shot version of the bench_test.go harness.
//
// Usage:
//
//	benchtables [-only table5] (table3 table4 table5 table6 table7
//	                            fig2 fig3 fig4 fig10 fig11 fig12 fig13)
package main

import (
	"flag"
	"fmt"
	"os"

	fast "github.com/fastfhe/fast"
	"github.com/fastfhe/fast/internal/arch"
	"github.com/fastfhe/fast/internal/baselines"
	"github.com/fastfhe/fast/internal/costmodel"
	"github.com/fastfhe/fast/internal/tbm"
)

// observer accumulates metrics across every simulation of the run when
// -obs-json is passed (nil otherwise: zero overhead).
var observer *fast.Observer

func simulate(w fast.Workload, a fast.Accelerator, m fast.PlanMode) *fast.Report {
	r, err := fast.SimulateObserved(w, a, m, observer)
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchtables:", err)
		os.Exit(1)
	}
	return r
}

func fig2() {
	fmt.Println("--- Fig. 2(a): quantitative line hybrid/KLSS per level ---")
	p := costmodel.SetII()
	fmt.Println("level  hybrid_Mops  klss_Mops  line")
	for l := 4; l <= 35; l++ {
		hy := p.HybridKeySwitch(l, 1).Total() / 1e6
		kl := p.KLSSKeySwitch(l, 1).Total() / 1e6
		fmt.Printf("%5d  %11.1f  %9.1f  %5.3f\n", l, hy, kl, hy/kl)
	}
	fmt.Println("\n--- Fig. 2(b): kernel breakdown at representative levels ---")
	fmt.Println("level  method   NTT(M)  BConv(M)  KeyMult(M)  Other(M)")
	for _, l := range []int{5, 12, 21, 24, 25, 35} {
		for _, m := range []costmodel.Method{costmodel.Hybrid, costmodel.KLSS} {
			bd := p.KeySwitch(m, l, 1)
			fmt.Printf("%5d  %-7v  %6.1f  %8.1f  %10.1f  %8.1f\n",
				l, m, bd.NTT/1e6, bd.BConv/1e6, bd.KeyMult/1e6, bd.Other/1e6)
		}
	}
}

func fig3() {
	p := costmodel.SetII()
	fmt.Println("--- Fig. 3(a): hoisting impact at level 35 (KLSS normalised to hybrid) ---")
	fmt.Println("hoist  klss/hybrid")
	for _, h := range []int{1, 2, 4, 6} {
		fmt.Printf("%5d  %11.3f\n", h, p.KLSSKeySwitch(35, h).Total()/p.HybridKeySwitch(35, h).Total())
	}
	fmt.Println("\n--- Fig. 3(b): working-set sizes (MB) ---")
	const mb = 1 << 20
	fmt.Println("level  ct  evk_hybrid  evk_klss  4ct  8ct")
	for l := 5; l <= 35; l += 5 {
		fmt.Printf("%5d  %4.1f  %10.1f  %8.1f  %5.1f  %5.1f\n", l,
			float64(p.CiphertextBytes(l))/mb,
			float64(p.EvkBytes(costmodel.Hybrid, l))/mb,
			float64(p.EvkBytes(costmodel.KLSS, l))/mb,
			float64(4*p.CiphertextBytes(l))/mb,
			float64(8*p.CiphertextBytes(l))/mb)
	}
	fmt.Println("(paper at level 35: ct 19.7, hybrid 79.3, KLSS 295.3)")
}

func fig4() {
	fmt.Println("--- Fig. 4: ALU area/power scaling (normalised to 36-bit) ---")
	fmt.Println("bits  mult_area  mult_power  modmult_area  modmult_power")
	for _, w := range []int{28, 32, 36, 44, 52, 60, 64} {
		fmt.Printf("%4d  %9.2f  %10.2f  %12.2f  %13.2f\n", w,
			tbm.RelativeArea(tbm.MultOnly, w), tbm.RelativePower(tbm.MultOnly, w),
			tbm.RelativeArea(tbm.ModMult, w), tbm.RelativePower(tbm.ModMult, w))
	}
	fmt.Println("(paper at 60-bit: 2.8 / 2.7 / 2.9 / 2.8)")
}

func table3() {
	fmt.Println("--- Table 3: FAST area and peak power ---")
	cfg := arch.FAST()
	fmt.Println("component       area_mm2  peak_W   published")
	pub := map[arch.Component][2]float64{
		arch.NTTU: {60.88, 142.7}, arch.BConvU: {28.89, 86.6}, arch.KMU: {10.58, 27.67},
		arch.AutoU: {0.6, 0.8}, arch.AEM: {8.67, 10.7}, arch.RegisterFile: {123.9, 29.4},
		arch.HBM: {29.6, 31.8}, arch.NoC: {20.6, 27.0},
	}
	for _, c := range arch.Components() {
		ap := cfg.ComponentBudget(c)
		fmt.Printf("%-14s  %8.2f  %6.1f   (%.2f / %.1f)\n", c, ap.AreaMM2, ap.PowerW, pub[c][0], pub[c][1])
	}
	t := cfg.TotalAreaPower()
	fmt.Printf("%-14s  %8.2f  %6.1f   (283.75 mm2)\n", "Total", t.AreaMM2, t.PowerW)
}

func table4() {
	fmt.Println("--- Table 4: hardware comparison ---")
	fmt.Println("name          bits  lanes  onchip_MB  area_mm2")
	for _, r := range baselines.All() {
		fmt.Printf("%-12s  %4d  %5d  %9.0f  %8.1f\n", r.Name, r.BitWidth, r.Lanes, r.OnChipMB, r.AreaMM2)
	}
	f := fast.FASTAccelerator()
	fmt.Printf("%-12s  %4d  %5d  %9.0f  %8.1f   (our model)\n", "FAST(model)", 60,
		f.Config().Lanes(), f.Config().OnChipMB, f.AreaMM2())
}

func table5() {
	fmt.Println("--- Table 5: execution time (ms), simulated vs published ---")
	ws := []fast.Workload{fast.BootstrapWorkload(), fast.HELRWorkload(256), fast.HELRWorkload(1024), fast.ResNet20Workload()}
	accs := []fast.Accelerator{
		fast.SHARPAccelerator(), fast.SHARPLMAccelerator(),
		fast.SHARP8CAccelerator(), fast.SHARPLM8CAccelerator(), fast.FASTAccelerator(),
	}
	fmt.Println("config        bootstrap  helr256  helr1024  resnet20")
	for _, acc := range accs {
		fmt.Printf("%-12s", acc.Name())
		for _, w := range ws {
			fmt.Printf("  %8.2f", simulate(w, acc, fast.PlanAuto).TimeMS)
		}
		fmt.Println()
	}
	fmt.Println("published:")
	for _, p := range baselines.All() {
		if p.Bootstrap > 0 {
			fmt.Printf("%-12s  %8.2f  %7.2f  %8.2f  %8.2f\n", p.Name, p.Bootstrap, p.HELR256, p.HELR1024, p.ResNet20)
		}
	}
	sharp := simulate(ws[0], accs[0], fast.PlanAuto)
	fastR := simulate(ws[0], accs[4], fast.PlanAuto)
	fmt.Printf("bootstrap speedup FAST/SHARP: %.2fx (published 2.26x)\n", sharp.TimeMS/fastR.TimeMS)
}

func table6() {
	fmt.Println("--- Table 6: T_mult,a/s ---")
	fmt.Println("accelerator   T_ns")
	for _, p := range append(baselines.All(), baselines.Table6Extra()...) {
		if p.TmultNS > 0 {
			fmt.Printf("%-12s  %6.1f  (published)\n", p.Name, p.TmultNS)
		}
	}
	for _, acc := range []fast.Accelerator{fast.FASTAccelerator(), fast.SHARPAccelerator()} {
		r := simulate(fast.BootstrapWorkload(), acc, fast.PlanAuto)
		const slots, lEff = 1 << 15, 8
		multMS := r.PhaseCycles["EvalMod"] / 7 / 1e6
		tns := (r.TimeMS + lEff*multMS) * 1e6 / (slots * lEff)
		fmt.Printf("%-12s  %6.1f  (our model)\n", acc.Name()+"(model)", tns)
	}
}

func table7() {
	fmt.Println("--- Table 7: average power, energy, EDP on FAST ---")
	fmt.Println("workload      power_W  energy_J  EDP_mJs")
	for _, w := range []fast.Workload{
		fast.BootstrapWorkload(), fast.HELRWorkload(256), fast.HELRWorkload(1024),
		fast.HELRTrainingWorkload(256, 32), fast.ResNet20Workload(),
	} {
		r := simulate(w, fast.FASTAccelerator(), fast.PlanAuto)
		fmt.Printf("%-12s  %7.1f  %8.3f  %7.3f\n", w.Name(), r.AvgPowerW, r.EnergyJ, r.EDP*1e3)
	}
	fmt.Println("(paper bootstrap row: 120 W, 0.16 J; see EXPERIMENTS.md on the published table's internal units)")
}

func fig10() {
	fmt.Println("--- Fig. 10: execution-time breakdown on FAST ---")
	fmt.Println("plan      time_ms  hybrid_Mcy  klss_Mcy")
	for _, tc := range []struct {
		name string
		mode fast.PlanMode
	}{{"oneksw", fast.PlanOneKSW}, {"hoisting", fast.PlanHoisting}, {"aether", fast.PlanAether}} {
		r := simulate(fast.BootstrapWorkload(), fast.FASTAccelerator(), tc.mode)
		fmt.Printf("%-8s  %7.3f  %10.2f  %8.2f\n", tc.name, r.TimeMS, r.HybridCycles/1e6, r.KLSSCycles/1e6)
	}
}

func fig11() {
	r := simulate(fast.BootstrapWorkload(), fast.FASTAccelerator(), fast.PlanAuto)
	fmt.Println("--- Fig. 11(a): FAST component utilisation on bootstrap ---")
	fmt.Printf("NTTU %.1f%%  BConvU %.1f%%  KMU %.1f%%  HBM %.1f%%  (paper: 66.5 / 24.3 / 25.7 / 44.3)\n",
		100*r.NTTUUtil, 100*r.BConvUUtil, 100*r.KMUUtil, 100*r.HBMUtil)
	fmt.Println("--- Fig. 11(b): bootstrap modular operations ---")
	hy := simulate(fast.BootstrapWorkload(), fast.FASTAccelerator(), fast.PlanOneKSW)
	fmt.Printf("hybrid-only: %.2f Gops (NTT %.2f, BConv %.2f, KeyMult %.2f)\n",
		hy.TotalModOps/1e9, hy.KernelNTT/1e9, hy.KernelBConv/1e9, hy.KernelKeyMult/1e9)
	fmt.Printf("FAST plan:   %.2f Gops (NTT %.2f, BConv %.2f, KeyMult %.2f)\n",
		r.TotalModOps/1e9, r.KernelNTT/1e9, r.KernelBConv/1e9, r.KernelKeyMult/1e9)
	fmt.Printf("total change %.1f%% (paper -17.3%%)\n", 100*(r.TotalModOps-hy.TotalModOps)/hy.TotalModOps)
}

func fig12() {
	fmt.Println("--- Fig. 12: ablation (ms) ---")
	ws := []fast.Workload{fast.BootstrapWorkload(), fast.HELRWorkload(256), fast.HELRWorkload(1024), fast.ResNet20Workload()}
	for _, acc := range []fast.Accelerator{fast.FASTAccelerator(), fast.FASTNoTBMAccelerator(), fast.FAST36Accelerator()} {
		fmt.Printf("%-15s", acc.Name())
		for _, w := range ws {
			fmt.Printf("  %8.2f", simulate(w, acc, fast.PlanAuto).TimeMS)
		}
		fmt.Println()
	}
}

func fig13() {
	fmt.Println("--- Fig. 13(a): SRAM sensitivity (bootstrap) ---")
	fmt.Println("onchip_MB  time_ms  area_mm2")
	for _, mb := range []float64{70, 140, 281, 422, 562} {
		acc := fast.FASTAccelerator().WithOnChipMB(mb)
		r := simulate(fast.BootstrapWorkload(), acc, fast.PlanAuto)
		fmt.Printf("%9.0f  %7.3f  %8.1f\n", mb, r.TimeMS, acc.AreaMM2())
	}
	fmt.Println("--- Fig. 13(b): cluster sensitivity (bootstrap) ---")
	fmt.Println("clusters  time_ms  area_mm2")
	for _, n := range []int{2, 4, 8} {
		acc := fast.FASTAccelerator()
		if n != 4 {
			acc = acc.WithClusters(n)
		}
		r := simulate(fast.BootstrapWorkload(), acc, fast.PlanAuto)
		fmt.Printf("%8d  %7.3f  %8.1f\n", n, r.TimeMS, acc.AreaMM2())
	}
}

func main() {
	only := flag.String("only", "", "regenerate a single table/figure (e.g. table5, fig11)")
	obsJSON := flag.String("obs-json", "", "write the accumulated metrics registry (dispatch counters, decision tallies, last-run gauges) as JSON to this file")
	flag.Parse()
	if *obsJSON != "" {
		observer = fast.NewObserver()
	}

	all := []struct {
		name string
		fn   func()
	}{
		{"fig2", fig2}, {"fig3", fig3}, {"fig4", fig4},
		{"table3", table3}, {"table4", table4}, {"table5", table5},
		{"table6", table6}, {"table7", table7},
		{"fig10", fig10}, {"fig11", fig11}, {"fig12", fig12}, {"fig13", fig13},
	}
	ran := false
	for _, e := range all {
		if *only == "" || *only == e.name {
			e.fn()
			fmt.Println()
			ran = true
		}
	}
	if !ran {
		fmt.Fprintf(os.Stderr, "benchtables: unknown selector %q\n", *only)
		os.Exit(1)
	}
	if *obsJSON != "" {
		f, err := os.Create(*obsJSON)
		if err == nil {
			err = observer.WriteMetricsJSON(f)
			if cerr := f.Close(); err == nil {
				err = cerr
			}
		}
		if err != nil {
			fmt.Fprintln(os.Stderr, "benchtables:", err)
			os.Exit(1)
		}
		fmt.Fprintf(os.Stderr, "benchtables: wrote metrics snapshot to %s\n", *obsJSON)
	}
}
