package main

import (
	"bytes"
	"os"
	"os/exec"
	"path/filepath"
	"runtime"
	"testing"
	"time"
)

// buildFastd compiles the fastd binary the harness will spawn and kill. The
// race detector is inherited from the test invocation, so `make soak-smoke`
// (go test -race) chaoses a race-instrumented daemon.
func buildFastd(t *testing.T) string {
	t.Helper()
	bin := filepath.Join(t.TempDir(), "fastd")
	if runtime.GOOS == "windows" {
		bin += ".exe"
	}
	args := []string{"build", "-o", bin}
	if raceEnabled {
		args = append(args, "-race")
	}
	args = append(args, "github.com/fastfhe/fast/cmd/fastd")
	cmd := exec.Command("go", args...)
	cmd.Env = os.Environ()
	if out, err := cmd.CombinedOutput(); err != nil {
		t.Fatalf("build fastd: %v\n%s", err, out)
	}
	return bin
}

// TestSoakSmoke is the CI-sized soak: a short Zipf workload over a handful of
// sessions with ONE SIGKILL+restart cycle in the middle, asserting the full
// durability contract (bit-identical restored decrypts, ladder-only errors,
// exactly-once idempotent retries, p99 within a generous SLO). The full-size
// soak is the fastload binary itself; this keeps `go test -short` fast.
// TestShardChaosSmoke is the kill-a-shard drill against a spawned multi-shard
// daemon: mid-soak one of three shards is fenced through the chaos endpoint
// while Zipf traffic (with rotations, so evaluation keys flow through the
// shared tier) keeps hammering. Asserts the failover contract: the daemon
// stays ready, the fenced shard's sessions serve bit-identically from
// survivors, errors stay on the typed ladder, idempotent retries are
// exactly-once, and the shared evk tier shows cross-shard reuse within
// budget.
func TestShardChaosSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("shard chaos smoke skipped in -short mode")
	}
	bin := buildFastd(t)
	var log bytes.Buffer
	rep, err := soak(soakConfig{
		Spawn:      bin,
		StateDir:   t.TempDir(),
		Sessions:   4,
		RPS:        40,
		Duration:   6 * time.Second,
		Workers:    4,
		ZipfS:      1.2,
		Shards:     3,
		ShardKills: 1,
		SLOP99:     30 * time.Second,
		Seed:       11,
	}, &log)
	if err != nil {
		t.Fatalf("shard soak: %v\n%s", err, log.String())
	}
	t.Logf("shard soak: requests=%d success=%d retries=%d shard_kills=%d replays=%d evk_cross=%d p99=%.0fms",
		rep.Requests, rep.Success, rep.Retries, rep.ShardKills, rep.IdempotentReplays, rep.EvkCrossShardHits, rep.P99Ms)
	if !rep.Pass {
		t.Fatalf("shard soak failed: %v\n%s", rep.Failures, log.String())
	}
	if rep.ShardKills != 1 {
		t.Fatalf("expected exactly one shard kill, got %d", rep.ShardKills)
	}
	if rep.EvkCrossShardHits == 0 {
		t.Fatal("no cross-shard evk hits recorded")
	}
}

func TestSoakSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("soak smoke skipped in -short mode")
	}
	bin := buildFastd(t)
	var log bytes.Buffer
	rep, err := soak(soakConfig{
		Spawn:    bin,
		StateDir: t.TempDir(),
		Sessions: 3,
		RPS:      30,
		Duration: 6 * time.Second,
		Workers:  4,
		ZipfS:    1.2,
		Kills:    1,
		SLOP99:   30 * time.Second,
		Seed:     7,
	}, &log)
	if err != nil {
		t.Fatalf("soak: %v\n%s", err, log.String())
	}
	t.Logf("soak: requests=%d success=%d retries=%d transport_errs=%d restarts=%d replays=%d p99=%.0fms",
		rep.Requests, rep.Success, rep.Retries, rep.TransportErrors, rep.Restarts, rep.IdempotentReplays, rep.P99Ms)
	if !rep.Pass {
		t.Fatalf("soak failed: %v\n%s", rep.Failures, log.String())
	}
	if rep.Restarts != 1 {
		t.Fatalf("expected exactly one kill/restart cycle, got %d", rep.Restarts)
	}
	if rep.Success == 0 {
		t.Fatal("no successful requests")
	}
}
