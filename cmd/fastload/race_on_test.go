//go:build race

package main

// raceEnabled mirrors the -race flag of the test build so the spawned fastd
// binary is compiled with the same instrumentation.
const raceEnabled = true
