// Command fastload is the soak and chaos harness for fastd: it drives N
// concurrent sessions with Zipf-distributed reuse at a configurable request
// rate, retries through the daemon's typed HTTP degradation ladder with
// jittered exponential backoff, and — in chaos mode — SIGKILLs and restarts
// the daemon mid-soak while asserting the durability contract:
//
//   - restored sessions decrypt pre-kill ciphertexts byte-for-byte
//     identically to the fault-free reference captured before the kill;
//   - requests in flight across the kill fail with typed ladder errors or
//     transport errors, never silently wrong data;
//   - idempotent retries are exactly-once: a duplicate of a completed eval
//     returns the recorded response bytes, not a second execution;
//   - the end-to-end success p99 stays within the configured SLO.
//
// Usage:
//
//	fastload -spawn ./fastd -state-dir /tmp/fastd-state \
//	         -sessions 8 -rps 50 -duration 30s -kills 2 [-report soak.json]
//	fastload -addr http://127.0.0.1:8080 -sessions 4 -rps 20 -duration 10s
//
// With -spawn, fastload owns the daemon process (chaos mode requires this);
// with -addr it soaks an externally managed daemon and -kills must be 0.
// The process exits 0 iff every assertion held; the JSON report (stdout or
// -report) carries the full tally either way.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"time"
)

func run(args []string, stdout io.Writer) error {
	fs := flag.NewFlagSet("fastload", flag.ContinueOnError)
	addr := fs.String("addr", "", "base URL of a running fastd (mutually exclusive with -spawn)")
	spawn := fs.String("spawn", "", "path to a fastd binary to spawn (required for chaos mode)")
	stateDir := fs.String("state-dir", "", "state dir handed to the spawned fastd (default: a temp dir)")
	sessions := fs.Int("sessions", 4, "concurrent sessions")
	rps := fs.Float64("rps", 20, "target aggregate requests per second")
	duration := fs.Duration("duration", 10*time.Second, "soak duration")
	workers := fs.Int("workers", 8, "concurrent client workers")
	zipfS := fs.Float64("zipf-s", 1.2, "Zipf skew for session reuse (>1; higher = hotter head)")
	kills := fs.Int("kills", 0, "SIGKILL+restart cycles spread across the soak (chaos mode)")
	shards := fs.Int("shards", 1, "shards for the spawned fastd (-spawn only)")
	shardKills := fs.Int("shard-kills", 0, "shards to fence mid-soak via the chaos endpoint (must leave a survivor)")
	sloP99 := fs.Duration("slo-p99", 5*time.Second, "success-latency p99 SLO")
	seed := fs.Int64("seed", 1, "workload RNG seed")
	reportPath := fs.String("report", "", "write the JSON report here (default stdout)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	cfg := soakConfig{
		Addr:       *addr,
		Spawn:      *spawn,
		StateDir:   *stateDir,
		Sessions:   *sessions,
		RPS:        *rps,
		Duration:   *duration,
		Workers:    *workers,
		ZipfS:      *zipfS,
		Kills:      *kills,
		Shards:     *shards,
		ShardKills: *shardKills,
		SLOP99:     *sloP99,
		Seed:       *seed,
	}
	rep, err := soak(cfg, stdout)
	if err != nil {
		return err
	}
	raw, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return err
	}
	if *reportPath != "" {
		if err := os.WriteFile(*reportPath, append(raw, '\n'), 0o644); err != nil {
			return err
		}
	} else {
		fmt.Fprintln(stdout, string(raw))
	}
	if !rep.Pass {
		return fmt.Errorf("fastload: soak failed: %v", rep.Failures)
	}
	return nil
}

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
}
