package main

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"os"
	"os/exec"
	"regexp"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

type soakConfig struct {
	Addr     string // soak an existing daemon ...
	Spawn    string // ... or own the process (required for Kills > 0)
	StateDir string
	Sessions int
	RPS      float64
	Duration time.Duration
	Workers  int
	ZipfS    float64
	Kills    int
	// Shards configures the spawned daemon's -shards; ShardKills fences that
	// many shards mid-soak through the in-process chaos endpoint (must leave
	// at least one survivor). Unlike -kills, the PROCESS stays up — this
	// exercises failover (fence, remap, snapshot restore on survivors), not
	// restart recovery.
	Shards     int
	ShardKills int
	SLOP99     time.Duration
	Seed       int64
}

// soakReport is the harness verdict: the tally of everything observed plus
// the pass/fail assertions. Pass is true iff zero bit mismatches, zero
// idempotency violations, zero unexpected statuses, zero corrupt snapshots
// and the success p99 within SLO.
type soakReport struct {
	Requests           int64            `json:"requests"`
	Success            int64            `json:"success"`
	Retries            int64            `json:"retries"`
	TransportErrors    int64            `json:"transport_errors"`
	Statuses           map[string]int64 `json:"statuses"`
	Restarts           int              `json:"restarts"`
	ShardKills         int              `json:"shard_kills"`
	EvkCrossShardHits  uint64           `json:"evk_cross_shard_hits"`
	EvkResidentBytes   int64            `json:"evk_resident_bytes"`
	EvkBudgetBytes     int64            `json:"evk_budget_bytes"`
	IdempotentReplays  int64            `json:"idempotent_replays"`
	BitMismatches      int64            `json:"bit_mismatches"`
	IdemViolations     int64            `json:"idempotency_violations"`
	UnexpectedStatuses int64            `json:"unexpected_statuses"`
	CorruptSnapshots   uint64           `json:"corrupt_snapshots"`
	P50Ms              float64          `json:"p50_ms"`
	P99Ms              float64          `json:"p99_ms"`
	SLOP99Ms           float64          `json:"slo_p99_ms"`
	Pass               bool             `json:"pass"`
	Failures           []string         `json:"failures,omitempty"`
}

// ---- Daemon process management ----------------------------------------------

// daemonProc owns a spawned fastd: first start binds :0 and parses the
// concrete address from the banner line; SIGKILL+restart cycles rebind the
// same address so clients only see a connection-error window.
type daemonProc struct {
	path     string
	addr     string
	baseArgs []string
	cmd      *exec.Cmd
}

var addrRe = regexp.MustCompile(`http://([^\s]+)`)

func (p *daemonProc) start() error {
	cmd := exec.Command(p.path, append([]string{"-addr", p.addr}, p.baseArgs...)...)
	stdout, err := cmd.StdoutPipe()
	if err != nil {
		return err
	}
	cmd.Stderr = io.Discard
	if err := cmd.Start(); err != nil {
		return fmt.Errorf("fastload: spawn %s: %w", p.path, err)
	}
	sc := bufio.NewScanner(stdout)
	banner := make(chan string, 1)
	go func() {
		for sc.Scan() {
			if m := addrRe.FindStringSubmatch(sc.Text()); m != nil {
				banner <- m[1]
				break
			}
		}
		// Keep draining so the daemon never blocks on a full pipe.
		for sc.Scan() {
		}
		close(banner)
	}()
	select {
	case a, ok := <-banner:
		if !ok || a == "" {
			_ = cmd.Process.Kill()
			_, _ = cmd.Process.Wait()
			return fmt.Errorf("fastload: fastd exited before announcing its address")
		}
		p.addr = a
	case <-time.After(30 * time.Second):
		_ = cmd.Process.Kill()
		_, _ = cmd.Process.Wait()
		return fmt.Errorf("fastload: fastd did not announce its address within 30s")
	}
	p.cmd = cmd
	return nil
}

// sigkill is the chaos primitive: immediate SIGKILL, no drain, no warning —
// the crash the write-ahead durability design must absorb.
func (p *daemonProc) sigkill() {
	if p.cmd != nil && p.cmd.Process != nil {
		_ = p.cmd.Process.Kill()
		_, _ = p.cmd.Process.Wait()
		p.cmd = nil
	}
}

// ---- Retrying client --------------------------------------------------------

// collector accumulates the soak tally across workers.
type collector struct {
	requests        atomic.Int64
	success         atomic.Int64
	retries         atomic.Int64
	transportErrors atomic.Int64
	replays         atomic.Int64
	bitMismatch     atomic.Int64
	idemViolations  atomic.Int64
	unexpected      atomic.Int64

	mu       sync.Mutex
	statuses map[int]int64
	lats     []time.Duration
	failures []string
}

func (c *collector) status(code int) {
	c.mu.Lock()
	c.statuses[code]++
	c.mu.Unlock()
}

func (c *collector) latency(d time.Duration) {
	c.mu.Lock()
	c.lats = append(c.lats, d)
	c.mu.Unlock()
}

func (c *collector) fail(format string, args ...any) {
	c.mu.Lock()
	if len(c.failures) < 32 { // cap the list; the counters carry the totals
		c.failures = append(c.failures, fmt.Sprintf(format, args...))
	}
	c.mu.Unlock()
}

// client retries through fastd's typed degradation ladder with jittered
// exponential backoff:
//
//	429/503        always retried (back-pressure: the daemon asked us to)
//	504/408        retried only for idempotent requests (keyed or read-only)
//	transport errs retried for idempotent requests (the restart window)
//	everything else terminal — returned to the caller to classify
type client struct {
	base string
	hc   *http.Client
	col  *collector
	rng  *rand.Rand
	mu   sync.Mutex // guards rng (workers share one backoff source)
}

func (c *client) backoff(attempt int) time.Duration {
	if attempt > 6 {
		attempt = 6 // 25ms << 6 already exceeds the 1s cap
	}
	d := 25 * time.Millisecond << uint(attempt)
	if d > time.Second {
		d = time.Second
	}
	c.mu.Lock()
	j := time.Duration(c.rng.Int63n(int64(d)/2 + 1))
	c.mu.Unlock()
	return d/2 + j
}

const maxAttempts = 25

// do issues method path with the given body, retrying per the ladder.
// Returns the terminal status, body and header; err only when every attempt
// failed at the transport layer or the budget ran out on retryable statuses.
func (c *client) do(method, path string, hdr map[string]string, body []byte, idempotent bool) (int, []byte, http.Header, error) {
	c.col.requests.Add(1)
	var lastErr error
	for attempt := 0; attempt < maxAttempts; attempt++ {
		if attempt > 0 {
			c.col.retries.Add(1)
			time.Sleep(c.backoff(attempt - 1))
		}
		var rd io.Reader
		if body != nil {
			rd = bytes.NewReader(body)
		}
		req, err := http.NewRequest(method, c.base+path, rd)
		if err != nil {
			return 0, nil, nil, err
		}
		req.Header.Set("Content-Type", "application/json")
		for k, v := range hdr {
			req.Header.Set(k, v)
		}
		start := time.Now()
		resp, err := c.hc.Do(req)
		if err != nil {
			c.col.transportErrors.Add(1)
			lastErr = err
			if !idempotent {
				return 0, nil, nil, err
			}
			continue
		}
		raw, err := io.ReadAll(resp.Body)
		resp.Body.Close()
		if err != nil {
			c.col.transportErrors.Add(1)
			lastErr = err
			if !idempotent {
				return 0, nil, nil, err
			}
			continue
		}
		c.col.status(resp.StatusCode)
		switch resp.StatusCode {
		case http.StatusTooManyRequests, http.StatusServiceUnavailable:
			lastErr = fmt.Errorf("%s %s: status %d", method, path, resp.StatusCode)
			continue
		case http.StatusGatewayTimeout, http.StatusRequestTimeout:
			lastErr = fmt.Errorf("%s %s: status %d", method, path, resp.StatusCode)
			if !idempotent {
				return resp.StatusCode, raw, resp.Header, nil
			}
			continue
		}
		if resp.StatusCode == http.StatusOK {
			c.col.success.Add(1)
			c.col.latency(time.Since(start))
		}
		return resp.StatusCode, raw, resp.Header, nil
	}
	return 0, nil, nil, fmt.Errorf("fastload: retry budget exhausted: %w", lastErr)
}

func (c *client) postJSON(path string, hdr map[string]string, v any, idempotent bool) (int, []byte, http.Header, error) {
	raw, err := json.Marshal(v)
	if err != nil {
		return 0, nil, nil, err
	}
	return c.do(http.MethodPost, path, hdr, raw, idempotent)
}

// waitReady polls /readyz until the daemon answers 200 (post-restart gate).
func (c *client) waitReady(timeout time.Duration) error {
	deadline := time.Now().Add(timeout)
	for {
		resp, err := c.hc.Get(c.base + "/readyz")
		if err == nil {
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
			if resp.StatusCode == http.StatusOK {
				return nil
			}
		}
		if time.Now().After(deadline) {
			return fmt.Errorf("fastload: daemon not ready within %s", timeout)
		}
		time.Sleep(50 * time.Millisecond)
	}
}

// ---- The soak ---------------------------------------------------------------

// soakSession is one keyspace under load: its reference ciphertext and the
// fault-free decrypt bytes every later decrypt is compared against.
type soakSession struct {
	id         string
	ciphertext string
	refDecrypt []byte
}

// wire mirrors of fastd's request/response shapes (kept local: fastload
// exercises the daemon strictly over its public HTTP surface).
type cnum struct {
	Re float64 `json:"re"`
	Im float64 `json:"im"`
}
type wireSessionReq struct {
	LogN      int   `json:"log_n"`
	Levels    int   `json:"levels"`
	LogScale  int   `json:"log_scale"`
	Rotations []int `json:"rotations"`
	Seed      int64 `json:"seed"`
}
type wireSessionResp struct {
	ID    string `json:"id"`
	Slots int    `json:"slots"`
}
type wireEncryptReq struct {
	Values []cnum `json:"values"`
}
type wireCiphertext struct {
	Ciphertext string `json:"ciphertext"`
}
type wireEvalReq struct {
	Inputs  map[string]string `json:"inputs"`
	Program []map[string]any  `json:"program"`
	Output  string            `json:"output"`
}

// wireReadyz mirrors the slice of /readyz the shard-chaos controller reads.
type wireReadyz struct {
	Ready      bool `json:"ready"`
	LiveShards int  `json:"live_shards"`
	Shards     []struct {
		Shard    int  `json:"shard"`
		Fenced   bool `json:"fenced"`
		Killed   bool `json:"killed"`
		Resident int  `json:"resident"`
	} `json:"shards"`
	Sessions struct {
		Corrupt uint64 `json:"corrupt"`
	} `json:"sessions"`
	Evk struct {
		CrossShardHits uint64 `json:"cross_shard_hits"`
		ResidentBytes  int64  `json:"resident_bytes"`
		BudgetBytes    int64  `json:"budget_bytes"`
	} `json:"evk"`
}

// readyz fetches and decodes /readyz (any status).
func (c *client) readyz() (int, wireReadyz, error) {
	var rz wireReadyz
	resp, err := c.hc.Get(c.base + "/readyz")
	if err != nil {
		return 0, rz, err
	}
	raw, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		return resp.StatusCode, rz, err
	}
	if err := json.Unmarshal(raw, &rz); err != nil {
		return resp.StatusCode, rz, err
	}
	return resp.StatusCode, rz, nil
}

func soak(cfg soakConfig, logw io.Writer) (*soakReport, error) {
	if cfg.Sessions <= 0 {
		cfg.Sessions = 1
	}
	if cfg.Workers <= 0 {
		cfg.Workers = 1
	}
	if cfg.RPS <= 0 {
		cfg.RPS = 1
	}
	if cfg.ZipfS <= 1 {
		cfg.ZipfS = 1.2
	}
	if cfg.SLOP99 <= 0 {
		cfg.SLOP99 = 5 * time.Second
	}
	if (cfg.Addr == "") == (cfg.Spawn == "") {
		return nil, fmt.Errorf("fastload: exactly one of -addr and -spawn is required")
	}
	if cfg.Kills > 0 && cfg.Spawn == "" {
		return nil, fmt.Errorf("fastload: chaos mode (-kills) requires -spawn")
	}
	if cfg.Shards <= 0 {
		cfg.Shards = 1
	}
	if cfg.ShardKills > 0 {
		if cfg.Spawn == "" {
			return nil, fmt.Errorf("fastload: shard-chaos mode (-shard-kills) requires -spawn")
		}
		if cfg.ShardKills >= cfg.Shards {
			return nil, fmt.Errorf("fastload: -shard-kills %d must leave a survivor among %d shards", cfg.ShardKills, cfg.Shards)
		}
	}

	col := &collector{statuses: map[int]int64{}}
	var proc *daemonProc
	base := cfg.Addr
	if cfg.Spawn != "" {
		stateDir := cfg.StateDir
		if stateDir == "" {
			var err error
			if stateDir, err = os.MkdirTemp("", "fastload-state-*"); err != nil {
				return nil, err
			}
			defer os.RemoveAll(stateDir)
		}
		proc = &daemonProc{
			path: cfg.Spawn,
			addr: "127.0.0.1:0",
			baseArgs: []string{
				"-state-dir", stateDir,
				"-access-log", "none",
				"-workers", "2",
				"-queue", "64",
				"-shards", fmt.Sprint(cfg.Shards),
				// Headroom above the soak's session count so /readyz's
				// full-registry flip never blocks the post-restart gate.
				"-max-sessions", fmt.Sprint(cfg.Sessions*2 + 4),
			},
		}
		if err := proc.start(); err != nil {
			return nil, err
		}
		defer proc.sigkill()
		base = "http://" + proc.addr
	}

	cl := &client{
		base: base,
		hc:   &http.Client{Timeout: 30 * time.Second},
		col:  col,
		rng:  rand.New(rand.NewSource(cfg.Seed)),
	}
	if err := cl.waitReady(30 * time.Second); err != nil {
		return nil, err
	}

	// Phase 1: fault-free reference. Create every session, encrypt one known
	// vector per session, and capture the exact decrypt response bytes —
	// the oracle every post-kill decrypt must match bit-for-bit.
	sessions := make([]*soakSession, cfg.Sessions)
	for i := range sessions {
		var sr wireSessionResp
		status, raw, _, err := cl.postJSON("/v1/sessions", nil, wireSessionReq{
			LogN: 9, Levels: 2, LogScale: 36, Rotations: []int{1}, Seed: cfg.Seed + int64(i),
		}, true)
		if err != nil || status != http.StatusOK {
			return nil, fmt.Errorf("fastload: create session %d: status %d err %v (%s)", i, status, err, raw)
		}
		if err := json.Unmarshal(raw, &sr); err != nil {
			return nil, err
		}
		vals := make([]cnum, sr.Slots)
		for j := range vals {
			vals[j] = cnum{Re: 0.25 * float64((i+j)%7), Im: -0.125 * float64(j%5)}
		}
		var ct wireCiphertext
		status, raw, _, err = cl.postJSON("/v1/sessions/"+sr.ID+"/encrypt", nil, wireEncryptReq{Values: vals}, true)
		if err != nil || status != http.StatusOK {
			return nil, fmt.Errorf("fastload: encrypt session %s: status %d err %v", sr.ID, status, err)
		}
		if err := json.Unmarshal(raw, &ct); err != nil {
			return nil, err
		}
		status, ref, _, err := cl.postJSON("/v1/sessions/"+sr.ID+"/decrypt", nil, ct, true)
		if err != nil || status != http.StatusOK {
			return nil, fmt.Errorf("fastload: reference decrypt %s: status %d err %v", sr.ID, status, err)
		}
		sessions[i] = &soakSession{id: sr.ID, ciphertext: ct.Ciphertext, refDecrypt: ref}
	}
	fmt.Fprintf(logw, "fastload: %d sessions ready, soaking %s at %.0f rps (%d workers, %d kills)\n",
		cfg.Sessions, cfg.Duration, cfg.RPS, cfg.Workers, cfg.Kills)

	// Phase 2: paced Zipf workload + chaos controller.
	ctx, cancel := context.WithTimeout(context.Background(), cfg.Duration)
	defer cancel()
	tokens := make(chan struct{}, cfg.Workers)
	go func() {
		interval := time.Duration(float64(time.Second) / cfg.RPS)
		if interval <= 0 {
			interval = time.Millisecond
		}
		tick := time.NewTicker(interval)
		defer tick.Stop()
		for {
			select {
			case <-ctx.Done():
				close(tokens)
				return
			case <-tick.C:
				select {
				case tokens <- struct{}{}:
				default: // workers saturated; shed the token, not the test
				}
			}
		}
	}()

	restarts := 0
	shardKills := 0
	var chaosWG sync.WaitGroup
	if cfg.ShardKills > 0 {
		chaosWG.Add(1)
		go func() {
			defer chaosWG.Done()
			interval := cfg.Duration / time.Duration(cfg.ShardKills+1)
			for k := 0; k < cfg.ShardKills; k++ {
				select {
				case <-ctx.Done():
					return
				case <-time.After(interval):
				}
				// Prefer fencing a shard that still holds sessions, so the
				// kill forces actual failover work on the survivors.
				_, rz, err := cl.readyz()
				if err != nil {
					col.fail("shard kill %d: readyz: %v", k+1, err)
					return
				}
				victim := -1
				for _, s := range rz.Shards {
					if s.Fenced || s.Killed {
						continue
					}
					if victim < 0 {
						victim = s.Shard
					}
					if s.Resident > 0 {
						victim = s.Shard
						break
					}
				}
				if victim < 0 || rz.LiveShards <= 1 {
					col.fail("shard kill %d: no killable shard (live=%d)", k+1, rz.LiveShards)
					return
				}
				fmt.Fprintf(logw, "fastload: shard chaos kill %d/%d -> shard %d\n", k+1, cfg.ShardKills, victim)
				status, _, _, err := cl.do(http.MethodPost, fmt.Sprintf("/debug/shards/%d/kill", victim), nil, nil, true)
				if err != nil || status != http.StatusOK {
					col.fail("shard kill %d: status %d err %v", k+1, status, err)
					return
				}
				// Killing one of N>1 shards must NOT cost readiness: the
				// fenced shard's sessions fail over, capacity degrades,
				// availability does not.
				status, rz, err = cl.readyz()
				if err != nil || status != http.StatusOK || !rz.Ready {
					col.fail("shard kill %d: daemon lost readiness (status %d ready %v err %v)", k+1, status, rz.Ready, err)
					return
				}
				if !rz.Shards[victim].Fenced || !rz.Shards[victim].Killed {
					col.fail("shard kill %d: shard %d not reported fenced+killed on /readyz", k+1, victim)
					return
				}
				shardKills++
			}
		}()
	}
	if cfg.Kills > 0 {
		chaosWG.Add(1)
		go func() {
			defer chaosWG.Done()
			interval := cfg.Duration / time.Duration(cfg.Kills+1)
			for k := 0; k < cfg.Kills; k++ {
				select {
				case <-ctx.Done():
					return
				case <-time.After(interval):
				}
				fmt.Fprintf(logw, "fastload: chaos kill %d/%d\n", k+1, cfg.Kills)
				proc.sigkill()
				if err := proc.start(); err != nil {
					col.fail("restart %d: %v", k+1, err)
					cancel()
					return
				}
				if err := cl.waitReady(60 * time.Second); err != nil {
					col.fail("restart %d: %v", k+1, err)
					cancel()
					return
				}
				restarts++
			}
		}()
	}

	var wg sync.WaitGroup
	for w := 0; w < cfg.Workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(cfg.Seed + 1000 + int64(w)))
			var zipf *rand.Zipf
			if cfg.Sessions > 1 {
				zipf = rand.NewZipf(rng, cfg.ZipfS, 1, uint64(cfg.Sessions-1))
			}
			seq := 0
			for range tokens {
				idx := uint64(0)
				if zipf != nil {
					idx = zipf.Uint64()
				}
				s := sessions[idx]
				seq++
				if rng.Intn(10) < 7 {
					soakDecryptCheck(cl, col, s)
				} else {
					soakIdemEval(cl, col, s, fmt.Sprintf("w%d-%d", w, seq), cfg.Shards > 1)
				}
			}
		}(w)
	}
	wg.Wait()
	chaosWG.Wait()

	// Phase 3: verdict.
	rep := &soakReport{
		Requests:           col.requests.Load(),
		Success:            col.success.Load(),
		Retries:            col.retries.Load(),
		TransportErrors:    col.transportErrors.Load(),
		Statuses:           map[string]int64{},
		Restarts:           restarts,
		ShardKills:         shardKills,
		IdempotentReplays:  col.replays.Load(),
		BitMismatches:      col.bitMismatch.Load(),
		IdemViolations:     col.idemViolations.Load(),
		UnexpectedStatuses: col.unexpected.Load(),
		SLOP99Ms:           float64(cfg.SLOP99.Milliseconds()),
		Failures:           col.failures,
	}
	for code, n := range col.statuses {
		rep.Statuses[fmt.Sprint(code)] = n
	}
	col.mu.Lock()
	lats := append([]time.Duration(nil), col.lats...)
	col.mu.Unlock()
	sort.Slice(lats, func(i, j int) bool { return lats[i] < lats[j] })
	if len(lats) > 0 {
		rep.P50Ms = float64(lats[len(lats)/2]) / float64(time.Millisecond)
		rep.P99Ms = float64(lats[len(lats)*99/100]) / float64(time.Millisecond)
	}
	if proc != nil {
		// Post-soak integrity sweep: the daemon must still be ready, must not
		// have tombstoned any snapshot as corrupt during clean chaos, and the
		// shared evk tier must be within budget.
		if _, rz, err := cl.readyz(); err == nil {
			rep.CorruptSnapshots = rz.Sessions.Corrupt
			rep.EvkCrossShardHits = rz.Evk.CrossShardHits
			rep.EvkResidentBytes = rz.Evk.ResidentBytes
			rep.EvkBudgetBytes = rz.Evk.BudgetBytes
		}
	}

	rep.Pass = true
	check := func(bad bool, format string, args ...any) {
		if bad {
			rep.Pass = false
			rep.Failures = append(rep.Failures, fmt.Sprintf(format, args...))
		}
	}
	check(rep.BitMismatches > 0, "%d decrypts differed from the fault-free reference", rep.BitMismatches)
	check(rep.IdemViolations > 0, "%d idempotency violations", rep.IdemViolations)
	check(rep.UnexpectedStatuses > 0, "%d responses outside the typed error ladder", rep.UnexpectedStatuses)
	check(rep.CorruptSnapshots > 0, "%d snapshots tombstoned as corrupt", rep.CorruptSnapshots)
	check(len(col.failures) > 0, "harness failures: %d", len(col.failures))
	check(rep.Success == 0, "no request succeeded")
	check(rep.P99Ms > rep.SLOP99Ms, "success p99 %.1fms exceeds SLO %.0fms", rep.P99Ms, rep.SLOP99Ms)
	check(cfg.Kills > 0 && restarts < cfg.Kills, "only %d/%d kill cycles completed", restarts, cfg.Kills)
	check(cfg.ShardKills > 0 && shardKills < cfg.ShardKills, "only %d/%d shard kills completed", shardKills, cfg.ShardKills)
	check(cfg.ShardKills > 0 && rep.EvkCrossShardHits == 0,
		"no cross-shard evk hits after failover: survivors did not reuse the dead shard's keys")
	check(rep.EvkBudgetBytes > 0 && rep.EvkResidentBytes > rep.EvkBudgetBytes,
		"evk tier resident %d bytes exceeds budget %d", rep.EvkResidentBytes, rep.EvkBudgetBytes)
	return rep, nil
}

// soakDecryptCheck decrypts the session's reference ciphertext and compares
// the response byte-for-byte against the fault-free oracle — across kills,
// restores and evictions, any 200 must be bit-identical.
func soakDecryptCheck(cl *client, col *collector, s *soakSession) {
	status, raw, _, err := cl.postJSON("/v1/sessions/"+s.id+"/decrypt", nil, wireCiphertext{Ciphertext: s.ciphertext}, true)
	if err != nil {
		return // transport budget exhausted; already counted
	}
	switch {
	case status == http.StatusOK:
		if !bytes.Equal(raw, s.refDecrypt) {
			col.bitMismatch.Add(1)
			col.fail("session %s: decrypt diverged from reference", s.id)
		}
	case ladderStatus(status):
		// typed degradation — fine under chaos
	default:
		col.unexpected.Add(1)
		col.fail("session %s: decrypt status %d outside the ladder: %s", s.id, status, raw)
	}
}

// soakIdemEval runs one idempotent eval then immediately retries the same
// key: the duplicate must return the recorded bytes (exactly-once), whether
// served from memory or — across a kill — from the journal. In shard mode the
// program carries a rotation: addconst alone never key-switches, and it is
// exactly the evaluation-key traffic that exercises the shared evk tier
// (cross-shard hits after failover are one of the chaos assertions).
func soakIdemEval(cl *client, col *collector, s *soakSession, key string, rotate bool) {
	prog := []map[string]any{{"op": "addconst", "a": "x", "value": 0.5, "out": "y"}}
	if rotate {
		prog = []map[string]any{
			{"op": "rotate", "a": "x", "r": 1, "out": "t"},
			{"op": "addconst", "a": "t", "value": 0.5, "out": "y"},
		}
	}
	req := wireEvalReq{
		Inputs:  map[string]string{"x": s.ciphertext},
		Program: prog,
		Output:  "y",
	}
	hdr := map[string]string{"Idempotency-Key": key}
	status, body1, _, err := cl.postJSON("/v1/sessions/"+s.id+"/eval", hdr, req, true)
	if err != nil {
		return
	}
	if status != http.StatusOK {
		if !ladderStatus(status) {
			col.unexpected.Add(1)
			col.fail("session %s: eval status %d outside the ladder: %s", s.id, status, body1)
		}
		return
	}
	status2, body2, hdr2, err := cl.postJSON("/v1/sessions/"+s.id+"/eval", hdr, req, true)
	if err != nil || status2 != http.StatusOK {
		return
	}
	if hdr2.Get("Idempotency-Replayed") == "true" {
		col.replays.Add(1)
	}
	if !bytes.Equal(body1, body2) {
		col.idemViolations.Add(1)
		col.fail("session %s key %s: duplicate eval returned different bytes", s.id, key)
	}
}

// ladderStatus reports whether a non-200 status is a rung of fastd's typed
// degradation ladder — the only failures chaos is allowed to surface.
func ladderStatus(status int) bool {
	switch status {
	case http.StatusTooManyRequests, http.StatusServiceUnavailable,
		http.StatusGatewayTimeout, http.StatusRequestTimeout,
		http.StatusInternalServerError:
		return true
	}
	return false
}
