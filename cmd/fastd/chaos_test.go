package main

// The fastd chaos suite runs the serve loop in-process under every named
// fault scenario (run it with the race detector: `make chaos`). The central
// invariant is inherited from the root chaos suite and extended across the
// HTTP boundary: faults on the modeled key-transfer path change timing and
// recovery accounting, never computed values — so every 200 response must
// carry a ciphertext bit-identical to a fault-free reference evaluation, and
// every shed, canceled or refused request must carry a typed error, never a
// corrupt result. The circuit breaker must open under a fault storm and
// re-close once faults stop.

import (
	"math"
	"net/http"
	"sync"
	"testing"
	"time"

	fast "github.com/fastfhe/fast"
	"github.com/fastfhe/fast/internal/serve"
)

// chaosProgram is the canonical request program: eight key-switch-bearing ops
// across both backends plus a level-consuming multiply, so every fault
// scenario sees plenty of modeled key transfers per request.
func chaosProgram(cx, cy string) evalRequest {
	return evalRequest{
		Inputs: map[string]string{"x": cx, "y": cy},
		Program: []progOp{
			{Op: "rotate", A: "x", R: 1, Out: "r1"},
			{Op: "rotate", A: "r1", R: -1, Out: "r2", Method: "klss"},
			{Op: "rotate", A: "r2", R: 4, Out: "r3"},
			{Op: "conjugate", A: "r3", Out: "c"},
			{Op: "mul", A: "c", B: "y", Out: "m"},
			{Op: "rotate", A: "m", R: 1, Out: "r4", Method: "klss"},
			{Op: "rotate", A: "r4", R: -1, Out: "r5"},
			{Op: "addconst", A: "r5", Value: 0.25, Out: "out"},
		},
		Output: "out",
	}
}

// chaosReference mirrors chaosProgram on a local fault-free Context built
// from the same config and seed. Key generation and encryption are the only
// randomness consumers, so a context replicating the server session's call
// sequence produces bit-identical ciphertexts; the homomorphic ops themselves
// are deterministic. Rotations go through RotateHoisted because the daemon's
// planner routes every rotation through the hoisted path (singletons
// included) — plain Rotate uses a different kernel sequence and is NOT
// bit-identical to the hoisted form.
func chaosReference(t *testing.T, ref *fast.Context, x, y *fast.Ciphertext) *fast.Ciphertext {
	t.Helper()
	step := func(ct *fast.Ciphertext, err error) *fast.Ciphertext {
		t.Helper()
		if err != nil {
			t.Fatalf("reference evaluation: %v", err)
		}
		return ct
	}
	rot := func(ct *fast.Ciphertext, r int, opts ...fast.OpOption) *fast.Ciphertext {
		t.Helper()
		out, err := ref.RotateHoisted(ct, []int{r}, opts...)
		if err != nil {
			t.Fatalf("reference evaluation: %v", err)
		}
		return out[r]
	}
	r1 := rot(x, 1)
	r2 := rot(r1, -1, fast.WithMethod(fast.KLSS))
	r3 := rot(r2, 4)
	c := step(ref.Conjugate(r3))
	m := step(ref.Mul(c, y))
	r4 := rot(m, 1, fast.WithMethod(fast.KLSS))
	r5 := rot(r4, -1)
	return step(ref.AddConst(r5, 0.25))
}

func chaosInputs(slots int) ([]complex128, []complex128) {
	x := make([]complex128, slots)
	y := make([]complex128, slots)
	for i := range x {
		x[i] = complex(0.4*math.Cos(float64(3*i+1)), 0.3*math.Sin(float64(i)))
		y[i] = complex(0.25+0.001*float64(i%31), -0.15)
	}
	return x, y
}

func chaosBitsEqual(a, b []complex128) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if math.Float64bits(real(a[i])) != math.Float64bits(real(b[i])) ||
			math.Float64bits(imag(a[i])) != math.Float64bits(imag(b[i])) {
			return false
		}
	}
	return true
}

// TestFastdChaosScenariosBitExact serves one session per named fault scenario
// and asserts the degraded-but-correct invariant over HTTP: the evaluated
// ciphertext and its decryption are bit-identical to the fault-free local
// reference, while the fault machinery demonstrably ran (transfers counted).
func TestFastdChaosScenariosBitExact(t *testing.T) {
	for _, scenario := range []string{"none", "transfer", "spike", "corrupt", "pressure", "all"} {
		t.Run(scenario, func(t *testing.T) {
			d, ts := newTestDaemon(t, daemonConfig{Workers: 1, BreakerThreshold: 1 << 20})
			base := ts.URL

			req := testSessionRequest()
			req.FaultScenario = scenario
			sr := createSession(t, base, req)

			// Local fault-free replica: same config, same seed, same
			// randomness-consuming call order (keygen, Encrypt x, Encrypt y).
			refCfg := fast.ContextConfig{
				LogN: req.LogN, LogSlots: req.LogSlots, Levels: req.Levels,
				LogScale: req.LogScale, Rotations: req.Rotations,
				Conjugation: req.Conjugation, EnableKLSS: req.EnableKLSS,
				Seed: req.Seed, Parallelism: req.Parallelism,
			}
			ref, err := fast.NewContext(refCfg)
			if err != nil {
				t.Fatalf("reference context: %v", err)
			}

			xs, ys := chaosInputs(sr.Slots)
			cx := encryptValues(t, base, sr.ID, xs)
			cy := encryptValues(t, base, sr.ID, ys)
			rx, err := ref.Encrypt(xs)
			if err != nil {
				t.Fatal(err)
			}
			ry, err := ref.Encrypt(ys)
			if err != nil {
				t.Fatal(err)
			}

			// The served encryption must already match the replica bit-exactly.
			refCx, err := encodeCiphertext(rx)
			if err != nil {
				t.Fatal(err)
			}
			if cx.Ciphertext != refCx.Ciphertext {
				t.Fatalf("scenario %s: served encryption differs from replica", scenario)
			}

			var cr ciphertextResponse
			status, raw := doJSON(t, http.MethodPost, base+"/v1/sessions/"+sr.ID+"/eval", nil,
				chaosProgram(cx.Ciphertext, cy.Ciphertext), &cr)
			if status != http.StatusOK {
				t.Fatalf("scenario %s: eval status %d: %s", scenario, status, raw)
			}

			want := chaosReference(t, ref, rx, ry)
			refOut, err := encodeCiphertext(want)
			if err != nil {
				t.Fatal(err)
			}
			if cr.Ciphertext != refOut.Ciphertext {
				t.Fatalf("scenario %s: served ciphertext is not bit-identical to the fault-free reference", scenario)
			}
			got := decryptValues(t, base, sr.ID, cr.Ciphertext)
			if !chaosBitsEqual(got, ref.Decrypt(want)) {
				t.Fatalf("scenario %s: served decryption is not bit-exact", scenario)
			}

			_, sess, err := d.resolve(sr.ID)
			if err != nil {
				t.Fatal("session vanished:", err)
			}
			st := sess.ctx.FaultStats()
			if scenario == "none" {
				if sess.ctx.FaultPlanActive() || st != (fast.FaultStats{}) {
					t.Fatalf("scenario none: unexpected fault activity %+v", st)
				}
			} else if st.Transfers == 0 {
				t.Fatalf("scenario %s: fault plan attached but no transfers modeled", scenario)
			}
		})
	}
}

// TestFastdChaosOverloadNoCorruption floods a fault-injected session with
// concurrent requests, some carrying unmeetable deadlines, against a tiny
// worker pool. Every accepted (200) response must be bit-identical to the
// reference; every rejection must be one of the typed degradation statuses.
// No request may observe a corrupt result.
func TestFastdChaosOverloadNoCorruption(t *testing.T) {
	_, ts := newTestDaemon(t, daemonConfig{Workers: 1, QueueDepth: 2, BreakerThreshold: 1 << 20})
	base := ts.URL

	req := testSessionRequest()
	req.FaultScenario = "all"
	sr := createSession(t, base, req)

	refCfg := fast.ContextConfig{
		LogN: req.LogN, Levels: req.Levels, LogScale: req.LogScale,
		Rotations: req.Rotations, Conjugation: req.Conjugation,
		EnableKLSS: req.EnableKLSS, Seed: req.Seed,
	}
	ref, err := fast.NewContext(refCfg)
	if err != nil {
		t.Fatal(err)
	}
	xs, ys := chaosInputs(sr.Slots)
	cx := encryptValues(t, base, sr.ID, xs)
	cy := encryptValues(t, base, sr.ID, ys)
	rx, _ := ref.Encrypt(xs)
	ry, _ := ref.Encrypt(ys)
	refOut, err := encodeCiphertext(chaosReference(t, ref, rx, ry))
	if err != nil {
		t.Fatal(err)
	}

	const clients = 24
	type result struct {
		status int
		body   ciphertextResponse
		raw    []byte
	}
	results := make([]result, clients)
	var wg sync.WaitGroup
	for i := 0; i < clients; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			hdr := map[string]string{}
			if i%3 == 0 {
				hdr["X-Deadline-Ms"] = "1" // provably unmeetable under load
			}
			status, raw := doJSON(t, http.MethodPost, base+"/v1/sessions/"+sr.ID+"/eval", hdr,
				chaosProgram(cx.Ciphertext, cy.Ciphertext), &results[i].body)
			results[i].status = status
			results[i].raw = raw
		}(i)
	}
	wg.Wait()

	accepted := 0
	for i, r := range results {
		switch r.status {
		case http.StatusOK:
			accepted++
			if r.body.Ciphertext != refOut.Ciphertext {
				t.Fatalf("client %d: accepted result is not bit-identical to reference", i)
			}
		case http.StatusTooManyRequests, http.StatusServiceUnavailable,
			http.StatusGatewayTimeout, http.StatusRequestTimeout:
			// Typed degradation — acceptable; body must carry an error.
			if len(r.raw) == 0 {
				t.Errorf("client %d: rejection %d with empty body", i, r.status)
			}
		default:
			t.Errorf("client %d: unexpected status %d: %s", i, r.status, r.raw)
		}
	}
	if accepted == 0 {
		t.Fatal("overload run accepted zero requests")
	}
	t.Logf("overload: %d/%d accepted, all bit-exact", accepted, clients)
}

// TestFastdFaultBreakerResilience drives a transfer-fault storm until the
// circuit breaker opens (readiness drops, requests are refused fast with
// 503), then stops the faults and asserts the breaker re-closes via the
// half-open probe and service resumes.
func TestFastdFaultBreakerResilience(t *testing.T) {
	d, ts := newTestDaemon(t, daemonConfig{
		Workers:          1,
		BreakerThreshold: 3,
		BreakerCooldown:  50 * time.Millisecond,
	})
	base := ts.URL

	// Create both sessions up front: once the breaker is open, keygen
	// requests are refused too (they ride the same admission path).
	faulty := testSessionRequest()
	faulty.FaultScenario = "transfer"
	fsr := createSession(t, base, faulty)
	csr := createSession(t, base, testSessionRequest())

	fxs, fys := chaosInputs(fsr.Slots)
	fx := encryptValues(t, base, fsr.ID, fxs)
	fy := encryptValues(t, base, fsr.ID, fys)
	cxs, cys := chaosInputs(csr.Slots)
	cx := encryptValues(t, base, csr.ID, cxs)
	cy := encryptValues(t, base, csr.ID, cys)

	// Storm: each request carries ~8 key-switches at 25% transfer-failure
	// probability, so fault-recovery deltas (breaker failures) dominate.
	opened := false
	for i := 0; i < 200 && !opened; i++ {
		status, raw := doJSON(t, http.MethodPost, base+"/v1/sessions/"+fsr.ID+"/eval", nil,
			chaosProgram(fx.Ciphertext, fy.Ciphertext), nil)
		switch status {
		case http.StatusOK:
			// fault-free request (fault injection is probabilistic) — fine
		case http.StatusServiceUnavailable:
			opened = true
		default:
			t.Fatalf("storm request %d: status %d: %s", i, status, raw)
		}
		if d.shards[0].breaker.State() == serve.BreakerOpen {
			opened = true
		}
	}
	if !opened {
		t.Fatal("breaker never opened under transfer-fault storm")
	}

	// Open breaker: readiness drops, clean traffic is refused fast.
	status, raw := doJSON(t, http.MethodGet, base+"/readyz", nil, nil, nil)
	if status != http.StatusServiceUnavailable {
		t.Fatalf("readyz with open breaker: status %d: %s", status, raw)
	}

	// Faults stop (clean session), cooldown elapses: the half-open probe
	// succeeds and the breaker re-closes. Allow a few probe attempts in case
	// a probe lands while the breaker is still open.
	deadline := time.Now().Add(5 * time.Second)
	recovered := false
	for time.Now().Before(deadline) && !recovered {
		time.Sleep(60 * time.Millisecond) // > cooldown
		status, _ := doJSON(t, http.MethodPost, base+"/v1/sessions/"+csr.ID+"/eval", nil,
			chaosProgram(cx.Ciphertext, cy.Ciphertext), nil)
		if status == http.StatusOK {
			recovered = true
		}
	}
	if !recovered {
		t.Fatal("service did not recover after faults stopped")
	}
	var ready struct {
		Breaker string `json:"breaker"`
	}
	status, raw = doJSON(t, http.MethodGet, base+"/readyz", nil, nil, &ready)
	if status != http.StatusOK || ready.Breaker != "closed" {
		t.Fatalf("breaker did not re-close: status %d, state %q (%s)", status, ready.Breaker, raw)
	}
}
