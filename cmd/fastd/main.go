// Command fastd serves homomorphic evaluation over JSON/HTTP with production
// degradation semantics: a bounded admission queue in front of a fixed
// evaluator pool, deadline-aware load shedding, a circuit breaker over the
// modeled evaluation-key transfer path, per-request cancellation threaded
// down into the CKKS kernels, and graceful drain on SIGINT/SIGTERM.
//
// Usage:
//
//	fastd [-addr 127.0.0.1:8080] [-workers 2] [-queue 8]
//	      [-breaker-threshold 5] [-breaker-cooldown 2s] [-max-sessions 16]
//	      [-state-dir ""] [-max-resident-sessions 0] [-session-ttl 0]
//	      [-access-log stderr] [-log-level info] [-slow-request-ms 0]
//
// With -state-dir set, fastd is crash-safe: sessions are write-ahead
// snapshotted (fsync + atomic rename) before the create response, restored
// lazily after a restart, LRU-evicted to disk past -max-resident-sessions or
// after -session-ttl idle, and requests carrying an Idempotency-Key header
// are exactly-once across restarts (completed outcomes are journaled before
// release and replayed to retries). Corrupt snapshots are detected by
// checksum, skipped with a 410 and counted — never restored.
//
// Endpoints:
//
//	GET  /healthz                     liveness (always ok while the process runs)
//	GET  /readyz                      readiness (503 while draining or breaker open)
//	POST /v1/sessions                 create a keyspace {log_n, levels, rotations, ...}
//	DELETE /v1/sessions/{id}          drop a keyspace
//	POST /v1/sessions/{id}/encrypt    {values:[{re,im},...]} -> {ciphertext}
//	POST /v1/sessions/{id}/decrypt    {ciphertext} -> {values}
//	POST /v1/sessions/{id}/eval      {inputs, program, output} -> {ciphertext}
//	GET  /debug/requests              in-flight request table (id, phase, age, deadline)
//	GET  /debug/plans                 retained plan-execution records (batch, request IDs)
//	GET  /metrics, /debug/...         observability surface (Prometheus, pprof, traces)
//
// Requests may carry an X-Deadline-Ms header; the admission layer sheds
// requests whose deadline is provably unmeetable (HTTP 504) instead of
// queuing them to time out. A full queue returns 429, an open breaker or a
// draining server 503.
//
// Every request is correlated end to end: a client-provided X-Request-Id (or
// the trace-id of a W3C traceparent header) is honored, otherwise an ID is
// assigned; the ID is echoed on the response, logged in the JSON access log,
// listed on /debug/requests while in flight, and attached to every Chrome-
// trace span the request causes, down to the key-switch phases.
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	fast "github.com/fastfhe/fast"
	"github.com/fastfhe/fast/internal/fault"
	"github.com/fastfhe/fast/internal/obs"
)

// Test hooks, mirroring cmd/fastsim: httpStarted observes the bound address
// once serving begins, httpWait blocks until shutdown should start.
var (
	httpStarted = func(net.Addr) {}
	httpWait    = func() {
		ch := make(chan os.Signal, 1)
		signal.Notify(ch, os.Interrupt, syscall.SIGTERM)
		<-ch
		signal.Stop(ch)
	}
)

func run(args []string, stdout io.Writer) error {
	fs := flag.NewFlagSet("fastd", flag.ContinueOnError)
	addr := fs.String("addr", "127.0.0.1:8080", "listen address (host:0 picks a free port)")
	shards := fs.Int("shards", 1, "failure-isolated serving shards behind the listener")
	workers := fs.Int("workers", 2, "concurrent evaluation workers per shard")
	queue := fs.Int("queue", 0, "admission queue depth per shard (0 = 4x workers)")
	breakerThreshold := fs.Int("breaker-threshold", 5, "consecutive fault-bearing requests that open the circuit breaker")
	breakerCooldown := fs.Duration("breaker-cooldown", 2*time.Second, "open interval before the half-open probe")
	maxSessions := fs.Int("max-sessions", 16, "maximum sessions (resident + persisted)")
	stateDir := fs.String("state-dir", "", "directory for crash-safe session snapshots and idempotency journals (empty disables durability)")
	maxResident := fs.Int("max-resident-sessions", 0, "sessions held in memory before LRU eviction to -state-dir (0 = -max-sessions)")
	sessionTTL := fs.Duration("session-ttl", 0, "evict sessions idle longer than this to -state-dir (0 disables)")
	storeFaults := fs.String("store-faults", "", "disk-write fault plan for chaos testing, e.g. \"disk=0.2\"")
	evkBudgetMB := fs.Int("evk-budget-mb", 256, "shared evaluation-key cache budget in MiB")
	probeInterval := fs.Duration("shard-probe-interval", time.Second, "shard supervisor health-probe interval (shards >= 2)")
	probeTimeout := fs.Duration("shard-probe-timeout", time.Second, "per-probe timeout before it counts as a failure")
	fenceThreshold := fs.Int("shard-fence-threshold", 5, "consecutive probe failures that fence a shard")
	peers := fs.String("peers", "", "comma-separated sibling fastd base URLs (first entry is this node); enables the forwarding skeleton")
	drainTimeout := fs.Duration("drain-timeout", 30*time.Second, "graceful drain bound on shutdown")
	sequential := fs.Bool("sequential", false, "disable cross-request micro-batching (baseline/debug mode)")
	logLevel := fs.String("log-level", "info", "access-log level: debug, info, warn or error")
	accessLog := fs.String("access-log", "stderr", "access-log destination: stderr, stdout, none, or a file path (appended)")
	slowRequestMs := fs.Int("slow-request-ms", 0, "warn-level slow-request record above this many milliseconds (0 disables)")
	if err := fs.Parse(args); err != nil {
		return err
	}

	logW, closeLog, err := openAccessLog(*accessLog)
	if err != nil {
		return err
	}
	defer closeLog()

	var faultPlan fault.Plan
	if *storeFaults != "" {
		if faultPlan, err = fault.ParsePlan(*storeFaults); err != nil {
			return fmt.Errorf("fastd: -store-faults: %w", err)
		}
	}
	d, err := newDaemon(daemonConfig{
		Shards:           *shards,
		Workers:          *workers,
		QueueDepth:       *queue,
		BreakerThreshold: *breakerThreshold,
		BreakerCooldown:  *breakerCooldown,
		MaxSessions:      *maxSessions,
		StateDir:         *stateDir,
		MaxResident:      *maxResident,
		SessionTTL:       *sessionTTL,
		StoreFaults:      faultPlan,
		EvkBudget:        int64(*evkBudgetMB) << 20,
		ProbeInterval:    *probeInterval,
		ProbeTimeout:     *probeTimeout,
		FenceThreshold:   *fenceThreshold,
		Peers:            splitPeers(*peers),
		Sequential:       *sequential,
		Observer:         fast.NewTracingObserver(0),
		Logger:           obs.NewLogger(logW, obs.ParseLogLevel(*logLevel)),
		SlowRequest:      time.Duration(*slowRequestMs) * time.Millisecond,
	})
	if err != nil {
		return err
	}

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		return fmt.Errorf("fastd: listen %s: %w", *addr, err)
	}
	srv := &http.Server{Handler: d.handler()}
	go func() { _ = srv.Serve(ln) }()
	fmt.Fprintf(stdout, "fastd serving on http://%s (%d shards x %d workers, queue %d)\n",
		ln.Addr(), d.cfg.Shards, d.cfg.Workers, d.cfg.QueueDepth)
	httpStarted(ln.Addr())
	httpWait()

	// Degradation ladder, shutdown edition: stop admitting (ErrDraining),
	// finish queued work bounded by -drain-timeout, then close the listener
	// gracefully (obs.ShutdownServer bounds the HTTP drain too).
	fmt.Fprintln(stdout, "fastd draining...")
	drainCtx, cancel := context.WithTimeout(context.Background(), *drainTimeout)
	defer cancel()
	if err := d.drain(drainCtx); err != nil {
		fmt.Fprintf(stdout, "fastd drain incomplete: %v\n", err)
	}
	if err := obs.ShutdownServer(srv, 5*time.Second); err != nil {
		return fmt.Errorf("fastd: shutdown: %w", err)
	}
	fmt.Fprintln(stdout, "fastd stopped")
	return nil
}

// splitPeers parses the comma-separated -peers list, dropping empty entries.
func splitPeers(s string) []string {
	var out []string
	for _, p := range strings.Split(s, ",") {
		if p = strings.TrimSpace(p); p != "" {
			out = append(out, p)
		}
	}
	return out
}

// openAccessLog resolves the -access-log flag to a writer plus its closer.
func openAccessLog(dest string) (io.Writer, func(), error) {
	switch dest {
	case "", "none":
		return io.Discard, func() {}, nil
	case "stderr":
		return os.Stderr, func() {}, nil
	case "stdout":
		return os.Stdout, func() {}, nil
	}
	f, err := os.OpenFile(dest, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, nil, fmt.Errorf("fastd: open access log: %w", err)
	}
	return f, func() { _ = f.Close() }, nil
}

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
}
