package main

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"path/filepath"
	"regexp"
	"strings"
	"testing"
)

// TestObsSmoke is the observability acceptance path, also run standalone via
// `make obs-smoke`: boot the real daemon through run(), drive one evaluation
// with a known request ID, then hold every surface to its contract — the
// access log is JSON lines with the documented schema, /debug/requests
// serves the in-flight table shape, /metrics is valid Prometheus text with
// the latency quantile gauges, /readyz carries the same quantiles, and the
// Chrome trace attributes HTTP and kernel spans to that one request ID.
func TestObsSmoke(t *testing.T) {
	logPath := filepath.Join(t.TempDir(), "access.log")

	oldStarted, oldWait := httpStarted, httpWait
	defer func() { httpStarted, httpWait = oldStarted, oldWait }()
	var addr net.Addr
	httpStarted = func(a net.Addr) { addr = a }
	httpWait = func() {
		base := "http://" + addr.String()
		const reqID = "obs-smoke-eval-1"

		// One full request: create a keyspace, encrypt, evaluate x*x with a
		// pinned request ID, decrypt.
		sid := createSession(t, base, testSessionRequest()).ID
		ct := encryptValues(t, base, sid, []complex128{3 + 0i})
		var er struct {
			Ciphertext string `json:"ciphertext"`
		}
		status, raw := doJSON(t, http.MethodPost, base+"/v1/sessions/"+sid+"/eval",
			map[string]string{"X-Request-Id": reqID}, evalRequest{
				Inputs:  map[string]string{"x": ct.Ciphertext},
				Program: []progOp{{Op: "mul", Out: "y", A: "x", B: "x"}},
				Output:  "y",
			}, &er)
		if status != http.StatusOK {
			t.Fatalf("eval: status %d: %s", status, raw)
		}
		got := decryptValues(t, base, sid, er.Ciphertext)
		if len(got) == 0 || real(got[0]) < 8.5 || real(got[0]) > 9.5 {
			t.Fatalf("eval result %v, want ~9", got)
		}

		assertDebugRequests(t, base)
		assertPrometheusText(t, base)
		assertReadyzQuantiles(t, base)
		assertTraceCorrelation(t, base, reqID)
		assertDebugPlans(t, base, reqID)
	}

	var out bytes.Buffer
	if err := run([]string{
		"-addr", "127.0.0.1:0", "-workers", "1",
		"-access-log", logPath, "-slow-request-ms", "60000",
	}, &out); err != nil {
		t.Fatalf("run: %v\n%s", err, out.String())
	}

	assertAccessLogFile(t, logPath)
}

// assertDebugRequests: the in-flight table serves {"count", "requests"} and,
// because the probing request itself is tabled while served, is never empty
// from its own point of view.
func assertDebugRequests(t *testing.T, base string) {
	t.Helper()
	resp, err := http.Get(base + "/debug/requests")
	if err != nil {
		t.Fatalf("GET /debug/requests: %v", err)
	}
	defer resp.Body.Close()
	var body struct {
		Count    int `json:"count"`
		Requests []struct {
			ID    string  `json:"id"`
			Op    string  `json:"op"`
			Phase string  `json:"phase"`
			AgeMs float64 `json:"age_ms"`
		} `json:"requests"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&body); err != nil {
		t.Fatalf("decode /debug/requests: %v", err)
	}
	if body.Count < 1 || len(body.Requests) != body.Count {
		t.Fatalf("/debug/requests count=%d len=%d, want >=1 and consistent", body.Count, len(body.Requests))
	}
	var self bool
	for _, r := range body.Requests {
		if r.ID == "" || r.Op == "" || r.Phase == "" || r.AgeMs < 0 {
			t.Fatalf("malformed in-flight row: %+v", r)
		}
		if r.Op == "GET /debug/requests" {
			self = true
		}
	}
	if !self {
		t.Fatalf("the probing request is missing from its own in-flight table: %+v", body.Requests)
	}
}

// promLine matches one Prometheus text-format sample: name{labels} value.
var promLine = regexp.MustCompile(`^[a-zA-Z_:][a-zA-Z0-9_:]*(\{[^{}]*\})? [0-9eE+.\-]+$`)

// assertPrometheusText: every non-comment /metrics line is a well-formed
// sample, and the derived latency quantile gauges are exported.
func assertPrometheusText(t *testing.T, base string) {
	t.Helper()
	resp, err := http.Get(base + "/metrics")
	if err != nil {
		t.Fatalf("GET /metrics: %v", err)
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	text := string(raw)
	sc := bufio.NewScanner(strings.NewReader(text))
	samples := 0
	for sc.Scan() {
		line := sc.Text()
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		if !promLine.MatchString(line) {
			t.Fatalf("invalid Prometheus sample line: %q", line)
		}
		samples++
	}
	if samples == 0 {
		t.Fatal("/metrics exposed no samples")
	}
	for _, want := range []string{
		"serve_latency_p50_ns", "serve_latency_p90_ns", "serve_latency_p99_ns",
		"serve_latency_ns_bucket", "http_requests_inflight", "obs_trace_dropped",
	} {
		if !strings.Contains(text, want) {
			t.Fatalf("/metrics missing %s:\n%s", want, text)
		}
	}
}

// assertReadyzQuantiles: the same quantiles appear, dotted, in the readiness
// summary, alongside the in-flight count.
func assertReadyzQuantiles(t *testing.T, base string) {
	t.Helper()
	resp, err := http.Get(base + "/readyz")
	if err != nil {
		t.Fatalf("GET /readyz: %v", err)
	}
	defer resp.Body.Close()
	var body struct {
		Inflight int                `json:"inflight_requests"`
		Latency  map[string]float64 `json:"latency"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&body); err != nil {
		t.Fatalf("decode /readyz: %v", err)
	}
	for _, k := range []string{"serve.latency.p50_ns", "serve.latency.p90_ns", "serve.latency.p99_ns"} {
		v, ok := body.Latency[k]
		if !ok {
			t.Fatalf("/readyz latency missing %s: %v", k, body.Latency)
		}
		if v <= 0 {
			t.Fatalf("/readyz %s = %g, want > 0 after serving requests", k, v)
		}
	}
	if body.Inflight < 1 { // the /readyz request itself
		t.Fatalf("/readyz inflight_requests = %d, want >= 1", body.Inflight)
	}
}

// assertTraceCorrelation: the Chrome trace carries the pinned request ID on
// the serving layer's HTTP span AND on evaluator-side spans — the end-to-end
// attribution the tentpole promises.
func assertTraceCorrelation(t *testing.T, base, reqID string) {
	t.Helper()
	resp, err := http.Get(base + "/trace.json")
	if err != nil {
		t.Fatalf("GET /trace.json: %v", err)
	}
	defer resp.Body.Close()
	var trace struct {
		TraceEvents []struct {
			Name string         `json:"name"`
			Ph   string         `json:"ph"`
			PID  int            `json:"pid"`
			Args map[string]any `json:"args"`
		} `json:"traceEvents"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&trace); err != nil {
		t.Fatalf("decode /trace.json: %v", err)
	}
	pids := map[int]int{}
	for _, ev := range trace.TraceEvents {
		if ev.Ph != "X" || ev.Args == nil {
			continue
		}
		if id, _ := ev.Args["request_id"].(string); id == reqID {
			pids[ev.PID]++
		}
	}
	if pids[tracePIDServe] == 0 {
		t.Fatalf("no HTTP span carries request_id %s (pids seen: %v)", reqID, pids)
	}
	if pids[1] == 0 { // ckks evaluator pid
		t.Fatalf("no evaluator span carries request_id %s (pids seen: %v)", reqID, pids)
	}
}

// assertDebugPlans: the executed plan's record lists the pinned request ID,
// closing the loop between the access log and the plan ring.
func assertDebugPlans(t *testing.T, base, reqID string) {
	t.Helper()
	resp, err := http.Get(base + "/debug/plans")
	if err != nil {
		t.Fatalf("GET /debug/plans: %v", err)
	}
	defer resp.Body.Close()
	var body struct {
		Count int `json:"count"`
		Plans []struct {
			Fingerprint string   `json:"fingerprint"`
			Batch       uint64   `json:"batch"`
			RequestIDs  []string `json:"request_ids"`
		} `json:"plans"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&body); err != nil {
		t.Fatalf("decode /debug/plans: %v", err)
	}
	for _, p := range body.Plans {
		for _, id := range p.RequestIDs {
			if id == reqID {
				if p.Batch == 0 || p.Fingerprint == "" {
					t.Fatalf("plan record for %s lacks batch/fingerprint: %+v", reqID, p)
				}
				return
			}
		}
	}
	t.Fatalf("no plan record lists request ID %s (count=%d)", reqID, body.Count)
}

// assertAccessLogFile validates the file the -access-log flag produced: one
// JSON object per line with the access-log schema, including the eval line.
func assertAccessLogFile(t *testing.T, path string) {
	t.Helper()
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("read access log: %v", err)
	}
	sc := bufio.NewScanner(bytes.NewReader(raw))
	var evalSeen bool
	n := 0
	for sc.Scan() {
		var rec map[string]any
		if err := json.Unmarshal(sc.Bytes(), &rec); err != nil {
			t.Fatalf("access-log line is not JSON: %q: %v", sc.Text(), err)
		}
		if rec["msg"] != "request" {
			continue
		}
		n++
		for _, k := range []string{"time", "level", "id", "method", "path", "status", "outcome", "dur_ms", "bytes"} {
			if _, ok := rec[k]; !ok {
				t.Fatalf("access-log record missing %q: %v", k, rec)
			}
		}
		if p, _ := rec["path"].(string); strings.HasSuffix(p, "/eval") {
			evalSeen = true
			if rec["id"] != "obs-smoke-eval-1" {
				t.Fatalf("eval record id = %v, want obs-smoke-eval-1", rec["id"])
			}
			if rec["outcome"] != "ok" {
				t.Fatalf("eval outcome = %v, want ok", rec["outcome"])
			}
			for _, k := range []string{"session", "units", "fingerprint", "batch"} {
				if _, ok := rec[k]; !ok {
					t.Fatalf("eval record missing enrichment %q: %v", k, rec)
				}
			}
		}
	}
	if n < 4 { // session create, encrypt, eval, decrypt + debug probes
		t.Fatalf("access log has %d request records, want >= 4\n%s", n, raw)
	}
	if !evalSeen {
		t.Fatalf("no eval record in access log:\n%s", raw)
	}
	fmt.Fprintf(os.Stderr, "obs-smoke: %d access-log records validated\n", n)
}
